/// Quickstart: parse a QASM circuit, map it to IBM QX4 with the exact
/// (minimal SWAP/H) method, and print the result.
///
///   $ ./quickstart            # uses a built-in 3-qubit circuit
///   $ ./quickstart file.qasm  # maps your own circuit

#include <iostream>

#include "api/qxmap.hpp"

namespace {

constexpr const char* kDefaultQasm = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
t q[2];
cx q[0], q[2];
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace qxmap;

  const Circuit circuit =
      argc > 1 ? qasm::parse_file(argv[1]) : qasm::parse(kDefaultQasm, "quickstart");
  const auto architecture = arch::ibm_qx4();

  std::cout << "Input circuit (" << circuit.num_qubits() << " qubits, " << circuit.size()
            << " gates):\n"
            << circuit.to_string() << '\n';

  MapOptions options;
  options.exact.budget = std::chrono::milliseconds(30000);
  const auto result = map(circuit, architecture, options);

  if (result.status != reason::Status::Optimal &&
      result.status != reason::Status::Feasible) {
    std::cerr << "mapping failed\n";
    return 1;
  }

  std::cout << "Mapped to " << architecture.name() << " with added cost F = " << result.cost_f
            << " (" << result.swaps_inserted << " SWAPs, " << result.cnots_reversed
            << " reversed CNOTs)\n";
  std::cout << "Initial layout (logical -> physical): ";
  for (std::size_t j = 0; j < result.initial_layout.size(); ++j) {
    std::cout << 'q' << j << "->p" << result.initial_layout[j] << ' ';
  }
  std::cout << "\nVerification: " << result.verify_message << "\n\n";
  std::cout << "Mapped circuit as OpenQASM:\n" << qasm::write(result.mapped);
  return 0;
}
