/// Full pipeline with the post-mapping extensions: map a workload with
/// every available method, peephole-optimize each result, and rank the
/// outcomes by estimated hardware fidelity — making the paper's "every
/// operation introduces an error" cost rationale (Sec. 2.2) quantitative.

#include <cmath>
#include <iostream>

#include "api/qxmap.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "common/strings.hpp"
#include "opt/peephole.hpp"
#include "sim/fidelity.hpp"

int main(int argc, char** argv) {
  using namespace qxmap;

  const std::string name = argc > 1 ? argv[1] : "4mod5-v0_20";
  const Circuit circuit = bench::table1_benchmark(name).build();
  const auto qx4 = arch::ibm_qx4();
  const sim::NoiseModel noise;  // QX4-ballpark error rates

  std::cout << "workload " << name << " (" << circuit.size() << " gates), architecture "
            << qx4.name() << "\n\n";
  std::cout << pad_right("method", 18) << pad_left("mapped", 8) << pad_left("optimized", 11)
            << pad_left("removed", 9) << pad_left("P(success)", 12)
            << pad_left("vs exact", 10) << '\n';

  double exact_log10 = 0.0;
  for (const auto method : {Method::Exact, Method::StochasticSwap, Method::AStar, Method::Sabre,
                            Method::LayerWeight}) {
    MapOptions options;
    options.method = method;
    options.exact.use_subsets = true;
    options.exact.budget = std::chrono::milliseconds(20000);
    const auto result = map(circuit, qx4, options);
    if (result.status == reason::Status::Unsat || result.status == reason::Status::Unknown) {
      continue;
    }
    opt::PeepholeStats stats;
    const Circuit optimized = opt::optimize(result.mapped, qx4, &stats);
    const double log_p = sim::log10_success(optimized, noise);
    if (method == Method::Exact) exact_log10 = log_p;

    std::cout << pad_right(result.engine_name.empty() ? "exact" : result.engine_name, 18)
              << pad_left(std::to_string(result.mapped.size()), 8)
              << pad_left(std::to_string(optimized.size()), 11)
              << pad_left(std::to_string(stats.gates_removed()), 9)
              << pad_left(format_fixed(std::pow(10.0, log_p), 4), 12)
              << pad_left(format_fixed(std::pow(10.0, log_p - exact_log10), 3) + "x", 10)
              << '\n';
  }
  std::cout << "\n(P(success) multiplies per-gate survival probabilities; 'vs exact' is the\n"
            << " fidelity ratio against the exact mapper's optimized result.)\n";
  return 0;
}
