/// Batch mapping-as-a-service front-end: reads QASM files (or a built-in
/// demo batch with deliberate duplicates), maps each onto the chosen
/// architecture through the process-wide `api::MappingService`, and prints
/// a per-request line showing whether the request solved, was served from
/// the result cache, or joined an in-flight duplicate — plus the service
/// and executor counters at the end.
///
/// Usage: example_qxmap_serve [--arch NAME] [--budget-ms N]
///                            [--trace out.json] [--metrics] [file.qasm ...]
/// With no files, a demo batch of Table-1-style circuits (each repeated)
/// shows cache hits live. Duplicate inputs cost one solve total.
///
/// Observability (docs/observability.md):
///   --trace out.json  enable span tracing for the batch and write a
///                     Chrome-trace JSON (load in chrome://tracing or
///                     Perfetto) with request → shard → solve nesting
///   --metrics         print the Prometheus text exposition of the
///                     process-wide metrics registry after the batch

#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/service.hpp"
#include "bench_circuits/generators.hpp"
#include "exact/shard_executor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace qxmap;

struct Job {
  std::string label;
  Circuit circuit;
};

const char* status_name(reason::Status s) {
  switch (s) {
    case reason::Status::Optimal: return "optimal";
    case reason::Status::Feasible: return "feasible";
    case reason::Status::Unsat: return "unsat";
    case reason::Status::Unknown: break;
  }
  return "unknown";
}

std::vector<Job> demo_batch() {
  std::vector<Job> jobs;
  for (const std::uint64_t seed : {1, 2, 1, 3, 2, 1}) {  // duplicates on purpose
    Circuit c = bench::random_circuit(3, 4, 4, seed);
    c.set_name("demo-" + std::to_string(seed));
    jobs.push_back({c.name(), std::move(c)});
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    std::string arch_name = "qx4";
    long long budget_ms = 30000;
    std::string trace_path;
    bool print_metrics = false;
    std::vector<std::string> files;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--arch" && i + 1 < argc) {
        arch_name = argv[++i];
      } else if (arg == "--budget-ms" && i + 1 < argc) {
        budget_ms = std::stoll(argv[++i]);
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path = argv[++i];
      } else if (arg == "--metrics") {
        print_metrics = true;
      } else {
        files.push_back(arg);
      }
    }

    if (!trace_path.empty()) {
      obs::TraceRecorder::set_enabled(true);
      obs::TraceRecorder::instance().clear();
    }

    const arch::CouplingMap cm = arch::by_name(arch_name);
    MapOptions options;
    options.exact.use_subsets = true;
    options.exact.budget = std::chrono::milliseconds(budget_ms);

    std::vector<Job> jobs;
    for (const auto& file : files) {
      jobs.push_back({file, qasm::parse_file(file)});
    }
    if (jobs.empty()) jobs = demo_batch();

    api::MappingService& service = api::MappingService::instance();
    for (const auto& job : jobs) {
      const auto result = service.map(job.circuit, cm, options);
      std::cout << job.label << ": cost " << result.cost_f << " ("
                << status_name(result.status) << ", " << result.engine_name << ")"
                << (result.from_cache ? " [cache hit]" : " [solved]") << " in "
                << result.seconds << " s\n";
      if (!result.trace_summary.empty()) {
        std::cout << result.trace_summary;
      }
    }

    const auto stats = service.stats();
    const auto exec = exact::ShardExecutor::instance().stats();
    std::cout << "\nservice: " << stats.requests << " requests = " << stats.misses
              << " solved + " << stats.hits << " cache hits + " << stats.coalesced
              << " coalesced; " << stats.evictions << " evictions\n"
              << "executor: " << exec.tasks_executed << " shard tasks across "
              << exec.requests << " requests on " << exact::ShardExecutor::instance().num_threads()
              << " workers\n";

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "qxmap_serve: cannot write trace to " << trace_path << "\n";
        return 1;
      }
      obs::TraceRecorder::instance().write_chrome_json(out);
      std::cout << "trace: " << obs::TraceRecorder::instance().event_count() << " events -> "
                << trace_path << "\n";
    }
    if (print_metrics) {
      std::cout << "\n";
      obs::MetricsRegistry::instance().write_prometheus(std::cout);
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "qxmap_serve: " << e.what() << "\n";
    return 1;
  }
}
