/// The paper's worked example, end to end: the Fig. 1a circuit is mapped
/// to IBM QX4 (coupling map of Fig. 2) and the minimal solution — cost
/// F = 4, matching Fig. 5 — is printed together with the machine-checked
/// equivalence verdict.

#include <iostream>

#include "api/qxmap.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "sim/equivalence.hpp"

int main() {
  using namespace qxmap;

  const Circuit original = bench::paper_example_circuit();
  const auto qx4 = arch::ibm_qx4();

  std::cout << "Fig. 1a circuit:\n" << original.to_string() << '\n';
  std::cout << "QX4 coupling map (Fig. 2, 0-based): ";
  for (const auto& [c, t] : qx4.edges()) std::cout << "(p" << c << "->p" << t << ") ";
  std::cout << "\n\n";

  for (const auto engine : {reason::EngineKind::Z3, reason::EngineKind::Cdcl}) {
    MapOptions options;
    options.exact.engine = engine;
    options.exact.budget = std::chrono::milliseconds(60000);
    const auto result = map(original, qx4, options);

    std::cout << "--- engine: " << result.engine_name << " ---\n";
    std::cout << "status: "
              << (result.status == reason::Status::Optimal ? "optimal" : "not proven optimal")
              << ", F = " << result.cost_f << " (paper's Fig. 5 minimum: 4)\n";
    std::cout << "SWAPs inserted: " << result.swaps_inserted
              << ", direction-reversed CNOTs: " << result.cnots_reversed << '\n';
    std::cout << "mapped circuit (" << result.mapped.size() << " gates):\n"
              << result.mapped.to_string();

    const auto equivalence = sim::check_mapped_circuit(original, result.mapped,
                                                       result.initial_layout,
                                                       result.final_layout);
    std::cout << "statevector equivalence: " << (equivalence.equivalent ? "PROVEN" : "FAILED")
              << " (" << equivalence.message << ")\n\n";
  }
  return 0;
}
