/// Reproduces the paper's headline comparison in miniature: for a handful
/// of Table-1 workloads, how far is the IBM-style heuristic (and a
/// Zulehner-style A*) above the certified minimum?

#include <iostream>

#include "api/qxmap.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "exact/reference_search.hpp"

int main(int argc, char** argv) {
  using namespace qxmap;

  std::vector<std::string> names = {"ex-1_166", "ham3_102", "4gt11_84", "4mod5-v0_20",
                                    "mod5d1_63"};
  if (argc > 1) names.assign(argv + 1, argv + argc);

  const auto qx4 = arch::ibm_qx4();

  std::cout << pad_right("benchmark", 14) << pad_left("orig", 6) << pad_left("cmin", 6)
            << pad_left("stochastic", 12) << pad_left("astar", 8) << pad_left("stoch +%", 10)
            << pad_left("astar +%", 10) << '\n';

  double total_overhead_pct = 0;
  int counted = 0;
  for (const auto& name : names) {
    const auto& b = bench::table1_benchmark(name);
    const Circuit circuit = b.build();

    std::vector<Gate> cnots;
    for (const auto& g : circuit) {
      if (g.is_cnot()) cnots.push_back(g);
    }
    std::vector<std::size_t> points;
    for (std::size_t k = 1; k < cnots.size(); ++k) points.push_back(k);
    exact::CostModel costs;
    costs.swap_cost = 7;
    const auto ref =
        exact::minimal_cost_reference(cnots, b.n, qx4, points, costs);
    const long long cmin = b.original_cost() + ref.cost_f;

    heuristic::StochasticSwapOptions sopt;
    sopt.seed = Rng::seed_from_string(name);
    sopt.runs = 5;
    const auto stoch = heuristic::map_stochastic_swap(circuit, qx4, sopt);
    const auto astar = heuristic::map_astar(circuit, qx4);

    const auto pct = [&](long long c) {
      return ref.cost_f == 0
                 ? std::string("--")
                 : format_fixed(100.0 * static_cast<double>(c - b.original_cost() - ref.cost_f) /
                                    static_cast<double>(ref.cost_f),
                                0) + "%";
    };
    std::cout << pad_right(name, 14) << pad_left(std::to_string(b.original_cost()), 6)
              << pad_left(std::to_string(cmin), 6)
              << pad_left(std::to_string(stoch.mapped.size()), 12)
              << pad_left(std::to_string(astar.mapped.size()), 8)
              << pad_left(pct(static_cast<long long>(stoch.mapped.size())), 10)
              << pad_left(pct(static_cast<long long>(astar.mapped.size())), 10) << '\n';
    if (ref.cost_f > 0) {
      total_overhead_pct += 100.0 *
                            static_cast<double>(static_cast<long long>(stoch.mapped.size()) -
                                                b.original_cost() - ref.cost_f) /
                            static_cast<double>(ref.cost_f);
      ++counted;
    }
  }
  if (counted > 0) {
    std::cout << "\naverage stochastic-swap overhead above the minimum (added gates): +"
              << format_fixed(total_overhead_pct / counted, 1)
              << "%  (paper reports +104% for Qiskit 0.4.15)\n";
  }
  return 0;
}
