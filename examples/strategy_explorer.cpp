/// Explores the Sec. 4 performance/quality trade-off on one benchmark:
/// runs the unrestricted exact method, the subset variant, and all three
/// permutation-point strategies, printing cost, Δmin and runtime for each.
///
///   $ ./strategy_explorer              # default benchmark: ham3_102
///   $ ./strategy_explorer alu-v0_27    # any Table-1 name
///   $ ./strategy_explorer rd32-v0_66 cdcl

#include <iostream>

#include "api/qxmap.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "common/strings.hpp"
#include "exact/reference_search.hpp"

int main(int argc, char** argv) {
  using namespace qxmap;

  const std::string name = argc > 1 ? argv[1] : "ham3_102";
  const auto engine = (argc > 2 && std::string(argv[2]) == "cdcl")
                          ? reason::EngineKind::Cdcl
                          : reason::EngineKind::Z3;
  const auto& benchmark = bench::table1_benchmark(name);
  const Circuit circuit = benchmark.build();
  const auto qx4 = arch::ibm_qx4();

  // Certified minimum from the DP reference.
  std::vector<Gate> cnots;
  for (const auto& g : circuit) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  std::vector<std::size_t> all_points;
  for (std::size_t k = 1; k < cnots.size(); ++k) all_points.push_back(k);
  const arch::SwapCostTable table(qx4);
  exact::CostModel costs;
  costs.swap_cost = 7;
  const auto reference =
      exact::minimal_cost_reference(cnots, circuit.num_qubits(), qx4, table, all_points, costs);

  std::cout << "benchmark " << name << ": n = " << benchmark.n
            << ", original cost = " << benchmark.original_cost()
            << ", certified minimal F = " << reference.cost_f << " (engine: "
            << reason::to_string(engine) << ")\n\n";
  std::cout << pad_right("variant", 22) << pad_left("|G'|+1", 8) << pad_left("F", 6)
            << pad_left("dmin", 6) << pad_left("time", 10) << pad_left("status", 12) << '\n';

  const auto run = [&](const std::string& label, exact::ExactOptions opt) {
    opt.engine = engine;
    opt.budget = std::chrono::milliseconds(20000);
    try {
      const auto res = exact::map_exact(circuit, qx4, opt);
      const bool found = res.status == reason::Status::Optimal ||
                         res.status == reason::Status::Feasible;
      std::cout << pad_right(label, 22) << pad_left(std::to_string(res.permutation_points), 8)
                << pad_left(found ? std::to_string(res.cost_f) : "--", 6)
                << pad_left(found ? "+" + std::to_string(res.cost_f - reference.cost_f) : "--",
                            6)
                << pad_left(format_fixed(res.seconds, 2) + "s", 10)
                << pad_left(res.status == reason::Status::Optimal ? "optimal"
                            : res.status == reason::Status::Feasible
                                ? "feasible"
                                : res.status == reason::Status::Unsat ? "unsat" : "unknown",
                            12)
                << '\n';
    } catch (const std::exception& e) {
      std::cout << pad_right(label, 22) << "error: " << e.what() << '\n';
    }
  };

  exact::ExactOptions base;
  run("minimal (Sec. 3)", base);
  exact::ExactOptions subsets = base;
  subsets.use_subsets = true;
  run("subsets (Sec. 4.1)", subsets);
  for (const auto strategy :
       {exact::PermutationStrategy::DisjointQubits, exact::PermutationStrategy::OddGates,
        exact::PermutationStrategy::QubitTriangle}) {
    exact::ExactOptions opt = base;
    opt.strategy = strategy;
    opt.use_subsets = true;
    run("strategy: " + exact::to_string(strategy), opt);
  }
  return 0;
}
