/// End-to-end tour of the OpenQASM 2.0 front-end: a circuit using a
/// user-defined gate, a qelib1 macro gate (cu1), a parameter expression and
/// a classical conditional is parsed, mapped onto IBM QX4 and re-emitted as
/// QASM — the `if` guard survives the whole trip on every gate it lowers to.

#include <iostream>

#include "api/qxmap.hpp"

int main() {
  constexpr const char* kSource = R"(OPENQASM 2.0;
include "qelib1.inc";
gate bellpair a,b { h a; cx a,b; }
qreg q[3];
creg c[1];
bellpair q[0], q[1];
cu1(pi/4) q[1], q[2];
measure q[1] -> c[0];
if (c == 1) x q[2];
)";

  using namespace qxmap;
  const Circuit circuit = qasm::parse(kSource, "frontend-demo");
  std::cout << "parsed " << circuit.size() << " gates on " << circuit.num_qubits()
            << " qubits:\n"
            << circuit.to_string() << '\n';

  MapOptions options;
  options.method = Method::Sabre;
  const auto result = map(circuit, arch::ibm_qx4(), options);
  std::cout << "mapped onto ibm_qx4 (" << result.mapped.size() << " gates):\n\n"
            << qasm::write(result.mapped);
  return 0;
}
