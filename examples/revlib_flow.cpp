/// RevLib flow: parse a `.real` reversible netlist (the format the paper's
/// benchmarks originate from), decompose its MCT gates into {U, CNOT},
/// map the result exactly, and emit executable OpenQASM.
///
///   $ ./revlib_flow            # built-in 3-qubit example netlist
///   $ ./revlib_flow file.real  # your own netlist

#include <iostream>

#include "api/qxmap.hpp"
#include "real/real_parser.hpp"

namespace {

constexpr const char* kExampleNetlist = R"(
# example reversible netlist (MCT gates)
.version 2.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.begin
t2 a b
t3 a b c
t2 b c
t1 a
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace qxmap;

  const real::RealFile file = argc > 1 ? real::parse_file(argv[1])
                                       : real::parse(kExampleNetlist, "example-netlist");

  std::cout << "parsed netlist: " << file.num_mct_gates << " reversible gates, max "
            << file.max_controls << " controls\n";
  std::cout << "decomposed to {U, CNOT}: " << file.circuit.size() << " gates ("
            << file.circuit.counts().cnot << " CNOTs)\n\n";

  MapOptions options;
  options.exact.use_subsets = true;  // netlists are usually narrower than the machine
  options.exact.budget = std::chrono::milliseconds(30000);
  const auto result = map(file.circuit, arch::ibm_qx4(), options);

  if (result.status != reason::Status::Optimal &&
      result.status != reason::Status::Feasible) {
    std::cerr << "mapping failed\n";
    return 1;
  }
  std::cout << "mapped to ibmqx4: +" << result.cost_f << " gates ("
            << result.swaps_inserted << " SWAPs, " << result.cnots_reversed
            << " reversed CNOTs), verification: " << result.verify_message << "\n\n";
  std::cout << qasm::write(result.mapped);
  return 0;
}
