#include "ir/layers.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace qxmap {

std::vector<std::vector<std::size_t>> asap_layers(const Circuit& c) {
  std::vector<std::vector<std::size_t>> layers;
  // For each qubit, the index of the last layer that touches it (-1: none).
  std::vector<int> last_layer(static_cast<std::size_t>(c.num_qubits()), -1);
  int barrier_floor = -1;  // gates may not be scheduled at or before this layer

  for (std::size_t gi = 0; gi < c.size(); ++gi) {
    const Gate& g = c.gate(gi);
    if (g.kind == OpKind::Barrier) {
      barrier_floor = static_cast<int>(layers.size()) - 1;
      continue;
    }
    int earliest = barrier_floor;
    for (const int q : g.qubits()) {
      earliest = std::max(earliest, last_layer[static_cast<std::size_t>(q)]);
    }
    const auto layer = static_cast<std::size_t>(earliest + 1);
    if (layer == layers.size()) layers.emplace_back();
    layers[layer].push_back(gi);
    for (const int q : g.qubits()) {
      last_layer[static_cast<std::size_t>(q)] = static_cast<int>(layer);
    }
  }
  return layers;
}

namespace {

/// Shared clustering walk: starts a new cluster whenever `fits` rejects
/// adding the gate's qubits to the running cluster set.
template <typename FitsFn>
std::vector<std::size_t> cluster_starts(const std::vector<Gate>& gates, FitsFn fits) {
  std::vector<std::size_t> starts;
  std::set<int> cluster_qubits;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const auto qs = gates[i].qubits();
    if (i > 0 && !fits(cluster_qubits, qs)) {
      starts.push_back(i);
      cluster_qubits.clear();
    }
    cluster_qubits.insert(qs.begin(), qs.end());
  }
  return starts;
}

}  // namespace

std::vector<std::size_t> disjoint_cluster_starts(const std::vector<Gate>& gates) {
  return cluster_starts(gates, [](const std::set<int>& cluster, const std::vector<int>& qs) {
    return std::none_of(qs.begin(), qs.end(),
                        [&](int q) { return cluster.contains(q); });
  });
}

std::vector<std::size_t> bounded_qubit_cluster_starts(const std::vector<Gate>& gates,
                                                      int max_qubits) {
  if (max_qubits < 2) throw std::invalid_argument("bounded_qubit_cluster_starts: max_qubits < 2");
  return cluster_starts(gates, [max_qubits](const std::set<int>& cluster, const std::vector<int>& qs) {
    std::set<int> merged = cluster;
    merged.insert(qs.begin(), qs.end());
    return static_cast<int>(merged.size()) <= max_qubits;
  });
}

}  // namespace qxmap
