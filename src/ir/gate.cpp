#include "ir/gate.hpp"

#include <stdexcept>
#include <utility>

#include "common/strings.hpp"

namespace qxmap {

bool is_single_qubit_kind(OpKind k) noexcept {
  switch (k) {
    case OpKind::I:
    case OpKind::X:
    case OpKind::Y:
    case OpKind::Z:
    case OpKind::H:
    case OpKind::S:
    case OpKind::Sdg:
    case OpKind::T:
    case OpKind::Tdg:
    case OpKind::Rx:
    case OpKind::Ry:
    case OpKind::Rz:
    case OpKind::U1:
    case OpKind::U2:
    case OpKind::U3:
      return true;
    default:
      return false;
  }
}

bool is_two_qubit_kind(OpKind k) noexcept { return k == OpKind::Cnot || k == OpKind::Swap; }

int parameter_count(OpKind k) noexcept {
  switch (k) {
    case OpKind::Rx:
    case OpKind::Ry:
    case OpKind::Rz:
    case OpKind::U1:
      return 1;
    case OpKind::U2:
      return 2;
    case OpKind::U3:
      return 3;
    default:
      return 0;
  }
}

std::string_view kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::I: return "id";
    case OpKind::X: return "x";
    case OpKind::Y: return "y";
    case OpKind::Z: return "z";
    case OpKind::H: return "h";
    case OpKind::S: return "s";
    case OpKind::Sdg: return "sdg";
    case OpKind::T: return "t";
    case OpKind::Tdg: return "tdg";
    case OpKind::Rx: return "rx";
    case OpKind::Ry: return "ry";
    case OpKind::Rz: return "rz";
    case OpKind::U1: return "u1";
    case OpKind::U2: return "u2";
    case OpKind::U3: return "u3";
    case OpKind::Cnot: return "cx";
    case OpKind::Swap: return "swap";
    case OpKind::Barrier: return "barrier";
    case OpKind::Measure: return "measure";
    case OpKind::Reset: return "reset";
  }
  return "?";
}

Gate Gate::single(OpKind k, int q) { return single(k, q, {}); }

Gate Gate::single(OpKind k, int q, std::vector<double> params) {
  if (!is_single_qubit_kind(k)) throw std::invalid_argument("Gate::single: kind is not single-qubit");
  if (q < 0) throw std::invalid_argument("Gate::single: negative qubit");
  if (static_cast<int>(params.size()) != parameter_count(k)) {
    throw std::invalid_argument("Gate::single: wrong parameter count for " + std::string(kind_name(k)));
  }
  Gate g;
  g.kind = k;
  g.target = q;
  g.params = std::move(params);
  return g;
}

Gate Gate::cnot(int control, int target) {
  if (control < 0 || target < 0) throw std::invalid_argument("Gate::cnot: negative qubit");
  if (control == target) throw std::invalid_argument("Gate::cnot: control == target");
  Gate g;
  g.kind = OpKind::Cnot;
  g.control = control;
  g.target = target;
  return g;
}

Gate Gate::swap(int a, int b) {
  if (a < 0 || b < 0) throw std::invalid_argument("Gate::swap: negative qubit");
  if (a == b) throw std::invalid_argument("Gate::swap: identical qubits");
  Gate g;
  g.kind = OpKind::Swap;
  g.target = a;
  g.control = b;
  return g;
}

Gate Gate::barrier() {
  Gate g;
  g.kind = OpKind::Barrier;
  g.target = -1;
  return g;
}

Gate Gate::measure(int q) { return measure(q, "c", q); }

Gate Gate::measure(int q, std::string creg, int bit) {
  if (q < 0) throw std::invalid_argument("Gate::measure: negative qubit");
  if (bit < 0) throw std::invalid_argument("Gate::measure: negative classical bit");
  if (creg.empty()) throw std::invalid_argument("Gate::measure: empty creg name");
  Gate g;
  g.kind = OpKind::Measure;
  g.target = q;
  g.cbit = ClassicalBit{std::move(creg), bit};
  return g;
}

Gate Gate::reset(int q) {
  if (q < 0) throw std::invalid_argument("Gate::reset: negative qubit");
  Gate g;
  g.kind = OpKind::Reset;
  g.target = q;
  return g;
}

Gate Gate::remapped(int new_target, int new_control) const {
  Gate g = *this;
  g.target = new_target;
  g.control = new_control;
  return g;
}

Gate Gate::with_condition(std::optional<Condition> cond) && {
  Gate g = std::move(*this);
  g.condition = std::move(cond);
  return g;
}

std::vector<int> Gate::qubits() const {
  if (kind == OpKind::Barrier) return {};
  if (control >= 0) return {control, target};
  return {target};
}

std::string Gate::to_string() const {
  std::string s;
  if (condition) {
    s += "if(" + condition->creg + "==" + std::to_string(condition->value) + ") ";
  }
  s += kind_name(kind);
  if (!params.empty()) {
    s += '(';
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i > 0) s += ", ";
      s += format_fixed(params[i], 6);
    }
    s += ')';
  }
  if (kind == OpKind::Barrier) return s;
  s += ' ';
  if (control >= 0) {
    s += 'q' + std::to_string(control) + ", ";
  }
  s += 'q' + std::to_string(target);
  return s;
}

}  // namespace qxmap
