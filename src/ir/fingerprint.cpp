#include "ir/fingerprint.hpp"

#include <cstddef>
#include <string_view>
#include <unordered_map>

#include "common/strings.hpp"

namespace qxmap {

namespace {

/// FNV-1a, 64-bit. Not cryptographic — the threat model is accidental
/// collision between benchmark circuits, not adversarial input.
class Fnv1a {
 public:
  void byte(std::uint8_t b) noexcept {
    hash_ ^= b;
    hash_ *= 0x100000001b3ULL;
  }
  void bytes(std::string_view s) noexcept {
    for (const char c : s) byte(static_cast<std::uint8_t>(c));
  }
  /// Little-endian fixed-width integer; the width keeps adjacent fields
  /// from aliasing by concatenation.
  void u32(std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Field tags: every variable-content field is introduced by a distinct tag
// byte so that, e.g., a condition can never byte-alias a parameter list.
enum Tag : std::uint8_t {
  kGate = 0x01,
  kParams = 0x02,
  kCondition = 0x03,
  kClassicalBit = 0x04,
};

}  // namespace

std::uint64_t fingerprint(const Circuit& c) {
  Fnv1a h;
  h.bytes("qxmap-circuit-v1");
  h.u32(static_cast<std::uint32_t>(c.num_qubits()));

  // Classical registers are identified by order of first appearance in the
  // gate stream (guards and measure destinations share one namespace, as
  // they do in the QASM source), so register *names* never reach the hash.
  std::unordered_map<std::string, std::uint32_t> creg_ids;
  const auto creg_id = [&creg_ids](const std::string& name) {
    const auto [it, inserted] =
        creg_ids.emplace(name, static_cast<std::uint32_t>(creg_ids.size()));
    (void)inserted;
    return it->second;
  };

  for (const auto& g : c) {
    h.byte(kGate);
    h.byte(static_cast<std::uint8_t>(g.kind));
    // +1 keeps the -1 "no control" sentinel in unsigned range.
    h.u32(static_cast<std::uint32_t>(g.target + 1));
    h.u32(static_cast<std::uint32_t>(g.control + 1));
    if (!g.params.empty()) {
      h.byte(kParams);
      h.u32(static_cast<std::uint32_t>(g.params.size()));
      for (const double p : g.params) {
        // The writer's own rendering (12 fixed decimals) is the canonical
        // form: one text round-trip is a fixed point of format→parse→format,
        // so parse(write(c)) hashes identically to c. This also hashes -0.0
        // and anything within half an ulp of the printed decimal the same
        // way the written file would.
        h.bytes(format_fixed(p, 12));
        h.byte(0);  // string terminator: params cannot run together
      }
    }
    if (g.condition) {
      h.byte(kCondition);
      h.u32(creg_id(g.condition->creg));
      h.u32(static_cast<std::uint32_t>(g.condition->width));
      h.u64(g.condition->value);
    }
    if (g.cbit) {
      h.byte(kClassicalBit);
      h.u32(creg_id(g.cbit->creg));
      h.u32(static_cast<std::uint32_t>(g.cbit->bit));
    }
  }
  return h.value();
}

std::string fingerprint_string(const Circuit& c) {
  const std::uint64_t fp = fingerprint(c);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out = "c";
  out += std::to_string(c.num_qubits());
  out += ':';
  for (int i = 60; i >= 0; i -= 4) out.push_back(kHex[(fp >> i) & 0xF]);
  return out;
}

}  // namespace qxmap
