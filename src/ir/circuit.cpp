#include "ir/circuit.hpp"

#include <stdexcept>

namespace qxmap {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  if (num_qubits < 0) throw std::invalid_argument("Circuit: negative qubit count");
}

void Circuit::append(Gate g) {
  for (const int q : g.qubits()) {
    if (q >= num_qubits_) {
      throw std::out_of_range("Circuit::append: gate touches qubit " + std::to_string(q) +
                              " but circuit has " + std::to_string(num_qubits_) + " qubits");
    }
  }
  gates_.push_back(std::move(g));
}

GateCounts Circuit::counts() const {
  GateCounts c;
  for (const auto& g : gates_) {
    if (g.is_single_qubit()) {
      ++c.single_qubit;
    } else if (g.is_cnot()) {
      ++c.cnot;
    } else if (g.is_swap()) {
      ++c.swap;
    } else {
      ++c.other;
    }
  }
  return c;
}

std::vector<std::size_t> Circuit::cnot_positions() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    if (gates_[i].is_cnot()) out.push_back(i);
  }
  return out;
}

Circuit Circuit::cnot_skeleton() const {
  Circuit out(num_qubits_, name_.empty() ? std::string{} : name_ + "/cnot-skeleton");
  for (const auto& g : gates_) {
    if (!g.is_cnot()) continue;
    // The skeleton only captures connectivity constraints; classical guards
    // are dropped (a guarded CNOT must be routable either way).
    out.append(Gate::cnot(g.control, g.target));
  }
  return out;
}

Circuit Circuit::with_swaps_expanded() const {
  Circuit out(num_qubits_, name_);
  for (const auto& g : gates_) {
    if (!g.is_swap()) {
      out.append(g);
      continue;
    }
    // SWAP(a,b) = CX(a,b) CX(b,a) CX(a,b); the middle CX is realised as
    // H a; H b; CX(a,b); H a; H b — the 7-operation form of Fig. 3. A
    // classical guard on the SWAP rides along to every expanded gate.
    const int a = g.target;
    const int b = g.control;
    out.append(Gate::cnot(a, b).with_condition(g.condition));
    out.append(Gate::single(OpKind::H, a).with_condition(g.condition));
    out.append(Gate::single(OpKind::H, b).with_condition(g.condition));
    out.append(Gate::cnot(a, b).with_condition(g.condition));
    out.append(Gate::single(OpKind::H, a).with_condition(g.condition));
    out.append(Gate::single(OpKind::H, b).with_condition(g.condition));
    out.append(Gate::cnot(a, b).with_condition(g.condition));
  }
  return out;
}

int Circuit::max_qubit_used() const noexcept {
  int mx = -1;
  for (const auto& g : gates_) {
    for (const int q : g.qubits()) mx = std::max(mx, q);
  }
  return mx;
}

std::string Circuit::to_string() const {
  std::string s = "circuit";
  if (!name_.empty()) s += " \"" + name_ + '"';
  s += " (" + std::to_string(num_qubits_) + " qubits, " + std::to_string(gates_.size()) + " gates)\n";
  for (const auto& g : gates_) {
    s += "  " + g.to_string() + '\n';
  }
  return s;
}

}  // namespace qxmap
