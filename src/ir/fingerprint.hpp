/// \file fingerprint.hpp
/// Canonical content fingerprint of a circuit's gate stream.
///
/// `fingerprint(c)` is a 64-bit hash over exactly the information the
/// mappers consume: the qubit count and the ordered gate stream (kind,
/// operands, angle parameters, classical guard, classical wiring). It is
/// the circuit-side cache key of the mapping service (api/service.hpp),
/// pairing with `arch::CouplingMap::fingerprint()` the way the swaps(π)
/// tables of `arch::SwapCostCache` are keyed on the architecture side.
///
/// Canonicalisation — two circuits that map identically hash identically:
///  * the circuit *name* is excluded (like the coupling-map fingerprint);
///  * classical register *names* are replaced by their order of first
///    appearance in the gate stream, so renaming a creg (and the qreg
///    renames the front-end already flattens away) never changes the hash;
///  * angle parameters are hashed at the QASM writer's 12-fixed-decimal
///    precision, so `parse(write(c))` — which re-reads the printed decimals
///    — fingerprints identically to `c`. Parameters closer than 5e-13 are
///    deliberately identified: the writer would emit the same text for
///    both, so no downstream consumer can tell them apart.
///
/// Everything else is significant: inserting, removing, reordering or
/// retargeting a gate, nudging a parameter beyond writer precision,
/// changing a guard's register/width/value or a measurement's classical
/// bit, and adding idle qubit lines all change the fingerprint. The hash
/// is FNV-1a over a field-tagged byte serialisation, so adjacent fields
/// cannot alias by concatenation.

#pragma once

#include <cstdint>
#include <string>

#include "ir/circuit.hpp"

namespace qxmap {

/// 64-bit canonical content hash of `c` (see file comment for what is and
/// is not significant).
[[nodiscard]] std::uint64_t fingerprint(const Circuit& c);

/// The fingerprint as a fixed-width key string "c<n>:<16 hex digits>",
/// e.g. "c5:9e1c7a0b44d2f310" — the qubit count is redundant with the hash
/// but makes keys self-describing in logs and cache dumps.
[[nodiscard]] std::string fingerprint_string(const Circuit& c);

}  // namespace qxmap
