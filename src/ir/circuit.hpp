/// \file circuit.hpp
/// Quantum circuit container (Def. 1): an ordered gate list over n qubits.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "ir/gate.hpp"

namespace qxmap {

/// Gate-count statistics used for the "original cost" column of Table 1
/// (number of single-qubit gates plus number of CNOTs).
struct GateCounts {
  int single_qubit = 0;
  int cnot = 0;
  int swap = 0;
  int other = 0;  ///< barriers, measures

  /// The paper's cost metric: every unitary elementary operation counts 1.
  /// SWAPs count 7 (3 CNOT + 4 H, Fig. 3) because architectures execute
  /// them decomposed.
  [[nodiscard]] int cost() const noexcept { return single_qubit + cnot + 7 * swap; }
};

/// An ordered sequence of gates over `num_qubits()` qubit lines.
class Circuit {
 public:
  Circuit() = default;

  /// Creates an empty circuit. \throws std::invalid_argument if n < 0.
  explicit Circuit(int num_qubits, std::string name = {});

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a gate. \throws std::out_of_range if the gate touches a qubit
  /// index >= num_qubits().
  void append(Gate g);

  /// Convenience appenders.
  void h(int q) { append(Gate::single(OpKind::H, q)); }
  void x(int q) { append(Gate::single(OpKind::X, q)); }
  void t(int q) { append(Gate::single(OpKind::T, q)); }
  void tdg(int q) { append(Gate::single(OpKind::Tdg, q)); }
  void s(int q) { append(Gate::single(OpKind::S, q)); }
  void sdg(int q) { append(Gate::single(OpKind::Sdg, q)); }
  void z(int q) { append(Gate::single(OpKind::Z, q)); }
  void cnot(int control, int target) { append(Gate::cnot(control, target)); }
  void swap(int a, int b) { append(Gate::swap(a, b)); }

  [[nodiscard]] std::size_t size() const noexcept { return gates_.size(); }
  [[nodiscard]] bool empty() const noexcept { return gates_.empty(); }
  [[nodiscard]] const Gate& gate(std::size_t i) const { return gates_.at(i); }
  [[nodiscard]] const std::vector<Gate>& gates() const noexcept { return gates_; }

  [[nodiscard]] auto begin() const noexcept { return gates_.begin(); }
  [[nodiscard]] auto end() const noexcept { return gates_.end(); }

  /// Gate-count statistics.
  [[nodiscard]] GateCounts counts() const;

  /// Indices (into gates()) of the CNOT gates, in order. The symbolic
  /// formulation is built over exactly these (footnote 3).
  [[nodiscard]] std::vector<std::size_t> cnot_positions() const;

  /// The circuit with all non-CNOT gates removed (Fig. 1b). Preserves
  /// num_qubits and name (suffixed with "/cnot-skeleton").
  [[nodiscard]] Circuit cnot_skeleton() const;

  /// The circuit with every SWAP expanded into its cost-7 realisation
  /// CNOT(a,b) · [H a; H b; CNOT(a,b); H a; H b] · CNOT(a,b) (Fig. 3 with the
  /// middle CNOT direction-reversed). `orient` decides the CNOT direction
  /// used for the outer gates; see swap_synthesis for the coupling-aware
  /// version — this one is coupling-agnostic and used by simulators.
  [[nodiscard]] Circuit with_swaps_expanded() const;

  /// Highest qubit index actually used, or -1 if no gate touches a qubit.
  [[nodiscard]] int max_qubit_used() const noexcept;

  /// Multi-line listing (one gate per line) for logs and error messages.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Circuit& a, const Circuit& b) = default;

 private:
  int num_qubits_ = 0;
  std::string name_;
  std::vector<Gate> gates_;
};

}  // namespace qxmap
