/// \file layers.hpp
/// Circuit layering / clustering utilities.
///
/// Two different groupings are needed:
///  * *ASAP layers* — maximal groups of gates acting on pairwise-disjoint
///    qubits where each gate is placed as early as dependencies allow. Used
///    by the heuristic mappers (this is the "layer" notion of Qiskit's swap
///    mapper and Zulehner's A* mapper, see footnote 7 of the paper).
///  * *Consecutive clusters* — maximal runs of *consecutive* gates whose
///    qubit sets satisfy a predicate. Used by the Sec. 4.2 permutation-point
///    strategies (*disjoint qubits* and *qubit triangle*), which only allow
///    re-mapping permutations at cluster boundaries.

#pragma once

#include <cstddef>
#include <vector>

#include "ir/circuit.hpp"

namespace qxmap {

/// Partitions the gate indices of `c` into ASAP layers: gate g is placed in
/// layer 1 + max(layer of any earlier gate sharing a qubit with g). Barriers
/// close all layers. Returned layers are non-empty and ordered.
[[nodiscard]] std::vector<std::vector<std::size_t>> asap_layers(const Circuit& c);

/// Indices `s` (0 < s < gates.size()) at which a new cluster begins when
/// clustering consecutive gates into runs with pairwise-disjoint qubit sets.
/// The paper's *disjoint qubits* strategy allows permutations exactly before
/// each such start (Example 10: G' = {g3, g4, g5} for Fig. 1b).
[[nodiscard]] std::vector<std::size_t> disjoint_cluster_starts(const std::vector<Gate>& gates);

/// Indices at which a new cluster begins when clustering consecutive gates
/// into runs whose union of qubits has at most `max_qubits` elements. With
/// `max_qubits == 3` this is the paper's *qubit triangle* clustering
/// (Example 10: G' = {g2} for Fig. 1b).
[[nodiscard]] std::vector<std::size_t> bounded_qubit_cluster_starts(const std::vector<Gate>& gates,
                                                                    int max_qubits);

}  // namespace qxmap
