/// \file gate.hpp
/// Gate representation for the quantum-circuit IR (Def. 1 of the paper).
///
/// A gate is either a single-qubit operation U(q, U-matrix) — here identified
/// by a symbolic kind plus optional angle parameters, since the mapper never
/// needs the actual matrix entries except for simulation — or a CNOT(qc, qt).
/// SWAP appears as a pseudo-gate that mappers *emit* and that the reporting
/// layer expands to its 7-gate decomposition (Fig. 3); architectures do not
/// support it natively.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace qxmap {

/// Gate kinds supported by the IR. The set covers the IBM QX elementary
/// gates (U1/U2/U3 + CX) and the common named gates appearing in RevLib /
/// QASM benchmarks; everything else must be decomposed by the front-end.
enum class OpKind : std::uint8_t {
  // single-qubit
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  Rx,
  Ry,
  Rz,
  U1,
  U2,
  U3,
  // two-qubit
  Cnot,
  Swap,
  // structural
  Barrier,
  Measure,
  Reset,
};

/// True for kinds that act on exactly one qubit and carry unitary semantics.
[[nodiscard]] bool is_single_qubit_kind(OpKind k) noexcept;

/// True for CNOT / SWAP.
[[nodiscard]] bool is_two_qubit_kind(OpKind k) noexcept;

/// Number of angle parameters the kind carries (Rx/Ry/Rz/U1: 1, U2: 2, U3: 3).
[[nodiscard]] int parameter_count(OpKind k) noexcept;

/// Lower-case QASM-style mnemonic ("h", "cx", "u3", …).
[[nodiscard]] std::string_view kind_name(OpKind k) noexcept;

/// Classical guard on a gate, from OpenQASM 2.0 `if (creg == value) op;`.
/// The gate executes only when the named classical register holds `value`.
/// Mappers treat guarded gates transparently (the guard rides along to every
/// elementary gate the operation lowers to); the QASM writer re-emits the
/// `if` prefix and the creg declaration.
struct Condition {
  std::string creg;         ///< source-level classical register name
  int width = 0;            ///< declared width of that register (bits)
  std::uint64_t value = 0;  ///< comparison value

  friend bool operator==(const Condition& a, const Condition& b) = default;
};

/// Classical destination of a measurement, from `measure q[i] -> creg[bit];`.
/// Mapping re-targets the *qubit* operand only; the classical wiring rides
/// along unchanged, and the QASM writer re-emits it verbatim (with the creg
/// declared wide enough).
struct ClassicalBit {
  std::string creg;  ///< classical register name
  int bit = 0;       ///< bit index within that register

  friend bool operator==(const ClassicalBit& a, const ClassicalBit& b) = default;
};

/// One quantum gate. Qubit indices refer to *logical* qubits in an unmapped
/// circuit and to *physical* qubits in a mapped circuit; the IR itself is
/// agnostic.
struct Gate {
  OpKind kind = OpKind::I;
  /// Target qubit (single-qubit ops, CNOT target, SWAP first operand,
  /// Measure target). For Barrier this is unused (barriers span the circuit).
  int target = 0;
  /// CNOT control / SWAP second operand; -1 for all other kinds.
  int control = -1;
  /// Angle parameters, length == parameter_count(kind).
  std::vector<double> params;
  /// Classical guard (`if (creg == value)`); unguarded when empty.
  std::optional<Condition> condition;
  /// Classical destination (Measure only); empty for every other kind.
  std::optional<ClassicalBit> cbit;

  /// Factory helpers keep construction sites short and validated.
  [[nodiscard]] static Gate single(OpKind k, int q);
  [[nodiscard]] static Gate single(OpKind k, int q, std::vector<double> params);
  [[nodiscard]] static Gate cnot(int control, int target);
  [[nodiscard]] static Gate swap(int a, int b);
  [[nodiscard]] static Gate barrier();
  /// Measurement into c[q] (the writer's default wiring).
  [[nodiscard]] static Gate measure(int q);
  /// Measurement into an explicit classical register bit.
  [[nodiscard]] static Gate measure(int q, std::string creg, int bit);
  /// Qubit reset to |0> (non-unitary, structural like Measure).
  [[nodiscard]] static Gate reset(int q);

  [[nodiscard]] bool is_single_qubit() const noexcept { return is_single_qubit_kind(kind); }
  [[nodiscard]] bool is_cnot() const noexcept { return kind == OpKind::Cnot; }
  [[nodiscard]] bool is_swap() const noexcept { return kind == OpKind::Swap; }
  [[nodiscard]] bool is_conditional() const noexcept { return condition.has_value(); }

  /// True for non-unitary single-qubit structural ops (Measure / Reset)
  /// that mappers route like single-qubit gates: re-target the qubit, keep
  /// everything else.
  [[nodiscard]] bool is_nonunitary() const noexcept {
    return kind == OpKind::Measure || kind == OpKind::Reset;
  }

  /// Copy of this gate with its qubit operands replaced; kind, params and
  /// condition are preserved. Mappers use this to re-target gates from
  /// logical to physical qubits without dropping the classical guard.
  [[nodiscard]] Gate remapped(int new_target, int new_control = -1) const;

  /// Copy of this gate carrying the given classical guard (or none). Used
  /// wherever one guarded source operation expands to several elementary
  /// gates that must all inherit the guard.
  [[nodiscard]] Gate with_condition(std::optional<Condition> cond) &&;

  /// The qubits this gate touches (1 or 2 entries; empty for Barrier).
  [[nodiscard]] std::vector<int> qubits() const;

  /// Human-readable rendering, e.g. "cx q2, q0" or "rz(0.5) q1".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Gate& a, const Gate& b) = default;
};

}  // namespace qxmap
