#include "bench_circuits/table1_suite.hpp"

#include <stdexcept>

#include "bench_circuits/generators.hpp"
#include "common/rng.hpp"

namespace qxmap::bench {

Circuit Table1Benchmark::build() const {
  return structured_circuit(n, single_qubit, cnot, Rng::seed_from_string(name), name);
}

const std::vector<Table1Benchmark>& table1_benchmarks() {
  // name, n, #1q, #CNOT, paper c_min, paper IBM-Qiskit c.
  static const std::vector<Table1Benchmark> kSuite = {
      {"3_17_13", 3, 19, 17, 59, 80},
      {"ex-1_166", 3, 10, 9, 31, 39},
      {"ham3_102", 3, 9, 11, 36, 48},
      {"miller_11", 3, 27, 23, 82, 82},
      {"4gt11_84", 4, 9, 9, 34, 37},
      {"rd32-v0_66", 4, 18, 16, 63, 101},
      {"rd32-v1_68", 4, 20, 16, 65, 99},
      {"4gt11_82", 5, 9, 18, 62, 77},
      {"4gt11_83", 5, 9, 14, 49, 65},
      {"4gt13_92", 5, 36, 30, 109, 126},
      {"4mod5-v0_19", 5, 19, 16, 64, 109},
      {"4mod5-v0_20", 5, 10, 10, 35, 64},
      {"4mod5-v1_22", 5, 10, 11, 40, 52},
      {"4mod5-v1_24", 5, 20, 16, 63, 98},
      {"alu-v0_27", 5, 19, 17, 63, 101},
      {"alu-v1_28", 5, 19, 18, 64, 123},
      {"alu-v1_29", 5, 20, 17, 64, 104},
      {"alu-v2_33", 5, 20, 17, 64, 99},
      {"alu-v3_34", 5, 28, 24, 90, 178},
      {"alu-v3_35", 5, 19, 18, 64, 121},
      {"alu-v4_37", 5, 19, 18, 64, 110},
      {"mod5d1_63", 5, 9, 13, 48, 98},
      {"mod5mils_65", 5, 19, 16, 64, 108},
      {"qe_q_4", 5, 44, 27, 94, 115},
      {"qe_q_5", 5, 69, 38, 135, 163},
  };
  return kSuite;
}

const Table1Benchmark& table1_benchmark(const std::string& name) {
  for (const auto& b : table1_benchmarks()) {
    if (b.name == name) return b;
  }
  throw std::invalid_argument("unknown Table-1 benchmark: " + name);
}

Circuit paper_example_circuit() {
  // Fig. 1a with the paper's 1-based qubits q1..q4 as 0-based 0..3.
  Circuit c(4, "fig1a");
  c.h(2);        // H q3
  c.cnot(2, 3);  // g1: CX(q3, q4)
  c.h(1);        // H q2
  c.cnot(0, 1);  // g2: CX(q1, q2)
  c.t(0);        // T q1
  c.cnot(1, 2);  // g3: CX(q2, q3)
  c.cnot(0, 1);  // g4: CX(q1, q2)
  c.cnot(2, 1);  // g5: CX(q3, q2)
  return c;
}

}  // namespace qxmap::bench
