#include "bench_circuits/generators.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace qxmap::bench {

namespace {
const OpKind kSingleKinds[] = {OpKind::X, OpKind::H, OpKind::S,
                               OpKind::Sdg, OpKind::T, OpKind::Tdg};
}

Circuit random_circuit(int num_qubits, int num_single, int num_cnot, std::uint64_t seed,
                       std::string name) {
  if (num_qubits < 2 && num_cnot > 0) {
    throw std::invalid_argument("random_circuit: CNOTs need at least 2 qubits");
  }
  if (num_single < 0 || num_cnot < 0) {
    throw std::invalid_argument("random_circuit: negative gate count");
  }
  Rng rng(seed);
  // Random interleaving: a shuffled tag vector (true = CNOT slot).
  std::vector<bool> is_cnot(static_cast<std::size_t>(num_single + num_cnot), false);
  std::fill(is_cnot.begin(), is_cnot.begin() + num_cnot, true);
  rng.shuffle(is_cnot);

  Circuit c(num_qubits, std::move(name));
  for (const bool cnot_slot : is_cnot) {
    if (cnot_slot) {
      const int control = rng.next_int(0, num_qubits - 1);
      int target = rng.next_int(0, num_qubits - 2);
      if (target >= control) ++target;
      c.cnot(control, target);
    } else {
      const OpKind kind = kSingleKinds[rng.next_below(std::size(kSingleKinds))];
      c.append(Gate::single(kind, rng.next_int(0, num_qubits - 1)));
    }
  }
  return c;
}

Circuit random_cnot_circuit(int num_qubits, int num_cnot, std::uint64_t seed, std::string name) {
  return random_circuit(num_qubits, 0, num_cnot, seed, std::move(name));
}

Circuit structured_circuit(int num_qubits, int num_single, int num_cnot, std::uint64_t seed,
                           std::string name) {
  if (num_qubits < 2 && num_cnot > 0) {
    throw std::invalid_argument("structured_circuit: CNOTs need at least 2 qubits");
  }
  if (num_single < 0 || num_cnot < 0) {
    throw std::invalid_argument("structured_circuit: negative gate count");
  }
  Rng rng(seed);

  // A "unit" is an uninterruptible CNOT-bearing fragment: either one
  // Toffoli-style block (6 CNOTs + 9 singles on a triple) or one CNOT.
  std::vector<std::vector<Gate>> units;
  int cx_left = num_cnot;
  int oneq_left = num_single;

  const int max_blocks = num_qubits >= 3 ? std::min(num_cnot / 6, num_single / 9) : 0;
  const int blocks =
      max_blocks > 0 ? static_cast<int>(rng.next_below(static_cast<std::uint64_t>(max_blocks) + 1))
                     : 0;
  for (int blk = 0; blk < blocks; ++blk) {
    // Random distinct triple (c1, c2, t).
    const int c1 = rng.next_int(0, num_qubits - 1);
    int c2 = rng.next_int(0, num_qubits - 2);
    if (c2 >= c1) ++c2;
    int t = rng.next_int(0, num_qubits - 3);
    for (const int used : {std::min(c1, c2), std::max(c1, c2)}) {
      if (t >= used) ++t;
    }
    std::vector<Gate> block;
    block.push_back(Gate::single(OpKind::H, t));
    block.push_back(Gate::cnot(c2, t));
    block.push_back(Gate::single(OpKind::Tdg, t));
    block.push_back(Gate::cnot(c1, t));
    block.push_back(Gate::single(OpKind::T, t));
    block.push_back(Gate::cnot(c2, t));
    block.push_back(Gate::single(OpKind::Tdg, t));
    block.push_back(Gate::cnot(c1, t));
    block.push_back(Gate::single(OpKind::T, c2));
    block.push_back(Gate::single(OpKind::T, t));
    block.push_back(Gate::cnot(c1, c2));
    block.push_back(Gate::single(OpKind::H, t));
    block.push_back(Gate::single(OpKind::T, c1));
    block.push_back(Gate::single(OpKind::Tdg, c2));
    block.push_back(Gate::cnot(c1, c2));
    units.push_back(std::move(block));
    cx_left -= 6;
    oneq_left -= 9;
  }

  // Leftover CNOTs with locality bias: reuse a qubit of the previous pair
  // with high probability, as consecutive reversible gates tend to.
  int prev_a = -1;
  int prev_b = -1;
  for (int g = 0; g < cx_left; ++g) {
    int a;
    if (prev_a >= 0 && rng.next_bool(0.6)) {
      a = rng.next_bool(0.5) ? prev_a : prev_b;
    } else {
      a = rng.next_int(0, num_qubits - 1);
    }
    int b = rng.next_int(0, num_qubits - 2);
    if (b >= a) ++b;
    units.push_back({rng.next_bool(0.5) ? Gate::cnot(a, b) : Gate::cnot(b, a)});
    prev_a = a;
    prev_b = b;
  }
  rng.shuffle(units);

  // Sprinkle the leftover single-qubit gates at random unit boundaries.
  std::vector<std::size_t> insert_before(static_cast<std::size_t>(oneq_left));
  for (auto& pos : insert_before) pos = rng.next_below(units.size() + 1);

  Circuit c(num_qubits, std::move(name));
  for (std::size_t u = 0; u <= units.size(); ++u) {
    for (const auto pos : insert_before) {
      if (pos == u) {
        const OpKind kind = kSingleKinds[rng.next_below(std::size(kSingleKinds))];
        c.append(Gate::single(kind, rng.next_int(0, num_qubits - 1)));
      }
    }
    if (u < units.size()) {
      for (const auto& g : units[u]) c.append(g);
    }
  }
  return c;
}

Circuit su4_random_circuit(int num_qubits, int num_layers, std::uint64_t seed,
                           std::string name) {
  if (num_qubits < 2) throw std::invalid_argument("su4_random_circuit: need >= 2 qubits");
  if (num_layers < 0) throw std::invalid_argument("su4_random_circuit: negative layer count");
  Rng rng(seed);
  Circuit c(num_qubits, std::move(name));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const auto angle = [&rng] { return kTwoPi * rng.next_double(); };
  const auto u3 = [&](int q) {
    c.append(Gate::single(OpKind::U3, q, {angle(), angle(), angle()}));
  };
  std::vector<int> order(static_cast<std::size_t>(num_qubits));
  for (int q = 0; q < num_qubits; ++q) order[static_cast<std::size_t>(q)] = q;
  for (int layer = 0; layer < num_layers; ++layer) {
    rng.shuffle(order);
    int p = 0;
    for (; p + 1 < num_qubits; p += 2) {
      const int a = order[static_cast<std::size_t>(p)];
      const int b = order[static_cast<std::size_t>(p + 1)];
      // Vatan–Williams SU(4) block: 3 CNOTs + 7 parameterised singles.
      u3(a);
      u3(b);
      c.cnot(b, a);
      c.append(Gate::single(OpKind::Rz, a, {angle()}));
      c.append(Gate::single(OpKind::Ry, b, {angle()}));
      c.cnot(a, b);
      c.append(Gate::single(OpKind::Ry, b, {angle()}));
      c.cnot(b, a);
      u3(a);
      u3(b);
    }
    if (p < num_qubits) u3(order[static_cast<std::size_t>(p)]);
  }
  return c;
}

Circuit layered_cnot_circuit(int num_qubits, int num_layers, std::uint64_t seed,
                             std::string name) {
  if (num_qubits < 2) throw std::invalid_argument("layered_cnot_circuit: need >= 2 qubits");
  Rng rng(seed);
  Circuit c(num_qubits, std::move(name));
  std::vector<int> order(static_cast<std::size_t>(num_qubits));
  for (int q = 0; q < num_qubits; ++q) order[static_cast<std::size_t>(q)] = q;
  for (int layer = 0; layer < num_layers; ++layer) {
    rng.shuffle(order);
    for (int p = 0; p + 1 < num_qubits; p += 2) {
      c.cnot(order[static_cast<std::size_t>(p)], order[static_cast<std::size_t>(p + 1)]);
    }
  }
  return c;
}

}  // namespace qxmap::bench
