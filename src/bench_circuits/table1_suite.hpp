/// \file table1_suite.hpp
/// The 25 benchmark instances of the paper's Table 1.
///
/// The original circuits are RevLib/QASM netlists [4, 20] that are not
/// redistributable here, so each instance is regenerated *synthetically
/// with the same shape*: identical logical qubit count, identical number of
/// single-qubit gates, and identical number of CNOTs (the paper's
/// "original cost" column is exactly #1q + #CNOT), with a deterministic
/// per-name seed. Mapping difficulty is governed by (n, CNOT sequence,
/// coupling map), so the evaluation's comparisons (minimal vs.
/// close-to-minimal vs. heuristic, runtime ordering of the strategies)
/// reproduce; absolute mapped costs differ from the paper's. The paper's
/// reported c_min and Qiskit ("IBM [12]") gate counts are carried along for
/// side-by-side reporting in EXPERIMENTS.md.

#pragma once

#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qxmap::bench {

/// One Table-1 row's workload description.
struct Table1Benchmark {
  std::string name;        ///< benchmark name as printed in the paper
  int n = 0;               ///< logical qubits
  int single_qubit = 0;    ///< single-qubit gates before mapping
  int cnot = 0;            ///< CNOT gates before mapping
  int paper_cmin = 0;      ///< paper's minimal mapped cost (Table 1, c_min)
  int paper_ibm = 0;       ///< paper's Qiskit 0.4.15 result (Table 1, IBM [12])

  /// The paper's "original cost" column: #1q + #CNOT.
  [[nodiscard]] int original_cost() const noexcept { return single_qubit + cnot; }

  /// Builds the synthetic instance (deterministic per name).
  [[nodiscard]] Circuit build() const;
};

/// All 25 instances in Table-1 order.
[[nodiscard]] const std::vector<Table1Benchmark>& table1_benchmarks();

/// Lookup by name. \throws std::invalid_argument for unknown names.
[[nodiscard]] const Table1Benchmark& table1_benchmark(const std::string& name);

/// The paper's running example (Fig. 1a): 4 qubits, 8 gates —
/// H q3; CX(q3,q4); H q2; CX(q1,q2); T q1; CX(q2,q3); CX(q1,q2); CX(q3,q2).
/// Its minimal mapping cost onto IBM QX4 is F = 4 (Fig. 5).
[[nodiscard]] Circuit paper_example_circuit();

}  // namespace qxmap::bench
