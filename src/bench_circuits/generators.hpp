/// \file generators.hpp
/// Deterministic random-circuit generators used for the synthetic Table-1
/// instances, the scaling benchmarks, and the property-based tests.

#pragma once

#include <cstdint>
#include <string>

#include "ir/circuit.hpp"

namespace qxmap::bench {

/// A circuit with exactly `num_single` single-qubit gates (kinds drawn from
/// {X, H, S, Sdg, T, Tdg}) and `num_cnot` CNOTs on uniformly random distinct
/// pairs, interleaved uniformly at random. Deterministic per seed.
[[nodiscard]] Circuit random_circuit(int num_qubits, int num_single, int num_cnot,
                                     std::uint64_t seed, std::string name = {});

/// CNOT-only variant (the mapping problem's essential core).
[[nodiscard]] Circuit random_cnot_circuit(int num_qubits, int num_cnot, std::uint64_t seed,
                                          std::string name = {});

/// `num_layers` layers, each containing floor(num_qubits/2) CNOTs on a
/// random perfect matching of the qubits — the dense-layer workload used by
/// the scaling benchmark.
[[nodiscard]] Circuit layered_cnot_circuit(int num_qubits, int num_layers, std::uint64_t seed,
                                           std::string name = {});

/// SU(4) random benchmark in the style of Zulehner/Wille ("Compiling SU(4)
/// Quantum Circuits to IBM QX Architectures", see PAPERS.md): `num_layers`
/// layers, each pairing the qubits by a fresh random permutation and
/// applying one random two-qubit SU(4) block per adjacent pair. A block is
/// the 3-CNOT Vatan–Williams realisation — U3 on both qubits, CX, Rz/Ry,
/// CX, Ry, CX, U3 on both — with all 15 angles drawn uniformly from
/// [0, 2π); an odd qubit left unpaired receives a lone random U3. The
/// workload is maximally generic (every block is entangling, pairings
/// ignore locality), which is exactly what makes it a mapper stress test.
/// Deterministic per seed; emits plain IR that the QASM writer round-trips
/// bit-identically at its 12-decimal precision.
[[nodiscard]] Circuit su4_random_circuit(int num_qubits, int num_layers, std::uint64_t seed,
                                         std::string name = {});

/// Reversible-netlist-shaped circuit with exactly `num_single` single-qubit
/// gates and `num_cnot` CNOTs: as much of the budget as a random draw
/// allows is spent on Toffoli-style blocks (the 15-gate CCX network: 6
/// CNOTs + 9 single-qubit gates on a random qubit triple) and the rest on
/// locality-biased CNOTs / random single-qubit gates. This mirrors the
/// structure of the RevLib circuits behind Table 1 far better than uniform
/// pair sampling — real netlists hammer few qubit pairs repeatedly.
[[nodiscard]] Circuit structured_circuit(int num_qubits, int num_single, int num_cnot,
                                         std::uint64_t seed, std::string name = {});

}  // namespace qxmap::bench
