/// \file gf2.hpp
/// Dense linear algebra over GF(2), rows packed into 64-bit words.
///
/// A circuit consisting only of CNOT (and SWAP) gates computes an invertible
/// linear map on basis-state indices over GF(2). The equivalence checker
/// (sim/linear_reversible) uses this to verify, for circuits of *any* size,
/// that a mapped circuit realises the original CNOT skeleton up to the
/// input/output qubit placements chosen by the mapper.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qxmap {

class Permutation;

/// Square boolean matrix over GF(2). Row-major; bit j of row i is entry
/// (i, j). Dimensions up to a few thousand are fine; the mapper uses n <= 20.
class Gf2Matrix {
 public:
  /// Zero matrix of size n x n.
  explicit Gf2Matrix(std::size_t n);

  /// Identity matrix of size n x n.
  [[nodiscard]] static Gf2Matrix identity(std::size_t n);

  /// Permutation matrix: maps unit vector e_i to e_{pi(i)}.
  [[nodiscard]] static Gf2Matrix from_permutation(const Permutation& pi);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  /// Entry (row, col).
  [[nodiscard]] bool get(std::size_t row, std::size_t col) const;
  void set(std::size_t row, std::size_t col, bool value);

  /// In-place row update: row[target] ^= row[source]. This is exactly the
  /// action of CNOT(control=source, target=target) on the phase-space
  /// representation used by linear_reversible.
  void xor_row(std::size_t target, std::size_t source);

  /// Swap two rows (action of a SWAP gate).
  void swap_rows(std::size_t a, std::size_t b);

  /// Matrix product (this * rhs) over GF(2).
  [[nodiscard]] Gf2Matrix multiply(const Gf2Matrix& rhs) const;

  /// Rank via Gaussian elimination (does not modify *this).
  [[nodiscard]] std::size_t rank() const;

  /// True iff invertible (rank == n).
  [[nodiscard]] bool invertible() const;

  /// Inverse via Gauss–Jordan.
  /// \throws std::domain_error if singular.
  [[nodiscard]] Gf2Matrix inverse() const;

  /// Multi-line 0/1 rendering for diagnostics.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Gf2Matrix& a, const Gf2Matrix& b) = default;

 private:
  [[nodiscard]] std::size_t words_per_row() const noexcept { return (n_ + 63) / 64; }

  std::size_t n_;
  std::vector<std::uint64_t> bits_;  // rows concatenated
};

}  // namespace qxmap
