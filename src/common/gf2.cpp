#include "common/gf2.hpp"

#include <stdexcept>

#include "common/permutation.hpp"

namespace qxmap {

Gf2Matrix::Gf2Matrix(std::size_t n) : n_(n), bits_(n * ((n + 63) / 64), 0) {}

Gf2Matrix Gf2Matrix::identity(std::size_t n) {
  Gf2Matrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, i, true);
  return m;
}

Gf2Matrix Gf2Matrix::from_permutation(const Permutation& pi) {
  Gf2Matrix m(pi.size());
  for (std::size_t i = 0; i < pi.size(); ++i) {
    m.set(static_cast<std::size_t>(pi.at(i)), i, true);
  }
  return m;
}

bool Gf2Matrix::get(std::size_t row, std::size_t col) const {
  if (row >= n_ || col >= n_) throw std::out_of_range("Gf2Matrix::get");
  return (bits_[row * words_per_row() + col / 64] >> (col % 64)) & 1ULL;
}

void Gf2Matrix::set(std::size_t row, std::size_t col, bool value) {
  if (row >= n_ || col >= n_) throw std::out_of_range("Gf2Matrix::set");
  auto& word = bits_[row * words_per_row() + col / 64];
  const std::uint64_t mask = 1ULL << (col % 64);
  if (value) {
    word |= mask;
  } else {
    word &= ~mask;
  }
}

void Gf2Matrix::xor_row(std::size_t target, std::size_t source) {
  if (target >= n_ || source >= n_) throw std::out_of_range("Gf2Matrix::xor_row");
  const std::size_t w = words_per_row();
  for (std::size_t k = 0; k < w; ++k) {
    bits_[target * w + k] ^= bits_[source * w + k];
  }
}

void Gf2Matrix::swap_rows(std::size_t a, std::size_t b) {
  if (a >= n_ || b >= n_) throw std::out_of_range("Gf2Matrix::swap_rows");
  const std::size_t w = words_per_row();
  for (std::size_t k = 0; k < w; ++k) {
    std::swap(bits_[a * w + k], bits_[b * w + k]);
  }
}

Gf2Matrix Gf2Matrix::multiply(const Gf2Matrix& rhs) const {
  if (rhs.n_ != n_) throw std::invalid_argument("Gf2Matrix::multiply: size mismatch");
  Gf2Matrix out(n_);
  const std::size_t w = words_per_row();
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      if (!get(i, j)) continue;
      // out.row(i) ^= rhs.row(j)
      for (std::size_t k = 0; k < w; ++k) {
        out.bits_[i * w + k] ^= rhs.bits_[j * w + k];
      }
    }
  }
  return out;
}

std::size_t Gf2Matrix::rank() const {
  Gf2Matrix m = *this;
  const std::size_t w = words_per_row();
  std::size_t rank = 0;
  for (std::size_t col = 0; col < n_ && rank < n_; ++col) {
    std::size_t pivot = rank;
    while (pivot < n_ && !m.get(pivot, col)) ++pivot;
    if (pivot == n_) continue;
    m.swap_rows(rank, pivot);
    for (std::size_t r = 0; r < n_; ++r) {
      if (r != rank && m.get(r, col)) {
        for (std::size_t k = 0; k < w; ++k) {
          m.bits_[r * w + k] ^= m.bits_[rank * w + k];
        }
      }
    }
    ++rank;
  }
  return rank;
}

bool Gf2Matrix::invertible() const { return rank() == n_; }

Gf2Matrix Gf2Matrix::inverse() const {
  Gf2Matrix m = *this;
  Gf2Matrix inv = identity(n_);
  const std::size_t w = words_per_row();
  for (std::size_t col = 0; col < n_; ++col) {
    std::size_t pivot = col;
    while (pivot < n_ && !m.get(pivot, col)) ++pivot;
    if (pivot == n_) throw std::domain_error("Gf2Matrix::inverse: singular matrix");
    m.swap_rows(col, pivot);
    inv.swap_rows(col, pivot);
    for (std::size_t r = 0; r < n_; ++r) {
      if (r != col && m.get(r, col)) {
        for (std::size_t k = 0; k < w; ++k) {
          m.bits_[r * w + k] ^= m.bits_[col * w + k];
          inv.bits_[r * w + k] ^= inv.bits_[col * w + k];
        }
      }
    }
  }
  return inv;
}

std::string Gf2Matrix::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) {
      s += get(i, j) ? '1' : '0';
    }
    s += '\n';
  }
  return s;
}

}  // namespace qxmap
