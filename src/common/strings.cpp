#include "common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace qxmap {

namespace {
bool is_space(char c) noexcept { return std::isspace(static_cast<unsigned char>(c)) != 0; }
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_whitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out += std::string(width - out.size(), ' ');
  return out;
}

}  // namespace qxmap
