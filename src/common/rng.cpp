#include "common/rng.hpp"

#include <algorithm>

namespace qxmap {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::seed_from_string(std::string_view name) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire-style rejection: reject values in the biased tail.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept {
  return next_double() < std::clamp(p, 0.0, 1.0);
}

}  // namespace qxmap
