/// \file strings.hpp
/// Small string utilities shared by the QASM/RevLib front-ends and the
/// table-printing benchmark harnesses.

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace qxmap {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on `sep`, dropping empty pieces.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char sep);

/// Splits on any ASCII whitespace, dropping empty pieces.
[[nodiscard]] std::vector<std::string> split_whitespace(std::string_view s);

/// Lower-cases ASCII letters.
[[nodiscard]] std::string to_lower(std::string_view s);

/// Fixed-point rendering with the given number of decimals (no locale).
[[nodiscard]] std::string format_fixed(double value, int decimals);

/// Left-pads `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);

/// Right-pads `s` with spaces to at least `width` characters.
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

}  // namespace qxmap
