#include "common/permutation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace qxmap {

Permutation::Permutation(std::size_t m) : images_(m) {
  std::iota(images_.begin(), images_.end(), 0);
}

Permutation::Permutation(std::vector<int> images) : images_(std::move(images)) {
  std::vector<bool> seen(images_.size(), false);
  for (const int v : images_) {
    if (v < 0 || static_cast<std::size_t>(v) >= images_.size() || seen[static_cast<std::size_t>(v)]) {
      throw std::invalid_argument("Permutation: image vector is not a bijection");
    }
    seen[static_cast<std::size_t>(v)] = true;
  }
}

bool Permutation::is_identity() const noexcept {
  for (std::size_t i = 0; i < images_.size(); ++i) {
    if (images_[i] != static_cast<int>(i)) return false;
  }
  return true;
}

Permutation Permutation::then(const Permutation& b) const {
  if (b.size() != size()) throw std::invalid_argument("Permutation::then: size mismatch");
  std::vector<int> out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out[i] = b.images_[static_cast<std::size_t>(images_[i])];
  }
  return Permutation(std::move(out));
}

Permutation Permutation::inverse() const {
  std::vector<int> out(size());
  for (std::size_t i = 0; i < size(); ++i) {
    out[static_cast<std::size_t>(images_[i])] = static_cast<int>(i);
  }
  return Permutation(std::move(out));
}

Permutation Permutation::with_transposition(int a, int b) const {
  if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= size() || static_cast<std::size_t>(b) >= size()) {
    throw std::out_of_range("Permutation::with_transposition: index out of range");
  }
  std::vector<int> out = images_;
  // The transposition acts on the *targets*: states currently at a and b swap.
  for (auto& v : out) {
    if (v == a) {
      v = b;
    } else if (v == b) {
      v = a;
    }
  }
  return Permutation(std::move(out));
}

std::uint64_t Permutation::rank() const {
  // Lehmer code: for each position, count smaller elements to the right.
  const std::size_t m = size();
  std::uint64_t r = 0;
  for (std::size_t i = 0; i < m; ++i) {
    std::uint64_t smaller = 0;
    for (std::size_t j = i + 1; j < m; ++j) {
      if (images_[j] < images_[i]) ++smaller;
    }
    r += smaller * factorial(m - i - 1);
  }
  return r;
}

Permutation Permutation::from_rank(std::size_t m, std::uint64_t r) {
  if (r >= factorial(m)) throw std::out_of_range("Permutation::from_rank: rank out of range");
  std::vector<int> pool(m);
  std::iota(pool.begin(), pool.end(), 0);
  std::vector<int> out;
  out.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::uint64_t f = factorial(m - i - 1);
    const auto idx = static_cast<std::size_t>(r / f);
    r %= f;
    out.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return Permutation(std::move(out));
}

std::vector<Permutation> Permutation::all(std::size_t m) {
  std::vector<int> v(m);
  std::iota(v.begin(), v.end(), 0);
  std::vector<Permutation> out;
  out.reserve(static_cast<std::size_t>(factorial(m)));
  do {
    out.emplace_back(v);
  } while (std::next_permutation(v.begin(), v.end()));
  return out;
}

std::uint64_t Permutation::factorial(std::size_t m) {
  if (m > 20) throw std::out_of_range("Permutation::factorial: m > 20 overflows 64 bits");
  std::uint64_t f = 1;
  for (std::size_t i = 2; i <= m; ++i) f *= i;
  return f;
}

std::vector<std::vector<int>> Permutation::nontrivial_cycles() const {
  std::vector<std::vector<int>> cycles;
  std::vector<bool> seen(size(), false);
  for (std::size_t start = 0; start < size(); ++start) {
    if (seen[start] || images_[start] == static_cast<int>(start)) continue;
    std::vector<int> cycle;
    auto cur = static_cast<int>(start);
    while (!seen[static_cast<std::size_t>(cur)]) {
      seen[static_cast<std::size_t>(cur)] = true;
      cycle.push_back(cur);
      cur = images_[static_cast<std::size_t>(cur)];
    }
    cycles.push_back(std::move(cycle));
  }
  return cycles;
}

int Permutation::min_transpositions() const {
  int moved = 0;
  int cycles = 0;
  for (const auto& c : nontrivial_cycles()) {
    moved += static_cast<int>(c.size());
    ++cycles;
  }
  return moved - cycles;
}

std::string Permutation::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i > 0) s += ' ';
    s += std::to_string(images_[i]);
  }
  s += ']';
  return s;
}

}  // namespace qxmap
