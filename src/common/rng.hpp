/// \file rng.hpp
/// Deterministic, seedable random number generation.
///
/// Every randomized component of the library (synthetic benchmark
/// generation, the Qiskit-style stochastic swap mapper) takes an explicit
/// `Rng` so runs are reproducible; there is no global RNG state.

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace qxmap {

/// xoshiro256** seeded via splitmix64. Small, fast, and good enough for
/// workload generation and randomized search (not for cryptography).
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Convenience: derive a 64-bit seed from a string (FNV-1a), so each named
  /// benchmark gets its own stable stream.
  [[nodiscard]] static std::uint64_t seed_from_string(std::string_view name) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0. Uses rejection
  /// sampling, so the distribution is exactly uniform.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  int next_int(int lo, int hi) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// True with probability `p` (clamped to [0,1]).
  bool next_bool(double p) noexcept;

  /// Fisher–Yates shuffle. Written via a temporary so it also works with
  /// proxy references (std::vector<bool>).
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(next_below(i));
      const T tmp = v[i - 1];
      v[i - 1] = v[j];
      v[j] = tmp;
    }
  }

  /// Picks a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace qxmap
