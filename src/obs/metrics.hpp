/// \file metrics.hpp
/// Process-wide metrics registry: counters, gauges, and log-scale histograms
/// with Prometheus-style text exposition and a JSON snapshot.
///
/// `MetricsRegistry::instance()` owns every metric by name. Instruments are
/// registered once (first `counter()` / `gauge()` / `histogram()` call wins;
/// later calls with the same name return the same instrument) and live for
/// the whole process, so call sites cache the reference:
///
/// ```cpp
/// static obs::Counter& hits = obs::MetricsRegistry::instance().counter(
///     "qxmap_service_cache_hits_total", "Result-cache hits in MappingService::map()");
/// hits.inc();
/// ```
///
/// All updates are relaxed atomics — metrics are monotone tallies, not
/// synchronisation, and (like traces) sit outside the determinism contract:
/// counts of scheduling-dependent events (steals, bound tightenings,
/// queue-wait times) vary run to run even though mapping results do not.
///
/// Unlike tracing there is no enable flag: a relaxed `fetch_add` is cheap
/// enough to run unconditionally, which keeps counters trustworthy (they
/// cover the whole process lifetime, not just traced windows).
///
/// Export: `write_prometheus()` emits the text exposition format
/// (`# HELP` / `# TYPE`, `_total` counters, cumulative `_bucket{le="..."}`
/// histogram series); `write_json()` emits one object keyed by metric name.
/// docs/observability.md lists every metric the library registers.

#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace qxmap::obs {

/// Monotonically increasing event tally.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, pool size). `set_max` is a
/// CAS loop for high-water marks.
class Gauge {
 public:
  void set(long long v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(long long d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is currently lower (high-water mark).
  void set_max(long long v) noexcept {
    long long cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] long long value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::atomic<long long> value_{0};
};

/// Fixed log-scale (powers-of-two) histogram: bucket i holds observations
/// with value ≤ 2^i, plus a +Inf overflow bucket. 40 buckets cover 1 ns to
/// ~18 minutes when observing nanoseconds, with ~2x resolution everywhere —
/// no per-metric bucket configuration to get wrong.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // le = 2^0 .. 2^39, then +Inf

  void observe(std::uint64_t v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Non-cumulative count of bucket i (i == kBuckets → the +Inf bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i (2^i); i == kBuckets → +Inf (returns UINT64_MAX).
  [[nodiscard]] static std::uint64_t bucket_bound(std::size_t i) noexcept;

 private:
  friend class MetricsRegistry;
  std::atomic<std::uint64_t> buckets_[kBuckets + 1]{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// Process-wide registry. Lookup/registration is mutex-protected; the
/// returned references are valid for the process lifetime, so hot paths
/// look a metric up once and update lock-free thereafter.
class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& instance();

  /// Returns the counter named `name`, registering it (with `help`) on first
  /// use. Throws std::logic_error if `name` is already registered as a
  /// different instrument type or is not a valid Prometheus metric name.
  [[nodiscard]] Counter& counter(const std::string& name, const std::string& help);
  [[nodiscard]] Gauge& gauge(const std::string& name, const std::string& help);
  [[nodiscard]] Histogram& histogram(const std::string& name, const std::string& help);

  /// Prometheus text exposition format, metrics in registration order.
  void write_prometheus(std::ostream& os) const;
  [[nodiscard]] std::string prometheus_text() const;

  /// JSON snapshot: {"name": value | {histogram fields}, ...}.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string json() const;

  /// Zeroes every registered metric (registrations survive). Test-only:
  /// production code treats metrics as process-lifetime tallies.
  void reset();

 private:
  MetricsRegistry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_register(const std::string& name, const std::string& help, Kind kind);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

}  // namespace qxmap::obs
