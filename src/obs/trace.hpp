/// \file trace.hpp
/// Per-request span tracing with Chrome-trace export.
///
/// The process-wide `TraceRecorder` collects timed **spans** (RAII `Span`
/// objects carrying a name, a category, the recording thread, start time,
/// duration, and key→value attributes) and zero-duration **instant events**
/// (solver restarts, bound-tightening aborts, steal decisions) from every
/// layer of the library: QASM parse, subset enumeration, per-shard
/// encode/solve, executor queue pops, CDCL milestones, Z3 sliced re-checks,
/// heuristic iterations, and the service front-end's request lifecycle.
/// One `MappingService::map()` call therefore shows up as a request span
/// whose shard spans fan out across the executor's worker threads.
///
/// Export formats:
///  * `write_chrome_json()` — the Chrome trace-event format; load the file
///    in `chrome://tracing` (or https://ui.perfetto.dev) for a per-thread
///    timeline with span nesting.
///  * `write_tree()` — a human-readable per-thread tree dump (indentation =
///    span nesting, reconstructed from the recorded depth).
///
/// Overhead contract:
///  * **Disabled (default): near-zero.** Constructing a `Span` is a single
///    relaxed atomic load plus a branch — no allocation, no clock read, no
///    lock. `attr()` and the destructor see an inactive span and return
///    immediately. The only always-on cost anywhere in the library is that
///    one load.
///  * **Enabled: lock-free recording.** Each thread appends completed
///    events to its own chunk buffer; the event is fully constructed before
///    the chunk's count is published with a release store, so exporters
///    (acquire loads) never observe a half-written event. The process-wide
///    mutex is taken only when a thread starts a fresh chunk (every
///    `Chunk::kCapacity` events) — appends themselves never contend.
///
/// Enabling: set the environment variable `QXMAP_TRACE` (any value except
/// `0` / `off` / `false`) before process start, or call
/// `TraceRecorder::set_enabled(true)` / `apply(TraceOptions)` at runtime.
///
/// Determinism caveat: trace contents (event counts, timestamps, thread
/// attribution) depend on machine speed and scheduling. Like
/// `MappingResult::bound_polls`, traces are observability artefacts and are
/// explicitly **outside** the bit-identical determinism contract
/// (docs/concurrency.md) — enabling tracing never changes any mapping
/// result, only what is recorded about how it was computed.
/// docs/observability.md has the span taxonomy and the full contract.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace qxmap::obs {

namespace detail {
/// The global enable flag, initialised from `QXMAP_TRACE`. A plain namespace
/// atomic (not a singleton member) so the disabled-path check in Span's
/// inline constructor touches nothing else.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// One recorded event. `phase` follows the Chrome trace-event convention:
/// 'X' = complete span (ts + dur), 'i' = instant event.
struct TraceEvent {
  std::string name;
  const char* category = "";  ///< call sites pass string literals
  std::uint64_t ts_ns = 0;    ///< start, relative to the recorder's epoch
  std::uint64_t dur_ns = 0;   ///< 0 for instant events
  std::uint32_t tid = 0;      ///< small per-thread id (registration order)
  std::uint32_t depth = 0;    ///< span-nesting depth on the recording thread
  char phase = 'X';
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Runtime tracing configuration (the programmatic face of `QXMAP_TRACE`).
struct TraceOptions {
  bool enabled = false;
};

class Span;

/// Process-wide trace collector. All methods are thread-safe; recording is
/// lock-free per thread (see the file comment).
class TraceRecorder {
 public:
  /// The process-wide recorder every Span reports to.
  [[nodiscard]] static TraceRecorder& instance();

  /// Whether spans are being recorded. A single relaxed load — callers may
  /// consult it on hot paths to skip attribute computation.
  [[nodiscard]] static bool enabled() noexcept {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Flips recording on/off. Spans already open keep recording their close
  /// (activity is decided once, at construction); new spans observe the flag
  /// immediately (relaxed — see docs/concurrency.md#trace-event-memory-ordering).
  static void set_enabled(bool on) noexcept {
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
  }

  void apply(const TraceOptions& options) noexcept { set_enabled(options.enabled); }

  /// Events recorded (and not cleared) so far, across all threads.
  [[nodiscard]] std::size_t event_count() const;

  /// Retires every recorded event: subsequent exports see only events
  /// recorded after the clear. Safe concurrently with recording — retired
  /// buffers stay allocated until process exit, so in-flight appends on
  /// other threads land harmlessly in memory the exporter ignores.
  void clear();

  /// Chrome trace-event JSON ({"traceEvents": [...]}): load in
  /// chrome://tracing. Events are sorted by start time.
  void write_chrome_json(std::ostream& os) const;
  [[nodiscard]] std::string chrome_json() const;

  /// Human-readable per-thread span tree (indentation = nesting).
  void write_tree(std::ostream& os) const;
  [[nodiscard]] std::string tree() const;

  /// All live (non-retired) events, sorted by start time. The test seam for
  /// structural assertions; exporters are built on it.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

 private:
  friend class Span;

  struct Chunk {
    static constexpr std::size_t kCapacity = 256;
    std::atomic<std::uint32_t> count{0};
    std::array<TraceEvent, kCapacity> events;
  };

  struct ThreadState {
    Chunk* chunk = nullptr;
    std::uint64_t epoch = 0;
    std::uint32_t tid = 0;
    bool has_tid = false;
    std::uint32_t depth = 0;
  };

  TraceRecorder() = default;

  [[nodiscard]] static ThreadState& thread_state();
  /// Nanoseconds since the process-wide trace epoch (first use).
  [[nodiscard]] static std::uint64_t now_ns();

  /// Appends one completed event to the calling thread's chunk (lock-free;
  /// takes mutex_ only to start a fresh chunk).
  void append(TraceEvent&& event);
  void start_chunk(ThreadState& state);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Chunk>> chunks_;          // live, exported
  std::vector<std::unique_ptr<Chunk>> retired_chunks_;  // cleared; kept allocated
  std::atomic<std::uint64_t> epoch_{0};
  std::uint32_t next_tid_ = 0;
};

/// RAII span: records one 'X' event covering its lifetime. Construct on the
/// stack; attach attributes with attr(); the destructor publishes the event.
/// When tracing is disabled at construction the span is inert — no
/// allocation, no clock read — and stays inert even if tracing is enabled
/// before destruction (events are never half-recorded).
class Span {
 public:
  Span(const char* name, const char* category) {
    if (TraceRecorder::enabled()) begin(name, category);
  }
  ~Span() {
    if (active_) end();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording (tracing was enabled at construction).
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Attaches a key→value attribute (no-ops on an inactive span).
  void attr(std::string_view key, std::string_view value);
  void attr(std::string_view key, const char* value) { attr(key, std::string_view(value)); }
  void attr(std::string_view key, long long value);
  void attr(std::string_view key, unsigned long long value);
  void attr(std::string_view key, int value) { attr(key, static_cast<long long>(value)); }
  void attr(std::string_view key, std::size_t value) {
    attr(key, static_cast<unsigned long long>(value));
  }
  void attr(std::string_view key, double value);
  void attr(std::string_view key, bool value);

  /// Records a zero-duration instant event at the current nesting depth.
  /// `attrs` may be empty. No-op while tracing is disabled.
  static void instant(const char* name, const char* category,
                      std::vector<std::pair<std::string, std::string>> attrs = {});

 private:
  void begin(const char* name, const char* category);
  void end();

  bool active_ = false;
  const char* name_ = "";
  const char* category_ = "";
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace qxmap::obs
