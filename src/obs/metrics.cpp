#include "obs/metrics.hpp"

#include <bit>
#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qxmap::obs {

void Histogram::observe(std::uint64_t v) noexcept {
  // Bucket i covers (2^(i-1), 2^i]; v == 0 lands in bucket 0 (le 1).
  std::size_t i = (v <= 1) ? 0 : static_cast<std::size_t>(std::bit_width(v - 1));
  if (i > kBuckets) i = kBuckets;  // +Inf bucket
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_bound(std::size_t i) noexcept {
  if (i >= kBuckets) return UINT64_MAX;
  return std::uint64_t{1} << i;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

namespace {
bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (std::isalpha(static_cast<unsigned char>(c)) != 0) || c == '_' || c == ':';
    const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
    if (!(alpha || (digit && i > 0))) return false;
  }
  return true;
}
}  // namespace

MetricsRegistry::Entry& MetricsRegistry::find_or_register(const std::string& name,
                                                          const std::string& help, Kind kind) {
  if (!valid_metric_name(name)) {
    throw std::logic_error("MetricsRegistry: invalid metric name '" + name + "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    if (entry->name == name) {
      if (entry->kind != kind) {
        throw std::logic_error("MetricsRegistry: metric '" + name +
                               "' already registered as a different type");
      }
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram: entry->histogram = std::make_unique<Histogram>(); break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  return *find_or_register(name, help, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  return *find_or_register(name, help, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help) {
  return *find_or_register(name, help, Kind::kHistogram).histogram;
}

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    os << "# HELP " << entry->name << ' ' << entry->help << '\n';
    switch (entry->kind) {
      case Kind::kCounter:
        os << "# TYPE " << entry->name << " counter\n";
        os << entry->name << ' ' << entry->counter->value() << '\n';
        break;
      case Kind::kGauge:
        os << "# TYPE " << entry->name << " gauge\n";
        os << entry->name << ' ' << entry->gauge->value() << '\n';
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << entry->name << " histogram\n";
        const Histogram& h = *entry->histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
          cumulative += h.bucket_count(i);
          // 41 lines per histogram is noisy: emit only buckets that change
          // the cumulative count, plus the mandatory +Inf bucket.
          if (i == Histogram::kBuckets) {
            os << entry->name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
          } else if (h.bucket_count(i) != 0) {
            os << entry->name << "_bucket{le=\"" << Histogram::bucket_bound(i) << "\"} "
               << cumulative << '\n';
          }
        }
        os << entry->name << "_sum " << h.sum() << '\n';
        os << entry->name << "_count " << h.count() << '\n';
        break;
      }
    }
  }
}

std::string MetricsRegistry::prometheus_text() const {
  std::ostringstream os;
  write_prometheus(os);
  return os.str();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{";
  bool first = true;
  for (const auto& entry : entries_) {
    if (!first) os << ",";
    first = false;
    os << "\n  \"" << entry->name << "\": ";
    switch (entry->kind) {
      case Kind::kCounter: os << entry->counter->value(); break;
      case Kind::kGauge: os << entry->gauge->value(); break;
      case Kind::kHistogram: {
        const Histogram& h = *entry->histogram;
        os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum() << ", \"buckets\": {";
        bool first_bucket = true;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= Histogram::kBuckets; ++i) {
          cumulative += h.bucket_count(i);
          if (h.bucket_count(i) == 0 && i != Histogram::kBuckets) continue;
          if (!first_bucket) os << ", ";
          first_bucket = false;
          if (i == Histogram::kBuckets) {
            os << "\"+Inf\": " << cumulative;
          } else {
            os << '"' << Histogram::bucket_bound(i) << "\": " << cumulative;
          }
        }
        os << "}}";
        break;
      }
    }
  }
  os << "\n}\n";
}

std::string MetricsRegistry::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter: entry->counter->value_.store(0, std::memory_order_relaxed); break;
      case Kind::kGauge: entry->gauge->value_.store(0, std::memory_order_relaxed); break;
      case Kind::kHistogram: {
        Histogram& h = *entry->histogram;
        for (auto& b : h.buckets_) b.store(0, std::memory_order_relaxed);
        h.sum_.store(0, std::memory_order_relaxed);
        h.count_.store(0, std::memory_order_relaxed);
        break;
      }
    }
  }
}

}  // namespace qxmap::obs
