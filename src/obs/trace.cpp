#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <ostream>
#include <sstream>

namespace qxmap::obs {

namespace detail {

namespace {
bool enabled_from_env() {
  const char* v = std::getenv("QXMAP_TRACE");
  if (v == nullptr) return false;
  const std::string s(v);
  return !(s.empty() || s == "0" || s == "off" || s == "false" || s == "OFF" || s == "FALSE");
}
}  // namespace

std::atomic<bool> g_trace_enabled{enabled_from_env()};

}  // namespace detail

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::ThreadState& TraceRecorder::thread_state() {
  thread_local ThreadState state;
  return state;
}

std::uint64_t TraceRecorder::now_ns() {
  // One process-wide epoch so timestamps from all threads share an origin.
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           epoch)
          .count());
}

void TraceRecorder::start_chunk(ThreadState& state) {
  auto chunk = std::make_unique<Chunk>();
  Chunk* raw = chunk.get();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!state.has_tid) {
    state.tid = next_tid_++;
    state.has_tid = true;
  }
  chunks_.push_back(std::move(chunk));
  state.chunk = raw;
  state.epoch = epoch_.load(std::memory_order_relaxed);
}

void TraceRecorder::append(TraceEvent&& event) {
  ThreadState& state = thread_state();
  const std::uint64_t current_epoch = epoch_.load(std::memory_order_relaxed);
  if (state.chunk == nullptr || state.epoch != current_epoch ||
      state.chunk->count.load(std::memory_order_relaxed) >= Chunk::kCapacity) {
    start_chunk(state);
  }
  event.tid = state.tid;
  Chunk& chunk = *state.chunk;
  const std::uint32_t slot = chunk.count.load(std::memory_order_relaxed);
  chunk.events[slot] = std::move(event);
  // Publish: exporters acquire-load count, so the event above is fully
  // visible before it becomes part of the snapshot.
  chunk.count.store(slot + 1, std::memory_order_release);
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& chunk : chunks_) total += chunk->count.load(std::memory_order_acquire);
  return total;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  // Chunks are retired, never freed: a worker thread may still hold a
  // thread-local pointer into one and complete an in-flight append. The
  // epoch bump makes every thread start a fresh chunk on its next append.
  for (auto& chunk : chunks_) retired_chunks_.push_back(std::move(chunk));
  chunks_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& chunk : chunks_) {
      const std::uint32_t n = chunk->count.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) events.push_back(chunk->events[i]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  return events;
}

namespace {

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Chrome wants microsecond floats; keep three decimals of sub-µs precision.
void write_us(std::ostream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << static_cast<char>('0' + (ns / 100) % 10)
     << static_cast<char>('0' + (ns / 10) % 10) << static_cast<char>('0' + ns % 10);
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"name\":";
    write_json_string(os, e.name);
    os << ",\"cat\":";
    write_json_string(os, e.category);
    os << ",\"ph\":\"" << e.phase << "\",\"ts\":";
    write_us(os, e.ts_ns);
    if (e.phase == 'X') {
      os << ",\"dur\":";
      write_us(os, e.dur_ns);
    } else if (e.phase == 'i') {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    os << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.attrs.empty()) {
      os << ",\"args\":{";
      bool first_attr = true;
      for (const auto& [key, value] : e.attrs) {
        if (!first_attr) os << ",";
        first_attr = false;
        write_json_string(os, key);
        os << ":";
        write_json_string(os, value);
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n]}\n";
}

std::string TraceRecorder::chrome_json() const {
  std::ostringstream os;
  write_chrome_json(os);
  return os.str();
}

void TraceRecorder::write_tree(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  std::map<std::uint32_t, std::vector<const TraceEvent*>> by_tid;
  for (const TraceEvent& e : events) by_tid[e.tid].push_back(&e);
  for (const auto& [tid, list] : by_tid) {
    os << "thread " << tid << ":\n";
    for (const TraceEvent* e : list) {
      for (std::uint32_t i = 0; i <= e->depth; ++i) os << "  ";
      os << e->name;
      if (e->phase == 'X') {
        os << "  " << e->dur_ns / 1000 << "." << (e->dur_ns / 100) % 10 << " us";
      } else {
        os << "  [instant]";
      }
      for (const auto& [key, value] : e->attrs) os << "  " << key << "=" << value;
      os << "\n";
    }
  }
}

std::string TraceRecorder::tree() const {
  std::ostringstream os;
  write_tree(os);
  return os.str();
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

void Span::begin(const char* name, const char* category) {
  active_ = true;
  name_ = name;
  category_ = category;
  TraceRecorder::ThreadState& state = TraceRecorder::thread_state();
  depth_ = state.depth++;
  start_ns_ = TraceRecorder::now_ns();
}

void Span::end() {
  const std::uint64_t end_ns = TraceRecorder::now_ns();
  TraceRecorder::ThreadState& state = TraceRecorder::thread_state();
  // The matching decrement for begin()'s increment; spans are stack-scoped
  // so begins/ends nest properly per thread.
  state.depth = depth_;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.ts_ns = start_ns_;
  event.dur_ns = end_ns - start_ns_;
  event.depth = depth_;
  event.phase = 'X';
  event.attrs = std::move(attrs_);
  TraceRecorder::instance().append(std::move(event));
}

void Span::attr(std::string_view key, std::string_view value) {
  if (!active_) return;
  attrs_.emplace_back(std::string(key), std::string(value));
}

void Span::attr(std::string_view key, long long value) {
  if (!active_) return;
  attrs_.emplace_back(std::string(key), std::to_string(value));
}

void Span::attr(std::string_view key, unsigned long long value) {
  if (!active_) return;
  attrs_.emplace_back(std::string(key), std::to_string(value));
}

void Span::attr(std::string_view key, double value) {
  if (!active_) return;
  std::ostringstream os;
  os << value;
  attrs_.emplace_back(std::string(key), os.str());
}

void Span::attr(std::string_view key, bool value) {
  if (!active_) return;
  attrs_.emplace_back(std::string(key), value ? "true" : "false");
}

void Span::instant(const char* name, const char* category,
                   std::vector<std::pair<std::string, std::string>> attrs) {
  if (!TraceRecorder::enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_ns = TraceRecorder::now_ns();
  event.depth = TraceRecorder::thread_state().depth;
  event.phase = 'i';
  event.attrs = std::move(attrs);
  TraceRecorder::instance().append(std::move(event));
}

}  // namespace qxmap::obs
