#include "sim/statevector.hpp"

#include <array>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qxmap::sim {

namespace {
constexpr double kInvSqrt2 = 0.70710678118654752440;
const Complex kI{0.0, 1.0};

Complex expi(double phi) { return {std::cos(phi), std::sin(phi)}; }
}  // namespace

std::array<Complex, 4> single_qubit_matrix(const Gate& g) {
  switch (g.kind) {
    case OpKind::I: return {1, 0, 0, 1};
    case OpKind::X: return {0, 1, 1, 0};
    case OpKind::Y: return {0, -kI, kI, 0};
    case OpKind::Z: return {1, 0, 0, -1};
    case OpKind::H: return {kInvSqrt2, kInvSqrt2, kInvSqrt2, -kInvSqrt2};
    case OpKind::S: return {1, 0, 0, kI};
    case OpKind::Sdg: return {1, 0, 0, -kI};
    case OpKind::T: return {1, 0, 0, expi(std::numbers::pi / 4)};
    case OpKind::Tdg: return {1, 0, 0, expi(-std::numbers::pi / 4)};
    case OpKind::Rx: {
      const double t = g.params.at(0) / 2;
      return {std::cos(t), -kI * std::sin(t), -kI * std::sin(t), std::cos(t)};
    }
    case OpKind::Ry: {
      const double t = g.params.at(0) / 2;
      return {std::cos(t), -std::sin(t), std::sin(t), std::cos(t)};
    }
    case OpKind::Rz: {
      const double t = g.params.at(0) / 2;
      return {expi(-t), 0, 0, expi(t)};
    }
    case OpKind::U1: return {1, 0, 0, expi(g.params.at(0))};
    case OpKind::U2: {
      const double phi = g.params.at(0);
      const double lam = g.params.at(1);
      return {kInvSqrt2, -kInvSqrt2 * expi(lam), kInvSqrt2 * expi(phi),
              kInvSqrt2 * expi(phi + lam)};
    }
    case OpKind::U3: {
      const double theta = g.params.at(0);
      const double phi = g.params.at(1);
      const double lam = g.params.at(2);
      return {std::cos(theta / 2), -expi(lam) * std::sin(theta / 2),
              expi(phi) * std::sin(theta / 2), expi(phi + lam) * std::cos(theta / 2)};
    }
    default:
      throw std::invalid_argument("single_qubit_matrix: not a single-qubit gate");
  }
}

Statevector::Statevector(int n) : n_(n) {
  if (n < 0 || n > 24) throw std::invalid_argument("Statevector: qubit count out of range [0,24]");
  amps_.assign(std::size_t{1} << n, Complex{0, 0});
  amps_[0] = 1.0;
}

Statevector Statevector::basis(int n, std::uint64_t index) {
  Statevector sv(n);
  if (index >= sv.amps_.size()) throw std::out_of_range("Statevector::basis: index too large");
  sv.amps_[0] = 0.0;
  sv.amps_[index] = 1.0;
  return sv;
}

void Statevector::apply(const Gate& g) {
  if (g.kind == OpKind::Barrier) return;
  if (g.is_nonunitary()) {
    throw std::invalid_argument("Statevector::apply: " + std::string(kind_name(g.kind)) +
                                " not supported in unitary simulation");
  }
  if (g.is_conditional()) {
    throw std::invalid_argument(
        "Statevector::apply: classically guarded gate not supported in unitary simulation");
  }

  if (g.is_single_qubit()) {
    const auto m = single_qubit_matrix(g);
    const std::uint64_t bit = 1ULL << g.target;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
      if (i & bit) continue;
      const Complex a0 = amps_[i];
      const Complex a1 = amps_[i | bit];
      amps_[i] = m[0] * a0 + m[1] * a1;
      amps_[i | bit] = m[2] * a0 + m[3] * a1;
    }
    return;
  }
  if (g.is_cnot()) {
    const std::uint64_t cbit = 1ULL << g.control;
    const std::uint64_t tbit = 1ULL << g.target;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
      // Swap amplitudes of |..c=1,t=0..> and |..c=1,t=1..>, visiting each pair once.
      if ((i & cbit) && !(i & tbit)) {
        std::swap(amps_[i], amps_[i | tbit]);
      }
    }
    return;
  }
  if (g.is_swap()) {
    const std::uint64_t abit = 1ULL << g.target;
    const std::uint64_t bbit = 1ULL << g.control;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
      if ((i & abit) && !(i & bbit)) {
        std::swap(amps_[i], amps_[(i & ~abit) | bbit]);
      }
    }
    return;
  }
  throw std::invalid_argument("Statevector::apply: unsupported gate kind");
}

void Statevector::apply_circuit(const Circuit& c) {
  if (c.num_qubits() > n_) {
    throw std::invalid_argument("Statevector::apply_circuit: circuit has more qubits than state");
  }
  for (const auto& g : c) apply(g);
}

double Statevector::norm() const {
  double s = 0;
  for (const auto& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

double Statevector::overlap_magnitude(const Statevector& other) const {
  if (other.n_ != n_) throw std::invalid_argument("Statevector::overlap_magnitude: size mismatch");
  Complex acc{0, 0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return std::abs(acc);
}

}  // namespace qxmap::sim
