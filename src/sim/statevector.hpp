/// \file statevector.hpp
/// Dense statevector simulator.
///
/// Used by the verification layer (sim/equivalence) to prove that a mapped
/// circuit implements the original one, including the inserted SWAP
/// decompositions and the H-conjugated (direction-reversed) CNOTs of Fig. 3.
/// Qubit `q` corresponds to bit `q` of the basis-state index (little-endian).

#pragma once

#include <array>
#include <complex>
#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"

namespace qxmap::sim {

using Complex = std::complex<double>;

/// 2x2 unitary of a single-qubit gate, row-major: {m00, m01, m10, m11}.
/// \throws std::invalid_argument for non-single-qubit kinds.
[[nodiscard]] std::array<Complex, 4> single_qubit_matrix(const Gate& g);

/// Dense quantum state over `num_qubits()` qubits.
class Statevector {
 public:
  /// |0…0> on `n` qubits. \throws std::invalid_argument if n < 0 or n > 24.
  explicit Statevector(int n);

  /// Computational basis state |index>.
  [[nodiscard]] static Statevector basis(int n, std::uint64_t index);

  [[nodiscard]] int num_qubits() const noexcept { return n_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return amps_.size(); }
  [[nodiscard]] Complex amplitude(std::uint64_t index) const { return amps_.at(index); }

  /// Applies one gate. Barriers are no-ops; Measure throws (this simulator
  /// is for unitary equivalence checking, not sampling).
  void apply(const Gate& g);

  /// Applies all gates of `c` in order. The circuit must fit: c.num_qubits()
  /// <= num_qubits().
  void apply_circuit(const Circuit& c);

  /// L2 norm (should stay 1 up to rounding).
  [[nodiscard]] double norm() const;

  /// |<this|other>| — 1.0 iff equal up to global phase.
  [[nodiscard]] double overlap_magnitude(const Statevector& other) const;

 private:
  int n_;
  std::vector<Complex> amps_;
};

}  // namespace qxmap::sim
