/// \file unitary.hpp
/// Dense unitary matrices of small circuits (n <= 10) and phase-insensitive
/// comparison. Used by tests to validate gate decompositions (CCX network,
/// controlled roots of X, SWAP expansion, direction-reversed CNOTs).

#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "sim/statevector.hpp"

namespace qxmap::sim {

/// Column-major dense complex matrix of dimension 2^n.
class Unitary {
 public:
  /// Identity of dimension 2^n. \throws std::invalid_argument if n > 10.
  explicit Unitary(int num_qubits);

  [[nodiscard]] int num_qubits() const noexcept { return n_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  [[nodiscard]] Complex get(std::size_t row, std::size_t col) const;
  void set(std::size_t row, std::size_t col, Complex v);

  /// Maximum absolute entry difference after aligning global phase on the
  /// largest-magnitude entry of *this. Returns a large value if shapes differ.
  [[nodiscard]] double distance_up_to_phase(const Unitary& other) const;

 private:
  int n_;
  std::size_t dim_;
  std::vector<Complex> data_;  // column-major
};

/// Builds the unitary of `c` by simulating all basis states.
/// \throws std::invalid_argument if c.num_qubits() > 10.
[[nodiscard]] Unitary circuit_unitary(const Circuit& c);

/// True iff the two circuits implement the same unitary up to global phase
/// (within `tolerance` max-entry distance). Circuits must have the same
/// qubit count.
[[nodiscard]] bool same_unitary(const Circuit& a, const Circuit& b, double tolerance = 1e-9);

}  // namespace qxmap::sim
