#include "sim/unitary.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace qxmap::sim {

Unitary::Unitary(int num_qubits) : n_(num_qubits) {
  if (num_qubits < 0 || num_qubits > 10) {
    throw std::invalid_argument("Unitary: qubit count out of range [0,10]");
  }
  dim_ = std::size_t{1} << num_qubits;
  data_.assign(dim_ * dim_, Complex{0, 0});
  for (std::size_t i = 0; i < dim_; ++i) data_[i * dim_ + i] = 1.0;
}

Complex Unitary::get(std::size_t row, std::size_t col) const {
  if (row >= dim_ || col >= dim_) throw std::out_of_range("Unitary::get");
  return data_[col * dim_ + row];
}

void Unitary::set(std::size_t row, std::size_t col, Complex v) {
  if (row >= dim_ || col >= dim_) throw std::out_of_range("Unitary::set");
  data_[col * dim_ + row] = v;
}

double Unitary::distance_up_to_phase(const Unitary& other) const {
  if (other.dim_ != dim_) return std::numeric_limits<double>::infinity();
  // Align phases at the largest entry of *this.
  std::size_t best = 0;
  double best_mag = -1;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i]) > best_mag) {
      best_mag = std::abs(data_[i]);
      best = i;
    }
  }
  if (best_mag < 1e-12) return std::numeric_limits<double>::infinity();
  if (std::abs(other.data_[best]) < 1e-12) return std::numeric_limits<double>::infinity();
  const Complex phase = (data_[best] / std::abs(data_[best])) /
                        (other.data_[best] / std::abs(other.data_[best]));
  double dist = 0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    dist = std::max(dist, std::abs(data_[i] - phase * other.data_[i]));
  }
  return dist;
}

Unitary circuit_unitary(const Circuit& c) {
  if (c.num_qubits() > 10) {
    throw std::invalid_argument("circuit_unitary: too many qubits for dense unitary");
  }
  Unitary u(c.num_qubits());
  const std::size_t dim = u.dimension();
  for (std::uint64_t col = 0; col < dim; ++col) {
    Statevector sv = Statevector::basis(c.num_qubits(), col);
    sv.apply_circuit(c);
    for (std::uint64_t row = 0; row < dim; ++row) {
      u.set(row, col, sv.amplitude(row));
    }
  }
  return u;
}

bool same_unitary(const Circuit& a, const Circuit& b, double tolerance) {
  if (a.num_qubits() != b.num_qubits()) return false;
  return circuit_unitary(a).distance_up_to_phase(circuit_unitary(b)) <= tolerance;
}

}  // namespace qxmap::sim
