#include "sim/equivalence.hpp"

#include <cmath>
#include <complex>
#include <cstdint>
#include <stdexcept>

#include "sim/statevector.hpp"

namespace qxmap::sim {

namespace {

/// Drops the non-unitary parts before the statevector comparison: measures,
/// resets, and classically guarded gates (whether a guarded gate fires
/// depends on measurement outcomes, which a unitary check cannot model).
/// Mapping re-emits these positionally, so stripping them from both sides
/// leaves exactly the unitary core to compare.
Circuit strip_nonunitary(const Circuit& c) {
  Circuit out(c.num_qubits(), c.name());
  for (const auto& g : c) {
    if (!g.is_nonunitary() && !g.is_conditional()) out.append(g);
  }
  return out;
}

/// Spreads logical basis index `x` (n bits) onto physical bits per `layout`.
std::uint64_t embed(std::uint64_t x, const std::vector<int>& layout) {
  std::uint64_t out = 0;
  for (std::size_t j = 0; j < layout.size(); ++j) {
    if ((x >> j) & 1ULL) out |= 1ULL << layout[j];
  }
  return out;
}

}  // namespace

EquivalenceResult check_mapped_circuit(const Circuit& original_in, const Circuit& mapped_in,
                                       const std::vector<int>& initial_layout,
                                       const std::vector<int>& final_layout, double tolerance) {
  const Circuit original = strip_nonunitary(original_in);
  const Circuit mapped = strip_nonunitary(mapped_in);
  const int n = original.num_qubits();
  const int m = mapped.num_qubits();

  if (static_cast<int>(initial_layout.size()) != n || static_cast<int>(final_layout.size()) != n) {
    return {false, "layout size does not match logical qubit count"};
  }
  if (m > 16) return {false, "mapped circuit too large for statevector check (>16 qubits)"};
  if (m < n) return {false, "mapped circuit has fewer qubits than the original"};
  for (const int p : initial_layout) {
    if (p < 0 || p >= m) return {false, "initial layout entry out of range"};
  }
  for (const int p : final_layout) {
    if (p < 0 || p >= m) return {false, "final layout entry out of range"};
  }

  const std::uint64_t logical_dim = 1ULL << n;
  std::complex<double> global_phase{0, 0};
  bool phase_fixed = false;

  for (std::uint64_t x = 0; x < logical_dim; ++x) {
    // Reference: run the original on |x>, embed outputs at the final layout.
    Statevector ref(n);
    ref = Statevector::basis(n, x);
    ref.apply_circuit(original);

    // Candidate: embed |x> at the initial layout, run the mapped circuit.
    Statevector phys = Statevector::basis(m, embed(x, initial_layout));
    phys.apply_circuit(mapped);

    // Compare: every physical amplitude must match the embedded reference.
    // Build the embedded reference amplitude map implicitly: physical basis
    // state embed(y, final_layout) carries ref amplitude of |y>; everything
    // else must be ~0.
    for (std::uint64_t pidx = 0; pidx < (1ULL << m); ++pidx) {
      const std::complex<double> got = phys.amplitude(pidx);
      // Decode pidx: extract logical bits via final layout; ancillas must be 0.
      std::uint64_t y = 0;
      for (int j = 0; j < n; ++j) {
        if ((pidx >> final_layout[static_cast<std::size_t>(j)]) & 1ULL) y |= 1ULL << j;
      }
      const bool is_embedded = (pidx == embed(y, final_layout));
      const std::complex<double> want = is_embedded ? ref.amplitude(y) : 0.0;

      if (std::abs(want) < tolerance && std::abs(got) < tolerance) continue;
      if (!phase_fixed) {
        if (std::abs(want) < tolerance || std::abs(got) < tolerance) {
          return {false, "amplitude support mismatch at basis input " + std::to_string(x)};
        }
        global_phase = got / want;
        if (std::abs(std::abs(global_phase) - 1.0) > 1e-6) {
          return {false, "non-unit relative phase at basis input " + std::to_string(x)};
        }
        phase_fixed = true;
      }
      if (std::abs(got - global_phase * want) > tolerance) {
        return {false, "amplitude mismatch at basis input " + std::to_string(x) +
                           ", physical index " + std::to_string(pidx)};
      }
    }
  }
  return {true, "equivalent on the embedded subspace (up to global phase)"};
}

}  // namespace qxmap::sim
