#include "sim/linear_reversible.hpp"

#include <stdexcept>

namespace qxmap::sim {

Gf2Matrix linear_map(const Circuit& c) {
  Gf2Matrix m = Gf2Matrix::identity(static_cast<std::size_t>(c.num_qubits()));
  for (const auto& g : c) {
    if (g.kind == OpKind::Barrier) continue;
    if (g.is_cnot()) {
      // |t> ^= |c>: row_t += row_c of the accumulated map.
      m.xor_row(static_cast<std::size_t>(g.target), static_cast<std::size_t>(g.control));
    } else if (g.is_swap()) {
      m.swap_rows(static_cast<std::size_t>(g.target), static_cast<std::size_t>(g.control));
    } else {
      throw std::invalid_argument("linear_map: circuit contains non-linear gate " +
                                  std::string(kind_name(g.kind)));
    }
  }
  return m;
}

bool implements_skeleton(const Circuit& original, const Circuit& routed,
                         const std::vector<int>& initial_layout,
                         const std::vector<int>& final_layout) {
  const auto n = static_cast<std::size_t>(original.num_qubits());
  if (initial_layout.size() != n || final_layout.size() != n) {
    throw std::invalid_argument("implements_skeleton: layout size must equal logical qubit count");
  }
  const Gf2Matrix a = linear_map(original);
  const Gf2Matrix m = linear_map(routed);
  for (std::size_t j = 0; j < n; ++j) {
    const auto row = static_cast<std::size_t>(final_layout[j]);
    for (std::size_t jp = 0; jp < n; ++jp) {
      const auto col = static_cast<std::size_t>(initial_layout[jp]);
      if (a.get(j, jp) != m.get(row, col)) return false;
    }
  }
  return true;
}

}  // namespace qxmap::sim
