/// \file equivalence.hpp
/// Mapping-aware equivalence checking between an original circuit and its
/// mapped realisation.
///
/// The mapped circuit lives on m >= n physical qubits and contains the
/// inserted SWAP decompositions and H-conjugated CNOTs. Equivalence is
/// checked on the embedded subspace: for every logical basis input |x>,
/// embed it at the initial layout (ancillas |0>), run the mapped circuit,
/// and compare against the original's output re-embedded at the final
/// layout. Because superpositions are linear combinations of basis inputs,
/// matching all basis columns (with one common global phase) proves full
/// operator equivalence on the embedded subspace.

#pragma once

#include <string>
#include <vector>

#include "ir/circuit.hpp"

namespace qxmap::sim {

/// Result of an equivalence check; `message` explains failures.
struct EquivalenceResult {
  bool equivalent = false;
  std::string message;
};

/// Full statevector check (use for small circuits; mapped circuit must have
/// at most 16 qubits). `initial_layout[j]` / `final_layout[j]` give the
/// physical qubit holding logical qubit j before / after the mapped circuit.
/// SWAP pseudo-gates in `mapped` are simulated natively. Measure gates and
/// classically guarded (`if`-conditioned) gates are stripped from both
/// circuits before comparison — a unitary check cannot model
/// measurement-dependent branches, and mapping preserves guarded gates
/// positionally, so the unitary cores remain directly comparable.
[[nodiscard]] EquivalenceResult check_mapped_circuit(const Circuit& original,
                                                     const Circuit& mapped,
                                                     const std::vector<int>& initial_layout,
                                                     const std::vector<int>& final_layout,
                                                     double tolerance = 1e-9);

}  // namespace qxmap::sim
