#include "sim/fidelity.hpp"

#include <cmath>
#include <stdexcept>

#include "arch/coupling_map.hpp"

namespace qxmap::sim {

NoiseModel noise_model_for(const arch::CouplingMap& cm, const NoiseModel& defaults) {
  NoiseModel model = defaults;
  const arch::ErrorRates& rates = cm.error_rates();
  model.cnot_error_overrides = rates.cnot;
  model.cnot_error = cm.mean_cnot_error(defaults.cnot_error);
  model.single_qubit_error = cm.mean_single_qubit_error(defaults.single_qubit_error);
  if (!rates.readout.empty()) {
    double sum = 0.0;
    for (const double r : rates.readout) sum += r;
    model.readout_error = sum / static_cast<double>(rates.readout.size());
  }
  return model;
}

double NoiseModel::gate_error(const Gate& g) const {
  switch (g.kind) {
    case OpKind::Barrier:
      return 0.0;
    case OpKind::Measure:
    case OpKind::Reset:
      // Reset is realised as measure-and-correct on IBM QX, so its dominant
      // error channel is the readout.
      return readout_error;
    case OpKind::Cnot: {
      if (const auto it = cnot_error_overrides.find({g.control, g.target});
          it != cnot_error_overrides.end()) {
        return it->second;
      }
      return cnot_error;
    }
    case OpKind::Swap:
      // 3 CNOTs + 4 H (Fig. 3).
      return 1.0 - std::pow(1.0 - cnot_error, 3) * std::pow(1.0 - single_qubit_error, 4);
    default:
      return single_qubit_error;
  }
}

double success_probability(const Circuit& c, const NoiseModel& model) {
  return std::pow(10.0, log10_success(c, model));
}

double log10_success(const Circuit& c, const NoiseModel& model) {
  double log_p = 0.0;
  for (const auto& g : c) {
    const double eps = model.gate_error(g);
    if (eps < 0.0 || eps >= 1.0) {
      throw std::domain_error("log10_success: gate error must lie in [0, 1)");
    }
    log_p += std::log10(1.0 - eps);
  }
  return log_p;
}

double fidelity_ratio(const Circuit& optimized, const Circuit& baseline,
                      const NoiseModel& model) {
  return std::pow(10.0, log10_success(optimized, model) - log10_success(baseline, model));
}

}  // namespace qxmap::sim
