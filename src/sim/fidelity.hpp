/// \file fidelity.hpp
/// Fidelity estimation for mapped circuits.
///
/// The paper's cost metric — count every added operation — is motivated by
/// "each operation introduces an error with a certain probability"
/// (Sec. 2.2). This module makes that connection quantitative: a simple
/// depolarizing-style model assigns an error probability per operation
/// class (optionally per physical qubit / coupling edge) and scores a
/// circuit by its overall success probability Π(1 - ε_g). Mappers can then
/// be compared in the currency that actually matters on hardware.

#pragma once

#include <map>
#include <utility>

#include "ir/circuit.hpp"

namespace qxmap::arch {
class CouplingMap;
}

namespace qxmap::sim {

/// Error-rate model. Defaults approximate the published IBM QX4
/// calibration ballpark (single-qubit ~1e-3, CNOT ~2e-2, readout ~4e-2).
struct NoiseModel {
  double single_qubit_error = 1e-3;
  double cnot_error = 2e-2;
  double readout_error = 4e-2;

  /// Optional per-edge overrides for CNOT errors, keyed by the *directed*
  /// (control, target) pair actually executed.
  std::map<std::pair<int, int>, double> cnot_error_overrides;

  /// Error probability charged for one gate (barriers are free).
  [[nodiscard]] double gate_error(const Gate& g) const;
};

/// NoiseModel populated from the architecture's calibration data
/// (`CouplingMap::error_rates()`, as attached by the JSON loader): per-edge
/// CNOT rates become cnot_error_overrides, the scalar rates become the mean
/// of the per-qubit arrays. Fields without calibration data keep the values
/// from `defaults`. This is the same data exact::CostModel::resolved() folds
/// into the ErrorWeighted objective, so "optimize error-weighted cost" and
/// "score by success probability" agree on what the device looks like.
[[nodiscard]] NoiseModel noise_model_for(const arch::CouplingMap& cm,
                                         const NoiseModel& defaults = {});

/// Success probability Π(1 - ε_g) over all gates of `c`. SWAP pseudo-gates
/// are charged as their 7-gate decomposition would be (3 CNOTs + 4 H).
[[nodiscard]] double success_probability(const Circuit& c, const NoiseModel& model = {});

/// log10 of the success probability — additive, convenient for comparing
/// long circuits without underflow.
[[nodiscard]] double log10_success(const Circuit& c, const NoiseModel& model = {});

/// Expected-fidelity gain of `optimized` over `baseline` as a ratio of
/// success probabilities (> 1 means `optimized` is better).
[[nodiscard]] double fidelity_ratio(const Circuit& optimized, const Circuit& baseline,
                                    const NoiseModel& model = {});

}  // namespace qxmap::sim
