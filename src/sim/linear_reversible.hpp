/// \file linear_reversible.hpp
/// GF(2) phase-space semantics of CNOT/SWAP circuits.
///
/// A circuit of CNOT and SWAP gates maps computational basis state |x> to
/// |Mx> for an invertible matrix M over GF(2). This gives an equivalence
/// check that scales to any qubit count, used to verify routed CNOT
/// skeletons (the object the symbolic formulation actually reasons about,
/// cf. Fig. 1b) without building exponentially large unitaries.

#pragma once

#include "common/gf2.hpp"
#include "ir/circuit.hpp"

namespace qxmap::sim {

/// The GF(2) transition matrix of a CNOT/SWAP-only circuit: output bit
/// vector = M * input bit vector. Barriers are ignored.
/// \throws std::invalid_argument if the circuit contains any other gate.
[[nodiscard]] Gf2Matrix linear_map(const Circuit& c);

/// Verifies that a routed skeleton implements the original CNOT skeleton.
///
/// `original` is the unmapped CNOT-only circuit over n logical qubits.
/// `routed` is a CNOT/SWAP-only circuit over m >= n physical qubits in which
/// every CNOT is written in its *logical* orientation (direction reversal is
/// an H-conjugation detail that does not change the permutation semantics).
/// `initial_layout[j]` / `final_layout[j]` give the physical position of
/// logical qubit j before/after `routed`.
///
/// The check: for all logical j, j', original_M[j][j'] must equal
/// routed_M[final_layout[j]][initial_layout[j']]. Entries of routed_M in
/// non-embedded columns are ignored — they multiply ancilla inputs fixed
/// to |0>.
[[nodiscard]] bool implements_skeleton(const Circuit& original, const Circuit& routed,
                                       const std::vector<int>& initial_layout,
                                       const std::vector<int>& final_layout);

}  // namespace qxmap::sim
