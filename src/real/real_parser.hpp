/// \file real_parser.hpp
/// Parser for RevLib `.real` reversible-netlist files.
///
/// The DAC'19 paper's benchmarks (3_17_13, ham3_102, …) originate from
/// RevLib [20]. A `.real` file declares variables and a list of reversible
/// gates; this parser reads the common subset (t-family MCT gates and
/// f-family Fredkin gates) and decomposes every gate into {U, CNOT} via
/// mct_decomposer, producing a circuit ready for mapping.
///
/// Recognized directives: .version .numvars .variables .inputs .outputs
/// .constants .garbage .begin .end (declarations other than .numvars /
/// .variables are validated loosely and otherwise ignored — they describe
/// I/O semantics, not structure). Gate lines: `t<k> v1 … vk` (last operand
/// is the target) and `f<k> v1 … vk` (last two operands are swapped).

#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "ir/circuit.hpp"

namespace qxmap::real {

/// Error raised on malformed `.real` input; message includes the line number.
class RealParseError : public std::runtime_error {
 public:
  RealParseError(const std::string& message, int line)
      : std::runtime_error(".real parse error at line " + std::to_string(line) + ": " + message) {}
};

/// Parsing result: the decomposed circuit plus netlist-level statistics.
struct RealFile {
  Circuit circuit;       ///< decomposed into {single-qubit, CNOT}
  int num_mct_gates = 0; ///< reversible gates in the original netlist
  int max_controls = 0;  ///< largest control count seen
};

/// Parses `.real` source text. \throws RealParseError on invalid input.
[[nodiscard]] RealFile parse(std::string_view source, std::string name = {});

/// Reads and parses a `.real` file. \throws std::runtime_error on I/O error.
[[nodiscard]] RealFile parse_file(const std::string& path);

}  // namespace qxmap::real
