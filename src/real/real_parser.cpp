#include "real/real_parser.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/strings.hpp"
#include "real/mct_decomposer.hpp"

namespace qxmap::real {

namespace {

struct ParserState {
  int num_vars = -1;
  std::map<std::string, int> var_index;
  bool in_body = false;
  bool ended = false;
};

int resolve_line(const ParserState& st, const std::string& token, int line_no) {
  // Operands may be variable names or (in some RevLib dialects) x<idx>.
  if (const auto it = st.var_index.find(token); it != st.var_index.end()) {
    return it->second;
  }
  if (token.size() >= 2 && token[0] == 'x') {
    const std::string idx = token.substr(1);
    if (!idx.empty() && idx.find_first_not_of("0123456789") == std::string::npos) {
      const int i = std::stoi(idx);
      if (i >= 0 && i < st.num_vars) return i;
    }
  }
  throw RealParseError("unknown variable '" + token + "'", line_no);
}

void handle_gate(ParserState& st, Circuit& circuit, RealFile& out,
                 const std::vector<std::string>& tokens, int line_no) {
  const std::string& mnemonic = tokens[0];
  const char family = mnemonic[0];
  if (family != 't' && family != 'f') {
    throw RealParseError("unsupported gate family '" + mnemonic + "' (only t/f supported)", line_no);
  }
  const std::string size_str = mnemonic.substr(1);
  if (size_str.empty() || size_str.find_first_not_of("0123456789") != std::string::npos) {
    throw RealParseError("malformed gate mnemonic '" + mnemonic + "'", line_no);
  }
  const int arity = std::stoi(size_str);
  if (static_cast<int>(tokens.size()) - 1 != arity) {
    throw RealParseError("gate '" + mnemonic + "' expects " + std::to_string(arity) + " operands",
                         line_no);
  }
  std::vector<int> lines;
  lines.reserve(static_cast<std::size_t>(arity));
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    lines.push_back(resolve_line(st, tokens[i], line_no));
  }
  ++out.num_mct_gates;
  if (family == 't') {
    const int target = lines.back();
    lines.pop_back();
    out.max_controls = std::max(out.max_controls, static_cast<int>(lines.size()));
    append_mct(circuit, lines, target);
  } else {
    if (arity < 2) throw RealParseError("fredkin gate needs at least 2 operands", line_no);
    const int b = lines.back();
    lines.pop_back();
    const int a = lines.back();
    lines.pop_back();
    out.max_controls = std::max(out.max_controls, static_cast<int>(lines.size()) + 1);
    append_fredkin(circuit, lines, a, b);
  }
}

}  // namespace

RealFile parse(std::string_view source, std::string name) {
  ParserState st;
  Circuit circuit;
  RealFile out;
  bool circuit_created = false;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    const std::size_t nl = source.find('\n', pos);
    const std::string_view raw =
        source.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = (nl == std::string_view::npos) ? source.size() + 1 : nl + 1;
    ++line_no;

    std::string_view line = trim(raw);
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;

    const auto tokens = split_whitespace(line);
    const std::string head = to_lower(tokens[0]);

    if (head == ".version" || head == ".inputs" || head == ".outputs" ||
        head == ".constants" || head == ".garbage" || head == ".inputbus" ||
        head == ".outputbus" || head == ".define" || head == ".module") {
      continue;  // semantic metadata, irrelevant for mapping
    }
    if (head == ".numvars") {
      if (tokens.size() != 2) throw RealParseError(".numvars expects one argument", line_no);
      st.num_vars = std::stoi(tokens[1]);
      if (st.num_vars <= 0) throw RealParseError(".numvars must be positive", line_no);
      continue;
    }
    if (head == ".variables") {
      if (st.num_vars < 0) throw RealParseError(".variables before .numvars", line_no);
      if (static_cast<int>(tokens.size()) - 1 != st.num_vars) {
        throw RealParseError(".variables count does not match .numvars", line_no);
      }
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        st.var_index[tokens[i]] = static_cast<int>(i) - 1;
      }
      continue;
    }
    if (head == ".begin") {
      if (st.num_vars < 0) throw RealParseError(".begin before .numvars", line_no);
      st.in_body = true;
      circuit = Circuit(st.num_vars, name);
      circuit_created = true;
      continue;
    }
    if (head == ".end") {
      st.ended = true;
      break;
    }
    if (!st.in_body) {
      throw RealParseError("unexpected content before .begin: '" + std::string(line) + "'", line_no);
    }
    handle_gate(st, circuit, out, tokens, line_no);
  }

  if (!circuit_created) throw RealParseError("no .begin section found", line_no);
  if (!st.ended) throw RealParseError("missing .end", line_no);
  out.circuit = std::move(circuit);
  return out;
}

RealFile parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open .real file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path);
}

}  // namespace qxmap::real
