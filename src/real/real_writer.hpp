/// \file real_writer.hpp
/// Serialization of classical-reversible circuits back to RevLib `.real`.
///
/// Only gates with classical reversible semantics are expressible: X (t1),
/// CNOT (t2), and SWAP (f2). Useful for round-tripping CNOT skeletons and
/// for exporting routed skeletons to RevLib-based tooling.

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qxmap::real {

/// Renders `c` as `.real` text (variables x0 … x{n-1}).
/// \throws std::invalid_argument if the circuit contains a gate without a
/// `.real` counterpart (anything beyond X / CNOT / SWAP; barriers are
/// skipped, measures rejected).
[[nodiscard]] std::string write(const Circuit& c);

/// Writes to a file. \throws std::runtime_error on I/O failure.
void write_file(const Circuit& c, const std::string& path);

}  // namespace qxmap::real
