#include "real/real_writer.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qxmap::real {

std::string write(const Circuit& c) {
  std::ostringstream os;
  os << "# " << (c.name().empty() ? "qxmap circuit" : c.name()) << '\n';
  os << ".version 2.0\n";
  os << ".numvars " << c.num_qubits() << '\n';
  os << ".variables";
  for (int q = 0; q < c.num_qubits(); ++q) os << " x" << q;
  os << '\n';
  os << ".begin\n";
  for (const auto& g : c) {
    switch (g.kind) {
      case OpKind::Barrier:
        break;  // no .real counterpart; structural only
      case OpKind::X:
        os << "t1 x" << g.target << '\n';
        break;
      case OpKind::Cnot:
        os << "t2 x" << g.control << " x" << g.target << '\n';
        break;
      case OpKind::Swap:
        os << "f2 x" << g.target << " x" << g.control << '\n';
        break;
      default:
        throw std::invalid_argument("real::write: gate has no .real counterpart: " +
                                    g.to_string());
    }
  }
  os << ".end\n";
  return os.str();
}

void write_file(const Circuit& c, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for writing: " + path);
  out << write(c);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace qxmap::real
