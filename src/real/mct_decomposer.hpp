/// \file mct_decomposer.hpp
/// Decomposition of multi-controlled Toffoli (MCT) and Fredkin gates into
/// the {U, CNOT} set executable on IBM QX architectures.
///
/// The RevLib benchmarks the paper evaluates are reversible netlists built
/// from MCT gates; before mapping they must be decomposed (the paper assumes
/// this step "has already been conducted" — this module conducts it).
///
/// Strategies, chosen automatically per gate:
///  * 0 controls → X, 1 control → CNOT.
///  * 2 controls → the textbook 15-gate Clifford+T CCX network
///    (2 H, 4 T, 3 Tdg, 6 CX).
///  * >= 3 controls with at least one idle circuit line → recursive split via
///    a *borrowed* (dirty) ancilla (Barenco et al. 1995, Lemma 7.3 shape):
///    C^c(X) = C^a(X; anc) C^(b+1)(X; tgt) C^a(X; anc) C^(b+1)(X; tgt)
///    with the controls partitioned into a + b = c.
///  * >= 3 controls with no idle line → ancilla-free construction via
///    controlled roots of X (Barenco et al. Lemma 7.5):
///    C^c(X) = C-sqrtX(c_last,t) · C^{c-1}(X) on c_last · C-sqrtX†(c_last,t)
///    · C^{c-1}(X) on c_last · C^{c-1}(sqrtX)(rest, t), recursively, where
///    each controlled 2^s-th root of X is emitted as 2 CX + 4 rotations.

#pragma once

#include <vector>

#include "ir/circuit.hpp"

namespace qxmap::real {

/// Appends X with the given controls on `target` to `c`, decomposed into
/// {single-qubit, CNOT} gates. `controls` must be distinct from each other
/// and from `target`, and all lines must exist in `c`.
/// \throws std::invalid_argument on aliased operands.
void append_mct(Circuit& c, const std::vector<int>& controls, int target);

/// Appends a Fredkin (controlled-SWAP family) gate: swaps `a` and `b` iff
/// all `controls` are 1, decomposed via CX(b,a) · MCT(controls+{a}, b) ·
/// CX(b,a).
void append_fredkin(Circuit& c, const std::vector<int>& controls, int a, int b);

/// Gate count of the decomposition of an MCT with `num_controls` controls on
/// a circuit with `num_lines` lines (used by tests and cost estimation).
[[nodiscard]] int mct_decomposed_size(int num_controls, int num_lines);

}  // namespace qxmap::real
