#include "real/mct_decomposer.hpp"

#include <algorithm>
#include <numbers>
#include <set>
#include <stdexcept>

namespace qxmap::real {

namespace {

constexpr double kPi = std::numbers::pi;

/// CCX(c1, c2, t) as the textbook 15-gate Clifford+T network.
void append_ccx(Circuit& c, int c1, int c2, int t) {
  c.h(t);
  c.cnot(c2, t);
  c.tdg(t);
  c.cnot(c1, t);
  c.t(t);
  c.cnot(c2, t);
  c.tdg(t);
  c.cnot(c1, t);
  c.t(c2);
  c.t(t);
  c.cnot(c1, c2);
  c.h(t);
  c.t(c1);
  c.tdg(c2);
  c.cnot(c1, c2);
}

/// Controlled 2^s-th root of X (s >= 1), optionally adjoint.
///
/// X^(1/2^s) = e^{i θ/2} Rx(θ) with θ = π / 2^s. Using the ABC
/// decomposition of a controlled-U with U = e^{iα} Rz(β) Ry(γ) Rz(δ)
/// (β = -π/2, γ = θ, δ = π/2, α = θ/2):
///   CU(c,t) = u1(α) c · A t · CX(c,t) · B t · CX(c,t) · C t
/// with A = Rz(β) Ry(γ/2), B = Ry(-γ/2) Rz(-(δ+β)/2) = Ry(-γ/2),
/// C = Rz((δ-β)/2) = Rz(π/2). Gates are appended in circuit order
/// (C first).
void append_controlled_root_x(Circuit& c, int ctrl, int tgt, int s, bool adjoint) {
  double theta = kPi / static_cast<double>(1 << s);
  if (adjoint) theta = -theta;
  const double alpha = theta / 2;
  // C
  c.append(Gate::single(OpKind::Rz, tgt, {kPi / 2}));
  c.cnot(ctrl, tgt);
  // B
  c.append(Gate::single(OpKind::Ry, tgt, {-theta / 2}));
  c.cnot(ctrl, tgt);
  // A
  c.append(Gate::single(OpKind::Ry, tgt, {theta / 2}));
  c.append(Gate::single(OpKind::Rz, tgt, {-kPi / 2}));
  // phase on the control
  c.append(Gate::single(OpKind::U1, ctrl, {alpha}));
}

/// Multi-controlled 2^s-th root of X, ancilla-free (Barenco Lemma 7.5
/// recursion). For s = 0 this is MCT itself; the caller handles the
/// base cases with <= 2 controls.
void append_mc_root_x(Circuit& c, const std::vector<int>& controls, int target, int s,
                      bool adjoint);

/// Ancilla-free MCT for >= 3 controls via Lemma 7.5:
///   C^k(X)(c_1..c_k, t) =
///     C-sqrtX(c_k, t) · C^{k-1}(X)(c_1..c_{k-1}, c_k) · C-sqrtX†(c_k, t)
///     · C^{k-1}(X)(c_1..c_{k-1}, c_k) · C^{k-1}(sqrtX)(c_1..c_{k-1}, t)
void append_mct_ancilla_free(Circuit& c, const std::vector<int>& controls, int target) {
  const int k = static_cast<int>(controls.size());
  if (k == 0) {
    c.x(target);
    return;
  }
  if (k == 1) {
    c.cnot(controls[0], target);
    return;
  }
  if (k == 2) {
    append_ccx(c, controls[0], controls[1], target);
    return;
  }
  std::vector<int> rest(controls.begin(), controls.end() - 1);
  const int last = controls.back();
  append_controlled_root_x(c, last, target, 1, /*adjoint=*/false);
  append_mct_ancilla_free(c, rest, last);
  append_controlled_root_x(c, last, target, 1, /*adjoint=*/true);
  append_mct_ancilla_free(c, rest, last);
  append_mc_root_x(c, rest, target, 1, /*adjoint=*/false);
}

void append_mc_root_x(Circuit& c, const std::vector<int>& controls, int target, int s,
                      bool adjoint) {
  const int k = static_cast<int>(controls.size());
  if (k == 0) {
    // Plain 2^s-th root of X (no controls): Rx with global phase — the
    // global phase is irrelevant once the gate is uncontrolled.
    double theta = kPi / static_cast<double>(1 << s);
    if (adjoint) theta = -theta;
    c.append(Gate::single(OpKind::U1, target, {theta / 2}));
    c.append(Gate::single(OpKind::Rx, target, {theta}));
    return;
  }
  if (k == 1) {
    append_controlled_root_x(c, controls[0], target, s, adjoint);
    return;
  }
  std::vector<int> rest(controls.begin(), controls.end() - 1);
  const int last = controls.back();
  append_controlled_root_x(c, last, target, s + 1, adjoint);
  append_mct_ancilla_free(c, rest, last);
  append_controlled_root_x(c, last, target, s + 1, !adjoint);
  append_mct_ancilla_free(c, rest, last);
  append_mc_root_x(c, rest, target, s + 1, adjoint);
}

/// MCT with >= 3 controls using one borrowed (dirty) ancilla line:
/// with controls S split into S1 ∪ S2, |S1| = ceil(k/2):
///   C^k(X)(S, t) = C^{|S1|}(X)(S1, anc) · C^{|S2|+1}(X)(S2 ∪ {anc}, t)
///                · C^{|S1|}(X)(S1, anc) · C^{|S2|+1}(X)(S2 ∪ {anc}, t)
/// Each recursive MCT again prefers a borrowed ancilla from the lines it
/// does not touch.
void append_mct_dispatch(Circuit& c, const std::vector<int>& controls, int target);

void append_mct_borrowed(Circuit& c, const std::vector<int>& controls, int target, int ancilla) {
  const auto k = controls.size();
  const std::size_t half = (k + 1) / 2;
  const std::vector<int> s1(controls.begin(), controls.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<int> s2(controls.begin() + static_cast<std::ptrdiff_t>(half), controls.end());
  s2.push_back(ancilla);
  append_mct_dispatch(c, s1, ancilla);
  append_mct_dispatch(c, s2, target);
  append_mct_dispatch(c, s1, ancilla);
  append_mct_dispatch(c, s2, target);
}

void append_mct_dispatch(Circuit& c, const std::vector<int>& controls, int target) {
  const auto k = controls.size();
  if (k == 0) {
    c.x(target);
    return;
  }
  if (k == 1) {
    c.cnot(controls[0], target);
    return;
  }
  if (k == 2) {
    append_ccx(c, controls[0], controls[1], target);
    return;
  }
  // Look for an idle line to borrow.
  std::set<int> used(controls.begin(), controls.end());
  used.insert(target);
  for (int line = 0; line < c.num_qubits(); ++line) {
    if (!used.contains(line)) {
      append_mct_borrowed(c, controls, target, line);
      return;
    }
  }
  append_mct_ancilla_free(c, controls, target);
}

}  // namespace

void append_mct(Circuit& c, const std::vector<int>& controls, int target) {
  std::set<int> seen(controls.begin(), controls.end());
  if (seen.size() != controls.size() || seen.contains(target)) {
    throw std::invalid_argument("append_mct: operands must be distinct");
  }
  append_mct_dispatch(c, controls, target);
}

void append_fredkin(Circuit& c, const std::vector<int>& controls, int a, int b) {
  if (a == b) throw std::invalid_argument("append_fredkin: swap operands must differ");
  c.cnot(b, a);
  std::vector<int> ctl = controls;
  ctl.push_back(a);
  append_mct(c, ctl, b);
  c.cnot(b, a);
}

int mct_decomposed_size(int num_controls, int num_lines) {
  Circuit tmp(num_lines);
  std::vector<int> controls(static_cast<std::size_t>(num_controls));
  for (int i = 0; i < num_controls; ++i) controls[static_cast<std::size_t>(i)] = i;
  append_mct(tmp, controls, num_controls);
  return static_cast<int>(tmp.size());
}

}  // namespace qxmap::real
