/// \file peephole.hpp
/// Post-mapping peephole optimization.
///
/// The paper deliberately scopes these out ("we do not consider pre- or
/// post-mapping optimizations … but solely consider the actual mapping
/// process", footnote 2) while citing them as complementary [12, 23]; this
/// module provides them as the natural extension. All passes preserve the
/// circuit's unitary up to global phase, and — when a coupling map is
/// supplied — keep the circuit executable on it.
///
/// Passes (run to a fixed point by `optimize`):
///  * inverse-pair cancellation — adjacent H·H, X·X, Y·Y, Z·Z, S·Sdg,
///    T·Tdg, CX·CX (same orientation), SWAP·SWAP annihilate;
///  * diagonal merge — runs of {Z, S, Sdg, T, Tdg, Rz, U1} on one qubit
///    fuse into a single U1 (dropped entirely when the total phase
///    vanishes mod 2π);
///  * direction simplification — H⊗H · CX(a,b) · H⊗H collapses to CX(b,a)
///    when the reversed CNOT is legal on the given coupling map (always
///    legal when no map is given).

#pragma once

#include <optional>

#include "arch/coupling_map.hpp"
#include "ir/circuit.hpp"

namespace qxmap::opt {

/// Statistics of one optimize() run.
struct PeepholeStats {
  int cancelled_pairs = 0;   ///< inverse pairs removed (2 gates each)
  int merged_diagonals = 0;  ///< diagonal gates fused away
  int reversed_cnots = 0;    ///< H-sandwiches collapsed to reversed CNOTs
  int iterations = 0;        ///< fixed-point rounds executed

  [[nodiscard]] int gates_removed() const noexcept {
    return 2 * cancelled_pairs + merged_diagonals + 4 * reversed_cnots;
  }
};

/// Runs all passes to a fixed point. When `cm` is provided, the direction
/// simplification only fires where the result stays executable, so a
/// mapped circuit stays mapped.
[[nodiscard]] Circuit optimize(const Circuit& c,
                               const std::optional<arch::CouplingMap>& cm = std::nullopt,
                               PeepholeStats* stats = nullptr);

/// Single passes, exposed for testing and for custom pipelines.
[[nodiscard]] Circuit cancel_inverse_pairs(const Circuit& c, int* cancelled = nullptr);
[[nodiscard]] Circuit merge_diagonal_runs(const Circuit& c, int* merged = nullptr);
[[nodiscard]] Circuit simplify_reversed_cnots(const Circuit& c,
                                              const std::optional<arch::CouplingMap>& cm,
                                              int* rewritten = nullptr);

}  // namespace qxmap::opt
