#include "opt/peephole.hpp"

#include <cmath>
#include <numbers>

namespace qxmap::opt {

namespace {

constexpr double kTwoPi = 2 * std::numbers::pi;
constexpr double kAngleEps = 1e-12;

/// True iff the two gates are adjacent inverses of each other. Classically
/// guarded gates never participate: the creg a guard reads can change
/// between the two gates (a measure writes it without sharing a qubit), so
/// only a full dataflow analysis could cancel them soundly.
bool are_inverse_pair(const Gate& a, const Gate& b) {
  if (a.is_conditional() || b.is_conditional()) return false;
  const auto self_inverse = [](OpKind k) {
    return k == OpKind::H || k == OpKind::X || k == OpKind::Y || k == OpKind::Z;
  };
  if (a.is_single_qubit() && b.is_single_qubit() && a.target == b.target) {
    if (a.kind == b.kind && self_inverse(a.kind)) return true;
    if ((a.kind == OpKind::S && b.kind == OpKind::Sdg) ||
        (a.kind == OpKind::Sdg && b.kind == OpKind::S) ||
        (a.kind == OpKind::T && b.kind == OpKind::Tdg) ||
        (a.kind == OpKind::Tdg && b.kind == OpKind::T)) {
      return true;
    }
    // Opposite-angle rotations of the same axis.
    if (a.kind == b.kind &&
        (a.kind == OpKind::Rx || a.kind == OpKind::Ry || a.kind == OpKind::Rz ||
         a.kind == OpKind::U1) &&
        std::abs(a.params[0] + b.params[0]) < kAngleEps) {
      return true;
    }
    return false;
  }
  if (a.is_cnot() && b.is_cnot()) return a.control == b.control && a.target == b.target;
  if (a.is_swap() && b.is_swap()) {
    return (a.target == b.target && a.control == b.control) ||
           (a.target == b.control && a.control == b.target);
  }
  return false;
}

/// Diagonal single-qubit gates (phase gates in the computational basis).
bool is_diagonal(const Gate& g) {
  switch (g.kind) {
    case OpKind::Z:
    case OpKind::S:
    case OpKind::Sdg:
    case OpKind::T:
    case OpKind::Tdg:
    case OpKind::Rz:
    case OpKind::U1:
      return true;
    default:
      return false;
  }
}

double diagonal_phase(const Gate& g) {
  switch (g.kind) {
    case OpKind::Z: return std::numbers::pi;
    case OpKind::S: return std::numbers::pi / 2;
    case OpKind::Sdg: return -std::numbers::pi / 2;
    case OpKind::T: return std::numbers::pi / 4;
    case OpKind::Tdg: return -std::numbers::pi / 4;
    case OpKind::Rz:
    case OpKind::U1:
      return g.params[0];
    default:
      return 0;
  }
}

/// Canonical emission of an accumulated phase: named Clifford+T gate when
/// the angle hits the π/4 grid, U1 otherwise, nothing when ~0 (mod 2π).
void emit_phase(Circuit& out, int qubit, double phase) {
  double p = std::fmod(phase, kTwoPi);
  if (p > std::numbers::pi) p -= kTwoPi;
  if (p < -std::numbers::pi) p += kTwoPi;
  if (std::abs(p) < kAngleEps) return;
  const auto close = [&](double x) { return std::abs(p - x) < kAngleEps; };
  if (close(std::numbers::pi) || close(-std::numbers::pi)) {
    out.z(qubit);
  } else if (close(std::numbers::pi / 2)) {
    out.s(qubit);
  } else if (close(-std::numbers::pi / 2)) {
    out.sdg(qubit);
  } else if (close(std::numbers::pi / 4)) {
    out.t(qubit);
  } else if (close(-std::numbers::pi / 4)) {
    out.tdg(qubit);
  } else {
    out.append(Gate::single(OpKind::U1, qubit, {p}));
  }
}

}  // namespace

Circuit cancel_inverse_pairs(const Circuit& c, int* cancelled) {
  // Stack-based scan: for each new gate, look at the most recent surviving
  // gate that shares a qubit with it. If that gate touches exactly the same
  // qubits and is the inverse, both go; barriers block everything.
  std::vector<Gate> kept;
  std::vector<bool> alive;
  int count = 0;
  for (const auto& g : c) {
    if (g.kind == OpKind::Barrier || g.is_nonunitary() || g.is_conditional()) {
      kept.push_back(g);
      alive.push_back(true);
      continue;
    }
    // Find the latest alive gate sharing a qubit.
    int prev = -1;
    const auto qs = g.qubits();
    for (int i = static_cast<int>(kept.size()) - 1; i >= 0; --i) {
      if (!alive[static_cast<std::size_t>(i)]) continue;
      const Gate& k = kept[static_cast<std::size_t>(i)];
      if (k.kind == OpKind::Barrier) {
        break;
      }
      bool shares = false;
      for (const int q : k.qubits()) {
        for (const int gq : qs) {
          if (q == gq) shares = true;
        }
      }
      if (shares) {
        prev = i;
        break;
      }
    }
    if (prev >= 0 && are_inverse_pair(kept[static_cast<std::size_t>(prev)], g)) {
      alive[static_cast<std::size_t>(prev)] = false;
      ++count;
      continue;
    }
    kept.push_back(g);
    alive.push_back(true);
  }
  Circuit out(c.num_qubits(), c.name());
  for (std::size_t i = 0; i < kept.size(); ++i) {
    if (alive[i]) out.append(kept[i]);
  }
  if (cancelled != nullptr) *cancelled = count;
  return out;
}

Circuit merge_diagonal_runs(const Circuit& c, int* merged) {
  Circuit out(c.num_qubits(), c.name());
  int count = 0;
  std::size_t i = 0;
  while (i < c.size()) {
    const Gate& g = c.gate(i);
    if (!g.is_single_qubit() || g.is_conditional() || !is_diagonal(g)) {
      out.append(g);
      ++i;
      continue;
    }
    // Collect the maximal run of diagonal gates on this qubit (other
    // qubits' gates may not interleave — we only merge truly adjacent ones,
    // which keeps the pass trivially sound).
    double phase = diagonal_phase(g);
    std::size_t j = i + 1;
    int run = 1;
    while (j < c.size() && c.gate(j).is_single_qubit() && !c.gate(j).is_conditional() &&
           is_diagonal(c.gate(j)) && c.gate(j).target == g.target) {
      phase += diagonal_phase(c.gate(j));
      ++run;
      ++j;
    }
    if (run > 1) {
      const auto before = out.size();
      emit_phase(out, g.target, phase);
      count += run - static_cast<int>(out.size() - before);
    } else {
      out.append(g);
    }
    i = j;
  }
  if (merged != nullptr) *merged = count;
  return out;
}

Circuit simplify_reversed_cnots(const Circuit& c, const std::optional<arch::CouplingMap>& cm,
                                int* rewritten) {
  Circuit out(c.num_qubits(), c.name());
  int count = 0;
  std::size_t i = 0;
  const auto is_h = [&](std::size_t idx, int q) {
    return idx < c.size() && c.gate(idx).kind == OpKind::H && c.gate(idx).target == q &&
           !c.gate(idx).is_conditional();
  };
  while (i < c.size()) {
    // Match H a; H b; CX(a,b); H a; H b (the two leading/trailing H's in
    // either order). Guarded gates never match (see are_inverse_pair).
    if (i + 4 < c.size() && c.gate(i).kind == OpKind::H && c.gate(i + 1).kind == OpKind::H &&
        c.gate(i + 2).is_cnot() && !c.gate(i + 2).is_conditional()) {
      const int ctl = c.gate(i + 2).control;
      const int tgt = c.gate(i + 2).target;
      const bool leading = (is_h(i, ctl) && is_h(i + 1, tgt)) ||
                           (is_h(i, tgt) && is_h(i + 1, ctl));
      const bool trailing = (is_h(i + 3, ctl) && is_h(i + 4, tgt)) ||
                            (is_h(i + 3, tgt) && is_h(i + 4, ctl));
      const bool legal = !cm.has_value() || cm->allows(tgt, ctl);
      if (leading && trailing && legal) {
        out.cnot(tgt, ctl);
        ++count;
        i += 5;
        continue;
      }
    }
    out.append(c.gate(i));
    ++i;
  }
  if (rewritten != nullptr) *rewritten = count;
  return out;
}

Circuit optimize(const Circuit& c, const std::optional<arch::CouplingMap>& cm,
                 PeepholeStats* stats) {
  PeepholeStats local;
  Circuit current = c;
  for (int round = 0; round < 100; ++round) {
    ++local.iterations;
    int cancelled = 0;
    int merged = 0;
    int reversed = 0;
    Circuit next = cancel_inverse_pairs(current, &cancelled);
    next = merge_diagonal_runs(next, &merged);
    next = simplify_reversed_cnots(next, cm, &reversed);
    local.cancelled_pairs += cancelled;
    local.merged_diagonals += merged;
    local.reversed_cnots += reversed;
    const bool changed = next.size() != current.size();
    current = std::move(next);
    if (!changed) break;
  }
  if (stats != nullptr) *stats = local;
  return current;
}

}  // namespace qxmap::opt
