#include "reason/cdcl_engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qxmap::reason {

namespace {

using sat::Lit;
using sat::Solver;

/// Node of the generalized totalizer: "sum over this subtree >= w" per
/// attainable weight w > 0, clamped at `clamp` (all sums beyond the clamp
/// collapse onto the clamp value — sufficient for bounding below it).
using WeightedOutputs = std::map<long long, Lit>;

WeightedOutputs merge_nodes(Solver& s, const WeightedOutputs& a, const WeightedOutputs& b,
                            long long clamp) {
  WeightedOutputs out;
  // Collect attainable sums (clamped).
  std::vector<std::pair<long long, long long>> combos;  // (a-weight, b-weight); 0 = "none"
  for (auto ita = a.begin();; ++ita) {
    const long long wa = (ita == a.end()) ? 0 : ita->first;
    for (auto itb = b.begin();; ++itb) {
      const long long wb = (itb == b.end()) ? 0 : itb->first;
      if (wa + wb > 0) combos.emplace_back(wa, wb);
      if (itb == b.end()) break;
    }
    if (ita == a.end()) break;
  }
  for (const auto& [wa, wb] : combos) {
    const long long w = std::min(wa + wb, clamp);
    if (!out.contains(w)) out.emplace(w, sat::pos(s.new_var()));
  }
  // a>=wa ∧ b>=wb → out>=min(wa+wb, clamp)
  for (const auto& [wa, wb] : combos) {
    const long long w = std::min(wa + wb, clamp);
    std::vector<Lit> clause;
    if (wa > 0) clause.push_back(~a.at(wa));
    if (wb > 0) clause.push_back(~b.at(wb));
    clause.push_back(out.at(w));
    s.add_clause(std::move(clause));
  }
  // Monotonicity: out>=w2 → out>=w1 for consecutive attainable w1 < w2.
  for (auto it = out.begin(); it != out.end(); ++it) {
    const auto next = std::next(it);
    if (next != out.end()) s.add_clause(~next->second, it->second);
  }
  return out;
}

WeightedOutputs build_gte(Solver& s, const std::vector<std::pair<Lit, long long>>& terms,
                          std::size_t lo, std::size_t hi, long long clamp) {
  if (hi - lo == 1) {
    WeightedOutputs leaf;
    leaf.emplace(std::min(terms[lo].second, clamp), terms[lo].first);
    return leaf;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  return merge_nodes(s, build_gte(s, terms, lo, mid, clamp), build_gte(s, terms, mid, hi, clamp),
                     clamp);
}

}  // namespace

CdclEngine::CdclEngine() {
  if (const char* env = std::getenv("QXMAP_SAT_RESTART");
      env != nullptr && std::string_view(env) == "luby") {
    restart_policy_ = sat::RestartPolicy::Luby;
  }
  solver_.set_restart_policy(restart_policy_);
}

int CdclEngine::new_bool() { return solver_.new_var(); }

void CdclEngine::add_clause(const std::vector<int>& lits) {
  std::vector<Lit> converted;
  converted.reserve(lits.size());
  for (const int l : lits) {
    if (l == 0) throw std::invalid_argument("CdclEngine::add_clause: zero literal");
    converted.push_back(Lit(std::abs(l) - 1, l < 0));
  }
  solver_.add_clause(std::move(converted));
}

bool CdclEngine::mark_prefix() {
  prefix_.emplace(PrefixSnapshot{solver_, cost_terms_, ge_, clamp_, upper_bound_, enforced_,
                                 external_limit_});
  return true;
}

bool CdclEngine::reset_to_prefix() {
  if (!prefix_) return false;
  solver_ = prefix_->solver;
  cost_terms_ = prefix_->cost_terms;
  ge_ = prefix_->ge;
  clamp_ = prefix_->clamp;
  upper_bound_ = prefix_->upper_bound;
  enforced_ = prefix_->enforced;
  external_limit_ = prefix_->external_limit;
  best_model_.clear();
  has_model_ = false;
  return true;
}

void CdclEngine::add_cost(int var, long long weight) {
  if (weight <= 0) throw std::invalid_argument("CdclEngine::add_cost: weight must be positive");
  cost_terms_.emplace_back(var, weight);
}

long long CdclEngine::model_cost() const {
  long long cost = 0;
  for (const auto& [var, weight] : cost_terms_) {
    if (best_model_[static_cast<std::size_t>(var)]) cost += weight;
  }
  return cost;
}

void CdclEngine::snapshot_model() {
  best_model_.resize(static_cast<std::size_t>(solver_.num_vars()));
  for (sat::Var v = 0; v < solver_.num_vars(); ++v) {
    best_model_[static_cast<std::size_t>(v)] = solver_.model_value(v);
  }
  has_model_ = true;
}

Outcome CdclEngine::budget_outcome() const {
  Outcome out;
  if (has_model_ && model_cost() <= external_limit_) {
    out.status = Status::Feasible;
    out.cost = model_cost();
  } else {
    // No model, or only a stale model costlier than the tightest external
    // bound: a run with that bound enforced from the start would have found
    // nothing by now, so the bounded contract demands Unknown — never a
    // Feasible cost above the bound, and not Unsat either (nothing below
    // the bound has been *proven* absent).
    out.status = Status::Unknown;
  }
  return out;
}

void CdclEngine::add_cost_bound(long long bound) {
  if (bound < enforced_) enforced_ = bound;
  if (cost_terms_.empty()) return;
  if (bound < 0) {
    // Nothing cheaper than 0 exists; make the formula UNSAT to stop the loop.
    solver_.add_clause(std::vector<Lit>{});
    return;
  }
  if (ge_.empty()) {
    clamp_ = bound + 1;
    std::vector<std::pair<Lit, long long>> terms;
    terms.reserve(cost_terms_.size());
    for (const auto& [var, weight] : cost_terms_) {
      terms.emplace_back(sat::pos(var), weight);
    }
    ge_ = build_gte(solver_, terms, 0, terms.size(), clamp_);
  }
  // Forbid every attainable objective value above the bound.
  for (const auto& [w, lit] : ge_) {
    if (w > bound) {
      solver_.add_clause(~lit);
      break;  // monotonicity clauses force the rest
    }
  }
}

void CdclEngine::set_upper_bound(long long bound) {
  if (bound < 0) throw std::invalid_argument("CdclEngine::set_upper_bound: negative bound");
  upper_bound_ = bound;
}

void CdclEngine::apply_external_bound(long long bound) {
  add_cost_bound(bound);
  if (bound < external_limit_) external_limit_ = bound;
}

long long CdclEngine::observe_external(long long ext) {
  if (ext < external_limit_) {
    external_limit_ = ext;
    ++stats_.bound_tightenings;
  }
  return ext;
}

void CdclEngine::poll_and_tighten() {
  if (!has_bound_source()) return;
  const long long ext = observe_external(poll_bound_source());
  if (ext < enforced_) add_cost_bound(ext);
}

namespace {

/// Registry twins of the cumulative SolverStats / EngineStats counters.
/// minimize() publishes per-call deltas, so the process-wide totals stay
/// correct across many engines (one per shard thread).
struct CdclMetrics {
  obs::Counter& conflicts;
  obs::Counter& restarts;
  obs::Counter& decisions;
  obs::Counter& propagations;
  obs::Counter& learned;
  obs::Counter& learnt_deleted;
  obs::Counter& bound_polls;
  obs::Counter& bound_tightenings;

  static CdclMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static CdclMetrics m{
        reg.counter("qxmap_cdcl_conflicts_total", "CDCL conflicts across all engines"),
        reg.counter("qxmap_cdcl_restarts_total", "CDCL restarts (glucose policy)"),
        reg.counter("qxmap_cdcl_decisions_total", "CDCL decisions"),
        reg.counter("qxmap_cdcl_propagations_total", "CDCL unit propagations"),
        reg.counter("qxmap_cdcl_learned_total", "Learnt clauses added"),
        reg.counter("qxmap_cdcl_learnt_deleted_total", "Learnt clauses removed by ReduceDB"),
        reg.counter("qxmap_engine_bound_polls_total",
                    "Shared-bound consultations at engine checkpoints"),
        reg.counter("qxmap_engine_bound_tightenings_total",
                    "Polls that strictly tightened an engine's external bound"),
    };
    return m;
  }
};

}  // namespace

Outcome CdclEngine::minimize(std::chrono::milliseconds budget) {
  obs::Span span("cdcl.minimize", "cdcl");
  span.attr("mode", mode_ == OptimizationMode::BinarySearch ? "binary" : "descending");
  const sat::SolverStats before = solver_.stats();
  const long long polls_before = stats_.bound_polls;
  const long long tightenings_before = stats_.bound_tightenings;
  const auto deadline = std::chrono::steady_clock::now() + budget;
  // Known external bound: start with objective <= bound already enforced.
  // Both modes run on solver_, so this single enforcement covers them.
  if (upper_bound_) apply_external_bound(*upper_bound_);
  // Preprocessing before the timing-sensitive loop: propagate level-0 facts
  // (the encoding produces many units) to fixpoint and shed satisfied /
  // falsified-literal clauses once, instead of carrying them through every
  // descending step.
  solver_.simplify();
  const Outcome out = mode_ == OptimizationMode::BinarySearch ? minimize_binary(deadline)
                                                              : minimize_descending(deadline);
  const sat::SolverStats& ss = solver_.stats();
  stats_.learnts_kept = static_cast<long long>(ss.learnt_kept);
  stats_.learnts_deleted = static_cast<long long>(ss.learnt_deleted);
  stats_.restarts = static_cast<long long>(ss.restarts);
  stats_.avg_lbd =
      ss.learned > 0 ? static_cast<double>(ss.lbd_sum) / static_cast<double>(ss.learned) : 0.0;
  CdclMetrics& metrics = CdclMetrics::get();
  metrics.conflicts.inc(ss.conflicts - before.conflicts);
  metrics.restarts.inc(ss.restarts - before.restarts);
  metrics.decisions.inc(ss.decisions - before.decisions);
  metrics.propagations.inc(ss.propagations - before.propagations);
  metrics.learned.inc(ss.learned - before.learned);
  metrics.learnt_deleted.inc(ss.learnt_deleted - before.learnt_deleted);
  metrics.bound_polls.inc(static_cast<std::uint64_t>(stats_.bound_polls - polls_before));
  metrics.bound_tightenings.inc(
      static_cast<std::uint64_t>(stats_.bound_tightenings - tightenings_before));
  span.attr("status", to_string(out.status));
  span.attr("cost", out.cost);
  span.attr("conflicts", static_cast<unsigned long long>(ss.conflicts - before.conflicts));
  return out;
}

Outcome CdclEngine::minimize_descending(std::chrono::steady_clock::time_point deadline) {
  Outcome out;
  // Milestone instants (restarts, ReduceDB passes) are detected as solver
  // stat deltas at conflict boundaries. The flag is sampled once so the
  // disabled path costs nothing per conflict beyond this captured bool.
  const bool tracing = obs::TraceRecorder::enabled();
  std::uint64_t seen_restarts = solver_.stats().restarts;
  std::uint64_t seen_deleted = solver_.stats().learnt_deleted;
  for (;;) {
    // Between-solve checkpoint: adopt any bound published while the previous
    // solve ran (and guarantee at least one poll per minimize call).
    poll_and_tighten();
    // In-solve checkpoints ride the solver's conflict-boundary interrupt.
    // Clauses cannot be added mid-solve, so a strictly tighter published
    // bound aborts at the next conflict boundary and is enforced below
    // before re-entering; the solver keeps learnt clauses, phases and
    // activities, so nothing already derived is lost.
    long long pending = kNoBound;
    int countdown = kPollConflictInterval;
    const auto interrupt = [&]() -> bool {
      if (tracing) {
        const sat::SolverStats& ss = solver_.stats();
        if (ss.restarts != seen_restarts) {
          obs::Span::instant("cdcl.restart", "cdcl");
          seen_restarts = ss.restarts;
        }
        if (ss.learnt_deleted != seen_deleted) {
          obs::Span::instant("cdcl.reduce_db", "cdcl",
                             {{"deleted", std::to_string(ss.learnt_deleted - seen_deleted)}});
          seen_deleted = ss.learnt_deleted;
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) return true;
      if (has_bound_source() && --countdown <= 0) {
        countdown = kPollConflictInterval;
        const long long ext = observe_external(poll_bound_source());
        if (ext < enforced_) {
          pending = ext;
          return true;
        }
      }
      return false;
    };
    const sat::SolveResult r = solver_.solve(interrupt);
    if (r == sat::SolveResult::Unknown && pending != kNoBound) {
      if (obs::TraceRecorder::enabled()) {
        obs::Span::instant("cdcl.tighten_abort", "cdcl", {{"bound", std::to_string(pending)}});
      }
      add_cost_bound(pending);
      continue;
    }
    if (r == sat::SolveResult::Unsatisfiable) {
      if (has_model_ && model_cost() <= external_limit_) {
        out.status = Status::Optimal;
        out.cost = model_cost();
      } else {
        // No model at all, or only models costlier than the tightest
        // external bound (found before that bound arrived): under the
        // bounded contract both mean "cannot beat the incumbent", reported
        // as Unsat — exactly as if the bound had been set before the solve.
        out.status = Status::Unsat;
      }
      return out;
    }
    if (r == sat::SolveResult::Unknown) {
      return budget_outcome();
    }
    // Satisfiable: snapshot the model, tighten, and go again.
    snapshot_model();
    const long long cost = model_cost();
    if (cost == 0) {
      out.status = Status::Optimal;
      out.cost = 0;
      return out;
    }
    add_cost_bound(cost - 1);
  }
}

Outcome CdclEngine::minimize_binary(std::chrono::steady_clock::time_point deadline) {
  // Incremental binary search (Sec. 3.3 "set F to a fixed value"): every
  // probe runs on solver_ with the speculative bound asserted as an
  // *assumption* on a GTE output, never as a clause — the clause database
  // only ever receives monotone facts (model costs, external bounds), so
  // learnt clauses, phases and activities survive probes in both
  // directions. In-solve checkpoints ride the same conflict-boundary
  // interrupt as the descending loop; a tighter published bound aborts the
  // probe and shrinks the search window before the next one.
  Outcome out;
  long long pending = kNoBound;
  int countdown = kPollConflictInterval;
  // Same milestone detection as the descending loop (see comment there).
  const bool tracing = obs::TraceRecorder::enabled();
  std::uint64_t seen_restarts = solver_.stats().restarts;
  std::uint64_t seen_deleted = solver_.stats().learnt_deleted;
  const auto interrupt = [&]() -> bool {
    if (tracing) {
      const sat::SolverStats& ss = solver_.stats();
      if (ss.restarts != seen_restarts) {
        obs::Span::instant("cdcl.restart", "cdcl");
        seen_restarts = ss.restarts;
      }
      if (ss.learnt_deleted != seen_deleted) {
        obs::Span::instant("cdcl.reduce_db", "cdcl",
                           {{"deleted", std::to_string(ss.learnt_deleted - seen_deleted)}});
        seen_deleted = ss.learnt_deleted;
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return true;
    if (has_bound_source() && --countdown <= 0) {
      countdown = kPollConflictInterval;
      const long long ext = observe_external(poll_bound_source());
      if (ext < enforced_) {
        pending = ext;
        return true;
      }
    }
    return false;
  };

  // First solve under whatever is enforced so far, to obtain an upper bound.
  for (;;) {
    pending = kNoBound;
    const sat::SolveResult first = solver_.solve(interrupt);
    if (first == sat::SolveResult::Unknown && pending != kNoBound) {
      if (obs::TraceRecorder::enabled()) {
        obs::Span::instant("cdcl.tighten_abort", "cdcl", {{"bound", std::to_string(pending)}});
      }
      add_cost_bound(pending);
      continue;
    }
    if (first == sat::SolveResult::Unsatisfiable) {
      out.status = Status::Unsat;  // no model at or below everything enforced
      return out;
    }
    if (first == sat::SolveResult::Unknown) return budget_outcome();
    break;
  }
  snapshot_model();
  long long hi = model_cost();
  if (hi == 0) {
    out.status = Status::Optimal;
    out.cost = 0;
    return out;
  }
  // Commit the model's cost permanently (monotone: the optimum is <= hi)
  // and clamp the GTE here on its first construction.
  add_cost_bound(hi);

  long long lo = 0;
  for (;;) {
    // Between-probe checkpoint: adopt bounds published while the previous
    // probe ran. External bounds are permanent units, as in descending mode.
    poll_and_tighten();
    if (lo > external_limit_) {
      // Proven: every model costs more than the external bound.
      out.status = Status::Unsat;
      return out;
    }
    // Probe only the range that can still beat (or tie) the external bound.
    const long long cap =
        (external_limit_ == kNoBound) ? hi : std::min(hi, external_limit_ + 1);
    if (lo >= cap) break;
    if (std::chrono::steady_clock::now() >= deadline) return budget_outcome();
    const long long mid = lo + (cap - lo) / 2;
    // Assume objective <= mid: assert ¬(sum >= B') for the smallest
    // attainable B' > mid. hi is attainable and > mid, so B' exists; the
    // GTE's monotonicity clauses propagate the rest of the outputs.
    const auto above = ge_.upper_bound(mid);
    if (above == ge_.end()) {
      throw std::logic_error("CdclEngine::minimize_binary: no GTE output above probe bound");
    }
    pending = kNoBound;
    const sat::SolveResult r = solver_.solve(interrupt, {~above->second});
    if (r == sat::SolveResult::Unknown) {
      if (pending != kNoBound) {
        if (obs::TraceRecorder::enabled()) {
        obs::Span::instant("cdcl.tighten_abort", "cdcl", {{"bound", std::to_string(pending)}});
      }
        add_cost_bound(pending);  // window shrinks via cap next iteration
        continue;
      }
      return budget_outcome();
    }
    if (r == sat::SolveResult::Unsatisfiable) {
      if (solver_.failed_assumptions().empty()) {
        // Unsat independent of the assumption: nothing below the permanent
        // (external) bound exists at all. The hi-vs-external check below
        // decides Optimal versus bounded-Unsat.
        break;
      }
      lo = mid + 1;
      continue;
    }
    // SAT at mid: adopt the model and commit its cost as the new ceiling.
    snapshot_model();
    hi = model_cost();
    add_cost_bound(hi);
  }
  if (hi > external_limit_) {
    // Proven: nothing at or below the external bound exists (the best model
    // sits above it) — bounded-Unsat, as with the descending loop.
    out.status = Status::Unsat;
    return out;
  }
  out.status = Status::Optimal;
  out.cost = hi;
  return out;
}

bool CdclEngine::value(int var) const {
  if (!has_model_) throw std::logic_error("CdclEngine::value: no model available");
  return best_model_.at(static_cast<std::size_t>(var));
}

}  // namespace qxmap::reason
