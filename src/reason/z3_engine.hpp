/// \file z3_engine.hpp
/// Z3-backed reasoning engine — the backend the paper used.
///
/// The objective (Eq. 5) is expressed through weighted soft constraints
/// ¬v with weight w for every add_cost(v, w): Z3's optimize core then
/// minimizes the total weight of violated soft constraints, which equals
/// the paper's F. The heavy Z3 types are kept out of this header (pimpl)
/// so the rest of the library does not compile against z3++.h.
///
/// External bounds (set_upper_bound and polled bound-source values) become
/// *hard* pseudo-Boolean constraints `Σ wᵢ·vᵢ <= bound`, so every model Z3
/// reports already respects the tightest bound. Cooperative tightening
/// (docs/concurrency.md) uses assumption-free re-solves: with a bound source
/// installed, minimize() slices its budget into kPollInterval chunks,
/// consults the source between chunks, asserts any tighter bound, and
/// re-checks — Z3 itself offers no mid-check constraint injection.

#pragma once

#include <memory>

#include "reason/engine.hpp"

namespace qxmap::reason {

/// ReasoningEngine implementation on top of z3::optimize.
class Z3Engine final : public ReasoningEngine {
 public:
  /// Initial budget slice between bound-source checkpoints (only used when
  /// a bound source is installed; otherwise one full-budget check runs).
  /// Because every re-check restarts Z3's search, the slice doubles after
  /// each checkpoint that brought no tighter bound — bounding total restart
  /// waste — and resets to this value when one does.
  static constexpr std::chrono::milliseconds kPollInterval{250};

  Z3Engine();
  ~Z3Engine() override;

  Z3Engine(const Z3Engine&) = delete;
  Z3Engine& operator=(const Z3Engine&) = delete;

  int new_bool() override;
  void add_clause(const std::vector<int>& lits) override;
  void add_cost(int var, long long weight) override;
  /// Asserts the hard PB constraint `objective <= bound` (inclusive).
  void set_upper_bound(long long bound) override;
  Outcome minimize(std::chrono::milliseconds budget) override;
  [[nodiscard]] bool value(int var) const override;
  [[nodiscard]] std::string name() const override { return "z3"; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qxmap::reason
