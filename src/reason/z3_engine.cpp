#include "reason/z3_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include <z3++.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qxmap::reason {

struct Z3Engine::Impl {
  z3::context ctx;
  z3::optimize opt{ctx};
  std::vector<z3::expr> vars;
  std::vector<std::pair<int, int>> cost_terms;  // (var id, weight)
  long long total_weight = 0;                   // Σ weights; bounds >= this are vacuous
  long long applied_bound = ReasoningEngine::kNoBound;  // tightest PB bound asserted
  std::vector<bool> model_values;
  bool has_model = false;

  /// Asserts `Σ wᵢ·vᵢ <= bound` as a hard constraint (no-op when a bound at
  /// least as tight is already asserted, or when the bound is vacuous).
  void apply_bound(long long bound) {
    if (bound >= applied_bound) return;
    applied_bound = bound;
    if (bound >= total_weight) return;  // cannot cut anything
    if (bound < 0) {
      // Nothing costs less than 0; the bounded formula is empty.
      opt.add(ctx.bool_val(false));
      return;
    }
    if (bound > std::numeric_limits<int>::max()) return;  // pble takes int; hint, so sound to skip
    z3::expr_vector es(ctx);
    std::vector<int> coeffs;
    coeffs.reserve(cost_terms.size());
    for (const auto& [var, weight] : cost_terms) {
      es.push_back(vars[static_cast<std::size_t>(var)]);
      coeffs.push_back(weight);
    }
    opt.add(z3::pble(es, coeffs.data(), static_cast<int>(bound)));
  }
};

Z3Engine::Z3Engine() : impl_(std::make_unique<Impl>()) {}
Z3Engine::~Z3Engine() = default;

int Z3Engine::new_bool() {
  const int id = static_cast<int>(impl_->vars.size());
  // Built via += because `"b" + std::to_string(id)` trips GCC 12's
  // -Wrestrict false positive at -O3.
  std::string name = "b";
  name += std::to_string(id);
  impl_->vars.push_back(impl_->ctx.bool_const(name.c_str()));
  return id;
}

void Z3Engine::add_clause(const std::vector<int>& lits) {
  z3::expr_vector disj(impl_->ctx);
  for (const int l : lits) {
    if (l == 0) throw std::invalid_argument("Z3Engine::add_clause: zero literal");
    const auto id = static_cast<std::size_t>(std::abs(l)) - 1;
    if (id >= impl_->vars.size()) throw std::out_of_range("Z3Engine::add_clause: unknown variable");
    disj.push_back(l > 0 ? impl_->vars[id] : !impl_->vars[id]);
  }
  impl_->opt.add(z3::mk_or(disj));
}

void Z3Engine::add_cost(int var, long long weight) {
  if (weight <= 0) throw std::invalid_argument("Z3Engine::add_cost: weight must be positive");
  if (weight > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("Z3Engine::add_cost: weight exceeds the PB coefficient range");
  }
  const auto id = static_cast<std::size_t>(var);
  if (id >= impl_->vars.size()) throw std::out_of_range("Z3Engine::add_cost: unknown variable");
  // Soft constraint "var is false" with the given weight: violating it
  // (var = true) incurs `weight`, matching the semantics of Eq. 5. The same
  // term feeds the hard PB constraint of apply_bound.
  impl_->opt.add_soft(!impl_->vars[id], static_cast<unsigned>(weight));
  impl_->cost_terms.emplace_back(var, static_cast<int>(weight));
  impl_->total_weight += weight;
}

void Z3Engine::set_upper_bound(long long bound) {
  if (bound < 0) throw std::invalid_argument("Z3Engine::set_upper_bound: negative bound");
  impl_->apply_bound(bound);
}

Outcome Z3Engine::minimize(std::chrono::milliseconds budget) {
  using Clock = std::chrono::steady_clock;
  const auto deadline = Clock::now() + budget;
  obs::Span span("z3.minimize", "z3");
  span.attr("budget_ms", static_cast<long long>(budget.count()));
  static obs::Counter& checks_total = obs::MetricsRegistry::instance().counter(
      "qxmap_z3_checks_total", "Z3 optimize check() calls (sliced re-checks included)");

  Outcome out;
  // Each z3::check() restarts the search, so slicing trades contiguous
  // solve time for poll opportunities. The slice doubles after every
  // fruitless checkpoint (bounding total restart waste by ~the final
  // slice) and snaps back to kPollInterval when a tighter bound lands —
  // fresh pruning information makes a short re-check worthwhile again.
  auto slice_cap = kPollInterval;
  for (;;) {
    // Checkpoint: adopt any bound published since the previous slice. Z3
    // cannot take constraints mid-check, so cooperative tightening re-solves
    // in budget slices instead (see the header comment).
    if (has_bound_source()) {
      const long long ext = poll_bound_source();
      if (ext < impl_->applied_bound) {
        ++stats_.bound_tightenings;
        if (obs::TraceRecorder::enabled()) {
          obs::Span::instant("z3.tighten", "z3", {{"bound", std::to_string(ext)}});
        }
        impl_->apply_bound(ext);
        slice_cap = kPollInterval;
      }
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
    if (remaining.count() <= 0) {
      out.status = Status::Unknown;
      span.attr("status", to_string(out.status));
      return out;
    }
    const auto slice = has_bound_source() ? std::min(remaining, slice_cap) : remaining;
    slice_cap *= 2;
    z3::params p(impl_->ctx);
    p.set("timeout", static_cast<unsigned>(slice.count()));
    impl_->opt.set(p);

    const auto check_start = Clock::now();
    checks_total.inc();
    z3::check_result r;
    {
      obs::Span check_span("z3.check", "z3");
      check_span.attr("slice_ms", static_cast<long long>(slice.count()));
      r = impl_->opt.check();
      check_span.attr("result", r == z3::sat      ? "sat"
                                : r == z3::unsat  ? "unsat"
                                                  : "unknown");
    }
    const auto check_elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - check_start);
    if (r == z3::unsat) {
      // True unsatisfiability or "nothing at or below the asserted bound" —
      // the caller treats both as "cannot beat the incumbent".
      out.status = Status::Unsat;
      span.attr("status", to_string(out.status));
      return out;
    }
    if (r == z3::unknown) {
      // Only a slice-expiry unknown is worth retrying; an instant give-up
      // (memout, incompleteness) would spin through the rest of the budget
      // in fruitless restarts. A timeout-driven unknown consumes roughly
      // the whole slice, so "finished well early" identifies the give-up
      // without depending on Z3 exposing a reason.
      const bool gave_up = check_elapsed + std::chrono::milliseconds(50) < slice;
      if (!has_bound_source() || gave_up) {
        out.status = Status::Unknown;
        span.attr("status", to_string(out.status));
        return out;
      }
      continue;  // slice expired: poll and re-check with the remaining budget
    }
    // sat: Z3's optimize has proven the soft-constraint optimum (subject to
    // the asserted PB bounds, so the model respects the tightest bound).
    const z3::model m = impl_->opt.get_model();
    impl_->model_values.assign(impl_->vars.size(), false);
    long long cost = 0;
    for (std::size_t i = 0; i < impl_->vars.size(); ++i) {
      const z3::expr v = m.eval(impl_->vars[i], /*model_completion=*/true);
      impl_->model_values[i] = v.is_true();
    }
    // Objective value: sum of weights of soft constraints violated. Z3
    // exposes it per objective; report Z3's first objective when present —
    // the caller recomputes the domain cost anyway.
    if (impl_->opt.objectives().size() > 0) {
      const z3::expr obj = impl_->opt.lower(0);
      if (obj.is_numeral()) cost = obj.get_numeral_int64();
    }
    impl_->has_model = true;
    out.status = Status::Optimal;
    out.cost = cost;
    span.attr("status", to_string(out.status));
    span.attr("cost", cost);
    return out;
  }
}

bool Z3Engine::value(int var) const {
  if (!impl_->has_model) throw std::logic_error("Z3Engine::value: no model available");
  return impl_->model_values.at(static_cast<std::size_t>(var));
}

}  // namespace qxmap::reason
