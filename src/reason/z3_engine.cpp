#include "reason/z3_engine.hpp"

#include <stdexcept>
#include <vector>

#include <z3++.h>

namespace qxmap::reason {

struct Z3Engine::Impl {
  z3::context ctx;
  z3::optimize opt{ctx};
  std::vector<z3::expr> vars;
  std::vector<bool> model_values;
  bool has_model = false;
};

Z3Engine::Z3Engine() : impl_(std::make_unique<Impl>()) {}
Z3Engine::~Z3Engine() = default;

int Z3Engine::new_bool() {
  const int id = static_cast<int>(impl_->vars.size());
  // Built via += because `"b" + std::to_string(id)` trips GCC 12's
  // -Wrestrict false positive at -O3.
  std::string name = "b";
  name += std::to_string(id);
  impl_->vars.push_back(impl_->ctx.bool_const(name.c_str()));
  return id;
}

void Z3Engine::add_clause(const std::vector<int>& lits) {
  z3::expr_vector disj(impl_->ctx);
  for (const int l : lits) {
    if (l == 0) throw std::invalid_argument("Z3Engine::add_clause: zero literal");
    const auto id = static_cast<std::size_t>(std::abs(l)) - 1;
    if (id >= impl_->vars.size()) throw std::out_of_range("Z3Engine::add_clause: unknown variable");
    disj.push_back(l > 0 ? impl_->vars[id] : !impl_->vars[id]);
  }
  impl_->opt.add(z3::mk_or(disj));
}

void Z3Engine::add_cost(int var, long long weight) {
  if (weight <= 0) throw std::invalid_argument("Z3Engine::add_cost: weight must be positive");
  const auto id = static_cast<std::size_t>(var);
  if (id >= impl_->vars.size()) throw std::out_of_range("Z3Engine::add_cost: unknown variable");
  // Soft constraint "var is false" with the given weight: violating it
  // (var = true) incurs `weight`, matching the semantics of Eq. 5.
  impl_->opt.add_soft(!impl_->vars[id], static_cast<unsigned>(weight));
}

Outcome Z3Engine::minimize(std::chrono::milliseconds budget) {
  z3::params p(impl_->ctx);
  p.set("timeout", static_cast<unsigned>(budget.count()));
  impl_->opt.set(p);

  const z3::check_result r = impl_->opt.check();
  Outcome out;
  if (r == z3::unsat) {
    out.status = Status::Unsat;
    return out;
  }
  if (r == z3::unknown) {
    out.status = Status::Unknown;
    return out;
  }
  // sat: Z3's optimize has proven the soft-constraint optimum.
  const z3::model m = impl_->opt.get_model();
  impl_->model_values.assign(impl_->vars.size(), false);
  long long cost = 0;
  for (std::size_t i = 0; i < impl_->vars.size(); ++i) {
    const z3::expr v = m.eval(impl_->vars[i], /*model_completion=*/true);
    impl_->model_values[i] = v.is_true();
  }
  // Objective value: sum of weights of soft constraints violated. Z3 exposes
  // it per objective; recompute from the recorded soft constraints instead
  // to stay independent of objective indexing — the caller recomputes the
  // domain cost anyway, so report Z3's first objective when present.
  if (impl_->opt.objectives().size() > 0) {
    const z3::expr obj = impl_->opt.lower(0);
    if (obj.is_numeral()) cost = obj.get_numeral_int64();
  }
  impl_->has_model = true;
  out.status = Status::Optimal;
  out.cost = cost;
  return out;
}

bool Z3Engine::value(int var) const {
  if (!impl_->has_model) throw std::logic_error("Z3Engine::value: no model available");
  return impl_->model_values.at(static_cast<std::size_t>(var));
}

}  // namespace qxmap::reason
