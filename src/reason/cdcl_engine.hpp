/// \file cdcl_engine.hpp
/// Reasoning engine backed by the library's own CDCL solver (src/sat).
///
/// Optimisation is a descending-bound loop: solve, read off the model cost,
/// add clauses forbidding any assignment of that cost or worse, repeat until
/// UNSAT (the last model is then provably optimal) or until the budget runs
/// out (Feasible). The weighted bound (Eq. 5: 7·swaps(π) per y, 4 per z) is
/// enforced with a generalized totalizer (GTE): a tree over the weighted
/// cost literals whose root carries one "sum >= w" indicator per attainable
/// weight w, clamped at the first bound + 1; tightening to a smaller bound B
/// then only needs unit clauses ¬(sum >= B') for the smallest attainable
/// B' > B (monotonicity clauses force the rest).
///
/// Binary search (Sec. 3.3 "set F to a fixed value") runs against the same
/// incremental solver: the GTE is built once, clamped at the first model's
/// cost, and each probe at mid asserts the *assumption* ¬(sum >= B') for the
/// smallest attainable B' > mid — speculative bounds never enter the clause
/// database, so learnt clauses, phases and activities survive every probe in
/// both directions. Only monotone facts (a model's own cost, external
/// bounds) are committed as permanent units.
///
/// Cooperative tightening (docs/concurrency.md): with a bound source
/// installed, both loops poll it between solves and — via the SAT solver's
/// conflict-boundary interrupt — every kPollConflictInterval conflicts
/// *inside* a solve. A strictly tighter published bound aborts the in-flight
/// solve at the next conflict boundary, re-tightens the GTE with unit
/// clauses, and resumes; the solver keeps its learnt clauses and heuristic
/// state, so an abort never repeats completed work.

#pragma once

#include <map>
#include <optional>
#include <vector>

#include "reason/engine.hpp"
#include "sat/solver.hpp"

namespace qxmap::reason {

/// ReasoningEngine implementation on top of sat::Solver.
class CdclEngine final : public ReasoningEngine {
 public:
  /// Honours QXMAP_SAT_RESTART=luby|glucose (default glucose) so restart
  /// behaviour can be A/B-tested without a rebuild.
  CdclEngine();

  /// Selects the optimization mode; call before minimize().
  void set_optimization_mode(OptimizationMode mode) noexcept override { mode_ = mode; }

  /// Back-compat alias for set_optimization_mode.
  void set_mode(OptimizationMode mode) noexcept { mode_ = mode; }

  int new_bool() override;
  void add_clause(const std::vector<int>& lits) override;
  void add_cost(int var, long long weight) override;
  /// Enforces objective <= bound via the GTE before the first solve, so the
  /// descending loop starts below an externally known model cost.
  void set_upper_bound(long long bound) override;
  Outcome minimize(std::chrono::milliseconds budget) override;
  [[nodiscard]] bool value(int var) const override;
  [[nodiscard]] std::string name() const override { return "cdcl"; }

  /// Prefix reuse (Sec. 4.1 subset sharding): snapshots the whole solver —
  /// clause arena, watches, VSIDS state — plus the engine-level objective
  /// bookkeeping. The solver's plain-data subsystems make this a member
  /// copy. reset_to_prefix() restores the copy, discarding every clause,
  /// learnt, cost term and bound added after the mark; stats() counters
  /// survive (they are cumulative per shard).
  bool mark_prefix() override;
  bool reset_to_prefix() override;

  /// Underlying solver statistics (for benchmarks).
  [[nodiscard]] const sat::SolverStats& solver_stats() const noexcept { return solver_.stats(); }

  /// In-solve bound-source poll cadence, in solver conflicts (the solver's
  /// interrupt hook fires once per conflict; every Nth consults the source).
  static constexpr int kPollConflictInterval = 128;

 private:
  /// Adds clauses enforcing objective <= bound (builds the GTE on first use,
  /// clamped at bound + 1). Tracks the tightest bound enforced so far.
  void add_cost_bound(long long bound);
  /// Enforces an *external* (inclusive) bound: objective <= bound. Also
  /// records it for the Optimal-vs-bounded-Unsat decision.
  void apply_external_bound(long long bound);
  /// Records a polled bound in external_limit_ (counting a tightening when
  /// it strictly improves), returning it. Every poll goes through here so
  /// the reported outcome matches "the tightest polled bound had been set
  /// before minimize()" even when the clause database needs no update.
  long long observe_external(long long ext);
  /// Between-solve checkpoint: consults the bound source and enforces the
  /// result when strictly tighter than everything enforced so far.
  void poll_and_tighten();
  [[nodiscard]] long long model_cost() const;
  void snapshot_model();
  /// Outcome when the budget expires: Feasible with the best model's cost,
  /// unless that cost exceeds the tightest external bound — a run with the
  /// bound set up front would have found nothing yet, so Unknown (the
  /// observed-vs-enforced contract, docs/concurrency.md).
  [[nodiscard]] Outcome budget_outcome() const;
  Outcome minimize_descending(std::chrono::steady_clock::time_point deadline);
  Outcome minimize_binary(std::chrono::steady_clock::time_point deadline);

  /// Engine-level state captured by mark_prefix (the sat::Solver itself is
  /// copyable by design — contiguous arena + plain vectors).
  struct PrefixSnapshot {
    sat::Solver solver;
    std::vector<std::pair<int, long long>> cost_terms;
    std::map<long long, sat::Lit> ge;
    long long clamp = -1;
    std::optional<long long> upper_bound;
    long long enforced = kNoBound;
    long long external_limit = kNoBound;
  };

  sat::Solver solver_;
  sat::RestartPolicy restart_policy_ = sat::RestartPolicy::Glucose;
  OptimizationMode mode_ = OptimizationMode::DescendingLinear;
  std::optional<long long> upper_bound_;
  /// Tightest bound ever passed to add_cost_bound (internal descents and
  /// external bounds alike); a polled value prunes only if below this.
  long long enforced_ = kNoBound;
  /// Tightest *external* bound observed (set_upper_bound or any poll). A
  /// model costlier than this is reported as bounded-Unsat, never Optimal,
  /// so the outcome matches "the bound had been set before minimize()".
  long long external_limit_ = kNoBound;
  std::vector<std::pair<int, long long>> cost_terms_;  // (var, weight)
  // Generalized-totalizer root: ge_[w] ↔ "objective >= w" for attainable w,
  // clamped at clamp_. Built lazily by the first add_cost_bound call.
  std::map<long long, sat::Lit> ge_;
  long long clamp_ = -1;
  std::vector<bool> best_model_;
  bool has_model_ = false;
  std::optional<PrefixSnapshot> prefix_;
};

}  // namespace qxmap::reason
