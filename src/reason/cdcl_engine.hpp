/// \file cdcl_engine.hpp
/// Reasoning engine backed by the library's own CDCL solver (src/sat).
///
/// Optimisation is a descending-bound loop: solve, read off the model cost,
/// add clauses forbidding any assignment of that cost or worse, repeat until
/// UNSAT (the last model is then provably optimal) or until the budget runs
/// out (Feasible). The weighted bound (Eq. 5: 7·swaps(π) per y, 4 per z) is
/// enforced with a generalized totalizer (GTE): a tree over the weighted
/// cost literals whose root carries one "sum >= w" indicator per attainable
/// weight w, clamped at the first bound + 1; tightening to a smaller bound B
/// then only needs unit clauses ¬(sum >= w) for attainable w > B.

#pragma once

#include <map>
#include <optional>
#include <vector>

#include "reason/engine.hpp"
#include "sat/solver.hpp"

namespace qxmap::reason {

/// How the optimum is approached (Sec. 3.3 discusses both: "simply set F
/// to a fixed value and approach towards the minimum, e.g., by applying a
/// binary search" vs. letting the engine minimize directly).
enum class OptimizationMode {
  DescendingLinear,  ///< solve, tighten below the model cost, repeat (default)
  BinarySearch,      ///< bisect on the cost bound with fresh probe solvers
};

/// ReasoningEngine implementation on top of sat::Solver.
class CdclEngine final : public ReasoningEngine {
 public:
  CdclEngine() = default;

  /// Selects the optimization mode; call before minimize().
  void set_mode(OptimizationMode mode) noexcept { mode_ = mode; }

  int new_bool() override;
  void add_clause(const std::vector<int>& lits) override;
  void add_cost(int var, long long weight) override;
  /// Enforces objective <= bound via the GTE before the first solve, so the
  /// descending loop starts below an externally known model cost.
  void set_upper_bound(long long bound) override;
  Outcome minimize(std::chrono::milliseconds budget) override;
  [[nodiscard]] bool value(int var) const override;
  [[nodiscard]] std::string name() const override { return "cdcl"; }

  /// Underlying solver statistics (for benchmarks).
  [[nodiscard]] const sat::SolverStats& solver_stats() const noexcept { return solver_.stats(); }

 private:
  /// Adds clauses enforcing objective <= bound (builds the GTE on first use,
  /// clamped at bound + 1).
  void add_cost_bound(long long bound);
  [[nodiscard]] long long model_cost() const;
  Outcome minimize_descending(std::chrono::steady_clock::time_point deadline);
  Outcome minimize_binary(std::chrono::steady_clock::time_point deadline);

  sat::Solver solver_;
  OptimizationMode mode_ = OptimizationMode::DescendingLinear;
  std::optional<long long> upper_bound_;
  std::vector<std::vector<sat::Lit>> stored_clauses_;  // for binary-search probes
  std::vector<std::pair<int, long long>> cost_terms_;  // (var, weight)
  // Generalized-totalizer root: ge_[w] ↔ "objective >= w" for attainable w,
  // clamped at clamp_. Built lazily by the first add_cost_bound call.
  std::map<long long, sat::Lit> ge_;
  long long clamp_ = -1;
  std::vector<bool> best_model_;
  bool has_model_ = false;
};

}  // namespace qxmap::reason
