#include "reason/engine.hpp"

#include <stdexcept>
#include <utility>

#include "reason/cdcl_engine.hpp"
#if QXMAP_WITH_Z3
#include "reason/z3_engine.hpp"
#endif

namespace qxmap::reason {

void ReasoningEngine::add_at_most_one(const std::vector<int>& lits) {
  const std::size_t n = lits.size();
  if (n <= 6) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        add_clause({-lits[i], -lits[j]});
      }
    }
    return;
  }
  // Sequential ("ladder") encoding: O(n) clauses + aux vars.
  std::vector<int> reg(n - 1);
  for (auto& r : reg) r = new_bool() + 1;
  add_clause({-lits[0], reg[0]});
  for (std::size_t i = 1; i + 1 < n; ++i) {
    add_clause({-lits[i], reg[i]});
    add_clause({-reg[i - 1], reg[i]});
    add_clause({-lits[i], -reg[i - 1]});
  }
  add_clause({-lits[n - 1], -reg[n - 2]});
}

void ReasoningEngine::set_upper_bound(long long /*bound*/) {}

void ReasoningEngine::set_optimization_mode(OptimizationMode /*mode*/) {}

bool ReasoningEngine::mark_prefix() { return false; }

bool ReasoningEngine::reset_to_prefix() { return false; }

void ReasoningEngine::set_bound_source(BoundSource source) { bound_source_ = std::move(source); }

long long ReasoningEngine::poll_bound_source() {
  if (!bound_source_) return kNoBound;
  ++stats_.bound_polls;
  return bound_source_();
}

void ReasoningEngine::add_at_least_one(const std::vector<int>& lits) { add_clause(lits); }

void ReasoningEngine::add_exactly_one(const std::vector<int>& lits) {
  add_at_least_one(lits);
  add_at_most_one(lits);
}

int ReasoningEngine::make_and(int a, int b) {
  const int t = new_bool();
  const int tl = t + 1;
  add_clause({-tl, a});
  add_clause({-tl, b});
  add_clause({-a, -b, tl});
  return t;
}

int ReasoningEngine::make_or(const std::vector<int>& lits) {
  const int t = new_bool();
  const int tl = t + 1;
  if (lits.empty()) {
    add_clause({-tl});
    return t;
  }
  std::vector<int> big{-tl};
  for (const int l : lits) {
    add_clause({-l, tl});
    big.push_back(l);
  }
  add_clause(big);
  return t;
}

void ReasoningEngine::add_equal_lits(int a, int b) {
  add_clause({-a, b});
  add_clause({a, -b});
}

void ReasoningEngine::add_implies_equal(int antecedent, int a, int b) {
  add_clause({-antecedent, -a, b});
  add_clause({-antecedent, a, -b});
}

std::string to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::Z3: return "z3";
    case EngineKind::Cdcl: return "cdcl";
  }
  throw std::invalid_argument("to_string: bad EngineKind");
}

std::string to_string(Status status) {
  switch (status) {
    case Status::Optimal: return "optimal";
    case Status::Feasible: return "feasible";
    case Status::Unsat: return "unsat";
    case Status::Unknown: return "unknown";
  }
  throw std::invalid_argument("to_string: bad Status");
}

bool z3_available() {
#if QXMAP_WITH_Z3
  return true;
#else
  return false;
#endif
}

std::unique_ptr<ReasoningEngine> make_engine(EngineKind kind) {
  switch (kind) {
    case EngineKind::Z3:
#if QXMAP_WITH_Z3
      return std::make_unique<Z3Engine>();
#else
      // Z3 support compiled out: degrade to the built-in CDCL backend so
      // callers that default to the paper's engine keep working.
      return std::make_unique<CdclEngine>();
#endif
    case EngineKind::Cdcl: return std::make_unique<CdclEngine>();
  }
  throw std::invalid_argument("make_engine: bad EngineKind");
}

}  // namespace qxmap::reason
