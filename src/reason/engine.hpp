/// \file engine.hpp
/// Abstraction over "powerful reasoning engines" (Sec. 3.1).
///
/// The paper solves the symbolic formulation with Z3; this library supports
/// two interchangeable backends behind one interface — Z3's MaxSAT-style
/// optimizer and the home-grown CDCL solver with a descending-bound loop —
/// so the engine choice becomes an ablation axis (bench/engines).
///
/// Literal convention: an engine variable is an int id (0-based); a literal
/// is DIMACS-like, `+(id+1)` for the positive phase, `-(id+1)` for the
/// negative phase.

#pragma once

#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace qxmap::reason {

/// Status of an optimisation run.
enum class Status {
  Optimal,     ///< model found and proven minimal
  Feasible,    ///< model found, optimality not proven (budget exhausted)
  Unsat,       ///< constraints unsatisfiable
  Unknown,     ///< no model found within budget
};

/// Outcome of ReasoningEngine::minimize.
struct Outcome {
  Status status = Status::Unknown;
  long long cost = 0;  ///< objective value of the best model (valid for Optimal/Feasible)
};

/// How an engine approaches the objective minimum (Sec. 3.3 discusses both:
/// "simply set F to a fixed value and approach towards the minimum, e.g., by
/// applying a binary search" vs. letting the engine minimize directly).
/// Backends without a native mode choice (Z3) ignore the selection.
enum class OptimizationMode {
  DescendingLinear,  ///< solve, tighten below the model cost, repeat (default)
  BinarySearch,      ///< bisect on the cost bound with assumption-literal probes
};

/// Counters of the cooperative bound protocol (docs/concurrency.md) plus
/// backend search statistics. Poll timing and search trajectories depend on
/// machine speed, so these are observability numbers, not part of any
/// determinism guarantee. The solver-internal fields are filled by the CDCL
/// backend (zero for Z3, which does not expose them).
struct EngineStats {
  long long bound_polls = 0;        ///< bound-source consultations
  long long bound_tightenings = 0;  ///< polls that strictly tightened the
                                    ///< externally-known bound mid-solve
  long long learnts_kept = 0;       ///< learnt clauses surviving the latest ReduceDB pass
  long long learnts_deleted = 0;    ///< learnt clauses deleted by ReduceDB
  long long restarts = 0;           ///< search restarts
  double avg_lbd = 0.0;             ///< average LBD of learnt clauses
};

/// One engine instance owns one formula + objective. An engine is not
/// reusable across arbitrary problems, with one structured exception:
/// mark_prefix() / reset_to_prefix() let backends that support it snapshot
/// the formula after a common clause prefix and later roll back to exactly
/// that snapshot, so a family of instances sharing the prefix (the Sec. 4.1
/// subset instances) pays its encoding cost once per shard.
class ReasoningEngine {
 public:
  /// "No bound known" sentinel returned by a BoundSource.
  static constexpr long long kNoBound = std::numeric_limits<long long>::max();

  /// Live view of the cheapest model cost known outside this engine (e.g.
  /// the shared Eq. (5) bound of the parallel exact mapper). Must be safe to
  /// call from the engine's solving thread at any time and must be monotone:
  /// once it returns a value b it never returns anything greater than b.
  /// Returns kNoBound while no external model is known.
  using BoundSource = std::function<long long()>;

  virtual ~ReasoningEngine() = default;

  /// Creates a fresh Boolean variable, returning its id.
  virtual int new_bool() = 0;

  /// Adds a disjunction of literals (see the convention above).
  virtual void add_clause(const std::vector<int>& lits) = 0;

  /// Adds `weight` to the objective whenever variable `var` is true.
  /// weight must be positive.
  virtual void add_cost(int var, long long weight) = 0;

  /// Optimisation hint: a model of cost `bound` is already known elsewhere
  /// (e.g. from another subset instance, Sec. 4.1), so only models with
  /// objective <= bound are of interest. Engines may enforce the bound to
  /// prune the search, in which case costlier-only formulas come back as
  /// Unsat; callers must treat that as "cannot beat the bound", not as true
  /// unsatisfiability. Call at most once, before minimize(). The default
  /// implementation ignores the hint.
  virtual void set_upper_bound(long long bound);

  /// Cooperative tightening (docs/concurrency.md): installs a live bound
  /// source that minimize() polls at periodic checkpoints *during* the
  /// search. When a poll returns a bound tighter than everything enforced so
  /// far, the engine re-tightens its objective constraint in flight and
  /// abandons branches that can no longer beat it. The bound is inclusive
  /// (models with objective == bound are still of interest); like
  /// set_upper_bound, an engine that proves nothing at or below the tightest
  /// polled bound exists reports Unsat, which callers must read as "cannot
  /// beat the bound". Call before minimize(); the base implementation stores
  /// the source and the backend decides the checkpoint cadence (the default
  /// minimize() implementations consult it at least once per solve).
  virtual void set_bound_source(BoundSource source);

  /// Selects how minimize() approaches the optimum. Call before minimize();
  /// the default implementation ignores the choice (backends that minimize
  /// natively, like Z3, have no mode to select).
  virtual void set_optimization_mode(OptimizationMode mode);

  /// Snapshots the engine's current state (variables + clauses added so
  /// far) as the reusable prefix. Returns false when the backend does not
  /// support prefix reuse (callers then fall back to a fresh engine per
  /// instance). Call before any add_cost / set_upper_bound / minimize.
  virtual bool mark_prefix();

  /// Rolls the engine back to the mark_prefix() snapshot — formula, costs
  /// and bounds return to their prefix state; cumulative stats() counters
  /// are kept. Returns false when no snapshot exists or the backend does
  /// not support prefix reuse.
  virtual bool reset_to_prefix();

  /// Cooperative-bound counters accumulated across minimize() calls.
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

  /// Minimizes the objective subject to the clauses within `budget`.
  virtual Outcome minimize(std::chrono::milliseconds budget) = 0;

  /// Value of `var` in the best model found (valid after Optimal/Feasible).
  [[nodiscard]] virtual bool value(int var) const = 0;

  /// Human-readable backend name ("z3", "cdcl").
  [[nodiscard]] virtual std::string name() const = 0;

  // Convenience helpers shared by all backends (implemented via add_clause /
  // new_bool only).

  /// Pairwise at-most-one.
  void add_at_most_one(const std::vector<int>& lits);
  /// One clause.
  void add_at_least_one(const std::vector<int>& lits);
  /// Exactly-one (pairwise).
  void add_exactly_one(const std::vector<int>& lits);
  /// Fresh t with t ↔ (a ∧ b); operands are literals.
  [[nodiscard]] int make_and(int a, int b);
  /// Fresh t with t ↔ ∨ lits (empty input → t fixed false).
  [[nodiscard]] int make_or(const std::vector<int>& lits);
  /// Force literal equality a = b.
  void add_equal_lits(int a, int b);
  /// antecedent → (a = b); all three are literals.
  void add_implies_equal(int antecedent, int a, int b);

 protected:
  /// True once set_bound_source installed a source.
  [[nodiscard]] bool has_bound_source() const noexcept { return bound_source_ != nullptr; }

  /// Consults the bound source (counting the poll in stats()); kNoBound when
  /// no source is installed.
  [[nodiscard]] long long poll_bound_source();

  EngineStats stats_;

 private:
  BoundSource bound_source_;
};

/// Which backend to instantiate.
enum class EngineKind { Z3, Cdcl };

/// Name for reports ("z3" / "cdcl").
[[nodiscard]] std::string to_string(EngineKind kind);

/// "optimal" / "feasible" / "unsat" / "unknown" — for logs and trace attrs.
[[nodiscard]] std::string to_string(Status status);

/// True when the library was built with the Z3 backend (QXMAP_WITH_Z3).
/// When false, make_engine(EngineKind::Z3) degrades to the CDCL backend.
[[nodiscard]] bool z3_available();

/// Factory.
[[nodiscard]] std::unique_ptr<ReasoningEngine> make_engine(EngineKind kind);

}  // namespace qxmap::reason
