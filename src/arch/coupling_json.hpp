/// \file coupling_json.hpp
/// JSON front-end for user-defined coupling maps.
///
/// The schema (full reference with examples in docs/architectures.md):
///
/// ```json
/// {
///   "name": "my-device",                 // optional
///   "qubits": 5,                         // required, positive integer
///   "directed": false,                   // optional, default false
///   "edges": [                           // required, non-empty
///     [0, 1],                            // plain pair form
///     {"control": 1, "target": 2, "error": 0.021}
///   ],
///   "single_qubit_errors": [0.001, ...], // optional, one entry per qubit
///   "readout_errors":      [0.04, ...]   // optional, one entry per qubit
/// }
/// ```
///
/// With `"directed": false` (the default) each edge is installed in both
/// directions (and a per-edge `error` applies to both); with `true` the pairs
/// are taken verbatim as (control, target). Error rates are probabilities in
/// [0, 1) and surface on `CouplingMap::error_rates()` /
/// `noise_fingerprint()`.
///
/// The loader is strict: unknown fields, out-of-range qubit indices,
/// self-loops, duplicate edges, and rates outside [0, 1) are all rejected
/// with a CouplingJsonError that names the offending JSON path (e.g.
/// "edges[3].error") and carries the 1-based line/column plus a caret
/// excerpt, in the same style as the QASM front-end's ParseError.

#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "arch/coupling_map.hpp"

namespace qxmap::arch {

/// Error raised on malformed JSON or schema violations. what() shows
/// `coupling-map error at [file:]line:column: message` plus the offending
/// source line with a caret under the error column.
class CouplingJsonError : public std::runtime_error {
 public:
  CouplingJsonError(const std::string& message, int line, int column,
                    const std::string& excerpt = {}, const std::string& file = {})
      : std::runtime_error("coupling-map error at " + (file.empty() ? "" : file + ":") +
                           std::to_string(line) + ':' + std::to_string(column) + ": " + message +
                           (excerpt.empty() ? "" : "\n" + excerpt)),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Parses `text` against the schema above. `fallback_name` names the map
/// when the document has no "name" field; `file` labels diagnostics.
/// \throws CouplingJsonError
[[nodiscard]] CouplingMap load_coupling_json(std::string_view text,
                                             std::string fallback_name = {},
                                             const std::string& file = {});

/// Reads `path` and forwards to load_coupling_json (diagnostics carry the
/// path; the fallback name is the file stem).
/// \throws CouplingJsonError, std::runtime_error when the file is unreadable
[[nodiscard]] CouplingMap load_coupling_json_file(const std::string& path);

}  // namespace qxmap::arch
