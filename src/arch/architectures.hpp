/// \file architectures.hpp
/// Registry of IBM QX coupling maps and synthetic topology generators.
///
/// Qubit numbering is 0-based throughout the library; the paper's Fig. 2
/// uses 1-based labels p1 … p5, so its QX4 edge (p2, p1) appears here as
/// (1, 0).

#pragma once

#include <string>
#include <vector>

#include "arch/coupling_map.hpp"

namespace qxmap::arch {

/// IBM QX2 "Yorktown" (5 qubits).
[[nodiscard]] CouplingMap ibm_qx2();

/// IBM QX4 "Tenerife" (5 qubits) — the architecture of the paper's
/// evaluation (Fig. 2): CM = {(1,0), (2,0), (2,1), (3,2), (3,4), (4,2)}.
[[nodiscard]] CouplingMap ibm_qx4();

/// IBM QX5 "Rueschlikon" (16 qubits).
[[nodiscard]] CouplingMap ibm_qx5();

/// IBM Q20 "Tokyo" (20 qubits, bidirected couplings).
[[nodiscard]] CouplingMap ibm_tokyo();

/// IBM heavy-hex Falcon layout (27 qubits, bidirected, e.g. ibmq_mumbai).
[[nodiscard]] CouplingMap ibm_hex27();

/// IBM heavy-hex Hummingbird layout (65 qubits, bidirected,
/// e.g. ibmq_manhattan).
[[nodiscard]] CouplingMap ibm_hex65();

/// IBM heavy-hex Eagle layout (127 qubits, bidirected,
/// e.g. ibm_washington).
[[nodiscard]] CouplingMap ibm_hex127();

/// Directed line 0 -> 1 -> … -> m-1.
[[nodiscard]] CouplingMap linear(int m);

/// Directed ring 0 -> 1 -> … -> m-1 -> 0.
[[nodiscard]] CouplingMap ring(int m);

/// Bidirected rows x cols grid.
[[nodiscard]] CouplingMap grid(int rows, int cols);

/// Fully bidirected clique on m qubits (useful as an idealised baseline).
[[nodiscard]] CouplingMap clique(int m);

/// Looks up an architecture by name ("qx2", "qx4", "qx5", "tokyo",
/// "hex27", "hex65", "hex127", "linear<m>", "ring<m>", "clique<m>").
/// \throws std::invalid_argument for unknown names.
[[nodiscard]] CouplingMap by_name(const std::string& name);

/// Names accepted by by_name for the fixed architectures.
[[nodiscard]] std::vector<std::string> known_names();

}  // namespace qxmap::arch
