/// \file distances.hpp
/// All-pairs distance/cost matrices over a coupling map.
///
/// The heuristic mappers steer by these: `hops` is the undirected shortest
/// path length; `cnot_cost(c, t)` is the paper's cost metric for executing
/// one CNOT(c → t): 0 if natively allowed, 4 if only the reversed edge
/// exists (4 H gates), and 7·(hops-1) + direction penalty otherwise (route
/// to adjacency with SWAPs, then execute).

#pragma once

#include <vector>

#include "arch/coupling_map.hpp"

namespace qxmap::arch {

/// Precomputed distance tables for one coupling map.
class DistanceMatrix {
 public:
  /// Runs Floyd–Warshall on the undirected graph. O(m^3).
  explicit DistanceMatrix(const CouplingMap& cm);

  /// Undirected hop count between physical qubits (0 if a == b). Returns a
  /// large sentinel (>= 1000) for disconnected pairs.
  [[nodiscard]] int hops(int a, int b) const;

  /// Added-gate cost of executing CNOT(control → target) from the current
  /// placement, assuming SWAPs move the qubits adjacent first:
  ///   adjacent and allowed: 0;  adjacent, only reverse allowed: 4;
  ///   otherwise 7·(hops-1) plus 0/4 depending on the best final edge
  ///   orientation reachable. Disconnected pairs get a large sentinel.
  [[nodiscard]] int cnot_cost(int control, int target) const;

  [[nodiscard]] int size() const noexcept { return m_; }

 private:
  int m_;
  std::vector<int> hops_;       // m*m
  std::vector<int> cnot_cost_;  // m*m
};

}  // namespace qxmap::arch
