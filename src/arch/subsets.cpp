#include "arch/subsets.hpp"

#include <stdexcept>

namespace qxmap::arch {

std::vector<std::vector<int>> all_subsets(int m, int n) {
  if (n < 0 || n > m) throw std::invalid_argument("all_subsets: need 0 <= n <= m");
  std::vector<std::vector<int>> out;
  std::vector<int> cur;
  cur.reserve(static_cast<std::size_t>(n));
  // Iterative combination enumeration in lexicographic order.
  const auto recurse = [&](auto&& self, int next) -> void {
    if (static_cast<int>(cur.size()) == n) {
      out.push_back(cur);
      return;
    }
    const int remaining = n - static_cast<int>(cur.size());
    for (int v = next; v <= m - remaining; ++v) {
      cur.push_back(v);
      self(self, v + 1);
      cur.pop_back();
    }
  };
  recurse(recurse, 0);
  return out;
}

std::vector<std::vector<int>> connected_subsets(const CouplingMap& cm, int n) {
  std::vector<std::vector<int>> out;
  for (auto& s : all_subsets(cm.num_physical(), n)) {
    if (cm.subset_connected(s)) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace qxmap::arch
