#include "arch/architectures.hpp"

#include <stdexcept>

#include "common/strings.hpp"

namespace qxmap::arch {

CouplingMap ibm_qx2() {
  return CouplingMap(5,
                     {{0, 1}, {0, 2}, {1, 2}, {3, 2}, {3, 4}, {4, 2}},
                     "ibmqx2");
}

CouplingMap ibm_qx4() {
  // Fig. 2 (1-based): (p2,p1) (p3,p1) (p3,p2) (p4,p3) (p4,p5) (p5,p3).
  return CouplingMap(5,
                     {{1, 0}, {2, 0}, {2, 1}, {3, 2}, {3, 4}, {4, 2}},
                     "ibmqx4");
}

CouplingMap ibm_qx5() {
  return CouplingMap(16,
                     {{1, 0},  {1, 2},   {2, 3},   {3, 4},   {3, 14},  {5, 4},
                      {6, 5},  {6, 7},   {6, 11},  {7, 10},  {8, 7},   {9, 8},
                      {9, 10}, {11, 10}, {12, 5},  {12, 11}, {12, 13}, {13, 4},
                      {13, 14}, {15, 0}, {15, 2},  {15, 14}},
                     "ibmqx5");
}

CouplingMap ibm_tokyo() {
  // Bidirected: emit both directions for every undirected coupling.
  const std::vector<std::pair<int, int>> und = {
      {0, 1},   {1, 2},   {2, 3},   {3, 4},   {0, 5},   {1, 6},   {1, 7},   {2, 6},
      {2, 7},   {3, 8},   {3, 9},   {4, 8},   {4, 9},   {5, 6},   {6, 7},   {7, 8},
      {8, 9},   {5, 10},  {5, 11},  {6, 10},  {6, 11},  {7, 12},  {7, 13},  {8, 12},
      {8, 13},  {9, 14},  {10, 11}, {11, 12}, {12, 13}, {13, 14}, {10, 15}, {11, 16},
      {11, 17}, {12, 16}, {12, 17}, {13, 18}, {13, 19}, {14, 18}, {14, 19}, {15, 16},
      {16, 17}, {17, 18}, {18, 19}};
  std::vector<std::pair<int, int>> edges;
  edges.reserve(und.size() * 2);
  for (const auto& [a, b] : und) {
    edges.emplace_back(a, b);
    edges.emplace_back(b, a);
  }
  return CouplingMap(20, std::move(edges), "ibmq_tokyo");
}

namespace {

/// Emits both directions for every undirected coupling.
CouplingMap bidirected(int m, const std::vector<std::pair<int, int>>& und, std::string name) {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(und.size() * 2);
  for (const auto& [a, b] : und) {
    edges.emplace_back(a, b);
    edges.emplace_back(b, a);
  }
  return CouplingMap(m, std::move(edges), std::move(name));
}

/// Heavy-hex lattice builder: horizontal qubit rows joined by single bridge
/// qubits. Row r occupies ids [start, start+len) where start accumulates row
/// lengths plus the bridge qubits of the preceding gaps; gap g places one
/// bridge qubit per column pair (top_cols[g][i] in row g, bot_cols[g][i] in
/// row g+1). This is the published IBM numbering for the Hummingbird/Eagle
/// families (row-major with interleaved bridge blocks), so qubit ids match
/// the vendor diagrams.
CouplingMap heavy_hex(const std::vector<int>& row_len,
                      const std::vector<std::vector<int>>& top_cols,
                      const std::vector<std::vector<int>>& bot_cols, std::string name) {
  const std::size_t rows = row_len.size();
  std::vector<int> row_start(rows);
  int next = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    row_start[r] = next;
    next += row_len[r];
    if (r + 1 < rows) next += static_cast<int>(top_cols[r].size());
  }
  const int total = next;
  std::vector<std::pair<int, int>> und;
  for (std::size_t r = 0; r < rows; ++r) {
    for (int i = 0; i + 1 < row_len[r]; ++i) {
      und.emplace_back(row_start[r] + i, row_start[r] + i + 1);
    }
  }
  for (std::size_t g = 0; g + 1 < rows; ++g) {
    const int bridge_start = row_start[g] + row_len[g];
    for (std::size_t i = 0; i < top_cols[g].size(); ++i) {
      const int bridge = bridge_start + static_cast<int>(i);
      und.emplace_back(row_start[g] + top_cols[g][i], bridge);
      und.emplace_back(bridge, row_start[g + 1] + bot_cols[g][i]);
    }
  }
  return bidirected(total, und, std::move(name));
}

}  // namespace

CouplingMap ibm_hex27() {
  // Falcon r5.11 (e.g. ibmq_mumbai), IBM's published 27-qubit numbering.
  return bidirected(27,
                    {{0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
                     {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
                     {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
                     {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26}},
                    "ibm_hex27");
}

CouplingMap ibm_hex65() {
  // Hummingbird r2 (e.g. ibmq_manhattan): 5 rows of 10/11/11/11/10 qubits.
  return heavy_hex({10, 11, 11, 11, 10},
                   {{0, 4, 8}, {2, 6, 10}, {0, 4, 8}, {2, 6, 10}},
                   {{0, 4, 8}, {2, 6, 10}, {0, 4, 8}, {1, 5, 9}},
                   "ibm_hex65");
}

CouplingMap ibm_hex127() {
  // Eagle r3 (e.g. ibm_washington): 7 rows of 14/15×5/14 qubits.
  return heavy_hex({14, 15, 15, 15, 15, 15, 14},
                   {{0, 4, 8, 12},
                    {2, 6, 10, 14},
                    {0, 4, 8, 12},
                    {2, 6, 10, 14},
                    {0, 4, 8, 12},
                    {2, 6, 10, 14}},
                   {{0, 4, 8, 12},
                    {2, 6, 10, 14},
                    {0, 4, 8, 12},
                    {2, 6, 10, 14},
                    {0, 4, 8, 12},
                    {1, 5, 9, 13}},
                   "ibm_hex127");
}

CouplingMap linear(int m) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < m; ++i) edges.emplace_back(i, i + 1);
  return CouplingMap(m, std::move(edges), "linear" + std::to_string(m));
}

CouplingMap ring(int m) {
  if (m < 3) throw std::invalid_argument("ring: need at least 3 qubits");
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < m; ++i) edges.emplace_back(i, (i + 1) % m);
  return CouplingMap(m, std::move(edges), "ring" + std::to_string(m));
}

CouplingMap grid(int rows, int cols) {
  if (rows <= 0 || cols <= 0) throw std::invalid_argument("grid: dimensions must be positive");
  std::vector<std::pair<int, int>> edges;
  const auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.emplace_back(id(r, c), id(r, c + 1));
        edges.emplace_back(id(r, c + 1), id(r, c));
      }
      if (r + 1 < rows) {
        edges.emplace_back(id(r, c), id(r + 1, c));
        edges.emplace_back(id(r + 1, c), id(r, c));
      }
    }
  }
  return CouplingMap(rows * cols,
                     std::move(edges),
                     "grid" + std::to_string(rows) + 'x' + std::to_string(cols));
}

CouplingMap clique(int m) {
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < m; ++a) {
    for (int b = 0; b < m; ++b) {
      if (a != b) edges.emplace_back(a, b);
    }
  }
  return CouplingMap(m, std::move(edges), "clique" + std::to_string(m));
}

CouplingMap by_name(const std::string& name) {
  const std::string n = to_lower(name);
  if (n == "qx2" || n == "ibmqx2") return ibm_qx2();
  if (n == "qx4" || n == "ibmqx4" || n == "tenerife") return ibm_qx4();
  if (n == "qx5" || n == "ibmqx5" || n == "rueschlikon") return ibm_qx5();
  if (n == "tokyo" || n == "ibmq_tokyo") return ibm_tokyo();
  if (n == "hex27" || n == "ibm_hex27" || n == "falcon" || n == "mumbai") return ibm_hex27();
  if (n == "hex65" || n == "ibm_hex65" || n == "hummingbird" || n == "manhattan") {
    return ibm_hex65();
  }
  if (n == "hex127" || n == "ibm_hex127" || n == "eagle" || n == "washington") {
    return ibm_hex127();
  }
  for (const auto& [prefix, maker] :
       std::vector<std::pair<std::string, CouplingMap (*)(int)>>{
           {"linear", &linear}, {"ring", &ring}, {"clique", &clique}}) {
    if (n.starts_with(prefix) && n.size() > prefix.size()) {
      const std::string num = n.substr(prefix.size());
      if (num.find_first_not_of("0123456789") == std::string::npos) {
        return maker(std::stoi(num));
      }
    }
  }
  throw std::invalid_argument("unknown architecture: " + name);
}

std::vector<std::string> known_names() {
  return {"qx2", "qx4", "qx5", "tokyo", "hex27", "hex65", "hex127"};
}

}  // namespace qxmap::arch
