/// \file swap_cost_cache.hpp
/// Process-wide cache of per-architecture routing tables.
///
/// The paper notes that the swaps(π) tables "need to be conducted only
/// once" per architecture; this cache makes that literal across `map()`
/// calls (and across the subset instances of one call, whose induced
/// coupling maps frequently coincide after renumbering). Entries are keyed
/// by CouplingMap::fingerprint(), so structurally identical maps share one
/// table regardless of name, while directed and bidirected variants of the
/// same graph never alias.
///
/// Two kinds of entries are cached behind `shared_ptr` handles:
///  * SwapCostTable — the exhaustive swaps(π) table (O(m!) memory per
///    entry, m <= 8), used by the exact mapper and the reference search;
///  * DistanceMatrix — the all-pairs cost matrix (O(m²) memory), used by
///    the heuristic mappers.
///
/// Both stores are bounded by the same entry capacity with LRU eviction;
/// evicting an entry never invalidates handles already handed out. All
/// operations are thread-safe; a table is built at most once per key except
/// for a bounded duplicate when several threads miss simultaneously (the
/// build runs outside the lock; the losing builders adopt the winner's
/// entry).

#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/coupling_map.hpp"
#include "arch/distances.hpp"
#include "arch/swap_costs.hpp"
#include "obs/metrics.hpp"

namespace qxmap::arch {

/// Thread-safe LRU cache of SwapCostTable / DistanceMatrix entries.
class SwapCostCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  /// Hit/miss/eviction counters of one store (snapshot).
  ///
  /// \deprecated Also published as `qxmap_swap_cost_cache_{table,distance}_*`
  /// counters on `obs::MetricsRegistry` (docs/observability.md) — prefer
  /// those for monitoring; this snapshot stays for test assertions.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  /// \param capacity maximum entries per store (clamped to >= 1).
  explicit SwapCostCache(std::size_t capacity = kDefaultCapacity);

  /// The process-wide instance used by map_exact, the reference search and
  /// the heuristic mappers.
  [[nodiscard]] static SwapCostCache& instance();

  /// The swaps(π) table for `cm`, built on first use. Propagates
  /// SwapCostTable's exceptions (m > 8, disconnected graph) without caching.
  [[nodiscard]] std::shared_ptr<const SwapCostTable> table(const CouplingMap& cm);

  /// The all-pairs distance matrix for `cm`, built on first use.
  [[nodiscard]] std::shared_ptr<const DistanceMatrix> distances(const CouplingMap& cm);

  /// Drops every entry (outstanding handles stay valid) and resets stats.
  void clear();

  /// Changes the per-store capacity (clamped to >= 1), evicting LRU entries
  /// immediately if either store is over the new bound.
  void set_capacity(std::size_t capacity);

  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::size_t table_entries() const;
  [[nodiscard]] std::size_t distance_entries() const;
  [[nodiscard]] Stats table_stats() const;
  [[nodiscard]] Stats distance_stats() const;

 private:
  template <typename Value>
  struct LruStore {
    struct Entry {
      std::shared_ptr<const Value> value;
      std::list<std::string>::iterator lru_it;
    };
    std::list<std::string> lru;  // front = most recently used
    std::unordered_map<std::string, Entry> entries;
    Stats stats;
    // Registry twins of `stats`, wired up in the SwapCostCache constructor
    // (null only if registration were skipped; never in practice).
    obs::Counter* m_hits = nullptr;
    obs::Counter* m_misses = nullptr;
    obs::Counter* m_evictions = nullptr;

    // All three run under the owning cache's mutex.
    std::shared_ptr<const Value> find_and_touch(const std::string& key);
    std::shared_ptr<const Value> insert_or_adopt(const std::string& key,
                                                 std::shared_ptr<const Value> built,
                                                 std::size_t capacity);
    void evict_to(std::size_t capacity);
  };

  template <typename Value, typename Build>
  std::shared_ptr<const Value> get(LruStore<Value>& store, const CouplingMap& cm, Build build);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruStore<SwapCostTable> tables_;
  LruStore<DistanceMatrix> distances_;
};

}  // namespace qxmap::arch
