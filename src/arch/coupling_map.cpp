#include "arch/coupling_map.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "common/strings.hpp"

namespace qxmap::arch {

CouplingMap::CouplingMap(int num_physical, std::vector<std::pair<int, int>> edges,
                         std::string name)
    : m_(num_physical), name_(std::move(name)) {
  if (num_physical <= 0) throw std::invalid_argument("CouplingMap: need at least one qubit");
  std::set<std::pair<int, int>> dedup;
  std::set<std::pair<int, int>> undirected;
  for (const auto& [c, t] : edges) {
    if (c < 0 || t < 0 || c >= m_ || t >= m_) {
      throw std::invalid_argument("CouplingMap: edge endpoint out of range");
    }
    if (c == t) throw std::invalid_argument("CouplingMap: self-loop");
    dedup.emplace(c, t);
    undirected.emplace(std::min(c, t), std::max(c, t));
  }
  edges_.assign(dedup.begin(), dedup.end());
  undirected_.assign(undirected.begin(), undirected.end());
  neighbours_.assign(static_cast<std::size_t>(m_), {});
  for (const auto& [a, b] : undirected_) {
    neighbours_[static_cast<std::size_t>(a)].push_back(b);
    neighbours_[static_cast<std::size_t>(b)].push_back(a);
  }
  for (auto& nb : neighbours_) std::sort(nb.begin(), nb.end());

  // Built with append() rather than operator+ chains: GCC 12's -Wrestrict
  // false-positives on the latter (same workaround as dimacs/z3_engine).
  fingerprint_ += 'm';
  fingerprint_ += std::to_string(m_);
  fingerprint_ += ':';
  for (const auto& [c, t] : edges_) {
    if (fingerprint_.back() != ':') fingerprint_ += ';';
    fingerprint_ += std::to_string(c);
    fingerprint_ += '>';
    fingerprint_ += std::to_string(t);
  }
}

bool CouplingMap::allows(int control, int target) const {
  return std::binary_search(edges_.begin(), edges_.end(), std::make_pair(control, target));
}

bool CouplingMap::coupled(int a, int b) const {
  return std::binary_search(undirected_.begin(), undirected_.end(),
                            std::make_pair(std::min(a, b), std::max(a, b)));
}

const std::vector<int>& CouplingMap::neighbours(int p) const {
  if (p < 0 || p >= m_) throw std::out_of_range("CouplingMap::neighbours");
  return neighbours_[static_cast<std::size_t>(p)];
}

bool CouplingMap::is_connected() const {
  std::vector<int> all(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) all[static_cast<std::size_t>(i)] = i;
  return subset_connected(all);
}

bool CouplingMap::subset_connected(const std::vector<int>& subset) const {
  if (subset.empty()) return true;
  const std::set<int> members(subset.begin(), subset.end());
  std::set<int> seen{*subset.begin()};
  std::vector<int> stack{*subset.begin()};
  while (!stack.empty()) {
    const int cur = stack.back();
    stack.pop_back();
    for (const int nb : neighbours(cur)) {
      if (members.contains(nb) && !seen.contains(nb)) {
        seen.insert(nb);
        stack.push_back(nb);
      }
    }
  }
  return seen.size() == members.size();
}

bool CouplingMap::has_triangle() const {
  for (const auto& [a, b] : undirected_) {
    for (const int c : neighbours(a)) {
      if (c != b && coupled(c, b)) return true;
    }
  }
  return false;
}

namespace {

bool valid_rate(double r) { return r >= 0.0 && r < 1.0; }

void check_per_qubit(const std::vector<double>& v, int m, const char* what) {
  if (!v.empty() && v.size() != static_cast<std::size_t>(m)) {
    throw std::invalid_argument(std::string("CouplingMap::set_error_rates: ") + what +
                                " must be empty or have one entry per physical qubit");
  }
  for (const double r : v) {
    if (!valid_rate(r)) {
      throw std::invalid_argument(std::string("CouplingMap::set_error_rates: ") + what +
                                  " rate outside [0, 1)");
    }
  }
}

}  // namespace

void CouplingMap::set_error_rates(ErrorRates rates) {
  for (const auto& [edge, rate] : rates.cnot) {
    if (!allows(edge.first, edge.second)) {
      throw std::invalid_argument("CouplingMap::set_error_rates: cnot rate for (" +
                                  std::to_string(edge.first) + "," +
                                  std::to_string(edge.second) + ") which is not an edge");
    }
    if (!valid_rate(rate)) {
      throw std::invalid_argument("CouplingMap::set_error_rates: cnot rate outside [0, 1)");
    }
  }
  check_per_qubit(rates.single_qubit, m_, "single_qubit");
  check_per_qubit(rates.readout, m_, "readout");
  rates_ = std::move(rates);

  noise_fingerprint_.clear();
  if (rates_.empty()) return;
  // Same append()-only construction as fingerprint() (GCC 12 -Wrestrict).
  noise_fingerprint_ += "cx:";
  for (const auto& [edge, rate] : rates_.cnot) {
    if (noise_fingerprint_.back() != ':') noise_fingerprint_ += ';';
    noise_fingerprint_ += std::to_string(edge.first);
    noise_fingerprint_ += '>';
    noise_fingerprint_ += std::to_string(edge.second);
    noise_fingerprint_ += '=';
    noise_fingerprint_ += format_fixed(rate, 9);
  }
  const auto append_vec = [this](const std::vector<double>& vec, const char* tag) {
    if (vec.empty()) return;
    noise_fingerprint_ += tag;
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (i != 0) noise_fingerprint_ += ';';
      noise_fingerprint_ += format_fixed(vec[i], 9);
    }
  };
  append_vec(rates_.single_qubit, "|1q:");
  append_vec(rates_.readout, "|ro:");
}

double CouplingMap::mean_cnot_error(double fallback) const {
  if (rates_.cnot.empty() || edges_.empty()) return fallback;
  double sum = 0.0;
  for (const auto& [c, t] : edges_) {
    const auto it = rates_.cnot.find({c, t});
    sum += it != rates_.cnot.end() ? it->second : fallback;
  }
  return sum / static_cast<double>(edges_.size());
}

double CouplingMap::mean_single_qubit_error(double fallback) const {
  if (rates_.single_qubit.empty()) return fallback;
  double sum = 0.0;
  for (const double r : rates_.single_qubit) sum += r;
  return sum / static_cast<double>(rates_.single_qubit.size());
}

CouplingMap CouplingMap::induced(const std::vector<int>& subset) const {
  std::vector<int> sorted = subset;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("CouplingMap::induced: duplicate subset entries");
  }
  std::vector<int> position(static_cast<std::size_t>(m_), -1);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const int p = sorted[i];
    if (p < 0 || p >= m_) throw std::out_of_range("CouplingMap::induced: qubit out of range");
    position[static_cast<std::size_t>(p)] = static_cast<int>(i);
  }
  std::vector<std::pair<int, int>> sub_edges;
  for (const auto& [c, t] : edges_) {
    const int ci = position[static_cast<std::size_t>(c)];
    const int ti = position[static_cast<std::size_t>(t)];
    if (ci >= 0 && ti >= 0) sub_edges.emplace_back(ci, ti);
  }
  return CouplingMap(static_cast<int>(sorted.size()), std::move(sub_edges),
                     name_ + "/subset");
}

}  // namespace qxmap::arch
