/// \file subsets.hpp
/// Enumeration of connected physical-qubit subsets (Sec. 4.1).
///
/// When a circuit uses n < m logical qubits, the exact mapper may restrict
/// itself to an n-element subset of the physical qubits, solving one
/// (smaller) instance per subset. Only subsets whose induced coupling
/// subgraph is connected can host a mapping that brings arbitrary pairs
/// together (Example 9: every useful 4-subset of QX4 contains p3), so
/// disconnected subsets are pruned here instead of burning solver time.

#pragma once

#include <vector>

#include "arch/coupling_map.hpp"

namespace qxmap::arch {

/// All size-n subsets of {0, …, m-1}, in lexicographic order.
/// \throws std::invalid_argument if n < 0 or n > m.
[[nodiscard]] std::vector<std::vector<int>> all_subsets(int m, int n);

/// The size-n subsets whose induced undirected coupling graph is connected,
/// in lexicographic order. This is the instance list of Sec. 4.1.
[[nodiscard]] std::vector<std::vector<int>> connected_subsets(const CouplingMap& cm, int n);

}  // namespace qxmap::arch
