#include "arch/coupling_json.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace qxmap::arch {

namespace {

/// The source line `line` (1-based) rendered with a caret under `column`
/// (same rendering as qasm::ParseError excerpts).
std::string line_excerpt(std::string_view src, int line, int column) {
  int cur = 1;
  std::size_t start = 0;
  while (cur < line && start < src.size()) {
    if (src[start] == '\n') ++cur;
    ++start;
  }
  std::size_t end = start;
  while (end < src.size() && src[end] != '\n') ++end;
  const std::string text(src.substr(start, end - start));
  std::string caret(static_cast<std::size_t>(column > 0 ? column - 1 : 0), ' ');
  return "  " + text + "\n  " + caret + '^';
}

/// Minimal JSON value tree; every node remembers where it started so schema
/// errors can point at the offending token.
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  struct Member;  // key + value + key position; defined below (needs a
                  // complete JsonValue)

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  bool integral = false;      ///< number had no '.', 'e' and fits long long
  long long integer = 0;      ///< valid when integral
  std::string text;           ///< for Kind::String
  std::vector<JsonValue> items;
  std::vector<Member> members;
  int line = 1;
  int column = 1;

  [[nodiscard]] const char* kind_name() const {
    switch (kind) {
      case Kind::Null: return "null";
      case Kind::Bool: return "a boolean";
      case Kind::Number: return "a number";
      case Kind::String: return "a string";
      case Kind::Array: return "an array";
      case Kind::Object: return "an object";
    }
    return "?";
  }
};

struct JsonValue::Member {
  std::string key;
  int key_line = 1;
  int key_column = 1;
  JsonValue value;
};

/// Recursive-descent JSON reader with 1-based line/column tracking. The
/// subset is exactly what the schema needs: objects, arrays, strings (with
/// the common escapes), numbers, true/false/null. Trailing content after the
/// root value is an error.
class JsonReader {
 public:
  JsonReader(std::string_view src, std::string file) : src_(src), file_(std::move(file)) {}

  JsonValue parse_document() {
    skip_ws();
    if (at_end()) fail("empty document (expected a JSON object)", line_, col_);
    JsonValue root = parse_value();
    skip_ws();
    if (!at_end()) fail("trailing content after the top-level value", line_, col_);
    return root;
  }

  [[noreturn]] void fail(const std::string& message, int line, int column) const {
    throw CouplingJsonError(message, line, column, line_excerpt(src_, line, column), file_);
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek() const { return src_[pos_]; }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* what) {
    if (at_end() || peek() != c) {
      fail(std::string("expected ") + what, line_, col_);
    }
    advance();
  }

  JsonValue parse_value() {
    if (at_end()) fail("unexpected end of input", line_, col_);
    JsonValue v;
    v.line = line_;
    v.column = col_;
    const char c = peek();
    if (c == '{') {
      parse_object(v);
    } else if (c == '[') {
      parse_array(v);
    } else if (c == '"') {
      v.kind = JsonValue::Kind::String;
      v.text = parse_string();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      parse_number(v);
    } else if (src_.substr(pos_, 4) == "true") {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      for (int i = 0; i < 4; ++i) advance();
    } else if (src_.substr(pos_, 5) == "false") {
      v.kind = JsonValue::Kind::Bool;
      v.boolean = false;
      for (int i = 0; i < 5; ++i) advance();
    } else if (src_.substr(pos_, 4) == "null") {
      v.kind = JsonValue::Kind::Null;
      for (int i = 0; i < 4; ++i) advance();
    } else {
      fail(std::string("unexpected character '") + c + "'", line_, col_);
    }
    return v;
  }

  void parse_object(JsonValue& v) {
    v.kind = JsonValue::Kind::Object;
    advance();  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      advance();
      return;
    }
    while (true) {
      skip_ws();
      JsonValue::Member member;
      member.key_line = line_;
      member.key_column = col_;
      if (at_end() || peek() != '"') fail("expected '\"' to begin an object key", line_, col_);
      member.key = parse_string();
      for (const auto& prior : v.members) {
        if (prior.key == member.key) {
          fail("duplicate key \"" + member.key + "\"", member.key_line, member.key_column);
        }
      }
      skip_ws();
      expect(':', "':' after object key");
      skip_ws();
      member.value = parse_value();
      v.members.push_back(std::move(member));
      skip_ws();
      if (at_end()) fail("unterminated object (expected ',' or '}')", line_, col_);
      if (peek() == ',') {
        advance();
        continue;
      }
      expect('}', "',' or '}' in object");
      return;
    }
  }

  void parse_array(JsonValue& v) {
    v.kind = JsonValue::Kind::Array;
    advance();  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      advance();
      return;
    }
    while (true) {
      skip_ws();
      v.items.push_back(parse_value());
      skip_ws();
      if (at_end()) fail("unterminated array (expected ',' or ']')", line_, col_);
      if (peek() == ',') {
        advance();
        continue;
      }
      expect(']', "',' or ']' in array");
      return;
    }
  }

  std::string parse_string() {
    advance();  // opening '"'
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string", line_, col_);
      const char c = advance();
      if (c == '"') return out;
      if (c == '\n') fail("raw newline in string", line_ - 1, col_);
      if (c == '\\') {
        if (at_end()) fail("unterminated escape sequence", line_, col_);
        const char e = advance();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          default:
            fail(std::string("unsupported escape '\\") + e + "'", line_, col_ - 2);
        }
      } else {
        out += c;
      }
    }
  }

  void parse_number(JsonValue& v) {
    v.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    const int start_line = line_;
    const int start_col = col_;
    bool has_fraction = false;
    if (!at_end() && peek() == '-') advance();
    while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    if (!at_end() && peek() == '.') {
      has_fraction = true;
      advance();
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      has_fraction = true;
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      while (!at_end() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string token(src_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || token == "-") {
      fail("malformed number '" + token + "'", start_line, start_col);
    }
    if (!has_fraction) {
      v.integral = true;
      v.integer = std::strtoll(token.c_str(), nullptr, 10);
    }
  }

  std::string_view src_;
  std::string file_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

/// Schema pass: walks the parsed tree, reporting violations with the JSON
/// path of the offending node ("edges[3].error") at that node's position.
class SchemaReader {
 public:
  SchemaReader(const JsonReader& reader) : reader_(reader) {}

  CouplingMap load(const JsonValue& root, std::string fallback_name) {
    if (root.kind != JsonValue::Kind::Object) {
      fail(root, std::string("top-level value must be an object, got ") + root.kind_name());
    }
    const JsonValue* qubits_node = nullptr;
    const JsonValue* edges_node = nullptr;
    const JsonValue* single_node = nullptr;
    const JsonValue* readout_node = nullptr;
    std::string name = std::move(fallback_name);
    bool directed = false;
    for (const auto& member : root.members) {
      if (member.key == "name") {
        require(member.value, JsonValue::Kind::String, "name");
        name = member.value.text;
      } else if (member.key == "qubits") {
        qubits_node = &member.value;
      } else if (member.key == "directed") {
        require(member.value, JsonValue::Kind::Bool, "directed");
        directed = member.value.boolean;
      } else if (member.key == "edges") {
        edges_node = &member.value;
      } else if (member.key == "single_qubit_errors") {
        single_node = &member.value;
      } else if (member.key == "readout_errors") {
        readout_node = &member.value;
      } else {
        reader_.fail("unknown field \"" + member.key +
                         "\" (expected name, qubits, directed, edges, "
                         "single_qubit_errors, readout_errors)",
                     member.key_line, member.key_column);
      }
    }
    if (qubits_node == nullptr) fail(root, "missing required field \"qubits\"");
    const int m = read_qubits(*qubits_node);
    if (edges_node == nullptr) fail(root, "missing required field \"edges\"");

    std::vector<std::pair<int, int>> edges;
    ErrorRates rates;
    read_edges(*edges_node, m, directed, edges, rates);
    if (single_node != nullptr) {
      rates.single_qubit = read_rate_array(*single_node, m, "single_qubit_errors");
    }
    if (readout_node != nullptr) {
      rates.readout = read_rate_array(*readout_node, m, "readout_errors");
    }

    if (name.empty()) name = "json";  // anonymous documents still get a label
    CouplingMap cm(m, std::move(edges), std::move(name));
    if (!rates.empty()) cm.set_error_rates(std::move(rates));
    return cm;
  }

 private:
  [[noreturn]] void fail(const JsonValue& at, const std::string& message) const {
    reader_.fail(message, at.line, at.column);
  }

  void require(const JsonValue& v, JsonValue::Kind kind, const std::string& path) const {
    if (v.kind == kind) return;
    const char* want = kind == JsonValue::Kind::String   ? "a string"
                       : kind == JsonValue::Kind::Bool   ? "a boolean"
                       : kind == JsonValue::Kind::Number ? "a number"
                       : kind == JsonValue::Kind::Array  ? "an array"
                                                         : "an object";
    fail(v, path + ": expected " + want + ", got " + v.kind_name());
  }

  int read_int(const JsonValue& v, const std::string& path) const {
    require(v, JsonValue::Kind::Number, path);
    if (!v.integral) fail(v, path + ": expected an integer, got " + std::to_string(v.number));
    return static_cast<int>(v.integer);
  }

  int read_qubits(const JsonValue& v) const {
    const int m = read_int(v, "qubits");
    if (m <= 0) fail(v, "qubits: must be positive, got " + std::to_string(m));
    if (m > 4096) fail(v, "qubits: implausibly large (" + std::to_string(m) + " > 4096)");
    return m;
  }

  int read_endpoint(const JsonValue& v, int m, const std::string& path) const {
    const int q = read_int(v, path);
    if (q < 0 || q >= m) {
      fail(v, path + ": qubit index " + std::to_string(q) + " out of range for " +
                  std::to_string(m) + " qubits");
    }
    return q;
  }

  double read_rate(const JsonValue& v, const std::string& path) const {
    require(v, JsonValue::Kind::Number, path);
    if (!(v.number >= 0.0) || v.number >= 1.0) {
      std::ostringstream os;
      os << v.number;
      fail(v, path + ": error rate must lie in [0, 1), got " + os.str());
    }
    return v.number;
  }

  std::vector<double> read_rate_array(const JsonValue& v, int m, const std::string& path) const {
    require(v, JsonValue::Kind::Array, path);
    if (v.items.size() != static_cast<std::size_t>(m)) {
      fail(v, path + ": expected one entry per qubit (" + std::to_string(m) + "), got " +
                  std::to_string(v.items.size()));
    }
    std::vector<double> out;
    out.reserve(v.items.size());
    for (std::size_t i = 0; i < v.items.size(); ++i) {
      out.push_back(read_rate(v.items[i], path + "[" + std::to_string(i) + "]"));
    }
    return out;
  }

  void read_edges(const JsonValue& v, int m, bool directed,
                  std::vector<std::pair<int, int>>& edges, ErrorRates& rates) const {
    require(v, JsonValue::Kind::Array, "edges");
    if (v.items.empty()) fail(v, "edges: must not be empty");
    std::map<std::pair<int, int>, std::size_t> seen;  // normalized edge → first index
    for (std::size_t i = 0; i < v.items.size(); ++i) {
      const JsonValue& e = v.items[i];
      const std::string path = "edges[" + std::to_string(i) + "]";
      int control = -1;
      int target = -1;
      bool has_error = false;
      double error = 0.0;
      if (e.kind == JsonValue::Kind::Array) {
        if (e.items.size() != 2) {
          fail(e, path + ": expected a [control, target] pair, got " +
                      std::to_string(e.items.size()) + " entries");
        }
        control = read_endpoint(e.items[0], m, path + "[0]");
        target = read_endpoint(e.items[1], m, path + "[1]");
      } else if (e.kind == JsonValue::Kind::Object) {
        const JsonValue* control_node = nullptr;
        const JsonValue* target_node = nullptr;
        for (const auto& member : e.members) {
          if (member.key == "control") {
            control_node = &member.value;
          } else if (member.key == "target") {
            target_node = &member.value;
          } else if (member.key == "error") {
            has_error = true;
            error = read_rate(member.value, path + ".error");
          } else {
            reader_.fail(path + ": unknown field \"" + member.key +
                             "\" (expected control, target, error)",
                         member.key_line, member.key_column);
          }
        }
        if (control_node == nullptr) fail(e, path + ": missing required field \"control\"");
        if (target_node == nullptr) fail(e, path + ": missing required field \"target\"");
        control = read_endpoint(*control_node, m, path + ".control");
        target = read_endpoint(*target_node, m, path + ".target");
      } else {
        fail(e, path + ": expected a [control, target] pair or an object, got " +
                    std::string(e.kind_name()));
      }
      if (control == target) {
        fail(e, path + ": self-loop on qubit " + std::to_string(control));
      }
      const std::pair<int, int> normalized =
          directed ? std::pair<int, int>{control, target}
                   : std::pair<int, int>{std::min(control, target), std::max(control, target)};
      if (const auto it = seen.find(normalized); it != seen.end()) {
        fail(e, path + ": duplicate edge (" + std::to_string(control) + "," +
                    std::to_string(target) + "), first seen at edges[" +
                    std::to_string(it->second) + "]");
      }
      seen.emplace(normalized, i);
      edges.emplace_back(control, target);
      if (!directed) edges.emplace_back(target, control);
      if (has_error) {
        rates.cnot[{control, target}] = error;
        if (!directed) rates.cnot[{target, control}] = error;
      }
    }
  }

  const JsonReader& reader_;
};

/// "dir/device.json" → "device".
std::string file_stem(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  std::string stem = slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos && dot > 0) stem.resize(dot);
  return stem;
}

}  // namespace

CouplingMap load_coupling_json(std::string_view text, std::string fallback_name,
                               const std::string& file) {
  JsonReader reader(text, file);
  const JsonValue root = reader.parse_document();
  return SchemaReader(reader).load(root, std::move(fallback_name));
}

CouplingMap load_coupling_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_coupling_json_file: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_coupling_json(buffer.str(), file_stem(path), path);
}

CouplingMap CouplingMap::from_json(std::string_view text, std::string fallback_name) {
  return load_coupling_json(text, std::move(fallback_name));
}

CouplingMap CouplingMap::from_json_file(const std::string& path) {
  return load_coupling_json_file(path);
}

}  // namespace qxmap::arch
