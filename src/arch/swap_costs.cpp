#include "arch/swap_costs.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace qxmap::arch {

SwapCostTable::SwapCostTable(const CouplingMap& cm)
    : m_(cm.num_physical()), generators_(cm.undirected_edges()) {
  if (m_ > 8) {
    throw std::invalid_argument("SwapCostTable: m > 8 would tabulate more than 8! permutations; "
                                "use greedy_swap_sequence instead");
  }
  if (!cm.is_connected()) {
    throw std::invalid_argument("SwapCostTable: coupling graph must be connected");
  }
  const auto total = static_cast<std::size_t>(Permutation::factorial(static_cast<std::size_t>(m_)));
  constexpr std::uint8_t kUnseen = 0xff;
  cost_.assign(total, kUnseen);
  pred_edge_.assign(total, -1);

  const Permutation identity(static_cast<std::size_t>(m_));
  std::deque<Permutation> queue;
  cost_[identity.rank()] = 0;
  queue.push_back(identity);

  while (!queue.empty()) {
    const Permutation cur = std::move(queue.front());
    queue.pop_front();
    const auto cur_cost = cost_[cur.rank()];
    for (std::size_t e = 0; e < generators_.size(); ++e) {
      const auto [a, b] = generators_[e];
      Permutation nxt = cur.with_transposition(a, b);
      const auto r = nxt.rank();
      if (cost_[r] == kUnseen) {
        cost_[r] = static_cast<std::uint8_t>(cur_cost + 1);
        pred_edge_[r] = static_cast<std::int32_t>(e);
        max_swaps_ = std::max(max_swaps_, static_cast<int>(cur_cost) + 1);
        queue.push_back(std::move(nxt));
      }
    }
  }
}

int SwapCostTable::swaps(const Permutation& pi) const {
  if (static_cast<int>(pi.size()) != m_) {
    throw std::invalid_argument("SwapCostTable::swaps: permutation size mismatch");
  }
  return static_cast<int>(cost_[pi.rank()]);
}

std::vector<std::pair<int, int>> SwapCostTable::swap_sequence(const Permutation& pi) const {
  if (static_cast<int>(pi.size()) != m_) {
    throw std::invalid_argument("SwapCostTable::swap_sequence: permutation size mismatch");
  }
  std::vector<std::pair<int, int>> reversed;
  Permutation cur = pi;
  while (!cur.is_identity()) {
    const auto e = pred_edge_[cur.rank()];
    const auto [a, b] = generators_[static_cast<std::size_t>(e)];
    reversed.emplace_back(a, b);
    // Transpositions are involutions: undo the last swap to reach the
    // predecessor on the BFS tree.
    cur = cur.with_transposition(a, b);
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

std::vector<std::pair<int, int>> greedy_swap_sequence(const CouplingMap& cm,
                                                      const Permutation& pi) {
  const int m = cm.num_physical();
  if (static_cast<int>(pi.size()) != m) {
    throw std::invalid_argument("greedy_swap_sequence: permutation size mismatch");
  }
  if (!cm.is_connected()) {
    throw std::invalid_argument("greedy_swap_sequence: coupling graph must be connected");
  }

  // BFS spanning tree rooted at 0.
  std::vector<int> parent(static_cast<std::size_t>(m), -1);
  std::vector<std::vector<int>> children(static_cast<std::size_t>(m));
  std::vector<bool> seen(static_cast<std::size_t>(m), false);
  std::deque<int> bfs{0};
  seen[0] = true;
  while (!bfs.empty()) {
    const int v = bfs.front();
    bfs.pop_front();
    for (const int nb : cm.neighbours(v)) {
      if (!seen[static_cast<std::size_t>(nb)]) {
        seen[static_cast<std::size_t>(nb)] = true;
        parent[static_cast<std::size_t>(nb)] = v;
        children[static_cast<std::size_t>(v)].push_back(nb);
        bfs.push_back(nb);
      }
    }
  }

  // Leaf-removal order: repeatedly strip leaves of the remaining tree.
  std::vector<int> degree(static_cast<std::size_t>(m), 0);
  for (int v = 0; v < m; ++v) {
    if (parent[static_cast<std::size_t>(v)] >= 0) {
      ++degree[static_cast<std::size_t>(v)];
      ++degree[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
    }
  }
  std::vector<int> order;
  std::vector<bool> removed(static_cast<std::size_t>(m), false);
  std::deque<int> leaves;
  for (int v = 0; v < m; ++v) {
    if (degree[static_cast<std::size_t>(v)] <= 1) leaves.push_back(v);
  }
  while (!leaves.empty()) {
    const int v = leaves.front();
    leaves.pop_front();
    if (removed[static_cast<std::size_t>(v)]) continue;
    removed[static_cast<std::size_t>(v)] = true;
    order.push_back(v);
    const int p = parent[static_cast<std::size_t>(v)];
    if (p >= 0 && !removed[static_cast<std::size_t>(p)]) {
      if (--degree[static_cast<std::size_t>(p)] <= 1) leaves.push_back(p);
    }
    for (const int c : children[static_cast<std::size_t>(v)]) {
      if (!removed[static_cast<std::size_t>(c)]) {
        if (--degree[static_cast<std::size_t>(c)] <= 1) leaves.push_back(c);
      }
    }
  }

  // Token state: token originating at i must reach pi(i).
  std::vector<int> token_at(static_cast<std::size_t>(m));   // vertex -> token
  std::vector<int> pos_of(static_cast<std::size_t>(m));     // token -> vertex
  for (int i = 0; i < m; ++i) {
    token_at[static_cast<std::size_t>(i)] = i;
    pos_of[static_cast<std::size_t>(i)] = i;
  }
  std::vector<bool> settled(static_cast<std::size_t>(m), false);
  std::vector<std::pair<int, int>> swaps;

  const auto tree_path = [&](int from, int to) {
    // Path in the spanning tree avoiding settled vertices (both endpoints
    // unsettled; the tree restricted to unsettled vertices stays connected
    // because we settle in leaf-removal order). Simple BFS over tree edges.
    std::vector<int> prev(static_cast<std::size_t>(m), -2);
    std::deque<int> q{from};
    prev[static_cast<std::size_t>(from)] = -1;
    while (!q.empty()) {
      const int v = q.front();
      q.pop_front();
      if (v == to) break;
      std::vector<int> adj = children[static_cast<std::size_t>(v)];
      if (parent[static_cast<std::size_t>(v)] >= 0) adj.push_back(parent[static_cast<std::size_t>(v)]);
      for (const int nb : adj) {
        if (prev[static_cast<std::size_t>(nb)] == -2 && !settled[static_cast<std::size_t>(nb)]) {
          prev[static_cast<std::size_t>(nb)] = v;
          q.push_back(nb);
        }
      }
    }
    std::vector<int> path;
    for (int v = to; v != -1; v = prev[static_cast<std::size_t>(v)]) path.push_back(v);
    std::reverse(path.begin(), path.end());
    return path;  // from … to
  };

  for (const int v : order) {
    // Find the token destined for v and walk it there.
    int wanted = -1;
    for (int t = 0; t < m; ++t) {
      if (pi.at(static_cast<std::size_t>(t)) == v) {
        wanted = t;
        break;
      }
    }
    const int start = pos_of[static_cast<std::size_t>(wanted)];
    const auto path = tree_path(start, v);
    for (std::size_t s = 0; s + 1 < path.size(); ++s) {
      const int a = path[s];
      const int b = path[s + 1];
      swaps.emplace_back(a, b);
      std::swap(token_at[static_cast<std::size_t>(a)], token_at[static_cast<std::size_t>(b)]);
      pos_of[static_cast<std::size_t>(token_at[static_cast<std::size_t>(a)])] = a;
      pos_of[static_cast<std::size_t>(token_at[static_cast<std::size_t>(b)])] = b;
    }
    settled[static_cast<std::size_t>(v)] = true;
  }
  return swaps;
}

}  // namespace qxmap::arch
