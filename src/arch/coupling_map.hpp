/// \file coupling_map.hpp
/// Directed coupling maps of IBM QX architectures (Def. 2).
///
/// An entry (pi, pj) means a CNOT with control pi and target pj is natively
/// executable. A CNOT in the opposite direction costs 4 extra H gates; a
/// CNOT between uncoupled qubits requires SWAPs (7 gates each).

#pragma once

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qxmap::arch {

/// Optional per-device calibration data attached to a coupling map (set by
/// the JSON loader or `CouplingMap::set_error_rates`). All rates are error
/// probabilities in [0, 1). Empty containers mean "no data" — consumers fall
/// back to their own defaults (see exact::CostModel, sim::NoiseModel).
struct ErrorRates {
  /// Per directed edge (control, target) → CNOT error rate. Keys must be
  /// edges of the owning map.
  std::map<std::pair<int, int>, double> cnot;
  /// Per physical qubit; empty or exactly num_physical() entries.
  std::vector<double> single_qubit;
  /// Per physical qubit; empty or exactly num_physical() entries.
  std::vector<double> readout;

  [[nodiscard]] bool empty() const noexcept {
    return cnot.empty() && single_qubit.empty() && readout.empty();
  }
};

/// Immutable directed graph over `num_physical()` qubits.
class CouplingMap {
 public:
  /// \param num_physical number of physical qubits m
  /// \param edges directed (control, target) pairs; duplicates are removed
  /// \param name architecture name for reports
  /// \throws std::invalid_argument on out-of-range endpoints or self-loops.
  CouplingMap(int num_physical, std::vector<std::pair<int, int>> edges, std::string name = {});

  [[nodiscard]] int num_physical() const noexcept { return m_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Directed query: CNOT(control → target) natively executable?
  [[nodiscard]] bool allows(int control, int target) const;

  /// Undirected query: any CNOT orientation executable between a and b?
  [[nodiscard]] bool coupled(int a, int b) const;

  /// All directed edges, sorted.
  [[nodiscard]] const std::vector<std::pair<int, int>>& edges() const noexcept { return edges_; }

  /// Undirected edge set with a < b, deduplicated, sorted.
  [[nodiscard]] const std::vector<std::pair<int, int>>& undirected_edges() const noexcept {
    return undirected_;
  }

  /// Canonical structural fingerprint: qubit count plus the sorted directed
  /// edge list ("m5:1>0;2>0;…"). Two maps share a fingerprint iff they have
  /// the same qubit count and the same directed edges — the name is
  /// deliberately excluded, and a directed edge never aliases its bidirected
  /// counterpart. Cache key of arch::SwapCostCache.
  [[nodiscard]] const std::string& fingerprint() const noexcept { return fingerprint_; }

  /// Undirected neighbours of qubit `p`.
  [[nodiscard]] const std::vector<int>& neighbours(int p) const;

  /// True iff the undirected graph on all m qubits is connected.
  [[nodiscard]] bool is_connected() const;

  /// True iff the undirected subgraph induced by `subset` is connected.
  /// An empty subset counts as connected.
  [[nodiscard]] bool subset_connected(const std::vector<int>& subset) const;

  /// True iff the undirected graph contains a 3-clique (needed for the
  /// paper's *qubit triangle* strategy, Sec. 4.2).
  [[nodiscard]] bool has_triangle() const;

  /// Coupling map induced by `subset` (sorted, distinct), with qubits
  /// renumbered 0 … subset.size()-1 in subset order. Directions preserved.
  /// Error rates are not carried over.
  [[nodiscard]] CouplingMap induced(const std::vector<int>& subset) const;

  /// Parses a coupling map from the JSON schema documented in
  /// docs/architectures.md (qubit count, directed/undirected edge list,
  /// optional per-edge / per-qubit error rates). `fallback_name` is used when
  /// the document carries no "name" field.
  /// \throws CouplingJsonError (arch/coupling_json.hpp) with line/column and
  ///         a caret excerpt on malformed input or schema violations.
  [[nodiscard]] static CouplingMap from_json(std::string_view text,
                                             std::string fallback_name = {});

  /// Reads `path` and forwards to from_json. Diagnostics carry the file name.
  [[nodiscard]] static CouplingMap from_json_file(const std::string& path);

  /// Attaches calibration data. Validates that every cnot key is a directed
  /// edge of this map, that per-qubit vectors are empty or length
  /// num_physical(), and that every rate lies in [0, 1).
  /// \throws std::invalid_argument on violation.
  void set_error_rates(ErrorRates rates);

  [[nodiscard]] const ErrorRates& error_rates() const noexcept { return rates_; }
  [[nodiscard]] bool has_error_rates() const noexcept { return !rates_.empty(); }

  /// Mean CNOT error over all directed edges, using `fallback` for edges
  /// without calibration data. Returns `fallback` when no edge data exists.
  [[nodiscard]] double mean_cnot_error(double fallback) const;

  /// Mean single-qubit error over all qubits; `fallback` when no data.
  [[nodiscard]] double mean_single_qubit_error(double fallback) const;

  /// Canonical rendering of the attached error rates, or "" when none. Keyed
  /// *separately* from fingerprint(): routing tables depend only on the graph,
  /// so SwapCostCache keeps sharing entries across differently-calibrated
  /// devices, while noise-aware result caches append this string.
  [[nodiscard]] const std::string& noise_fingerprint() const noexcept {
    return noise_fingerprint_;
  }

 private:
  int m_;
  std::string name_;
  std::string fingerprint_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::pair<int, int>> undirected_;
  std::vector<std::vector<int>> neighbours_;
  ErrorRates rates_;
  std::string noise_fingerprint_;
};

}  // namespace qxmap::arch
