/// \file coupling_map.hpp
/// Directed coupling maps of IBM QX architectures (Def. 2).
///
/// An entry (pi, pj) means a CNOT with control pi and target pj is natively
/// executable. A CNOT in the opposite direction costs 4 extra H gates; a
/// CNOT between uncoupled qubits requires SWAPs (7 gates each).

#pragma once

#include <string>
#include <utility>
#include <vector>

namespace qxmap::arch {

/// Immutable directed graph over `num_physical()` qubits.
class CouplingMap {
 public:
  /// \param num_physical number of physical qubits m
  /// \param edges directed (control, target) pairs; duplicates are removed
  /// \param name architecture name for reports
  /// \throws std::invalid_argument on out-of-range endpoints or self-loops.
  CouplingMap(int num_physical, std::vector<std::pair<int, int>> edges, std::string name = {});

  [[nodiscard]] int num_physical() const noexcept { return m_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Directed query: CNOT(control → target) natively executable?
  [[nodiscard]] bool allows(int control, int target) const;

  /// Undirected query: any CNOT orientation executable between a and b?
  [[nodiscard]] bool coupled(int a, int b) const;

  /// All directed edges, sorted.
  [[nodiscard]] const std::vector<std::pair<int, int>>& edges() const noexcept { return edges_; }

  /// Undirected edge set with a < b, deduplicated, sorted.
  [[nodiscard]] const std::vector<std::pair<int, int>>& undirected_edges() const noexcept {
    return undirected_;
  }

  /// Canonical structural fingerprint: qubit count plus the sorted directed
  /// edge list ("m5:1>0;2>0;…"). Two maps share a fingerprint iff they have
  /// the same qubit count and the same directed edges — the name is
  /// deliberately excluded, and a directed edge never aliases its bidirected
  /// counterpart. Cache key of arch::SwapCostCache.
  [[nodiscard]] const std::string& fingerprint() const noexcept { return fingerprint_; }

  /// Undirected neighbours of qubit `p`.
  [[nodiscard]] const std::vector<int>& neighbours(int p) const;

  /// True iff the undirected graph on all m qubits is connected.
  [[nodiscard]] bool is_connected() const;

  /// True iff the undirected subgraph induced by `subset` is connected.
  /// An empty subset counts as connected.
  [[nodiscard]] bool subset_connected(const std::vector<int>& subset) const;

  /// True iff the undirected graph contains a 3-clique (needed for the
  /// paper's *qubit triangle* strategy, Sec. 4.2).
  [[nodiscard]] bool has_triangle() const;

  /// Coupling map induced by `subset` (sorted, distinct), with qubits
  /// renumbered 0 … subset.size()-1 in subset order. Directions preserved.
  [[nodiscard]] CouplingMap induced(const std::vector<int>& subset) const;

 private:
  int m_;
  std::string name_;
  std::string fingerprint_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::pair<int, int>> undirected_;
  std::vector<std::vector<int>> neighbours_;
};

}  // namespace qxmap::arch
