#include "arch/distances.hpp"

#include <algorithm>
#include <stdexcept>

namespace qxmap::arch {

namespace {
constexpr int kUnreachable = 1000000;
}

DistanceMatrix::DistanceMatrix(const CouplingMap& cm) : m_(cm.num_physical()) {
  const auto idx = [this](int a, int b) {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(m_) + static_cast<std::size_t>(b);
  };
  hops_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), kUnreachable);
  for (int i = 0; i < m_; ++i) hops_[idx(i, i)] = 0;
  for (const auto& [a, b] : cm.undirected_edges()) {
    hops_[idx(a, b)] = 1;
    hops_[idx(b, a)] = 1;
  }
  for (int k = 0; k < m_; ++k) {
    for (int i = 0; i < m_; ++i) {
      for (int j = 0; j < m_; ++j) {
        hops_[idx(i, j)] = std::min(hops_[idx(i, j)], hops_[idx(i, k)] + hops_[idx(k, j)]);
      }
    }
  }

  // CNOT costs. For non-adjacent pairs we route along a shortest path; the
  // final hop's orientation decides whether 4 H gates are still needed. We
  // compute the cheapest option over all neighbours u of the target-side
  // endpoint: 7*(hops(c,u)-? ) — equivalently, take min over adjacent pairs
  // (u,v) with the right distance sum; a simple dynamic program suffices at
  // these sizes.
  cnot_cost_.assign(static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_), kUnreachable);
  for (int c = 0; c < m_; ++c) {
    for (int t = 0; t < m_; ++t) {
      if (c == t) continue;
      int best = kUnreachable;
      // Choose the adjacent pair (u, v) where the CNOT will finally execute;
      // moving c to u and t to v takes hops(c,u) + hops(t,v) swaps in the
      // independent-path approximation used by all layer heuristics.
      for (const auto& [a, b] : cm.undirected_edges()) {
        for (const auto& [u, v] : {std::pair{a, b}, std::pair{b, a}}) {
          if (hops_[idx(c, u)] >= kUnreachable || hops_[idx(t, v)] >= kUnreachable) continue;
          const int swaps = hops_[idx(c, u)] + hops_[idx(t, v)];
          const int direction_penalty = cm.allows(u, v) ? 0 : 4;
          best = std::min(best, 7 * swaps + direction_penalty);
        }
      }
      cnot_cost_[idx(c, t)] = best;
    }
  }
}

int DistanceMatrix::hops(int a, int b) const {
  if (a < 0 || b < 0 || a >= m_ || b >= m_) throw std::out_of_range("DistanceMatrix::hops");
  return hops_[static_cast<std::size_t>(a) * static_cast<std::size_t>(m_) +
               static_cast<std::size_t>(b)];
}

int DistanceMatrix::cnot_cost(int control, int target) const {
  if (control < 0 || target < 0 || control >= m_ || target >= m_) {
    throw std::out_of_range("DistanceMatrix::cnot_cost");
  }
  if (control == target) throw std::invalid_argument("DistanceMatrix::cnot_cost: control == target");
  return cnot_cost_[static_cast<std::size_t>(control) * static_cast<std::size_t>(m_) +
                    static_cast<std::size_t>(target)];
}

}  // namespace qxmap::arch
