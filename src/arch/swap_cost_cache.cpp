#include "arch/swap_cost_cache.hpp"

#include <algorithm>
#include <utility>

namespace qxmap::arch {

template <typename Value>
std::shared_ptr<const Value> SwapCostCache::LruStore<Value>::find_and_touch(
    const std::string& key) {
  const auto it = entries.find(key);
  if (it == entries.end()) return nullptr;
  lru.splice(lru.begin(), lru, it->second.lru_it);
  return it->second.value;
}

template <typename Value>
std::shared_ptr<const Value> SwapCostCache::LruStore<Value>::insert_or_adopt(
    const std::string& key, std::shared_ptr<const Value> built, std::size_t capacity) {
  // Another thread may have inserted the same key while we were building
  // outside the lock; its entry wins so every caller shares one object.
  if (auto existing = find_and_touch(key)) return existing;
  lru.push_front(key);
  entries.emplace(key, Entry{built, lru.begin()});
  evict_to(capacity);
  return built;
}

template <typename Value>
void SwapCostCache::LruStore<Value>::evict_to(std::size_t capacity) {
  while (entries.size() > capacity) {
    entries.erase(lru.back());
    lru.pop_back();
    ++stats.evictions;
  }
}

template <typename Value, typename Build>
std::shared_ptr<const Value> SwapCostCache::get(LruStore<Value>& store, const CouplingMap& cm,
                                                Build build) {
  const std::string& key = cm.fingerprint();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (auto hit = store.find_and_touch(key)) {
      ++store.stats.hits;
      return hit;
    }
    ++store.stats.misses;
  }
  // Build outside the lock: an O(m!) BFS must not serialize unrelated keys.
  auto built = std::make_shared<const Value>(build(cm));
  const std::lock_guard<std::mutex> lock(mutex_);
  return store.insert_or_adopt(key, std::move(built), capacity_);
}

SwapCostCache::SwapCostCache(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

SwapCostCache& SwapCostCache::instance() {
  static SwapCostCache cache;
  return cache;
}

std::shared_ptr<const SwapCostTable> SwapCostCache::table(const CouplingMap& cm) {
  return get(tables_, cm, [](const CouplingMap& m) { return SwapCostTable(m); });
}

std::shared_ptr<const DistanceMatrix> SwapCostCache::distances(const CouplingMap& cm) {
  return get(distances_, cm, [](const CouplingMap& m) { return DistanceMatrix(m); });
}

void SwapCostCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  tables_ = {};
  distances_ = {};
}

void SwapCostCache::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  tables_.evict_to(capacity_);
  distances_.evict_to(capacity_);
}

std::size_t SwapCostCache::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::size_t SwapCostCache::table_entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.entries.size();
}

std::size_t SwapCostCache::distance_entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return distances_.entries.size();
}

SwapCostCache::Stats SwapCostCache::table_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.stats;
}

SwapCostCache::Stats SwapCostCache::distance_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return distances_.stats;
}

}  // namespace qxmap::arch
