#include "arch/swap_cost_cache.hpp"

#include <algorithm>
#include <utility>

namespace qxmap::arch {

template <typename Value>
std::shared_ptr<const Value> SwapCostCache::LruStore<Value>::find_and_touch(
    const std::string& key) {
  const auto it = entries.find(key);
  if (it == entries.end()) return nullptr;
  lru.splice(lru.begin(), lru, it->second.lru_it);
  return it->second.value;
}

template <typename Value>
std::shared_ptr<const Value> SwapCostCache::LruStore<Value>::insert_or_adopt(
    const std::string& key, std::shared_ptr<const Value> built, std::size_t capacity) {
  // Another thread may have inserted the same key while we were building
  // outside the lock; its entry wins so every caller shares one object.
  if (auto existing = find_and_touch(key)) return existing;
  lru.push_front(key);
  entries.emplace(key, Entry{built, lru.begin()});
  evict_to(capacity);
  return built;
}

template <typename Value>
void SwapCostCache::LruStore<Value>::evict_to(std::size_t capacity) {
  while (entries.size() > capacity) {
    entries.erase(lru.back());
    lru.pop_back();
    ++stats.evictions;
    if (m_evictions != nullptr) m_evictions->inc();
  }
}

template <typename Value, typename Build>
std::shared_ptr<const Value> SwapCostCache::get(LruStore<Value>& store, const CouplingMap& cm,
                                                Build build) {
  const std::string& key = cm.fingerprint();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (auto hit = store.find_and_touch(key)) {
      ++store.stats.hits;
      if (store.m_hits != nullptr) store.m_hits->inc();
      return hit;
    }
    ++store.stats.misses;
    if (store.m_misses != nullptr) store.m_misses->inc();
  }
  // Build outside the lock: an O(m!) BFS must not serialize unrelated keys.
  auto built = std::make_shared<const Value>(build(cm));
  const std::lock_guard<std::mutex> lock(mutex_);
  return store.insert_or_adopt(key, std::move(built), capacity_);
}

SwapCostCache::SwapCostCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  // Registry counters are process-lifetime instruments: every SwapCostCache
  // (the singleton and any test-local instance) feeds the same tallies.
  auto& reg = obs::MetricsRegistry::instance();
  tables_.m_hits = &reg.counter("qxmap_swap_cost_cache_table_hits_total",
                                "swaps(pi) table cache hits");
  tables_.m_misses = &reg.counter("qxmap_swap_cost_cache_table_misses_total",
                                  "swaps(pi) table cache misses (table built)");
  tables_.m_evictions = &reg.counter("qxmap_swap_cost_cache_table_evictions_total",
                                     "swaps(pi) table LRU evictions");
  distances_.m_hits = &reg.counter("qxmap_swap_cost_cache_distance_hits_total",
                                   "Distance-matrix cache hits");
  distances_.m_misses = &reg.counter("qxmap_swap_cost_cache_distance_misses_total",
                                     "Distance-matrix cache misses (matrix built)");
  distances_.m_evictions = &reg.counter("qxmap_swap_cost_cache_distance_evictions_total",
                                        "Distance-matrix LRU evictions");
}

SwapCostCache& SwapCostCache::instance() {
  static SwapCostCache cache;
  return cache;
}

std::shared_ptr<const SwapCostTable> SwapCostCache::table(const CouplingMap& cm) {
  return get(tables_, cm, [](const CouplingMap& m) { return SwapCostTable(m); });
}

std::shared_ptr<const DistanceMatrix> SwapCostCache::distances(const CouplingMap& cm) {
  return get(distances_, cm, [](const CouplingMap& m) { return DistanceMatrix(m); });
}

void SwapCostCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Drop entries and snapshot stats but keep the registry wiring: the
  // qxmap_* counters are process-lifetime tallies and survive a clear().
  tables_.lru.clear();
  tables_.entries.clear();
  tables_.stats = {};
  distances_.lru.clear();
  distances_.entries.clear();
  distances_.stats = {};
}

void SwapCostCache::set_capacity(std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = std::max<std::size_t>(1, capacity);
  tables_.evict_to(capacity_);
  distances_.evict_to(capacity_);
}

std::size_t SwapCostCache::capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

std::size_t SwapCostCache::table_entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.entries.size();
}

std::size_t SwapCostCache::distance_entries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return distances_.entries.size();
}

SwapCostCache::Stats SwapCostCache::table_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.stats;
}

SwapCostCache::Stats SwapCostCache::distance_stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return distances_.stats;
}

}  // namespace qxmap::arch
