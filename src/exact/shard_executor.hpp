/// \file shard_executor.hpp
/// Process-wide executor for subset-instance shards.
///
/// PR 2 gave every `map_exact` call its own worker pool; under service
/// traffic (many concurrent `map()` calls, api/service.hpp) that
/// oversubscribes the machine with one pool per request and lets no
/// request's scheduling see another's. This executor replaces the per-call
/// pools with **one** shared pool: every request submits its instance
/// tasks with per-task priorities, and all requests' shards interleave
/// through a single hardest-first queue (a `std::multiset` ordered by
/// (priority, request, index) — the same ordering the per-call scheduler
/// used, now global).
///
/// Contracts:
///  * **Per-request cap.** A request's `max_concurrency` bounds how many of
///    its tasks run simultaneously — `ExactOptions::num_threads` keeps its
///    meaning. The pool grows so the cap is attainable (`cap - 1` workers
///    plus the submitting caller, which executes its own request's tasks
///    inside `run_to_completion`), so explicit parallelism requests are
///    honoured even on fewer cores, exactly like the old per-call pools.
///  * **Determinism.** The executor adds no result-affecting state: which
///    thread runs a shard, and when, was already outside the determinism
///    argument (docs/concurrency.md#determinism-argument) — results depend
///    only on the per-request reduction, which is unchanged.
///  * **No abandoned work.** Destruction (including static destruction at
///    process exit) drains the queue, runs every remaining task, and joins
///    every worker — no detached thread can outlive the executor and touch
///    freed caches. The singleton constructor touches
///    `arch::SwapCostCache::instance()` first, so the cache outlives the
///    executor's threads by static-destruction order.
///  * **Deadlock freedom.** The submitting thread is always able to execute
///    its own request's tasks, so a request completes even with a pool of
///    zero threads, and nested submissions cannot form a circular wait.
///
/// Tasks must not throw for control flow, but a throwing task is contained:
/// the first exception is captured per request and rethrown from
/// `run_to_completion` after the request's remaining tasks ran.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace qxmap::exact {

/// Shared worker pool with a priority-ordered task queue. All operations
/// are thread-safe; see the file comment for the contracts.
class ShardExecutor {
 public:
  /// One unit of work; receives the task index passed at submit time.
  using TaskFn = std::function<void(std::size_t)>;

  /// Lifetime counters (snapshot). `tasks_executed` is the service smoke
  /// test's "no shard work spawned on a warm hit" witness.
  ///
  /// \deprecated New monitoring should read the `qxmap_executor_*` metrics
  /// on `obs::MetricsRegistry` (docs/observability.md) — the same tallies
  /// plus queue-wait/run-time histograms that a snapshot struct cannot
  /// carry. This struct stays for programmatic assertions but grows no new
  /// consumers.
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t tasks_submitted = 0;
    std::uint64_t tasks_executed = 0;
    std::uint64_t tasks_failed = 0;  ///< executed tasks whose fn threw
    std::uint64_t threads_spawned = 0;
    std::uint64_t queue_depth_high_water = 0;  ///< max queued (not in-flight) tasks ever
  };

  /// Handle to a submitted batch of tasks. Opaque; all state is guarded by
  /// the owning executor.
  class Request {
    friend class ShardExecutor;
    TaskFn fn;
    std::size_t cap = 1;        // max tasks of this request in flight
    std::size_t remaining = 0;  // tasks not yet finished
    std::size_t in_flight = 0;  // tasks currently executing
    std::uint64_t seq = 0;      // submission order (queue tie-break)
    std::thread::id submitter;  // trace-only: flags steals (other-thread runs)
    std::exception_ptr error;   // first task exception, if any
  };

  /// \param num_threads workers to start with. 0 is allowed: tasks then run
  /// only on threads inside run_to_completion (useful for deterministic
  /// tests) until a request's cap grows the pool.
  explicit ShardExecutor(std::size_t num_threads);

  /// Drains the queue (every submitted task still runs), then joins all
  /// workers. Waiters in run_to_completion complete before this returns.
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  /// The process-wide instance used by map_exact. First use sizes the pool
  /// from `QXMAP_EXECUTOR_THREADS` (0 = caller-only), defaulting to the
  /// hardware concurrency.
  [[nodiscard]] static ShardExecutor& instance();

  /// Enqueues `priorities.size()` tasks; task i runs `fn(i)` exactly once.
  /// Lower priority values pop first (map_exact passes induced-subgraph
  /// edge counts, so sparse = hard instances lead; ties run in submission
  /// then index order). `max_concurrency` is clamped to [1, task count].
  /// \throws std::invalid_argument on an empty batch, std::runtime_error
  /// after shutdown began.
  [[nodiscard]] std::shared_ptr<Request> submit(TaskFn fn,
                                                const std::vector<long long>& priorities,
                                                std::size_t max_concurrency);

  /// Runs queued tasks of `request` on the calling thread (counting toward
  /// its cap) and blocks until every task of the request has finished.
  /// Rethrows the first exception a task of this request raised, after all
  /// of them ran.
  void run_to_completion(const std::shared_ptr<Request>& request);

  /// Resizes the base pool. Growing is immediate; shrinking drains the
  /// queue, joins every worker, and respawns `n` — call it between
  /// requests, not under load. Per-request cap growth can later exceed `n`
  /// again.
  void set_num_threads(std::size_t n);

  [[nodiscard]] std::size_t num_threads() const;
  [[nodiscard]] Stats stats() const;

 private:
  struct QueuedTask {
    long long priority;
    std::uint64_t seq;
    std::size_t index;
    std::uint64_t enqueue_ns;  // steady-clock stamp; feeds the queue-wait histogram
    std::shared_ptr<Request> request;
  };
  struct TaskOrder {
    bool operator()(const QueuedTask& a, const QueuedTask& b) const noexcept {
      if (a.priority != b.priority) return a.priority < b.priority;
      if (a.seq != b.seq) return a.seq < b.seq;
      return a.index < b.index;
    }
  };
  using Queue = std::multiset<QueuedTask, TaskOrder>;

  void worker_loop();
  /// First queued task whose request is under its cap (restricted to `only`
  /// when non-null); queue_.end() if none. Caller holds mutex_.
  [[nodiscard]] Queue::iterator find_eligible(const Request* only);
  /// Extracts and runs one task (fn outside the lock), then updates the
  /// request and wakes waiters. Caller holds `lock`; it is held again on
  /// return.
  void run_one(Queue::iterator it, std::unique_lock<std::mutex>& lock);
  /// Grows the pool to `target` workers. Caller holds mutex_.
  void spawn_to(std::size_t target);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  Queue queue_;
  std::vector<std::thread> threads_;
  std::mutex resize_mutex_;  // serialises set_num_threads / destruction
  bool stopping_ = false;
  std::size_t busy_ = 0;  // threads inside run_to_completion (destructor waits)
  std::size_t base_threads_ = 0;
  std::uint64_t next_seq_ = 0;
  Stats stats_;
};

}  // namespace qxmap::exact
