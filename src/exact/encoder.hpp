/// \file encoder.hpp
/// The symbolic formulation of Sec. 3.2: variables x^k_ij, y^k_π, z^k and
/// constraints Eqs. (1)–(4) with the objective Eq. (5), emitted into a
/// ReasoningEngine.
///
/// Conventions (all 0-based):
///  * k indexes the CNOT gates of the skeleton, 0 … K-1; x^k describes the
///    logical→physical mapping *before* gate k.
///  * A "permutation point" k (k >= 1) allows the mapping to change between
///    gates k-1 and k; the initial mapping (before gate 0) is always free.
///  * Eq. (3) is encoded in the footnote-5 form that is correct for both
///    n = m and n < m: exactly-one over the y^k_π plus the left implication
///    y^k_π → ∧ (x^{k-1}_ij = x^k_{π(i)j}). With n = m the consistent π is
///    unique, so this degenerates to the equivalence of Eq. (3); with n < m
///    the objective makes the engine pick the cheapest consistent π.
///  * Eq. (4) is strengthened to z^k ↔ (reverse placement ∧ ¬forward
///    placement) so that bidirected couplings do not pay the 4-H penalty;
///    on the antisymmetric QX coupling maps this is exactly Eq. (4).

#pragma once

#include <cstddef>
#include <vector>

#include "arch/coupling_map.hpp"
#include "arch/swap_costs.hpp"
#include "common/permutation.hpp"
#include "exact/types.hpp"
#include "ir/gate.hpp"
#include "reason/engine.hpp"

namespace qxmap::exact {

/// Variable bookkeeping plus the data needed to decode a model.
///
/// The formulation splits into a coupling-independent *prefix* — the x/y
/// variables with Eq. (1) and Eq. (3), fixed by (skeleton, n, m, G') alone —
/// and a per-instance *suffix*: Eq. (2)/(4) over the coupling map's edges
/// plus every cost term (swaps(π) depends on the induced map). The Sec. 4.1
/// subset instances of one circuit all share the prefix, so build_prefix()
/// captures it once as an engine-agnostic clause list and the prefix
/// constructor replays it (remapping the prefix-local variable ids into the
/// engine) or — when the engine still holds the prefix from a
/// ReasoningEngine::reset_to_prefix() — skips straight to the suffix.
class Encoding {
 public:
  /// The shared, engine-agnostic part of the formulation. Clause literals
  /// are DIMACS-like over prefix-local variable ids 0..var_count-1; the
  /// prefix constructor remaps them into engine variables at load time.
  struct Prefix {
    int num_gates = 0;
    int m = 0;
    int n = 0;
    std::vector<std::pair<int, int>> gates;    ///< (control, target) per CNOT
    std::vector<std::size_t> perm_points;      ///< sorted G'
    std::vector<Permutation> perms;            ///< Π = S_m
    std::vector<int> x;                        ///< (k*m + i)*n + j
    std::vector<std::vector<int>> y;           ///< [point index][perm index]
    std::vector<std::vector<int>> clauses;     ///< Eq. (1) + Eq. (3)
    std::size_t var_count = 0;
    std::size_t clause_count = 0;
  };

  /// Captures the coupling-independent prefix for (skeleton, n, m, G').
  ///
  /// \param cnots the CNOT skeleton (logical qubit pairs), non-empty
  /// \param num_logical n (> largest qubit index used by `cnots`)
  /// \param num_physical m >= n (the subset size; every Sec. 4.1 subset
  ///        instance of an n-qubit circuit has m = n)
  /// \param perm_points G' (0-based ks, each >= 1)
  [[nodiscard]] static Prefix build_prefix(const std::vector<Gate>& cnots, int num_logical,
                                           int num_physical,
                                           const std::vector<std::size_t>& perm_points);

  /// Builds the full formulation into `engine`.
  ///
  /// \param engine the reasoning engine receiving clauses and costs
  /// \param cnots the CNOT skeleton (logical qubit pairs), non-empty
  /// \param num_logical n (> largest qubit index used by `cnots`)
  /// \param cm coupling map with m >= n physical qubits
  /// \param table swaps(π) for this coupling map
  /// \param perm_points G' (0-based ks, each >= 1)
  /// \param costs SWAP / direction-switch weights (resolved, not -1)
  Encoding(reason::ReasoningEngine& engine, const std::vector<Gate>& cnots, int num_logical,
           const arch::CouplingMap& cm, const arch::SwapCostTable& table,
           const std::vector<std::size_t>& perm_points, const CostModel& costs);

  /// Builds the formulation from a shared prefix plus the per-instance
  /// suffix for `cm`. With `engine_holds_prefix == false` the prefix is
  /// replayed into `engine` — which must be fresh (no variables yet) so the
  /// prefix-local→engine variable map is the identity — and the engine is
  /// asked to mark_prefix() so later instances can reset to this point.
  /// With `engine_holds_prefix == true` the engine must already hold
  /// exactly the prefix (a reset_to_prefix() engine) and only the suffix is
  /// emitted. `cm.num_physical()` must equal `prefix.m`.
  Encoding(reason::ReasoningEngine& engine, const Prefix& prefix, const arch::CouplingMap& cm,
           const arch::SwapCostTable& table, const CostModel& costs, bool engine_holds_prefix);

  /// A decoded model.
  struct Solution {
    /// layouts[k][j] = physical qubit of logical j before gate k.
    std::vector<std::vector<int>> layouts;
    /// reversed[k] = gate k executed against the edge direction (z^k).
    std::vector<bool> reversed;
    /// Permutation chosen at each permutation point, aligned with the
    /// perm_points vector passed to the constructor.
    std::vector<Permutation> point_perms;
    /// Objective value recomputed from the model (Eq. 5).
    long long cost_f = 0;
  };

  /// Reads the model back from the engine (call after a successful
  /// minimize()).
  [[nodiscard]] Solution decode() const;

  [[nodiscard]] int num_gates() const noexcept { return num_gates_; }
  [[nodiscard]] int num_logical() const noexcept { return n_; }
  [[nodiscard]] int num_physical() const noexcept { return m_; }
  [[nodiscard]] std::size_t num_variables() const noexcept { return var_count_; }
  [[nodiscard]] std::size_t num_clauses() const noexcept { return clause_count_; }

 private:
  Encoding(reason::ReasoningEngine& engine, const Prefix& prefix, const arch::CouplingMap& cm,
           const arch::SwapCostTable& table, const CostModel& costs, bool engine_holds_prefix,
           bool mark);

  /// Emits Eq. (2)/(4) and all cost terms for `cm` (the per-instance part).
  void encode_suffix(const arch::CouplingMap& cm);

  [[nodiscard]] int x_var(int k, int i, int j) const {
    return x_[static_cast<std::size_t>((k * m_ + i) * n_ + j)];
  }

  reason::ReasoningEngine& engine_;
  int num_gates_;
  int m_;
  int n_;
  std::vector<std::pair<int, int>> gates_;  // (control, target) per CNOT
  CostModel costs_;
  std::vector<std::size_t> perm_points_;
  std::vector<Permutation> perms_;
  std::vector<int> perm_swaps_;
  std::vector<int> x_;                   // (k*m + i)*n + j
  std::vector<std::vector<int>> y_;      // [point index][perm index]
  std::vector<int> z_;                   // [k]
  std::size_t var_count_ = 0;
  std::size_t clause_count_ = 0;
};

}  // namespace qxmap::exact
