/// \file exact_mapper.hpp
/// Top-level driver of the paper's method: minimal (or close-to-minimal)
/// mapping of a quantum circuit to an IBM QX architecture.
///
/// Pipeline (Secs. 3–4):
///  1. extract the CNOT skeleton (single-qubit gates never violate coupling
///     constraints, footnote 3);
///  2. choose permutation points G' per the configured strategy (Sec. 4.2);
///  3. build one symbolic instance over all m physical qubits — or, with
///     ExactOptions::use_subsets, one per connected n-subset (Sec. 4.1) —
///     and minimize Eq. (5) with the configured reasoning engine; subset
///     instances are sharded across ExactOptions::num_threads workers, each
///     owning its engine, popping from a shared hardest-first work-stealing
///     queue, with a shared atomic bound feeding every shard's Eq. (5)
///     upper bound both at solve start and — via cooperative tightening —
///     at checkpoints mid-solve, plus a deterministic
///     lowest-cost/lowest-index reduction (results are bit-identical at any
///     thread count; protocol spec in docs/concurrency.md); swaps(π)
///     tables come from the process-wide arch::SwapCostCache;
///  4. decode the best model into layouts/permutations, synthesize SWAP
///     chains along coupling edges, re-attach the single-qubit gates, and
///     H-conjugate direction-reversed CNOTs (Fig. 3);
///  5. verify the result (GF(2) skeleton check; statevector equivalence on
///     small architectures).

#pragma once

#include "arch/coupling_map.hpp"
#include "exact/types.hpp"
#include "ir/circuit.hpp"

namespace qxmap::exact {

/// Maps `circuit` to `cm`. Raw SWAP pseudo-gates in the input are
/// decomposed into their Fig. 3 elementary form up front and routed like
/// any other gates.
///
/// \throws std::invalid_argument if the circuit has more qubits than the
/// architecture or the configuration is unusable (e.g. full-architecture
/// mode with m > 8, where Π cannot be enumerated).
[[nodiscard]] MappingResult map_exact(const Circuit& circuit, const arch::CouplingMap& cm,
                                      const ExactOptions& options = {});

}  // namespace qxmap::exact
