/// \file types.hpp
/// Shared option/result types of the exact mapper.

#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "reason/engine.hpp"

namespace qxmap::arch {
class CouplingMap;
}

namespace qxmap::exact {

/// Where re-mapping permutations are allowed (Sec. 4.2).
enum class PermutationStrategy {
  All,           ///< before every gate — guarantees minimality (Sec. 3)
  DisjointQubits,///< before each cluster of gates on disjoint qubit sets
  OddGates,      ///< before gates with odd (1-based) index
  QubitTriangle, ///< before each cluster acting on <= 3 qubits
};

[[nodiscard]] std::string to_string(PermutationStrategy s);

/// Three-state switch for scheduler features: `Auto` defers to the matching
/// environment variable (QXMAP_EXACT_STEAL / QXMAP_EXACT_TIGHTEN; the values
/// `off`, `0` and `false` disable, anything else — including unset —
/// enables), so CI can exercise both schedulers without code changes.
enum class Toggle { Auto, On, Off };

/// What the integer objective weights represent.
enum class CostObjective {
  GateCount,      ///< the paper's Eq. (5): added elementary operations
  ErrorWeighted,  ///< scaled -log10 success probability of the added gates
};

[[nodiscard]] std::string to_string(CostObjective o);

/// Cost model of Sec. 2.2 (Fig. 3), generalised with a pluggable objective.
///
/// Under `GateCount` a SWAP costs 7 elementary operations (3 when every
/// coupling is bidirected and the SWAP decomposes into 3 CNOTs) and a
/// direction switch costs 4 H gates. `swap_cost` defaults to -1, meaning
/// "derive from the architecture".
///
/// Under `ErrorWeighted` the weights instead measure the reliability lost by
/// the inserted gates: weight = round(error_scale · -log10 Π (1 - eᵢ)) over
/// the elementary gates of the construct (3 CNOTs + 4 H for a one-directional
/// SWAP, 3 CNOTs for a bidirected one, 4 H for a reversal), clamped to ≥ 1.
/// -log10 is additive across gates, so minimising the summed integer weights
/// minimises the added failure probability. The CNOT/single-qubit rates come
/// from the architecture's calibration data (`CouplingMap::error_rates()`,
/// mean over edges/qubits) when present, else from the scalar defaults below
/// (which match sim::NoiseModel).
///
/// All solver plumbing (encoder objective, DP reference, heuristic scoring,
/// shared bounds) consumes a *resolved* model — concrete positive integer
/// weights — produced by `resolved()`.
struct CostModel {
  CostObjective objective = CostObjective::GateCount;
  int swap_cost = -1;
  int reverse_cost = 4;
  /// ErrorWeighted fallbacks when the architecture has no calibration data.
  double cnot_error = 2e-2;
  double single_qubit_error = 1e-3;
  /// ErrorWeighted resolution of the -log10 scale; larger = finer rounding.
  int error_scale = 1000;

  /// Returns a copy with concrete integer `swap_cost`/`reverse_cost` for
  /// `cm` per the objective (GateCount keeps explicit overrides).
  /// \throws std::invalid_argument on rates outside [0,1) or a non-positive
  ///         error_scale.
  [[nodiscard]] CostModel resolved(const arch::CouplingMap& cm) const;

  /// Objective value of a result with the given insertion counts.
  /// \throws std::logic_error when called on an unresolved model.
  [[nodiscard]] long long result_cost(int swaps, int reversed) const;
};

/// Options for the exact mapper.
struct ExactOptions {
  reason::EngineKind engine = reason::EngineKind::Z3;
  /// How the engine approaches the Eq. (5) minimum (Sec. 3.3): a descending
  /// bound loop, or binary-search probes that assert speculative bounds as
  /// assumption literals against one incremental solver. Both return the
  /// same status and cost; wall time per instance differs. Backends that
  /// minimize natively (Z3) ignore the selection.
  reason::OptimizationMode optimization = reason::OptimizationMode::DescendingLinear;
  PermutationStrategy strategy = PermutationStrategy::All;
  /// Sec. 4.1: solve one instance per connected n-subset of physical qubits
  /// instead of one instance over all m.
  bool use_subsets = false;
  /// This request's shard-concurrency cap on the process-wide executor
  /// (exact/shard_executor.hpp): at most this many of the request's subset
  /// instances solve simultaneously (0 = hardware concurrency). The
  /// executor grows its pool so an explicit cap is honoured even on fewer
  /// cores, like the per-call pools it replaced. Each executing thread owns
  /// its reasoning engine — the CDCL solver is not thread-safe — and
  /// publishes its best model cost to a shared bound that lets every other
  /// shard strengthen its Eq. (5) upper bound. The reduction is
  /// deterministic (lowest cost, then lowest subset index), so every cap
  /// yields bit-identical results as long as the solver budget does not
  /// expire mid-search. See docs/concurrency.md.
  int num_threads = 0;
  /// Work-stealing pop order for the shared instance queue: hardest-looking
  /// instances (sparsest induced coupling subgraph — they need the most
  /// SWAPs and the deepest descending search) are started first, while the
  /// bound is still loose, and quick dense instances mop up and publish
  /// cheap bounds that abort the big ones mid-solve. `Off` pops in subset
  /// index order (the PR 2 scheduler). Does not affect results, only wall
  /// time (docs/concurrency.md has the determinism argument).
  Toggle work_stealing = Toggle::Auto;
  /// Mid-solve bound propagation: shards poll the shared Eq. (5) bound at
  /// engine checkpoints *during* a solve and abort branches that can no
  /// longer beat the incumbent (ReasoningEngine::set_bound_source). `Off`
  /// consults the shared bound only at solve start. Does not affect
  /// results, only wall time.
  Toggle cooperative_tightening = Toggle::Auto;
  /// Total solver budget, shared across subset instances as one deadline:
  /// each shard grants its next instance an equal share of the time *left*,
  /// so slack from instances that finish early (or are skipped) flows to
  /// the hard ones instead of expiring unused. The canonical re-derivation
  /// of the winning instance (which keeps results thread-count invariant)
  /// may spend up to one nominal per-instance share on top of this total.
  /// Budget expiry is outside the bit-identical guarantee either way (see
  /// docs/concurrency.md).
  std::chrono::milliseconds budget{10000};
  CostModel costs;
  /// Verify the result (GF(2) skeleton always; statevector when the
  /// architecture has at most `deep_verify_max_qubits` qubits).
  bool verify = true;
  int deep_verify_max_qubits = 8;
};

/// Outcome of a mapping run.
struct MappingResult {
  /// Fully expanded physical circuit: single-qubit gates + CNOTs on allowed
  /// edges only (SWAPs expanded per Fig. 3, reversed CNOTs H-conjugated).
  Circuit mapped;
  /// Routing skeleton: the original CNOTs (logical orientation) on physical
  /// qubits plus SWAP pseudo-gates — input for GF(2) verification.
  Circuit routed_skeleton;
  std::vector<int> initial_layout;  ///< logical j -> physical qubit before gate 1
  std::vector<int> final_layout;    ///< logical j -> physical qubit at the end
  long long cost_f = 0;             ///< added cost F (Eq. 5) = |mapped| - |original|
  /// The optimised objective: equals swap_cost·swaps + reverse_cost·reversed
  /// under the resolved cost model. Under CostObjective::GateCount with
  /// default weights this coincides with cost_f; under ErrorWeighted it is
  /// the scaled -log10 success-probability loss of the inserted gates.
  long long objective_cost = 0;
  std::string objective = "gate_count";  ///< to_string(CostObjective) of the request
  int swaps_inserted = 0;
  int cnots_reversed = 0;
  reason::Status status = reason::Status::Unknown;
  double seconds = 0.0;
  int instances_solved = 0;         ///< subset instances contributing to the reduction
                                    ///< (Sec. 4.1); once a subset proves cost 0, all
                                    ///< later subsets are skipped — they can at best tie
                                    ///< and lose the deterministic index tie-break
  int permutation_points = 0;       ///< |G'| + 1 (the paper's |G'| column counts
                                    ///< the free initial mapping too)
  long long bound_polls = 0;        ///< shared-bound consultations made by the
                                    ///< shards' engines mid-solve (cooperative
                                    ///< tightening); timing-dependent — an
                                    ///< observability number, NOT covered by the
                                    ///< determinism guarantee
  long long bound_tightenings = 0;  ///< polls that strictly tightened a shard's
                                    ///< enforced Eq. (5) bound mid-flight;
                                    ///< timing-dependent, like bound_polls
  std::string engine_name;
  bool verified = false;
  std::string verify_message;
  bool from_cache = false;  ///< true iff api::MappingService served this result
                            ///< from its LRU cache instead of solving; always
                            ///< false on results returned by the mappers
                            ///< themselves (and on dedup-joined results, which
                            ///< share the leader's fresh solve)
  std::string trace_summary;  ///< phase → wall-time table ("phase  ms" lines),
                              ///< populated only while tracing is enabled
                              ///< (obs::TraceRecorder); empty otherwise.
                              ///< Timing-dependent — an observability field,
                              ///< NOT covered by the determinism guarantee
};

}  // namespace qxmap::exact
