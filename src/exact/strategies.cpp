#include "exact/strategies.hpp"

#include <stdexcept>

#include "ir/layers.hpp"

namespace qxmap::exact {

std::string to_string(PermutationStrategy s) {
  switch (s) {
    case PermutationStrategy::All: return "all";
    case PermutationStrategy::DisjointQubits: return "disjoint";
    case PermutationStrategy::OddGates: return "odd";
    case PermutationStrategy::QubitTriangle: return "triangle";
  }
  throw std::invalid_argument("to_string: bad PermutationStrategy");
}

std::vector<std::size_t> permutation_points(const std::vector<Gate>& cnots,
                                            PermutationStrategy strategy,
                                            const arch::CouplingMap& cm) {
  std::vector<std::size_t> points;
  switch (strategy) {
    case PermutationStrategy::All:
      for (std::size_t k = 1; k < cnots.size(); ++k) points.push_back(k);
      return points;
    case PermutationStrategy::DisjointQubits:
      return disjoint_cluster_starts(cnots);
    case PermutationStrategy::OddGates:
      // Gates with odd 1-based index, except g_1 itself: 0-based 2, 4, ….
      for (std::size_t k = 2; k < cnots.size(); k += 2) points.push_back(k);
      return points;
    case PermutationStrategy::QubitTriangle:
      if (!cm.has_triangle()) {
        throw std::invalid_argument(
            "qubit-triangle strategy requires a triangle in the coupling graph");
      }
      return bounded_qubit_cluster_starts(cnots, 3);
  }
  throw std::invalid_argument("permutation_points: bad strategy");
}

}  // namespace qxmap::exact
