#include "exact/swap_synthesis.hpp"

#include <stdexcept>

namespace qxmap::exact {

void append_swap_realisation(Circuit& c, const arch::CouplingMap& cm, int a, int b) {
  if (!cm.coupled(a, b)) {
    throw std::invalid_argument("append_swap_realisation: qubits not coupled");
  }
  if (cm.allows(a, b) && cm.allows(b, a)) {
    c.cnot(a, b);
    c.cnot(b, a);
    c.cnot(a, b);
    return;
  }
  // Orient so that (u → v) is the allowed direction.
  const int u = cm.allows(a, b) ? a : b;
  const int v = cm.allows(a, b) ? b : a;
  c.cnot(u, v);
  c.h(u);
  c.h(v);
  c.cnot(u, v);
  c.h(u);
  c.h(v);
  c.cnot(u, v);
}

void append_cnot_realisation(Circuit& c, const arch::CouplingMap& cm, int control, int target,
                             const std::optional<Condition>& condition) {
  if (cm.allows(control, target)) {
    c.append(Gate::cnot(control, target).with_condition(condition));
    return;
  }
  if (cm.allows(target, control)) {
    c.append(Gate::single(OpKind::H, control).with_condition(condition));
    c.append(Gate::single(OpKind::H, target).with_condition(condition));
    c.append(Gate::cnot(target, control).with_condition(condition));
    c.append(Gate::single(OpKind::H, control).with_condition(condition));
    c.append(Gate::single(OpKind::H, target).with_condition(condition));
    return;
  }
  throw std::invalid_argument("append_cnot_realisation: qubits not coupled");
}

int swap_gate_cost(const arch::CouplingMap& cm) {
  for (const auto& [a, b] : cm.undirected_edges()) {
    if (!cm.allows(a, b) || !cm.allows(b, a)) return 7;
  }
  return 3;
}

bool satisfies_coupling(const Circuit& c, const arch::CouplingMap& cm) {
  for (const auto& g : c) {
    if (g.is_swap()) return false;
    if (g.is_cnot() && !cm.allows(g.control, g.target)) return false;
  }
  return true;
}

}  // namespace qxmap::exact
