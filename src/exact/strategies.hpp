/// \file strategies.hpp
/// Selection of permutation points G' ⊆ G \ {g_1} (Sec. 4.2).
///
/// Indices returned are 0-based positions into the CNOT gate sequence; an
/// index k means "a permutation of the mapping may happen between gate k-1
/// and gate k". Index 0 never appears: the initial mapping before gate 0 is
/// always free (it is chosen by the x^1 variables directly).

#pragma once

#include <vector>

#include "arch/coupling_map.hpp"
#include "exact/types.hpp"
#include "ir/gate.hpp"

namespace qxmap::exact {

/// Computes G' for `strategy` over the CNOT gate list `cnots`.
/// \throws std::invalid_argument for QubitTriangle when the architecture has
/// no triangle in its coupling graph (the strategy's premise, Sec. 4.2).
[[nodiscard]] std::vector<std::size_t> permutation_points(const std::vector<Gate>& cnots,
                                                          PermutationStrategy strategy,
                                                          const arch::CouplingMap& cm);

}  // namespace qxmap::exact
