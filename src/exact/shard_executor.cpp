#include "exact/shard_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "arch/swap_cost_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qxmap::exact {

namespace {

/// Registry handles for the executor (docs/observability.md). The Stats
/// struct remains the deterministic programmatic snapshot; these add the
/// queue-wait / run-time distributions that a snapshot cannot carry.
struct ExecutorMetrics {
  obs::Counter& requests;
  obs::Counter& tasks_submitted;
  obs::Counter& tasks_executed;
  obs::Counter& tasks_failed;
  obs::Counter& threads_spawned;
  obs::Counter& steals;
  obs::Gauge& queue_depth;
  obs::Gauge& queue_depth_high_water;
  obs::Histogram& queue_wait_us;
  obs::Histogram& task_run_us;

  static ExecutorMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static ExecutorMetrics m{
        reg.counter("qxmap_executor_requests_total", "Task batches submitted"),
        reg.counter("qxmap_executor_tasks_submitted_total", "Shard tasks enqueued"),
        reg.counter("qxmap_executor_tasks_executed_total", "Shard tasks completed"),
        reg.counter("qxmap_executor_tasks_failed_total", "Shard tasks whose fn threw"),
        reg.counter("qxmap_executor_threads_spawned_total", "Worker threads ever spawned"),
        reg.counter("qxmap_executor_steals_total",
                    "Tasks executed by a thread other than their submitter"),
        reg.gauge("qxmap_executor_queue_depth", "Tasks queued and not yet started"),
        reg.gauge("qxmap_executor_queue_depth_high_water",
                  "Maximum queue depth observed since process start"),
        reg.histogram("qxmap_executor_queue_wait_us",
                      "Microseconds between task enqueue and execution start"),
        reg.histogram("qxmap_executor_task_run_us", "Microseconds spent inside a task fn"),
    };
    return m;
  }
};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::size_t default_num_threads() {
  if (const char* env = std::getenv("QXMAP_EXECUTOR_THREADS")) {
    try {
      const long value = std::stol(env);
      if (value >= 0) return static_cast<std::size_t>(value);
    } catch (const std::exception&) {
      // Unparsable values fall through to the hardware default.
    }
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

ShardExecutor::ShardExecutor(std::size_t num_threads) {
  // Shard tasks read the process-wide swaps(π) cache and publish trace
  // events / metrics. Touching those singletons here pins static-
  // destruction order: they are constructed before this executor, so they
  // are destroyed after the executor has drained and joined every thread
  // that could still reach them (the destructor drain runs tasks too).
  (void)arch::SwapCostCache::instance();
  (void)obs::TraceRecorder::instance();
  (void)ExecutorMetrics::get();
  const std::lock_guard<std::mutex> lock(mutex_);
  base_threads_ = num_threads;
  spawn_to(num_threads);
}

ShardExecutor::~ShardExecutor() {
  const std::lock_guard<std::mutex> resize(resize_mutex_);
  std::vector<std::thread> workers;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
    workers.swap(threads_);
    cv_.notify_all();
    // The destructing thread joins the drain so the no-abandoned-work
    // contract holds even for a zero-worker pool with nobody inside
    // run_to_completion. Tasks it cannot pick up (their request is at its
    // cap) finish on whoever is running them; their completions notify.
    // Also wait out threads still inside run_to_completion: they hold the
    // mutex and condition variable, which must not be destroyed under them.
    while (!queue_.empty() || busy_ > 0) {
      const auto it = find_eligible(nullptr);
      if (it != queue_.end()) {
        run_one(it, lock);
      } else {
        cv_.wait(lock);
      }
    }
  }
  cv_.notify_all();
  // Workers exit once the queue is empty; every submitted task has run (and
  // every run_to_completion waiter was released) by the time the last join
  // returns. Nothing is detached, nothing outlives the executor.
  for (auto& t : workers) t.join();
}

ShardExecutor& ShardExecutor::instance() {
  static ShardExecutor executor(default_num_threads());
  return executor;
}

std::shared_ptr<ShardExecutor::Request> ShardExecutor::submit(
    TaskFn fn, const std::vector<long long>& priorities, std::size_t max_concurrency) {
  if (priorities.empty()) {
    throw std::invalid_argument("ShardExecutor::submit: empty task batch");
  }
  auto request = std::make_shared<Request>();
  request->fn = std::move(fn);
  request->cap = std::clamp<std::size_t>(max_concurrency, 1, priorities.size());
  request->remaining = priorities.size();
  request->submitter = std::this_thread::get_id();
  ExecutorMetrics& metrics = ExecutorMetrics::get();
  const std::uint64_t enqueue_ns = steady_ns();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ShardExecutor::submit: executor is shutting down");
    }
    request->seq = next_seq_++;
    for (std::size_t i = 0; i < priorities.size(); ++i) {
      queue_.insert(QueuedTask{priorities[i], request->seq, i, enqueue_ns, request});
    }
    ++stats_.requests;
    stats_.tasks_submitted += priorities.size();
    stats_.queue_depth_high_water =
        std::max<std::uint64_t>(stats_.queue_depth_high_water, queue_.size());
    metrics.requests.inc();
    metrics.tasks_submitted.inc(priorities.size());
    metrics.queue_depth.set(static_cast<long long>(queue_.size()));
    metrics.queue_depth_high_water.set_max(static_cast<long long>(queue_.size()));
    // Honour the cap even on fewer cores (the old per-call pools simply
    // spawned cap threads): cap - 1 workers plus the submitting caller,
    // which executes its own tasks inside run_to_completion.
    spawn_to(std::max(base_threads_, request->cap - 1));
  }
  cv_.notify_all();
  return request;
}

void ShardExecutor::run_to_completion(const std::shared_ptr<Request>& request) {
  if (!request) throw std::invalid_argument("ShardExecutor::run_to_completion: null request");
  std::unique_lock<std::mutex> lock(mutex_);
  ++busy_;
  while (request->remaining > 0) {
    const auto it = find_eligible(request.get());
    if (it != queue_.end()) {
      run_one(it, lock);
      continue;
    }
    // Everything left of this request is in flight elsewhere (or capped);
    // task completions notify.
    cv_.wait(lock);
  }
  --busy_;
  const std::exception_ptr error = request->error;
  request->error = nullptr;
  // Notify *under* the lock: a destructor waiting on busy_ may destroy the
  // condition variable as soon as it can reacquire the mutex, so notifying
  // after unlock could touch a dead object.
  cv_.notify_all();
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ShardExecutor::set_num_threads(std::size_t n) {
  const std::lock_guard<std::mutex> resize(resize_mutex_);
  std::vector<std::thread> workers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    base_threads_ = n;
    if (n >= threads_.size()) {
      spawn_to(n);
      return;
    }
    // Shrinking: there is no way to stop a std::thread in place, so drain
    // and respawn. Workers exit once the queue is empty.
    stopping_ = true;
    workers.swap(threads_);
  }
  cv_.notify_all();
  for (auto& t : workers) t.join();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
    spawn_to(n);
  }
  cv_.notify_all();
}

std::size_t ShardExecutor::num_threads() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return threads_.size();
}

ShardExecutor::Stats ShardExecutor::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ShardExecutor::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = find_eligible(nullptr);
    if (it != queue_.end()) {
      run_one(it, lock);
      continue;
    }
    if (stopping_ && queue_.empty()) return;
    // Either no work at all, or every queued task's request is at its cap
    // (their completions notify). When stopping with capped tasks left, the
    // in-flight tasks' completions re-wake us to finish the drain.
    cv_.wait(lock);
  }
}

ShardExecutor::Queue::iterator ShardExecutor::find_eligible(const Request* only) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (only != nullptr && it->request.get() != only) continue;
    if (it->request->in_flight < it->request->cap) return it;
  }
  return queue_.end();
}

void ShardExecutor::run_one(Queue::iterator it, std::unique_lock<std::mutex>& lock) {
  const QueuedTask task = *it;
  queue_.erase(it);
  ++task.request->in_flight;
  ExecutorMetrics& metrics = ExecutorMetrics::get();
  metrics.queue_depth.set(static_cast<long long>(queue_.size()));
  lock.unlock();
  const std::uint64_t start_ns = steady_ns();
  metrics.queue_wait_us.observe((start_ns - task.enqueue_ns) / 1000);
  std::exception_ptr error;
  {
    obs::Span span("executor.task", "executor");
    if (span.active()) {
      span.attr("request", static_cast<unsigned long long>(task.request->seq));
      span.attr("index", task.index);
      span.attr("priority", static_cast<long long>(task.priority));
      if (std::this_thread::get_id() != task.request->submitter) {
        obs::Span::instant("executor.steal", "executor");
      }
    }
    if (std::this_thread::get_id() != task.request->submitter) metrics.steals.inc();
    try {
      task.request->fn(task.index);
    } catch (...) {
      error = std::current_exception();
    }
  }
  metrics.task_run_us.observe((steady_ns() - start_ns) / 1000);
  metrics.tasks_executed.inc();
  if (error) metrics.tasks_failed.inc();
  lock.lock();
  --task.request->in_flight;
  --task.request->remaining;
  ++stats_.tasks_executed;
  if (error) ++stats_.tasks_failed;
  if (error && !task.request->error) task.request->error = error;
  // Wakes request waiters, workers blocked on this request's cap, and the
  // drain path. Coarse, but completions are solver-scale events.
  cv_.notify_all();
}

void ShardExecutor::spawn_to(std::size_t target) {
  while (threads_.size() < target) {
    threads_.emplace_back([this] { worker_loop(); });
    ++stats_.threads_spawned;
    ExecutorMetrics::get().threads_spawned.inc();
  }
}

}  // namespace qxmap::exact
