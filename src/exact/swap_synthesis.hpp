/// \file swap_synthesis.hpp
/// Emission of coupling-legal gate sequences for SWAPs and CNOTs (Fig. 3).

#pragma once

#include <optional>

#include "arch/coupling_map.hpp"
#include "ir/circuit.hpp"

namespace qxmap::exact {

/// Appends a SWAP between coupled physical qubits a, b:
///  * both directions in CM: CX(a,b) CX(b,a) CX(a,b) — 3 gates;
///  * one direction (say a→b): CX(a,b), H a, H b, CX(a,b), H a, H b,
///    CX(a,b) — the 7-operation form of Fig. 3.
/// \throws std::invalid_argument if a and b are not coupled.
void append_swap_realisation(Circuit& c, const arch::CouplingMap& cm, int a, int b);

/// Appends CNOT(control → target) on coupled qubits, H-conjugating when only
/// the reverse edge exists (4 extra H gates). A classical guard, when given,
/// is applied to every emitted gate (the realisation as a whole is the
/// guarded operation).
/// \throws std::invalid_argument if the qubits are not coupled.
void append_cnot_realisation(Circuit& c, const arch::CouplingMap& cm, int control, int target,
                             const std::optional<Condition>& condition = {});

/// The per-SWAP gate cost on this architecture: 7 if any coupling is
/// one-directional, 3 if every coupling is bidirected. This is the weight of
/// swaps(π) in Eq. 5 (the paper's architectures are all one-directional,
/// hence the constant 7 there).
[[nodiscard]] int swap_gate_cost(const arch::CouplingMap& cm);

/// True iff every CNOT in `c` lies on a directed coupling edge and no SWAP
/// pseudo-gates remain — i.e. the circuit is executable on the architecture.
[[nodiscard]] bool satisfies_coupling(const Circuit& c, const arch::CouplingMap& cm);

}  // namespace qxmap::exact
