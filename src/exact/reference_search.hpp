/// \file reference_search.hpp
/// Independent optimality oracle: dynamic programming over (gate, placement)
/// states.
///
/// For small architectures (the regime where the paper's exact method is
/// applicable at all) the minimal added cost F can also be computed by a
/// shortest-path sweep over all injective logical→physical placements per
/// gate: between consecutive gates the placement may change at permutation
/// points, paying 7·(minimal SWAPs realising the change), and executing a
/// CNOT against the edge direction pays 4. This is an entirely separate
/// code path from the symbolic encoder, used by the test-suite to certify
/// that both reasoning-engine backends return truly minimal costs, and by
/// the benchmarks as a fast reference.

#pragma once

#include <vector>

#include "arch/coupling_map.hpp"
#include "arch/swap_costs.hpp"
#include "exact/types.hpp"
#include "ir/gate.hpp"

namespace qxmap::exact {

/// Result of the DP sweep.
struct ReferenceResult {
  bool feasible = false;
  long long cost_f = 0;  ///< minimal F (Eq. 5) under the given permutation points
};

/// Computes the minimal F for the CNOT skeleton `cnots` over `num_logical`
/// qubits on `cm`, allowing placement changes only at `perm_points`
/// (0-based gate indices >= 1; pass every index 1 … K-1 for the
/// unrestricted Sec. 3 optimum).
///
/// \param costs resolved cost model (swap_cost > 0)
/// \throws std::invalid_argument on inconsistent arguments; architectures
/// with more than 8 physical qubits are rejected (placement enumeration).
[[nodiscard]] ReferenceResult minimal_cost_reference(const std::vector<Gate>& cnots,
                                                     int num_logical,
                                                     const arch::CouplingMap& cm,
                                                     const arch::SwapCostTable& table,
                                                     const std::vector<std::size_t>& perm_points,
                                                     const CostModel& costs);

/// Convenience overload fetching the swaps(π) table from the process-wide
/// arch::SwapCostCache instead of taking a caller-built one.
[[nodiscard]] ReferenceResult minimal_cost_reference(const std::vector<Gate>& cnots,
                                                     int num_logical,
                                                     const arch::CouplingMap& cm,
                                                     const std::vector<std::size_t>& perm_points,
                                                     const CostModel& costs);

}  // namespace qxmap::exact
