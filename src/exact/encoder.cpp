#include "exact/encoder.hpp"

#include <algorithm>
#include <stdexcept>

namespace qxmap::exact {

namespace {

/// Positive literal of engine variable v (DIMACS-like convention).
constexpr int lit(int v) { return v + 1; }

/// Records the prefix as an engine-agnostic clause list: variable ids are
/// prefix-local (sequential from 0), clauses are stored verbatim. Gives the
/// shared ReasoningEngine helpers (add_exactly_one, add_implies_equal, …) a
/// target without involving a real solver, so the prefix is derived once
/// per circuit instead of once per subset instance. Costs, bounds and
/// solving are per-instance by definition and therefore rejected.
class ClauseCollector final : public reason::ReasoningEngine {
 public:
  int new_bool() override { return var_count_++; }
  void add_clause(const std::vector<int>& lits) override { clauses_.push_back(lits); }
  void add_cost(int /*var*/, long long /*weight*/) override {
    throw std::logic_error("Encoding prefix: cost terms are per-instance");
  }
  reason::Outcome minimize(std::chrono::milliseconds /*budget*/) override {
    throw std::logic_error("Encoding prefix: collector cannot solve");
  }
  [[nodiscard]] bool value(int /*var*/) const override {
    throw std::logic_error("Encoding prefix: collector has no model");
  }
  [[nodiscard]] std::string name() const override { return "prefix-collector"; }

  int var_count_ = 0;
  std::vector<std::vector<int>> clauses_;
};

}  // namespace

Encoding::Prefix Encoding::build_prefix(const std::vector<Gate>& cnots, int num_logical,
                                        int num_physical,
                                        const std::vector<std::size_t>& perm_points) {
  if (cnots.empty()) throw std::invalid_argument("Encoding: empty CNOT skeleton");
  if (num_logical > num_physical) {
    throw std::invalid_argument("Encoding: more logical than physical qubits");
  }
  for (const auto& g : cnots) {
    if (!g.is_cnot()) throw std::invalid_argument("Encoding: skeleton must contain only CNOTs");
    if (g.control >= num_logical || g.target >= num_logical) {
      throw std::invalid_argument("Encoding: gate uses logical qubit beyond num_logical");
    }
  }
  for (const std::size_t k : perm_points) {
    if (k == 0 || k >= cnots.size()) {
      throw std::invalid_argument("Encoding: permutation point out of range");
    }
  }

  Prefix p;
  p.num_gates = static_cast<int>(cnots.size());
  p.m = num_physical;
  p.n = num_logical;
  p.gates.reserve(cnots.size());
  for (const auto& g : cnots) p.gates.emplace_back(g.control, g.target);
  p.perm_points = perm_points;
  std::sort(p.perm_points.begin(), p.perm_points.end());
  p.perms = Permutation::all(static_cast<std::size_t>(p.m));

  ClauseCollector c;
  const int m = p.m;
  const int n = p.n;
  const auto x_at = [&p, m, n](int k, int i, int j) {
    return p.x[static_cast<std::size_t>((k * m + i) * n + j)];
  };

  // --- mapping variables x^k_ij (Def. 4) -------------------------------
  p.x.resize(static_cast<std::size_t>(p.num_gates) * static_cast<std::size_t>(m) *
             static_cast<std::size_t>(n));
  for (auto& v : p.x) v = c.new_bool();

  // --- Eq. (1): well-defined mapping per gate ---------------------------
  for (int k = 0; k < p.num_gates; ++k) {
    for (int j = 0; j < n; ++j) {
      std::vector<int> lits;
      lits.reserve(static_cast<std::size_t>(m));
      for (int i = 0; i < m; ++i) lits.push_back(lit(x_at(k, i, j)));
      c.add_exactly_one(lits);
    }
    for (int i = 0; i < m; ++i) {
      std::vector<int> lits;
      lits.reserve(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) lits.push_back(lit(x_at(k, i, j)));
      c.add_at_most_one(lits);
    }
  }

  // --- Eq. (3): mapping changes only at permutation points --------------
  p.y.resize(p.perm_points.size());
  std::size_t point_idx = 0;
  for (int k = 1; k < p.num_gates; ++k) {
    const bool is_point = point_idx < p.perm_points.size() &&
                          p.perm_points[point_idx] == static_cast<std::size_t>(k);
    if (!is_point) {
      // Hard equality x^{k-1} = x^k (no permutation allowed here, Sec. 4.2).
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          c.add_equal_lits(lit(x_at(k - 1, i, j)), lit(x_at(k, i, j)));
        }
      }
      continue;
    }
    auto& ys = p.y[point_idx];
    ys.reserve(p.perms.size());
    std::vector<int> y_lits;
    y_lits.reserve(p.perms.size());
    for (std::size_t q = 0; q < p.perms.size(); ++q) {
      const int yv = c.new_bool();
      ys.push_back(yv);
      y_lits.push_back(lit(yv));
      // y^k_π → ∧_{i,j} (x^{k-1}_ij = x^k_{π(i)j})
      const Permutation& pi = p.perms[q];
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < n; ++j) {
          c.add_implies_equal(lit(yv), lit(x_at(k - 1, i, j)),
                              lit(x_at(k, pi.at(static_cast<std::size_t>(i)), j)));
        }
      }
    }
    c.add_exactly_one(y_lits);
    ++point_idx;
  }

  p.var_count = static_cast<std::size_t>(c.var_count_);
  p.clause_count = c.clauses_.size();
  p.clauses = std::move(c.clauses_);
  return p;
}

Encoding::Encoding(reason::ReasoningEngine& engine, const std::vector<Gate>& cnots,
                   int num_logical, const arch::CouplingMap& cm,
                   const arch::SwapCostTable& table, const std::vector<std::size_t>& perm_points,
                   const CostModel& costs)
    : Encoding(engine, build_prefix(cnots, num_logical, cm.num_physical(), perm_points), cm,
               table, costs, /*engine_holds_prefix=*/false, /*mark=*/false) {}

Encoding::Encoding(reason::ReasoningEngine& engine, const Prefix& prefix,
                   const arch::CouplingMap& cm, const arch::SwapCostTable& table,
                   const CostModel& costs, bool engine_holds_prefix)
    : Encoding(engine, prefix, cm, table, costs, engine_holds_prefix, /*mark=*/true) {}

Encoding::Encoding(reason::ReasoningEngine& engine, const Prefix& prefix,
                   const arch::CouplingMap& cm, const arch::SwapCostTable& table,
                   const CostModel& costs, bool engine_holds_prefix, bool mark)
    : engine_(engine),
      num_gates_(prefix.num_gates),
      m_(prefix.m),
      n_(prefix.n),
      gates_(prefix.gates),
      costs_(costs),
      perm_points_(prefix.perm_points),
      perms_(prefix.perms),
      x_(prefix.x),
      y_(prefix.y),
      var_count_(prefix.var_count),
      clause_count_(prefix.clause_count) {
  if (cm.num_physical() != m_) {
    throw std::invalid_argument("Encoding: coupling map size does not match the prefix");
  }
  if (costs_.swap_cost <= 0 || costs_.reverse_cost <= 0) {
    throw std::invalid_argument("Encoding: cost weights must be resolved and positive");
  }

  // swaps(π) is a property of the induced coupling map — per-instance.
  perm_swaps_.reserve(perms_.size());
  for (const auto& pi : perms_) perm_swaps_.push_back(table.swaps(pi));

  if (!engine_holds_prefix) {
    // Replay the prefix, remapping prefix-local variable ids into the
    // engine. The map must be the identity — the suffix below and decode()
    // address prefix variables by their prefix-local ids, and an engine
    // restored by reset_to_prefix() re-enters at exactly this state — so
    // the engine has to be fresh.
    for (std::size_t v = 0; v < prefix.var_count; ++v) {
      if (engine_.new_bool() != static_cast<int>(v)) {
        throw std::logic_error("Encoding: prefix replay requires a fresh engine");
      }
    }
    for (const auto& clause : prefix.clauses) engine_.add_clause(clause);
    // Snapshot the engine at the prefix boundary so sibling instances can
    // reset_to_prefix() instead of replaying. Backends without snapshot
    // support return false; callers then recreate the engine per instance.
    if (mark) engine_.mark_prefix();
  }

  encode_suffix(cm);
}

void Encoding::encode_suffix(const arch::CouplingMap& cm) {
  // --- Eqs. (2) and (4): coupling satisfaction + direction switches -----
  z_.resize(static_cast<std::size_t>(num_gates_));
  for (int k = 0; k < num_gates_; ++k) {
    const int qc = gates_[static_cast<std::size_t>(k)].first;
    const int qt = gates_[static_cast<std::size_t>(k)].second;
    std::vector<int> forward_terms;
    std::vector<int> reverse_terms;
    for (const auto& [pi, pj] : cm.edges()) {
      // Forward: control on p_i, target on p_j (edge direction matches).
      forward_terms.push_back(
          lit(engine_.make_and(lit(x_var(k, pi, qc)), lit(x_var(k, pj, qt)))));
      // Reverse: target on p_i, control on p_j (needs 4 H gates).
      reverse_terms.push_back(
          lit(engine_.make_and(lit(x_var(k, pi, qt)), lit(x_var(k, pj, qc)))));
      clause_count_ += 6;
      var_count_ += 2;
    }
    // Eq. (2): some orientation must be executable.
    std::vector<int> any;
    any.reserve(forward_terms.size() + reverse_terms.size());
    any.insert(any.end(), forward_terms.begin(), forward_terms.end());
    any.insert(any.end(), reverse_terms.begin(), reverse_terms.end());
    engine_.add_at_least_one(any);
    ++clause_count_;

    // Eq. (4), strengthened: z^k ↔ reverse-only placement.
    const int fwd_or = engine_.make_or(forward_terms);
    const int rev_or = engine_.make_or(reverse_terms);
    z_[static_cast<std::size_t>(k)] = engine_.make_and(lit(rev_or), -lit(fwd_or));
    var_count_ += 3;
    clause_count_ += 2 * (forward_terms.size() + 1) + 3;
    engine_.add_cost(z_[static_cast<std::size_t>(k)], costs_.reverse_cost);
  }

  // --- Eq. (5): 7·swaps(π) per chosen permutation -----------------------
  for (std::size_t p = 0; p < y_.size(); ++p) {
    for (std::size_t q = 0; q < perms_.size(); ++q) {
      const int sw = perm_swaps_[q];
      if (sw > 0) engine_.add_cost(y_[p][q], static_cast<long long>(costs_.swap_cost) * sw);
    }
  }
}

Encoding::Solution Encoding::decode() const {
  Solution sol;
  sol.layouts.assign(static_cast<std::size_t>(num_gates_),
                     std::vector<int>(static_cast<std::size_t>(n_), -1));
  for (int k = 0; k < num_gates_; ++k) {
    for (int j = 0; j < n_; ++j) {
      for (int i = 0; i < m_; ++i) {
        if (engine_.value(x_var(k, i, j))) {
          if (sol.layouts[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] != -1) {
            throw std::logic_error("Encoding::decode: logical qubit mapped twice");
          }
          sol.layouts[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] = i;
        }
      }
      if (sol.layouts[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] == -1) {
        throw std::logic_error("Encoding::decode: logical qubit unmapped");
      }
    }
  }
  sol.reversed.resize(static_cast<std::size_t>(num_gates_));
  for (int k = 0; k < num_gates_; ++k) {
    sol.reversed[static_cast<std::size_t>(k)] = engine_.value(z_[static_cast<std::size_t>(k)]);
    if (sol.reversed[static_cast<std::size_t>(k)]) sol.cost_f += costs_.reverse_cost;
  }
  for (std::size_t p = 0; p < perm_points_.size(); ++p) {
    int chosen = -1;
    for (std::size_t q = 0; q < perms_.size(); ++q) {
      if (engine_.value(y_[p][q])) {
        if (chosen != -1) throw std::logic_error("Encoding::decode: two permutations chosen");
        chosen = static_cast<int>(q);
      }
    }
    if (chosen == -1) throw std::logic_error("Encoding::decode: no permutation chosen at point");
    sol.point_perms.push_back(perms_[static_cast<std::size_t>(chosen)]);
    sol.cost_f += static_cast<long long>(costs_.swap_cost) *
                  perm_swaps_[static_cast<std::size_t>(chosen)];
  }
  return sol;
}

}  // namespace qxmap::exact
