#include "exact/encoder.hpp"

#include <algorithm>
#include <stdexcept>

namespace qxmap::exact {

namespace {
/// Positive literal of engine variable v (DIMACS-like convention).
constexpr int lit(int v) { return v + 1; }
}  // namespace

Encoding::Encoding(reason::ReasoningEngine& engine, const std::vector<Gate>& cnots,
                   int num_logical, const arch::CouplingMap& cm,
                   const arch::SwapCostTable& table, const std::vector<std::size_t>& perm_points,
                   const CostModel& costs)
    : engine_(engine),
      num_gates_(static_cast<int>(cnots.size())),
      m_(cm.num_physical()),
      n_(num_logical),
      costs_(costs),
      perm_points_(perm_points) {
  if (cnots.empty()) throw std::invalid_argument("Encoding: empty CNOT skeleton");
  if (n_ > m_) throw std::invalid_argument("Encoding: more logical than physical qubits");
  if (costs_.swap_cost <= 0 || costs_.reverse_cost <= 0) {
    throw std::invalid_argument("Encoding: cost weights must be resolved and positive");
  }
  for (const auto& g : cnots) {
    if (!g.is_cnot()) throw std::invalid_argument("Encoding: skeleton must contain only CNOTs");
    if (g.control >= n_ || g.target >= n_) {
      throw std::invalid_argument("Encoding: gate uses logical qubit beyond num_logical");
    }
  }
  for (const std::size_t k : perm_points_) {
    if (k == 0 || k >= static_cast<std::size_t>(num_gates_)) {
      throw std::invalid_argument("Encoding: permutation point out of range");
    }
  }
  std::sort(perm_points_.begin(), perm_points_.end());

  // Precompute Π and swaps(π).
  perms_ = Permutation::all(static_cast<std::size_t>(m_));
  perm_swaps_.reserve(perms_.size());
  for (const auto& pi : perms_) perm_swaps_.push_back(table.swaps(pi));

  // --- mapping variables x^k_ij (Def. 4) -------------------------------
  x_.resize(static_cast<std::size_t>(num_gates_) * static_cast<std::size_t>(m_) *
            static_cast<std::size_t>(n_));
  for (auto& v : x_) {
    v = engine_.new_bool();
    ++var_count_;
  }

  // --- Eq. (1): well-defined mapping per gate ---------------------------
  for (int k = 0; k < num_gates_; ++k) {
    for (int j = 0; j < n_; ++j) {
      std::vector<int> lits;
      lits.reserve(static_cast<std::size_t>(m_));
      for (int i = 0; i < m_; ++i) lits.push_back(lit(x_var(k, i, j)));
      engine_.add_exactly_one(lits);
      clause_count_ += 1 + static_cast<std::size_t>(m_) * static_cast<std::size_t>(m_ - 1) / 2;
    }
    for (int i = 0; i < m_; ++i) {
      std::vector<int> lits;
      lits.reserve(static_cast<std::size_t>(n_));
      for (int j = 0; j < n_; ++j) lits.push_back(lit(x_var(k, i, j)));
      engine_.add_at_most_one(lits);
      clause_count_ += static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_ - 1) / 2;
    }
  }

  // --- Eqs. (2) and (4): coupling satisfaction + direction switches -----
  z_.resize(static_cast<std::size_t>(num_gates_));
  for (int k = 0; k < num_gates_; ++k) {
    const int qc = cnots[static_cast<std::size_t>(k)].control;
    const int qt = cnots[static_cast<std::size_t>(k)].target;
    std::vector<int> forward_terms;
    std::vector<int> reverse_terms;
    for (const auto& [pi, pj] : cm.edges()) {
      // Forward: control on p_i, target on p_j (edge direction matches).
      forward_terms.push_back(
          lit(engine_.make_and(lit(x_var(k, pi, qc)), lit(x_var(k, pj, qt)))));
      // Reverse: target on p_i, control on p_j (needs 4 H gates).
      reverse_terms.push_back(
          lit(engine_.make_and(lit(x_var(k, pi, qt)), lit(x_var(k, pj, qc)))));
      clause_count_ += 6;
      var_count_ += 2;
    }
    // Eq. (2): some orientation must be executable.
    std::vector<int> any;
    any.reserve(forward_terms.size() + reverse_terms.size());
    any.insert(any.end(), forward_terms.begin(), forward_terms.end());
    any.insert(any.end(), reverse_terms.begin(), reverse_terms.end());
    engine_.add_at_least_one(any);
    ++clause_count_;

    // Eq. (4), strengthened: z^k ↔ reverse-only placement.
    const int fwd_or = engine_.make_or(forward_terms);
    const int rev_or = engine_.make_or(reverse_terms);
    z_[static_cast<std::size_t>(k)] = engine_.make_and(lit(rev_or), -lit(fwd_or));
    var_count_ += 3;
    clause_count_ += 2 * (forward_terms.size() + 1) + 3;
    engine_.add_cost(z_[static_cast<std::size_t>(k)], costs_.reverse_cost);
  }

  // --- Eq. (3): mapping changes only at permutation points --------------
  y_.resize(perm_points_.size());
  std::size_t point_idx = 0;
  for (int k = 1; k < num_gates_; ++k) {
    const bool is_point = point_idx < perm_points_.size() &&
                          perm_points_[point_idx] == static_cast<std::size_t>(k);
    if (!is_point) {
      // Hard equality x^{k-1} = x^k (no permutation allowed here, Sec. 4.2).
      for (int i = 0; i < m_; ++i) {
        for (int j = 0; j < n_; ++j) {
          engine_.add_equal_lits(lit(x_var(k - 1, i, j)), lit(x_var(k, i, j)));
          clause_count_ += 2;
        }
      }
      continue;
    }
    auto& ys = y_[point_idx];
    ys.reserve(perms_.size());
    std::vector<int> y_lits;
    y_lits.reserve(perms_.size());
    for (std::size_t p = 0; p < perms_.size(); ++p) {
      const int yv = engine_.new_bool();
      ++var_count_;
      ys.push_back(yv);
      y_lits.push_back(lit(yv));
      // y^k_π → ∧_{i,j} (x^{k-1}_ij = x^k_{π(i)j})
      const Permutation& pi = perms_[p];
      for (int i = 0; i < m_; ++i) {
        for (int j = 0; j < n_; ++j) {
          engine_.add_implies_equal(lit(yv), lit(x_var(k - 1, i, j)),
                                    lit(x_var(k, pi.at(static_cast<std::size_t>(i)), j)));
          clause_count_ += 2;
        }
      }
      // Eq. (5) contribution: 7·swaps(π) when this permutation is applied.
      const int sw = perm_swaps_[p];
      if (sw > 0) engine_.add_cost(yv, static_cast<long long>(costs_.swap_cost) * sw);
    }
    engine_.add_exactly_one(y_lits);
    clause_count_ += 1 + 3 * perms_.size();
    ++point_idx;
  }
}

Encoding::Solution Encoding::decode() const {
  Solution sol;
  sol.layouts.assign(static_cast<std::size_t>(num_gates_),
                     std::vector<int>(static_cast<std::size_t>(n_), -1));
  for (int k = 0; k < num_gates_; ++k) {
    for (int j = 0; j < n_; ++j) {
      for (int i = 0; i < m_; ++i) {
        if (engine_.value(x_var(k, i, j))) {
          if (sol.layouts[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] != -1) {
            throw std::logic_error("Encoding::decode: logical qubit mapped twice");
          }
          sol.layouts[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] = i;
        }
      }
      if (sol.layouts[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)] == -1) {
        throw std::logic_error("Encoding::decode: logical qubit unmapped");
      }
    }
  }
  sol.reversed.resize(static_cast<std::size_t>(num_gates_));
  for (int k = 0; k < num_gates_; ++k) {
    sol.reversed[static_cast<std::size_t>(k)] = engine_.value(z_[static_cast<std::size_t>(k)]);
    if (sol.reversed[static_cast<std::size_t>(k)]) sol.cost_f += costs_.reverse_cost;
  }
  for (std::size_t p = 0; p < perm_points_.size(); ++p) {
    int chosen = -1;
    for (std::size_t q = 0; q < perms_.size(); ++q) {
      if (engine_.value(y_[p][q])) {
        if (chosen != -1) throw std::logic_error("Encoding::decode: two permutations chosen");
        chosen = static_cast<int>(q);
      }
    }
    if (chosen == -1) throw std::logic_error("Encoding::decode: no permutation chosen at point");
    sol.point_perms.push_back(perms_[static_cast<std::size_t>(chosen)]);
    sol.cost_f += static_cast<long long>(costs_.swap_cost) *
                  perm_swaps_[static_cast<std::size_t>(chosen)];
  }
  return sol;
}

}  // namespace qxmap::exact
