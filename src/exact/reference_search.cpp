#include "exact/reference_search.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "arch/swap_cost_cache.hpp"
#include "common/permutation.hpp"

namespace qxmap::exact {

namespace {

constexpr long long kInf = std::numeric_limits<long long>::max() / 4;

/// All injective placements logical → physical as vectors of length n.
std::vector<std::vector<int>> all_placements(int m, int n) {
  std::set<std::vector<int>> dedup;
  for (const auto& pi : Permutation::all(static_cast<std::size_t>(m))) {
    std::vector<int> placement(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) placement[static_cast<std::size_t>(j)] = pi.at(static_cast<std::size_t>(j));
    dedup.insert(std::move(placement));
  }
  return {dedup.begin(), dedup.end()};
}

}  // namespace

ReferenceResult minimal_cost_reference(const std::vector<Gate>& cnots, int num_logical,
                                       const arch::CouplingMap& cm,
                                       const arch::SwapCostTable& table,
                                       const std::vector<std::size_t>& perm_points,
                                       const CostModel& costs) {
  const int m = cm.num_physical();
  const int n = num_logical;
  if (m > 8) throw std::invalid_argument("minimal_cost_reference: m > 8 not supported");
  if (n > m) throw std::invalid_argument("minimal_cost_reference: n > m");
  if (cnots.empty()) return {true, 0};
  if (costs.swap_cost <= 0) throw std::invalid_argument("minimal_cost_reference: unresolved costs");

  const auto placements = all_placements(m, n);
  const auto S = placements.size();
  const std::set<std::size_t> points(perm_points.begin(), perm_points.end());

  // Transition costs: minimal SWAPs turning placement s into placement s'
  // = min over full permutations π consistent with both (π maps s[j] to
  // s'[j]; the m-n free positions may permute arbitrarily).
  std::map<std::pair<std::size_t, std::size_t>, int> min_swaps_cache;
  const auto transition_swaps = [&](std::size_t s, std::size_t sp) -> int {
    const auto key = std::make_pair(s, sp);
    if (const auto it = min_swaps_cache.find(key); it != min_swaps_cache.end()) return it->second;
    const auto& a = placements[s];
    const auto& b = placements[sp];
    // Free positions (not used by a / b respectively).
    std::vector<int> free_a;
    std::vector<int> free_b;
    std::vector<bool> used_a(static_cast<std::size_t>(m), false);
    std::vector<bool> used_b(static_cast<std::size_t>(m), false);
    for (int j = 0; j < n; ++j) {
      used_a[static_cast<std::size_t>(a[static_cast<std::size_t>(j)])] = true;
      used_b[static_cast<std::size_t>(b[static_cast<std::size_t>(j)])] = true;
    }
    for (int i = 0; i < m; ++i) {
      if (!used_a[static_cast<std::size_t>(i)]) free_a.push_back(i);
      if (!used_b[static_cast<std::size_t>(i)]) free_b.push_back(i);
    }
    int best = std::numeric_limits<int>::max();
    // Enumerate bijections free_a → free_b via permutations of indices.
    std::vector<int> idx(free_a.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<int>(i);
    do {
      std::vector<int> images(static_cast<std::size_t>(m), -1);
      for (int j = 0; j < n; ++j) {
        images[static_cast<std::size_t>(a[static_cast<std::size_t>(j)])] =
            b[static_cast<std::size_t>(j)];
      }
      for (std::size_t f = 0; f < free_a.size(); ++f) {
        images[static_cast<std::size_t>(free_a[f])] = free_b[static_cast<std::size_t>(idx[f])];
      }
      best = std::min(best, table.swaps(Permutation(std::move(images))));
    } while (std::next_permutation(idx.begin(), idx.end()));
    min_swaps_cache.emplace(key, best);
    return best;
  };

  // Per-gate execution penalty at a placement (or -1 if not executable).
  const auto exec_penalty = [&](std::size_t s, const Gate& g) -> int {
    const int pc = placements[s][static_cast<std::size_t>(g.control)];
    const int pt = placements[s][static_cast<std::size_t>(g.target)];
    if (cm.allows(pc, pt)) return 0;
    if (cm.allows(pt, pc)) return costs.reverse_cost;
    return -1;
  };

  // DP over "placement before gate k".
  std::vector<long long> dp(S, 0);  // dp before gate 0: initial mapping is free
  for (std::size_t k = 0; k < cnots.size(); ++k) {
    std::vector<long long> done(S, kInf);  // cost after executing gate k at placement s
    for (std::size_t s = 0; s < S; ++s) {
      if (dp[s] >= kInf) continue;
      const int pen = exec_penalty(s, cnots[k]);
      if (pen < 0) continue;
      done[s] = dp[s] + pen;
    }
    if (k + 1 == cnots.size()) {
      dp = std::move(done);
      break;
    }
    // Move to the placement before gate k+1.
    std::vector<long long> next(S, kInf);
    if (!points.contains(k + 1)) {
      next = done;  // no permutation allowed: placement must stay
    } else {
      for (std::size_t s = 0; s < S; ++s) {
        if (done[s] >= kInf) continue;
        for (std::size_t sp = 0; sp < S; ++sp) {
          const long long c =
              done[s] + static_cast<long long>(costs.swap_cost) * transition_swaps(s, sp);
          next[sp] = std::min(next[sp], c);
        }
      }
    }
    dp = std::move(next);
  }

  const long long best = *std::min_element(dp.begin(), dp.end());
  if (best >= kInf) return {false, 0};
  return {true, best};
}

ReferenceResult minimal_cost_reference(const std::vector<Gate>& cnots, int num_logical,
                                       const arch::CouplingMap& cm,
                                       const std::vector<std::size_t>& perm_points,
                                       const CostModel& costs) {
  const auto table = arch::SwapCostCache::instance().table(cm);
  return minimal_cost_reference(cnots, num_logical, cm, *table, perm_points, costs);
}

}  // namespace qxmap::exact
