#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "arch/coupling_map.hpp"
#include "exact/swap_synthesis.hpp"
#include "exact/types.hpp"

namespace qxmap::exact {

std::string to_string(CostObjective o) {
  switch (o) {
    case CostObjective::GateCount: return "gate_count";
    case CostObjective::ErrorWeighted: return "error_weighted";
  }
  return "?";
}

namespace {

/// Scaled -log10 reliability of a gate sequence with `cnots` CNOTs and
/// `singles` single-qubit gates, clamped to a positive integer so the
/// solver's "every permutation change costs something" invariant holds even
/// for near-perfect devices.
int error_weight(int cnots, int singles, double cnot_error, double single_error, int scale) {
  const double log_loss = -(static_cast<double>(cnots) * std::log10(1.0 - cnot_error) +
                            static_cast<double>(singles) * std::log10(1.0 - single_error));
  const long long w = std::llround(static_cast<double>(scale) * log_loss);
  return static_cast<int>(std::max(1LL, w));
}

}  // namespace

CostModel CostModel::resolved(const arch::CouplingMap& cm) const {
  CostModel r = *this;
  switch (objective) {
    case CostObjective::GateCount:
      if (r.swap_cost <= 0) r.swap_cost = swap_gate_cost(cm);
      return r;
    case CostObjective::ErrorWeighted: {
      if (error_scale <= 0) {
        throw std::invalid_argument("CostModel::resolved: error_scale must be positive");
      }
      const double ce = cm.mean_cnot_error(cnot_error);
      const double se = cm.mean_single_qubit_error(single_qubit_error);
      if (!(ce >= 0.0) || ce >= 1.0 || !(se >= 0.0) || se >= 1.0) {
        throw std::invalid_argument("CostModel::resolved: error rates must lie in [0, 1)");
      }
      // Fig. 3 constructs: a SWAP is 3 CNOTs plus 4 H on one-directional
      // architectures (3 CNOTs when bidirected); a reversal is 4 H.
      const int swap_h = swap_gate_cost(cm) == 7 ? 4 : 0;
      r.swap_cost = error_weight(3, swap_h, ce, se, error_scale);
      r.reverse_cost = error_weight(0, 4, ce, se, error_scale);
      return r;
    }
  }
  throw std::logic_error("CostModel::resolved: unknown objective");
}

long long CostModel::result_cost(int swaps, int reversed) const {
  if (swap_cost <= 0) {
    throw std::logic_error("CostModel::result_cost: model not resolved (swap_cost <= 0)");
  }
  return static_cast<long long>(swap_cost) * swaps +
         static_cast<long long>(reverse_cost) * reversed;
}

}  // namespace qxmap::exact
