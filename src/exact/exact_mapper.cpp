#include "exact/exact_mapper.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "arch/distances.hpp"
#include "arch/subsets.hpp"
#include "arch/swap_cost_cache.hpp"
#include "arch/swap_costs.hpp"
#include "exact/encoder.hpp"
#include "exact/shard_executor.hpp"
#include "exact/strategies.hpp"
#include "exact/swap_synthesis.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/equivalence.hpp"
#include "sim/linear_reversible.hpp"

namespace qxmap::exact {

namespace {

using Clock = std::chrono::steady_clock;

/// Best instance found across subsets.
struct InstanceSolution {
  Encoding::Solution solution;
  std::vector<int> subset;  // local physical index -> global physical qubit
  std::shared_ptr<const arch::SwapCostTable> table;
  reason::Status status;
};

/// Rebuilds the physical circuit and the routing skeleton from a decoded
/// model. Returns {mapped, skeleton, initial, final, swaps, reversed}.
struct Reconstruction {
  Circuit mapped;
  Circuit skeleton;
  std::vector<int> initial_layout;
  std::vector<int> final_layout;
  int swaps = 0;
  int reversed = 0;
};

Reconstruction reconstruct(const Circuit& original, const arch::CouplingMap& cm,
                           const InstanceSolution& best,
                           const std::vector<std::size_t>& points) {
  const int n = original.num_qubits();
  const int m = cm.num_physical();
  Reconstruction out{Circuit(m, original.name() + "/mapped"),
                     Circuit(m, original.name() + "/routed-skeleton"),
                     {},
                     {},
                     0,
                     0};

  const auto& subset = best.subset;
  const auto& layouts = best.solution.layouts;

  // Current layout: logical j -> global physical qubit.
  std::vector<int> cur(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    cur[static_cast<std::size_t>(j)] =
        subset[static_cast<std::size_t>(layouts[0][static_cast<std::size_t>(j)])];
  }
  out.initial_layout = cur;

  std::size_t k = 0;          // CNOT index
  std::size_t point_idx = 0;  // index into points / point_perms
  for (const auto& g : original) {
    if (g.kind == OpKind::Barrier) {
      out.mapped.append(g);
      continue;
    }
    if (g.is_nonunitary() || g.is_single_qubit()) {
      // remapped() keeps params and any classical guard.
      out.mapped.append(g.remapped(cur[static_cast<std::size_t>(g.target)]));
      continue;
    }
    // CNOT: first apply the permutation scheduled before this gate, if any.
    if (point_idx < points.size() && points[point_idx] == k) {
      const Permutation& pi = best.solution.point_perms[point_idx];
      for (const auto& [a, b] : best.table->swap_sequence(pi)) {
        const int ga = subset[static_cast<std::size_t>(a)];
        const int gb = subset[static_cast<std::size_t>(b)];
        append_swap_realisation(out.mapped, cm, ga, gb);
        out.skeleton.swap(ga, gb);
        ++out.swaps;
        for (auto& p : cur) {
          if (p == ga) {
            p = gb;
          } else if (p == gb) {
            p = ga;
          }
        }
      }
      ++point_idx;
    }
    // Cross-check the walked layout against the model's x variables.
    for (int j = 0; j < n; ++j) {
      const int expected =
          subset[static_cast<std::size_t>(layouts[k][static_cast<std::size_t>(j)])];
      if (cur[static_cast<std::size_t>(j)] != expected) {
        throw std::logic_error("map_exact: reconstructed layout diverges from model");
      }
    }
    const int pc = cur[static_cast<std::size_t>(g.control)];
    const int pt = cur[static_cast<std::size_t>(g.target)];
    out.skeleton.cnot(pc, pt);
    if (!cm.allows(pc, pt)) ++out.reversed;
    append_cnot_realisation(out.mapped, cm, pc, pt, g.condition);
    ++k;
  }
  out.final_layout = cur;
  return out;
}

/// Deterministic greedy warm start: routes the circuit with shortest-path
/// SWAP chains from the identity layout (ties toward the lowest-numbered
/// neighbour). Its added cost is a feasible value of Eq. (5)'s objective —
/// the paper's Sec. 3.3 observation that F can "simply [be] set to a fixed
/// value" — so it seeds the shared bound before the first solve: the GTE is
/// clamped at the warm-start cost from the outset instead of at whatever
/// first model the unbounded search wanders into. Only sound when the
/// symbolic instance can express any swap placement (PermutationStrategy::
/// All over the full architecture); restricted strategies and proper
/// subsets may not contain the greedy schedule.
Reconstruction greedy_route(const Circuit& circuit, const arch::CouplingMap& cm) {
  const int n = circuit.num_qubits();
  const int m = cm.num_physical();
  Reconstruction out{Circuit(m, circuit.name() + "/mapped"),
                     Circuit(m, circuit.name() + "/routed-skeleton"),
                     {},
                     {},
                     0,
                     0};
  const auto dist_handle = arch::SwapCostCache::instance().distances(cm);
  const arch::DistanceMatrix& dist = *dist_handle;

  std::vector<int> cur(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) cur[static_cast<std::size_t>(j)] = j;
  out.initial_layout = cur;

  for (const auto& g : circuit) {
    if (g.kind == OpKind::Barrier) {
      out.mapped.append(g);
      continue;
    }
    if (g.is_nonunitary() || g.is_single_qubit()) {
      out.mapped.append(g.remapped(cur[static_cast<std::size_t>(g.target)]));
      continue;
    }
    for (;;) {
      const int pc = cur[static_cast<std::size_t>(g.control)];
      const int pt = cur[static_cast<std::size_t>(g.target)];
      if (cm.coupled(pc, pt)) break;
      // Walk the control one hop toward the target.
      int best_nb = -1;
      int best_d = dist.hops(pc, pt);
      for (const int nb : cm.neighbours(pc)) {
        if (dist.hops(nb, pt) < best_d) {
          best_d = dist.hops(nb, pt);
          best_nb = nb;
        }
      }
      if (best_nb < 0) throw std::logic_error("map_exact: greedy warm start cannot progress");
      append_swap_realisation(out.mapped, cm, pc, best_nb);
      out.skeleton.swap(pc, best_nb);
      ++out.swaps;
      for (auto& p : cur) {
        if (p == pc) {
          p = best_nb;
        } else if (p == best_nb) {
          p = pc;
        }
      }
    }
    const int pc = cur[static_cast<std::size_t>(g.control)];
    const int pt = cur[static_cast<std::size_t>(g.target)];
    out.skeleton.cnot(pc, pt);
    if (!cm.allows(pc, pt)) ++out.reversed;
    append_cnot_realisation(out.mapped, cm, pc, pt, g.condition);
  }
  out.final_layout = cur;
  return out;
}

/// Trivial result for circuits without CNOTs: identity placement.
MappingResult map_without_cnots(const Circuit& circuit, const arch::CouplingMap& cm) {
  MappingResult res;
  res.mapped = Circuit(cm.num_physical(), circuit.name() + "/mapped");
  res.routed_skeleton = Circuit(cm.num_physical(), circuit.name() + "/routed-skeleton");
  for (const auto& g : circuit) res.mapped.append(g);
  for (int j = 0; j < circuit.num_qubits(); ++j) {
    res.initial_layout.push_back(j);
    res.final_layout.push_back(j);
  }
  res.status = reason::Status::Optimal;
  res.cost_f = 0;
  res.permutation_points = 1;
  res.verified = true;
  res.verify_message = "no CNOT constraints to satisfy";
  return res;
}

/// Per-subset outcome collected by the executor tasks. Each task writes its
/// own slot, so no slot-level synchronisation is needed.
struct InstanceOutcome {
  reason::Status status = reason::Status::Unknown;
  std::optional<Encoding::Solution> solution;
  std::shared_ptr<const arch::SwapCostTable> table;
};

std::size_t resolve_num_threads(int requested, std::size_t num_instances) {
  if (requested < 0) {
    throw std::invalid_argument("map_exact: num_threads must be >= 0");
  }
  std::size_t threads = requested == 0
                            ? std::max(1u, std::thread::hardware_concurrency())
                            : static_cast<std::size_t>(requested);
  return std::min(threads, num_instances);
}

/// Resolves a scheduler Toggle: Auto defers to the named environment
/// variable, where `off` / `0` / `false` (any case) disable and anything
/// else — including unset — enables. See docs/concurrency.md.
bool resolve_toggle(Toggle toggle, const char* env_name) {
  if (toggle == Toggle::On) return true;
  if (toggle == Toggle::Off) return false;
  const char* value = std::getenv(env_name);
  if (value == nullptr) return true;
  std::string v(value);
  for (char& c : v) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return !(v == "off" || v == "0" || v == "false");
}

/// Hardness proxy per instance for the work-stealing priority order: the
/// undirected edge count of the induced coupling subgraph. Sparse subsets
/// need more SWAPs, so their descending search runs longest; starting them
/// while the shared Eq. (5) bound is still loose maximises how much of
/// that work later bounds can abort, while dense subsets finish quickly
/// anywhere and publish tight bounds early. The ShardExecutor queue orders
/// tasks by (priority, request, index), so within one request equal-edge
/// instances keep subset-index order — exactly the old stable sort.
/// Accumulates per-phase wall time for MappingResult::trace_summary. Only
/// populated while tracing is enabled (checked once, at map_exact entry);
/// shard-side phases sum across threads, so encode/solve can exceed the
/// request's wall time under parallelism.
struct PhaseTimes {
  bool active = false;
  std::atomic<std::uint64_t> encode_ns{0};
  std::atomic<std::uint64_t> solve_ns{0};
  std::uint64_t subsets_ns = 0;
  std::uint64_t warm_start_ns = 0;
  std::uint64_t prefix_ns = 0;
  std::uint64_t canonical_ns = 0;
  std::uint64_t reconstruct_ns = 0;
  std::uint64_t verify_ns = 0;

  [[nodiscard]] std::string table(std::uint64_t total_ns) const {
    const auto line = [](std::string name, std::uint64_t ns) {
      name.resize(18, ' ');
      const std::uint64_t tenth_ms = ns / 100000;
      return name + std::to_string(tenth_ms / 10) + "." + std::to_string(tenth_ms % 10) +
             " ms\n";
    };
    std::string out;
    out += line("subsets", subsets_ns);
    out += line("warm_start", warm_start_ns);
    out += line("prefix", prefix_ns);
    out += line("encode*", encode_ns.load(std::memory_order_relaxed));
    out += line("solve*", solve_ns.load(std::memory_order_relaxed));
    out += line("canonical_resolve", canonical_ns);
    out += line("reconstruct", reconstruct_ns);
    out += line("verify", verify_ns);
    out += line("total", total_ns);
    out += "(* summed across shard threads)\n";
    return out;
  }
};

std::uint64_t elapsed_ns(Clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - since).count());
}

std::vector<long long> instance_hardness(const arch::CouplingMap& cm,
                                         const std::vector<std::vector<int>>& instances) {
  std::vector<long long> edges(instances.size(), 0);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const auto& subset = instances[i];
    for (std::size_t a = 0; a < subset.size(); ++a) {
      for (std::size_t b = a + 1; b < subset.size(); ++b) {
        if (cm.coupled(subset[a], subset[b])) ++edges[i];
      }
    }
  }
  return edges;
}

}  // namespace

MappingResult map_exact(const Circuit& circuit, const arch::CouplingMap& cm,
                        const ExactOptions& options) {
  const auto start = Clock::now();
  const int n = circuit.num_qubits();
  const int m = cm.num_physical();
  if (n > m) {
    throw std::invalid_argument("map_exact: circuit needs more qubits than the architecture has");
  }
  if (circuit.counts().swap > 0) {
    // Raw swap pseudo-gates in the *input* are decomposed here (Fig. 3 form)
    // and their elementary gates routed like any others.
    return map_exact(circuit.with_swaps_expanded(), cm, options);
  }

  obs::Span map_span("exact.map", "exact");
  map_span.attr("circuit", circuit.name());
  map_span.attr("arch", cm.name());
  static obs::Counter& maps_total = obs::MetricsRegistry::instance().counter(
      "qxmap_exact_maps_total", "map_exact calls reaching the solver pipeline");
  maps_total.inc();
  // Phase timing for MappingResult::trace_summary; decided once so a
  // mid-request set_enabled flip cannot produce a half-filled table.
  PhaseTimes phases;
  phases.active = obs::TraceRecorder::enabled();

  // CNOT skeleton.
  std::vector<Gate> cnots;
  for (const auto& g : circuit) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  if (cnots.empty()) {
    MappingResult trivial = map_without_cnots(circuit, cm);
    trivial.objective = to_string(options.costs.objective);
    return trivial;
  }

  const CostModel costs = options.costs.resolved(cm);

  const auto points = permutation_points(cnots, options.strategy, cm);

  // Instance list (Sec. 4.1).
  const auto subsets_t0 = Clock::now();
  std::vector<std::vector<int>> instances;
  if (options.use_subsets && n < m) {
    obs::Span span("exact.subsets", "exact");
    instances = arch::connected_subsets(cm, n);
    span.attr("count", instances.size());
    if (instances.empty()) {
      throw std::invalid_argument("map_exact: no connected subset of the required size");
    }
  } else {
    if (m > 8) {
      throw std::invalid_argument(
          "map_exact: architectures with m > 8 require use_subsets (Π enumeration)");
    }
    std::vector<int> all(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) all[static_cast<std::size_t>(i)] = i;
    instances.push_back(std::move(all));
  }
  if (phases.active) phases.subsets_ns = elapsed_ns(subsets_t0);
  map_span.attr("instances", instances.size());

  // Budget: one shared deadline for the whole instance sweep. Each shard
  // grants its next instance an equal share of the time still left (divided
  // by the number of instance "rounds" remaining across the pool), so time
  // unused by easy, skipped or Unsat instances flows to the hard ones
  // instead of expiring with them. `nominal_share` — the old fixed split —
  // caps the canonical re-solve after the reduction.
  const auto overall_deadline = start + options.budget;
  const auto nominal_share = std::chrono::milliseconds(
      std::max<long long>(1, options.budget.count() / static_cast<long long>(instances.size())));

  MappingResult res;
  // Report the engine that actually runs, not the requested kind: without
  // Z3 support, make_engine(EngineKind::Z3) degrades to the CDCL backend.
  res.engine_name = reason::make_engine(options.engine)->name();
  res.permutation_points = static_cast<int>(points.size()) + 1;
  res.objective = to_string(costs.objective);

  // --- Shard the subset instances through the process-wide executor ------
  //
  // The full protocol — shard lifecycle, shared-bound memory ordering, the
  // work-stealing pop order, and the determinism argument — is specified in
  // docs/concurrency.md; the comments here are the short version.
  //
  // Each instance becomes one task on the shared ShardExecutor (so shards
  // of concurrent map() calls interleave through a single pool instead of
  // one pool per call); `options.num_threads` survives as this request's
  // concurrency cap. Tasks pop in priority order (hardest-first under work
  // stealing, subset-index order otherwise). Each executing thread owns its
  // engine (the CDCL solver is not thread-safe), scoped to *this request*
  // so the bound-source closures below never outlive the atomics they read.
  // A shared atomic bound carries the best model cost found so far: shards
  // start their Eq. (5) search with objective <= bound enforced, and — with
  // cooperative tightening — keep polling it at engine checkpoints
  // *mid-solve*, aborting branches that can no longer beat the incumbent.
  //
  // Determinism: the reduction below selects the lowest cost with ties
  // broken on the lowest subset index. A shard's reported optimum is
  // independent of the bounds it observed (bounds are inclusive and never
  // drop below the final best cost), so the selected (cost, index) pair is
  // bit-identical at every thread count and under either pop order; the
  // winning *model* is then re-derived canonically after the reduction.
  // When a shard proves a zero-cost solution — the objective's lower
  // bound — instances at *higher* indices are skipped: they can at best tie
  // and lose the index tie-break. Lower indices still run, preserving the
  // tie-break winner.
  constexpr long long kNoBound = std::numeric_limits<long long>::max();
  const bool steal = resolve_toggle(options.work_stealing, "QXMAP_EXACT_STEAL");
  const bool tighten = resolve_toggle(options.cooperative_tightening, "QXMAP_EXACT_TIGHTEN");
  std::vector<long long> priorities(instances.size());
  if (steal && instances.size() > 1) {
    priorities = instance_hardness(cm, instances);
  } else {
    std::iota(priorities.begin(), priorities.end(), 0LL);
  }

  // Warm start: with a single instance under the All strategy, the symbolic
  // formulation can express every swap schedule, so the greedy route's cost
  // is a feasible objective value and seeds the bound (see greedy_route).
  std::optional<Reconstruction> warm;
  long long warm_cost = kNoBound;
  if (instances.size() == 1 && options.strategy == PermutationStrategy::All) {
    const auto t0 = Clock::now();
    obs::Span span("exact.warm_start", "exact");
    warm = greedy_route(circuit, cm);
    // The bound lives in resolved objective units, not emitted-gate units —
    // they differ under ErrorWeighted and under explicit weight overrides.
    warm_cost = costs.result_cost(warm->swaps, warm->reversed);
    span.attr("cost", warm_cost);
    if (phases.active) phases.warm_start_ns = elapsed_ns(t0);
  }

  // Shared encoding prefix (Sec. 4.1): every subset instance of an n-qubit
  // circuit induces an n-qubit coupling map, so the x/y skeleton — Eq. (1)
  // and Eq. (3) — is byte-identical across instances. Build it once as an
  // engine-agnostic clause list; shards replay it into their engine for the
  // first instance and reset_to_prefix() for every later one (backends
  // without snapshot support just replay again from the list, still
  // skipping the per-instance constraint derivation).
  std::optional<Encoding::Prefix> prefix;
  if (instances.size() > 1) {
    const auto t0 = Clock::now();
    obs::Span span("exact.prefix", "exact");
    prefix.emplace(Encoding::build_prefix(cnots, n, n, points));
    if (phases.active) phases.prefix_ns = elapsed_ns(t0);
  }

  const std::size_t num_threads = resolve_num_threads(options.num_threads, instances.size());

  std::atomic<std::size_t> started{0};
  std::atomic<long long> shared_bound{warm_cost};
  std::atomic<long long> zero_index{kNoBound};  // lowest index proving cost 0
  std::atomic<long long> total_polls{0};
  std::atomic<long long> total_tightenings{0};
  std::atomic<bool> failed{false};
  std::vector<InstanceOutcome> outcomes(instances.size());
  std::mutex error_mutex;
  std::exception_ptr worker_error;

  // One engine per executing thread, reused across this request's instances
  // via the prefix snapshot — but owned by *this* stack frame, not the
  // executor thread: the engines (and the bound-source closures they hold
  // over `shared_bound`) are destroyed with the request, before the atomics
  // they capture. Engine stats are cumulative per engine, so per-instance
  // contributions are deltas against the last observed counters.
  struct EngineSlot {
    std::unique_ptr<reason::ReasoningEngine> engine;
    long long seen_polls = 0;
    long long seen_tightenings = 0;
  };
  std::mutex slots_mutex;
  std::unordered_map<std::thread::id, EngineSlot> slots;

  const auto solve_instance = [&](std::size_t i) {
    // Every pop counts toward `started` (skips included) so budget shares
    // track the queue position exactly like the old shared-counter pops.
    const std::size_t pos = started.fetch_add(1, std::memory_order_relaxed);
    if (failed.load(std::memory_order_acquire)) return;
    if (static_cast<long long>(i) > zero_index.load(std::memory_order_acquire)) return;
    obs::Span shard_span("exact.shard", "exact");
    shard_span.attr("instance", i);
    try {
      EngineSlot* slot = nullptr;
      {
        const std::lock_guard<std::mutex> guard(slots_mutex);
        // Pointers into an unordered_map stay valid across rehash.
        slot = &slots[std::this_thread::get_id()];
      }
      InstanceOutcome& out = outcomes[i];
      const arch::CouplingMap induced = cm.induced(instances[i]);
      out.table = arch::SwapCostCache::instance().table(induced);
      const bool holds_prefix = slot->engine && prefix && slot->engine->reset_to_prefix();
      if (!holds_prefix) {
        slot->engine = reason::make_engine(options.engine);
        slot->seen_polls = 0;
        slot->seen_tightenings = 0;
      }
      reason::ReasoningEngine& engine = *slot->engine;
      engine.set_optimization_mode(options.optimization);
      std::optional<Encoding> enc;
      {
        const auto t0 = Clock::now();
        obs::Span span("exact.encode", "exact");
        span.attr("prefix_reused", holds_prefix);
        if (prefix) {
          enc.emplace(engine, *prefix, induced, *out.table, costs, holds_prefix);
        } else {
          enc.emplace(engine, cnots, n, induced, *out.table, points, costs);
        }
        if (phases.active) {
          phases.encode_ns.fetch_add(elapsed_ns(t0), std::memory_order_relaxed);
        }
      }
      const long long bound = shared_bound.load(std::memory_order_acquire);
      if (bound != kNoBound) engine.set_upper_bound(bound);
      if (tighten && instances.size() > 1) {
        // Live view of the shared bound: the engine re-tightens its GTE /
        // PB constraint whenever a sibling publishes a cheaper model.
        // Pointless with a single instance (no sibling can publish), and
        // skipping it there spares the engine its checkpoint overhead —
        // the Z3 backend in particular trades contiguous search time for
        // poll opportunities (see Z3Engine::kPollInterval).
        engine.set_bound_source([&shared_bound] {
          return shared_bound.load(std::memory_order_acquire);
        });
      }
      // This instance's share of the remaining budget: the time left to
      // the shared deadline, divided by the rounds of instances this
      // request still has to absorb (this one included).
      const std::size_t rounds = (instances.size() - pos + num_threads - 1) / num_threads;
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          overall_deadline - Clock::now());
      const auto share = std::chrono::milliseconds(
          std::max<long long>(1, left.count() / static_cast<long long>(rounds)));
      const auto solve_t0 = Clock::now();
      reason::Outcome outcome;
      {
        obs::Span span("exact.solve", "exact");
        span.attr("budget_ms", static_cast<long long>(share.count()));
        outcome = engine.minimize(share);
        span.attr("status", reason::to_string(outcome.status));
      }
      if (phases.active) {
        phases.solve_ns.fetch_add(elapsed_ns(solve_t0), std::memory_order_relaxed);
      }
      total_polls.fetch_add(engine.stats().bound_polls - slot->seen_polls,
                            std::memory_order_relaxed);
      total_tightenings.fetch_add(engine.stats().bound_tightenings - slot->seen_tightenings,
                                  std::memory_order_relaxed);
      slot->seen_polls = engine.stats().bound_polls;
      slot->seen_tightenings = engine.stats().bound_tightenings;
      out.status = outcome.status;
      if (outcome.status != reason::Status::Optimal &&
          outcome.status != reason::Status::Feasible) {
        return;
      }
      out.solution = enc->decode();
      const long long cost = out.solution->cost_f;
      long long cur = shared_bound.load(std::memory_order_acquire);
      while (cost < cur &&
             !shared_bound.compare_exchange_weak(cur, cost, std::memory_order_acq_rel)) {
      }
      if (cost == 0) {
        long long zi = zero_index.load(std::memory_order_acquire);
        const auto me = static_cast<long long>(i);
        while (me < zi && !zero_index.compare_exchange_weak(zi, me, std::memory_order_acq_rel)) {
        }
      }
    } catch (...) {
      {
        const std::lock_guard<std::mutex> guard(error_mutex);
        if (!worker_error) worker_error = std::current_exception();
      }
      // Make the remaining tasks no-ops so siblings stop promptly instead
      // of solving instances whose results the rethrow below will discard.
      failed.store(true, std::memory_order_release);
    }
  };

  ShardExecutor& executor = ShardExecutor::instance();
  executor.run_to_completion(executor.submit(solve_instance, priorities, num_threads));
  if (worker_error) std::rethrow_exception(worker_error);
  res.bound_polls = total_polls.load(std::memory_order_relaxed);
  res.bound_tightenings = total_tightenings.load(std::memory_order_relaxed);
  static obs::Counter& instances_total = obs::MetricsRegistry::instance().counter(
      "qxmap_exact_instances_solved_total", "Subset-instance shard tasks run to a verdict");
  instances_total.inc(static_cast<std::uint64_t>(started.load(std::memory_order_relaxed)));

  // --- Deterministic reduction -------------------------------------------
  // Truncate at the first zero-cost subset (everything after it was either
  // skipped or can only lose the tie-break), then scan in index order.
  std::size_t effective = instances.size();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].solution && outcomes[i].solution->cost_f == 0) {
      effective = i + 1;
      break;
    }
  }

  std::optional<InstanceSolution> best;
  bool any_feasible_not_optimal = false;
  bool any_unknown = false;
  for (std::size_t i = 0; i < effective; ++i) {
    InstanceOutcome& out = outcomes[i];
    ++res.instances_solved;
    if (out.status == reason::Status::Unsat) continue;
    if (out.status == reason::Status::Unknown) {
      any_unknown = true;
      continue;
    }
    if (out.status == reason::Status::Feasible) any_feasible_not_optimal = true;
    if (!out.solution) continue;
    if (!best || out.solution->cost_f < best->solution.cost_f) {
      best = InstanceSolution{std::move(*out.solution), instances[i], std::move(out.table),
                              out.status};
    }
  }

  if (!best) {
    if (warm) {
      // Budget expired before any model under the seeded bound was found;
      // fall back to the warm start itself (feasible by construction).
      res.mapped = std::move(warm->mapped);
      res.routed_skeleton = std::move(warm->skeleton);
      res.initial_layout = std::move(warm->initial_layout);
      res.final_layout = std::move(warm->final_layout);
      res.swaps_inserted = warm->swaps;
      res.cnots_reversed = warm->reversed;
      res.cost_f = static_cast<long long>(res.mapped.size()) -
                   static_cast<long long>(circuit.size());
      res.objective_cost = warm_cost;
      res.status = reason::Status::Feasible;
      if (options.verify) {
        const bool gf2_ok =
            sim::implements_skeleton(circuit.cnot_skeleton(), res.routed_skeleton,
                                     res.initial_layout, res.final_layout);
        res.verified = gf2_ok;
        res.verify_message = std::string("gf2: ") + (gf2_ok ? "ok" : "FAILED") +
                             "; warm-start fallback (engine found no model in budget)";
      }
      res.seconds = std::chrono::duration<double>(Clock::now() - start).count();
      if (phases.active) res.trace_summary = phases.table(elapsed_ns(start));
      return res;
    }
    res.status = any_unknown ? reason::Status::Unknown : reason::Status::Unsat;
    res.seconds = std::chrono::duration<double>(Clock::now() - start).count();
    if (phases.active) res.trace_summary = phases.table(elapsed_ns(start));
    return res;
  }

  // --- Canonical model re-derivation -------------------------------------
  // A shard's decoded model can depend on the bound it happened to observe
  // (the bound changes the search path, and several optimal models may
  // exist), while its reported *cost* cannot. With more than one instance
  // the winner is therefore re-solved once under the canonical bound C* —
  // fully determined by the inputs — so the emitted layouts are
  // bit-identical at every thread count. The bounded re-solve is cheap: a
  // model of cost C* is known to exist and nothing below it does.
  if (instances.size() > 1) {
    const auto t0 = Clock::now();
    obs::Span span("exact.canonical_resolve", "exact");
    const long long canonical = best->solution.cost_f;
    span.attr("cost", canonical);
    const arch::CouplingMap induced = cm.induced(best->subset);
    auto engine = reason::make_engine(options.engine);
    engine->set_optimization_mode(options.optimization);
    const Encoding enc(*engine, cnots, n, induced, *best->table, points, costs);
    engine->set_upper_bound(canonical);
    const reason::Outcome outcome = engine->minimize(nominal_share);
    if (phases.active) phases.canonical_ns = elapsed_ns(t0);
    if (outcome.status == reason::Status::Optimal ||
        outcome.status == reason::Status::Feasible) {
      Encoding::Solution sol = enc.decode();
      if (sol.cost_f <= canonical) best->solution = std::move(sol);
    }
    // Otherwise the budget expired mid-re-solve; keep the phase-1 model
    // (correct, merely not canonical — determinism is forfeit on timeouts
    // anyway).
  }

  const auto reconstruct_t0 = Clock::now();
  Reconstruction rec = [&] {
    obs::Span span("exact.reconstruct", "exact");
    return reconstruct(circuit, cm, *best, points);
  }();
  if (phases.active) phases.reconstruct_ns = elapsed_ns(reconstruct_t0);
  res.mapped = std::move(rec.mapped);
  res.routed_skeleton = std::move(rec.skeleton);
  res.initial_layout = std::move(rec.initial_layout);
  res.final_layout = std::move(rec.final_layout);
  res.swaps_inserted = rec.swaps;
  res.cnots_reversed = rec.reversed;
  res.cost_f = static_cast<long long>(res.mapped.size()) - static_cast<long long>(circuit.size());
  res.objective_cost = best->solution.cost_f;
  res.status = (any_feasible_not_optimal || any_unknown) ? reason::Status::Feasible
                                                         : reason::Status::Optimal;

  // Consistency: the emitted insertions must reproduce the model's objective
  // under the resolved weights (gate units and objective units coincide only
  // for GateCount with derived weights).
  if (costs.result_cost(res.swaps_inserted, res.cnots_reversed) != best->solution.cost_f) {
    throw std::logic_error("map_exact: emitted gate overhead disagrees with model cost");
  }

  if (options.verify) {
    const auto t0 = Clock::now();
    obs::Span span("exact.verify", "exact");
    const Circuit skeleton_logical = circuit.cnot_skeleton();
    const bool gf2_ok = sim::implements_skeleton(skeleton_logical, res.routed_skeleton,
                                                 res.initial_layout, res.final_layout);
    bool deep_ok = true;
    std::string deep_msg = "statevector check skipped (architecture too large)";
    if (m <= options.deep_verify_max_qubits) {
      const auto eq = sim::check_mapped_circuit(circuit, res.mapped, res.initial_layout,
                                                res.final_layout);
      deep_ok = eq.equivalent;
      deep_msg = eq.message;
    }
    res.verified = gf2_ok && deep_ok;
    res.verify_message = std::string("gf2: ") + (gf2_ok ? "ok" : "FAILED") + "; " + deep_msg;
    span.attr("verified", res.verified);
    if (phases.active) phases.verify_ns = elapsed_ns(t0);
  }

  res.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (phases.active) res.trace_summary = phases.table(elapsed_ns(start));
  return res;
}

}  // namespace qxmap::exact
