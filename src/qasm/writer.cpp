#include "qasm/writer.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.hpp"

namespace qxmap::qasm {

namespace {

void emit_gate(std::ostringstream& os, const Gate& g) {
  if (g.condition) {
    os << "if(" << g.condition->creg << "==" << g.condition->value << ") ";
  }
  switch (g.kind) {
    case OpKind::Barrier:
      os << "barrier q;\n";
      return;
    case OpKind::Measure: {
      // Original classical wiring; gates built before the parser recorded
      // it (or by hand) default to the c[target] convention.
      const std::string& creg = g.cbit ? g.cbit->creg : "c";
      const int bit = g.cbit ? g.cbit->bit : g.target;
      os << "measure q[" << g.target << "] -> " << creg << '[' << bit << "];\n";
      return;
    }
    case OpKind::Reset:
      os << "reset q[" << g.target << "];\n";
      return;
    case OpKind::Cnot:
      os << "cx q[" << g.control << "], q[" << g.target << "];\n";
      return;
    case OpKind::Swap:
      os << "swap q[" << g.target << "], q[" << g.control << "];\n";
      return;
    default: {
      os << kind_name(g.kind);
      if (!g.params.empty()) {
        os << '(';
        for (std::size_t i = 0; i < g.params.size(); ++i) {
          if (i > 0) os << ", ";
          os << format_fixed(g.params[i], 12);
        }
        os << ')';
      }
      os << " q[" << g.target << "];\n";
      return;
    }
  }
}

}  // namespace

std::string write(const Circuit& circuit, const WriterOptions& options) {
  const Circuit& c = options.expand_swaps ? circuit.with_swaps_expanded() : circuit;
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  if (!c.name().empty()) os << "// " << c.name() << '\n';
  os << "qreg q[" << c.num_qubits() << "];\n";

  // Classical registers: one declaration per creg referenced by a guard or
  // a measure destination, each wide enough for both uses. The default
  // measure target `c` is always declared (at least num_qubits wide) so the
  // emit_measure_all footer and hand-built measures stay valid.
  std::map<std::string, int> cregs;
  for (const auto& g : c) {
    if (g.condition) {
      int& width = cregs[g.condition->creg];
      width = std::max(width, g.condition->width);
    }
    if (g.kind == OpKind::Measure) {
      const std::string& name = g.cbit ? g.cbit->creg : "c";
      const int bit = g.cbit ? g.cbit->bit : g.target;
      int& width = cregs[name];
      width = std::max(width, bit + 1);
    }
  }
  cregs["c"] = std::max(cregs["c"], c.num_qubits());
  os << "creg c[" << cregs["c"] << "];\n";
  for (const auto& [name, width] : cregs) {
    if (name != "c") os << "creg " << name << '[' << width << "];\n";
  }

  for (const auto& g : c) emit_gate(os, g);
  if (options.emit_measure_all) {
    for (int q = 0; q < c.num_qubits(); ++q) {
      os << "measure q[" << q << "] -> c[" << q << "];\n";
    }
  }
  return os.str();
}

void write_file(const Circuit& c, const std::string& path, const WriterOptions& options) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("qasm: cannot open '" + path + "' for writing: " +
                             std::strerror(errno));
  }
  out << write(c, options);
  out.flush();
  if (!out) throw std::runtime_error("qasm: write to '" + path + "' failed");
}

}  // namespace qxmap::qasm
