/// \file parser.hpp
/// Recursive-descent parser for OpenQASM 2.0.
///
/// The front-end accepts the full OpenQASM 2.0 language as used by the IBM
/// QX benchmark suites (see docs/qasm-support.md for the construct-by-
/// construct support matrix):
///
///  * `OPENQASM 2.0;` header (optional, so bare gate lists parse too);
///  * `include "qelib1.inc";` resolved against a bundled standard library;
///    other includes are resolved relative to the including file and
///    `ParseOptions::include_paths`;
///  * `qreg`/`creg` declarations (multiple qregs are flattened into one
///    index space in declaration order);
///  * the spec builtins `U` (as u3) and `CX`, plus the qelib1 primitive
///    gates (id x y z h s sdg t tdg rx ry rz u1 u2 u3
///    cx swap ccx) recognised natively — `ccx` is decomposed into the
///    textbook Clifford+T network (2 H, 7 T/Tdg, 6 CX) since QX
///    architectures only execute U + CNOT — and the remaining qelib1 gates
///    (cz, cy, ch, crz, cu1, cu3, cswap, crx, cry, rxx, rzz, sx, sxdg, u,
///    p, u0) provided as bundled macro definitions;
///  * user-defined `gate name(params) qargs { … }` declarations, macro-
///    expanded recursively into the U/CX IR at each call site, with arity
///    checking, defined-before-use enforcement (which rules out definition
///    cycles) and an expansion-depth guard;
///  * `opaque` declarations (accepted; *applying* an opaque gate is an
///    error since it has no definition to expand);
///  * parameter expressions over numbers, `pi`, formal parameters,
///    `+ - * / ^`, unary minus, `sin/cos/tan/exp/ln/sqrt` and parentheses;
///  * `if (creg == n) op;` classical conditionals, lowered onto the
///    `Gate::condition` field of every elementary gate `op` expands to;
///  * `barrier`, `measure a -> c;`, and whole-register broadcast
///    (`h q;`, `measure q -> c;`, `cx a, b;` on same-sized registers).
///
/// `reset` is the one OpenQASM 2.0 statement with no IR representation; it
/// is rejected with a ParseError.
///
/// Errors carry the 1-based line/column plus a source excerpt with a caret.

#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ir/circuit.hpp"

namespace qxmap::qasm {

/// Front-end configuration.
struct ParseOptions {
  /// Directories searched (in order) for `include` files after the
  /// directory of the including file. `qelib1.inc` never hits the
  /// filesystem — a bundled copy is used.
  std::vector<std::string> include_paths;
  /// When false, non-bundled includes are skipped instead of resolved
  /// (the pre-1.1 behavior; useful for sources whose includes only define
  /// gates that are never applied).
  bool resolve_includes = true;
  /// Maximum nesting depth of custom-gate macro expansion. Definition
  /// cycles are already impossible (gates must be defined before use); this
  /// guards against pathological definition chains.
  int max_expansion_depth = 64;
};

/// Error raised on syntactically or semantically invalid input. Carries the
/// 1-based source location; what() additionally shows the offending source
/// line with a caret under the error column.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column, const std::string& excerpt = {},
             const std::string& file = {})
      : std::runtime_error("qasm parse error at " + (file.empty() ? "" : file + ":") +
                           std::to_string(line) + ':' + std::to_string(column) + ": " + message +
                           (excerpt.empty() ? "" : "\n" + excerpt)),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Parses QASM source text into a Circuit. The circuit's qubit count is the
/// total size of all qregs; its name is taken from `name` (e.g. a filename).
/// \throws LexError / ParseError on invalid input.
[[nodiscard]] Circuit parse(std::string_view source, std::string name = {},
                            const ParseOptions& options = {});

/// Reads and parses a `.qasm` file. Includes are resolved relative to the
/// file's directory first, then `options.include_paths`.
/// \throws std::runtime_error (with the offending path and the OS reason)
///         if the file cannot be read; LexError / ParseError on invalid
///         input.
[[nodiscard]] Circuit parse_file(const std::string& path, const ParseOptions& options = {});

}  // namespace qxmap::qasm
