/// \file parser.hpp
/// Recursive-descent parser for the OpenQASM 2.0 subset used by the IBM QX
/// benchmark circuits.
///
/// Supported: `OPENQASM 2.0;`, `include "…";` (skipped), `qreg`/`creg`
/// declarations (multiple qregs are flattened into one index space in
/// declaration order), the qelib1 standard gates
/// (id x y z h s sdg t tdg rx ry rz u1 u2 u3 cx swap ccx), `barrier`,
/// `measure a -> c;`, and parameter expressions over numbers, `pi`,
/// `+ - * / ^` and parentheses. `ccx` is decomposed into the textbook
/// Clifford+T network (2 H, 7 T/Tdg, 6 CX) since QX architectures only
/// execute U + CNOT. Gate definitions (`gate … { … }`) and `if` statements
/// are rejected with a ParseError.

#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "ir/circuit.hpp"

namespace qxmap::qasm {

/// Error raised on syntactically or semantically invalid input.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, int line, int column)
      : std::runtime_error("qasm parse error at " + std::to_string(line) + ':' +
                           std::to_string(column) + ": " + message) {}
};

/// Parses QASM source text into a Circuit. The circuit's qubit count is the
/// total size of all qregs; its name is taken from `name` (e.g. a filename).
/// \throws LexError / ParseError on invalid input.
[[nodiscard]] Circuit parse(std::string_view source, std::string name = {});

/// Reads and parses a `.qasm` file.
/// \throws std::runtime_error if the file cannot be read.
[[nodiscard]] Circuit parse_file(const std::string& path);

}  // namespace qxmap::qasm
