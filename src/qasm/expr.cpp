#include "qasm/expr.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <string>

namespace qxmap::qasm {

struct Expr::Node {
  enum class Kind { Number, Pi, Param, Unary, Binary } kind = Kind::Number;
  double value = 0.0;
  int param = -1;
  UnaryOp uop = UnaryOp::Neg;
  BinaryOp bop = BinaryOp::Add;
  std::shared_ptr<const Node> lhs;
  std::shared_ptr<const Node> rhs;

  [[nodiscard]] double eval(const std::vector<double>& args) const {
    switch (kind) {
      case Kind::Number:
        return value;
      case Kind::Pi:
        return std::numbers::pi;
      case Kind::Param:
        if (param < 0 || static_cast<std::size_t>(param) >= args.size()) {
          throw std::out_of_range("Expr::eval: parameter index " + std::to_string(param) +
                                  " out of range (have " + std::to_string(args.size()) + ")");
        }
        return args[static_cast<std::size_t>(param)];
      case Kind::Unary:
        switch (uop) {
          case UnaryOp::Neg: return -lhs->eval(args);
          case UnaryOp::Sin: return std::sin(lhs->eval(args));
          case UnaryOp::Cos: return std::cos(lhs->eval(args));
          case UnaryOp::Tan: return std::tan(lhs->eval(args));
          case UnaryOp::Exp: return std::exp(lhs->eval(args));
          case UnaryOp::Ln: return std::log(lhs->eval(args));
          case UnaryOp::Sqrt: return std::sqrt(lhs->eval(args));
        }
        return 0.0;
      case Kind::Binary:
        switch (bop) {
          case BinaryOp::Add: return lhs->eval(args) + rhs->eval(args);
          case BinaryOp::Sub: return lhs->eval(args) - rhs->eval(args);
          case BinaryOp::Mul: return lhs->eval(args) * rhs->eval(args);
          case BinaryOp::Div: return lhs->eval(args) / rhs->eval(args);
          case BinaryOp::Pow: return std::pow(lhs->eval(args), rhs->eval(args));
        }
        return 0.0;
    }
    return 0.0;
  }

  [[nodiscard]] bool constant() const noexcept {
    switch (kind) {
      case Kind::Number:
      case Kind::Pi:
        return true;
      case Kind::Param:
        return false;
      case Kind::Unary:
        return lhs->constant();
      case Kind::Binary:
        return lhs->constant() && rhs->constant();
    }
    return true;
  }
};

Expr Expr::number(double value) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Number;
  n->value = value;
  return Expr(std::move(n));
}

Expr Expr::pi() {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Pi;
  return Expr(std::move(n));
}

Expr Expr::parameter(int index) {
  if (index < 0) throw std::invalid_argument("Expr::parameter: negative index");
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Param;
  n->param = index;
  return Expr(std::move(n));
}

Expr Expr::unary(UnaryOp op, Expr operand) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Unary;
  n->uop = op;
  n->lhs = std::move(operand.node_);
  return Expr(std::move(n));
}

Expr Expr::binary(BinaryOp op, Expr lhs, Expr rhs) {
  auto n = std::make_shared<Node>();
  n->kind = Node::Kind::Binary;
  n->bop = op;
  n->lhs = std::move(lhs.node_);
  n->rhs = std::move(rhs.node_);
  return Expr(std::move(n));
}

double Expr::eval(const std::vector<double>& args) const { return node_->eval(args); }

bool Expr::is_constant() const noexcept { return node_->constant(); }

}  // namespace qxmap::qasm
