#include "qasm/parser.hpp"

#include <cmath>
#include <fstream>
#include <map>
#include <numbers>
#include <sstream>
#include <vector>

#include "qasm/lexer.hpp"

namespace qxmap::qasm {

namespace {

/// Appends the textbook Clifford+T decomposition of CCX(c1, c2, t).
void append_ccx(Circuit& c, int c1, int c2, int t) {
  c.h(t);
  c.cnot(c2, t);
  c.tdg(t);
  c.cnot(c1, t);
  c.t(t);
  c.cnot(c2, t);
  c.tdg(t);
  c.cnot(c1, t);
  c.t(c2);
  c.t(t);
  c.cnot(c1, c2);
  c.h(t);
  c.t(c1);
  c.tdg(c2);
  c.cnot(c1, c2);
}

class Parser {
 public:
  explicit Parser(std::string_view src, std::string name)
      : tokens_(tokenize(src)), circuit_name_(std::move(name)) {}

  Circuit run() {
    parse_header();
    // First pass: collect register declarations and statements interleaved;
    // we parse statements directly into a gate buffer that is re-targeted
    // once all qregs are known. Simpler: QASM requires declaration before
    // use, so we build the circuit lazily on first use after declarations.
    std::vector<PendingGate> pending;
    while (peek().kind != TokenKind::EndOfFile) {
      parse_statement(pending);
    }
    Circuit circuit(total_qubits_, circuit_name_);
    for (auto& pg : pending) circuit.append(std::move(pg.gate));
    return circuit;
  }

 private:
  struct PendingGate {
    Gate gate;
  };

  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }

  const Token& advance() { return tokens_[pos_++]; }

  const Token& expect(TokenKind k, const std::string& what) {
    const Token& t = peek();
    if (t.kind != k) throw ParseError("expected " + what + ", got '" + t.text + "'", t.line, t.column);
    return advance();
  }

  [[nodiscard]] bool accept(TokenKind k) {
    if (peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }

  void parse_header() {
    // `OPENQASM 2.0;` is optional so bare gate lists are accepted too.
    if (peek().kind == TokenKind::Identifier && peek().text == "OPENQASM") {
      advance();
      expect(TokenKind::Number, "version number");
      expect(TokenKind::Semicolon, "';'");
    }
  }

  void parse_statement(std::vector<PendingGate>& out) {
    const Token& t = peek();
    if (t.kind != TokenKind::Identifier) {
      throw ParseError("expected statement, got '" + t.text + "'", t.line, t.column);
    }
    const std::string& head = t.text;
    if (head == "include") {
      advance();
      expect(TokenKind::String, "include file name");
      expect(TokenKind::Semicolon, "';'");
      return;
    }
    if (head == "qreg" || head == "creg") {
      parse_register(head == "qreg");
      return;
    }
    if (head == "barrier") {
      advance();
      // Qubit list is irrelevant for mapping; consume it.
      while (peek().kind != TokenKind::Semicolon && peek().kind != TokenKind::EndOfFile) advance();
      expect(TokenKind::Semicolon, "';'");
      out.push_back({Gate::barrier()});
      return;
    }
    if (head == "measure") {
      advance();
      const int q = parse_qubit_operand();
      expect(TokenKind::Arrow, "'->'");
      parse_creg_operand();
      expect(TokenKind::Semicolon, "';'");
      out.push_back({Gate::measure(q)});
      return;
    }
    if (head == "gate" || head == "if" || head == "opaque" || head == "reset") {
      throw ParseError("unsupported statement '" + head + "'", t.line, t.column);
    }
    parse_gate_application(out);
  }

  void parse_register(bool quantum) {
    advance();  // qreg/creg
    const Token& name = expect(TokenKind::Identifier, "register name");
    expect(TokenKind::LBracket, "'['");
    const Token& size = expect(TokenKind::Number, "register size");
    expect(TokenKind::RBracket, "']'");
    expect(TokenKind::Semicolon, "';'");
    const int n = static_cast<int>(size.number);
    if (n <= 0) throw ParseError("register size must be positive", size.line, size.column);
    if (quantum) {
      if (qregs_.contains(name.text)) {
        throw ParseError("duplicate qreg '" + name.text + "'", name.line, name.column);
      }
      qregs_[name.text] = {total_qubits_, n};
      total_qubits_ += n;
    } else {
      cregs_[name.text] = n;
    }
  }

  /// `name[idx]` → flattened qubit index.
  int parse_qubit_operand() {
    const Token& name = expect(TokenKind::Identifier, "qubit register");
    const auto it = qregs_.find(name.text);
    if (it == qregs_.end()) {
      throw ParseError("unknown qreg '" + name.text + "'", name.line, name.column);
    }
    expect(TokenKind::LBracket, "'['");
    const Token& idx = expect(TokenKind::Number, "qubit index");
    expect(TokenKind::RBracket, "']'");
    const int i = static_cast<int>(idx.number);
    if (i < 0 || i >= it->second.second) {
      throw ParseError("qubit index out of range", idx.line, idx.column);
    }
    return it->second.first + i;
  }

  void parse_creg_operand() {
    const Token& name = expect(TokenKind::Identifier, "classical register");
    if (!cregs_.contains(name.text)) {
      throw ParseError("unknown creg '" + name.text + "'", name.line, name.column);
    }
    expect(TokenKind::LBracket, "'['");
    expect(TokenKind::Number, "bit index");
    expect(TokenKind::RBracket, "']'");
  }

  void parse_gate_application(std::vector<PendingGate>& out) {
    const Token& mnemonic = advance();
    static const std::map<std::string, OpKind> kSingle = {
        {"id", OpKind::I},  {"x", OpKind::X},     {"y", OpKind::Y},   {"z", OpKind::Z},
        {"h", OpKind::H},   {"s", OpKind::S},     {"sdg", OpKind::Sdg},
        {"t", OpKind::T},   {"tdg", OpKind::Tdg}, {"rx", OpKind::Rx}, {"ry", OpKind::Ry},
        {"rz", OpKind::Rz}, {"u1", OpKind::U1},   {"u2", OpKind::U2}, {"u3", OpKind::U3}};

    std::vector<double> params;
    if (accept(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        params.push_back(parse_expression());
        while (accept(TokenKind::Comma)) params.push_back(parse_expression());
      }
      expect(TokenKind::RParen, "')'");
    }

    std::vector<int> qubits;
    qubits.push_back(parse_qubit_operand());
    while (accept(TokenKind::Comma)) qubits.push_back(parse_qubit_operand());
    expect(TokenKind::Semicolon, "';'");

    if (const auto it = kSingle.find(mnemonic.text); it != kSingle.end()) {
      if (qubits.size() != 1) {
        throw ParseError(mnemonic.text + " expects 1 qubit", mnemonic.line, mnemonic.column);
      }
      if (static_cast<int>(params.size()) != parameter_count(it->second)) {
        throw ParseError(mnemonic.text + " has wrong parameter count", mnemonic.line, mnemonic.column);
      }
      out.push_back({Gate::single(it->second, qubits[0], std::move(params))});
      return;
    }
    if (mnemonic.text == "cx" || mnemonic.text == "CX") {
      if (qubits.size() != 2) throw ParseError("cx expects 2 qubits", mnemonic.line, mnemonic.column);
      out.push_back({Gate::cnot(qubits[0], qubits[1])});
      return;
    }
    if (mnemonic.text == "swap") {
      if (qubits.size() != 2) throw ParseError("swap expects 2 qubits", mnemonic.line, mnemonic.column);
      out.push_back({Gate::swap(qubits[0], qubits[1])});
      return;
    }
    if (mnemonic.text == "ccx") {
      if (qubits.size() != 3) throw ParseError("ccx expects 3 qubits", mnemonic.line, mnemonic.column);
      Circuit tmp(total_qubits_);
      append_ccx(tmp, qubits[0], qubits[1], qubits[2]);
      for (const auto& g : tmp) out.push_back({g});
      return;
    }
    throw ParseError("unknown gate '" + mnemonic.text + "'", mnemonic.line, mnemonic.column);
  }

  // Expression grammar: expr := term (('+'|'-') term)*; term := factor
  // (('*'|'/') factor)*; factor := primary ('^' factor)?;
  // primary := number | pi | '-' factor | '(' expr ')'.
  double parse_expression() {
    double v = parse_term();
    for (;;) {
      if (accept(TokenKind::Plus)) {
        v += parse_term();
      } else if (accept(TokenKind::Minus)) {
        v -= parse_term();
      } else {
        return v;
      }
    }
  }

  double parse_term() {
    double v = parse_factor();
    for (;;) {
      if (accept(TokenKind::Star)) {
        v *= parse_factor();
      } else if (accept(TokenKind::Slash)) {
        v /= parse_factor();
      } else {
        return v;
      }
    }
  }

  double parse_factor() {
    double v = parse_primary();
    if (accept(TokenKind::Caret)) v = std::pow(v, parse_factor());
    return v;
  }

  double parse_primary() {
    const Token& t = peek();
    if (accept(TokenKind::Minus)) return -parse_factor();
    if (t.kind == TokenKind::Number) {
      advance();
      return t.number;
    }
    if (t.kind == TokenKind::Identifier && t.text == "pi") {
      advance();
      return std::numbers::pi;
    }
    if (accept(TokenKind::LParen)) {
      const double v = parse_expression();
      expect(TokenKind::RParen, "')'");
      return v;
    }
    throw ParseError("expected expression, got '" + t.text + "'", t.line, t.column);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::string circuit_name_;
  std::map<std::string, std::pair<int, int>> qregs_;  // name -> (offset, size)
  std::map<std::string, int> cregs_;                  // name -> size
  int total_qubits_ = 0;
};

}  // namespace

Circuit parse(std::string_view source, std::string name) {
  return Parser(source, std::move(name)).run();
}

Circuit parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open QASM file: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path);
}

}  // namespace qxmap::qasm
