#include "qasm/parser.hpp"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qasm/expr.hpp"
#include "qasm/lexer.hpp"

namespace qxmap::qasm {

namespace {

/// Bundled `qelib1.inc`. Only the gates that are *not* native IR primitives
/// appear here: the primitive qelib1 names (x, h, cx, ccx, …) are recognised
/// directly by the parser so they keep their symbolic identity through the
/// IR and the writer. Everything below macro-expands to primitives.
constexpr std::string_view kBundledQelib1 = R"QELIB(
// qxmap bundled qelib1.inc — non-primitive subset (see docs/qasm-support.md)
gate u(theta,phi,lambda) q { u3(theta,phi,lambda) q; }
gate p(lambda) q { u1(lambda) q; }
gate u0(gamma) q { id q; }
gate sx a { sdg a; h a; sdg a; }
gate sxdg a { s a; h a; s a; }
gate cz a,b { h b; cx a,b; h b; }
gate cy a,b { sdg b; cx a,b; s b; }
gate ch a,b { h b; sdg b; cx a,b; h b; t b; cx a,b; t b; h b; s b; x b; s a; }
gate crz(lambda) a,b { u1(lambda/2) b; cx a,b; u1(-lambda/2) b; cx a,b; }
gate cu1(lambda) a,b { u1(lambda/2) a; cx a,b; u1(-lambda/2) b; cx a,b; u1(lambda/2) b; }
gate cu3(theta,phi,lambda) c,t { u1((lambda+phi)/2) c; u1((lambda-phi)/2) t; cx c,t; u3(-theta/2,0,-(phi+lambda)/2) t; cx c,t; u3(theta/2,phi,0) t; }
gate cswap a,b,c { cx c,b; ccx a,b,c; cx c,b; }
gate crx(lambda) a,b { u1(pi/2) b; cx a,b; u3(-lambda/2,0,0) b; cx a,b; u3(lambda/2,-pi/2,0) b; }
gate cry(lambda) a,b { ry(lambda/2) b; cx a,b; ry(-lambda/2) b; cx a,b; }
gate rxx(theta) a,b { u3(pi/2,theta,0) a; h b; cx a,b; u1(-theta) b; cx a,b; h b; u2(-pi,pi-theta) a; }
gate rzz(theta) a,b { cx a,b; u1(theta) b; cx a,b; }
)QELIB";

/// Single-qubit primitive mnemonics -> IR kinds. `U` is the OpenQASM 2.0
/// builtin (same semantics as u3).
const std::map<std::string, OpKind, std::less<>>& single_qubit_primitives() {
  static const std::map<std::string, OpKind, std::less<>> kMap = {
      {"id", OpKind::I},  {"x", OpKind::X},     {"y", OpKind::Y},   {"z", OpKind::Z},
      {"h", OpKind::H},   {"s", OpKind::S},     {"sdg", OpKind::Sdg},
      {"t", OpKind::T},   {"tdg", OpKind::Tdg}, {"rx", OpKind::Rx}, {"ry", OpKind::Ry},
      {"rz", OpKind::Rz}, {"u1", OpKind::U1},   {"u2", OpKind::U2}, {"u3", OpKind::U3},
      {"U", OpKind::U3}};
  return kMap;
}

const std::map<std::string, UnaryOp, std::less<>>& expression_functions() {
  static const std::map<std::string, UnaryOp, std::less<>> kMap = {
      {"sin", UnaryOp::Sin}, {"cos", UnaryOp::Cos},   {"tan", UnaryOp::Tan},
      {"exp", UnaryOp::Exp}, {"ln", UnaryOp::Ln},     {"sqrt", UnaryOp::Sqrt}};
  return kMap;
}

/// A user-defined (or opaque) gate. Body gate arguments are stored as
/// un-evaluated expressions over the formal parameters; body qubit operands
/// are indices into the formal qubit-argument list.
struct GateDef {
  std::vector<std::string> params;
  std::vector<std::string> qargs;
  bool opaque = false;

  struct BodyOp {
    bool barrier = false;
    std::string callee;          // empty for barrier
    std::vector<Expr> args;
    std::vector<int> qubit_slots;  // indices into the caller's qargs
  };
  std::vector<BodyOp> body;
};

struct RegInfo {
  int offset = 0;
  int size = 0;
};

/// State shared between the top-level parser and include sub-parsers.
struct ParseState {
  const ParseOptions* options = nullptr;
  std::map<std::string, RegInfo> qregs;    // name -> (offset, size)
  std::map<std::string, int> cregs;        // name -> width
  std::map<std::string, GateDef> gate_defs;
  std::set<std::string> included;          // canonical include keys (idempotence)
  std::vector<std::string> include_stack;  // open includes (cycle detection)
  int total_qubits = 0;
  std::vector<Gate> gates;
};

/// (#params, #qubits) of a gate name, or nullopt if unknown.
struct Signature {
  int num_params = 0;
  int num_qubits = 0;
};

std::optional<Signature> signature_of(const ParseState& state, std::string_view name) {
  const auto& singles = single_qubit_primitives();
  if (const auto it = singles.find(name); it != singles.end()) {
    return Signature{parameter_count(it->second), 1};
  }
  if (name == "cx" || name == "CX" || name == "swap") return Signature{0, 2};
  if (name == "ccx") return Signature{0, 3};
  if (const auto it = state.gate_defs.find(std::string(name)); it != state.gate_defs.end()) {
    return Signature{static_cast<int>(it->second.params.size()),
                     static_cast<int>(it->second.qargs.size())};
  }
  return std::nullopt;
}

bool is_primitive(std::string_view name) {
  return single_qubit_primitives().contains(name) || name == "cx" || name == "CX" ||
         name == "swap" || name == "ccx";
}

/// The source line `line` (1-based) rendered with a caret under `column`,
/// for ParseError excerpts.
std::string line_excerpt(std::string_view src, int line, int column) {
  std::size_t start = 0;
  for (int l = 1; l < line && start < src.size(); ++l) {
    const std::size_t nl = src.find('\n', start);
    if (nl == std::string_view::npos) return {};
    start = nl + 1;
  }
  std::size_t end = src.find('\n', start);
  if (end == std::string_view::npos) end = src.size();
  std::string text(src.substr(start, end - start));
  if (text.empty()) return {};
  std::string caret(static_cast<std::size_t>(column > 0 ? column - 1 : 0), ' ');
  return "  " + text + "\n  " + caret + '^';
}

/// The bundled qelib1 gate definitions, parsed once per process.
const std::map<std::string, GateDef>& bundled_qelib1_defs();

class Parser {
 public:
  Parser(std::string_view src, std::string file, ParseState& state)
      : src_(src), file_(std::move(file)), tokens_(tokenize(src)), state_(state) {}

  void run() {
    parse_header();
    while (peek().kind != TokenKind::EndOfFile) parse_statement();
  }

 private:
  [[noreturn]] void fail(const std::string& message, const Token& at) const {
    throw ParseError(message, at.line, at.column, line_excerpt(src_, at.line, at.column), file_);
  }

  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }

  const Token& advance() { return tokens_[pos_++]; }

  const Token& expect(TokenKind k, const std::string& what) {
    const Token& t = peek();
    if (t.kind != k) fail("expected " + what + ", got '" + describe(t) + "'", t);
    return advance();
  }

  [[nodiscard]] bool accept(TokenKind k) {
    if (peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }

  static std::string describe(const Token& t) {
    switch (t.kind) {
      case TokenKind::EndOfFile: return "<end of input>";
      case TokenKind::Semicolon: return ";";
      case TokenKind::Comma: return ",";
      case TokenKind::LParen: return "(";
      case TokenKind::RParen: return ")";
      case TokenKind::LBracket: return "[";
      case TokenKind::RBracket: return "]";
      case TokenKind::LBrace: return "{";
      case TokenKind::RBrace: return "}";
      case TokenKind::Arrow: return "->";
      case TokenKind::EqEq: return "==";
      case TokenKind::Plus: return "+";
      case TokenKind::Minus: return "-";
      case TokenKind::Star: return "*";
      case TokenKind::Slash: return "/";
      case TokenKind::Caret: return "^";
      default: return t.text;
    }
  }

  void parse_header() {
    // `OPENQASM 2.0;` is optional so bare gate lists are accepted too.
    if (peek().kind == TokenKind::Identifier && peek().text == "OPENQASM") {
      advance();
      expect(TokenKind::Number, "version number");
      expect(TokenKind::Semicolon, "';'");
    }
  }

  void parse_statement() {
    const Token& t = peek();
    if (t.kind != TokenKind::Identifier) {
      fail("expected statement, got '" + describe(t) + "'", t);
    }
    const std::string head = t.text;
    if (head == "include") {
      parse_include();
      return;
    }
    if (head == "qreg" || head == "creg") {
      parse_register(head == "qreg");
      return;
    }
    if (head == "gate") {
      parse_gate_definition(/*opaque=*/false);
      return;
    }
    if (head == "opaque") {
      parse_gate_definition(/*opaque=*/true);
      return;
    }
    if (head == "if") {
      parse_if();
      return;
    }
    if (head == "barrier") {
      advance();
      // The qubit list is irrelevant for mapping; consume it.
      while (peek().kind != TokenKind::Semicolon && peek().kind != TokenKind::EndOfFile) advance();
      expect(TokenKind::Semicolon, "';'");
      state_.gates.push_back(Gate::barrier());
      return;
    }
    if (head == "measure") {
      parse_measure(std::nullopt);
      return;
    }
    if (head == "reset") {
      parse_reset(std::nullopt);
      return;
    }
    parse_gate_application(std::nullopt);
  }

  // -- registers ------------------------------------------------------------

  void parse_register(bool quantum) {
    advance();  // qreg/creg
    const Token& name = expect(TokenKind::Identifier, "register name");
    expect(TokenKind::LBracket, "'['");
    const Token& size = expect(TokenKind::Number, "register size");
    expect(TokenKind::RBracket, "']'");
    expect(TokenKind::Semicolon, "';'");
    const int n = static_cast<int>(size.number);
    if (n <= 0) fail("register size must be positive", size);
    if (quantum) {
      if (state_.qregs.contains(name.text)) fail("duplicate qreg '" + name.text + "'", name);
      state_.qregs[name.text] = {state_.total_qubits, n};
      state_.total_qubits += n;
    } else {
      if (state_.cregs.contains(name.text)) fail("duplicate creg '" + name.text + "'", name);
      state_.cregs[name.text] = n;
    }
  }

  // -- includes -------------------------------------------------------------

  void parse_include() {
    advance();  // include
    const Token name = expect(TokenKind::String, "include file name");
    expect(TokenKind::Semicolon, "';'");

    if (name.text == "qelib1.inc") {
      if (state_.included.insert("qelib1.inc").second) {
        // First definition wins, as if the include were parsed in place.
        for (const auto& [gate_name, def] : bundled_qelib1_defs()) {
          state_.gate_defs.emplace(gate_name, def);
        }
      }
      return;
    }
    if (!state_.options->resolve_includes) return;

    namespace fs = std::filesystem;
    std::vector<fs::path> candidates;
    if (!file_.empty()) {
      const fs::path parent = fs::path(file_).parent_path();
      if (!parent.empty()) candidates.push_back(parent / name.text);
    }
    for (const auto& dir : state_.options->include_paths) {
      candidates.push_back(fs::path(dir) / name.text);
    }

    for (const auto& candidate : candidates) {
      std::error_code ec;
      if (!fs::exists(candidate, ec)) continue;
      const std::string key = fs::weakly_canonical(candidate, ec).string();
      for (const auto& open : state_.include_stack) {
        if (open == key) fail("circular include of \"" + name.text + "\"", name);
      }
      if (!state_.included.insert(key).second) return;  // already processed
      std::ifstream in(candidate);
      if (!in) {
        fail("cannot open include file '" + candidate.string() + "': " + std::strerror(errno),
             name);
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      const std::string text = ss.str();
      state_.include_stack.push_back(key);
      Parser sub(text, candidate.string(), state_);
      sub.run();
      state_.include_stack.pop_back();
      return;
    }
    fail("cannot resolve include \"" + name.text +
             "\" (searched the including file's directory and ParseOptions::include_paths)",
         name);
  }

  // -- gate definitions -----------------------------------------------------

  void parse_gate_definition(bool opaque) {
    advance();  // gate/opaque
    const Token name = expect(TokenKind::Identifier, "gate name");
    if (is_primitive(name.text)) fail("cannot redefine builtin gate '" + name.text + "'", name);
    if (state_.gate_defs.contains(name.text)) {
      fail("redefinition of gate '" + name.text + "'", name);
    }

    GateDef def;
    def.opaque = opaque;
    std::map<std::string, int> param_index;
    if (accept(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        do {
          const Token& p = expect(TokenKind::Identifier, "parameter name");
          if (param_index.contains(p.text)) fail("duplicate parameter '" + p.text + "'", p);
          param_index[p.text] = static_cast<int>(def.params.size());
          def.params.push_back(p.text);
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
    }

    std::map<std::string, int> qarg_index;
    do {
      const Token& q = expect(TokenKind::Identifier, "qubit argument name");
      if (qarg_index.contains(q.text)) fail("duplicate qubit argument '" + q.text + "'", q);
      qarg_index[q.text] = static_cast<int>(def.qargs.size());
      def.qargs.push_back(q.text);
    } while (accept(TokenKind::Comma));

    if (opaque) {
      expect(TokenKind::Semicolon, "';'");
      state_.gate_defs.emplace(name.text, std::move(def));
      return;
    }

    expect(TokenKind::LBrace, "'{'");
    while (!accept(TokenKind::RBrace)) {
      if (peek().kind == TokenKind::EndOfFile) fail("unterminated gate body", peek());
      def.body.push_back(parse_body_op(param_index, qarg_index));
    }
    state_.gate_defs.emplace(name.text, std::move(def));
  }

  GateDef::BodyOp parse_body_op(const std::map<std::string, int>& params,
                                const std::map<std::string, int>& qargs) {
    const Token head = expect(TokenKind::Identifier, "gate application");
    GateDef::BodyOp op;
    if (head.text == "barrier") {
      op.barrier = true;
      while (peek().kind != TokenKind::Semicolon && peek().kind != TokenKind::EndOfFile) advance();
      expect(TokenKind::Semicolon, "';'");
      return op;
    }
    op.callee = head.text;
    const auto sig = signature_of(state_, head.text);
    if (!sig) {
      fail("unknown gate '" + head.text + "' in gate body (gates must be defined before use)",
           head);
    }
    if (const auto it = state_.gate_defs.find(head.text);
        it != state_.gate_defs.end() && it->second.opaque) {
      fail("opaque gate '" + head.text + "' cannot be applied (it has no definition)", head);
    }
    if (accept(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        do {
          op.args.push_back(parse_expression(&params));
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
    }
    if (static_cast<int>(op.args.size()) != sig->num_params) {
      fail("gate '" + head.text + "' expects " + std::to_string(sig->num_params) +
               " parameter(s), got " + std::to_string(op.args.size()),
           head);
    }
    do {
      const Token& q = expect(TokenKind::Identifier, "qubit argument");
      const auto it = qargs.find(q.text);
      if (it == qargs.end()) {
        if (peek().kind == TokenKind::LBracket) {
          fail("qubit arguments inside a gate body are symbolic (no indexing)", q);
        }
        fail("unknown qubit argument '" + q.text + "' in gate body", q);
      }
      if (peek().kind == TokenKind::LBracket) {
        fail("qubit arguments inside a gate body are symbolic (no indexing)", peek());
      }
      op.qubit_slots.push_back(it->second);
    } while (accept(TokenKind::Comma));
    expect(TokenKind::Semicolon, "';'");
    if (static_cast<int>(op.qubit_slots.size()) != sig->num_qubits) {
      fail("gate '" + head.text + "' expects " + std::to_string(sig->num_qubits) +
               " qubit(s), got " + std::to_string(op.qubit_slots.size()),
           head);
    }
    for (std::size_t i = 0; i < op.qubit_slots.size(); ++i) {
      for (std::size_t j = i + 1; j < op.qubit_slots.size(); ++j) {
        if (op.qubit_slots[i] == op.qubit_slots[j]) {
          fail("duplicate qubit argument in application of '" + head.text + "'", head);
        }
      }
    }
    return op;
  }

  // -- conditionals ---------------------------------------------------------

  void parse_if() {
    advance();  // if
    expect(TokenKind::LParen, "'('");
    const Token creg = expect(TokenKind::Identifier, "classical register");
    const auto it = state_.cregs.find(creg.text);
    if (it == state_.cregs.end()) fail("unknown creg '" + creg.text + "'", creg);
    expect(TokenKind::EqEq, "'=='");
    const Token value = expect(TokenKind::Number, "comparison value");
    if (value.number < 0 || value.number != std::floor(value.number)) {
      fail("condition value must be a non-negative integer", value);
    }
    expect(TokenKind::RParen, "')'");

    Condition cond;
    cond.creg = creg.text;
    cond.width = it->second;
    cond.value = static_cast<std::uint64_t>(value.number);

    const Token& op = peek();
    if (op.kind != TokenKind::Identifier) {
      fail("expected a gate application or measure after 'if (…)'", op);
    }
    if (op.text == "measure") {
      parse_measure(cond);
      return;
    }
    if (op.text == "reset") {
      parse_reset(cond);
      return;
    }
    if (op.text == "if") fail("nested 'if' is not allowed in OpenQASM 2.0", op);
    if (op.text == "barrier" || op.text == "gate" || op.text == "opaque" ||
        op.text == "qreg" || op.text == "creg" || op.text == "include") {
      fail("'if' must guard a gate application or measure, got '" + op.text + "'", op);
    }
    parse_gate_application(cond);
  }

  // -- operands -------------------------------------------------------------

  /// A quantum or classical argument: `name` (whole register, index == -1)
  /// or `name[idx]`.
  struct Operand {
    Token name;
    int index = -1;
  };

  Operand parse_operand() {
    Operand op;
    op.name = expect(TokenKind::Identifier, "register name");
    if (accept(TokenKind::LBracket)) {
      const Token& idx = expect(TokenKind::Number, "index");
      expect(TokenKind::RBracket, "']'");
      if (idx.number < 0 || idx.number != std::floor(idx.number)) {
        fail("index must be a non-negative integer", idx);
      }
      op.index = static_cast<int>(idx.number);
    }
    return op;
  }

  const RegInfo& qreg_of(const Operand& op) {
    const auto it = state_.qregs.find(op.name.text);
    if (it == state_.qregs.end()) fail("unknown qreg '" + op.name.text + "'", op.name);
    if (op.index >= it->second.size) fail("qubit index out of range", op.name);
    return it->second;
  }

  // -- measure --------------------------------------------------------------

  void parse_measure(const std::optional<Condition>& cond) {
    advance();  // measure
    const Operand q = parse_operand();
    expect(TokenKind::Arrow, "'->'");
    const Operand c = parse_operand();
    expect(TokenKind::Semicolon, "';'");

    const RegInfo& qr = qreg_of(q);
    const auto cit = state_.cregs.find(c.name.text);
    if (cit == state_.cregs.end()) fail("unknown creg '" + c.name.text + "'", c.name);
    if (c.index >= cit->second) fail("classical bit index out of range", c.name);

    const auto emit = [&](int qubit, int bit) {
      Gate g = Gate::measure(qubit, c.name.text, bit);
      g.condition = cond;
      state_.gates.push_back(std::move(g));
    };
    if (q.index >= 0 && c.index >= 0) {
      emit(qr.offset + q.index, c.index);
      return;
    }
    if (q.index < 0 && c.index < 0) {
      if (qr.size != cit->second) {
        fail("broadcast measure needs same-sized registers (" + q.name.text + "[" +
                 std::to_string(qr.size) + "] vs " + c.name.text + "[" +
                 std::to_string(cit->second) + "])",
             q.name);
      }
      for (int i = 0; i < qr.size; ++i) emit(qr.offset + i, i);
      return;
    }
    fail("measure operands must be both indexed or both whole registers", q.name);
  }

  // -- reset ----------------------------------------------------------------

  void parse_reset(const std::optional<Condition>& cond) {
    advance();  // reset
    const Operand q = parse_operand();
    expect(TokenKind::Semicolon, "';'");
    const RegInfo& qr = qreg_of(q);
    const auto emit = [&](int qubit) {
      Gate g = Gate::reset(qubit);
      g.condition = cond;
      state_.gates.push_back(std::move(g));
    };
    if (q.index >= 0) {
      emit(qr.offset + q.index);
    } else {
      for (int i = 0; i < qr.size; ++i) emit(qr.offset + i);  // broadcast
    }
  }

  // -- gate applications ----------------------------------------------------

  void parse_gate_application(const std::optional<Condition>& cond) {
    const Token mnemonic = advance();
    const auto sig = signature_of(state_, mnemonic.text);
    if (!sig) fail("unknown gate '" + mnemonic.text + "'", mnemonic);
    if (const auto it = state_.gate_defs.find(mnemonic.text);
        it != state_.gate_defs.end() && it->second.opaque) {
      fail("opaque gate '" + mnemonic.text + "' cannot be applied (it has no definition)",
           mnemonic);
    }

    std::vector<double> params;
    if (accept(TokenKind::LParen)) {
      if (peek().kind != TokenKind::RParen) {
        do {
          params.push_back(parse_expression(nullptr).eval({}));
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "')'");
    }
    if (static_cast<int>(params.size()) != sig->num_params) {
      fail("gate '" + mnemonic.text + "' expects " + std::to_string(sig->num_params) +
               " parameter(s), got " + std::to_string(params.size()),
           mnemonic);
    }

    std::vector<Operand> operands;
    operands.push_back(parse_operand());
    while (accept(TokenKind::Comma)) operands.push_back(parse_operand());
    expect(TokenKind::Semicolon, "';'");
    if (static_cast<int>(operands.size()) != sig->num_qubits) {
      fail("gate '" + mnemonic.text + "' expects " + std::to_string(sig->num_qubits) +
               " qubit(s), got " + std::to_string(operands.size()),
           mnemonic);
    }

    // Whole-register operands broadcast the application; every bare register
    // must have the same size (indexed operands stay fixed).
    int broadcast = -1;
    for (const auto& op : operands) {
      const RegInfo& r = qreg_of(op);
      if (op.index >= 0) continue;
      if (broadcast == -1) {
        broadcast = r.size;
      } else if (broadcast != r.size) {
        fail("broadcast over different-sized registers (" + std::to_string(broadcast) + " vs " +
                 std::to_string(r.size) + ")",
             op.name);
      }
    }

    const int repetitions = broadcast == -1 ? 1 : broadcast;
    for (int rep = 0; rep < repetitions; ++rep) {
      std::vector<int> qubits;
      qubits.reserve(operands.size());
      for (const auto& op : operands) {
        const RegInfo& r = qreg_of(op);
        qubits.push_back(r.offset + (op.index >= 0 ? op.index : rep));
      }
      for (std::size_t i = 0; i < qubits.size(); ++i) {
        for (std::size_t j = i + 1; j < qubits.size(); ++j) {
          if (qubits[i] == qubits[j]) {
            fail("duplicate qubit argument in application of '" + mnemonic.text + "'", mnemonic);
          }
        }
      }
      emit_call(mnemonic.text, params, qubits, cond, /*depth=*/0, mnemonic);
    }
  }

  /// Emits `name(params) qubits` into the gate stream, macro-expanding
  /// user-defined gates recursively. Arities were validated at parse /
  /// definition time.
  void emit_call(const std::string& name, const std::vector<double>& params,
                 const std::vector<int>& qubits, const std::optional<Condition>& cond, int depth,
                 const Token& site) {
    if (depth > state_.options->max_expansion_depth) {
      fail("gate expansion exceeds ParseOptions::max_expansion_depth (" +
               std::to_string(state_.options->max_expansion_depth) + ")",
           site);
    }
    const auto& singles = single_qubit_primitives();
    if (const auto it = singles.find(name); it != singles.end()) {
      state_.gates.push_back(Gate::single(it->second, qubits[0], params).with_condition(cond));
      return;
    }
    if (name == "cx" || name == "CX") {
      state_.gates.push_back(Gate::cnot(qubits[0], qubits[1]).with_condition(cond));
      return;
    }
    if (name == "swap") {
      state_.gates.push_back(Gate::swap(qubits[0], qubits[1]).with_condition(cond));
      return;
    }
    if (name == "ccx") {
      emit_ccx(qubits[0], qubits[1], qubits[2], cond);
      return;
    }
    const GateDef& def = state_.gate_defs.at(name);
    for (const auto& op : def.body) {
      if (op.barrier) {
        // Barriers are structural; a guard on the call does not apply.
        state_.gates.push_back(Gate::barrier());
        continue;
      }
      std::vector<double> values;
      values.reserve(op.args.size());
      for (const auto& e : op.args) values.push_back(e.eval(params));
      std::vector<int> mapped;
      mapped.reserve(op.qubit_slots.size());
      for (const int slot : op.qubit_slots) {
        mapped.push_back(qubits[static_cast<std::size_t>(slot)]);
      }
      emit_call(op.callee, values, mapped, cond, depth + 1, site);
    }
  }

  /// Textbook Clifford+T decomposition of CCX(c1, c2, t): 2 H, 7 T/Tdg,
  /// 6 CX. A guard on the CCX rides along to every emitted gate.
  void emit_ccx(int c1, int c2, int t, const std::optional<Condition>& cond) {
    const auto emit = [&](Gate g) {
      state_.gates.push_back(std::move(g).with_condition(cond));
    };
    emit(Gate::single(OpKind::H, t));
    emit(Gate::cnot(c2, t));
    emit(Gate::single(OpKind::Tdg, t));
    emit(Gate::cnot(c1, t));
    emit(Gate::single(OpKind::T, t));
    emit(Gate::cnot(c2, t));
    emit(Gate::single(OpKind::Tdg, t));
    emit(Gate::cnot(c1, t));
    emit(Gate::single(OpKind::T, c2));
    emit(Gate::single(OpKind::T, t));
    emit(Gate::cnot(c1, c2));
    emit(Gate::single(OpKind::H, t));
    emit(Gate::single(OpKind::T, c1));
    emit(Gate::single(OpKind::Tdg, c2));
    emit(Gate::cnot(c1, c2));
  }

  // -- expressions ----------------------------------------------------------
  // expr := term (('+'|'-') term)*; term := factor (('*'|'/') factor)*;
  // factor := primary ('^' factor)?; primary := number | pi | param |
  // func '(' expr ')' | '-' factor | '(' expr ')'.
  // `params` maps formal parameter names (inside gate bodies); nullptr at
  // top level, where only constants are legal.

  Expr parse_expression(const std::map<std::string, int>* params) {
    Expr v = parse_term(params);
    for (;;) {
      if (accept(TokenKind::Plus)) {
        v = Expr::binary(BinaryOp::Add, std::move(v), parse_term(params));
      } else if (accept(TokenKind::Minus)) {
        v = Expr::binary(BinaryOp::Sub, std::move(v), parse_term(params));
      } else {
        return v;
      }
    }
  }

  Expr parse_term(const std::map<std::string, int>* params) {
    Expr v = parse_factor(params);
    for (;;) {
      if (accept(TokenKind::Star)) {
        v = Expr::binary(BinaryOp::Mul, std::move(v), parse_factor(params));
      } else if (accept(TokenKind::Slash)) {
        v = Expr::binary(BinaryOp::Div, std::move(v), parse_factor(params));
      } else {
        return v;
      }
    }
  }

  Expr parse_factor(const std::map<std::string, int>* params) {
    Expr v = parse_primary(params);
    if (accept(TokenKind::Caret)) {
      v = Expr::binary(BinaryOp::Pow, std::move(v), parse_factor(params));
    }
    return v;
  }

  Expr parse_primary(const std::map<std::string, int>* params) {
    const Token& t = peek();
    if (accept(TokenKind::Minus)) return Expr::unary(UnaryOp::Neg, parse_factor(params));
    if (t.kind == TokenKind::Number) {
      advance();
      return Expr::number(t.number);
    }
    if (t.kind == TokenKind::Identifier) {
      if (t.text == "pi") {
        advance();
        return Expr::pi();
      }
      if (const auto fit = expression_functions().find(t.text);
          fit != expression_functions().end()) {
        advance();
        expect(TokenKind::LParen, "'('");
        Expr arg = parse_expression(params);
        expect(TokenKind::RParen, "')'");
        return Expr::unary(fit->second, std::move(arg));
      }
      if (params != nullptr) {
        if (const auto pit = params->find(t.text); pit != params->end()) {
          advance();
          return Expr::parameter(pit->second);
        }
      }
      fail("unknown identifier '" + t.text + "' in expression", t);
    }
    if (accept(TokenKind::LParen)) {
      Expr v = parse_expression(params);
      expect(TokenKind::RParen, "')'");
      return v;
    }
    fail("expected expression, got '" + describe(t) + "'", t);
  }

  std::string_view src_;
  std::string file_;
  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  ParseState& state_;
};

const std::map<std::string, GateDef>& bundled_qelib1_defs() {
  // Magic-static: thread-safe, parsed exactly once per process instead of
  // once per parse() call that includes qelib1.
  static const std::map<std::string, GateDef> kDefs = [] {
    const ParseOptions options;
    ParseState state;
    state.options = &options;
    Parser sub(kBundledQelib1, "qelib1.inc", state);
    sub.run();
    return std::move(state.gate_defs);
  }();
  return kDefs;
}

}  // namespace

Circuit parse(std::string_view source, std::string name, const ParseOptions& options) {
  obs::Span span("qasm.parse", "qasm");
  span.attr("name", name);
  static obs::Counter& parses = obs::MetricsRegistry::instance().counter(
      "qxmap_qasm_parses_total", "OpenQASM sources parsed");
  parses.inc();
  ParseState state;
  state.options = &options;
  Parser parser(source, name, state);
  parser.run();
  Circuit circuit(state.total_qubits, std::move(name));
  for (auto& g : state.gates) circuit.append(std::move(g));
  span.attr("gates", circuit.size());
  span.attr("qubits", static_cast<long long>(circuit.num_qubits()));
  return circuit;
}

Circuit parse_file(const std::string& path, const ParseOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("qasm: cannot open '" + path + "': " + std::strerror(errno));
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str(), path, options);
}

}  // namespace qxmap::qasm
