#include "qasm/lexer.hpp"

#include <cctype>
#include <cstdlib>

namespace qxmap::qasm {

namespace {

bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_digit(char c) noexcept { return std::isdigit(static_cast<unsigned char>(c)) != 0; }

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  std::size_t i = 0;

  const auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n && i < src.size(); ++k) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance();
      continue;
    }

    Token tok;
    tok.line = line;
    tok.column = col;

    if (is_ident_start(c)) {
      const std::size_t start = i;
      while (i < src.size() && is_ident_char(src[i])) advance();
      tok.kind = TokenKind::Identifier;
      tok.text = std::string(src.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (is_digit(c) || (c == '.' && i + 1 < src.size() && is_digit(src[i + 1]))) {
      const std::size_t start = i;
      while (i < src.size() && (is_digit(src[i]) || src[i] == '.')) advance();
      // exponent part
      if (i < src.size() && (src[i] == 'e' || src[i] == 'E')) {
        advance();
        if (i < src.size() && (src[i] == '+' || src[i] == '-')) advance();
        while (i < src.size() && is_digit(src[i])) advance();
      }
      tok.kind = TokenKind::Number;
      tok.text = std::string(src.substr(start, i - start));
      tok.number = std::strtod(tok.text.c_str(), nullptr);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      advance();
      const std::size_t start = i;
      while (i < src.size() && src[i] != '"') advance();
      if (i == src.size()) throw LexError("unterminated string", tok.line, tok.column);
      tok.kind = TokenKind::String;
      tok.text = std::string(src.substr(start, i - start));
      advance();  // closing quote
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '-' && i + 1 < src.size() && src[i + 1] == '>') {
      tok.kind = TokenKind::Arrow;
      advance(2);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '=' && i + 1 < src.size() && src[i + 1] == '=') {
      tok.kind = TokenKind::EqEq;
      advance(2);
      out.push_back(std::move(tok));
      continue;
    }

    switch (c) {
      case ';': tok.kind = TokenKind::Semicolon; break;
      case ',': tok.kind = TokenKind::Comma; break;
      case '(': tok.kind = TokenKind::LParen; break;
      case ')': tok.kind = TokenKind::RParen; break;
      case '[': tok.kind = TokenKind::LBracket; break;
      case ']': tok.kind = TokenKind::RBracket; break;
      case '{': tok.kind = TokenKind::LBrace; break;
      case '}': tok.kind = TokenKind::RBrace; break;
      case '+': tok.kind = TokenKind::Plus; break;
      case '-': tok.kind = TokenKind::Minus; break;
      case '*': tok.kind = TokenKind::Star; break;
      case '/': tok.kind = TokenKind::Slash; break;
      case '^': tok.kind = TokenKind::Caret; break;
      default:
        throw LexError(std::string("unexpected character '") + c + '\'', line, col);
    }
    advance();
    out.push_back(std::move(tok));
  }

  Token eof;
  eof.kind = TokenKind::EndOfFile;
  eof.line = line;
  eof.column = col;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace qxmap::qasm
