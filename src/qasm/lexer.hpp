/// \file lexer.hpp
/// Tokenizer for the OpenQASM 2.0 subset accepted by the parser.

#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace qxmap::qasm {

/// Token categories.
enum class TokenKind {
  Identifier,   ///< names, keywords, gate mnemonics
  Number,       ///< integer or real literal (value in Token::number)
  String,       ///< double-quoted string (include file names)
  Semicolon,
  Comma,
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Arrow,        ///< ->
  EqEq,         ///< == (classical conditions)
  Plus,
  Minus,
  Star,
  Slash,
  Caret,
  EndOfFile,
};

/// One token with its source location (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;      ///< identifier name or raw literal text
  double number = 0.0;   ///< numeric value when kind == Number
  int line = 0;
  int column = 0;
};

/// Error raised on malformed input; carries the source location (1-based).
class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, int line, int column)
      : std::runtime_error("qasm lex error at " + std::to_string(line) + ':' +
                           std::to_string(column) + ": " + message),
        line_(line),
        column_(column) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenizes the whole input. Line comments (`// …`) are skipped.
/// \throws LexError on unrecognized characters or malformed literals.
[[nodiscard]] std::vector<Token> tokenize(std::string_view source);

}  // namespace qxmap::qasm
