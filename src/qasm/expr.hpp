/// \file expr.hpp
/// Parameter-expression AST for the OpenQASM 2.0 front-end.
///
/// One expression grammar serves both contexts the language allows:
/// arguments of builtin gate applications (evaluated immediately, no free
/// parameters) and arguments inside `gate … { … }` bodies, where an
/// expression may reference the definition's formal parameters. A gate
/// definition stores its body expressions un-evaluated; each call site
/// evaluates them against the actual parameter values.
///
/// Grammar (handled by the parser, which builds this AST):
///   expr    := term (('+'|'-') term)*
///   term    := factor (('*'|'/') factor)*
///   factor  := primary ('^' factor)?          // right-associative
///   primary := number | 'pi' | param | '-' factor
///            | func '(' expr ')' | '(' expr ')'
///   func    := sin | cos | tan | exp | ln | sqrt

#pragma once

#include <memory>
#include <vector>

namespace qxmap::qasm {

/// Unary operations: arithmetic negation plus the qelib math functions.
enum class UnaryOp { Neg, Sin, Cos, Tan, Exp, Ln, Sqrt };

/// Binary arithmetic operations ('^' is power, right-associative).
enum class BinaryOp { Add, Sub, Mul, Div, Pow };

/// An immutable expression tree. Copies are cheap (shared nodes).
class Expr {
 public:
  /// Literal numeric value.
  [[nodiscard]] static Expr number(double value);
  /// The constant pi.
  [[nodiscard]] static Expr pi();
  /// Reference to the `index`-th formal parameter of the enclosing gate
  /// definition (0-based).
  [[nodiscard]] static Expr parameter(int index);
  [[nodiscard]] static Expr unary(UnaryOp op, Expr operand);
  [[nodiscard]] static Expr binary(BinaryOp op, Expr lhs, Expr rhs);

  /// Evaluates the tree; `args[i]` is the value bound to formal parameter i.
  /// \throws std::out_of_range if the tree references a parameter index
  ///         beyond `args` (cannot happen for parser-built trees, which
  ///         resolve parameter names against the definition's formal list).
  [[nodiscard]] double eval(const std::vector<double>& args) const;

  /// True when the tree references no formal parameters (evaluable with {}).
  [[nodiscard]] bool is_constant() const noexcept;

 private:
  struct Node;
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

}  // namespace qxmap::qasm
