/// \file writer.hpp
/// Serializes a Circuit back to OpenQASM 2.0 text.
///
/// Mapped circuits round-trip: `parse(write(c))` reproduces `c` up to the
/// register naming (a single qreg `q` is always emitted). SWAP pseudo-gates
/// are written as `swap` by default or expanded to the 7-gate Fig. 3 form
/// with `Options::expand_swaps`. Classically guarded gates re-emit their
/// `if(creg==value)` prefix, and every creg referenced by a guard is
/// re-declared at its recorded width (a guard creg named `c` shares the
/// default measure register, widened as needed).

#pragma once

#include <string>

#include "ir/circuit.hpp"

namespace qxmap::qasm {

/// Serialization options.
struct WriterOptions {
  bool expand_swaps = false;   ///< emit SWAPs as 3 CX + 4 H instead of `swap`
  bool emit_measure_all = false;  ///< append `measure q[i] -> c[i]` for all qubits
};

/// Returns the QASM text for `c`.
[[nodiscard]] std::string write(const Circuit& c, const WriterOptions& options = {});

/// Writes QASM text to a file. \throws std::runtime_error on I/O failure.
void write_file(const Circuit& c, const std::string& path, const WriterOptions& options = {});

}  // namespace qxmap::qasm
