/// \file service.hpp
/// Mapping-as-a-service front-end: result cache + in-flight deduplication.
///
/// `MappingService::map()` wraps the stateless `qxmap::map()` facade with
/// two layers that matter the moment the library serves repeated traffic
/// (batch pipelines, compilation servers, parameter sweeps re-mapping the
/// same structural circuit):
///
///  * **Result cache.** Completed results are kept in an LRU cache (the
///    idiom of `arch::SwapCostCache`, one level up the stack) keyed by the
///    canonical request identity: the circuit's content fingerprint
///    (ir/fingerprint.hpp), the architecture's structural fingerprint
///    (`arch::CouplingMap::fingerprint()`), and a digest over every
///    result-affecting option. Performance knobs that are documented *not*
///    to change results — `num_threads`, `work_stealing`,
///    `cooperative_tightening` — are excluded from the digest, so a request
///    at 8 threads hits the entry a 1-thread request populated. A cache hit
///    returns a copy of the stored result with `from_cache = true` and the
///    mapped/skeleton circuit names restamped for the requesting circuit
///    (two same-fingerprint circuits may differ in name, which is not part
///    of the identity).
///  * **In-flight deduplication.** Concurrent `map()` calls with the same
///    key share one solve: the first caller (the leader) computes; later
///    callers (joiners) block on a `std::shared_future` of the leader's
///    result instead of spawning duplicate shard work. A failing solve
///    propagates its exception to every joiner and caches *nothing* — the
///    in-flight registry entry is removed before the promise is fulfilled,
///    so the next request with that key retries instead of re-observing the
///    failure (no cache poisoning).
///
/// Determinism: a cache hit is bit-identical to the solve that populated
/// the entry in every result field except the documented observability
/// fields (`seconds`, `bound_polls`, `bound_tightenings` are the stored
/// values, not re-measured) and the `from_cache` marker itself. Joiners
/// receive the leader's freshly solved result with `from_cache = false`.
///
/// docs/service.md specifies the key construction, the dedup protocol, and
/// the interaction with the process-wide `exact::ShardExecutor` (shards of
/// distinct cache misses interleave through its single queue).

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "api/qxmap.hpp"

namespace qxmap::api {

/// Thread-safe caching / deduplicating front-end over `qxmap::map()`.
class MappingService {
 public:
  /// Injectable solver, for tests that need deterministic control over
  /// solve timing and count. Defaults to `qxmap::map`.
  using SolveFn =
      std::function<exact::MappingResult(const Circuit&, const arch::CouplingMap&,
                                         const MapOptions&)>;

  /// Lifetime counters (snapshot; all monotone).
  ///
  /// \deprecated The same tallies are published to the process-wide
  /// `obs::MetricsRegistry` as `qxmap_service_*_total` counters
  /// (docs/observability.md), which is the preferred surface for
  /// monitoring: one registry, one export format, no per-subsystem
  /// snapshot structs. This struct stays for programmatic assertions
  /// (tests, bench gates) but grows no new fields.
  struct Stats {
    std::uint64_t requests = 0;   ///< map() calls
    std::uint64_t hits = 0;       ///< served from the result cache
    std::uint64_t coalesced = 0;  ///< joined another caller's in-flight solve
    std::uint64_t misses = 0;     ///< led a fresh solve (requests = hits + coalesced + misses)
    std::uint64_t solves = 0;     ///< leader solves that completed successfully
    std::uint64_t failures = 0;   ///< leader solves that threw (nothing cached)
    std::uint64_t evictions = 0;  ///< entries dropped by the LRU policy
  };

  static constexpr std::size_t kDefaultCapacity = 64;

  /// \param capacity most-recently-used results kept (0 = cache nothing;
  /// deduplication still applies). \param solve custom solver or {} for
  /// `qxmap::map`.
  explicit MappingService(std::size_t capacity = kDefaultCapacity, SolveFn solve = {});

  MappingService(const MappingService&) = delete;
  MappingService& operator=(const MappingService&) = delete;

  /// The process-wide service used by `qxmap_serve` and `bench_service`.
  [[nodiscard]] static MappingService& instance();

  /// Maps `circuit` onto `architecture`, serving from the cache or joining
  /// an identical in-flight request when possible. Rethrows the solver's
  /// exception on failure (joiners included); failures are never cached.
  [[nodiscard]] exact::MappingResult map(const Circuit& circuit,
                                         const arch::CouplingMap& architecture,
                                         const MapOptions& options = {});

  /// The canonical request identity: "<circuit fp>|<arch fp>|<options
  /// digest>". Only the option block matching `options.method` contributes,
  /// and result-neutral performance knobs are excluded — see the file
  /// comment. Exposed so tests can pin the equivalence classes.
  [[nodiscard]] static std::string cache_key(const Circuit& circuit,
                                             const arch::CouplingMap& architecture,
                                             const MapOptions& options);

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;         ///< cached entries
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  void clear();                                   ///< drop cached results (not stats)

 private:
  struct Entry {
    exact::MappingResult result;
    std::list<std::string>::iterator lru_it;
  };

  exact::MappingResult solve_as_leader(const std::string& key, const Circuit& circuit,
                                       const arch::CouplingMap& architecture,
                                       const MapOptions& options,
                                       std::promise<exact::MappingResult> promise);

  const std::size_t capacity_;
  const SolveFn solve_;
  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> cache_;
  std::unordered_map<std::string, std::shared_future<exact::MappingResult>> in_flight_;
  Stats stats_;
};

}  // namespace qxmap::api
