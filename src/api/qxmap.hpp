/// \file qxmap.hpp
/// Public facade of the library: one include, one entry point.
///
/// ```cpp
/// #include "api/qxmap.hpp"
///
/// auto circuit = qxmap::qasm::parse_file("circuit.qasm");
/// auto arch    = qxmap::arch::ibm_qx4();
/// auto result  = qxmap::map(circuit, arch);      // exact, minimal SWAP/H
/// std::cout << qxmap::qasm::write(result.mapped);
/// ```
///
/// `map()` dispatches between the paper's exact method (default), the
/// Sec. 4 performance-optimised variants (via MapOptions::exact), and the
/// two heuristic baselines.
///
/// The QASM front-end accepts full OpenQASM 2.0 — user-defined `gate`
/// declarations (macro-expanded into the U/CX IR), `if (creg == n)`
/// conditionals (carried on `Gate::condition` and preserved verbatim by
/// every mapper), parameter expressions, and `include` resolution
/// configurable through `qasm::ParseOptions` (include search paths,
/// expansion depth). See docs/qasm-support.md for the construct-by-
/// construct support matrix.
///
/// Performance knobs: `MapOptions::exact.num_threads` caps how many
/// Sec. 4.1 subset instances of this request run concurrently on the
/// process-wide `exact::ShardExecutor` (0 = hardware concurrency; results
/// are thread-count invariant), and every mapper fetches its
/// per-architecture routing tables from the process-wide
/// `arch::SwapCostCache` — repeated `map()` calls on the same coupling map
/// never rebuild the swaps(π) table.
///
/// Serving repeated traffic? `api::MappingService` (api/service.hpp) wraps
/// `map()` with a fingerprint-keyed result cache and in-flight
/// deduplication — see docs/service.md.

#pragma once

#include "arch/architectures.hpp"
#include "arch/coupling_map.hpp"
#include "arch/swap_cost_cache.hpp"
#include "exact/exact_mapper.hpp"
#include "exact/types.hpp"
#include "heuristic/astar_mapper.hpp"
#include "heuristic/layer_weight_mapper.hpp"
#include "heuristic/sabre_mapper.hpp"
#include "heuristic/stochastic_swap.hpp"
#include "ir/circuit.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"

namespace qxmap {

/// Mapping algorithm selector.
enum class Method {
  Exact,           ///< Secs. 3-4: symbolic formulation + reasoning engine
  StochasticSwap,  ///< Qiskit 0.4-style randomized baseline ("IBM [12]")
  AStar,           ///< Zulehner-style layer A* baseline ([22])
  Sabre,           ///< SABRE-style lookahead baseline ([13])
  LayerWeight,     ///< HAIL/TANGO-style layer-weight iterative heuristic —
                   ///< the large-architecture escape hatch (heavy-hex 27+)
};

/// Combined options; only the block matching `method` is consulted.
struct MapOptions {
  Method method = Method::Exact;
  exact::ExactOptions exact;
  heuristic::StochasticSwapOptions stochastic;
  heuristic::AStarOptions astar;
  heuristic::SabreOptions sabre;
  heuristic::LayerWeightOptions layer_weight;
};

/// Maps `circuit` onto `architecture`. See exact::MappingResult for the
/// returned artefacts (mapped circuit, layouts, cost F, verification).
[[nodiscard]] exact::MappingResult map(const Circuit& circuit,
                                       const arch::CouplingMap& architecture,
                                       const MapOptions& options = {});

/// Library version string ("major.minor.patch").
[[nodiscard]] const char* version();

}  // namespace qxmap
