#include "api/qxmap.hpp"

#include <stdexcept>

namespace qxmap {

exact::MappingResult map(const Circuit& circuit, const arch::CouplingMap& architecture,
                         const MapOptions& options) {
  switch (options.method) {
    case Method::Exact:
      return exact::map_exact(circuit, architecture, options.exact);
    case Method::StochasticSwap:
      return heuristic::map_stochastic_swap(circuit, architecture, options.stochastic);
    case Method::AStar:
      return heuristic::map_astar(circuit, architecture, options.astar);
    case Method::Sabre:
      return heuristic::map_sabre(circuit, architecture, options.sabre);
    case Method::LayerWeight:
      return heuristic::map_layer_weight(circuit, architecture, options.layer_weight);
  }
  throw std::invalid_argument("map: bad Method");
}

const char* version() {
#ifdef QXMAP_VERSION_STRING
  return QXMAP_VERSION_STRING;
#else
  return "1.0.0";
#endif
}

}  // namespace qxmap
