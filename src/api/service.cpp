#include "api/service.hpp"

#include <stdexcept>
#include <utility>

#include "common/strings.hpp"
#include "exact/shard_executor.hpp"
#include "ir/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reason/engine.hpp"

namespace qxmap::api {

namespace {

// Registry handles for the service counters (docs/observability.md). The
// mutex-protected Stats struct remains the API-visible snapshot; these feed
// the Prometheus/JSON exports.
struct ServiceMetrics {
  obs::Counter& requests;
  obs::Counter& hits;
  obs::Counter& coalesced;
  obs::Counter& misses;
  obs::Counter& solves;
  obs::Counter& failures;
  obs::Counter& evictions;

  static ServiceMetrics& get() {
    auto& reg = obs::MetricsRegistry::instance();
    static ServiceMetrics m{
        reg.counter("qxmap_service_requests_total", "MappingService::map() calls"),
        reg.counter("qxmap_service_cache_hits_total", "Requests served from the result cache"),
        reg.counter("qxmap_service_dedup_joins_total",
                    "Requests coalesced onto an in-flight identical solve"),
        reg.counter("qxmap_service_cache_misses_total", "Requests that led a fresh solve"),
        reg.counter("qxmap_service_solves_total", "Leader solves completed successfully"),
        reg.counter("qxmap_service_failures_total", "Leader solves that threw"),
        reg.counter("qxmap_service_cache_evictions_total", "LRU evictions from the result cache"),
    };
    return m;
  }
};

/// Digest of every result-affecting option of the *active* method block.
/// Textual on purpose: keys show up verbatim in logs and cache dumps, and a
/// field-by-field string is auditable in a way a second-level hash is not.
/// Excluded by contract (docs/concurrency.md — they change wall time, never
/// results): exact.num_threads, exact.work_stealing,
/// exact.cooperative_tightening.
/// Cost-model segment shared by every method block. The objective always
/// participates; the ErrorWeighted inputs (fallback rates, scale, and the
/// architecture's calibration fingerprint) only when that objective is
/// active — under GateCount they cannot affect results, and hashing them
/// would needlessly split entries.
std::string cost_model_digest(const exact::CostModel& c, const arch::CouplingMap& architecture) {
  std::string d;
  d += ";objective=" + exact::to_string(c.objective);
  d += ";swap_cost=" + std::to_string(c.swap_cost);
  d += ";reverse_cost=" + std::to_string(c.reverse_cost);
  if (c.objective == exact::CostObjective::ErrorWeighted) {
    d += ";cx_err=" + format_fixed(c.cnot_error, 12);
    d += ";1q_err=" + format_fixed(c.single_qubit_error, 12);
    d += ";err_scale=" + std::to_string(c.error_scale);
    d += ";noise=";
    d += architecture.noise_fingerprint().empty() ? "-" : architecture.noise_fingerprint();
  }
  return d;
}

std::string options_digest(const MapOptions& o, const arch::CouplingMap& architecture) {
  std::string d;
  switch (o.method) {
    case Method::Exact: {
      const auto& e = o.exact;
      // Hash the engine that actually runs: without Z3 support,
      // make_engine(EngineKind::Z3) degrades to the CDCL backend, so the
      // two requested kinds produce identical results and must share an
      // entry.
      const bool z3 = e.engine == reason::EngineKind::Z3 && reason::z3_available();
      d += "exact;engine=";
      d += z3 ? "z3" : "cdcl";
      d += ";opt=" + std::to_string(static_cast<int>(e.optimization));
      d += ";strategy=" + exact::to_string(e.strategy);
      d += ";subsets=" + std::to_string(e.use_subsets ? 1 : 0);
      d += ";budget_ms=" + std::to_string(e.budget.count());
      d += cost_model_digest(e.costs, architecture);
      d += ";verify=" + std::to_string(e.verify ? 1 : 0);
      d += ";deep_verify_max=" + std::to_string(e.deep_verify_max_qubits);
      return d;
    }
    case Method::StochasticSwap: {
      const auto& s = o.stochastic;
      d += "stochastic;seed=" + std::to_string(s.seed);
      d += ";trials=" + std::to_string(s.trials);
      d += ";runs=" + std::to_string(s.runs);
      d += cost_model_digest(s.costs, architecture);
      d += ";verify=" + std::to_string(s.verify ? 1 : 0);
      return d;
    }
    case Method::AStar: {
      const auto& a = o.astar;
      d += "astar;max_expansions=" + std::to_string(a.max_expansions);
      d += cost_model_digest(a.costs, architecture);
      d += ";verify=" + std::to_string(a.verify ? 1 : 0);
      return d;
    }
    case Method::Sabre: {
      const auto& s = o.sabre;
      d += "sabre;rounds=" + std::to_string(s.bidirectional_rounds);
      d += ";esw=" + format_fixed(s.extended_set_weight, 12);
      d += ";ess=" + std::to_string(s.extended_set_size);
      d += ";decay=" + format_fixed(s.decay, 12);
      d += ";seed=" + std::to_string(s.seed);
      d += cost_model_digest(s.costs, architecture);
      d += ";verify=" + std::to_string(s.verify ? 1 : 0);
      return d;
    }
    case Method::LayerWeight: {
      const auto& l = o.layer_weight;
      d += "layerweight;iterations=" + std::to_string(l.iterations);
      d += ";lookahead=" + std::to_string(l.lookahead_layers);
      d += ";decay=" + format_fixed(l.decay, 12);
      d += ";seed=" + std::to_string(l.seed);
      d += cost_model_digest(l.costs, architecture);
      d += ";verify=" + std::to_string(l.verify ? 1 : 0);
      return d;
    }
  }
  throw std::invalid_argument("MappingService: bad Method");
}

/// Cached entries keep the leader's circuit names ("<leader>/mapped"); a
/// hit from a same-fingerprint, differently-named circuit restamps them so
/// the caller sees its own name, exactly as a fresh solve would.
void restamp_names(exact::MappingResult& r, const Circuit& circuit) {
  r.mapped.set_name(circuit.name() + "/mapped");
  r.routed_skeleton.set_name(circuit.name() + "/routed-skeleton");
}

}  // namespace

MappingService::MappingService(std::size_t capacity, SolveFn solve)
    : capacity_(capacity),
      solve_(solve ? std::move(solve)
                   : [](const Circuit& c, const arch::CouplingMap& a, const MapOptions& o) {
                       return qxmap::map(c, a, o);
                     }) {}

MappingService& MappingService::instance() {
  // Touch the executor first so it outlives the service by static-
  // destruction order: a leader solve draining at exit must find the
  // executor alive.
  (void)exact::ShardExecutor::instance();
  static MappingService service;
  return service;
}

std::string MappingService::cache_key(const Circuit& circuit,
                                      const arch::CouplingMap& architecture,
                                      const MapOptions& options) {
  return fingerprint_string(circuit) + "|" + architecture.fingerprint() + "|" +
         options_digest(options, architecture);
}

exact::MappingResult MappingService::map(const Circuit& circuit,
                                         const arch::CouplingMap& architecture,
                                         const MapOptions& options) {
  obs::Span span("service.map", "service");
  span.attr("circuit", circuit.name());
  span.attr("arch", architecture.name());
  ServiceMetrics& metrics = ServiceMetrics::get();
  metrics.requests.inc();
  const std::string key = cache_key(circuit, architecture, options);
  std::promise<exact::MappingResult> promise;
  std::shared_future<exact::MappingResult> join;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
    if (const auto it = cache_.find(key); it != cache_.end()) {
      ++stats_.hits;
      metrics.hits.inc();
      obs::Span hit("service.cache_hit", "service");
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      exact::MappingResult result = it->second.result;
      result.from_cache = true;
      restamp_names(result, circuit);
      return result;
    }
    if (const auto it = in_flight_.find(key); it != in_flight_.end()) {
      ++stats_.coalesced;
      metrics.coalesced.inc();
      join = it->second;  // joiner: wait outside the lock
    } else {
      ++stats_.misses;
      metrics.misses.inc();
      in_flight_.emplace(key, promise.get_future().share());
    }
  }
  if (join.valid()) {
    obs::Span wait("service.dedup_join", "service");
    // Throws the leader's exception if the shared solve failed.
    exact::MappingResult result = join.get();
    restamp_names(result, circuit);
    return result;
  }
  return solve_as_leader(key, circuit, architecture, options, std::move(promise));
}

exact::MappingResult MappingService::solve_as_leader(
    const std::string& key, const Circuit& circuit, const arch::CouplingMap& architecture,
    const MapOptions& options, std::promise<exact::MappingResult> promise) {
  exact::MappingResult result;
  obs::Span span("service.solve", "service");
  try {
    result = solve_(circuit, architecture, options);
  } catch (...) {
    {
      // Remove the registry entry *before* fulfilling the promise: a
      // request arriving after the failure leads a fresh solve instead of
      // joining (and re-observing) a dead one. Nothing enters the cache.
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.failures;
      ServiceMetrics::get().failures.inc();
      in_flight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.solves;
    ServiceMetrics::get().solves.inc();
    in_flight_.erase(key);
    if (capacity_ > 0 && cache_.find(key) == cache_.end()) {
      while (cache_.size() >= capacity_) {
        ++stats_.evictions;
        ServiceMetrics::get().evictions.inc();
        cache_.erase(lru_.back());
        lru_.pop_back();
      }
      lru_.push_front(key);
      cache_.emplace(key, Entry{result, lru_.begin()});
    }
  }
  promise.set_value(result);
  return result;
}

MappingService::Stats MappingService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t MappingService::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

void MappingService::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  lru_.clear();
}

}  // namespace qxmap::api
