/// \file astar_mapper.hpp
/// Layer-based A* mapper in the spirit of Zulehner/Paler/Wille (TCAD'18,
/// reference [22] of the paper) — the second heuristic reference point.
///
/// For each layer of gates on pairwise-disjoint qubits: if a CNOT is not
/// executable under the current placement, run an A* search whose states
/// are placements, whose actions are SWAPs on coupling edges (cost 7 each),
/// and whose heuristic is the sum over the layer's CNOTs of the cheapest
/// remaining routing cost (7·(hops-1) plus the direction penalty) — fast
/// and goal-directed but, like the original, not guaranteed minimal
/// globally, since layers are handled one at a time.

#pragma once

#include "arch/coupling_map.hpp"
#include "exact/types.hpp"
#include "ir/circuit.hpp"

namespace qxmap::heuristic {

/// Options for the A* mapper.
struct AStarOptions {
  int max_expansions = 500000;  ///< search-node budget per layer
  /// Objective weights (resolved against the architecture): the per-layer
  /// search expands SWAPs at the resolved swap cost and reports
  /// MappingResult::objective_cost in the same units.
  exact::CostModel costs;
  bool verify = true;           ///< GF(2)-verify the routed skeleton
};

/// Maps `circuit` to `cm`; engine_name is "astar", status Feasible.
/// \throws std::invalid_argument on oversized circuits, disconnected
/// coupling graphs, or when a layer exhausts `max_expansions`.
[[nodiscard]] exact::MappingResult map_astar(const Circuit& circuit, const arch::CouplingMap& cm,
                                             const AStarOptions& options = {});

}  // namespace qxmap::heuristic
