/// \file sabre_mapper.hpp
/// SABRE-style swap mapper (Li, Ding, Xie — ASPLOS'19, the paper's
/// reference [13]) — the third heuristic reference point.
///
/// Differences from the layer mappers: routing decisions are made per
/// *front layer* of a dependency DAG with a lookahead term over the
/// extended set of soon-to-be-executable CNOTs, and the initial layout is
/// improved by bidirectional passes (map the circuit, then map its reverse
/// starting from the final layout, and repeat — the final layout of each
/// pass seeds the next).

#pragma once

#include <cstdint>

#include "arch/coupling_map.hpp"
#include "exact/types.hpp"
#include "ir/circuit.hpp"

namespace qxmap::heuristic {

/// Options for the SABRE-style mapper.
struct SabreOptions {
  int bidirectional_rounds = 3;  ///< forward/backward layout-refinement passes
  double extended_set_weight = 0.5;  ///< lookahead weight W of the SABRE score
  int extended_set_size = 20;       ///< how many future CNOTs the lookahead sees
  double decay = 0.001;             ///< per-use decay added to a qubit's swap score
  std::uint64_t seed = 1;           ///< tie-breaking randomness
  /// Objective weights (resolved against the architecture); reported via
  /// MappingResult::objective_cost. Routing decisions are distance-driven
  /// and unaffected.
  exact::CostModel costs;
  bool verify = true;               ///< GF(2)-verify the routed skeleton
};

/// Maps `circuit` to `cm`; engine_name is "sabre", status Feasible.
/// \throws std::invalid_argument on oversized circuits or disconnected
/// coupling graphs.
[[nodiscard]] exact::MappingResult map_sabre(const Circuit& circuit, const arch::CouplingMap& cm,
                                             const SabreOptions& options = {});

}  // namespace qxmap::heuristic
