/// \file stochastic_swap.hpp
/// Re-implementation of the layer-based randomized swap mapper that shipped
/// with IBM's Qiskit SDK 0.4/0.5 — the "IBM [12]" baseline of Table 1.
///
/// Per layer of gates on disjoint qubits: if some CNOT of the layer is not
/// executable under the current placement, run `trials` randomized greedy
/// searches, each perturbing the squared-distance cost matrix with
/// multiplicative noise and repeatedly applying the cheapest
/// cost-decreasing SWAP until the whole layer becomes executable; the
/// successful trial with the fewest SWAPs wins. If every trial fails, the
/// layer is serialized gate-by-gate and, as a final deterministic fallback,
/// a single CNOT is routed along a shortest path. Direction mismatches are
/// repaired with 4 H gates at emission, exactly like Qiskit's
/// direction_mapper. The paper ran this mapper 5 times per benchmark and
/// kept the best result — use `runs` for that protocol.

#pragma once

#include <cstdint>

#include "arch/coupling_map.hpp"
#include "exact/types.hpp"
#include "ir/circuit.hpp"

namespace qxmap::heuristic {

/// Options for the stochastic swap mapper.
struct StochasticSwapOptions {
  std::uint64_t seed = 1;  ///< RNG stream seed (deterministic per seed)
  int trials = 20;         ///< randomized trials per blocked layer
  int runs = 1;            ///< independent end-to-end runs; best kept
  /// Objective weights (resolved against the architecture); reported via
  /// MappingResult::objective_cost and used to pick the best of `runs`.
  exact::CostModel costs;
  bool verify = true;      ///< GF(2)-verify the routed skeleton
};

/// Maps `circuit` to `cm`. The result's engine_name is "qiskit-stochastic";
/// status is Feasible (heuristic: no optimality claim).
/// \throws std::invalid_argument if the circuit needs more qubits than `cm`
/// has or the coupling graph is disconnected.
[[nodiscard]] exact::MappingResult map_stochastic_swap(const Circuit& circuit,
                                                       const arch::CouplingMap& cm,
                                                       const StochasticSwapOptions& options = {});

}  // namespace qxmap::heuristic
