/// \file layer_weight_mapper.hpp
/// Layer-weight iterative mapper in the spirit of HAIL/TANGO (see PAPERS.md)
/// — the escape hatch for architectures where the exact mapper's Sec. 4.1
/// subset enumeration explodes (heavy-hex 27/65/127 and beyond).
///
/// Routing works layer by layer (ir/layers.hpp ASAP layers), but unlike the
/// per-layer A* baseline each SWAP decision scores not just the current
/// layer's CNOTs but a weighted window of upcoming layers: SWAP s is scored
/// by Σᵢ w[i] · Σ_{(c,t) ∈ layer l+i} (hops(c, t) - 1) after applying s, so
/// a swap that helps the next few layers too beats one that only fixes the
/// present. The greedy phase accepts only strictly-improving swaps (which
/// guarantees termination — the score is a finite strictly-decreasing
/// measure); any CNOT still blocked afterwards is routed by a deterministic
/// shortest-path walk at emission, so every layer always completes.
///
/// The *iterative* part: the whole route is re-run under several weight
/// profiles — profile 0 is the deterministic geometric decay w[i] = decayⁱ,
/// later profiles perturb the lookahead weights with seeded randomness — and
/// the cheapest result under the resolved cost model wins (deterministic per
/// seed, ties keep the earliest profile).

#pragma once

#include <cstdint>

#include "arch/coupling_map.hpp"
#include "exact/types.hpp"
#include "ir/circuit.hpp"

namespace qxmap::heuristic {

/// Options for the layer-weight mapper.
struct LayerWeightOptions {
  int iterations = 4;        ///< weight profiles tried (>= 1; profile 0 is deterministic)
  int lookahead_layers = 4;  ///< scoring window: current layer + this many - 1 ahead
  double decay = 0.4;        ///< profile-0 geometric weight decay per layer of lookahead
  std::uint64_t seed = 1;    ///< seeds the perturbed profiles (profiles >= 1)
  /// Objective weights (resolved against the architecture): picks the best
  /// profile and is reported via MappingResult::objective_cost.
  exact::CostModel costs;
  bool verify = true;        ///< GF(2)-verify the routed skeleton
};

/// Maps `circuit` to `cm`; engine_name is "layer-weight", status Feasible.
/// \throws std::invalid_argument on oversized circuits, disconnected
/// coupling graphs, or non-positive iterations/lookahead.
[[nodiscard]] exact::MappingResult map_layer_weight(const Circuit& circuit,
                                                    const arch::CouplingMap& cm,
                                                    const LayerWeightOptions& options = {});

}  // namespace qxmap::heuristic
