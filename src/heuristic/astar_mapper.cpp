#include "heuristic/astar_mapper.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <stdexcept>

#include "arch/distances.hpp"
#include "arch/swap_cost_cache.hpp"
#include "exact/swap_synthesis.hpp"
#include "ir/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/equivalence.hpp"
#include "sim/linear_reversible.hpp"

namespace qxmap::heuristic {

namespace {

using Clock = std::chrono::steady_clock;

/// A* search for the cheapest SWAP sequence making all `pairs` executable.
std::vector<std::pair<int, int>> astar_route(const std::vector<std::pair<int, int>>& pairs,
                                             const std::vector<int>& start_layout,
                                             const arch::CouplingMap& cm,
                                             const arch::DistanceMatrix& dist, int max_expansions,
                                             long long swap_cost) {
  struct Node {
    long long f;
    long long g;
    std::vector<int> layout;
    std::vector<std::pair<int, int>> swaps;
    bool operator>(const Node& o) const { return f > o.f; }
  };

  const auto heuristic = [&](const std::vector<int>& lay) {
    long long h = 0;
    for (const auto& [qc, qt] : pairs) {
      const int pc = lay[static_cast<std::size_t>(qc)];
      const int pt = lay[static_cast<std::size_t>(qt)];
      if (!cm.coupled(pc, pt)) {
        // Admissible: at least hops-1 SWAPs are still needed for this pair.
        h += swap_cost * (dist.hops(pc, pt) - 1);
      }
    }
    return h;
  };
  const auto is_goal = [&](const std::vector<int>& lay) {
    return std::all_of(pairs.begin(), pairs.end(), [&](const auto& pr) {
      return cm.coupled(lay[static_cast<std::size_t>(pr.first)],
                        lay[static_cast<std::size_t>(pr.second)]);
    });
  };

  std::priority_queue<Node, std::vector<Node>, std::greater<>> open;
  std::map<std::vector<int>, long long> best_g;
  open.push({heuristic(start_layout), 0, start_layout, {}});
  best_g[start_layout] = 0;

  int expansions = 0;
  while (!open.empty()) {
    Node cur = open.top();
    open.pop();
    if (const auto it = best_g.find(cur.layout); it != best_g.end() && it->second < cur.g) {
      continue;  // stale entry
    }
    if (is_goal(cur.layout)) return cur.swaps;
    if (++expansions > max_expansions) break;
    for (const auto& [a, b] : cm.undirected_edges()) {
      Node next = cur;
      next.g += swap_cost;
      for (auto& p : next.layout) {
        if (p == a) {
          p = b;
        } else if (p == b) {
          p = a;
        }
      }
      const auto it = best_g.find(next.layout);
      if (it != best_g.end() && it->second <= next.g) continue;
      best_g[next.layout] = next.g;
      next.swaps.push_back({a, b});
      next.f = next.g + heuristic(next.layout);
      open.push(std::move(next));
    }
  }
  throw std::invalid_argument("map_astar: search budget exhausted for a layer");
}

}  // namespace

exact::MappingResult map_astar(const Circuit& circuit, const arch::CouplingMap& cm,
                               const AStarOptions& options) {
  const auto start = Clock::now();
  const int n = circuit.num_qubits();
  const int m = cm.num_physical();
  if (n > m) throw std::invalid_argument("map_astar: circuit larger than architecture");
  if (!cm.is_connected()) {
    throw std::invalid_argument("map_astar: coupling graph must be connected");
  }
  if (circuit.counts().swap > 0) {
    // Raw swap pseudo-gates in the *input* are decomposed here (Fig. 3 form)
    // and their elementary gates routed like any others.
    return map_astar(circuit.with_swaps_expanded(), cm, options);
  }

  obs::Span span("heuristic.astar", "heuristic");
  span.attr("circuit", circuit.name());
  static obs::Counter& maps_total = obs::MetricsRegistry::instance().counter(
      "qxmap_heuristic_maps_total", "Heuristic mapper invocations (all algorithms)");
  maps_total.inc();

  const auto dist_handle = arch::SwapCostCache::instance().distances(cm);
  const arch::DistanceMatrix& dist = *dist_handle;
  const exact::CostModel costs = options.costs.resolved(cm);

  exact::MappingResult res;
  res.engine_name = "astar";
  res.objective = exact::to_string(costs.objective);
  res.status = reason::Status::Feasible;
  res.mapped = Circuit(m, circuit.name() + "/mapped");
  res.routed_skeleton = Circuit(m, circuit.name() + "/routed-skeleton");

  std::vector<int> layout(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) layout[static_cast<std::size_t>(j)] = j;
  res.initial_layout = layout;

  for (const auto& layer : asap_layers(circuit)) {
    std::vector<std::pair<int, int>> pairs;
    for (const std::size_t gi : layer) {
      const Gate& g = circuit.gate(gi);
      if (g.is_cnot()) pairs.emplace_back(g.control, g.target);
    }
    if (!pairs.empty()) {
      for (const auto& [a, b] :
           astar_route(pairs, layout, cm, dist, options.max_expansions, costs.swap_cost)) {
        exact::append_swap_realisation(res.mapped, cm, a, b);
        res.routed_skeleton.swap(a, b);
        ++res.swaps_inserted;
        for (auto& p : layout) {
          if (p == a) {
            p = b;
          } else if (p == b) {
            p = a;
          }
        }
      }
    }
    for (const std::size_t gi : layer) {
      const Gate& g = circuit.gate(gi);
      if (g.kind == OpKind::Barrier) {
        res.mapped.append(g);
        continue;
      }
      if (g.is_nonunitary() || g.is_single_qubit()) {
        // remapped() keeps params and any classical guard.
        res.mapped.append(g.remapped(layout[static_cast<std::size_t>(g.target)]));
        continue;
      }
      const int pc = layout[static_cast<std::size_t>(g.control)];
      const int pt = layout[static_cast<std::size_t>(g.target)];
      res.routed_skeleton.cnot(pc, pt);
      if (!cm.allows(pc, pt)) ++res.cnots_reversed;
      exact::append_cnot_realisation(res.mapped, cm, pc, pt, g.condition);
    }
  }
  res.final_layout = layout;
  res.cost_f = static_cast<long long>(res.mapped.size()) - static_cast<long long>(circuit.size());
  res.objective_cost = costs.result_cost(res.swaps_inserted, res.cnots_reversed);

  if (options.verify) {
    const bool gf2_ok = sim::implements_skeleton(circuit.cnot_skeleton(), res.routed_skeleton,
                                                 res.initial_layout, res.final_layout);
    res.verified = gf2_ok;
    res.verify_message = std::string("gf2: ") + (gf2_ok ? "ok" : "FAILED");
  }
  res.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return res;
}

}  // namespace qxmap::heuristic
