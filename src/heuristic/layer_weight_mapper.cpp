#include "heuristic/layer_weight_mapper.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>
#include <set>
#include <stdexcept>
#include <vector>

#include "arch/distances.hpp"
#include "arch/swap_cost_cache.hpp"
#include "common/rng.hpp"
#include "exact/swap_synthesis.hpp"
#include "ir/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/linear_reversible.hpp"

namespace qxmap::heuristic {

namespace {

using Clock = std::chrono::steady_clock;

/// One complete routed circuit (a single weight profile's output).
struct Route {
  Circuit mapped;
  Circuit skeleton;
  std::vector<int> final_layout;
  int swaps = 0;
  int reversed = 0;
};

/// Weighted lookahead score of `layout` at layer `li`: for every CNOT in the
/// window [li, li + w.size()), its remaining routing distance (hops - 1,
/// zero once adjacent) scaled by the layer's weight. Lower is better.
double window_score(const std::vector<std::vector<std::pair<int, int>>>& layer_pairs,
                    std::size_t li, const std::vector<double>& w,
                    const std::vector<int>& layout, const arch::DistanceMatrix& dist) {
  double score = 0.0;
  for (std::size_t i = 0; i < w.size() && li + i < layer_pairs.size(); ++i) {
    for (const auto& [qc, qt] : layer_pairs[li + i]) {
      const int pc = layout[static_cast<std::size_t>(qc)];
      const int pt = layout[static_cast<std::size_t>(qt)];
      score += w[i] * static_cast<double>(dist.hops(pc, pt) - 1);
    }
  }
  return score;
}

/// Routes the whole circuit under one weight profile. Phase 1 of each layer
/// greedily applies strictly-improving swaps under the window score; phase 2
/// emits the layer's gates, walking any still-blocked CNOT along a shortest
/// path (each step strictly shrinks that pair's distance, so it terminates).
Route route_profile(const Circuit& circuit, const arch::CouplingMap& cm,
                    const arch::DistanceMatrix& dist,
                    const std::vector<std::vector<std::size_t>>& layers,
                    const std::vector<std::vector<std::pair<int, int>>>& layer_pairs,
                    const std::vector<double>& w) {
  const int n = circuit.num_qubits();
  const int m = cm.num_physical();
  Route out{Circuit(m, circuit.name() + "/mapped"),
            Circuit(m, circuit.name() + "/routed-skeleton"),
            {},
            0,
            0};
  std::vector<int>& layout = out.final_layout;
  layout.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) layout[static_cast<std::size_t>(j)] = j;

  const auto apply_swap = [&](int a, int b) {
    exact::append_swap_realisation(out.mapped, cm, a, b);
    out.skeleton.swap(a, b);
    ++out.swaps;
    for (auto& p : layout) {
      if (p == a) {
        p = b;
      } else if (p == b) {
        p = a;
      }
    }
  };

  for (std::size_t li = 0; li < layers.size(); ++li) {
    // Phase 1: weighted greedy pre-positioning. Only strictly-improving
    // swaps are taken, so the (finite, discrete-valued) score decreases
    // every iteration and the loop cannot revisit a layout.
    while (true) {
      std::set<int> touched;
      for (const auto& [qc, qt] : layer_pairs[li]) {
        const int pc = layout[static_cast<std::size_t>(qc)];
        const int pt = layout[static_cast<std::size_t>(qt)];
        if (!cm.coupled(pc, pt)) {
          touched.insert(pc);
          touched.insert(pt);
        }
      }
      if (touched.empty()) break;
      const double current = window_score(layer_pairs, li, w, layout, dist);
      constexpr double kEps = 1e-9;
      std::optional<std::pair<int, int>> best_edge;
      double best_score = current - kEps;
      for (const auto& [a, b] : cm.undirected_edges()) {
        if (!touched.contains(a) && !touched.contains(b)) continue;
        std::vector<int> trial = layout;
        for (auto& p : trial) {
          if (p == a) {
            p = b;
          } else if (p == b) {
            p = a;
          }
        }
        const double s = window_score(layer_pairs, li, w, trial, dist);
        if (s < best_score) {  // strict improvement; ties keep the earlier edge
          best_score = s;
          best_edge = {a, b};
        }
      }
      if (!best_edge) break;
      apply_swap(best_edge->first, best_edge->second);
    }

    // Phase 2: emit the layer. A CNOT the greedy phase left blocked is
    // routed by walking its control toward its target along sorted
    // neighbours (deterministic shortest-path fallback, as in sabre).
    for (const std::size_t gi : layers[li]) {
      const Gate& g = circuit.gate(gi);
      if (g.kind == OpKind::Barrier) {
        out.mapped.append(g);
        continue;
      }
      if (g.is_nonunitary() || g.is_single_qubit()) {
        // remapped() keeps params and any classical guard.
        out.mapped.append(g.remapped(layout[static_cast<std::size_t>(g.target)]));
        continue;
      }
      while (true) {
        const int pc = layout[static_cast<std::size_t>(g.control)];
        const int pt = layout[static_cast<std::size_t>(g.target)];
        if (cm.coupled(pc, pt)) break;
        int step = -1;
        for (const int nb : cm.neighbours(pc)) {
          if (step < 0 || dist.hops(nb, pt) < dist.hops(step, pt)) step = nb;
        }
        apply_swap(pc, step);
      }
      const int pc = layout[static_cast<std::size_t>(g.control)];
      const int pt = layout[static_cast<std::size_t>(g.target)];
      out.skeleton.cnot(pc, pt);
      if (!cm.allows(pc, pt)) ++out.reversed;
      exact::append_cnot_realisation(out.mapped, cm, pc, pt, g.condition);
    }
  }
  return out;
}

}  // namespace

exact::MappingResult map_layer_weight(const Circuit& circuit, const arch::CouplingMap& cm,
                                      const LayerWeightOptions& options) {
  const auto start = Clock::now();
  const int n = circuit.num_qubits();
  const int m = cm.num_physical();
  if (n > m) throw std::invalid_argument("map_layer_weight: circuit larger than architecture");
  if (!cm.is_connected()) {
    throw std::invalid_argument("map_layer_weight: coupling graph must be connected");
  }
  if (options.iterations < 1 || options.lookahead_layers < 1) {
    throw std::invalid_argument("map_layer_weight: iterations and lookahead must be >= 1");
  }
  if (circuit.counts().swap > 0) {
    // Raw swap pseudo-gates in the *input* are decomposed here (Fig. 3 form)
    // and their elementary gates routed like any others.
    return map_layer_weight(circuit.with_swaps_expanded(), cm, options);
  }

  obs::Span span("heuristic.layer_weight", "heuristic");
  span.attr("circuit", circuit.name());
  span.attr("iterations", static_cast<long long>(options.iterations));
  static obs::Counter& maps_total = obs::MetricsRegistry::instance().counter(
      "qxmap_heuristic_maps_total", "Heuristic mapper invocations (all algorithms)");
  maps_total.inc();

  const auto dist_handle = arch::SwapCostCache::instance().distances(cm);
  const arch::DistanceMatrix& dist = *dist_handle;
  const exact::CostModel costs = options.costs.resolved(cm);

  const auto layers = asap_layers(circuit);
  std::vector<std::vector<std::pair<int, int>>> layer_pairs(layers.size());
  for (std::size_t li = 0; li < layers.size(); ++li) {
    for (const std::size_t gi : layers[li]) {
      const Gate& g = circuit.gate(gi);
      if (g.is_cnot()) layer_pairs[li].emplace_back(g.control, g.target);
    }
  }

  Rng rng(options.seed);
  std::optional<Route> best;
  long long best_cost = 0;
  const std::size_t window = static_cast<std::size_t>(options.lookahead_layers);
  for (int profile = 0; profile < options.iterations; ++profile) {
    obs::Span iter("heuristic.iteration", "heuristic");
    iter.attr("profile", static_cast<long long>(profile));
    std::vector<double> w(window);
    w[0] = 1.0;
    for (std::size_t i = 1; i < window; ++i) {
      if (profile == 0) {
        w[i] = std::pow(options.decay, static_cast<double>(i));
      } else {
        // Perturbed profile: a fresh geometric base plus per-layer jitter.
        // The current layer keeps weight 1, so progress always dominates.
        const double base = 0.15 + 0.7 * rng.next_double();
        w[i] = std::pow(base, static_cast<double>(i)) * (0.75 + 0.5 * rng.next_double());
      }
    }
    Route r = route_profile(circuit, cm, dist, layers, layer_pairs, w);
    const long long cost = costs.result_cost(r.swaps, r.reversed);
    iter.attr("cost", cost);
    if (!best || cost < best_cost) {
      best = std::move(r);
      best_cost = cost;
    }
  }

  exact::MappingResult res;
  res.engine_name = "layer-weight";
  res.status = reason::Status::Feasible;
  res.mapped = std::move(best->mapped);
  res.routed_skeleton = std::move(best->skeleton);
  res.initial_layout.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) res.initial_layout[static_cast<std::size_t>(j)] = j;
  res.final_layout = std::move(best->final_layout);
  res.swaps_inserted = best->swaps;
  res.cnots_reversed = best->reversed;
  res.cost_f = static_cast<long long>(res.mapped.size()) - static_cast<long long>(circuit.size());
  res.objective = exact::to_string(costs.objective);
  res.objective_cost = best_cost;
  res.instances_solved = options.iterations;

  if (options.verify) {
    const bool gf2_ok = sim::implements_skeleton(circuit.cnot_skeleton(), res.routed_skeleton,
                                                 res.initial_layout, res.final_layout);
    res.verified = gf2_ok;
    res.verify_message = std::string("gf2: ") + (gf2_ok ? "ok" : "FAILED");
  }
  res.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return res;
}

}  // namespace qxmap::heuristic
