#include "heuristic/stochastic_swap.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "arch/distances.hpp"
#include "arch/swap_cost_cache.hpp"
#include "common/rng.hpp"
#include "exact/swap_synthesis.hpp"
#include "ir/layers.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/equivalence.hpp"
#include "sim/linear_reversible.hpp"

namespace qxmap::heuristic {

namespace {

using Clock = std::chrono::steady_clock;

/// State of one end-to-end mapping run.
struct RunState {
  Circuit mapped;
  Circuit skeleton;
  std::vector<int> layout;  // logical -> physical
  int swaps = 0;
  int reversed = 0;
};

/// Applies SWAP(a, b) to the layout and emits its realisation.
void apply_swap(RunState& st, const arch::CouplingMap& cm, int a, int b) {
  exact::append_swap_realisation(st.mapped, cm, a, b);
  st.skeleton.swap(a, b);
  ++st.swaps;
  for (auto& p : st.layout) {
    if (p == a) {
      p = b;
    } else if (p == b) {
      p = a;
    }
  }
}

/// Emits one gate under the current layout.
void emit_gate(RunState& st, const arch::CouplingMap& cm, const Gate& g) {
  if (g.kind == OpKind::Barrier) {
    st.mapped.append(g);
    return;
  }
  if (g.is_nonunitary() || g.is_single_qubit()) {
    // remapped() keeps params and any classical guard.
    st.mapped.append(g.remapped(st.layout[static_cast<std::size_t>(g.target)]));
    return;
  }
  const int pc = st.layout[static_cast<std::size_t>(g.control)];
  const int pt = st.layout[static_cast<std::size_t>(g.target)];
  st.skeleton.cnot(pc, pt);
  if (!cm.allows(pc, pt)) ++st.reversed;
  exact::append_cnot_realisation(st.mapped, cm, pc, pt, g.condition);
}

/// All CNOTs of `gates` executable (coupled in some direction) under layout?
bool layer_executable(const std::vector<int>& layout, const std::vector<Gate>& gates,
                      const arch::CouplingMap& cm) {
  return std::all_of(gates.begin(), gates.end(), [&](const Gate& g) {
    return !g.is_cnot() || cm.coupled(layout[static_cast<std::size_t>(g.control)],
                                      layout[static_cast<std::size_t>(g.target)]);
  });
}

/// One randomized greedy trial (the core of Qiskit 0.4's layer_permutation):
/// returns the SWAP edge list making all `pairs` adjacent, or nullopt.
std::optional<std::vector<std::pair<int, int>>> trial_search(
    const std::vector<std::pair<int, int>>& logical_pairs, std::vector<int> layout,
    const arch::CouplingMap& cm, const arch::DistanceMatrix& dist, Rng& rng) {
  const int m = cm.num_physical();
  // Perturbed squared-distance cost matrix (multiplicative noise, as in the
  // original randomized algorithm).
  std::vector<double> xi(static_cast<std::size_t>(m) * static_cast<std::size_t>(m));
  for (int u = 0; u < m; ++u) {
    for (int v = 0; v < m; ++v) {
      const double d = dist.hops(u, v);
      const double noise = 1.0 + 0.2 * (rng.next_double() - 0.5);
      xi[static_cast<std::size_t>(u) * static_cast<std::size_t>(m) + static_cast<std::size_t>(v)] =
          noise * d * d;
    }
  }
  const auto cost_of = [&](const std::vector<int>& lay) {
    double c = 0;
    for (const auto& [qc, qt] : logical_pairs) {
      c += xi[static_cast<std::size_t>(lay[static_cast<std::size_t>(qc)]) *
                  static_cast<std::size_t>(m) +
              static_cast<std::size_t>(lay[static_cast<std::size_t>(qt)])];
    }
    return c;
  };
  const auto done = [&](const std::vector<int>& lay) {
    return std::all_of(logical_pairs.begin(), logical_pairs.end(), [&](const auto& pr) {
      return cm.coupled(lay[static_cast<std::size_t>(pr.first)],
                        lay[static_cast<std::size_t>(pr.second)]);
    });
  };

  std::vector<std::pair<int, int>> swaps;
  double cost = cost_of(layout);
  const int max_steps = 2 * m * m;
  for (int step = 0; step < max_steps; ++step) {
    if (done(layout)) return swaps;
    double best_cost = cost;
    std::pair<int, int> best_edge{-1, -1};
    for (const auto& [a, b] : cm.undirected_edges()) {
      std::vector<int> candidate = layout;
      for (auto& p : candidate) {
        if (p == a) {
          p = b;
        } else if (p == b) {
          p = a;
        }
      }
      const double c = cost_of(candidate);
      if (c < best_cost) {
        best_cost = c;
        best_edge = {a, b};
      }
    }
    if (best_edge.first < 0) return std::nullopt;  // local minimum: trial failed
    swaps.push_back(best_edge);
    for (auto& p : layout) {
      if (p == best_edge.first) {
        p = best_edge.second;
      } else if (p == best_edge.second) {
        p = best_edge.first;
      }
    }
    cost = cost_of(layout);
  }
  return std::nullopt;
}

/// Deterministic fallback for a single blocked CNOT: walk the control along
/// a shortest path until adjacent to the target.
std::vector<std::pair<int, int>> route_single(const std::vector<int>& layout, int qc, int qt,
                                              const arch::CouplingMap& cm,
                                              const arch::DistanceMatrix& dist) {
  std::vector<int> lay = layout;
  std::vector<std::pair<int, int>> swaps;
  while (!cm.coupled(lay[static_cast<std::size_t>(qc)], lay[static_cast<std::size_t>(qt)])) {
    const int pc = lay[static_cast<std::size_t>(qc)];
    const int pt = lay[static_cast<std::size_t>(qt)];
    // Move pc to the neighbour closest to pt.
    int best_nb = -1;
    int best_d = dist.hops(pc, pt);
    for (const int nb : cm.neighbours(pc)) {
      if (dist.hops(nb, pt) < best_d) {
        best_d = dist.hops(nb, pt);
        best_nb = nb;
      }
    }
    if (best_nb < 0) throw std::logic_error("route_single: no progress possible");
    swaps.emplace_back(pc, best_nb);
    for (auto& p : lay) {
      if (p == pc) {
        p = best_nb;
      } else if (p == best_nb) {
        p = pc;
      }
    }
  }
  return swaps;
}

/// Routes + emits one group of gates (a layer or a serialized single gate).
void process_group(RunState& st, const std::vector<Gate>& gates, const arch::CouplingMap& cm,
                   const arch::DistanceMatrix& dist, Rng& rng, int trials) {
  std::vector<std::pair<int, int>> pairs;
  for (const auto& g : gates) {
    if (g.is_cnot()) pairs.emplace_back(g.control, g.target);
  }
  if (!pairs.empty() && !layer_executable(st.layout, gates, cm)) {
    std::optional<std::vector<std::pair<int, int>>> best;
    for (int t = 0; t < trials; ++t) {
      auto trial = trial_search(pairs, st.layout, cm, dist, rng);
      if (trial && (!best || trial->size() < best->size())) best = std::move(trial);
    }
    if (!best && pairs.size() > 1) {
      // Serialize the layer: route and emit gate by gate.
      for (const auto& g : gates) process_group(st, {g}, cm, dist, rng, trials);
      return;
    }
    if (!best) best = route_single(st.layout, pairs[0].first, pairs[0].second, cm, dist);
    for (const auto& [a, b] : *best) apply_swap(st, cm, a, b);
  }
  for (const auto& g : gates) emit_gate(st, cm, g);
}

}  // namespace

exact::MappingResult map_stochastic_swap(const Circuit& circuit, const arch::CouplingMap& cm,
                                         const StochasticSwapOptions& options) {
  const auto start = Clock::now();
  const int n = circuit.num_qubits();
  const int m = cm.num_physical();
  if (n > m) {
    throw std::invalid_argument("map_stochastic_swap: circuit larger than architecture");
  }
  if (!cm.is_connected()) {
    throw std::invalid_argument("map_stochastic_swap: coupling graph must be connected");
  }
  if (circuit.counts().swap > 0) {
    // Raw swap pseudo-gates in the *input* are decomposed here (Fig. 3 form)
    // and their elementary gates routed like any others.
    return map_stochastic_swap(circuit.with_swaps_expanded(), cm, options);
  }
  if (options.trials < 1 || options.runs < 1) {
    throw std::invalid_argument("map_stochastic_swap: trials and runs must be >= 1");
  }

  obs::Span span("heuristic.stochastic_swap", "heuristic");
  span.attr("circuit", circuit.name());
  span.attr("runs", static_cast<long long>(options.runs));
  static obs::Counter& maps_total = obs::MetricsRegistry::instance().counter(
      "qxmap_heuristic_maps_total", "Heuristic mapper invocations (all algorithms)");
  maps_total.inc();

  const auto dist_handle = arch::SwapCostCache::instance().distances(cm);
  const arch::DistanceMatrix& dist = *dist_handle;
  const exact::CostModel costs = options.costs.resolved(cm);
  const auto layers = asap_layers(circuit);

  std::optional<RunState> best;
  std::vector<int> best_initial;
  Rng rng(options.seed);
  for (int run = 0; run < options.runs; ++run) {
    obs::Span iter("heuristic.iteration", "heuristic");
    iter.attr("run", static_cast<long long>(run));
    RunState st{Circuit(m, circuit.name() + "/mapped"),
                Circuit(m, circuit.name() + "/routed-skeleton"),
                {},
                0,
                0};
    st.layout.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) st.layout[static_cast<std::size_t>(j)] = j;  // trivial layout
    const std::vector<int> initial = st.layout;

    for (const auto& layer : layers) {
      std::vector<Gate> gates;
      gates.reserve(layer.size());
      for (const std::size_t gi : layer) gates.push_back(circuit.gate(gi));
      process_group(st, gates, cm, dist, rng, options.trials);
    }
    iter.attr("cost", costs.result_cost(st.swaps, st.reversed));
    // Best-of-runs selection under the requested objective (ties keep the
    // earlier run, so single-run results are unchanged).
    if (!best || costs.result_cost(st.swaps, st.reversed) <
                     costs.result_cost(best->swaps, best->reversed)) {
      best = std::move(st);
      best_initial = initial;
    }
  }

  exact::MappingResult res;
  res.engine_name = "qiskit-stochastic";
  res.status = reason::Status::Feasible;
  res.mapped = std::move(best->mapped);
  res.routed_skeleton = std::move(best->skeleton);
  res.initial_layout = std::move(best_initial);
  res.final_layout = std::move(best->layout);
  res.swaps_inserted = best->swaps;
  res.cnots_reversed = best->reversed;
  res.cost_f = static_cast<long long>(res.mapped.size()) - static_cast<long long>(circuit.size());
  res.objective = exact::to_string(costs.objective);
  res.objective_cost = costs.result_cost(res.swaps_inserted, res.cnots_reversed);
  res.instances_solved = options.runs;

  if (options.verify) {
    const bool gf2_ok = sim::implements_skeleton(circuit.cnot_skeleton(), res.routed_skeleton,
                                                 res.initial_layout, res.final_layout);
    res.verified = gf2_ok;
    res.verify_message = std::string("gf2: ") + (gf2_ok ? "ok" : "FAILED");
  }
  res.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return res;
}

}  // namespace qxmap::heuristic
