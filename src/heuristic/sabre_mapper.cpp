#include "heuristic/sabre_mapper.hpp"

#include <algorithm>
#include <stdexcept>

#include "arch/distances.hpp"
#include "arch/swap_cost_cache.hpp"
#include "common/rng.hpp"
#include "exact/swap_synthesis.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/linear_reversible.hpp"

namespace qxmap::heuristic {

namespace {

using Clock = std::chrono::steady_clock;

/// Dependency bookkeeping over the gate list: a gate becomes available once
/// the previous gate on each of its qubits has been scheduled.
struct Dag {
  explicit Dag(const Circuit& c) : circuit(&c) {
    const auto n = static_cast<std::size_t>(c.num_qubits());
    std::vector<int> last(n, -1);
    preds.assign(c.size(), 0);
    succs.assign(c.size(), {});
    for (std::size_t gi = 0; gi < c.size(); ++gi) {
      for (const int q : c.gate(gi).qubits()) {
        if (last[static_cast<std::size_t>(q)] >= 0) {
          succs[static_cast<std::size_t>(last[static_cast<std::size_t>(q)])].push_back(gi);
          ++preds[gi];
        }
        last[static_cast<std::size_t>(q)] = static_cast<int>(gi);
      }
    }
  }

  const Circuit* circuit;
  std::vector<int> preds;
  std::vector<std::vector<std::size_t>> succs;
};

/// One routing pass. When `emit` is non-null, gates and SWAP realisations
/// are appended to it (and to `skeleton`); otherwise only the layout is
/// evolved (the bidirectional warm-up passes).
struct PassResult {
  std::vector<int> layout;
  int swaps = 0;
  int reversed = 0;
};

PassResult run_pass(const Circuit& circuit, const arch::CouplingMap& cm,
                    const arch::DistanceMatrix& dist, const SabreOptions& opt,
                    std::vector<int> layout, Rng& rng, Circuit* emit, Circuit* skeleton) {
  const Dag dag(circuit);
  const int m = cm.num_physical();
  PassResult result;
  result.layout = std::move(layout);

  std::vector<int> preds = dag.preds;
  std::vector<std::size_t> front;
  for (std::size_t gi = 0; gi < circuit.size(); ++gi) {
    if (preds[gi] == 0) front.push_back(gi);
  }

  std::vector<double> decay(static_cast<std::size_t>(m), 1.0);
  int swaps_since_progress = 0;
  const int livelock_limit = 10 * m * m + 50;

  const auto coupled_under = [&](const Gate& g, const std::vector<int>& lay) {
    return cm.coupled(lay[static_cast<std::size_t>(g.control)],
                      lay[static_cast<std::size_t>(g.target)]);
  };

  const auto schedule = [&](std::size_t gi) {
    const Gate& g = circuit.gate(gi);
    if (emit != nullptr) {
      if (g.kind == OpKind::Barrier) {
        emit->append(g);
      } else if (g.is_nonunitary() || g.is_single_qubit()) {
        // remapped() keeps params and any classical guard.
        emit->append(g.remapped(result.layout[static_cast<std::size_t>(g.target)]));
      } else {
        const int pc = result.layout[static_cast<std::size_t>(g.control)];
        const int pt = result.layout[static_cast<std::size_t>(g.target)];
        skeleton->cnot(pc, pt);
        if (!cm.allows(pc, pt)) ++result.reversed;
        exact::append_cnot_realisation(*emit, cm, pc, pt, g.condition);
      }
    }
    for (const std::size_t succ : dag.succs[gi]) {
      if (--preds[succ] == 0) front.push_back(succ);
    }
  };

  const auto apply_swap = [&](int a, int b) {
    if (emit != nullptr) {
      exact::append_swap_realisation(*emit, cm, a, b);
      skeleton->swap(a, b);
    }
    ++result.swaps;
    for (auto& p : result.layout) {
      if (p == a) {
        p = b;
      } else if (p == b) {
        p = a;
      }
    }
  };

  while (!front.empty()) {
    // Schedule everything executable in the current front.
    bool progressed = false;
    std::vector<std::size_t> blocked;
    std::vector<std::size_t> current = std::move(front);
    front.clear();
    for (const std::size_t gi : current) {
      const Gate& g = circuit.gate(gi);
      if (!g.is_cnot() || coupled_under(g, result.layout)) {
        schedule(gi);
        progressed = true;
      } else {
        blocked.push_back(gi);
      }
    }
    for (const std::size_t gi : blocked) front.push_back(gi);
    if (progressed) {
      std::fill(decay.begin(), decay.end(), 1.0);
      swaps_since_progress = 0;
      continue;
    }
    if (front.empty()) break;

    // All front gates are blocked CNOTs: pick a SWAP.
    if (++swaps_since_progress > livelock_limit) {
      // Deterministic fallback: walk the first blocked pair together.
      const Gate& g = circuit.gate(front[0]);
      const int pc = result.layout[static_cast<std::size_t>(g.control)];
      const int pt = result.layout[static_cast<std::size_t>(g.target)];
      int best_nb = -1;
      int best_d = dist.hops(pc, pt);
      for (const int nb : cm.neighbours(pc)) {
        if (dist.hops(nb, pt) < best_d) {
          best_d = dist.hops(nb, pt);
          best_nb = nb;
        }
      }
      if (best_nb < 0) throw std::logic_error("map_sabre: cannot make progress");
      apply_swap(pc, best_nb);
      continue;
    }

    // Extended set: the next CNOTs reachable behind the front.
    std::vector<std::pair<int, int>> front_pairs;
    for (const std::size_t gi : front) {
      front_pairs.emplace_back(circuit.gate(gi).control, circuit.gate(gi).target);
    }
    std::vector<std::pair<int, int>> extended;
    {
      std::vector<int> tmp_preds = preds;
      std::vector<std::size_t> wave = front;
      while (!wave.empty() && static_cast<int>(extended.size()) < opt.extended_set_size) {
        std::vector<std::size_t> next_wave;
        for (const std::size_t gi : wave) {
          for (const std::size_t succ : dag.succs[gi]) {
            if (--tmp_preds[succ] == 0) {
              next_wave.push_back(succ);
              const Gate& g = circuit.gate(succ);
              if (g.is_cnot()) extended.emplace_back(g.control, g.target);
            }
          }
        }
        wave = std::move(next_wave);
      }
    }

    const auto pair_distance = [&](const std::vector<int>& lay,
                                   const std::vector<std::pair<int, int>>& pairs) {
      double d = 0;
      for (const auto& [qc, qt] : pairs) {
        d += dist.hops(lay[static_cast<std::size_t>(qc)], lay[static_cast<std::size_t>(qt)]);
      }
      return d;
    };

    // Candidate swaps: edges touching any qubit of a blocked front pair.
    double best_score = 0;
    std::pair<int, int> best_edge{-1, -1};
    int candidates = 0;
    for (const auto& [a, b] : cm.undirected_edges()) {
      bool relevant = false;
      for (const auto& [qc, qt] : front_pairs) {
        const int pc = result.layout[static_cast<std::size_t>(qc)];
        const int pt = result.layout[static_cast<std::size_t>(qt)];
        if (a == pc || a == pt || b == pc || b == pt) relevant = true;
      }
      if (!relevant) continue;
      std::vector<int> trial = result.layout;
      for (auto& p : trial) {
        if (p == a) {
          p = b;
        } else if (p == b) {
          p = a;
        }
      }
      double score = pair_distance(trial, front_pairs);
      if (!extended.empty()) {
        score += opt.extended_set_weight * pair_distance(trial, extended) /
                 static_cast<double>(extended.size());
      }
      score *= std::max(decay[static_cast<std::size_t>(a)], decay[static_cast<std::size_t>(b)]);
      // Small random jitter for tie-breaking.
      score += 1e-9 * rng.next_double();
      if (candidates == 0 || score < best_score) {
        best_score = score;
        best_edge = {a, b};
      }
      ++candidates;
    }
    if (best_edge.first < 0) throw std::logic_error("map_sabre: no candidate swap");
    decay[static_cast<std::size_t>(best_edge.first)] += opt.decay;
    decay[static_cast<std::size_t>(best_edge.second)] += opt.decay;
    apply_swap(best_edge.first, best_edge.second);
  }
  return result;
}

/// Circuit with the gate order reversed (routing only cares about pair
/// adjacency, so daggering the gates is unnecessary).
Circuit reversed(const Circuit& c) {
  Circuit out(c.num_qubits(), c.name());
  for (std::size_t i = c.size(); i-- > 0;) out.append(c.gate(i));
  return out;
}

}  // namespace

exact::MappingResult map_sabre(const Circuit& circuit, const arch::CouplingMap& cm,
                               const SabreOptions& options) {
  const auto start = Clock::now();
  const int n = circuit.num_qubits();
  const int m = cm.num_physical();
  if (n > m) throw std::invalid_argument("map_sabre: circuit larger than architecture");
  if (!cm.is_connected()) {
    throw std::invalid_argument("map_sabre: coupling graph must be connected");
  }
  if (circuit.counts().swap > 0) {
    // Raw swap pseudo-gates in the *input* are decomposed here (Fig. 3 form)
    // and their elementary gates routed like any others.
    return map_sabre(circuit.with_swaps_expanded(), cm, options);
  }

  obs::Span span("heuristic.sabre", "heuristic");
  span.attr("circuit", circuit.name());
  span.attr("bidirectional_rounds", static_cast<long long>(options.bidirectional_rounds));
  static obs::Counter& maps_total = obs::MetricsRegistry::instance().counter(
      "qxmap_heuristic_maps_total", "Heuristic mapper invocations (all algorithms)");
  maps_total.inc();

  const auto dist_handle = arch::SwapCostCache::instance().distances(cm);
  const arch::DistanceMatrix& dist = *dist_handle;
  const exact::CostModel costs = options.costs.resolved(cm);
  Rng rng(options.seed);
  const Circuit rev = reversed(circuit);

  // Bidirectional warm-up: forward and backward passes refine the layout.
  std::vector<int> layout(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) layout[static_cast<std::size_t>(j)] = j;
  for (int round = 0; round < options.bidirectional_rounds; ++round) {
    obs::Span iter("heuristic.iteration", "heuristic");
    iter.attr("round", static_cast<long long>(round));
    layout = run_pass(circuit, cm, dist, options, std::move(layout), rng, nullptr, nullptr).layout;
    layout = run_pass(rev, cm, dist, options, std::move(layout), rng, nullptr, nullptr).layout;
  }

  exact::MappingResult res;
  res.engine_name = "sabre";
  res.status = reason::Status::Feasible;
  res.mapped = Circuit(m, circuit.name() + "/mapped");
  res.routed_skeleton = Circuit(m, circuit.name() + "/routed-skeleton");
  res.initial_layout = layout;

  const PassResult final_pass = run_pass(circuit, cm, dist, options, std::move(layout), rng,
                                         &res.mapped, &res.routed_skeleton);
  res.final_layout = final_pass.layout;
  res.swaps_inserted = final_pass.swaps;
  res.cnots_reversed = final_pass.reversed;
  res.cost_f = static_cast<long long>(res.mapped.size()) - static_cast<long long>(circuit.size());
  res.objective = exact::to_string(costs.objective);
  res.objective_cost = costs.result_cost(res.swaps_inserted, res.cnots_reversed);

  if (options.verify) {
    const bool gf2_ok = sim::implements_skeleton(circuit.cnot_skeleton(), res.routed_skeleton,
                                                 res.initial_layout, res.final_layout);
    res.verified = gf2_ok;
    res.verify_message = std::string("gf2: ") + (gf2_ok ? "ok" : "FAILED");
  }
  res.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return res;
}

}  // namespace qxmap::heuristic
