/// \file solver.hpp
/// A conflict-driven clause-learning (CDCL) SAT solver.
///
/// This is the self-contained "reasoning engine" backend of the library
/// (the paper uses Z3; Sec. 3.1 only requires *some* engine that handles
/// large search spaces). Feature set: two-watched-literal propagation,
/// first-UIP clause learning with recursive minimization, VSIDS decision
/// heuristic with phase saving, Luby restarts, and activity-based learnt
/// clause deletion. The optimisation loop of reason/cdcl_engine adds
/// cost-bound clauses between incremental solve() calls, which is sound
/// because bounds only ever tighten.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sat/literal.hpp"

namespace qxmap::sat {

/// Outcome of a solve() call.
enum class SolveResult { Satisfiable, Unsatisfiable, Unknown };

/// Search statistics, cumulative over the solver's lifetime.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_deleted = 0;
};

/// CDCL solver. Not thread-safe; clauses may be added between solve calls
/// (monotone strengthening), variables may be added at any time.
class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns it.
  Var new_var();

  [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(assign_.size()); }

  /// Adds a clause (disjunction of literals). Returns false iff the clause
  /// makes the formula trivially unsatisfiable at level 0 (empty clause or
  /// conflicting unit). Duplicate literals are merged; tautologies are
  /// silently dropped (returns true).
  bool add_clause(std::vector<Lit> lits);

  /// Convenience overloads.
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

  /// Runs the CDCL search. `interrupt` (if provided) is polled between
  /// conflicts; returning true aborts with SolveResult::Unknown.
  SolveResult solve(const std::function<bool()>& interrupt = nullptr);

  /// Model access after Satisfiable: value of `v` in the found model.
  [[nodiscard]] bool model_value(Var v) const;
  [[nodiscard]] bool model_value(Lit l) const { return model_value(l.var()) != l.negative(); }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

  /// True once the formula has been proven unsatisfiable at level 0 (any
  /// further solve() returns Unsatisfiable immediately).
  [[nodiscard]] bool proven_unsat() const noexcept { return unsat_; }

 private:
  // --- clause storage -------------------------------------------------
  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct Watcher {
    ClauseRef clause;
    Lit blocker;  // if blocker is true, clause is satisfied; skip the visit
  };

  // --- internal helpers -------------------------------------------------
  [[nodiscard]] Value value(Var v) const noexcept { return assign_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] Value value(Lit l) const noexcept {
    return l.negative() ? -value(l.var()) : value(l.var());
  }

  void attach_clause(ClauseRef cr);
  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backjump_level);
  [[nodiscard]] bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  [[nodiscard]] Lit pick_branch_literal();
  void bump_var(Var v);
  void bump_clause(Clause& c);
  void decay_activities();
  void reduce_learnts();
  [[nodiscard]] static std::uint64_t luby(std::uint64_t i);

  // --- state --------------------------------------------------------------
  std::vector<Clause> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  std::vector<Value> assign_;
  std::vector<bool> model_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_limits_;  // decision-level boundaries
  std::size_t qhead_ = 0;
  std::vector<ClauseRef> reason_;
  std::vector<int> level_;
  std::vector<double> activity_;
  std::vector<bool> saved_phase_;
  std::vector<bool> seen_;  // scratch for analyze()

  // VSIDS order: binary max-heap of vars keyed by activity.
  std::vector<Var> heap_;
  std::vector<int> heap_pos_;  // -1 if not in heap
  void heap_insert(Var v);
  Var heap_pop();
  void heap_sift_up(int i);
  void heap_sift_down(int i);
  [[nodiscard]] bool heap_less(Var a, Var b) const noexcept {
    return activity_[static_cast<std::size_t>(a)] < activity_[static_cast<std::size_t>(b)];
  }

  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  bool unsat_ = false;
  SolverStats stats_;
};

}  // namespace qxmap::sat
