/// \file solver.hpp
/// A conflict-driven clause-learning (CDCL) SAT solver.
///
/// This is the self-contained "reasoning engine" backend of the library
/// (the paper uses Z3; Sec. 3.1 only requires *some* engine that handles
/// large search spaces). Feature set: two-watched-literal propagation over
/// a contiguous clause arena (clause_arena.hpp), first-UIP clause learning
/// with recursive minimization and LBD tracking, binary-heap VSIDS with
/// phase saving (vsids_heap.hpp), glucose-style adaptive restarts (Luby
/// selectable), periodic learnt-database reduction (reduce_db.hpp), and a
/// top-level simplify() pass, and MiniSat-style assumptions with
/// final-conflict analysis. The optimisation loop of reason/cdcl_engine
/// adds cost-bound clauses between incremental solve() calls (sound because
/// permanent bounds only ever tighten) and probes speculative bounds via
/// assumption literals, which leave the clause database untouched.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sat/clause_arena.hpp"
#include "sat/literal.hpp"
#include "sat/reduce_db.hpp"
#include "sat/vsids_heap.hpp"

namespace qxmap::sat {

/// Outcome of a solve() call.
enum class SolveResult { Satisfiable, Unsatisfiable, Unknown };

/// Restart schedule. Glucose-style (default) restarts when the recent
/// learnt-clause LBD average exceeds the long-run average — aggressive on
/// UNSAT-like search, blocked when the trail keeps growing (SAT-like).
/// Luby is the classic universal schedule.
enum class RestartPolicy { Glucose, Luby };

/// Search statistics, cumulative over the solver's lifetime.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned = 0;         ///< clauses learnt (units included)
  std::uint64_t learnt_deleted = 0;  ///< clauses removed by ReduceDB
  std::uint64_t learnt_kept = 0;     ///< survivors of the latest ReduceDB pass
  std::uint64_t lbd_sum = 0;         ///< sum of LBDs at learn time (avg = lbd_sum/learned)
};

/// CDCL solver. Not thread-safe; clauses may be added between solve calls
/// (monotone strengthening), variables may be added at any time.
class Solver {
 public:
  Solver();

  /// Creates a fresh variable and returns it.
  Var new_var();

  [[nodiscard]] int num_vars() const noexcept { return static_cast<int>(assign_.size()); }

  /// Adds a clause (disjunction of literals). Returns false iff the clause
  /// makes the formula trivially unsatisfiable at level 0 (empty clause or
  /// conflicting unit). Duplicate literals are merged; tautologies are
  /// silently dropped (returns true).
  bool add_clause(std::vector<Lit> lits);

  /// Convenience overloads.
  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }

  /// Runs the CDCL search. `interrupt` (if provided) is polled at every
  /// conflict; returning true aborts with SolveResult::Unknown.
  ///
  /// `assumptions` are literals held true for this call only (MiniSat
  /// semantics): each is enqueued as a pseudo-decision on its own level
  /// before any heuristic decision, so learnt clauses never depend on them
  /// and remain valid for later calls with different assumptions. On
  /// Unsatisfiable, failed_assumptions() distinguishes "unsat under these
  /// assumptions" (non-empty subset responsible) from "unsat outright"
  /// (empty).
  SolveResult solve(const std::function<bool()>& interrupt = nullptr,
                    const std::vector<Lit>& assumptions = {});

  /// After solve() returned Unsatisfiable: the subset of the assumptions
  /// that final-conflict analysis found responsible (possibly a strict
  /// subset). Empty iff the formula is unsatisfiable regardless of
  /// assumptions — in that case proven_unsat() is also true.
  [[nodiscard]] const std::vector<Lit>& failed_assumptions() const noexcept {
    return failed_assumptions_;
  }

  /// Top-level preprocessing: propagates level-0 facts to fixpoint, drops
  /// satisfied clauses and strips falsified literals from the rest. Cheap
  /// when no new level-0 facts arrived since the last call. Returns false
  /// iff the formula became unsatisfiable. solve() runs this implicitly;
  /// callers that add many clauses up front (the optimisation loop) may
  /// call it explicitly before timing-sensitive work.
  bool simplify();

  void set_restart_policy(RestartPolicy p) noexcept { restart_policy_ = p; }

  /// Model access after Satisfiable: value of `v` in the found model.
  [[nodiscard]] bool model_value(Var v) const;
  [[nodiscard]] bool model_value(Lit l) const { return model_value(l.var()) != l.negative(); }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

  /// True once the formula has been proven unsatisfiable at level 0 (any
  /// further solve() returns Unsatisfiable immediately).
  [[nodiscard]] bool proven_unsat() const noexcept { return unsat_; }

 private:
  struct Watcher {
    CRef clause;
    Lit blocker;  // if blocker is true, clause is satisfied; skip the visit
  };

  // --- internal helpers -------------------------------------------------
  [[nodiscard]] Value value(Var v) const noexcept { return assign_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] Value value(Lit l) const noexcept {
    return l.negative() ? -value(l.var()) : value(l.var());
  }

  void attach_clause(CRef cr);
  void enqueue(Lit l, CRef reason);
  CRef propagate();
  void analyze(CRef conflict, std::vector<Lit>& learnt, int& backjump_level, std::uint32_t& lbd);
  void analyze_final(Lit failed);
  [[nodiscard]] bool literal_redundant(Lit l, std::uint32_t abstract_levels);
  void backtrack(int level);
  [[nodiscard]] Lit pick_branch_literal();
  void bump_clause(CRef cr);
  [[nodiscard]] std::uint32_t compute_lbd(const std::vector<Lit>& lits);
  [[nodiscard]] std::uint32_t clause_lbd(ClauseView c);
  [[nodiscard]] bool locked(CRef cr) const;
  void reduce_learnts();
  void collect_garbage();
  void rebuild_watches();
  [[nodiscard]] static std::uint64_t luby(std::uint64_t i);

  // --- state --------------------------------------------------------------
  ClauseArena arena_;
  std::vector<CRef> clauses_;  // problem clauses
  std::vector<CRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()
  std::vector<Value> assign_;
  std::vector<bool> model_;
  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_limits_;  // decision-level boundaries
  std::size_t qhead_ = 0;
  std::vector<CRef> reason_;
  std::vector<int> level_;
  std::vector<bool> saved_phase_;
  std::vector<bool> seen_;             // scratch for analyze()
  std::vector<std::uint64_t> level_stamp_;  // scratch for compute_lbd()
  std::uint64_t stamp_ = 0;

  VsidsHeap heap_;
  ReduceDb reduce_db_;
  RestartPolicy restart_policy_ = RestartPolicy::Glucose;

  float clause_inc_ = 1.0f;
  bool unsat_ = false;
  std::size_t simplified_at_trail_ = 0;  // trail size at the last sweep
  std::vector<Lit> failed_assumptions_;
  SolverStats stats_;
};

}  // namespace qxmap::sat
