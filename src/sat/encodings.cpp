#include "sat/encodings.hpp"

namespace qxmap::sat {

void add_at_most_one(Solver& s, const std::vector<Lit>& lits) {
  const std::size_t n = lits.size();
  if (n <= 1) return;
  if (n <= 6) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        s.add_clause(~lits[i], ~lits[j]);
      }
    }
    return;
  }
  // Sequential encoding: prefix registers r_i ↔ "one of lits[0..i] is true".
  std::vector<Lit> reg(n - 1);
  for (auto& r : reg) r = pos(s.new_var());
  s.add_clause(~lits[0], reg[0]);
  for (std::size_t i = 1; i + 1 < n; ++i) {
    s.add_clause(~lits[i], reg[i]);
    s.add_clause(~reg[i - 1], reg[i]);
    s.add_clause(~lits[i], ~reg[i - 1]);
  }
  s.add_clause(~lits[n - 1], ~reg[n - 2]);
}

void add_at_least_one(Solver& s, const std::vector<Lit>& lits) {
  s.add_clause(lits);
}

void add_exactly_one(Solver& s, const std::vector<Lit>& lits) {
  add_at_least_one(s, lits);
  add_at_most_one(s, lits);
}

Lit make_and(Solver& s, Lit a, Lit b) {
  const Lit t = pos(s.new_var());
  s.add_clause(~t, a);
  s.add_clause(~t, b);
  s.add_clause(~a, ~b, t);
  return t;
}

Lit make_or(Solver& s, const std::vector<Lit>& lits) {
  const Lit t = pos(s.new_var());
  if (lits.empty()) {
    s.add_clause(~t);
    return t;
  }
  std::vector<Lit> big;
  big.reserve(lits.size() + 1);
  big.push_back(~t);
  for (const Lit l : lits) {
    s.add_clause(~l, t);
    big.push_back(l);
  }
  s.add_clause(std::move(big));
  return t;
}

Lit make_equal(Solver& s, Lit a, Lit b) {
  const Lit t = pos(s.new_var());
  s.add_clause(~t, a, ~b);
  s.add_clause(~t, ~a, b);
  s.add_clause(t, a, b);
  s.add_clause(t, ~a, ~b);
  return t;
}

void add_equal(Solver& s, Lit a, Lit b) {
  s.add_clause(~a, b);
  s.add_clause(a, ~b);
}

void add_implies_equal(Solver& s, Lit antecedent, Lit a, Lit b) {
  s.add_clause(~antecedent, ~a, b);
  s.add_clause(~antecedent, a, ~b);
}

}  // namespace qxmap::sat
