#include "sat/dimacs.hpp"

#include <sstream>
#include <stdexcept>

#include "common/strings.hpp"

namespace qxmap::sat {

Cnf parse_dimacs(std::string_view text) {
  Cnf cnf;
  bool header_seen = false;
  std::vector<Lit> current;
  std::size_t pos = 0;
  int declared_clauses = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? std::string_view::npos : nl - pos);
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    const std::string_view line = trim(raw);
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      const auto parts = split_whitespace(line);
      if (parts.size() != 4 || parts[1] != "cnf") {
        throw std::invalid_argument("parse_dimacs: malformed problem line");
      }
      cnf.num_vars = std::stoi(parts[2]);
      declared_clauses = std::stoi(parts[3]);
      header_seen = true;
      continue;
    }
    if (!header_seen) throw std::invalid_argument("parse_dimacs: clause before header");
    for (const auto& tok : split_whitespace(line)) {
      const int v = std::stoi(tok);
      if (v == 0) {
        cnf.clauses.push_back(current);
        current.clear();
      } else {
        const int var = std::abs(v) - 1;
        if (var >= cnf.num_vars) throw std::invalid_argument("parse_dimacs: variable out of range");
        current.push_back(Lit(var, v < 0));
      }
    }
  }
  if (!current.empty()) throw std::invalid_argument("parse_dimacs: unterminated clause");
  if (declared_clauses != static_cast<int>(cnf.clauses.size())) {
    throw std::invalid_argument("parse_dimacs: clause count mismatch");
  }
  return cnf;
}

std::string to_dimacs(const Cnf& cnf) {
  std::ostringstream os;
  os << "p cnf " << cnf.num_vars << ' ' << cnf.clauses.size() << '\n';
  for (const auto& clause : cnf.clauses) {
    for (const Lit l : clause) {
      // Same output as Lit::to_string(); streamed directly because the
      // string concat trips GCC 12's -Wrestrict false positive at -O3.
      if (l.negative()) os << '-';
      os << l.var() + 1 << ' ';
    }
    os << "0\n";
  }
  return os.str();
}

bool load_cnf(Solver& s, const Cnf& cnf) {
  while (s.num_vars() < cnf.num_vars) s.new_var();
  for (const auto& clause : cnf.clauses) {
    if (!s.add_clause(clause)) return false;
  }
  return true;
}

}  // namespace qxmap::sat
