/// \file encodings.hpp
/// CNF encodings of the constraint shapes used by the symbolic formulation:
/// exactly-one / at-most-one (Eq. 1), Tseitin AND/OR (Eqs. 2 and 4), and
/// equality links (Eq. 3).

#pragma once

#include <vector>

#include "sat/literal.hpp"
#include "sat/solver.hpp"

namespace qxmap::sat {

/// at-most-one over `lits`: pairwise encoding for small sets (n <= 6,
/// O(n²) clauses, no aux vars), sequential ("ladder") encoding otherwise
/// (O(n) clauses and aux vars).
void add_at_most_one(Solver& s, const std::vector<Lit>& lits);

/// at-least-one: a single clause.
void add_at_least_one(Solver& s, const std::vector<Lit>& lits);

/// exactly-one = at-least-one + at-most-one.
void add_exactly_one(Solver& s, const std::vector<Lit>& lits);

/// Returns a fresh literal t with t ↔ (a ∧ b).
[[nodiscard]] Lit make_and(Solver& s, Lit a, Lit b);

/// Returns a fresh literal t with t ↔ (l_1 ∨ … ∨ l_k). For an empty input
/// returns a literal fixed to false.
[[nodiscard]] Lit make_or(Solver& s, const std::vector<Lit>& lits);

/// Returns a fresh literal t with t ↔ (a = b), i.e. t ↔ XNOR(a, b).
[[nodiscard]] Lit make_equal(Solver& s, Lit a, Lit b);

/// Adds clauses forcing a = b.
void add_equal(Solver& s, Lit a, Lit b);

/// Adds clauses for the implication antecedent → (a = b).
void add_implies_equal(Solver& s, Lit antecedent, Lit a, Lit b);

}  // namespace qxmap::sat
