/// \file reduce_db.hpp
/// Learnt-clause database reduction policy (glucose-style).
///
/// Learnt clauses accumulate fast on hard instances; most never propagate
/// again and only slow the watch lists down. Periodically — first after
/// `kFirstReduceConflicts` conflicts, then at linearly growing intervals —
/// the solver deletes the worst half of the learnts, ranked by
/// (LBD descending, activity ascending). Three classes are pinned and never
/// deleted: glue clauses (LBD <= kGlueLbd), binary clauses, and clauses
/// currently locked as the reason for a trail assignment.

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sat/clause_arena.hpp"

namespace qxmap::sat {

class ReduceDb {
 public:
  /// True once enough conflicts have passed since the last reduction.
  [[nodiscard]] bool due(std::uint64_t conflicts) const noexcept {
    return conflicts >= next_reduce_;
  }

  /// Deletes the worst half of `learnts` (compacting the vector in place);
  /// `locked(cr)` must return true for clauses that are the reason of a
  /// current assignment. Returns the number of clauses deleted and
  /// schedules the next reduction.
  std::size_t reduce(ClauseArena& arena, std::vector<CRef>& learnts,
                     const std::function<bool(CRef)>& locked);

  [[nodiscard]] std::uint64_t reductions() const noexcept { return reductions_; }

  static constexpr std::uint32_t kGlueLbd = 2;
  static constexpr std::uint64_t kFirstReduceConflicts = 2000;
  static constexpr std::uint64_t kReduceIncrement = 300;

 private:
  std::uint64_t next_reduce_ = kFirstReduceConflicts;
  std::uint64_t reductions_ = 0;
};

}  // namespace qxmap::sat
