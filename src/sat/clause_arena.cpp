#include "sat/clause_arena.hpp"

#include <cassert>

namespace qxmap::sat {

CRef ClauseArena::alloc(const std::vector<Lit>& lits, bool learnt) {
  assert(!lits.empty());
  const CRef cr = static_cast<CRef>(mem_.size());
  const std::uint32_t n = static_cast<std::uint32_t>(lits.size());
  mem_.push_back((n << ClauseView::kFlagBits) | (learnt ? ClauseView::kLearntFlag : 0u));
  mem_.push_back(0u);                                   // LBD
  mem_.push_back(std::bit_cast<std::uint32_t>(0.0f));   // activity
  for (const Lit l : lits) mem_.push_back(static_cast<std::uint32_t>(l.index()));
  return cr;
}

void ClauseArena::free_clause(CRef cr) {
  ClauseView c = view(cr);
  if (c.deleted()) return;
  c.mark_deleted();
  wasted_ += ClauseView::kHeaderWords + c.size();
}

void ClauseArena::shrink(CRef cr, std::uint32_t new_size) {
  ClauseView c = view(cr);
  assert(new_size >= 1 && new_size <= c.size());
  wasted_ += c.size() - new_size;
  const std::uint32_t flags = mem_[cr] & ((1u << ClauseView::kFlagBits) - 1u);
  mem_[cr] = (new_size << ClauseView::kFlagBits) | flags;
}

CRef ClauseArena::relocate_to(ClauseArena& to, CRef cr) {
  ClauseView c = view(cr);
  assert(!c.deleted());
  // Already moved: word 1 holds the forwarding reference.
  if (c.marked()) return mem_[cr + 1];
  const std::uint32_t n = c.size();
  const CRef ncr = static_cast<CRef>(to.mem_.size());
  for (std::uint32_t i = 0; i < ClauseView::kHeaderWords + n; ++i) {
    to.mem_.push_back(mem_[cr + i]);
  }
  c.set_mark();
  mem_[cr + 1] = ncr;  // forwarding pointer overwrites the (copied) LBD word
  return ncr;
}

}  // namespace qxmap::sat
