#include "sat/reduce_db.hpp"

#include <algorithm>

namespace qxmap::sat {

std::size_t ReduceDb::reduce(ClauseArena& arena, std::vector<CRef>& learnts,
                             const std::function<bool(CRef)>& locked) {
  // Partition: pinned clauses (glue / binary / locked) survive
  // unconditionally; the rest are deletion candidates.
  std::vector<CRef> pinned;
  std::vector<CRef> candidates;
  pinned.reserve(learnts.size());
  candidates.reserve(learnts.size());
  for (const CRef cr : learnts) {
    const ClauseView c = arena.view(cr);
    if (c.deleted()) continue;  // already removed by simplify()
    if (c.lbd() <= kGlueLbd || c.size() <= 2 || locked(cr)) {
      pinned.push_back(cr);
    } else {
      candidates.push_back(cr);
    }
  }

  // Worst first: high LBD, then low activity; CRef breaks ties so the
  // ordering (and hence the whole solver run) is deterministic.
  std::sort(candidates.begin(), candidates.end(), [&arena](CRef a, CRef b) {
    const ClauseView ca = arena.view(a);
    const ClauseView cb = arena.view(b);
    if (ca.lbd() != cb.lbd()) return ca.lbd() > cb.lbd();
    if (ca.activity() != cb.activity()) return ca.activity() < cb.activity();
    return a < b;
  });

  const std::size_t to_delete = candidates.size() / 2;
  for (std::size_t i = 0; i < to_delete; ++i) arena.free_clause(candidates[i]);

  learnts = std::move(pinned);
  learnts.insert(learnts.end(), candidates.begin() + static_cast<std::ptrdiff_t>(to_delete),
                 candidates.end());

  ++reductions_;
  next_reduce_ += kFirstReduceConflicts + kReduceIncrement * reductions_;
  return to_delete;
}

}  // namespace qxmap::sat
