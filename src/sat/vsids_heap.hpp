/// \file vsids_heap.hpp
/// Binary max-heap over variable activities (VSIDS decision order).
///
/// The solver bumps a variable's activity at every conflict and decays all
/// activities geometrically (implemented as an increment that grows by
/// 1/decay, with a global rescale when it overflows). The heap keeps the
/// highest-activity unassigned variable at the root so each decision is
/// O(log n) instead of the former O(n) scan over all variables.

#pragma once

#include <cstddef>
#include <vector>

#include "sat/literal.hpp"

namespace qxmap::sat {

class VsidsHeap {
 public:
  /// Registers a new variable with zero activity and pushes it on the heap.
  void add_var(Var v);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] bool contains(Var v) const noexcept {
    return pos_[v] != kAbsent;
  }

  /// Pops the highest-activity variable. Requires !empty().
  Var pop();

  /// Re-inserts a variable (on backtracking). No-op if already present.
  void insert(Var v);

  /// Additively bumps `v` by the current increment; rescales everything
  /// when activities grow past 1e100.
  void bump(Var v);

  /// Geometric decay of all activities (amortised: grows the increment).
  void decay() { increment_ /= decay_; }

  /// Sets the decay factor (must lie in (0, 1)). The solver ramps this from
  /// an aggressive 0.8 toward 0.95 over the first conflicts (Glucose-style):
  /// fast forgetting early localises the search, slow forgetting later keeps
  /// the proof focused.
  void set_decay(double d) noexcept { decay_ = d; }
  [[nodiscard]] double decay_factor() const noexcept { return decay_; }

  [[nodiscard]] double activity(Var v) const noexcept { return activity_[v]; }

  static constexpr double kDecay = 0.95;

 private:
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  [[nodiscard]] bool lt(Var a, Var b) const noexcept {
    // Ties break toward the lower-numbered variable for determinism.
    return activity_[a] > activity_[b] || (activity_[a] == activity_[b] && a < b);
  }

  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  std::vector<Var> heap_;          // heap of variables ordered by lt()
  std::vector<std::size_t> pos_;   // var -> index in heap_, or kAbsent
  std::vector<double> activity_;   // var -> VSIDS activity
  double increment_ = 1.0;
  double decay_ = kDecay;
};

}  // namespace qxmap::sat
