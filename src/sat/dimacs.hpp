/// \file dimacs.hpp
/// DIMACS CNF import/export, for testing the solver against standard
/// instances and for dumping the mapper's symbolic formulations.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sat/literal.hpp"
#include "sat/solver.hpp"

namespace qxmap::sat {

/// A parsed CNF formula.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parses DIMACS text ("p cnf V C" header, clauses terminated by 0,
/// 'c' comment lines). \throws std::invalid_argument on malformed input.
[[nodiscard]] Cnf parse_dimacs(std::string_view text);

/// Renders a CNF formula as DIMACS text.
[[nodiscard]] std::string to_dimacs(const Cnf& cnf);

/// Loads a CNF into a solver (creating variables 0 … num_vars-1 as needed).
/// Returns false if the formula is trivially unsatisfiable during loading.
bool load_cnf(Solver& s, const Cnf& cnf);

}  // namespace qxmap::sat
