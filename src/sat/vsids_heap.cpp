#include "sat/vsids_heap.hpp"

#include <cassert>

namespace qxmap::sat {

void VsidsHeap::add_var(Var v) {
  assert(v == static_cast<Var>(activity_.size()));
  activity_.push_back(0.0);
  pos_.push_back(kAbsent);
  insert(v);
}

Var VsidsHeap::pop() {
  assert(!heap_.empty());
  const Var top = heap_.front();
  pos_[top] = kAbsent;
  const Var last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    pos_[last] = 0;
    sift_down(0);
  }
  return top;
}

void VsidsHeap::insert(Var v) {
  if (pos_[v] != kAbsent) return;
  pos_[v] = heap_.size();
  heap_.push_back(v);
  sift_up(pos_[v]);
}

void VsidsHeap::bump(Var v) {
  activity_[v] += increment_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    increment_ *= 1e-100;
  }
  if (pos_[v] != kAbsent) sift_up(pos_[v]);
}

void VsidsHeap::sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!lt(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  pos_[v] = i;
}

void VsidsHeap::sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && lt(heap_[child + 1], heap_[child])) ++child;
    if (!lt(heap_[child], v)) break;
    heap_[i] = heap_[child];
    pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  pos_[v] = i;
}

}  // namespace qxmap::sat
