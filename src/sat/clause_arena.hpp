/// \file clause_arena.hpp
/// Contiguous clause storage for the CDCL solver.
///
/// Clauses live back-to-back in one flat word buffer and are addressed by a
/// 32-bit offset (CRef) instead of a per-clause heap allocation — the
/// MiniSat-lineage layout. Each clause is a 3-word header (size + flags,
/// LBD, activity) followed by its literals, so propagation walks memory
/// linearly and the solver's watch lists, reason slots and clause lists all
/// shrink to one word per reference. Deletion marks a clause and accounts
/// the space as wasted; when enough of the arena is dead the solver compacts
/// it with relocate_to() (stop-and-copy with forwarding pointers).

#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "sat/literal.hpp"

namespace qxmap::sat {

/// Arena offset of a clause ("clause reference").
using CRef = std::uint32_t;

/// Null clause reference ("no reason" / "not moved").
inline constexpr CRef kCRefUndef = 0xFFFFFFFFu;

/// Mutable view of one clause inside the arena. Views are cheap (one
/// pointer) but are invalidated by any allocation or collection — re-derive
/// them from the CRef after either.
class ClauseView {
 public:
  explicit ClauseView(std::uint32_t* base) noexcept : base_(base) {}

  [[nodiscard]] std::uint32_t size() const noexcept { return base_[0] >> kFlagBits; }
  [[nodiscard]] bool learnt() const noexcept { return (base_[0] & kLearntFlag) != 0; }
  [[nodiscard]] bool deleted() const noexcept { return (base_[0] & kDeletedFlag) != 0; }

  /// Literal-block distance recorded for learnt clauses (0 for problem
  /// clauses). Lower is better; <= ReduceDb glue threshold pins the clause.
  [[nodiscard]] std::uint32_t lbd() const noexcept { return base_[1]; }
  void set_lbd(std::uint32_t lbd) noexcept { base_[1] = lbd; }

  [[nodiscard]] float activity() const noexcept { return std::bit_cast<float>(base_[2]); }
  void set_activity(float a) noexcept { base_[2] = std::bit_cast<std::uint32_t>(a); }

  [[nodiscard]] Lit lit(std::uint32_t i) const noexcept {
    return Lit::from_index(static_cast<std::int32_t>(base_[kHeaderWords + i]));
  }
  void set_lit(std::uint32_t i, Lit l) noexcept {
    base_[kHeaderWords + i] = static_cast<std::uint32_t>(l.index());
  }
  void swap_lits(std::uint32_t i, std::uint32_t j) noexcept {
    const std::uint32_t tmp = base_[kHeaderWords + i];
    base_[kHeaderWords + i] = base_[kHeaderWords + j];
    base_[kHeaderWords + j] = tmp;
  }

  static constexpr std::uint32_t kHeaderWords = 3;
  static constexpr std::uint32_t kFlagBits = 3;
  static constexpr std::uint32_t kLearntFlag = 1;
  static constexpr std::uint32_t kDeletedFlag = 2;
  /// Transient marker: "already copied during collection" (relocate_to) or
  /// "pinned as a propagation reason" (ReduceDb). The two uses never
  /// overlap in time.
  static constexpr std::uint32_t kMarkFlag = 4;

  [[nodiscard]] bool marked() const noexcept { return (base_[0] & kMarkFlag) != 0; }
  void set_mark() noexcept { base_[0] |= kMarkFlag; }
  void clear_mark() noexcept { base_[0] &= ~kMarkFlag; }
  void mark_deleted() noexcept { base_[0] |= kDeletedFlag; }

 private:
  friend class ClauseArena;
  std::uint32_t* base_;
};

/// The arena itself: a bump allocator over one std::vector<uint32_t>.
class ClauseArena {
 public:
  /// Allocates a clause with the given literals. `lits.size() >= 1`.
  CRef alloc(const std::vector<Lit>& lits, bool learnt);

  [[nodiscard]] ClauseView view(CRef cr) noexcept { return ClauseView(mem_.data() + cr); }
  [[nodiscard]] ClauseView view(CRef cr) const noexcept {
    // Const access shares the mutable proxy; the solver only reads via it.
    return ClauseView(const_cast<std::uint32_t*>(mem_.data()) + cr);
  }

  /// Marks the clause deleted and accounts its words as wasted.
  void free_clause(CRef cr);

  /// Shrinks a clause in place to `new_size` literals (top-level
  /// simplification); the tail words become wasted space.
  void shrink(CRef cr, std::uint32_t new_size);

  [[nodiscard]] std::size_t size_words() const noexcept { return mem_.size(); }
  [[nodiscard]] std::size_t wasted_words() const noexcept { return wasted_; }

  /// True when at least `kWastedPercent` of the arena is dead space.
  [[nodiscard]] bool want_collect() const noexcept {
    return !mem_.empty() && wasted_ * 100 >= mem_.size() * kWastedPercent;
  }

  /// Stop-and-copy step: copies the clause behind `cr` into `to` (unless it
  /// was already copied, in which case the forwarding pointer is returned)
  /// and returns its new reference. The caller relocates every root
  /// (clause lists, trail reasons) and then replaces *this with `to`.
  CRef relocate_to(ClauseArena& to, CRef cr);

  void reserve(std::size_t words) { mem_.reserve(words); }

  static constexpr std::size_t kWastedPercent = 20;

 private:
  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
};

}  // namespace qxmap::sat
