#include "sat/solver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace qxmap::sat {

namespace {
constexpr float kClauseDecay = 0.999f;
constexpr float kClauseRescaleLimit = 1e20f;
constexpr std::uint64_t kLubyUnit = 128;  // conflicts per Luby unit
// Glucose restart parameters: restart when the average LBD of the last
// kRecentLbdWindow learnt clauses exceeds kRestartK times the long-run
// average; block the restart (clear the window) when the trail has grown
// kBlockR times past its running average — the search looks SAT-like, let
// it finish.
constexpr std::size_t kRecentLbdWindow = 50;
constexpr double kRestartK = 0.8;
constexpr double kBlockR = 1.4;
// Variable-decay ramp: 0.8 at the start, +0.01 every 5000 conflicts until
// the steady-state VsidsHeap::kDecay (0.95) is reached.
constexpr double kVsidsDecayStart = 0.8;
constexpr double kVsidsRampStep = 0.01;
constexpr std::uint64_t kVsidsRampInterval = 5000;
}  // namespace

Solver::Solver() {
  // Variable-decay ramp (Glucose): start forgetful so the search localises
  // quickly, settle at the long-run 0.95 as the proof matures.
  heap_.set_decay(kVsidsDecayStart);
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(Value::Undef);
  model_.push_back(false);
  reason_.push_back(kCRefUndef);
  level_.push_back(0);
  saved_phase_.push_back(false);
  seen_.push_back(false);
  level_stamp_.resize(assign_.size() + 1, 0);  // decision levels run 0..num_vars
  watches_.emplace_back();
  watches_.emplace_back();
  heap_.add_var(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return false;
  if (!trail_limits_.empty()) {
    throw std::logic_error("Solver::add_clause: only allowed at decision level 0");
  }
  std::sort(lits.begin(), lits.end());
  // Dedup; detect tautologies; drop level-0 falsified literals and
  // clauses satisfied at level 0.
  std::vector<Lit> cleaned;
  Lit prev = Lit::from_index(-2);
  for (const Lit l : lits) {
    if (l.var() < 0 || l.var() >= num_vars()) {
      throw std::out_of_range("Solver::add_clause: unknown variable");
    }
    if (l == prev) continue;
    if (prev.index() >= 0 && l == ~prev) return true;  // tautology: x ∨ ¬x
    prev = l;
    const Value val = value(l);
    if (val == Value::True && level_[static_cast<std::size_t>(l.var())] == 0) return true;
    if (val == Value::False && level_[static_cast<std::size_t>(l.var())] == 0) continue;
    cleaned.push_back(l);
  }

  if (cleaned.empty()) {
    unsat_ = true;
    return false;
  }
  if (cleaned.size() == 1) {
    if (value(cleaned[0]) == Value::True) return true;
    if (value(cleaned[0]) == Value::False) {
      unsat_ = true;
      return false;
    }
    enqueue(cleaned[0], kCRefUndef);
    if (propagate() != kCRefUndef) {
      unsat_ = true;
      return false;
    }
    return true;
  }

  const CRef cr = arena_.alloc(cleaned, /*learnt=*/false);
  clauses_.push_back(cr);
  attach_clause(cr);
  return true;
}

void Solver::attach_clause(CRef cr) {
  const ClauseView c = arena_.view(cr);
  watches_[static_cast<std::size_t>((~c.lit(0)).index())].push_back({cr, c.lit(1)});
  watches_[static_cast<std::size_t>((~c.lit(1)).index())].push_back({cr, c.lit(0)});
}

void Solver::enqueue(Lit l, CRef reason) {
  const auto v = static_cast<std::size_t>(l.var());
  assign_[v] = l.negative() ? Value::False : Value::True;
  reason_[v] = reason;
  level_[v] = static_cast<int>(trail_limits_.size());
  trail_.push_back(l);
  ++stats_.propagations;
}

CRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p is true
    auto& watch_list = watches_[static_cast<std::size_t>(p.index())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      if (value(w.blocker) == Value::True) {
        watch_list[keep++] = w;
        continue;
      }
      ClauseView c = arena_.view(w.clause);
      if (c.deleted()) continue;  // lazily drop watches of deleted clauses
      const Lit false_lit = ~p;
      if (c.lit(0) == false_lit) c.swap_lits(0, 1);
      // Now c.lit(1) == false_lit.
      const Lit first = c.lit(0);
      if (value(first) == Value::True) {
        watch_list[keep++] = {w.clause, first};
        continue;
      }
      bool moved = false;
      const std::uint32_t size = c.size();
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(c.lit(k)) != Value::False) {
          c.swap_lits(1, k);
          watches_[static_cast<std::size_t>((~c.lit(1)).index())].push_back({w.clause, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      watch_list[keep++] = {w.clause, first};
      if (value(first) == Value::False) {
        // Conflict: keep the remaining watchers and bail out.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      enqueue(first, w.clause);
    }
    watch_list.resize(keep);
  }
  return kCRefUndef;
}

void Solver::analyze(CRef conflict, std::vector<Lit>& learnt, int& backjump_level,
                     std::uint32_t& lbd) {
  learnt.clear();
  learnt.push_back(Lit::from_index(-2));  // placeholder for the asserting literal

  const int current_level = static_cast<int>(trail_limits_.size());
  int counter = 0;
  Lit p = Lit::from_index(-2);
  CRef cr = conflict;
  std::size_t trail_index = trail_.size();

  for (;;) {
    ClauseView c = arena_.view(cr);
    if (c.learnt()) {
      bump_clause(cr);
      // On-the-fly LBD update (Glucose): a learnt clause involved in another
      // conflict often spans fewer decision levels by now. Tightening its
      // LBD protects it in ReduceDB — at glue level (<= 2) it becomes
      // permanent. All literals of a conflict/reason clause are assigned
      // here, so their levels are current.
      if (c.lbd() > ReduceDb::kGlueLbd) {
        const std::uint32_t tightened = clause_lbd(c);
        if (tightened < c.lbd()) c.set_lbd(tightened);
      }
    }
    const std::uint32_t start = (p.index() < 0) ? 0 : 1;
    const std::uint32_t size = c.size();
    for (std::uint32_t k = start; k < size; ++k) {
      const Lit q = c.lit(k);
      const auto v = static_cast<std::size_t>(q.var());
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = true;
        heap_.bump(q.var());
        if (level_[v] >= current_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Walk the trail backwards to the next marked literal.
    do {
      --trail_index;
    } while (!seen_[static_cast<std::size_t>(trail_[trail_index].var())]);
    p = trail_[trail_index];
    cr = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = false;
    --counter;
    if (counter == 0) break;
    // Reason must exist: p is not a decision while counter > 0.
    if (p.index() >= 0 && cr == kCRefUndef) {
      throw std::logic_error("Solver::analyze: missing reason during resolution");
    }
  }
  learnt[0] = ~p;

  // Mark for redundancy check, then minimize the clause.
  std::uint32_t abstract_levels = 0;
  std::vector<Var> to_clear;
  to_clear.reserve(learnt.size());
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    seen_[static_cast<std::size_t>(learnt[i].var())] = true;
    to_clear.push_back(learnt[i].var());
    abstract_levels |= 1u << (level_[static_cast<std::size_t>(learnt[i].var())] & 31);
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const auto v = static_cast<std::size_t>(learnt[i].var());
    if (reason_[v] == kCRefUndef || !literal_redundant(learnt[i], abstract_levels)) {
      learnt[kept++] = learnt[i];
    }
  }
  for (const Var v : to_clear) seen_[static_cast<std::size_t>(v)] = false;
  learnt.resize(kept);

  lbd = compute_lbd(learnt);

  // Backjump level: highest level among learnt[1..]; move that literal to
  // position 1 so it is watched.
  backjump_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[static_cast<std::size_t>(learnt[i].var())] >
          level_[static_cast<std::size_t>(learnt[max_i].var())]) {
        max_i = i;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    backjump_level = level_[static_cast<std::size_t>(learnt[1].var())];
  }
}

std::uint32_t Solver::compute_lbd(const std::vector<Lit>& lits) {
  ++stamp_;
  std::uint32_t lbd = 0;
  for (const Lit l : lits) {
    const auto lev = static_cast<std::size_t>(level_[static_cast<std::size_t>(l.var())]);
    if (level_stamp_[lev] != stamp_) {
      level_stamp_[lev] = stamp_;
      ++lbd;
    }
  }
  return lbd;
}

std::uint32_t Solver::clause_lbd(ClauseView c) {
  ++stamp_;
  std::uint32_t lbd = 0;
  const std::uint32_t size = c.size();
  for (std::uint32_t k = 0; k < size; ++k) {
    const auto lev = static_cast<std::size_t>(level_[static_cast<std::size_t>(c.lit(k).var())]);
    if (level_stamp_[lev] != stamp_) {
      level_stamp_[lev] = stamp_;
      ++lbd;
    }
  }
  return lbd;
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  // DFS over the implication graph: l is redundant if every path to decisions
  // stays within literals already in the learnt clause.
  std::vector<Lit> stack{l};
  std::vector<Var> cleared;
  while (!stack.empty()) {
    const Lit cur = stack.back();
    stack.pop_back();
    const auto v = static_cast<std::size_t>(cur.var());
    const CRef cr = reason_[v];
    if (cr == kCRefUndef) {
      // Reached a decision that is not part of the clause: not redundant.
      for (const Var cv : cleared) seen_[static_cast<std::size_t>(cv)] = false;
      return false;
    }
    const ClauseView c = arena_.view(cr);
    const std::uint32_t size = c.size();
    for (std::uint32_t k = 1; k < size; ++k) {
      const Lit q = c.lit(k);
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] || level_[qv] == 0) continue;
      if (reason_[qv] == kCRefUndef || ((1u << (level_[qv] & 31)) & abstract_levels) == 0) {
        for (const Var cv : cleared) seen_[static_cast<std::size_t>(cv)] = false;
        return false;
      }
      seen_[qv] = true;
      cleared.push_back(q.var());
      stack.push_back(q);
    }
  }
  // Redundant: keep marks cleared only for the temporaries.
  for (const Var cv : cleared) seen_[static_cast<std::size_t>(cv)] = false;
  return true;
}

void Solver::backtrack(int target_level) {
  if (static_cast<int>(trail_limits_.size()) <= target_level) return;
  const std::size_t bound = trail_limits_[static_cast<std::size_t>(target_level)];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    saved_phase_[v] = (assign_[v] == Value::True);
    assign_[v] = Value::Undef;
    reason_[v] = kCRefUndef;
    heap_.insert(static_cast<Var>(v));
  }
  trail_.resize(bound);
  trail_limits_.resize(static_cast<std::size_t>(target_level));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch_literal() {
  while (!heap_.empty()) {
    const Var v = heap_.pop();
    if (assign_[static_cast<std::size_t>(v)] == Value::Undef) {
      return Lit(v, !saved_phase_[static_cast<std::size_t>(v)]);
    }
  }
  return Lit::from_index(-2);
}

void Solver::bump_clause(CRef cr) {
  ClauseView c = arena_.view(cr);
  c.set_activity(c.activity() + clause_inc_);
  if (c.activity() > kClauseRescaleLimit) {
    for (const CRef lr : learnts_) {
      ClauseView lc = arena_.view(lr);
      lc.set_activity(lc.activity() * 1e-20f);
    }
    clause_inc_ *= 1e-20f;
  }
}

bool Solver::locked(CRef cr) const {
  const ClauseView c = arena_.view(cr);
  const Lit first = c.lit(0);
  return value(first) == Value::True &&
         reason_[static_cast<std::size_t>(first.var())] == cr;
}

void Solver::reduce_learnts() {
  stats_.learnt_deleted +=
      reduce_db_.reduce(arena_, learnts_, [this](CRef cr) { return locked(cr); });
  stats_.learnt_kept = learnts_.size();
  if (arena_.want_collect()) collect_garbage();
}

void Solver::collect_garbage() {
  ClauseArena to;
  to.reserve(arena_.size_words() - arena_.wasted_words());
  for (CRef& cr : clauses_) cr = arena_.relocate_to(to, cr);
  for (CRef& cr : learnts_) cr = arena_.relocate_to(to, cr);
  for (const Lit l : trail_) {
    CRef& r = reason_[static_cast<std::size_t>(l.var())];
    if (r != kCRefUndef) r = arena_.relocate_to(to, r);
  }
  arena_ = std::move(to);
  rebuild_watches();
}

void Solver::rebuild_watches() {
  for (auto& wl : watches_) wl.clear();
  for (const CRef cr : clauses_) attach_clause(cr);
  for (const CRef cr : learnts_) attach_clause(cr);
}

bool Solver::simplify() {
  if (unsat_) return false;
  backtrack(0);
  if (propagate() != kCRefUndef) {
    unsat_ = true;
    return false;
  }
  if (trail_.size() == simplified_at_trail_) return true;  // no new facts

  // Sweep a clause list under the level-0 assignment: drop satisfied
  // clauses, strip falsified literals, enqueue clauses that became unit.
  const auto sweep = [this](std::vector<CRef>& list) -> bool {
    std::size_t keep = 0;
    for (const CRef cr : list) {
      ClauseView c = arena_.view(cr);
      if (c.deleted()) continue;
      bool satisfied = false;
      std::uint32_t kept_lits = 0;
      const std::uint32_t size = c.size();
      for (std::uint32_t i = 0; i < size; ++i) {
        const Lit l = c.lit(i);
        const Value val = value(l);  // at level 0: True/False are permanent
        if (val == Value::True) {
          satisfied = true;
          break;
        }
        if (val == Value::Undef) c.set_lit(kept_lits++, l);
      }
      if (satisfied) {
        arena_.free_clause(cr);
        continue;
      }
      if (kept_lits == 0) {
        unsat_ = true;
        return false;
      }
      if (kept_lits == 1) {
        enqueue(c.lit(0), kCRefUndef);
        arena_.free_clause(cr);
        continue;
      }
      if (kept_lits < size) arena_.shrink(cr, kept_lits);
      list[keep++] = cr;
    }
    list.resize(keep);
    return true;
  };

  // New units discovered by a sweep falsify more literals; re-sweep until
  // the trail stops growing. (The sweep itself acts as the propagator here —
  // watch lists are stale while literals are being compacted, so propagate()
  // must not run until they are rebuilt below.)
  for (;;) {
    const std::size_t before = trail_.size();
    if (!sweep(clauses_) || !sweep(learnts_)) return false;
    if (trail_.size() == before) break;
  }

  // Level-0 assignments never participate in conflict analysis, so their
  // reasons (possibly freed above) can be forgotten.
  for (const Lit l : trail_) reason_[static_cast<std::size_t>(l.var())] = kCRefUndef;

  qhead_ = trail_.size();  // the sweep fixpoint leaves nothing to propagate
  simplified_at_trail_ = trail_.size();
  if (arena_.want_collect()) {
    collect_garbage();  // rebuilds the watch lists itself
  } else {
    rebuild_watches();
  }
  return true;
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …, 1-based index.
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) - 1 <= i) ++k;
  while ((1ULL << k) - 1 != i) {
    i -= (1ULL << k) - 1;
    k = 1;
    while ((1ULL << (k + 1)) - 1 <= i) ++k;
  }
  return 1ULL << (k - 1);
}

void Solver::analyze_final(Lit failed) {
  // The failed assumption plus every earlier assumption reachable from ~failed
  // through the implication graph (levels > 0 only; level-0 facts hold
  // unconditionally). Mirrors MiniSat's analyzeFinal.
  failed_assumptions_.clear();
  failed_assumptions_.push_back(failed);
  const auto fv = static_cast<std::size_t>(failed.var());
  if (trail_limits_.empty() || level_[fv] == 0) return;
  seen_[fv] = true;
  for (std::size_t i = trail_.size(); i-- > trail_limits_[0];) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    if (!seen_[v]) continue;
    seen_[v] = false;
    const CRef cr = reason_[v];
    if (cr == kCRefUndef) {
      // A decision above level 0 — while assumptions are being enqueued,
      // these are exactly the already-accepted assumptions.
      if (trail_[i] != failed) failed_assumptions_.push_back(trail_[i]);
      continue;
    }
    const ClauseView c = arena_.view(cr);
    const std::uint32_t size = c.size();
    for (std::uint32_t k = 1; k < size; ++k) {  // lit(0) is the propagated literal
      const auto qv = static_cast<std::size_t>(c.lit(k).var());
      if (level_[qv] > 0) seen_[qv] = true;
    }
  }
  seen_[fv] = false;
}

SolveResult Solver::solve(const std::function<bool()>& interrupt,
                          const std::vector<Lit>& assumptions) {
  failed_assumptions_.clear();
  for (const Lit a : assumptions) {
    if (a.var() < 0 || a.var() >= num_vars()) {
      throw std::out_of_range("Solver::solve: unknown assumption variable");
    }
  }
  if (unsat_) return SolveResult::Unsatisfiable;
  if (!simplify()) return SolveResult::Unsatisfiable;

  for (Var v = 0; v < num_vars(); ++v) {
    if (assign_[static_cast<std::size_t>(v)] == Value::Undef) heap_.insert(v);
  }

  // Luby restart state.
  std::uint64_t luby_index = 1;
  std::uint64_t conflicts_until_restart = luby(luby_index) * kLubyUnit;
  std::uint64_t conflicts_this_restart = 0;
  // Glucose restart state (per solve call).
  std::array<std::uint32_t, kRecentLbdWindow> recent_lbd{};
  std::size_t recent_count = 0;
  std::size_t recent_pos = 0;
  std::uint64_t recent_sum = 0;
  std::uint64_t solve_conflicts = 0;
  std::uint64_t solve_lbd_sum = 0;
  std::uint64_t trail_size_sum = 0;

  std::vector<Lit> learnt;

  for (;;) {
    const CRef conflict = propagate();
    if (conflict != kCRefUndef) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      ++solve_conflicts;
      if (trail_limits_.empty()) {
        unsat_ = true;
        return SolveResult::Unsatisfiable;
      }
      trail_size_sum += trail_.size();
      // Restart blocking: the assignment keeps growing past its running
      // average — the search looks SAT-like, hold the restart.
      if (restart_policy_ == RestartPolicy::Glucose && recent_count == kRecentLbdWindow &&
          static_cast<double>(trail_.size()) * static_cast<double>(solve_conflicts) >
              kBlockR * static_cast<double>(trail_size_sum)) {
        recent_count = 0;
        recent_pos = 0;
        recent_sum = 0;
      }

      int backjump = 0;
      std::uint32_t lbd = 0;
      analyze(conflict, learnt, backjump, lbd);
      backtrack(backjump);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kCRefUndef);
        simplified_at_trail_ = 0;  // new level-0 fact: next simplify() sweeps
      } else {
        const CRef cr = arena_.alloc(learnt, /*learnt=*/true);
        ClauseView c = arena_.view(cr);
        c.set_lbd(lbd);
        c.set_activity(clause_inc_);
        learnts_.push_back(cr);
        attach_clause(cr);
        enqueue(learnt[0], cr);
      }
      ++stats_.learned;
      stats_.lbd_sum += lbd;
      solve_lbd_sum += lbd;
      heap_.decay();
      if (stats_.conflicts % kVsidsRampInterval == 0 &&
          heap_.decay_factor() < VsidsHeap::kDecay) {
        heap_.set_decay(
            std::min(VsidsHeap::kDecay, heap_.decay_factor() + kVsidsRampStep));
      }
      clause_inc_ /= kClauseDecay;

      if (recent_count < kRecentLbdWindow) {
        ++recent_count;
      } else {
        recent_sum -= recent_lbd[recent_pos];
      }
      recent_lbd[recent_pos] = lbd;
      recent_sum += lbd;
      recent_pos = (recent_pos + 1) % kRecentLbdWindow;

      if (interrupt && interrupt()) {
        backtrack(0);
        return SolveResult::Unknown;
      }

      if (reduce_db_.due(stats_.conflicts)) reduce_learnts();

      bool restart = false;
      if (restart_policy_ == RestartPolicy::Luby) {
        restart = conflicts_this_restart >= conflicts_until_restart;
        if (restart) {
          ++luby_index;
          conflicts_until_restart = luby(luby_index) * kLubyUnit;
        }
      } else if (recent_count == kRecentLbdWindow) {
        // Recent learnt clauses are markedly worse than the long-run
        // average: the search drifted, restart with fresh phases.
        restart = static_cast<double>(recent_sum) * static_cast<double>(solve_conflicts) *
                      kRestartK >
                  static_cast<double>(solve_lbd_sum) * static_cast<double>(kRecentLbdWindow);
      }
      if (restart) {
        ++stats_.restarts;
        conflicts_this_restart = 0;
        recent_count = 0;
        recent_pos = 0;
        recent_sum = 0;
        backtrack(0);
      }
    } else {
      // Pending assumptions first: each becomes a pseudo-decision on its own
      // level (an already-true one gets an empty dummy level so level index
      // and assumption index stay aligned across backjumps and restarts).
      Lit next = Lit::from_index(-2);
      bool is_assumption = false;
      while (trail_limits_.size() < assumptions.size()) {
        const Lit a = assumptions[trail_limits_.size()];
        const Value av = value(a);
        if (av == Value::True) {
          trail_limits_.push_back(trail_.size());
          continue;
        }
        if (av == Value::False) {
          analyze_final(a);
          backtrack(0);
          return SolveResult::Unsatisfiable;
        }
        next = a;
        is_assumption = true;
        break;
      }
      if (!is_assumption) {
        next = pick_branch_literal();
        if (next.index() < 0) {
          // Complete assignment: record the model.
          for (Var v = 0; v < num_vars(); ++v) {
            model_[static_cast<std::size_t>(v)] =
                (assign_[static_cast<std::size_t>(v)] == Value::True);
          }
          backtrack(0);
          return SolveResult::Satisfiable;
        }
        ++stats_.decisions;
      }
      trail_limits_.push_back(trail_.size());
      enqueue(next, kCRefUndef);
    }
  }
}

bool Solver::model_value(Var v) const {
  if (v < 0 || v >= num_vars()) throw std::out_of_range("Solver::model_value");
  return model_[static_cast<std::size_t>(v)];
}

}  // namespace qxmap::sat
