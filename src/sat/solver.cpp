#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qxmap::sat {

namespace {
constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr std::uint64_t kRestartUnit = 128;  // conflicts per Luby unit
}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assign_.size());
  assign_.push_back(Value::Undef);
  model_.push_back(false);
  reason_.push_back(kNoReason);
  level_.push_back(0);
  activity_.push_back(0.0);
  saved_phase_.push_back(false);
  seen_.push_back(false);
  heap_pos_.push_back(-1);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return false;
  if (!trail_limits_.empty()) {
    throw std::logic_error("Solver::add_clause: only allowed at decision level 0");
  }
  std::sort(lits.begin(), lits.end());
  // Dedup; detect tautologies; drop level-0 falsified literals and
  // clauses satisfied at level 0.
  std::vector<Lit> cleaned;
  Lit prev = Lit::from_index(-2);
  for (const Lit l : lits) {
    if (l.var() < 0 || l.var() >= num_vars()) {
      throw std::out_of_range("Solver::add_clause: unknown variable");
    }
    if (l == prev) continue;
    if (prev.index() >= 0 && l == ~prev) return true;  // tautology: x ∨ ¬x
    prev = l;
    const Value val = value(l);
    if (val == Value::True && level_[static_cast<std::size_t>(l.var())] == 0) return true;
    if (val == Value::False && level_[static_cast<std::size_t>(l.var())] == 0) continue;
    cleaned.push_back(l);
  }

  if (cleaned.empty()) {
    unsat_ = true;
    return false;
  }
  if (cleaned.size() == 1) {
    if (value(cleaned[0]) == Value::True) return true;
    if (value(cleaned[0]) == Value::False) {
      unsat_ = true;
      return false;
    }
    enqueue(cleaned[0], kNoReason);
    if (propagate() != kNoReason) {
      unsat_ = true;
      return false;
    }
    return true;
  }

  Clause c;
  c.lits = std::move(cleaned);
  clauses_.push_back(std::move(c));
  attach_clause(static_cast<ClauseRef>(clauses_.size()) - 1);
  return true;
}

void Solver::attach_clause(ClauseRef cr) {
  const Clause& c = clauses_[static_cast<std::size_t>(cr)];
  watches_[static_cast<std::size_t>((~c.lits[0]).index())].push_back({cr, c.lits[1]});
  watches_[static_cast<std::size_t>((~c.lits[1]).index())].push_back({cr, c.lits[0]});
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const auto v = static_cast<std::size_t>(l.var());
  assign_[v] = l.negative() ? Value::False : Value::True;
  reason_[v] = reason;
  level_[v] = static_cast<int>(trail_limits_.size());
  trail_.push_back(l);
  ++stats_.propagations;
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p is true
    auto& watch_list = watches_[static_cast<std::size_t>(p.index())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      if (value(w.blocker) == Value::True) {
        watch_list[keep++] = w;
        continue;
      }
      Clause& c = clauses_[static_cast<std::size_t>(w.clause)];
      if (c.deleted) continue;  // lazily drop watches of deleted clauses
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      // Now c.lits[1] == false_lit.
      const Lit first = c.lits[0];
      if (value(first) == Value::True) {
        watch_list[keep++] = {w.clause, first};
        continue;
      }
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != Value::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>((~c.lits[1]).index())].push_back({w.clause, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      watch_list[keep++] = {w.clause, first};
      if (value(first) == Value::False) {
        // Conflict: keep the remaining watchers and bail out.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        qhead_ = trail_.size();
        return w.clause;
      }
      enqueue(first, w.clause);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& backjump_level) {
  learnt.clear();
  learnt.push_back(Lit::from_index(-2));  // placeholder for the asserting literal

  const int current_level = static_cast<int>(trail_limits_.size());
  int counter = 0;
  Lit p = Lit::from_index(-2);
  ClauseRef cr = conflict;
  std::size_t trail_index = trail_.size();

  for (;;) {
    Clause& c = clauses_[static_cast<std::size_t>(cr)];
    if (c.learnt) bump_clause(c);
    const std::size_t start = (p.index() < 0) ? 0 : 1;
    for (std::size_t k = start; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const auto v = static_cast<std::size_t>(q.var());
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = true;
        bump_var(q.var());
        if (level_[v] >= current_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Walk the trail backwards to the next marked literal.
    do {
      --trail_index;
    } while (!seen_[static_cast<std::size_t>(trail_[trail_index].var())]);
    p = trail_[trail_index];
    cr = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = false;
    --counter;
    if (counter == 0) break;
    // Reason must exist: p is not a decision while counter > 0.
    if (p.index() >= 0 && cr == kNoReason) {
      throw std::logic_error("Solver::analyze: missing reason during resolution");
    }
  }
  learnt[0] = ~p;

  // Mark for redundancy check, then minimize the clause.
  std::uint32_t abstract_levels = 0;
  std::vector<Var> to_clear;
  to_clear.reserve(learnt.size());
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    seen_[static_cast<std::size_t>(learnt[i].var())] = true;
    to_clear.push_back(learnt[i].var());
    abstract_levels |= 1u << (level_[static_cast<std::size_t>(learnt[i].var())] & 31);
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const auto v = static_cast<std::size_t>(learnt[i].var());
    if (reason_[v] == kNoReason || !literal_redundant(learnt[i], abstract_levels)) {
      learnt[kept++] = learnt[i];
    }
  }
  for (const Var v : to_clear) seen_[static_cast<std::size_t>(v)] = false;
  learnt.resize(kept);

  // Backjump level: highest level among learnt[1..]; move that literal to
  // position 1 so it is watched.
  backjump_level = 0;
  if (learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < learnt.size(); ++i) {
      if (level_[static_cast<std::size_t>(learnt[i].var())] >
          level_[static_cast<std::size_t>(learnt[max_i].var())]) {
        max_i = i;
      }
    }
    std::swap(learnt[1], learnt[max_i]);
    backjump_level = level_[static_cast<std::size_t>(learnt[1].var())];
  }
}

bool Solver::literal_redundant(Lit l, std::uint32_t abstract_levels) {
  // DFS over the implication graph: l is redundant if every path to decisions
  // stays within literals already in the learnt clause.
  std::vector<Lit> stack{l};
  std::vector<Var> cleared;
  while (!stack.empty()) {
    const Lit cur = stack.back();
    stack.pop_back();
    const auto v = static_cast<std::size_t>(cur.var());
    const ClauseRef cr = reason_[v];
    if (cr == kNoReason) {
      // Reached a decision that is not part of the clause: not redundant.
      for (const Var cv : cleared) seen_[static_cast<std::size_t>(cv)] = false;
      return false;
    }
    const Clause& c = clauses_[static_cast<std::size_t>(cr)];
    for (std::size_t k = 1; k < c.lits.size(); ++k) {
      const Lit q = c.lits[k];
      const auto qv = static_cast<std::size_t>(q.var());
      if (seen_[qv] || level_[qv] == 0) continue;
      if (reason_[qv] == kNoReason || ((1u << (level_[qv] & 31)) & abstract_levels) == 0) {
        for (const Var cv : cleared) seen_[static_cast<std::size_t>(cv)] = false;
        return false;
      }
      seen_[qv] = true;
      cleared.push_back(q.var());
      stack.push_back(q);
    }
  }
  // Redundant: keep marks cleared only for the temporaries.
  for (const Var cv : cleared) seen_[static_cast<std::size_t>(cv)] = false;
  return true;
}

void Solver::backtrack(int target_level) {
  if (static_cast<int>(trail_limits_.size()) <= target_level) return;
  const std::size_t bound = trail_limits_[static_cast<std::size_t>(target_level)];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const auto v = static_cast<std::size_t>(trail_[i].var());
    saved_phase_[v] = (assign_[v] == Value::True);
    assign_[v] = Value::Undef;
    reason_[v] = kNoReason;
    if (heap_pos_[v] < 0) heap_insert(static_cast<Var>(v));
  }
  trail_.resize(bound);
  trail_limits_.resize(static_cast<std::size_t>(target_level));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch_literal() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assign_[static_cast<std::size_t>(v)] == Value::Undef) {
      return Lit(v, !saved_phase_[static_cast<std::size_t>(v)]);
    }
  }
  return Lit::from_index(-2);
}

void Solver::bump_var(Var v) {
  auto& a = activity_[static_cast<std::size_t>(v)];
  a += var_inc_;
  if (a > kRescaleLimit) {
    for (auto& x : activity_) x *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0) {
    heap_sift_up(heap_pos_[static_cast<std::size_t>(v)]);
  }
}

void Solver::bump_clause(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > kRescaleLimit) {
    for (auto& cl : clauses_) cl.activity *= 1e-100;
    clause_inc_ *= 1e-100;
  }
}

void Solver::decay_activities() {
  var_inc_ /= kVarDecay;
  clause_inc_ /= kClauseDecay;
}

void Solver::reduce_learnts() {
  // Collect learnt clause refs, drop the low-activity half (keeping binary
  // clauses and current reasons).
  std::vector<ClauseRef> learnts;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    const Clause& c = clauses_[i];
    if (c.learnt && !c.deleted && c.lits.size() > 2) {
      learnts.push_back(static_cast<ClauseRef>(i));
    }
  }
  std::sort(learnts.begin(), learnts.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[static_cast<std::size_t>(a)].activity <
           clauses_[static_cast<std::size_t>(b)].activity;
  });
  std::vector<bool> is_reason(clauses_.size(), false);
  for (const Lit l : trail_) {
    const ClauseRef r = reason_[static_cast<std::size_t>(l.var())];
    if (r != kNoReason) is_reason[static_cast<std::size_t>(r)] = true;
  }
  const std::size_t to_delete = learnts.size() / 2;
  for (std::size_t i = 0; i < to_delete; ++i) {
    const auto cr = static_cast<std::size_t>(learnts[i]);
    if (is_reason[cr]) continue;
    clauses_[cr].deleted = true;  // watches are dropped lazily in propagate()
    clauses_[cr].lits.clear();
    clauses_[cr].lits.shrink_to_fit();
    ++stats_.learnt_deleted;
  }
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 …, 1-based index.
  std::uint64_t k = 1;
  while ((1ULL << (k + 1)) - 1 <= i) ++k;
  while ((1ULL << k) - 1 != i) {
    i -= (1ULL << k) - 1;
    k = 1;
    while ((1ULL << (k + 1)) - 1 <= i) ++k;
  }
  return 1ULL << (k - 1);
}

SolveResult Solver::solve(const std::function<bool()>& interrupt) {
  if (unsat_) return SolveResult::Unsatisfiable;
  backtrack(0);
  if (propagate() != kNoReason) {
    unsat_ = true;
    return SolveResult::Unsatisfiable;
  }

  // (Re)build the decision heap.
  heap_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), -1);
  for (Var v = 0; v < num_vars(); ++v) {
    if (assign_[static_cast<std::size_t>(v)] == Value::Undef) heap_insert(v);
  }

  std::uint64_t restart_index = 1;
  std::uint64_t conflicts_until_restart = luby(restart_index) * kRestartUnit;
  std::uint64_t conflicts_this_restart = 0;
  std::size_t max_learnts = std::max<std::size_t>(4000, clauses_.size() / 3);
  std::uint64_t learnt_count = 0;
  std::vector<Lit> learnt;

  for (;;) {
    const ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (trail_limits_.empty()) {
        unsat_ = true;
        return SolveResult::Unsatisfiable;
      }
      int backjump = 0;
      analyze(conflict, learnt, backjump);
      backtrack(backjump);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoReason);
      } else {
        Clause c;
        c.lits = learnt;
        c.learnt = true;
        clauses_.push_back(std::move(c));
        const auto cr = static_cast<ClauseRef>(clauses_.size()) - 1;
        attach_clause(cr);
        bump_clause(clauses_.back());
        enqueue(learnt[0], cr);
        ++learnt_count;
      }
      decay_activities();

      if (learnt_count > max_learnts) {
        reduce_learnts();
        max_learnts = max_learnts + max_learnts / 2;
        learnt_count = 0;
      }
      if (conflicts_this_restart >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_index;
        conflicts_until_restart = luby(restart_index) * kRestartUnit;
        conflicts_this_restart = 0;
        backtrack(0);
      }
      if (interrupt && (stats_.conflicts & 0x3ff) == 0 && interrupt()) {
        backtrack(0);
        return SolveResult::Unknown;
      }
    } else {
      const Lit next = pick_branch_literal();
      if (next.index() < 0) {
        // Complete assignment: record the model.
        for (Var v = 0; v < num_vars(); ++v) {
          model_[static_cast<std::size_t>(v)] =
              (assign_[static_cast<std::size_t>(v)] == Value::True);
        }
        backtrack(0);
        return SolveResult::Satisfiable;
      }
      ++stats_.decisions;
      trail_limits_.push_back(trail_.size());
      enqueue(next, kNoReason);
    }
  }
}

bool Solver::model_value(Var v) const {
  if (v < 0 || v >= num_vars()) throw std::out_of_range("Solver::model_value");
  return model_[static_cast<std::size_t>(v)];
}

// --- heap ------------------------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(static_cast<int>(heap_.size()) - 1);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_.pop_back();
    heap_sift_down(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::heap_sift_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (!heap_less(heap_[static_cast<std::size_t>(parent)], v)) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
    heap_pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_sift_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int size = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        heap_less(heap_[static_cast<std::size_t>(child)], heap_[static_cast<std::size_t>(child + 1)])) {
      ++child;
    }
    if (!heap_less(v, heap_[static_cast<std::size_t>(child)])) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
    heap_pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

}  // namespace qxmap::sat
