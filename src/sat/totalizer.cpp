#include "sat/totalizer.hpp"

namespace qxmap::sat {

namespace {

/// Merges two unary numbers a, b into fresh output literals of size
/// a.size() + b.size(), adding both encoding directions.
std::vector<Lit> merge(Solver& s, const std::vector<Lit>& a, const std::vector<Lit>& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const std::size_t p = a.size();
  const std::size_t q = b.size();
  std::vector<Lit> out(p + q);
  for (auto& l : out) l = pos(s.new_var());

  // a_i ∧ b_j → out_{i+j}   (with a_0 / b_0 treated as constant true)
  for (std::size_t i = 0; i <= p; ++i) {
    for (std::size_t j = 0; j <= q; ++j) {
      if (i + j == 0) continue;
      std::vector<Lit> clause;
      if (i > 0) clause.push_back(~a[i - 1]);
      if (j > 0) clause.push_back(~b[j - 1]);
      clause.push_back(out[i + j - 1]);
      s.add_clause(std::move(clause));
    }
  }
  // ¬a_{i+1} ∧ ¬b_{j+1} → ¬out_{i+j+1}  (upper bound direction)
  for (std::size_t i = 0; i <= p; ++i) {
    for (std::size_t j = 0; j <= q; ++j) {
      if (i + j >= p + q) continue;
      std::vector<Lit> clause;
      if (i < p) clause.push_back(a[i]);
      if (j < q) clause.push_back(b[j]);
      clause.push_back(~out[i + j]);
      s.add_clause(std::move(clause));
    }
  }
  return out;
}

std::vector<Lit> build_recursive(Solver& s, const std::vector<Lit>& inputs, std::size_t lo,
                                 std::size_t hi) {
  if (hi - lo == 1) return {inputs[lo]};
  const std::size_t mid = lo + (hi - lo) / 2;
  return merge(s, build_recursive(s, inputs, lo, mid), build_recursive(s, inputs, mid, hi));
}

}  // namespace

std::vector<Lit> build_totalizer(Solver& s, const std::vector<Lit>& inputs) {
  if (inputs.empty()) return {};
  return build_recursive(s, inputs, 0, inputs.size());
}

void add_cardinality_at_most(Solver& s, const std::vector<Lit>& inputs, int bound) {
  if (bound < 0) {
    s.add_clause(std::vector<Lit>{});  // empty clause: UNSAT
    return;
  }
  if (bound >= static_cast<int>(inputs.size())) return;
  const auto outputs = build_totalizer(s, inputs);
  s.add_clause(~outputs[static_cast<std::size_t>(bound)]);
}

}  // namespace qxmap::sat
