/// \file totalizer.hpp
/// Totalizer cardinality encoding (Bailleux & Boufkhad, CP'03).
///
/// Given input literals x_1 … x_n, builds unary "output" literals
/// o_1 … o_n with o_k ↔ (at least k inputs are true). The CDCL optimiser
/// backend uses two totalizers (one over per-gate SWAP-count indicators,
/// one over the CNOT-direction z variables) and bounds the weighted sum
/// 7·S + 4·Z by forbidding the violating (S, Z) output combinations.

#pragma once

#include <vector>

#include "sat/literal.hpp"
#include "sat/solver.hpp"

namespace qxmap::sat {

/// Builds the totalizer over `inputs` and returns the output literals
/// (index k-1 ↔ "at least k true"). Both implication directions are
/// encoded, so outputs are exact counts in any model. Returns an empty
/// vector for empty input.
[[nodiscard]] std::vector<Lit> build_totalizer(Solver& s, const std::vector<Lit>& inputs);

/// Convenience: adds clauses enforcing (number of true inputs) <= bound by
/// building a totalizer and fixing output bound+1 to false. No-op when
/// bound >= inputs.size(); makes the formula UNSAT when bound < 0.
void add_cardinality_at_most(Solver& s, const std::vector<Lit>& inputs, int bound);

}  // namespace qxmap::sat
