/// \file literal.hpp
/// Variables and literals for the CDCL solver.
///
/// A variable is a non-negative integer; a literal packs variable and sign
/// into one int (`2*v` positive, `2*v+1` negative), the classic MiniSat
/// encoding, so literals index arrays (watch lists, saved phases) directly.

#pragma once

#include <cstdint>
#include <string>

namespace qxmap::sat {

/// Variable index, 0-based.
using Var = std::int32_t;

/// Packed literal.
class Lit {
 public:
  constexpr Lit() = default;

  /// Literal for `v`, negated if `negative`.
  constexpr Lit(Var v, bool negative) : code_(2 * v + (negative ? 1 : 0)) {}

  [[nodiscard]] constexpr Var var() const noexcept { return code_ >> 1; }
  [[nodiscard]] constexpr bool negative() const noexcept { return (code_ & 1) != 0; }
  [[nodiscard]] constexpr Lit operator~() const noexcept {
    Lit l;
    l.code_ = code_ ^ 1;
    return l;
  }
  /// Array index (0 … 2*num_vars-1).
  [[nodiscard]] constexpr std::int32_t index() const noexcept { return code_; }

  [[nodiscard]] static constexpr Lit from_index(std::int32_t idx) noexcept {
    Lit l;
    l.code_ = idx;
    return l;
  }

  friend constexpr bool operator==(Lit a, Lit b) = default;
  friend constexpr auto operator<=>(Lit a, Lit b) = default;

  /// DIMACS-style rendering: "3" / "-3" (1-based).
  [[nodiscard]] std::string to_string() const {
    return (negative() ? "-" : "") + std::to_string(var() + 1);
  }

 private:
  std::int32_t code_ = -2;
};

/// Positive literal of `v`.
[[nodiscard]] constexpr Lit pos(Var v) noexcept { return Lit(v, false); }
/// Negative literal of `v`.
[[nodiscard]] constexpr Lit neg(Var v) noexcept { return Lit(v, true); }

/// Truth value of a variable/literal during search.
enum class Value : std::int8_t { False = -1, Undef = 0, True = 1 };

/// Negates a Value (Undef stays Undef).
[[nodiscard]] constexpr Value operator-(Value v) noexcept {
  return static_cast<Value>(-static_cast<std::int8_t>(v));
}

}  // namespace qxmap::sat
