#!/usr/bin/env python3
"""Markdown link lint: every relative link in the given files must resolve,
and every anchor (`#fragment`, intra-file or cross-file) must match a
heading in the target document.

Usage: check_md_links.py FILE.md [FILE.md ...]

External links (http/https/mailto) are not fetched — this is an offline
check that documentation does not drift from the tree (renamed files,
deleted docs, moved tests, renamed headings). Anchors are resolved with
GitHub's slug rules: headings are lowercased, punctuation is removed,
spaces become hyphens, and repeated slugs get -1, -2, … suffixes; fenced
code blocks are ignored when collecting headings. Anchors into non-
Markdown targets (source files, JSON) are not checked — only that the
file exists. Exits non-zero listing every broken link as
file:line: target.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
MD_LINK_IN_HEADING_RE = re.compile(r"\[([^\]]*)\]\([^)]*\)")
# GitHub slugger: keep word characters (incl. underscore), spaces, hyphens.
SLUG_STRIP_RE = re.compile(r"[^\w\- ]", re.UNICODE)

_anchor_cache: dict[str, set[str]] = {}


def slugify(heading: str) -> str:
    text = MD_LINK_IN_HEADING_RE.sub(r"\1", heading)  # [text](url) -> text
    text = SLUG_STRIP_RE.sub("", text.strip().lower())
    return text.replace(" ", "-")


def anchors_of(path: str) -> set[str]:
    """All anchor slugs defined by the headings of a Markdown file."""
    if path in _anchor_cache:
        return _anchor_cache[path]
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if not match:
                continue
            slug = slugify(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
    _anchor_cache[path] = slugs
    return slugs


def check(path: str) -> list[str]:
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    bad = []
    for match in LINK_RE.finditer(text):
        raw = match.group(1)
        if raw.startswith(EXTERNAL):
            continue
        line = text.count("\n", 0, match.start()) + 1
        target, _, anchor = raw.partition("#")
        resolved = os.path.normpath(os.path.join(base, target)) if target else path
        if not os.path.exists(resolved):
            bad.append(f"{path}:{line}: broken link -> {raw}")
            continue
        if anchor and resolved.endswith(".md"):
            if anchor.lower() not in anchors_of(resolved):
                bad.append(f"{path}:{line}: broken anchor -> {raw}")
    return bad


def main(paths: list[str]) -> int:
    if not paths:
        print("usage: check_md_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    bad = []
    for path in paths:
        bad.extend(check(path))
    for entry in bad:
        print(entry)
    if bad:
        return 1
    print(f"checked {len(paths)} file(s): all relative links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
