#!/usr/bin/env python3
"""Markdown link lint: every relative link in the given files must resolve.

Usage: check_md_links.py FILE.md [FILE.md ...]

External links (http/https/mailto) are not fetched — this is an offline
check that documentation does not drift from the tree (renamed files,
deleted docs, moved tests). Anchors are stripped before resolution.
Exits non-zero listing every broken link as file:line: target.
"""

import os
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def check(path: str) -> list[str]:
    base = os.path.dirname(path)
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    bad = []
    for match in LINK_RE.finditer(text):
        raw = match.group(1)
        if raw.startswith(EXTERNAL):
            continue
        target = raw.split("#", 1)[0]
        if not target:  # pure intra-file anchor
            continue
        resolved = os.path.normpath(os.path.join(base, target))
        if not os.path.exists(resolved):
            line = text.count("\n", 0, match.start()) + 1
            bad.append(f"{path}:{line}: broken link -> {raw}")
    return bad


def main(paths: list[str]) -> int:
    if not paths:
        print("usage: check_md_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    bad = []
    for path in paths:
        bad.extend(check(path))
    for entry in bad:
        print(entry)
    if bad:
        return 1
    print(f"checked {len(paths)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
