#include "arch/architectures.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

TEST(Architectures, Qx4MatchesFig2) {
  const auto cm = arch::ibm_qx4();
  EXPECT_EQ(cm.num_physical(), 5);
  // Fig. 2 1-based: (2,1) (3,1) (3,2) (4,3) (4,5) (5,3).
  const std::vector<std::pair<int, int>> expected{{1, 0}, {2, 0}, {2, 1},
                                                  {3, 2}, {3, 4}, {4, 2}};
  EXPECT_EQ(cm.edges(), expected);
  EXPECT_EQ(cm.name(), "ibmqx4");
}

TEST(Architectures, Qx2Basics) {
  const auto cm = arch::ibm_qx2();
  EXPECT_EQ(cm.num_physical(), 5);
  EXPECT_EQ(cm.edges().size(), 6u);
  EXPECT_TRUE(cm.is_connected());
  EXPECT_TRUE(cm.has_triangle());
}

TEST(Architectures, Qx5Basics) {
  const auto cm = arch::ibm_qx5();
  EXPECT_EQ(cm.num_physical(), 16);
  EXPECT_EQ(cm.edges().size(), 22u);
  EXPECT_TRUE(cm.is_connected());
  // QX5 couplings are strictly one-directional.
  for (const auto& [a, b] : cm.edges()) EXPECT_FALSE(cm.allows(b, a));
}

TEST(Architectures, TokyoIsBidirected) {
  const auto cm = arch::ibm_tokyo();
  EXPECT_EQ(cm.num_physical(), 20);
  EXPECT_TRUE(cm.is_connected());
  for (const auto& [a, b] : cm.edges()) EXPECT_TRUE(cm.allows(b, a));
}

TEST(Architectures, LinearRingGridClique) {
  EXPECT_EQ(arch::linear(4).edges().size(), 3u);
  EXPECT_FALSE(arch::linear(4).coupled(0, 3));
  EXPECT_EQ(arch::ring(5).edges().size(), 5u);
  EXPECT_TRUE(arch::ring(5).coupled(0, 4));
  EXPECT_THROW(arch::ring(2), std::invalid_argument);
  const auto g = arch::grid(2, 3);
  EXPECT_EQ(g.num_physical(), 6);
  EXPECT_TRUE(g.coupled(0, 3));
  EXPECT_FALSE(g.coupled(0, 4));
  const auto k = arch::clique(4);
  EXPECT_EQ(k.edges().size(), 12u);
}

TEST(Architectures, ByNameLookups) {
  EXPECT_EQ(arch::by_name("qx4").name(), "ibmqx4");
  EXPECT_EQ(arch::by_name("QX4").name(), "ibmqx4");
  EXPECT_EQ(arch::by_name("tenerife").name(), "ibmqx4");
  EXPECT_EQ(arch::by_name("qx2").name(), "ibmqx2");
  EXPECT_EQ(arch::by_name("qx5").num_physical(), 16);
  EXPECT_EQ(arch::by_name("tokyo").num_physical(), 20);
  EXPECT_EQ(arch::by_name("linear7").num_physical(), 7);
  EXPECT_EQ(arch::by_name("ring6").num_physical(), 6);
  EXPECT_EQ(arch::by_name("clique3").num_physical(), 3);
  EXPECT_THROW(arch::by_name("nope"), std::invalid_argument);
  EXPECT_THROW(arch::by_name("linearx"), std::invalid_argument);
}

TEST(Architectures, KnownNamesResolve) {
  for (const auto& name : arch::known_names()) {
    EXPECT_NO_THROW(arch::by_name(name));
  }
}

}  // namespace
}  // namespace qxmap
