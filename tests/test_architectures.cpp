#include "arch/architectures.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qxmap {
namespace {

TEST(Architectures, Qx4MatchesFig2) {
  const auto cm = arch::ibm_qx4();
  EXPECT_EQ(cm.num_physical(), 5);
  // Fig. 2 1-based: (2,1) (3,1) (3,2) (4,3) (4,5) (5,3).
  const std::vector<std::pair<int, int>> expected{{1, 0}, {2, 0}, {2, 1},
                                                  {3, 2}, {3, 4}, {4, 2}};
  EXPECT_EQ(cm.edges(), expected);
  EXPECT_EQ(cm.name(), "ibmqx4");
}

TEST(Architectures, Qx2Basics) {
  const auto cm = arch::ibm_qx2();
  EXPECT_EQ(cm.num_physical(), 5);
  EXPECT_EQ(cm.edges().size(), 6u);
  EXPECT_TRUE(cm.is_connected());
  EXPECT_TRUE(cm.has_triangle());
}

TEST(Architectures, Qx5Basics) {
  const auto cm = arch::ibm_qx5();
  EXPECT_EQ(cm.num_physical(), 16);
  EXPECT_EQ(cm.edges().size(), 22u);
  EXPECT_TRUE(cm.is_connected());
  // QX5 couplings are strictly one-directional.
  for (const auto& [a, b] : cm.edges()) EXPECT_FALSE(cm.allows(b, a));
}

TEST(Architectures, TokyoIsBidirected) {
  const auto cm = arch::ibm_tokyo();
  EXPECT_EQ(cm.num_physical(), 20);
  EXPECT_TRUE(cm.is_connected());
  for (const auto& [a, b] : cm.edges()) EXPECT_TRUE(cm.allows(b, a));
}

TEST(Architectures, LinearRingGridClique) {
  EXPECT_EQ(arch::linear(4).edges().size(), 3u);
  EXPECT_FALSE(arch::linear(4).coupled(0, 3));
  EXPECT_EQ(arch::ring(5).edges().size(), 5u);
  EXPECT_TRUE(arch::ring(5).coupled(0, 4));
  EXPECT_THROW(arch::ring(2), std::invalid_argument);
  const auto g = arch::grid(2, 3);
  EXPECT_EQ(g.num_physical(), 6);
  EXPECT_TRUE(g.coupled(0, 3));
  EXPECT_FALSE(g.coupled(0, 4));
  const auto k = arch::clique(4);
  EXPECT_EQ(k.edges().size(), 12u);
}

TEST(Architectures, HeavyHexFamilyShapes) {
  // IBM's heavy-hex lattices at the three published scales. Expected
  // undirected edge counts follow from the row/bridge construction.
  const struct {
    arch::CouplingMap cm;
    int qubits;
    std::size_t undirected;
  } cases[] = {
      {arch::ibm_hex27(), 27, 28},
      {arch::ibm_hex65(), 65, 72},
      {arch::ibm_hex127(), 127, 144},
  };
  for (const auto& [cm, qubits, undirected] : cases) {
    SCOPED_TRACE(cm.name());
    EXPECT_EQ(cm.num_physical(), qubits);
    EXPECT_EQ(cm.undirected_edges().size(), undirected);
    EXPECT_TRUE(cm.is_connected());
    EXPECT_FALSE(cm.has_triangle());  // heavy-hex is triangle-free
    // Bidirected: every coupling works both ways.
    for (const auto& [a, b] : cm.edges()) EXPECT_TRUE(cm.allows(b, a));
    // The defining degree bound of the heavy-hex topology.
    for (int q = 0; q < qubits; ++q) {
      EXPECT_LE(cm.neighbours(q).size(), 3u) << "qubit " << q;
    }
  }
}

TEST(Architectures, Hex27MatchesFalconSpotChecks) {
  // Vendor numbering (ibmq_mumbai et al.): 0-1-2-3 top row, bridges 4/5.
  const auto cm = arch::ibm_hex27();
  EXPECT_TRUE(cm.coupled(0, 1));
  EXPECT_TRUE(cm.coupled(1, 4));
  EXPECT_TRUE(cm.coupled(4, 7));
  EXPECT_TRUE(cm.coupled(3, 5));
  EXPECT_TRUE(cm.coupled(5, 8));
  EXPECT_TRUE(cm.coupled(25, 26));
  EXPECT_FALSE(cm.coupled(0, 2));
  EXPECT_FALSE(cm.coupled(4, 5));
}

TEST(Architectures, HeavyHexByNameAliases) {
  EXPECT_EQ(arch::by_name("hex27").num_physical(), 27);
  EXPECT_EQ(arch::by_name("falcon").num_physical(), 27);
  EXPECT_EQ(arch::by_name("mumbai").num_physical(), 27);
  EXPECT_EQ(arch::by_name("hex65").num_physical(), 65);
  EXPECT_EQ(arch::by_name("hummingbird").num_physical(), 65);
  EXPECT_EQ(arch::by_name("manhattan").num_physical(), 65);
  EXPECT_EQ(arch::by_name("hex127").num_physical(), 127);
  EXPECT_EQ(arch::by_name("eagle").num_physical(), 127);
  EXPECT_EQ(arch::by_name("washington").num_physical(), 127);
}

TEST(Architectures, KnownNamesIncludeHeavyHex) {
  const auto names = arch::known_names();
  for (const char* want : {"hex27", "hex65", "hex127"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), want), names.end()) << want;
  }
}

TEST(Architectures, ByNameLookups) {
  EXPECT_EQ(arch::by_name("qx4").name(), "ibmqx4");
  EXPECT_EQ(arch::by_name("QX4").name(), "ibmqx4");
  EXPECT_EQ(arch::by_name("tenerife").name(), "ibmqx4");
  EXPECT_EQ(arch::by_name("qx2").name(), "ibmqx2");
  EXPECT_EQ(arch::by_name("qx5").num_physical(), 16);
  EXPECT_EQ(arch::by_name("tokyo").num_physical(), 20);
  EXPECT_EQ(arch::by_name("linear7").num_physical(), 7);
  EXPECT_EQ(arch::by_name("ring6").num_physical(), 6);
  EXPECT_EQ(arch::by_name("clique3").num_physical(), 3);
  EXPECT_THROW(arch::by_name("nope"), std::invalid_argument);
  EXPECT_THROW(arch::by_name("linearx"), std::invalid_argument);
}

TEST(Architectures, KnownNamesResolve) {
  for (const auto& name : arch::known_names()) {
    EXPECT_NO_THROW(arch::by_name(name));
  }
}

}  // namespace
}  // namespace qxmap
