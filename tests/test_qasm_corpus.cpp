/// QASM corpus gate: every circuit under tests/qasm_corpus/ uses front-end
/// features the pre-1.1 parser rejected (user-defined gates, `if`
/// conditionals, qelib1 macro gates, expression functions, broadcast).
/// Each must (1) parse, (2) round-trip through the writer gate-for-gate,
/// and (3) map onto a built-in architecture into a coupling-legal circuit
/// with every classical guard preserved.

#include <gtest/gtest.h>

#include <string>

#include "api/qxmap.hpp"
#include "exact/swap_synthesis.hpp"
#include "qasm_test_helpers.hpp"

namespace qxmap {
namespace {

std::string corpus_path(const std::string& file) {
  return std::string(QXMAP_SOURCE_DIR) + "/tests/qasm_corpus/" + file;
}

struct CorpusEntry {
  const char* file;
  int qubits;
  int min_conditional_gates;  // guards the `if` lowering end to end
};

constexpr CorpusEntry kCorpus[] = {
    {"teleport.qasm", 3, 2},       {"adder_majority.qasm", 4, 0},
    {"qft4.qasm", 4, 0},           {"qec_bitflip.qasm", 5, 3},
    {"expr_param_gates.qasm", 2, 0}, {"pairwise_entangle.qasm", 4, 0},
};

int conditional_count(const Circuit& c) {
  int n = 0;
  for (const auto& g : c) {
    if (g.is_conditional()) ++n;
  }
  return n;
}

TEST(QasmCorpus, ParsesPreviouslyRejectedCircuits) {
  for (const auto& entry : kCorpus) {
    SCOPED_TRACE(entry.file);
    const Circuit c = qasm::parse_file(corpus_path(entry.file));
    EXPECT_EQ(c.num_qubits(), entry.qubits);
    EXPECT_GT(c.size(), 0u);
    EXPECT_GE(conditional_count(c), entry.min_conditional_gates);
  }
}

TEST(QasmCorpus, RoundTripsThroughWriter) {
  for (const auto& entry : kCorpus) {
    SCOPED_TRACE(entry.file);
    const Circuit c = qasm::parse_file(corpus_path(entry.file));
    const Circuit back = qasm::parse(qasm::write(c), c.name());
    testutil::expect_same_gates_within_writer_precision(c, back);
  }
}

TEST(QasmCorpus, MapsOntoIbmQx4) {
  for (const auto& entry : kCorpus) {
    SCOPED_TRACE(entry.file);
    // Raw `swap` gates go in as-is: every mapper decomposes pseudo-gates
    // itself, so callers no longer pre-expand.
    const Circuit c = qasm::parse_file(corpus_path(entry.file));
    MapOptions options;
    options.method = Method::Sabre;
    const auto res = map(c, arch::ibm_qx4(), options);
    EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::ibm_qx4()));
    EXPECT_GE(res.mapped.size(), c.size());
    // Guards survive mapping (a guarded CNOT may fan out to several guarded
    // elementary gates, so >=).
    EXPECT_GE(conditional_count(res.mapped), conditional_count(c));
  }
}

TEST(QasmCorpus, RawSwapsRouteThroughEveryMapper) {
  // swap_routing.qasm carries raw `swap` pseudo-gates (one guarded). Each
  // mapper must accept them directly and emit a coupling-legal circuit with
  // no swap pseudo-gates left.
  const Circuit c = qasm::parse_file(corpus_path("swap_routing.qasm"));
  ASSERT_GT(c.counts().swap, 0);
  for (const auto method :
       {Method::Exact, Method::Sabre, Method::StochasticSwap, Method::AStar}) {
    SCOPED_TRACE(static_cast<int>(method));
    MapOptions options;
    options.method = method;
    options.exact.budget = std::chrono::milliseconds(30000);
    const auto res = map(c, arch::ibm_qx4(), options);
    EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::ibm_qx4()));
    EXPECT_EQ(res.mapped.counts().swap, 0);
    EXPECT_GE(conditional_count(res.mapped), conditional_count(c));
  }
}

}  // namespace
}  // namespace qxmap
