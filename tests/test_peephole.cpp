#include "opt/peephole.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "bench_circuits/generators.hpp"
#include "exact/exact_mapper.hpp"
#include "exact/swap_synthesis.hpp"
#include "sim/unitary.hpp"

namespace qxmap {
namespace {

TEST(Peephole, CancelsAdjacentHadamards) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  int cancelled = 0;
  const Circuit out = opt::cancel_inverse_pairs(c, &cancelled);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cancelled, 1);
}

TEST(Peephole, CancelsCnotPairs) {
  Circuit c(2);
  c.cnot(0, 1);
  c.cnot(0, 1);
  EXPECT_TRUE(opt::cancel_inverse_pairs(c).empty());
  // Opposite orientation does not cancel.
  Circuit d(2);
  d.cnot(0, 1);
  d.cnot(1, 0);
  EXPECT_EQ(opt::cancel_inverse_pairs(d).size(), 2u);
}

TEST(Peephole, InterveningGateBlocksCancellation) {
  Circuit c(2);
  c.cnot(0, 1);
  c.t(1);
  c.cnot(0, 1);
  EXPECT_EQ(opt::cancel_inverse_pairs(c).size(), 3u);
}

TEST(Peephole, SpectatorGateDoesNotBlock) {
  Circuit c(3);
  c.cnot(0, 1);
  c.t(2);  // untouched qubit
  c.cnot(0, 1);
  EXPECT_EQ(opt::cancel_inverse_pairs(c).size(), 1u);
}

TEST(Peephole, BarrierBlocksCancellation) {
  Circuit c(1);
  c.h(0);
  c.append(Gate::barrier());
  c.h(0);
  EXPECT_EQ(opt::cancel_inverse_pairs(c).size(), 3u);
}

TEST(Peephole, SAndSdgCancel) {
  Circuit c(1);
  c.s(0);
  c.sdg(0);
  EXPECT_TRUE(opt::cancel_inverse_pairs(c).empty());
}

TEST(Peephole, OppositeRotationsCancel) {
  Circuit c(1);
  c.append(Gate::single(OpKind::Rz, 0, {0.7}));
  c.append(Gate::single(OpKind::Rz, 0, {-0.7}));
  EXPECT_TRUE(opt::cancel_inverse_pairs(c).empty());
}

TEST(Peephole, CascadingCancellation) {
  // H X X H collapses completely once the fixpoint loop reruns the pass.
  Circuit c(1);
  c.h(0);
  c.x(0);
  c.x(0);
  c.h(0);
  const Circuit out = opt::optimize(c);
  EXPECT_TRUE(out.empty());
}

TEST(Peephole, MergesDiagonalRuns) {
  Circuit c(1);
  c.t(0);
  c.t(0);
  int merged = 0;
  const Circuit out = opt::merge_diagonal_runs(c, &merged);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.gate(0).kind, OpKind::S);  // T·T = S
  EXPECT_EQ(merged, 1);
}

TEST(Peephole, MergedPhasesCanVanish) {
  Circuit c(1);
  c.s(0);
  c.s(0);
  c.z(0);  // S·S·Z = Z·Z = I
  EXPECT_TRUE(opt::merge_diagonal_runs(c).empty());
}

TEST(Peephole, DiagonalMergePreservesUnitary) {
  Circuit c(2);
  c.t(0);
  c.z(0);
  c.append(Gate::single(OpKind::Rz, 0, {0.3}));
  c.cnot(0, 1);
  c.sdg(1);
  c.tdg(1);
  EXPECT_TRUE(sim::same_unitary(c, opt::merge_diagonal_runs(c)));
}

TEST(Peephole, SimplifiesReversedCnotSandwich) {
  Circuit c(2);
  c.h(0);
  c.h(1);
  c.cnot(0, 1);
  c.h(0);
  c.h(1);
  int rewritten = 0;
  const Circuit out = opt::simplify_reversed_cnots(c, std::nullopt, &rewritten);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.gate(0), Gate::cnot(1, 0));
  EXPECT_EQ(rewritten, 1);
  EXPECT_TRUE(sim::same_unitary(c, out));
}

TEST(Peephole, DirectionSimplificationRespectsCoupling) {
  // On QX4 only (1,0) is allowed; rewriting the sandwich around CX(0,1)
  // into CX(1,0) is legal, but the opposite rewrite must be suppressed.
  Circuit sandwich(5);
  sandwich.h(0);
  sandwich.h(1);
  sandwich.cnot(0, 1);
  sandwich.h(0);
  sandwich.h(1);
  const Circuit out = opt::simplify_reversed_cnots(sandwich, arch::ibm_qx4(), nullptr);
  ASSERT_EQ(out.size(), 1u);

  Circuit blocked(5);
  blocked.h(0);
  blocked.h(1);
  blocked.cnot(1, 0);  // rewriting would produce illegal CX(0,1)
  blocked.h(0);
  blocked.h(1);
  EXPECT_EQ(opt::simplify_reversed_cnots(blocked, arch::ibm_qx4(), nullptr).size(), 5u);
}

TEST(Peephole, OptimizeIsIdempotent) {
  const Circuit c = bench::random_circuit(4, 20, 10, 5, "idem");
  const Circuit once = opt::optimize(c);
  const Circuit twice = opt::optimize(once);
  EXPECT_EQ(once, twice);
}

class PeepholeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeepholeProperty, PreservesUnitaryOnRandomCircuits) {
  const Circuit c = bench::random_circuit(4, 25, 12, GetParam(), "prop");
  opt::PeepholeStats stats;
  const Circuit out = opt::optimize(c, std::nullopt, &stats);
  EXPECT_LE(out.size(), c.size());
  EXPECT_TRUE(sim::same_unitary(c, out));
  EXPECT_EQ(static_cast<int>(c.size() - out.size()), stats.gates_removed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeepholeProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(Peephole, MappedCircuitStaysExecutable) {
  const auto cm = arch::ibm_qx4();
  const Circuit c = bench::random_circuit(4, 6, 8, 42, "mapped");
  exact::ExactOptions eopt;
  eopt.budget = std::chrono::milliseconds(30000);
  const auto res = exact::map_exact(c, cm, eopt);
  ASSERT_EQ(res.status, reason::Status::Optimal);
  const Circuit optimized = opt::optimize(res.mapped, cm);
  EXPECT_LE(optimized.size(), res.mapped.size());
  EXPECT_TRUE(exact::satisfies_coupling(optimized, cm));
  EXPECT_TRUE(sim::same_unitary(res.mapped, optimized));
}

}  // namespace
}  // namespace qxmap
