/// Acceptance and rejection suite for the JSON coupling-map front-end
/// (arch/coupling_json.hpp). Every rejection case asserts that the
/// diagnostic names the offending JSON path/field and carries a usable
/// 1-based line/column, in the same caret style as the QASM front-end.

#include "arch/coupling_json.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "arch/architectures.hpp"
#include "arch/coupling_map.hpp"

namespace qxmap {
namespace {

using arch::CouplingJsonError;
using arch::CouplingMap;
using arch::load_coupling_json;
using arch::load_coupling_json_file;

/// Runs the loader expecting a CouplingJsonError whose message contains
/// `needle`; returns the error for further line/column assertions.
CouplingJsonError expect_rejection(const std::string& text, const std::string& needle) {
  try {
    (void)load_coupling_json(text);
  } catch (const CouplingJsonError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic \"" << e.what() << "\" lacks \"" << needle << '"';
    return e;
  }
  ADD_FAILURE() << "loader accepted: " << text;
  return CouplingJsonError("unreached", 0, 0);
}

// --- acceptance ----------------------------------------------------------

TEST(CouplingJson, MinimalUndirectedMap) {
  const CouplingMap cm = load_coupling_json(
      R"({"name": "pair", "qubits": 2, "edges": [[0, 1]]})");
  EXPECT_EQ(cm.name(), "pair");
  EXPECT_EQ(cm.num_physical(), 2);
  // directed defaults to false: the edge is installed in both directions.
  EXPECT_TRUE(cm.allows(0, 1));
  EXPECT_TRUE(cm.allows(1, 0));
  EXPECT_FALSE(cm.has_error_rates());
  EXPECT_TRUE(cm.noise_fingerprint().empty());
}

TEST(CouplingJson, FallbackNameWhenDocumentHasNone) {
  const CouplingMap anon = load_coupling_json(R"({"qubits": 2, "edges": [[0, 1]]})");
  EXPECT_EQ(anon.name(), "json");
  const CouplingMap named =
      load_coupling_json(R"({"qubits": 2, "edges": [[0, 1]]})", "my-device");
  EXPECT_EQ(named.name(), "my-device");
  // An explicit "name" beats the fallback.
  const CouplingMap doc = load_coupling_json(
      R"({"name": "doc-name", "qubits": 2, "edges": [[0, 1]]})", "fallback");
  EXPECT_EQ(doc.name(), "doc-name");
}

TEST(CouplingJson, DirectedEdgesTakenVerbatim) {
  const CouplingMap cm = load_coupling_json(
      R"({"qubits": 3, "directed": true, "edges": [[1, 0], [2, 0], [2, 1]]})");
  // Same shape as QX4's left triangle: strictly one-directional.
  EXPECT_TRUE(cm.allows(1, 0));
  EXPECT_FALSE(cm.allows(0, 1));
  EXPECT_EQ(cm.edges().size(), 3u);
}

TEST(CouplingJson, ObjectFormEdgesCarryErrorRates) {
  const CouplingMap cm = load_coupling_json(R"({
    "qubits": 3,
    "edges": [
      {"control": 0, "target": 1, "error": 0.02},
      [1, 2]
    ]
  })");
  ASSERT_TRUE(cm.has_error_rates());
  const auto& rates = cm.error_rates();
  // Undirected map: the per-edge error applies to both directions.
  ASSERT_EQ(rates.cnot.count({0, 1}), 1u);
  ASSERT_EQ(rates.cnot.count({1, 0}), 1u);
  EXPECT_DOUBLE_EQ(rates.cnot.at({0, 1}), 0.02);
  EXPECT_DOUBLE_EQ(rates.cnot.at({1, 0}), 0.02);
  // The bare-pair edge has no calibration entry; the mean charges it at the
  // caller's fallback rate: (0.02 + 0.02 + 0.5 + 0.5) / 4 directed edges.
  EXPECT_EQ(rates.cnot.count({1, 2}), 0u);
  EXPECT_DOUBLE_EQ(cm.mean_cnot_error(0.5), 0.26);
}

TEST(CouplingJson, PerQubitArraysAndNoiseFingerprint) {
  const CouplingMap cm = load_coupling_json(R"({
    "qubits": 2,
    "edges": [{"control": 0, "target": 1, "error": 0.01}],
    "single_qubit_errors": [0.001, 0.002],
    "readout_errors": [0.03, 0.05]
  })");
  ASSERT_TRUE(cm.has_error_rates());
  EXPECT_DOUBLE_EQ(cm.mean_single_qubit_error(0.5), 0.0015);
  const std::string nfp = cm.noise_fingerprint();
  EXPECT_NE(nfp.find("cx:"), std::string::npos);
  EXPECT_NE(nfp.find("|1q:"), std::string::npos);
  EXPECT_NE(nfp.find("|ro:"), std::string::npos);
  // Same document → same noise fingerprint; a different rate changes it.
  const CouplingMap other = load_coupling_json(R"({
    "qubits": 2,
    "edges": [{"control": 0, "target": 1, "error": 0.02}],
    "single_qubit_errors": [0.001, 0.002],
    "readout_errors": [0.03, 0.05]
  })");
  EXPECT_EQ(cm.fingerprint(), other.fingerprint());
  EXPECT_NE(nfp, other.noise_fingerprint());
}

TEST(CouplingJson, FromJsonFileUsesStemAsFallbackName) {
  const std::string path = testing::TempDir() + "ring3_device.json";
  {
    std::ofstream out(path);
    out << R"({"qubits": 3, "edges": [[0, 1], [1, 2], [2, 0]]})";
  }
  const CouplingMap cm = load_coupling_json_file(path);
  EXPECT_EQ(cm.name(), "ring3_device");
  EXPECT_EQ(cm.num_physical(), 3);
  EXPECT_TRUE(cm.is_connected());
  // CouplingMap::from_json_file is a plain forwarder.
  EXPECT_EQ(CouplingMap::from_json_file(path).fingerprint(), cm.fingerprint());
}

TEST(CouplingJson, FileDiagnosticsCarryThePath) {
  const std::string path = testing::TempDir() + "broken_map.json";
  {
    std::ofstream out(path);
    out << "{\"qubits\": 2,\n \"edges\": [[0, 5]]}";
  }
  try {
    (void)load_coupling_json_file(path);
    FAIL() << "loader accepted an out-of-range endpoint";
  } catch (const CouplingJsonError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
    EXPECT_EQ(e.line(), 2);
  }
  EXPECT_THROW((void)load_coupling_json_file(testing::TempDir() + "no_such_map.json"),
               std::runtime_error);
}

// --- rejection: malformed JSON -------------------------------------------

TEST(CouplingJsonReject, MalformedJsonReportsLineColumnAndCaret) {
  const auto e = expect_rejection("{\"qubits\": 2,\n  \"edges\": [[0, 1]\n}",
                                  "',' or ']' in array");
  EXPECT_EQ(e.line(), 3);
  EXPECT_EQ(e.column(), 1);
  // The excerpt renders the offending line with a caret under the column.
  EXPECT_NE(std::string(e.what()).find("\n  }\n  ^"), std::string::npos) << e.what();
}

TEST(CouplingJsonReject, LexicalErrors) {
  expect_rejection("", "empty document");
  expect_rejection("[1, 2]", "top-level value must be an object, got an array");
  expect_rejection("42", "top-level value must be an object, got a number");
  expect_rejection(R"({"qubits": 2, "edges": [[0, 1]]} trailing)",
                   "trailing content after the top-level value");
  expect_rejection(R"({"qubits": 1e+})", "malformed number");
  expect_rejection(R"({"qubits": -})", "malformed number '-'");
  expect_rejection("{\"name\": \"unterminated", "unterminated string");
  expect_rejection(R"({"name": "bad\q"})", "unsupported escape");
  expect_rejection(R"({"qubits": 2, "qubits": 3})", "duplicate key \"qubits\"");
}

// --- rejection: schema violations ----------------------------------------

TEST(CouplingJsonReject, MissingAndMistypedRequiredFields) {
  expect_rejection(R"({"edges": [[0, 1]]})", "missing required field \"qubits\"");
  expect_rejection(R"({"qubits": 2})", "missing required field \"edges\"");
  expect_rejection(R"({"qubits": 2.5, "edges": [[0, 1]]})", "qubits: expected an integer");
  expect_rejection(R"({"qubits": 0, "edges": []})", "qubits: must be positive");
  expect_rejection(R"({"qubits": 5000, "edges": [[0, 1]]})", "qubits: implausibly large");
  expect_rejection(R"({"qubits": 2, "edges": []})", "edges: must not be empty");
  expect_rejection(R"({"qubits": 2, "edges": [[0, 1]], "bogus": 1})",
                   "unknown field \"bogus\"");
}

TEST(CouplingJsonReject, OutOfRangeEndpointsNameTheExactPath) {
  const auto e = expect_rejection(
      R"({"qubits": 4, "edges": [[0, 1], [1, 2], [2, 3], [3, 9]]})",
      "edges[3][1]: qubit index 9 out of range for 4 qubits");
  EXPECT_GT(e.column(), 1);
  expect_rejection(R"({"qubits": 3, "edges": [[0, 1], [1, 2], {"control": -1, "target": 0}]})",
                   "edges[2].control: qubit index -1 out of range");
  expect_rejection(R"({"qubits": 2, "edges": [[1, 1]]})",
                   "edges[0]: self-loop on qubit 1");
  expect_rejection(R"({"qubits": 2, "edges": [[0]]})",
                   "edges[0]: expected a [control, target] pair, got 1 entries");
  expect_rejection(R"({"qubits": 2, "edges": [{"target": 1}]})",
                   "edges[0]: missing required field \"control\"");
  expect_rejection(R"({"qubits": 2, "edges": [{"control": 0, "target": 1, "weight": 2}]})",
                   "unknown field \"weight\"");
  expect_rejection(R"({"qubits": 2, "edges": ["0-1"]})",
                   "edges[0]: expected a [control, target] pair or an object");
}

TEST(CouplingJsonReject, DuplicateEdgesCiteTheFirstOccurrence) {
  expect_rejection(R"({"qubits": 3, "edges": [[0, 1], [1, 2], [0, 1]]})",
                   "edges[2]: duplicate edge (0,1), first seen at edges[0]");
  // Undirected maps normalise, so the reversed pair is the same edge...
  expect_rejection(R"({"qubits": 3, "edges": [[0, 1], [1, 0]]})",
                   "edges[1]: duplicate edge (1,0), first seen at edges[0]");
  // ...while a directed map legitimately holds both orientations.
  EXPECT_NO_THROW((void)load_coupling_json(
      R"({"qubits": 2, "directed": true, "edges": [[0, 1], [1, 0]]})"));
}

TEST(CouplingJsonReject, ErrorRatesOutsideTheUnitInterval) {
  expect_rejection(
      R"({"qubits": 2, "edges": [{"control": 0, "target": 1, "error": -0.1}]})",
      "edges[0].error: error rate must lie in [0, 1)");
  expect_rejection(
      R"({"qubits": 2, "edges": [{"control": 0, "target": 1, "error": 1.0}]})",
      "edges[0].error: error rate must lie in [0, 1)");
  expect_rejection(
      R"({"qubits": 2, "edges": [[0, 1]], "single_qubit_errors": [0.001, 2]})",
      "single_qubit_errors[1]: error rate must lie in [0, 1)");
  expect_rejection(
      R"({"qubits": 2, "edges": [[0, 1]], "readout_errors": [-1, 0.04]})",
      "readout_errors[0]: error rate must lie in [0, 1)");
}

TEST(CouplingJsonReject, PerQubitArraysMustMatchTheQubitCount) {
  expect_rejection(
      R"({"qubits": 3, "edges": [[0, 1], [1, 2]], "single_qubit_errors": [0.001]})",
      "single_qubit_errors: expected one entry per qubit (3), got 1");
  expect_rejection(
      R"({"qubits": 2, "edges": [[0, 1]], "readout_errors": [0.1, 0.2, 0.3]})",
      "readout_errors: expected one entry per qubit (2), got 3");
}

}  // namespace
}  // namespace qxmap
