#include "sim/fidelity.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "arch/architectures.hpp"
#include "arch/coupling_map.hpp"

namespace qxmap {
namespace {

using sim::NoiseModel;

TEST(Fidelity, EmptyCircuitIsPerfect) {
  EXPECT_DOUBLE_EQ(sim::success_probability(Circuit(3)), 1.0);
  EXPECT_DOUBLE_EQ(sim::log10_success(Circuit(3)), 0.0);
}

TEST(Fidelity, SingleGateMatchesModel) {
  NoiseModel model;
  model.single_qubit_error = 0.01;
  Circuit c(1);
  c.h(0);
  EXPECT_NEAR(sim::success_probability(c, model), 0.99, 1e-12);
}

TEST(Fidelity, GatesCompose) {
  NoiseModel model;
  model.single_qubit_error = 0.01;
  model.cnot_error = 0.05;
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);
  EXPECT_NEAR(sim::success_probability(c, model), 0.99 * 0.95, 1e-12);
}

TEST(Fidelity, BarriersAreFree) {
  Circuit c(2);
  c.append(Gate::barrier());
  EXPECT_DOUBLE_EQ(sim::success_probability(c), 1.0);
}

TEST(Fidelity, MeasureUsesReadoutError) {
  NoiseModel model;
  model.readout_error = 0.1;
  Circuit c(1);
  c.append(Gate::measure(0));
  EXPECT_NEAR(sim::success_probability(c, model), 0.9, 1e-12);
}

TEST(Fidelity, SwapChargedAsSevenGateDecomposition) {
  NoiseModel model;
  Circuit pseudo(2);
  pseudo.swap(0, 1);
  EXPECT_NEAR(sim::success_probability(pseudo, model),
              sim::success_probability(pseudo.with_swaps_expanded(), model), 1e-12);
}

TEST(Fidelity, PerEdgeOverrides) {
  NoiseModel model;
  model.cnot_error = 0.02;
  model.cnot_error_overrides[{1, 0}] = 0.10;
  Circuit good(2);
  good.cnot(0, 1);
  Circuit bad(2);
  bad.cnot(1, 0);
  EXPECT_GT(sim::success_probability(good, model), sim::success_probability(bad, model));
  EXPECT_NEAR(sim::success_probability(bad, model), 0.90, 1e-12);
}

TEST(Fidelity, FewerAddedGatesMeansHigherFidelity) {
  // The paper's rationale for the pure gate-count metric.
  Circuit cheap(2);
  cheap.cnot(0, 1);
  Circuit expensive(2);
  expensive.cnot(0, 1);
  expensive.h(0);
  expensive.h(1);
  expensive.cnot(0, 1);
  expensive.h(0);
  expensive.h(1);
  EXPECT_GT(sim::fidelity_ratio(cheap, expensive), 1.0);
}

TEST(Fidelity, LogAndLinearAgree) {
  Circuit c(3);
  for (int i = 0; i < 10; ++i) {
    c.h(i % 3);
    c.cnot(i % 3, (i + 1) % 3);
  }
  EXPECT_NEAR(std::pow(10.0, sim::log10_success(c)), sim::success_probability(c), 1e-12);
}

TEST(Fidelity, NoiseModelForReadsArchitectureCalibration) {
  auto cm = arch::CouplingMap(2, {{0, 1}, {1, 0}}, "calib");
  arch::ErrorRates rates;
  rates.cnot[{0, 1}] = 0.03;
  rates.cnot[{1, 0}] = 0.05;
  rates.single_qubit = {0.001, 0.003};
  rates.readout = {0.02, 0.06};
  cm.set_error_rates(rates);

  NoiseModel defaults;
  defaults.cnot_error = 0.5;  // must be displaced by the calibration means
  const NoiseModel model = sim::noise_model_for(cm, defaults);
  EXPECT_DOUBLE_EQ(model.cnot_error, 0.04);
  EXPECT_DOUBLE_EQ(model.single_qubit_error, 0.002);
  EXPECT_DOUBLE_EQ(model.readout_error, 0.04);
  ASSERT_EQ(model.cnot_error_overrides.size(), 2u);
  EXPECT_DOUBLE_EQ(model.cnot_error_overrides.at({0, 1}), 0.03);
  EXPECT_DOUBLE_EQ(model.cnot_error_overrides.at({1, 0}), 0.05);

  // A map without calibration keeps the caller's defaults untouched.
  const NoiseModel bare = sim::noise_model_for(arch::ibm_qx4(), defaults);
  EXPECT_DOUBLE_EQ(bare.cnot_error, defaults.cnot_error);
  EXPECT_DOUBLE_EQ(bare.readout_error, defaults.readout_error);
  EXPECT_TRUE(bare.cnot_error_overrides.empty());
}

TEST(Fidelity, InvalidErrorRatesRejected) {
  NoiseModel model;
  model.single_qubit_error = 1.0;
  Circuit c(1);
  c.h(0);
  EXPECT_THROW((void)sim::log10_success(c, model), std::domain_error);
  model.single_qubit_error = -0.1;
  EXPECT_THROW((void)sim::log10_success(c, model), std::domain_error);
}

}  // namespace
}  // namespace qxmap
