#include "exact/encoder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"
#include "reason/cdcl_engine.hpp"

namespace qxmap {
namespace {

using exact::CostModel;
using exact::Encoding;
using reason::EngineKind;
using reason::Status;

constexpr auto kBudget = std::chrono::milliseconds(20000);

CostModel qx_costs() {
  CostModel c;
  c.swap_cost = 7;
  c.reverse_cost = 4;
  return c;
}

class EncoderTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EncoderTest, SingleGateNeedsNoOverhead) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(GetParam());
  const std::vector<Gate> cnots{Gate::cnot(0, 1)};
  const Encoding enc(*engine, cnots, 2, cm, table, {}, qx_costs());
  const auto out = engine->minimize(kBudget);
  ASSERT_EQ(out.status, Status::Optimal);
  const auto sol = enc.decode();
  EXPECT_EQ(sol.cost_f, 0);
  EXPECT_FALSE(sol.reversed[0]);
  // The chosen placement must put the pair on a forward edge.
  const int pc = sol.layouts[0][0];
  const int pt = sol.layouts[0][1];
  EXPECT_TRUE(cm.allows(pc, pt));
}

TEST_P(EncoderTest, ForcedReversalCosts4) {
  // Both CNOT orientations between the same logical pair: one must be
  // reversed on an antisymmetric coupling map (cheaper than any SWAP).
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(GetParam());
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(1, 0)};
  const Encoding enc(*engine, cnots, 2, cm, table, {1}, qx_costs());
  const auto out = engine->minimize(kBudget);
  ASSERT_EQ(out.status, Status::Optimal);
  const auto sol = enc.decode();
  EXPECT_EQ(sol.cost_f, 4);
  EXPECT_EQ(static_cast<int>(sol.reversed[0]) + static_cast<int>(sol.reversed[1]), 1);
}

TEST_P(EncoderTest, NoPermutationPointsFreezesLayout) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(GetParam());
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(1, 2), Gate::cnot(0, 2)};
  const Encoding enc(*engine, cnots, 3, cm, table, {}, qx_costs());
  const auto out = engine->minimize(kBudget);
  ASSERT_EQ(out.status, Status::Optimal);
  const auto sol = enc.decode();
  EXPECT_EQ(sol.layouts[0], sol.layouts[1]);
  EXPECT_EQ(sol.layouts[1], sol.layouts[2]);
  // A triangle placement exists on QX4 (p1 p2 p3), so no SWAPs are needed;
  // at least one direction must be paid for, since the triangle is not a
  // directed 3-cycle.
  EXPECT_EQ(sol.cost_f % 4, 0);
  EXPECT_LE(sol.cost_f, 8);
}

TEST_P(EncoderTest, UnsatisfiableWithoutPermutations) {
  // All six pairs among 4 qubits interact, but no 4 physical qubits of QX4
  // form a clique: with no permutation points the instance must be UNSAT.
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(GetParam());
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(2, 3), Gate::cnot(0, 2),
                                Gate::cnot(1, 3), Gate::cnot(0, 3), Gate::cnot(1, 2)};
  const Encoding enc(*engine, cnots, 4, cm, table, {}, qx_costs());
  EXPECT_EQ(engine->minimize(kBudget).status, Status::Unsat);
}

TEST_P(EncoderTest, SwapBeatsNothingWhenPairsConflict) {
  // CX(0,1) then CX(0,2) then CX(1,2) on a *line* architecture 0-1-2:
  // the three pairs cannot all be adjacent under one placement, so the
  // optimum uses exactly one SWAP (7) and possibly reversals.
  const auto cm = arch::linear(3);
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(GetParam());
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(0, 2), Gate::cnot(1, 2)};
  const Encoding enc(*engine, cnots, 3, cm, table, {1, 2}, qx_costs());
  const auto out = engine->minimize(kBudget);
  ASSERT_EQ(out.status, Status::Optimal);
  const auto sol = enc.decode();
  EXPECT_GE(sol.cost_f, 7);
  EXPECT_LE(sol.cost_f, 7 + 3 * 4);
  // Exactly one non-identity permutation was chosen.
  int nontrivial = 0;
  for (const auto& pi : sol.point_perms) {
    if (!pi.is_identity()) ++nontrivial;
  }
  EXPECT_EQ(nontrivial, 1);
}

TEST_P(EncoderTest, DecodedLayoutsAreInjective) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(GetParam());
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(1, 2), Gate::cnot(2, 3),
                                Gate::cnot(3, 0)};
  const Encoding enc(*engine, cnots, 4, cm, table, {1, 2, 3}, qx_costs());
  ASSERT_EQ(engine->minimize(kBudget).status, Status::Optimal);
  const auto sol = enc.decode();
  for (const auto& layout : sol.layouts) {
    std::vector<bool> used(5, false);
    for (const int p : layout) {
      ASSERT_GE(p, 0);
      ASSERT_LT(p, 5);
      EXPECT_FALSE(used[static_cast<std::size_t>(p)]);
      used[static_cast<std::size_t>(p)] = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothEngines, EncoderTest,
                         ::testing::Values(EngineKind::Z3, EngineKind::Cdcl));

TEST(Encoder, ValidationErrors) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(EngineKind::Cdcl);
  const std::vector<Gate> cnots{Gate::cnot(0, 1)};
  EXPECT_THROW(Encoding(*engine, {}, 2, cm, table, {}, qx_costs()), std::invalid_argument);
  EXPECT_THROW(Encoding(*engine, cnots, 6, cm, table, {}, qx_costs()), std::invalid_argument);
  EXPECT_THROW(Encoding(*engine, cnots, 1, cm, table, {}, qx_costs()), std::invalid_argument);
  EXPECT_THROW(Encoding(*engine, cnots, 2, cm, table, {0}, qx_costs()), std::invalid_argument);
  EXPECT_THROW(Encoding(*engine, cnots, 2, cm, table, {5}, qx_costs()), std::invalid_argument);
  exact::CostModel unresolved;  // swap_cost = -1
  EXPECT_THROW(Encoding(*engine, cnots, 2, cm, table, {}, unresolved), std::invalid_argument);
}

TEST(Encoder, PrefixReplayMatchesClassicConstruction) {
  // Same instance built twice: classic constructor vs. pre-built prefix
  // replayed into a fresh engine. Size accounting and the proven optimum
  // must be identical.
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(1, 2)};
  const std::vector<std::size_t> points{1};

  auto classic_engine = reason::make_engine(EngineKind::Cdcl);
  const Encoding classic(*classic_engine, cnots, 3, cm, table, points, qx_costs());
  const auto classic_out = classic_engine->minimize(kBudget);
  ASSERT_EQ(classic_out.status, Status::Optimal);

  const auto prefix = Encoding::build_prefix(cnots, 3, cm.num_physical(), points);
  EXPECT_GT(prefix.var_count, 0u);
  EXPECT_GT(prefix.clause_count, 0u);
  auto replay_engine = reason::make_engine(EngineKind::Cdcl);
  const Encoding replayed(*replay_engine, prefix, cm, table, qx_costs(),
                          /*engine_holds_prefix=*/false);
  EXPECT_EQ(replayed.num_variables(), classic.num_variables());
  EXPECT_EQ(replayed.num_clauses(), classic.num_clauses());
  const auto replay_out = replay_engine->minimize(kBudget);
  ASSERT_EQ(replay_out.status, classic_out.status);
  EXPECT_EQ(replay_out.cost, classic_out.cost);
  EXPECT_EQ(replayed.decode().cost_f, classic.decode().cost_f);
}

TEST(Encoder, ResetEngineSkipsStraightToTheSuffix) {
  // The shard pattern: replay the prefix once, solve instance 1, reset, emit
  // only instance 2's suffix. Each solve must match a fresh-engine build of
  // the same instance exactly.
  const arch::CouplingMap line_a(3, {{0, 1}, {1, 2}}, "line-a");
  const arch::CouplingMap line_b(3, {{1, 0}, {2, 1}}, "line-b");
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(1, 2), Gate::cnot(0, 2)};
  const std::vector<std::size_t> points{1, 2};
  const auto prefix = Encoding::build_prefix(cnots, 3, 3, points);

  reason::CdclEngine shared;
  int instance = 0;
  for (const auto* cm : {&line_a, &line_b}) {
    const arch::SwapCostTable table(*cm);
    const bool holds = shared.reset_to_prefix();
    EXPECT_EQ(holds, instance > 0) << "reset must succeed exactly after the first mark";
    const Encoding enc(shared, prefix, *cm, table, qx_costs(), holds);
    const auto out = shared.minimize(kBudget);

    reason::CdclEngine fresh;
    const Encoding fresh_enc(fresh, prefix, *cm, table, qx_costs(), /*engine_holds_prefix=*/false);
    const auto fresh_out = fresh.minimize(kBudget);

    ASSERT_EQ(out.status, fresh_out.status) << cm->name();
    ASSERT_EQ(out.status, Status::Optimal) << cm->name();
    EXPECT_EQ(out.cost, fresh_out.cost) << cm->name();
    EXPECT_EQ(enc.num_variables(), fresh_enc.num_variables()) << cm->name();
    EXPECT_EQ(enc.num_clauses(), fresh_enc.num_clauses()) << cm->name();
    ++instance;
  }
}

TEST(Encoder, PrefixReplayDemandsAFreshEngine) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  const std::vector<Gate> cnots{Gate::cnot(0, 1)};
  const auto prefix = Encoding::build_prefix(cnots, 2, cm.num_physical(), {});
  auto engine = reason::make_engine(EngineKind::Cdcl);
  (void)engine->new_bool();  // identity variable remap is no longer possible
  EXPECT_THROW(Encoding(*engine, prefix, cm, table, qx_costs(), /*engine_holds_prefix=*/false),
               std::logic_error);
}

TEST(Encoder, PrefixSizeMismatchIsRejected) {
  const std::vector<Gate> cnots{Gate::cnot(0, 1)};
  const auto prefix = Encoding::build_prefix(cnots, 2, 3, {});  // m = 3
  const auto cm = arch::ibm_qx4();                              // m = 5
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(EngineKind::Cdcl);
  EXPECT_THROW(Encoding(*engine, prefix, cm, table, qx_costs(), /*engine_holds_prefix=*/false),
               std::invalid_argument);
}

TEST(Encoder, ReportsInstanceSize) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  auto engine = reason::make_engine(EngineKind::Cdcl);
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(1, 2)};
  const Encoding enc(*engine, cnots, 3, cm, table, {1}, qx_costs());
  // x vars: 2 gates * 5 * 3 = 30; y vars: 120; plus Tseitin terms.
  EXPECT_GE(enc.num_variables(), 150u);
  EXPECT_GT(enc.num_clauses(), 1000u);
  EXPECT_EQ(enc.num_gates(), 2);
  EXPECT_EQ(enc.num_logical(), 3);
  EXPECT_EQ(enc.num_physical(), 5);
}

}  // namespace
}  // namespace qxmap
