#include "sat/totalizer.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

using sat::Lit;
using sat::neg;
using sat::pos;
using sat::Solver;
using sat::SolveResult;

TEST(Totalizer, EmptyInput) {
  Solver s;
  EXPECT_TRUE(sat::build_totalizer(s, {}).empty());
}

TEST(Totalizer, OutputsCountTrueInputsExactly) {
  // For every forced input assignment over 5 inputs, the outputs must read
  // the exact unary count.
  const int n = 5;
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    Solver s;
    std::vector<Lit> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(pos(s.new_var()));
    const auto outputs = sat::build_totalizer(s, inputs);
    ASSERT_EQ(outputs.size(), static_cast<std::size_t>(n));
    int count = 0;
    for (int i = 0; i < n; ++i) {
      const bool v = ((mask >> i) & 1u) != 0;
      if (v) ++count;
      s.add_clause(v ? inputs[static_cast<std::size_t>(i)] : ~inputs[static_cast<std::size_t>(i)]);
    }
    ASSERT_EQ(s.solve(), SolveResult::Satisfiable);
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(s.model_value(outputs[static_cast<std::size_t>(k - 1)]), count >= k)
          << "mask " << mask << " k " << k;
    }
  }
}

class CardinalityBound : public ::testing::TestWithParam<int> {};

TEST_P(CardinalityBound, AtMostKEnforced) {
  const int n = 6;
  const int bound = GetParam();
  Solver s;
  std::vector<Lit> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(pos(s.new_var()));
  sat::add_cardinality_at_most(s, inputs, bound);

  // Forcing exactly `bound` inputs true stays satisfiable…
  for (int i = 0; i < bound; ++i) s.add_clause(inputs[static_cast<std::size_t>(i)]);
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
  // …and one more pushes it over the limit.
  if (bound < n) {
    s.add_clause(inputs[static_cast<std::size_t>(bound)]);
    EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, CardinalityBound, ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Totalizer, NegativeBoundIsUnsat) {
  Solver s;
  std::vector<Lit> inputs{pos(s.new_var())};
  sat::add_cardinality_at_most(s, inputs, -1);
  EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
}

TEST(Totalizer, LooseBoundIsNoop) {
  Solver s;
  std::vector<Lit> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(pos(s.new_var()));
  sat::add_cardinality_at_most(s, inputs, 3);
  for (const Lit l : inputs) s.add_clause(l);
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
}

TEST(Totalizer, MixedPolarityInputs) {
  // Inputs may be arbitrary literals, including negations.
  Solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  const std::vector<Lit> inputs{pos(a), neg(b)};
  const auto outputs = sat::build_totalizer(s, inputs);
  s.add_clause(pos(a));
  s.add_clause(pos(b));  // neg(b) false -> count = 1
  ASSERT_EQ(s.solve(), SolveResult::Satisfiable);
  EXPECT_TRUE(s.model_value(outputs[0]));
  EXPECT_FALSE(s.model_value(outputs[1]));
}

}  // namespace
}  // namespace qxmap
