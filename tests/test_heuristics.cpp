#include "heuristic/astar_mapper.hpp"
#include "heuristic/layer_weight_mapper.hpp"
#include "heuristic/stochastic_swap.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/reference_search.hpp"
#include "exact/swap_synthesis.hpp"
#include "sim/equivalence.hpp"

namespace qxmap {
namespace {

using heuristic::AStarOptions;
using heuristic::map_astar;
using heuristic::map_stochastic_swap;
using heuristic::StochasticSwapOptions;

long long certified_minimum(const Circuit& c, const arch::CouplingMap& cm) {
  std::vector<Gate> cnots;
  for (const auto& g : c) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  std::vector<std::size_t> pts;
  for (std::size_t k = 1; k < cnots.size(); ++k) pts.push_back(k);
  exact::CostModel costs;
  costs.swap_cost = exact::swap_gate_cost(cm);
  const auto r = exact::minimal_cost_reference(cnots, c.num_qubits(), cm, pts, costs);
  EXPECT_TRUE(r.feasible);
  return r.cost_f;
}

void expect_valid_mapping(const Circuit& original, const exact::MappingResult& res,
                          const arch::CouplingMap& cm) {
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm));
  EXPECT_TRUE(res.verified) << res.verify_message;
  if (cm.num_physical() <= 8) {
    const auto eq = sim::check_mapped_circuit(original, res.mapped, res.initial_layout,
                                              res.final_layout);
    EXPECT_TRUE(eq.equivalent) << eq.message;
  }
  EXPECT_EQ(res.cost_f,
            static_cast<long long>(res.mapped.size()) - static_cast<long long>(original.size()));
}

TEST(StochasticSwap, MapsTable1StyleCircuits) {
  const auto cm = arch::ibm_qx4();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Circuit c = bench::random_circuit(5, 8, 12, seed, "stoch");
    const auto res = map_stochastic_swap(c, cm);
    expect_valid_mapping(c, res, cm);
    EXPECT_GE(res.cost_f, certified_minimum(c, cm));
    EXPECT_EQ(res.engine_name, "qiskit-stochastic");
  }
}

TEST(StochasticSwap, DeterministicPerSeed) {
  const Circuit c = bench::random_circuit(5, 5, 15, 7, "det");
  StochasticSwapOptions opt;
  opt.seed = 123;
  const auto a = map_stochastic_swap(c, arch::ibm_qx4(), opt);
  const auto b = map_stochastic_swap(c, arch::ibm_qx4(), opt);
  EXPECT_EQ(a.mapped, b.mapped);
  EXPECT_EQ(a.cost_f, b.cost_f);
}

TEST(StochasticSwap, BestOfRunsProtocolNeverHurts) {
  // The paper ran Qiskit 5 times and kept the best.
  const Circuit c = bench::random_circuit(5, 6, 14, 21, "runs");
  StochasticSwapOptions one;
  one.seed = 9;
  one.runs = 1;
  StochasticSwapOptions five;
  five.seed = 9;
  five.runs = 5;
  const auto r1 = map_stochastic_swap(c, arch::ibm_qx4(), one);
  const auto r5 = map_stochastic_swap(c, arch::ibm_qx4(), five);
  EXPECT_LE(r5.mapped.size(), r1.mapped.size());
  EXPECT_EQ(r5.instances_solved, 5);
}

TEST(StochasticSwap, WorksOnLargerArchitectures) {
  const auto cm = arch::ibm_qx5();
  const Circuit c = bench::random_circuit(10, 10, 25, 3, "qx5");
  const auto res = map_stochastic_swap(c, cm);
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm));
  EXPECT_TRUE(res.verified) << res.verify_message;
}

TEST(StochasticSwap, Validation) {
  Circuit big(6);
  big.cnot(0, 5);
  EXPECT_THROW(map_stochastic_swap(big, arch::ibm_qx4(), {}), std::invalid_argument);
  // Raw swap pseudo-gates route directly (self-expanded by the mapper).
  Circuit has_swap(2);
  has_swap.swap(0, 1);
  const auto swap_res = map_stochastic_swap(has_swap, arch::ibm_qx4(), {});
  EXPECT_EQ(swap_res.mapped.counts().swap, 0);
  EXPECT_TRUE(exact::satisfies_coupling(swap_res.mapped, arch::ibm_qx4()));
  Circuit fine(2);
  fine.cnot(0, 1);
  StochasticSwapOptions bad;
  bad.trials = 0;
  EXPECT_THROW(map_stochastic_swap(fine, arch::ibm_qx4(), bad), std::invalid_argument);
  EXPECT_THROW(map_stochastic_swap(fine, arch::CouplingMap(3, {{0, 1}}), {}),
               std::invalid_argument);
}

TEST(AStar, MapsTable1StyleCircuits) {
  const auto cm = arch::ibm_qx4();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Circuit c = bench::random_circuit(5, 8, 12, seed, "astar");
    const auto res = map_astar(c, cm);
    expect_valid_mapping(c, res, cm);
    EXPECT_GE(res.cost_f, certified_minimum(c, cm));
    EXPECT_EQ(res.engine_name, "astar");
  }
}

TEST(AStar, DeterministicAlways) {
  const Circuit c = bench::random_circuit(5, 5, 15, 7, "det");
  const auto a = map_astar(c, arch::ibm_qx4());
  const auto b = map_astar(c, arch::ibm_qx4());
  EXPECT_EQ(a.mapped, b.mapped);
}

TEST(AStar, HandlesAlreadyMappableCircuit) {
  Circuit c(2, "simple");
  c.cnot(1, 0);  // directly on a QX4 edge under the trivial layout
  const auto res = map_astar(c, arch::ibm_qx4());
  EXPECT_EQ(res.swaps_inserted, 0);
  EXPECT_EQ(res.cost_f, 0);
}

TEST(AStar, WorksOnTokyo) {
  const auto cm = arch::ibm_tokyo();
  const Circuit c = bench::random_circuit(12, 5, 20, 11, "tokyo");
  const auto res = map_astar(c, cm);
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm));
  EXPECT_TRUE(res.verified) << res.verify_message;
  // Bidirected couplings: no H repair ever needed.
  EXPECT_EQ(res.cnots_reversed, 0);
}

TEST(AStar, SearchBudgetRespected) {
  const Circuit c = bench::random_circuit(10, 0, 12, 2, "budget");
  AStarOptions opt;
  opt.max_expansions = 1;  // absurdly small: must fail cleanly on QX5
  EXPECT_THROW(map_astar(c, arch::ibm_qx5(), opt), std::invalid_argument);
}

TEST(LayerWeight, MapsTable1StyleCircuits) {
  const auto cm = arch::ibm_qx4();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Circuit c = bench::random_circuit(5, 8, 12, seed, "lw");
    const auto res = heuristic::map_layer_weight(c, cm);
    expect_valid_mapping(c, res, cm);
    EXPECT_GE(res.cost_f, certified_minimum(c, cm));
    EXPECT_EQ(res.engine_name, "layer-weight");
    EXPECT_EQ(res.objective, "gate_count");
    EXPECT_GT(res.objective_cost, 0);
  }
}

TEST(LayerWeight, DeterministicPerSeed) {
  const Circuit c = bench::random_circuit(5, 5, 15, 7, "lw-det");
  heuristic::LayerWeightOptions opt;
  opt.seed = 99;
  const auto a = heuristic::map_layer_weight(c, arch::ibm_qx4(), opt);
  const auto b = heuristic::map_layer_weight(c, arch::ibm_qx4(), opt);
  EXPECT_EQ(a.mapped, b.mapped);
  EXPECT_EQ(a.cost_f, b.cost_f);
}

TEST(LayerWeight, MoreIterationsNeverHurt) {
  // Profile 0 (the deterministic decay weights) is always tried first, and
  // the best result over all profiles is kept — so extra iterations can
  // only tie or improve.
  const Circuit c = bench::random_circuit(5, 6, 14, 21, "lw-iters");
  heuristic::LayerWeightOptions one;
  one.iterations = 1;
  heuristic::LayerWeightOptions eight;
  eight.iterations = 8;
  const auto r1 = heuristic::map_layer_weight(c, arch::ibm_qx4(), one);
  const auto r8 = heuristic::map_layer_weight(c, arch::ibm_qx4(), eight);
  EXPECT_LE(r8.objective_cost, r1.objective_cost);
  EXPECT_EQ(r8.instances_solved, 8);
}

TEST(LayerWeight, ErrorWeightedObjectiveSurfacesInTheResult) {
  const Circuit c = bench::random_circuit(4, 4, 8, 5, "lw-ew");
  heuristic::LayerWeightOptions opt;
  opt.costs.objective = exact::CostObjective::ErrorWeighted;
  const auto res = heuristic::map_layer_weight(c, arch::ibm_qx4(), opt);
  expect_valid_mapping(c, res, arch::ibm_qx4());
  EXPECT_EQ(res.objective, "error_weighted");
}

TEST(LayerWeight, WorksOnLargeBidirectedArchitectures) {
  const auto cm = arch::ibm_tokyo();
  const Circuit c = bench::random_circuit(16, 5, 30, 11, "lw-tokyo");
  const auto res = heuristic::map_layer_weight(c, cm);
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm));
  EXPECT_TRUE(res.verified) << res.verify_message;
  EXPECT_EQ(res.cnots_reversed, 0);  // bidirected: no H repair
}

TEST(LayerWeight, Validation) {
  Circuit big(6);
  big.cnot(0, 5);
  EXPECT_THROW(heuristic::map_layer_weight(big, arch::ibm_qx4(), {}), std::invalid_argument);
  Circuit fine(2);
  fine.cnot(0, 1);
  heuristic::LayerWeightOptions bad;
  bad.iterations = 0;
  EXPECT_THROW(heuristic::map_layer_weight(fine, arch::ibm_qx4(), bad),
               std::invalid_argument);
  heuristic::LayerWeightOptions bad_window;
  bad_window.lookahead_layers = 0;
  EXPECT_THROW(heuristic::map_layer_weight(fine, arch::ibm_qx4(), bad_window),
               std::invalid_argument);
  EXPECT_THROW(heuristic::map_layer_weight(fine, arch::CouplingMap(3, {{0, 1}}), {}),
               std::invalid_argument);
}

TEST(Heuristics, ExactBeatsOrTiesHeuristicsEverywhere) {
  // The paper's central comparison, in miniature.
  const auto cm = arch::ibm_qx4();
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    const Circuit c = bench::random_circuit(4, 4, 8, seed, "cmp");
    const long long minimum = certified_minimum(c, cm);
    EXPECT_LE(minimum, map_stochastic_swap(c, cm).cost_f);
    EXPECT_LE(minimum, map_astar(c, cm).cost_f);
  }
}

}  // namespace
}  // namespace qxmap
