#include "api/qxmap.hpp"

#include <gtest/gtest.h>

#include "bench_circuits/table1_suite.hpp"
#include "exact/swap_synthesis.hpp"

namespace qxmap {
namespace {

TEST(Api, DefaultIsExactMapping) {
  const Circuit c = bench::paper_example_circuit();
  MapOptions opt;
  opt.exact.budget = std::chrono::milliseconds(30000);
  const auto res = map(c, arch::ibm_qx4(), opt);
  EXPECT_EQ(res.status, reason::Status::Optimal);
  EXPECT_EQ(res.cost_f, 4);
}

TEST(Api, StochasticMethodDispatch) {
  const Circuit c = bench::paper_example_circuit();
  MapOptions opt;
  opt.method = Method::StochasticSwap;
  const auto res = map(c, arch::ibm_qx4(), opt);
  EXPECT_EQ(res.engine_name, "qiskit-stochastic");
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::ibm_qx4()));
}

TEST(Api, AStarMethodDispatch) {
  const Circuit c = bench::paper_example_circuit();
  MapOptions opt;
  opt.method = Method::AStar;
  const auto res = map(c, arch::ibm_qx4(), opt);
  EXPECT_EQ(res.engine_name, "astar");
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::ibm_qx4()));
}

TEST(Api, SabreAndLayerWeightMethodDispatch) {
  const Circuit c = bench::paper_example_circuit();
  MapOptions sabre;
  sabre.method = Method::Sabre;
  EXPECT_EQ(map(c, arch::ibm_qx4(), sabre).engine_name, "sabre");
  MapOptions lw;
  lw.method = Method::LayerWeight;
  const auto res = map(c, arch::ibm_qx4(), lw);
  EXPECT_EQ(res.engine_name, "layer-weight");
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::ibm_qx4()));
  EXPECT_TRUE(res.verified) << res.verify_message;
}

TEST(Api, QasmInQasmOut) {
  // The facade exposes the QASM front-end directly.
  const Circuit c = qasm::parse(R"(
    OPENQASM 2.0;
    qreg q[3];
    h q[0];
    cx q[0], q[1];
    cx q[1], q[2];
    cx q[0], q[2];
  )");
  MapOptions opt;
  opt.exact.budget = std::chrono::milliseconds(30000);
  const auto res = map(c, arch::by_name("qx4"), opt);
  ASSERT_EQ(res.status, reason::Status::Optimal);
  const std::string text = qasm::write(res.mapped);
  const Circuit reparsed = qasm::parse(text);
  EXPECT_EQ(reparsed.size(), res.mapped.size());
}

TEST(Api, VersionIsSemver) {
  const std::string v = version();
  EXPECT_EQ(std::count(v.begin(), v.end(), '.'), 2);
}

}  // namespace
}  // namespace qxmap
