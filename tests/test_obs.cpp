/// Tests for the observability layer (obs/trace.hpp, obs/metrics.hpp):
/// span nesting/ordering, attribute round-trip through the Chrome-trace
/// JSON export, the disabled-mode zero-span guarantee, a multi-thread
/// hammer over the lock-free per-thread buffers (run under TSan in CI),
/// and the metrics registry (counters, gauges, log-scale histograms,
/// Prometheus/JSON exposition, type-mismatch rejection).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qxmap::obs {
namespace {

/// Saves the recorder's enabled flag, clears the buffers, and restores the
/// flag on scope exit. Every trace test runs inside one of these so the
/// suite behaves identically whether CI sets QXMAP_TRACE=1 or not.
class ScopedTrace {
 public:
  explicit ScopedTrace(bool enable) : saved_(TraceRecorder::enabled()) {
    TraceRecorder::set_enabled(false);  // quiesce while clearing
    TraceRecorder::instance().clear();
    TraceRecorder::set_enabled(enable);
  }
  ~ScopedTrace() {
    TraceRecorder::set_enabled(saved_);
    TraceRecorder::instance().clear();
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  bool saved_;
};

TEST(ObsTrace, DisabledModeRecordsNothing) {
  ScopedTrace guard(false);
  {
    Span s("should.not.appear", "test");
    EXPECT_FALSE(s.active());
    s.attr("key", "value");  // must be a no-op, not a crash
    Span::instant("also.not.appear", "test", {{"k", "v"}});
  }
  EXPECT_EQ(TraceRecorder::instance().event_count(), 0u);
  EXPECT_TRUE(TraceRecorder::instance().snapshot().empty());
}

TEST(ObsTrace, SpanNestingAndOrdering) {
  ScopedTrace guard(true);
  {
    Span outer("outer", "test");
    EXPECT_TRUE(outer.active());
    {
      Span inner("inner", "test");
      { Span leaf("leaf", "test"); }
    }
    { Span sibling("sibling", "test"); }
  }
  const auto events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 4u);

  // Snapshot is sorted by start time: outer began first, then inner, leaf,
  // sibling (children close before parents, but ts is the *start*).
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "leaf");
  EXPECT_EQ(events[3].name, "sibling");

  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].depth, 2u);
  EXPECT_EQ(events[3].depth, 1u);

  // All on the same thread.
  for (const auto& e : events) EXPECT_EQ(e.tid, events[0].tid);

  // Containment: each child lies inside its parent's [ts, ts + dur).
  const auto inside = [](const TraceEvent& child, const TraceEvent& parent) {
    return child.ts_ns >= parent.ts_ns &&
           child.ts_ns + child.dur_ns <= parent.ts_ns + parent.dur_ns;
  };
  EXPECT_TRUE(inside(events[1], events[0]));
  EXPECT_TRUE(inside(events[2], events[1]));
  EXPECT_TRUE(inside(events[3], events[0]));
}

TEST(ObsTrace, InstantEventsAndAttributes) {
  ScopedTrace guard(true);
  {
    Span s("work", "test");
    s.attr("str", std::string_view("hello"));
    s.attr("num", static_cast<long long>(-42));
    s.attr("unum", static_cast<unsigned long long>(7));
    s.attr("flag", true);
    s.attr("ratio", 0.5);
    Span::instant("milestone", "test", {{"bound", "12"}});
  }
  const auto events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Instant started after the span, so it sorts second.
  const TraceEvent& span = events[0].phase == 'X' ? events[0] : events[1];
  const TraceEvent& inst = events[0].phase == 'i' ? events[0] : events[1];
  EXPECT_EQ(span.name, "work");
  EXPECT_EQ(inst.name, "milestone");
  EXPECT_EQ(inst.dur_ns, 0u);

  ASSERT_EQ(span.attrs.size(), 5u);
  EXPECT_EQ(span.attrs[0].first, "str");
  EXPECT_EQ(span.attrs[0].second, "hello");
  EXPECT_EQ(span.attrs[1].second, "-42");
  EXPECT_EQ(span.attrs[2].second, "7");
  EXPECT_EQ(span.attrs[3].second, "true");
  ASSERT_EQ(inst.attrs.size(), 1u);
  EXPECT_EQ(inst.attrs[0].first, "bound");
  EXPECT_EQ(inst.attrs[0].second, "12");
}

TEST(ObsTrace, AttributeRoundTripChromeJson) {
  ScopedTrace guard(true);
  {
    Span s("json.span", "cat1");
    s.attr("plain", "value");
    s.attr("quoted", "say \"hi\"\n\ttab\\slash");
  }
  const std::string json = TraceRecorder::instance().chrome_json();

  // Structurally a Chrome trace: one object with a traceEvents array.
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"json.span\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cat1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);

  // Attributes land in args with JSON escaping applied.
  EXPECT_NE(json.find("\"plain\":\"value\""), std::string::npos);
  EXPECT_NE(json.find("\"quoted\":\"say \\\"hi\\\"\\n\\ttab\\\\slash\""), std::string::npos);
}

TEST(ObsTrace, TreeDumpShowsNestingByIndentation) {
  ScopedTrace guard(true);
  {
    Span outer("parent.op", "test");
    Span inner("child.op", "test");
  }
  const std::string tree = TraceRecorder::instance().tree();
  const auto parent_at = tree.find("parent.op");
  const auto child_at = tree.find("  child.op");
  EXPECT_NE(parent_at, std::string::npos);
  EXPECT_NE(child_at, std::string::npos);
  EXPECT_LT(parent_at, child_at);
}

TEST(ObsTrace, ClearResetsEventsAndKeepsRecording) {
  ScopedTrace guard(true);
  { Span s("before.clear", "test"); }
  EXPECT_EQ(TraceRecorder::instance().event_count(), 1u);
  TraceRecorder::instance().clear();
  EXPECT_EQ(TraceRecorder::instance().event_count(), 0u);
  { Span s("after.clear", "test"); }
  const auto events = TraceRecorder::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "after.clear");
}

TEST(ObsTrace, EightThreadHammer) {
  ScopedTrace guard(true);
  constexpr int kThreads = 8;
  // Enough spans per thread to roll each thread through several chunks.
  constexpr int kSpansPerThread = 1500;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span s("hammer", "test");
        s.attr("thread", static_cast<long long>(t));
        s.attr("i", static_cast<long long>(i));
        if (i % 100 == 0) Span::instant("hammer.tick", "test");
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto events = TraceRecorder::instance().snapshot();
  const std::size_t expected =
      static_cast<std::size_t>(kThreads) * (kSpansPerThread + kSpansPerThread / 100);
  EXPECT_EQ(events.size(), expected);

  // Start times are non-decreasing per thread (each thread's spans are
  // sequential) and every event carries a stable thread id.
  std::vector<std::uint64_t> last_ts(64, 0);
  std::vector<int> per_tid(64, 0);
  for (const auto& e : events) {
    ASSERT_LT(e.tid, 64u);
    EXPECT_GE(e.ts_ns, last_ts[e.tid]);
    last_ts[e.tid] = e.ts_ns;
    ++per_tid[e.tid];
  }
  int active_tids = 0;
  for (const int c : per_tid) {
    if (c > 0) ++active_tids;
  }
  EXPECT_GE(active_tids, kThreads);  // main thread may or may not appear
}

TEST(ObsTrace, EnableDisableRace) {
  // Flipping the flag while spans are being created must be safe (the flag
  // is a relaxed atomic; a span samples it once at construction).
  ScopedTrace guard(true);
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    for (int i = 0; i < 200; ++i) {
      TraceRecorder::set_enabled(i % 2 == 0);
    }
    TraceRecorder::set_enabled(true);
    stop.store(true);
  });
  while (!stop.load()) {
    Span s("flicker", "test");
    s.attr("k", "v");
  }
  flipper.join();
  // No crash and a consistent snapshot is the assertion.
  const auto events = TraceRecorder::instance().snapshot();
  for (const auto& e : events) EXPECT_EQ(e.name, "flicker");
}

TEST(ObsMetrics, CounterGaugeBasics) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("qxmap_test_counter_total", "test counter");
  const auto base = c.value();
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), base + 5);
  // Same name returns the same object.
  EXPECT_EQ(&reg.counter("qxmap_test_counter_total", "ignored"), &c);

  Gauge& g = reg.gauge("qxmap_test_gauge", "test gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.set_max(5);
  EXPECT_EQ(g.value(), 7);  // lower value does not regress the max
  g.set_max(19);
  EXPECT_EQ(g.value(), 19);
}

TEST(ObsMetrics, HistogramLogScaleBuckets) {
  auto& reg = MetricsRegistry::instance();
  Histogram& h = reg.histogram("qxmap_test_histogram", "test histogram");
  const auto base_count = h.count();
  const auto base_sum = h.sum();

  // Bucket upper bounds are powers of two: observe(v) lands in the first
  // bucket with bound >= v.
  EXPECT_EQ(Histogram::bucket_bound(0), 1u);
  EXPECT_EQ(Histogram::bucket_bound(1), 2u);
  EXPECT_EQ(Histogram::bucket_bound(10), 1024u);

  h.observe(0);
  h.observe(1);     // both land in bucket 0 (le 1)
  h.observe(2);     // bucket 1 (le 2)
  h.observe(3);     // bucket 2 (le 4)
  h.observe(1024);  // bucket 10 (le 1024)
  h.observe(1025);  // bucket 11 (le 2048)

  EXPECT_EQ(h.count(), base_count + 6);
  EXPECT_EQ(h.sum(), base_sum + 0 + 1 + 2 + 3 + 1024 + 1025);
  EXPECT_GE(h.bucket_count(0), 2u);
  EXPECT_GE(h.bucket_count(1), 1u);
  EXPECT_GE(h.bucket_count(2), 1u);
  EXPECT_GE(h.bucket_count(10), 1u);
  EXPECT_GE(h.bucket_count(11), 1u);
}

TEST(ObsMetrics, TypeMismatchAndBadNamesThrow) {
  auto& reg = MetricsRegistry::instance();
  (void)reg.counter("qxmap_test_kind_total", "a counter");
  EXPECT_THROW((void)reg.gauge("qxmap_test_kind_total", "same name, wrong kind"),
               std::logic_error);
  EXPECT_THROW((void)reg.histogram("qxmap_test_kind_total", "same name, wrong kind"),
               std::logic_error);
  EXPECT_THROW((void)reg.counter("0starts_with_digit", "bad"), std::logic_error);
  EXPECT_THROW((void)reg.counter("has space", "bad"), std::logic_error);
  EXPECT_THROW((void)reg.counter("", "bad"), std::logic_error);
}

TEST(ObsMetrics, PrometheusExposition) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("qxmap_test_prom_total", "prom help text");
  c.inc(3);
  Gauge& g = reg.gauge("qxmap_test_prom_gauge", "gauge help");
  g.set(11);
  Histogram& h = reg.histogram("qxmap_test_prom_hist", "hist help");
  h.observe(5);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP qxmap_test_prom_total prom help text"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qxmap_test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("qxmap_test_prom_total "), std::string::npos);
  EXPECT_NE(text.find("# TYPE qxmap_test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("qxmap_test_prom_gauge 11"), std::string::npos);
  EXPECT_NE(text.find("# TYPE qxmap_test_prom_hist histogram"), std::string::npos);
  // 5 lands in the le=8 bucket; the +Inf bucket and sum/count are mandatory.
  EXPECT_NE(text.find("qxmap_test_prom_hist_bucket{le=\"8\"}"), std::string::npos);
  EXPECT_NE(text.find("qxmap_test_prom_hist_bucket{le=\"+Inf\"}"), std::string::npos);
  EXPECT_NE(text.find("qxmap_test_prom_hist_sum"), std::string::npos);
  EXPECT_NE(text.find("qxmap_test_prom_hist_count"), std::string::npos);
}

TEST(ObsMetrics, JsonSnapshot) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("qxmap_test_json_total", "json help");
  c.inc(2);
  Histogram& h = reg.histogram("qxmap_test_json_hist", "json histogram");
  h.observe(3);
  const std::string json = reg.json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"qxmap_test_json_total\": "), std::string::npos);
  // Histograms serialise as an object with cumulative buckets + +Inf.
  EXPECT_NE(json.find("\"qxmap_test_json_hist\": {\"count\": "), std::string::npos);
  EXPECT_NE(json.find("\"+Inf\": "), std::string::npos);
}

TEST(ObsMetrics, ConcurrentIncrements) {
  auto& reg = MetricsRegistry::instance();
  Counter& c = reg.counter("qxmap_test_mt_total", "concurrent counter");
  Histogram& h = reg.histogram("qxmap_test_mt_hist", "concurrent histogram");
  const auto base = c.value();
  const auto base_count = h.count();

  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        h.observe(static_cast<std::uint64_t>(t * kIters + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), base + static_cast<long long>(kThreads) * kIters);
  EXPECT_EQ(h.count(), base_count + static_cast<std::uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace qxmap::obs
