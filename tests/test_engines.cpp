#include "reason/engine.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "reason/cdcl_engine.hpp"

namespace qxmap {
namespace {

using reason::EngineKind;
using reason::make_engine;
using reason::Status;

constexpr auto kBudget = std::chrono::milliseconds(10000);

/// Engine kinds genuinely distinct in this build: without Z3 support,
/// EngineKind::Z3 degrades to CDCL, so running it would duplicate coverage.
std::vector<EngineKind> distinct_engine_kinds() {
  if (reason::z3_available()) return {EngineKind::Z3, EngineKind::Cdcl};
  return {EngineKind::Cdcl};
}

class EngineTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineTest, TrivialSat) {
  auto e = make_engine(GetParam());
  const int v = e->new_bool();
  e->add_clause({v + 1});
  const auto out = e->minimize(kBudget);
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 0);
  EXPECT_TRUE(e->value(v));
}

TEST_P(EngineTest, TrivialUnsat) {
  auto e = make_engine(GetParam());
  const int v = e->new_bool();
  e->add_clause({v + 1});
  e->add_clause({-(v + 1)});
  EXPECT_EQ(e->minimize(kBudget).status, Status::Unsat);
}

TEST_P(EngineTest, PrefersCheapAssignment) {
  auto e = make_engine(GetParam());
  const int a = e->new_bool();
  const int b = e->new_bool();
  e->add_clause({a + 1, b + 1});  // at least one
  e->add_cost(a, 10);
  e->add_cost(b, 3);
  const auto out = e->minimize(kBudget);
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_FALSE(e->value(a));
  EXPECT_TRUE(e->value(b));
}

TEST_P(EngineTest, ExactlyOneChoosesMinimumWeight) {
  auto e = make_engine(GetParam());
  std::vector<int> vars;
  std::vector<int> lits;
  const long long weights[] = {7, 14, 4, 21, 28};
  for (int i = 0; i < 5; ++i) {
    vars.push_back(e->new_bool());
    lits.push_back(vars.back() + 1);
  }
  e->add_exactly_one(lits);
  for (int i = 0; i < 5; ++i) e->add_cost(vars[static_cast<std::size_t>(i)], weights[i]);
  const auto out = e->minimize(kBudget);
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_TRUE(e->value(vars[2]));  // weight 4
}

TEST_P(EngineTest, HelpersProduceConsistentCircuits) {
  auto e = make_engine(GetParam());
  const int a = e->new_bool();
  const int b = e->new_bool();
  const int t = e->make_and(a + 1, b + 1);
  e->add_clause({a + 1});
  e->add_clause({b + 1});
  ASSERT_EQ(e->minimize(kBudget).status, Status::Optimal);
  EXPECT_TRUE(e->value(t));
}

TEST_P(EngineTest, MakeOrAndEquality) {
  auto e = make_engine(GetParam());
  const int a = e->new_bool();
  const int b = e->new_bool();
  const int o = e->make_or({a + 1, b + 1});
  e->add_equal_lits(a + 1, -(b + 1));  // a = !b
  e->add_clause({-(a + 1)});           // a false -> b true -> or true
  ASSERT_EQ(e->minimize(kBudget).status, Status::Optimal);
  EXPECT_TRUE(e->value(b));
  EXPECT_TRUE(e->value(o));
}

/// Brute-force reference for small weighted MaxSAT instances.
struct BruteInstance {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;           // DIMACS-like literals
  std::vector<std::pair<int, long long>> costs;    // (var, weight)
};

long long brute_min_cost(const BruteInstance& inst) {
  long long best = std::numeric_limits<long long>::max();
  for (std::uint32_t mask = 0; mask < (1u << inst.num_vars); ++mask) {
    bool ok = true;
    for (const auto& cl : inst.clauses) {
      bool any = false;
      for (const int l : cl) {
        const int var = std::abs(l) - 1;
        const bool val = ((mask >> var) & 1u) != 0;
        if (val == (l > 0)) {
          any = true;
          break;
        }
      }
      if (!any) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    long long c = 0;
    for (const auto& [var, w] : inst.costs) {
      if ((mask >> var) & 1u) c += w;
    }
    best = std::min(best, c);
  }
  return best;
}

class EngineRandomOptimization
    : public ::testing::TestWithParam<std::tuple<EngineKind, std::uint64_t>> {};

TEST_P(EngineRandomOptimization, MatchesBruteForceMinimum) {
  const auto [kind, seed] = GetParam();
  Rng rng(seed);
  BruteInstance inst;
  inst.num_vars = 10;
  // Random satisfiable-ish 2/3-SAT with random weights (the paper's Eq. 5
  // uses weights 4 and multiples of 7; draw from that set).
  const long long weight_pool[] = {4, 7, 14, 21};
  for (int c = 0; c < 18; ++c) {
    std::vector<int> cl;
    const int len = 2 + static_cast<int>(rng.next_below(2));
    for (int k = 0; k < len; ++k) {
      const int var = static_cast<int>(rng.next_below(10)) + 1;
      cl.push_back(rng.next_bool(0.5) ? var : -var);
    }
    inst.clauses.push_back(std::move(cl));
  }
  for (int v = 0; v < 10; ++v) {
    if (rng.next_bool(0.7)) {
      inst.costs.emplace_back(v, weight_pool[rng.next_below(4)]);
    }
  }

  const long long expected = brute_min_cost(inst);

  auto e = make_engine(kind);
  for (int v = 0; v < inst.num_vars; ++v) e->new_bool();
  for (const auto& cl : inst.clauses) e->add_clause(cl);
  for (const auto& [var, w] : inst.costs) e->add_cost(var, w);
  const auto out = e->minimize(kBudget);

  if (expected == std::numeric_limits<long long>::max()) {
    EXPECT_EQ(out.status, Status::Unsat);
    return;
  }
  ASSERT_EQ(out.status, Status::Optimal);
  // Recompute the model cost independently of the engine's report.
  long long model_cost = 0;
  for (const auto& [var, w] : inst.costs) {
    if (e->value(var)) model_cost += w;
  }
  EXPECT_EQ(model_cost, expected);
  // The model must satisfy all clauses.
  for (const auto& cl : inst.clauses) {
    bool any = false;
    for (const int l : cl) {
      if (e->value(std::abs(l) - 1) == (l > 0)) any = true;
    }
    EXPECT_TRUE(any);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothEngines, EngineRandomOptimization,
    ::testing::Combine(::testing::ValuesIn(distinct_engine_kinds()),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u)));

INSTANTIATE_TEST_SUITE_P(BothEngines, EngineTest,
                         ::testing::ValuesIn(distinct_engine_kinds()));

TEST(EngineFactory, Names) {
  // Without Z3 support compiled in, make_engine(Z3) degrades to CDCL.
  const std::string z3_name = reason::z3_available() ? "z3" : "cdcl";
  EXPECT_EQ(make_engine(EngineKind::Z3)->name(), z3_name);
  EXPECT_EQ(make_engine(EngineKind::Cdcl)->name(), "cdcl");
  EXPECT_EQ(reason::to_string(EngineKind::Z3), "z3");
  EXPECT_EQ(reason::to_string(EngineKind::Cdcl), "cdcl");
}

TEST(CdclBinarySearch, MatchesDescendingLinearOnRandomInstances) {
  // Sec. 3.3 sketches both schemes; they must agree on the optimum.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    BruteInstance inst;
    inst.num_vars = 9;
    for (int c = 0; c < 15; ++c) {
      std::vector<int> cl;
      for (int k = 0; k < 3; ++k) {
        const int var = static_cast<int>(rng.next_below(9)) + 1;
        cl.push_back(rng.next_bool(0.5) ? var : -var);
      }
      inst.clauses.push_back(std::move(cl));
    }
    for (int v = 0; v < 9; ++v) {
      if (rng.next_bool(0.6)) inst.costs.emplace_back(v, 3 + 2 * v);
    }

    const auto run = [&](reason::OptimizationMode mode) {
      reason::CdclEngine e;
      e.set_mode(mode);
      for (int v = 0; v < inst.num_vars; ++v) e.new_bool();
      for (const auto& cl : inst.clauses) e.add_clause(cl);
      for (const auto& [var, w] : inst.costs) e.add_cost(var, w);
      const auto out = e.minimize(kBudget);
      long long model_cost = -1;
      if (out.status == Status::Optimal) {
        model_cost = 0;
        for (const auto& [var, w] : inst.costs) {
          if (e.value(var)) model_cost += w;
        }
      }
      return std::make_pair(out.status, model_cost);
    };

    const auto linear = run(reason::OptimizationMode::DescendingLinear);
    const auto binary = run(reason::OptimizationMode::BinarySearch);
    EXPECT_EQ(linear.first, binary.first) << "seed " << seed;
    EXPECT_EQ(linear.second, binary.second) << "seed " << seed;
    if (linear.first == Status::Optimal) {
      EXPECT_EQ(linear.second, brute_min_cost(inst)) << "seed " << seed;
    }
  }
}

TEST(CdclBinarySearch, UnsatReported) {
  reason::CdclEngine e;
  e.set_mode(reason::OptimizationMode::BinarySearch);
  const int v = e.new_bool();
  e.add_clause({v + 1});
  e.add_clause({-(v + 1)});
  EXPECT_EQ(e.minimize(kBudget).status, Status::Unsat);
}

TEST(EngineValidation, CostWeightMustBePositive) {
  for (const auto kind : {EngineKind::Z3, EngineKind::Cdcl}) {
    auto e = make_engine(kind);
    const int v = e->new_bool();
    EXPECT_THROW(e->add_cost(v, 0), std::invalid_argument);
    EXPECT_THROW(e->add_cost(v, -3), std::invalid_argument);
  }
}

}  // namespace
}  // namespace qxmap
