// Parameterized user-defined gates whose bodies evaluate full expression
// trees (nested calls, sin/ln/exp/sqrt/cos/tan, unary minus, powers) at
// each call site.
OPENQASM 2.0;
include "qelib1.inc";
gate twist(t,p) a { rz(t/2) a; ry(sin(p)*pi) a; rz(-t/2) a; }
gate twirl(t) a,b { twist(t, t/4) a; cx a,b; twist(-t, ln(exp(t))) b; }
qreg q[2];
creg c[2];
twirl(pi/3) q[0], q[1];
rx(sqrt(2)^2) q[0];
u2(cos(0), tan(0)) q[1];
measure q -> c;
