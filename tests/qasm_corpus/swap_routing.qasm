// Raw `swap` pseudo-gates straight from the front-end: the mappers must
// route these directly (decomposing them internally), including a guarded
// swap whose guard has to ride along to every elementary gate.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg f[1];
h q[0];
swap q[0], q[2];
cx q[2], q[1];
measure q[1] -> f[0];
if (f == 1) swap q[1], q[3];
cx q[3], q[0];
swap q[2], q[3];
