// One-bit ripple-carry adder stage built from the classic majority/unmaj
// user-defined gates (cf. the OpenQASM 2.0 paper's adder example); `gate`
// bodies were rejected by the pre-1.1 front-end.
OPENQASM 2.0;
include "qelib1.inc";
gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }
gate unmaj a,b,c { ccx a,b,c; cx c,a; cx a,b; }
qreg cin[1];
qreg a[1];
qreg b[1];
qreg cout[1];
creg ans[2];
x a[0];
x b[0];
majority cin[0], b[0], a[0];
cx a[0], cout[0];
unmaj cin[0], b[0], a[0];
measure b[0] -> ans[0];
measure cout[0] -> ans[1];
