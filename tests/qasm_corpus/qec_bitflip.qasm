// 3-qubit bit-flip code with syndrome-conditioned corrections: combines a
// user-defined encoder gate, `if` statements on a 2-bit syndrome register,
// and broadcast measure.
OPENQASM 2.0;
include "qelib1.inc";
gate encode d0,d1,d2 { cx d0,d1; cx d0,d2; }
qreg d[3];
qreg s[2];
creg syn[2];
creg out[3];
encode d[0], d[1], d[2];
x d[0];
cx d[0], s[0];
cx d[1], s[0];
cx d[1], s[1];
cx d[2], s[1];
measure s[0] -> syn[0];
measure s[1] -> syn[1];
if (syn == 1) x d[0];
if (syn == 3) x d[1];
if (syn == 2) x d[2];
measure d -> out;
