// 4-qubit quantum Fourier transform: the controlled-phase gate cu1 comes
// from the bundled qelib1.inc macro library (previously an unknown gate),
// with pi/2^k parameter expressions.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cu1(pi/2) q[1], q[0];
h q[1];
cu1(pi/4) q[2], q[0];
cu1(pi/2) q[2], q[1];
h q[2];
cu1(pi/2^3) q[3], q[0];
cu1(pi/4) q[3], q[1];
cu1(pi/2) q[3], q[2];
h q[3];
measure q -> c;
