// qelib1 macro gates (cz, cy, ch, rzz), whole-register broadcast and a raw
// swap across two registers.
OPENQASM 2.0;
include "qelib1.inc";
qreg a[2];
qreg b[2];
creg ca[2];
creg cb[2];
h a;
cz a[0], b[0];
cy a[1], b[1];
rzz(pi/4) a[0], a[1];
ch b[0], b[1];
swap a[1], b[0];
barrier a, b;
measure a -> ca;
measure b -> cb;
