#include "sim/statevector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qxmap {
namespace {

using sim::Statevector;

TEST(Statevector, InitialState) {
  const Statevector sv(3);
  EXPECT_EQ(sv.num_qubits(), 3);
  EXPECT_EQ(sv.dimension(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
  for (std::uint64_t i = 1; i < 8; ++i) EXPECT_NEAR(std::abs(sv.amplitude(i)), 0.0, 1e-12);
}

TEST(Statevector, BasisState) {
  const auto sv = Statevector::basis(3, 5);
  EXPECT_NEAR(std::abs(sv.amplitude(5)), 1.0, 1e-12);
  EXPECT_THROW(Statevector::basis(2, 4), std::out_of_range);
}

TEST(Statevector, XFlipsBit) {
  Statevector sv(2);
  sv.apply(Gate::single(OpKind::X, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, 1e-12);
}

TEST(Statevector, HCreatesUniform) {
  Statevector sv(1);
  sv.apply(Gate::single(OpKind::H, 0));
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 1 / std::sqrt(2.0), 1e-12);
  // H is an involution.
  sv.apply(Gate::single(OpKind::H, 0));
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
}

TEST(Statevector, CnotOnBasisStates) {
  for (std::uint64_t input = 0; input < 4; ++input) {
    Statevector sv = Statevector::basis(2, input);
    sv.apply(Gate::cnot(0, 1));  // control bit 0, target bit 1
    const std::uint64_t expected = (input & 1u) ? input ^ 2u : input;
    EXPECT_NEAR(std::abs(sv.amplitude(expected)), 1.0, 1e-12) << input;
  }
}

TEST(Statevector, SwapGate) {
  Statevector sv = Statevector::basis(2, 0b01);
  sv.apply(Gate::swap(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, 1e-12);
}

TEST(Statevector, BellState) {
  Statevector sv(2);
  sv.apply(Gate::single(OpKind::H, 0));
  sv.apply(Gate::cnot(0, 1));
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, 1e-12);
}

TEST(Statevector, TAndSdgPhases) {
  Statevector sv = Statevector::basis(1, 1);
  sv.apply(Gate::single(OpKind::T, 0));
  sv.apply(Gate::single(OpKind::T, 0));
  sv.apply(Gate::single(OpKind::Sdg, 0));
  // T^2 = S; S * Sdg = I.
  EXPECT_NEAR(sv.amplitude(1).real(), 1.0, 1e-12);
  EXPECT_NEAR(sv.amplitude(1).imag(), 0.0, 1e-12);
}

TEST(Statevector, RotationsMatchU) {
  // U2(phi, lambda) == Rz(phi) Ry(pi/2) Rz(lambda) up to global phase:
  // check on both basis states via overlap.
  Circuit a(1);
  a.append(Gate::single(OpKind::U2, 0, {0.3, 1.1}));
  Circuit b(1);
  b.append(Gate::single(OpKind::Rz, 0, {1.1}));
  b.append(Gate::single(OpKind::Ry, 0, {std::numbers::pi / 2}));
  b.append(Gate::single(OpKind::Rz, 0, {0.3}));
  for (std::uint64_t input = 0; input < 2; ++input) {
    Statevector sa = Statevector::basis(1, input);
    sa.apply_circuit(a);
    Statevector sb = Statevector::basis(1, input);
    sb.apply_circuit(b);
    EXPECT_NEAR(sa.overlap_magnitude(sb), 1.0, 1e-9);
  }
}

TEST(Statevector, NormPreserved) {
  Statevector sv(4);
  Circuit c(4);
  c.h(0);
  c.cnot(0, 2);
  c.t(2);
  c.cnot(2, 3);
  c.h(3);
  sv.apply_circuit(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, BarrierIsNoop) {
  Statevector sv(1);
  sv.apply(Gate::barrier());
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
}

TEST(Statevector, MeasureThrows) {
  Statevector sv(1);
  EXPECT_THROW(sv.apply(Gate::measure(0)), std::invalid_argument);
}

TEST(Statevector, RangeValidation) {
  EXPECT_THROW(Statevector(-1), std::invalid_argument);
  EXPECT_THROW(Statevector(25), std::invalid_argument);
  Statevector small(1);
  Circuit big(2);
  big.h(1);
  EXPECT_THROW(small.apply_circuit(big), std::invalid_argument);
}

}  // namespace
}  // namespace qxmap
