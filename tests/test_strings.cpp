#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, SplitDropsEmptyPieces) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",,", ','), (std::vector<std::string>{}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Strings, SplitWhitespace) {
  EXPECT_EQ(split_whitespace("  t3  a b\tc\n"), (std::vector<std::string>{"t3", "a", "b", "c"}));
  EXPECT_EQ(split_whitespace(""), (std::vector<std::string>{}));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("IBM QX4"), "ibm qx4");
  EXPECT_EQ(to_lower("already"), "already");
}

TEST(Strings, FormatFixed) {
  EXPECT_EQ(format_fixed(1.25, 2), "1.25");
  EXPECT_EQ(format_fixed(1.0, 0), "1");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

TEST(Strings, Padding) {
  EXPECT_EQ(pad_left("ab", 4), "  ab");
  EXPECT_EQ(pad_left("abcd", 2), "abcd");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_right("abcd", 2), "abcd");
}

}  // namespace
}  // namespace qxmap
