#include "sim/unitary.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

TEST(Unitary, IdentityByDefault) {
  const sim::Unitary u(2);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_NEAR(std::abs(u.get(r, c) - (r == c ? 1.0 : 0.0)), 0.0, 1e-12);
    }
  }
}

TEST(Unitary, CircuitUnitaryOfEmptyCircuitIsIdentity) {
  const auto u = sim::circuit_unitary(Circuit(2));
  EXPECT_NEAR(u.distance_up_to_phase(sim::Unitary(2)), 0.0, 1e-12);
}

TEST(Unitary, GlobalPhaseIsIgnored) {
  // Z = S * S; also Z = e^{i pi/2} * (Sdg * global...)? Use: X = H Z H and
  // HH = I to build phase-free comparisons; for a pure phase test compare
  // Rz(pi) (= diag(-i, i)) with Z (= diag(1, -1)): equal up to phase i.
  Circuit a(1);
  a.append(Gate::single(OpKind::Rz, 0, {std::numbers::pi}));
  Circuit b(1);
  b.z(0);
  EXPECT_TRUE(sim::same_unitary(a, b));
}

TEST(Unitary, DifferentOperatorsDetected) {
  Circuit a(1);
  a.x(0);
  Circuit b(1);
  b.z(0);
  EXPECT_FALSE(sim::same_unitary(a, b));
}

TEST(Unitary, QubitCountMismatchIsNotEqual) {
  EXPECT_FALSE(sim::same_unitary(Circuit(1), Circuit(2)));
}

TEST(Unitary, HZHEqualsX) {
  Circuit a(1);
  a.h(0);
  a.z(0);
  a.h(0);
  Circuit b(1);
  b.x(0);
  EXPECT_TRUE(sim::same_unitary(a, b));
}

TEST(Unitary, SwapEqualsThreeCnots) {
  Circuit a(2);
  a.swap(0, 1);
  Circuit b(2);
  b.cnot(0, 1);
  b.cnot(1, 0);
  b.cnot(0, 1);
  EXPECT_TRUE(sim::same_unitary(a, b));
}

TEST(Unitary, Fig3SwapDecomposition) {
  // SWAP == expanded 7-gate form (3 CX one direction + 4 H).
  Circuit a(2);
  a.swap(0, 1);
  EXPECT_TRUE(sim::same_unitary(a, a.with_swaps_expanded()));
}

TEST(Unitary, ReversedCnotViaHadamards) {
  // H⊗H CX(0,1) H⊗H == CX(1,0) — the 4-H direction switch of Fig. 3.
  Circuit a(2);
  a.h(0);
  a.h(1);
  a.cnot(0, 1);
  a.h(0);
  a.h(1);
  Circuit b(2);
  b.cnot(1, 0);
  EXPECT_TRUE(sim::same_unitary(a, b));
}

TEST(Unitary, TooManyQubitsRejected) {
  EXPECT_THROW(sim::circuit_unitary(Circuit(11)), std::invalid_argument);
  EXPECT_THROW(sim::Unitary(11), std::invalid_argument);
}

}  // namespace
}  // namespace qxmap
