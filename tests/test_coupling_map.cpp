#include "arch/coupling_map.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"

namespace qxmap {
namespace {

using arch::CouplingMap;

TEST(CouplingMap, ConstructionValidates) {
  EXPECT_NO_THROW(CouplingMap(3, {{0, 1}, {1, 2}}));
  EXPECT_THROW(CouplingMap(0, {}), std::invalid_argument);
  EXPECT_THROW(CouplingMap(2, {{0, 2}}), std::invalid_argument);
  EXPECT_THROW(CouplingMap(2, {{1, 1}}), std::invalid_argument);
}

TEST(CouplingMap, DuplicateEdgesDeduplicated) {
  const CouplingMap cm(2, {{0, 1}, {0, 1}});
  EXPECT_EQ(cm.edges().size(), 1u);
}

TEST(CouplingMap, DirectedQueries) {
  const auto cm = arch::ibm_qx4();
  EXPECT_TRUE(cm.allows(1, 0));
  EXPECT_FALSE(cm.allows(0, 1));
  EXPECT_TRUE(cm.coupled(0, 1));
  EXPECT_TRUE(cm.coupled(1, 0));
  EXPECT_FALSE(cm.coupled(0, 3));
}

TEST(CouplingMap, UndirectedEdgesSortedAndDeduped) {
  const CouplingMap cm(3, {{1, 0}, {0, 1}, {2, 1}});
  EXPECT_EQ(cm.undirected_edges(),
            (std::vector<std::pair<int, int>>{{0, 1}, {1, 2}}));
}

TEST(CouplingMap, Neighbours) {
  const auto cm = arch::ibm_qx4();
  EXPECT_EQ(cm.neighbours(2), (std::vector<int>{0, 1, 3, 4}));
  EXPECT_EQ(cm.neighbours(0), (std::vector<int>{1, 2}));
  EXPECT_THROW((void)cm.neighbours(5), std::out_of_range);
}

TEST(CouplingMap, Connectivity) {
  EXPECT_TRUE(arch::ibm_qx4().is_connected());
  const CouplingMap split(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(split.is_connected());
}

TEST(CouplingMap, SubsetConnectivityMatchesExample9) {
  // Example 9: all useful 4-subsets of QX4 must contain p3 (0-based qubit 2).
  const auto cm = arch::ibm_qx4();
  EXPECT_TRUE(cm.subset_connected({0, 1, 2, 3}));
  EXPECT_TRUE(cm.subset_connected({0, 1, 2, 4}));
  EXPECT_TRUE(cm.subset_connected({0, 2, 3, 4}));
  EXPECT_TRUE(cm.subset_connected({1, 2, 3, 4}));
  EXPECT_FALSE(cm.subset_connected({0, 1, 3, 4}));  // omits qubit 2
  EXPECT_TRUE(cm.subset_connected({}));
  EXPECT_TRUE(cm.subset_connected({3}));
}

TEST(CouplingMap, TriangleDetection) {
  EXPECT_TRUE(arch::ibm_qx4().has_triangle());   // p1 p2 p3 (0-based 0 1 2)
  EXPECT_FALSE(arch::linear(4).has_triangle());
  EXPECT_FALSE(arch::grid(2, 2).has_triangle());
}

TEST(CouplingMap, InducedSubmapRenumbers) {
  const auto cm = arch::ibm_qx4();
  const auto sub = cm.induced({2, 3, 4});  // qubits p3, p4, p5
  EXPECT_EQ(sub.num_physical(), 3);
  // Global edges among {2,3,4}: (3,2), (3,4), (4,2) -> local (1,0), (1,2), (2,0).
  EXPECT_TRUE(sub.allows(1, 0));
  EXPECT_TRUE(sub.allows(1, 2));
  EXPECT_TRUE(sub.allows(2, 0));
  EXPECT_EQ(sub.edges().size(), 3u);
}

TEST(CouplingMap, InducedValidation) {
  const auto cm = arch::ibm_qx4();
  EXPECT_THROW(cm.induced({0, 0}), std::invalid_argument);
  EXPECT_THROW(cm.induced({0, 9}), std::out_of_range);
}

TEST(CouplingMap, InducedOfAllQubitsKeepsEverything) {
  const auto cm = arch::ibm_qx4();
  const auto sub = cm.induced({0, 1, 2, 3, 4});
  EXPECT_EQ(sub.edges(), cm.edges());
}

TEST(CouplingMap, ErrorRatesValidation) {
  CouplingMap cm(2, {{0, 1}});
  arch::ErrorRates ok;
  ok.cnot[{0, 1}] = 0.02;
  EXPECT_NO_THROW(cm.set_error_rates(ok));
  EXPECT_TRUE(cm.has_error_rates());

  arch::ErrorRates bad_edge;
  bad_edge.cnot[{1, 0}] = 0.02;  // not an allowed direction
  EXPECT_THROW(cm.set_error_rates(bad_edge), std::invalid_argument);
  arch::ErrorRates bad_rate;
  bad_rate.cnot[{0, 1}] = 1.0;  // outside [0, 1)
  EXPECT_THROW(cm.set_error_rates(bad_rate), std::invalid_argument);
  arch::ErrorRates bad_len;
  bad_len.single_qubit = {0.001};  // needs one entry per qubit
  EXPECT_THROW(cm.set_error_rates(bad_len), std::invalid_argument);
}

TEST(CouplingMap, NoiseFingerprintSeparatesCalibrations) {
  // Structural fingerprint deliberately ignores calibration (it keys the
  // SwapCostTable cache); the noise fingerprint captures it.
  CouplingMap a(2, {{0, 1}});
  CouplingMap b(2, {{0, 1}});
  EXPECT_TRUE(a.noise_fingerprint().empty());
  arch::ErrorRates ra;
  ra.cnot[{0, 1}] = 0.02;
  a.set_error_rates(ra);
  arch::ErrorRates rb;
  rb.cnot[{0, 1}] = 0.03;
  b.set_error_rates(rb);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.noise_fingerprint(), b.noise_fingerprint());
  EXPECT_FALSE(a.noise_fingerprint().empty());
  // Mean helpers fall back when no calibration covers the quantity.
  EXPECT_DOUBLE_EQ(a.mean_cnot_error(0.9), 0.02);
  EXPECT_DOUBLE_EQ(a.mean_single_qubit_error(0.9), 0.9);
}

}  // namespace
}  // namespace qxmap
