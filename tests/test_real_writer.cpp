#include "real/real_writer.hpp"

#include <gtest/gtest.h>

#include "real/real_parser.hpp"
#include "sim/linear_reversible.hpp"

namespace qxmap {
namespace {

TEST(RealWriter, EmitsHeaderAndGates) {
  Circuit c(3, "demo");
  c.x(0);
  c.cnot(1, 2);
  c.swap(0, 2);
  const std::string text = real::write(c);
  EXPECT_NE(text.find(".numvars 3"), std::string::npos);
  EXPECT_NE(text.find("t1 x0"), std::string::npos);
  EXPECT_NE(text.find("t2 x1 x2"), std::string::npos);
  EXPECT_NE(text.find("f2 x0 x2"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(RealWriter, RoundTripPreservesLinearSemantics) {
  Circuit c(4, "rt");
  c.cnot(0, 1);
  c.cnot(2, 3);
  c.swap(1, 2);
  c.cnot(0, 3);
  const auto parsed = real::parse(real::write(c));
  // The parser decomposes f2 into CNOTs, so compare GF(2) semantics of the
  // X-free skeletons rather than gate lists.
  Circuit original_linear(4);
  for (const auto& g : c) {
    if (g.is_cnot() || g.is_swap()) original_linear.append(g);
  }
  EXPECT_EQ(sim::linear_map(original_linear), sim::linear_map(parsed.circuit.cnot_skeleton()));
}

TEST(RealWriter, BarriersAreSkipped) {
  Circuit c(2);
  c.cnot(0, 1);
  c.append(Gate::barrier());
  const std::string text = real::write(c);
  EXPECT_EQ(real::parse(text).circuit.size(), 1u);
}

TEST(RealWriter, UnsupportedGatesRejected) {
  Circuit h(1);
  h.h(0);
  EXPECT_THROW(real::write(h), std::invalid_argument);
  Circuit m(1);
  m.append(Gate::measure(0));
  EXPECT_THROW(real::write(m), std::invalid_argument);
}

}  // namespace
}  // namespace qxmap
