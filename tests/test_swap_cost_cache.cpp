/// SwapCostCache semantics: hit/miss accounting, fingerprint separation of
/// structurally distinct coupling maps, LRU eviction at capacity, handle
/// stability across eviction, and multi-threaded hammering of one cache.

#include "arch/swap_cost_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "api/qxmap.hpp"
#include "arch/architectures.hpp"
#include "common/permutation.hpp"

namespace qxmap {
namespace {

using arch::CouplingMap;
using arch::SwapCostCache;

TEST(Fingerprint, EncodesQubitCountAndDirectedEdges) {
  const CouplingMap a(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(a.fingerprint(), "m3:0>1;1>2");
  const CouplingMap no_edges(2, {});
  EXPECT_EQ(no_edges.fingerprint(), "m2:");
}

TEST(Fingerprint, NameDoesNotAffectIdentity) {
  const CouplingMap a(3, {{0, 1}, {1, 2}}, "alpha");
  const CouplingMap b(3, {{0, 1}, {1, 2}}, "beta");
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, DirectedAndBidirectedEdgesDoNotAlias) {
  const CouplingMap directed(2, {{0, 1}});
  const CouplingMap bidirected(2, {{0, 1}, {1, 0}});
  const CouplingMap reversed(2, {{1, 0}});
  EXPECT_NE(directed.fingerprint(), bidirected.fingerprint());
  EXPECT_NE(directed.fingerprint(), reversed.fingerprint());
  EXPECT_NE(reversed.fingerprint(), bidirected.fingerprint());
}

TEST(Fingerprint, QubitCountMattersBeyondEdges) {
  // Same edge list, different number of (isolated) qubits.
  const CouplingMap two(2, {{0, 1}});
  const CouplingMap three(3, {{0, 1}});
  EXPECT_NE(two.fingerprint(), three.fingerprint());
}

TEST(SwapCostCacheTest, MissThenHitSharesOneTable) {
  SwapCostCache cache(4);
  const auto cm = arch::ibm_qx4();
  const auto first = cache.table(cm);
  const auto second = cache.table(cm);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.table_entries(), 1u);
  const auto stats = cache.table_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  // The cached table is the real thing.
  EXPECT_EQ(first->swaps(Permutation(5)), 0);
  EXPECT_EQ(first->max_swaps(), arch::SwapCostTable(cm).max_swaps());
}

TEST(SwapCostCacheTest, StructurallyIdenticalMapsShareRegardlessOfName) {
  SwapCostCache cache(4);
  const CouplingMap a(3, {{0, 1}, {1, 2}}, "first");
  const CouplingMap b(3, {{0, 1}, {1, 2}}, "second");
  const auto ta = cache.table(a);
  const auto tb = cache.table(b);
  EXPECT_EQ(ta.get(), tb.get());
  EXPECT_EQ(cache.table_entries(), 1u);
}

TEST(SwapCostCacheTest, DirectedVsBidirectedGetDistinctEntries) {
  SwapCostCache cache(4);
  const CouplingMap directed(3, {{0, 1}, {1, 2}});
  const CouplingMap bidirected(3, {{0, 1}, {1, 0}, {1, 2}, {2, 1}});
  const auto td = cache.table(directed);
  const auto tb = cache.table(bidirected);
  EXPECT_NE(td.get(), tb.get());
  EXPECT_EQ(cache.table_entries(), 2u);
  // Distances differ too: cnot_cost(1, 0) pays the 4-H reversal only on the
  // directed variant.
  const auto dd = cache.distances(directed);
  const auto db = cache.distances(bidirected);
  EXPECT_EQ(dd->cnot_cost(1, 0), 4);
  EXPECT_EQ(db->cnot_cost(1, 0), 0);
}

TEST(SwapCostCacheTest, LruEvictionAtCapacity) {
  SwapCostCache cache(2);
  const auto a = arch::linear(3);
  const auto b = arch::ring(3);
  const auto c = arch::clique(3);

  const auto ta = cache.table(a);
  (void)cache.table(b);
  EXPECT_EQ(cache.table_entries(), 2u);

  (void)cache.table(a);  // touch a: b becomes least recently used
  (void)cache.table(c);  // inserts c, evicts b
  EXPECT_EQ(cache.table_entries(), 2u);
  EXPECT_EQ(cache.table_stats().evictions, 1u);

  // a survived (hit), b was evicted (miss again), and the handle returned
  // for a is still the original object.
  const auto before = cache.table_stats();
  EXPECT_EQ(cache.table(a).get(), ta.get());
  EXPECT_EQ(cache.table_stats().hits, before.hits + 1);
  (void)cache.table(b);
  EXPECT_EQ(cache.table_stats().misses, before.misses + 1);
}

TEST(SwapCostCacheTest, EvictedHandleStaysValid) {
  SwapCostCache cache(1);
  const auto a = arch::linear(3);
  const auto handle = cache.table(a);
  (void)cache.table(arch::ring(3));  // evicts a's entry
  EXPECT_EQ(cache.table_entries(), 1u);
  // The shared_ptr keeps the evicted table alive and usable.
  EXPECT_EQ(handle->swaps(Permutation(3)), 0);
  EXPECT_GT(handle->max_swaps(), 0);
}

TEST(SwapCostCacheTest, SetCapacityEvictsImmediately) {
  SwapCostCache cache(4);
  (void)cache.table(arch::linear(3));
  (void)cache.table(arch::ring(3));
  (void)cache.table(arch::clique(3));
  EXPECT_EQ(cache.table_entries(), 3u);
  cache.set_capacity(1);
  EXPECT_EQ(cache.table_entries(), 1u);
  EXPECT_EQ(cache.table_stats().evictions, 2u);
  // Capacity is clamped to at least one entry.
  cache.set_capacity(0);
  EXPECT_EQ(cache.capacity(), 1u);
}

TEST(SwapCostCacheTest, ClearDropsEntriesAndStats) {
  SwapCostCache cache(4);
  (void)cache.table(arch::ibm_qx4());
  (void)cache.distances(arch::ibm_qx4());
  cache.clear();
  EXPECT_EQ(cache.table_entries(), 0u);
  EXPECT_EQ(cache.distance_entries(), 0u);
  EXPECT_EQ(cache.table_stats().misses, 0u);
  EXPECT_EQ(cache.distance_stats().misses, 0u);
}

TEST(SwapCostCacheTest, OversizedArchitectureErrorIsNotCached) {
  SwapCostCache cache(4);
  const auto big = arch::ibm_qx5();  // 16 qubits: SwapCostTable must throw
  EXPECT_THROW((void)cache.table(big), std::invalid_argument);
  EXPECT_EQ(cache.table_entries(), 0u);
  // Distances are fine at any size and cache independently.
  EXPECT_EQ(cache.distances(big)->size(), 16);
  EXPECT_EQ(cache.distance_entries(), 1u);
}

TEST(SwapCostCacheTest, ManyThreadsHammerOneTable) {
  SwapCostCache cache(4);
  const auto cm = arch::ibm_qx4();
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;

  std::vector<std::shared_ptr<const arch::SwapCostTable>> seen(
      static_cast<std::size_t>(kThreads));
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      std::shared_ptr<const arch::SwapCostTable> last;
      for (int i = 0; i < kIterations; ++i) {
        last = cache.table(cm);
        (void)cache.distances(cm);
      }
      seen[static_cast<std::size_t>(t)] = last;
    });
  }
  for (auto& th : pool) th.join();

  // Every thread ended up with the same shared table.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)].get(), seen[0].get());
  }
  EXPECT_EQ(cache.table_entries(), 1u);
  const auto stats = cache.table_stats();
  // Simultaneous first misses may build duplicates (bounded by the thread
  // count), but every lookup is accounted for.
  EXPECT_GE(stats.misses, 1u);
  EXPECT_LE(stats.misses, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * static_cast<std::uint64_t>(kIterations));
}

TEST(SwapCostCacheTest, ConcurrentMapCallsShareTheProcessWideCache) {
  auto& cache = SwapCostCache::instance();
  cache.clear();

  Circuit c(3, "cache-hammer");
  c.cnot(0, 1);
  c.cnot(1, 2);
  c.cnot(0, 2);

  MapOptions options;
  options.exact.engine = reason::EngineKind::Cdcl;
  options.exact.use_subsets = true;
  options.exact.budget = std::chrono::milliseconds(20000);

  constexpr int kCallers = 4;
  std::vector<exact::MappingResult> results(kCallers);
  std::vector<std::thread> pool;
  pool.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    pool.emplace_back(
        [&, t] { results[static_cast<std::size_t>(t)] = map(c, arch::ibm_qx4(), options); });
  }
  for (auto& th : pool) th.join();

  for (int t = 1; t < kCallers; ++t) {
    EXPECT_EQ(results[static_cast<std::size_t>(t)].cost_f, results[0].cost_f);
    EXPECT_EQ(results[static_cast<std::size_t>(t)].mapped, results[0].mapped);
  }
  // The subset instances of all four concurrent calls fed one cache; the
  // distinct induced 3-subset shapes of QX4 are far fewer than the lookups.
  EXPECT_GE(cache.table_stats().hits, 1u);
  EXPECT_GT(cache.table_entries(), 0u);
}

}  // namespace
}  // namespace qxmap
