#include "sat/dimacs.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

using sat::Cnf;
using sat::Solver;
using sat::SolveResult;

TEST(Dimacs, ParseBasic) {
  const auto cnf = sat::parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(cnf.num_vars, 3);
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0], sat::pos(0));
  EXPECT_EQ(cnf.clauses[0][1], sat::neg(1));
}

TEST(Dimacs, ParseMultiLineClause) {
  const auto cnf = sat::parse_dimacs("p cnf 2 1\n1\n2 0\n");
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
}

TEST(Dimacs, ParseErrors) {
  EXPECT_THROW(sat::parse_dimacs("1 2 0\n"), std::invalid_argument);          // no header
  EXPECT_THROW(sat::parse_dimacs("p cnf 1 1\n2 0\n"), std::invalid_argument); // var range
  EXPECT_THROW(sat::parse_dimacs("p cnf 1 2\n1 0\n"), std::invalid_argument); // count
  EXPECT_THROW(sat::parse_dimacs("p cnf 1 1\n1\n"), std::invalid_argument);   // unterminated
  EXPECT_THROW(sat::parse_dimacs("p dnf 1 1\n1 0\n"), std::invalid_argument); // format
}

TEST(Dimacs, RoundTrip) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.clauses = {{sat::pos(0), sat::neg(3)}, {sat::neg(1), sat::pos(2), sat::pos(3)}};
  const auto text = sat::to_dimacs(cnf);
  const auto back = sat::parse_dimacs(text);
  EXPECT_EQ(back.num_vars, cnf.num_vars);
  EXPECT_EQ(back.clauses, cnf.clauses);
}

TEST(Dimacs, LoadIntoSolverAndSolve) {
  const auto sat_cnf = sat::parse_dimacs("p cnf 2 2\n1 2 0\n-1 2 0\n");
  Solver s1;
  EXPECT_TRUE(sat::load_cnf(s1, sat_cnf));
  EXPECT_EQ(s1.solve(), SolveResult::Satisfiable);
  EXPECT_TRUE(s1.model_value(1));

  const auto unsat_cnf = sat::parse_dimacs("p cnf 1 2\n1 0\n-1 0\n");
  Solver s2;
  EXPECT_FALSE(sat::load_cnf(s2, unsat_cnf));
  EXPECT_EQ(s2.solve(), SolveResult::Unsatisfiable);
}

}  // namespace
}  // namespace qxmap
