#include "sat/encodings.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

using sat::Lit;
using sat::neg;
using sat::pos;
using sat::Solver;
using sat::SolveResult;

/// Enumerates all models of the current formula over the first `n` vars by
/// blocking; returns the set of assignments as bitmasks.
std::vector<std::uint32_t> all_models(Solver& s, int n) {
  std::vector<std::uint32_t> models;
  while (s.solve() == SolveResult::Satisfiable) {
    std::uint32_t mask = 0;
    std::vector<Lit> block;
    for (sat::Var v = 0; v < n; ++v) {
      if (s.model_value(v)) mask |= 1u << v;
      block.push_back(s.model_value(v) ? neg(v) : pos(v));
    }
    models.push_back(mask);
    s.add_clause(block);
    if (models.size() > 4096) break;
  }
  return models;
}

int popcount_in(std::uint32_t mask, int n) {
  int c = 0;
  for (int i = 0; i < n; ++i) {
    if ((mask >> i) & 1u) ++c;
  }
  return c;
}

class AmoSize : public ::testing::TestWithParam<int> {};

TEST_P(AmoSize, AtMostOneAllowsExactlyNPlusOneModels) {
  const int n = GetParam();
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) lits.push_back(pos(s.new_var()));
  sat::add_at_most_one(s, lits);
  const auto models = all_models(s, n);
  // Empty assignment + n singletons.
  EXPECT_EQ(models.size(), static_cast<std::size_t>(n) + 1);
  for (const auto mask : models) EXPECT_LE(popcount_in(mask, n), 1);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLadder, AmoSize, ::testing::Values(1, 2, 3, 6, 7, 10, 15));

class ExactlyOneSize : public ::testing::TestWithParam<int> {};

TEST_P(ExactlyOneSize, ExactlyOneAllowsExactlyNModels) {
  const int n = GetParam();
  Solver s;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) lits.push_back(pos(s.new_var()));
  sat::add_exactly_one(s, lits);
  const auto models = all_models(s, n);
  EXPECT_EQ(models.size(), static_cast<std::size_t>(n));
  for (const auto mask : models) EXPECT_EQ(popcount_in(mask, n), 1);
}

INSTANTIATE_TEST_SUITE_P(SmallAndLadder, ExactlyOneSize, ::testing::Values(1, 2, 5, 8, 12));

TEST(Encodings, MakeAndTruthTable) {
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      Solver s;
      const auto a = s.new_var();
      const auto b = s.new_var();
      const Lit t = sat::make_and(s, pos(a), pos(b));
      s.add_clause(av ? pos(a) : neg(a));
      s.add_clause(bv ? pos(b) : neg(b));
      ASSERT_EQ(s.solve(), SolveResult::Satisfiable);
      EXPECT_EQ(s.model_value(t), av == 1 && bv == 1);
    }
  }
}

TEST(Encodings, MakeOrTruthTable) {
  for (std::uint32_t mask = 0; mask < 8; ++mask) {
    Solver s;
    std::vector<Lit> lits;
    for (int i = 0; i < 3; ++i) lits.push_back(pos(s.new_var()));
    const Lit t = sat::make_or(s, lits);
    for (int i = 0; i < 3; ++i) {
      s.add_clause(((mask >> i) & 1u) ? lits[static_cast<std::size_t>(i)]
                                      : ~lits[static_cast<std::size_t>(i)]);
    }
    ASSERT_EQ(s.solve(), SolveResult::Satisfiable);
    EXPECT_EQ(s.model_value(t), mask != 0);
  }
}

TEST(Encodings, MakeOrEmptyIsFalse) {
  Solver s;
  const Lit t = sat::make_or(s, {});
  ASSERT_EQ(s.solve(), SolveResult::Satisfiable);
  EXPECT_FALSE(s.model_value(t));
}

TEST(Encodings, MakeEqualTruthTable) {
  for (int av = 0; av <= 1; ++av) {
    for (int bv = 0; bv <= 1; ++bv) {
      Solver s;
      const auto a = s.new_var();
      const auto b = s.new_var();
      const Lit t = sat::make_equal(s, pos(a), pos(b));
      s.add_clause(av ? pos(a) : neg(a));
      s.add_clause(bv ? pos(b) : neg(b));
      ASSERT_EQ(s.solve(), SolveResult::Satisfiable);
      EXPECT_EQ(s.model_value(t), av == bv);
    }
  }
}

TEST(Encodings, AddEqualForcesEquality) {
  Solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  sat::add_equal(s, pos(a), pos(b));
  s.add_clause(pos(a));
  ASSERT_EQ(s.solve(), SolveResult::Satisfiable);
  EXPECT_TRUE(s.model_value(b));
  s.add_clause(neg(b));
  EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
}

TEST(Encodings, ImpliesEqualOnlyBindsWhenAntecedentHolds) {
  Solver s;
  const auto sel = s.new_var();
  const auto a = s.new_var();
  const auto b = s.new_var();
  sat::add_implies_equal(s, pos(sel), pos(a), pos(b));
  // With sel false, a and b are free: a=1, b=0 must be satisfiable.
  s.add_clause(neg(sel));
  s.add_clause(pos(a));
  s.add_clause(neg(b));
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
}

TEST(Encodings, ImpliesEqualBindsWhenAntecedentTrue) {
  Solver s;
  const auto sel = s.new_var();
  const auto a = s.new_var();
  const auto b = s.new_var();
  sat::add_implies_equal(s, pos(sel), pos(a), pos(b));
  s.add_clause(pos(sel));
  s.add_clause(pos(a));
  s.add_clause(neg(b));
  EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
}

}  // namespace
}  // namespace qxmap
