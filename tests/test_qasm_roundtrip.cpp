/// QASM round-trip golden tests: every circuit shape the examples exercise
/// (the paper's running example, Table-1 instances, the generator
/// workloads, the quickstart program) must survive write -> parse with
/// identical gates. The writer always emits a single flattened qreg `q`,
/// so round-tripped circuits agree gate-by-gate with the original.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "ir/circuit.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"
#include "qasm_test_helpers.hpp"

namespace qxmap {
namespace {

/// Gate-by-gate equality with diagnostics on the first mismatch.
void expect_same_gates(const Circuit& original, const Circuit& reparsed) {
  ASSERT_EQ(reparsed.num_qubits(), original.num_qubits());
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed.gate(i), original.gate(i))
        << "gate " << i << ": " << original.gate(i).to_string() << " vs "
        << reparsed.gate(i).to_string();
  }
}

void expect_roundtrips(const Circuit& c) {
  const std::string text = qasm::write(c);
  const Circuit back = qasm::parse(text, c.name());
  expect_same_gates(c, back);
  // Writing the re-parsed circuit must be a fixed point.
  EXPECT_EQ(qasm::write(back), text);
}

TEST(QasmRoundTrip, PaperExampleCircuit) {
  expect_roundtrips(bench::paper_example_circuit());
}

TEST(QasmRoundTrip, QuickstartDefaultProgram) {
  Circuit c(3, "quickstart");
  c.h(0);
  c.cnot(0, 1);
  c.cnot(1, 2);
  c.append(Gate::single(OpKind::T, 2));
  c.cnot(0, 2);
  expect_roundtrips(c);
}

TEST(QasmRoundTrip, AllTable1Benchmarks) {
  for (const auto& b : bench::table1_benchmarks()) {
    SCOPED_TRACE(b.name);
    expect_roundtrips(b.build());
  }
}

TEST(QasmRoundTrip, RandomGeneratorShapes) {
  expect_roundtrips(bench::random_circuit(5, 20, 15, /*seed=*/42, "rand"));
  expect_roundtrips(bench::random_cnot_circuit(5, 25, /*seed=*/7, "rand-cnot"));
  expect_roundtrips(bench::layered_cnot_circuit(6, 8, /*seed=*/3, "layered"));
  expect_roundtrips(bench::structured_circuit(8, 30, 40, /*seed=*/11, "structured"));
}

TEST(QasmRoundTrip, SwapPseudoGatesSurvive) {
  Circuit c(3, "with-swaps");
  c.h(0);
  c.append(Gate::swap(0, 2));
  c.cnot(2, 1);
  c.append(Gate::swap(1, 0));
  expect_roundtrips(c);
}

TEST(QasmRoundTrip, ExpandedSwapsReparseAsElementaryGates) {
  Circuit c(2, "expanded");
  c.append(Gate::swap(0, 1));
  qasm::WriterOptions options;
  options.expand_swaps = true;
  const Circuit back = qasm::parse(qasm::write(c, options));
  EXPECT_EQ(back.num_qubits(), 2);
  // Fig. 3: one SWAP on a one-directional edge = 3 CX + 4 H.
  EXPECT_EQ(back.size(), 7u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_FALSE(back.gate(i).is_swap());
  }
}

TEST(QasmRoundTrip, ParameterizedGatesRoundTripWithinWriterPrecision) {
  Circuit c(2, "params");
  c.append(Gate::single(OpKind::Rz, 0, {0.12345}));
  c.append(Gate::single(OpKind::U2, 1, {-1.5, 2.75}));
  c.append(Gate::single(OpKind::U3, 0, {3.14159, -0.5, 0.001}));
  const Circuit back = qasm::parse(qasm::write(c));
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const Gate& a = c.gate(i);
    const Gate& b = back.gate(i);
    EXPECT_EQ(b.kind, a.kind);
    EXPECT_EQ(b.target, a.target);
    ASSERT_EQ(b.params.size(), a.params.size());
    for (std::size_t p = 0; p < a.params.size(); ++p) {
      // The writer emits 12 fixed digits; re-parse must agree to that.
      EXPECT_NEAR(b.params[p], a.params[p], 1e-11);
    }
  }
}

TEST(QasmRoundTrip, MeasureAndBarrierSurvive) {
  Circuit c(2, "measured");
  c.h(0);
  c.append(Gate::barrier());
  c.cnot(0, 1);
  c.append(Gate::measure(0));
  c.append(Gate::measure(1));
  expect_roundtrips(c);
}

TEST(QasmRoundTrip, IfConditionedGatesSurvive) {
  Circuit c(3, "conditioned");
  c.h(0);
  const Condition flag{"flag", 2, 3};
  const Condition syn{"syn", 1, 0};
  Gate gx = Gate::single(OpKind::X, 1);
  gx.condition = flag;
  c.append(gx);
  Gate gcx = Gate::cnot(0, 2);
  gcx.condition = syn;
  c.append(gcx);
  Gate grz = Gate::single(OpKind::Rz, 2, {0.5});
  grz.condition = flag;
  c.append(grz);
  Gate gm = Gate::measure(1);
  gm.condition = syn;
  c.append(gm);
  expect_roundtrips(c);
}

TEST(QasmRoundTrip, ParsedIfStatementsSurvive) {
  const Circuit c = qasm::parse(R"(
qreg q[2];
creg f[2];
h q[0];
measure q[0] -> f[0];
if (f == 1) x q[1];
if (f == 2) cx q[0], q[1];
)",
                                "parsed-if");
  expect_roundtrips(c);
  EXPECT_TRUE(c.gate(2).is_conditional());
}

TEST(QasmRoundTrip, ExpandedCustomGatesSurvive) {
  const Circuit c = qasm::parse(R"(
include "qelib1.inc";
qreg q[3];
gate bellpair a,b { h a; cx a,b; }
gate spin(t) a { rz(t/2) a; ry(-t) a; }
bellpair q[0], q[1];
spin(pi/8) q[2];
cu1(pi/4) q[1], q[2];
cz q[0], q[2];
)",
                                "custom-gates");
  const std::string text = qasm::write(c);
  const Circuit back = qasm::parse(text, c.name());
  testutil::expect_same_gates_within_writer_precision(c, back);
  // Writing the re-parsed circuit is still a fixed point.
  EXPECT_EQ(qasm::write(back), text);
}

TEST(QasmRoundTrip, ConditionedSwapExpandsFullyConditioned) {
  Circuit c(2, "cond-swap");
  Gate sw = Gate::swap(0, 1);
  sw.condition = Condition{"f", 1, 1};
  c.append(sw);
  qasm::WriterOptions options;
  options.expand_swaps = true;
  const Circuit back = qasm::parse(qasm::write(c, options));
  EXPECT_EQ(back.size(), 7u);
  for (const auto& g : back) {
    ASSERT_TRUE(g.is_conditional());
    EXPECT_EQ(g.condition->creg, "f");
  }
}

}  // namespace
}  // namespace qxmap
