#include "exact/strategies.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "bench_circuits/table1_suite.hpp"

namespace qxmap {
namespace {

using exact::PermutationStrategy;
using exact::permutation_points;

std::vector<Gate> fig1b() {
  return {Gate::cnot(2, 3), Gate::cnot(0, 1), Gate::cnot(1, 2), Gate::cnot(0, 1),
          Gate::cnot(2, 1)};
}

TEST(Strategies, AllAllowsEveryGateButFirst) {
  const auto pts = permutation_points(fig1b(), PermutationStrategy::All, arch::ibm_qx4());
  EXPECT_EQ(pts, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(Strategies, DisjointMatchesExample10) {
  // Example 10: G' = {g3, g4, g5} (1-based) -> 0-based {2, 3, 4}.
  const auto pts =
      permutation_points(fig1b(), PermutationStrategy::DisjointQubits, arch::ibm_qx4());
  EXPECT_EQ(pts, (std::vector<std::size_t>{2, 3, 4}));
}

TEST(Strategies, OddGatesMatchesExample10) {
  // Example 10: G' = {g3, g5} (1-based) -> 0-based {2, 4}.
  const auto pts = permutation_points(fig1b(), PermutationStrategy::OddGates, arch::ibm_qx4());
  EXPECT_EQ(pts, (std::vector<std::size_t>{2, 4}));
}

TEST(Strategies, TriangleMatchesExample10) {
  // Example 10: G' = {g2} (1-based) -> 0-based {1}.
  const auto pts =
      permutation_points(fig1b(), PermutationStrategy::QubitTriangle, arch::ibm_qx4());
  EXPECT_EQ(pts, (std::vector<std::size_t>{1}));
}

TEST(Strategies, TriangleRequiresTriangleInArchitecture) {
  EXPECT_THROW(permutation_points(fig1b(), PermutationStrategy::QubitTriangle, arch::linear(5)),
               std::invalid_argument);
}

TEST(Strategies, PointCountsNestAsExpected) {
  // |G'(triangle)| <= |G'(odd)| <= |G'(all)| and disjoint <= all, on every
  // Table-1 instance (the ordering the paper's Table 1 exhibits).
  for (const auto& b : bench::table1_benchmarks()) {
    const Circuit c = b.build();
    std::vector<Gate> cnots;
    for (const auto& g : c) {
      if (g.is_cnot()) cnots.push_back(g);
    }
    const auto all = permutation_points(cnots, PermutationStrategy::All, arch::ibm_qx4());
    const auto dis = permutation_points(cnots, PermutationStrategy::DisjointQubits, arch::ibm_qx4());
    const auto odd = permutation_points(cnots, PermutationStrategy::OddGates, arch::ibm_qx4());
    const auto tri = permutation_points(cnots, PermutationStrategy::QubitTriangle, arch::ibm_qx4());
    EXPECT_LE(tri.size(), all.size());
    EXPECT_LE(odd.size(), all.size());
    EXPECT_LE(dis.size(), all.size());
    EXPECT_EQ(all.size(), cnots.size() - 1);
    EXPECT_EQ(odd.size(), (cnots.size() - 1) / 2);
  }
}

TEST(Strategies, OddGatesPointsAreOdd1Based) {
  std::vector<Gate> many;
  for (int i = 0; i < 9; ++i) many.push_back(Gate::cnot(i % 2, 2 + (i % 2)));
  const auto pts = permutation_points(many, PermutationStrategy::OddGates, arch::ibm_qx4());
  for (const auto k : pts) {
    EXPECT_EQ((k + 1) % 2, 1u);  // 1-based index k+1 is odd
    EXPECT_GE(k, 2u);
  }
}

TEST(Strategies, ToStringNames) {
  EXPECT_EQ(exact::to_string(PermutationStrategy::All), "all");
  EXPECT_EQ(exact::to_string(PermutationStrategy::DisjointQubits), "disjoint");
  EXPECT_EQ(exact::to_string(PermutationStrategy::OddGates), "odd");
  EXPECT_EQ(exact::to_string(PermutationStrategy::QubitTriangle), "triangle");
}

}  // namespace
}  // namespace qxmap
