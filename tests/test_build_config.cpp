/// Build-configuration invariants: the version string reported by the
/// library matches the CMake project version (passed to this test via
/// QXMAP_PROJECT_VERSION), and the default options pick the documented
/// method/engine in both the Z3 and the Z3-less build.

#include "api/qxmap.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "reason/engine.hpp"

namespace qxmap {
namespace {

TEST(BuildConfig, VersionMatchesCmakeProjectVersion) {
#ifdef QXMAP_PROJECT_VERSION
  EXPECT_STREQ(version(), QXMAP_PROJECT_VERSION);
#else
  GTEST_SKIP() << "QXMAP_PROJECT_VERSION not provided by the build";
#endif
}

TEST(BuildConfig, VersionIsSemver) {
  const std::string v = version();
  int dots = 0;
  for (const char ch : v) {
    if (ch == '.') {
      ++dots;
    } else {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(ch))) << "version: " << v;
    }
  }
  EXPECT_EQ(dots, 2) << "version: " << v;
}

TEST(BuildConfig, DefaultOptionsSelectExactMethod) {
  const MapOptions options;
  EXPECT_EQ(options.method, Method::Exact);
  EXPECT_EQ(options.exact.strategy, exact::PermutationStrategy::All);
}

TEST(BuildConfig, DefaultEngineDegradesToCdclWithoutZ3) {
  const MapOptions options;
  const auto engine = reason::make_engine(options.exact.engine);
  if (reason::z3_available()) {
    EXPECT_EQ(engine->name(), "z3");
  } else {
    // Z3 compiled out: the paper's default engine transparently degrades to
    // the built-in CDCL backend.
    EXPECT_EQ(engine->name(), "cdcl");
  }
}

TEST(BuildConfig, CdclEngineIsAlwaysAvailable) {
  EXPECT_EQ(reason::make_engine(reason::EngineKind::Cdcl)->name(), "cdcl");
}

}  // namespace
}  // namespace qxmap
