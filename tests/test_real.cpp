#include "real/real_parser.hpp"

#include <gtest/gtest.h>

#include "real/mct_decomposer.hpp"
#include "sim/unitary.hpp"

namespace qxmap {
namespace {

/// Classical MCT reference as a circuit the simulator understands is not
/// available (MCT is not an IR gate), so tests verify against manually
/// constructed permutation behaviour via the unitary simulator on the
/// decomposed circuit: |c1 c2 ... t> -> t flipped iff all controls 1.
void expect_mct_behaviour(const Circuit& c, const std::vector<int>& controls, int target) {
  const auto u = sim::circuit_unitary(c);
  const std::size_t dim = u.dimension();
  for (std::size_t input = 0; input < dim; ++input) {
    bool all_ones = true;
    for (const int ctl : controls) {
      if (!((input >> ctl) & 1u)) all_ones = false;
    }
    const std::size_t expected = all_ones ? (input ^ (1ULL << target)) : input;
    for (std::size_t row = 0; row < dim; ++row) {
      const double mag = std::abs(u.get(row, input));
      if (row == expected) {
        EXPECT_NEAR(mag, 1.0, 1e-9) << "input " << input;
      } else {
        EXPECT_NEAR(mag, 0.0, 1e-9) << "input " << input << " row " << row;
      }
    }
  }
}

TEST(MctDecomposer, NoControlIsX) {
  Circuit c(1);
  real::append_mct(c, {}, 0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0).kind, OpKind::X);
}

TEST(MctDecomposer, OneControlIsCnot) {
  Circuit c(2);
  real::append_mct(c, {1}, 0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0), Gate::cnot(1, 0));
}

TEST(MctDecomposer, ToffoliBehaviour) {
  Circuit c(3);
  real::append_mct(c, {0, 1}, 2);
  EXPECT_EQ(c.counts().cnot, 6);
  expect_mct_behaviour(c, {0, 1}, 2);
}

TEST(MctDecomposer, ThreeControlsWithBorrowedAncilla) {
  Circuit c(5);  // line 4 is idle and can be borrowed
  real::append_mct(c, {0, 1, 2}, 3);
  expect_mct_behaviour(c, {0, 1, 2}, 3);
}

TEST(MctDecomposer, ThreeControlsAncillaFree) {
  Circuit c(4);  // no idle line: Lemma 7.5 construction
  real::append_mct(c, {0, 1, 2}, 3);
  expect_mct_behaviour(c, {0, 1, 2}, 3);
}

TEST(MctDecomposer, FourControlsAncillaFree) {
  Circuit c(5);
  real::append_mct(c, {0, 1, 2, 3}, 4);
  expect_mct_behaviour(c, {0, 1, 2, 3}, 4);
}

TEST(MctDecomposer, RejectsAliasedOperands) {
  Circuit c(3);
  EXPECT_THROW(real::append_mct(c, {0, 0}, 2), std::invalid_argument);
  EXPECT_THROW(real::append_mct(c, {0, 2}, 2), std::invalid_argument);
}

TEST(MctDecomposer, FredkinBehaviour) {
  Circuit c(3);
  real::append_fredkin(c, {0}, 1, 2);
  const auto u = sim::circuit_unitary(c);
  // |c a b>: bit0 = control, bit1 = a, bit2 = b; swap a<->b iff control.
  for (std::size_t input = 0; input < 8; ++input) {
    std::size_t expected = input;
    if (input & 1u) {
      const auto a = (input >> 1) & 1u;
      const auto b = (input >> 2) & 1u;
      expected = (input & 1u) | (b << 1) | (a << 2);
    }
    EXPECT_NEAR(std::abs(u.get(expected, input)), 1.0, 1e-9) << input;
  }
}

TEST(MctDecomposer, DecomposedSizeIsMonotone) {
  EXPECT_EQ(real::mct_decomposed_size(1, 3), 1);
  EXPECT_EQ(real::mct_decomposed_size(2, 3), 15);
  EXPECT_GT(real::mct_decomposed_size(3, 4), 15);
  // Borrowed-ancilla route beats the ancilla-free route.
  EXPECT_LE(real::mct_decomposed_size(3, 5), real::mct_decomposed_size(3, 4));
}

constexpr const char* kToffoliReal = R"(
# 3-qubit example netlist
.version 2.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.begin
t2 a b
t3 a b c
t1 c
.end
)";

TEST(RealParser, ParsesNetlist) {
  const auto file = real::parse(kToffoliReal, "toffoli_example");
  EXPECT_EQ(file.circuit.num_qubits(), 3);
  EXPECT_EQ(file.num_mct_gates, 3);
  EXPECT_EQ(file.max_controls, 2);
  // t2 a b -> CX(a, b); t1 c -> X(c); t3 decomposes to 15 gates.
  EXPECT_EQ(file.circuit.size(), 1u + 15u + 1u);
}

TEST(RealParser, XStyleOperands) {
  const auto file = real::parse(".numvars 2\n.begin\nt2 x0 x1\n.end\n");
  EXPECT_EQ(file.circuit.gate(0), Gate::cnot(0, 1));
}

TEST(RealParser, FredkinGate) {
  const auto file = real::parse(".numvars 3\n.variables a b c\n.begin\nf3 a b c\n.end\n");
  EXPECT_EQ(file.max_controls, 2);  // control a plus swap operand promoted
  EXPECT_GT(file.circuit.size(), 2u);
}

TEST(RealParser, CommentsAndWhitespace) {
  const auto file = real::parse(
      "# header comment\n.numvars 2 # trailing\n.variables p q\n.begin\n"
      "  t2 p q   # a CNOT\n\n.end\n");
  EXPECT_EQ(file.circuit.size(), 1u);
}

TEST(RealParser, Errors) {
  EXPECT_THROW(real::parse(".begin\nt1 a\n.end\n"), real::RealParseError);       // no numvars
  EXPECT_THROW(real::parse(".numvars 2\n.begin\nt1 zz\n.end\n"), real::RealParseError);
  EXPECT_THROW(real::parse(".numvars 2\n.begin\nt3 x0 x1\n.end\n"), real::RealParseError);
  EXPECT_THROW(real::parse(".numvars 2\n.begin\nv2 x0 x1\n.end\n"), real::RealParseError);
  EXPECT_THROW(real::parse(".numvars 2\n.begin\nt2 x0 x1\n"), real::RealParseError);  // no .end
  EXPECT_THROW(real::parse(".numvars 1\n.variables a b\n.begin\n.end\n"),
               real::RealParseError);
}

TEST(RealParser, DecomposedNetlistIsMappable) {
  // End-to-end sanity: parse, then ensure only {1q, CNOT} remain.
  const auto file = real::parse(kToffoliReal);
  for (const auto& g : file.circuit) {
    EXPECT_TRUE(g.is_single_qubit() || g.is_cnot()) << g.to_string();
  }
}

}  // namespace
}  // namespace qxmap
