/// Determinism/concurrency harness for the parallel exact mapper: thread-
/// count invariance of the subset shard-and-reduce, the shared-bound early
/// termination, the zero-cost short-circuit, oversubscription (more threads
/// than subsets), the work-stealing pop order, and engine-cooperative
/// mid-solve bound tightening (docs/concurrency.md).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "arch/architectures.hpp"
#include "arch/subsets.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/exact_mapper.hpp"
#include "reason/cdcl_engine.hpp"

namespace qxmap {
namespace {

using exact::ExactOptions;
using exact::map_exact;
using exact::MappingResult;
using reason::EngineKind;
using reason::Status;

ExactOptions subset_options(EngineKind kind, int num_threads) {
  ExactOptions opt;
  opt.engine = kind;
  opt.use_subsets = true;
  opt.num_threads = num_threads;
  opt.budget = std::chrono::milliseconds(30000);
  return opt;
}

/// Everything that must be bit-identical across thread counts.
void expect_identical(const MappingResult& a, const MappingResult& b, const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.cost_f, b.cost_f) << what;
  EXPECT_EQ(a.swaps_inserted, b.swaps_inserted) << what;
  EXPECT_EQ(a.cnots_reversed, b.cnots_reversed) << what;
  EXPECT_EQ(a.mapped.counts().single_qubit, b.mapped.counts().single_qubit) << what;
  EXPECT_EQ(a.initial_layout, b.initial_layout) << what;
  EXPECT_EQ(a.final_layout, b.final_layout) << what;
  EXPECT_EQ(a.instances_solved, b.instances_solved) << what;
  EXPECT_EQ(a.mapped, b.mapped) << what;
  EXPECT_EQ(a.routed_skeleton, b.routed_skeleton) << what;
}

class ExactParallelTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ExactParallelTest, ThreadCountInvarianceOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Circuit c = bench::random_circuit(3, 2, 6, seed, "par3");
    const auto serial = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 1));
    ASSERT_EQ(serial.status, Status::Optimal) << "seed " << seed;
    for (const int threads : {2, 8}) {
      const auto parallel = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), threads));
      expect_identical(serial, parallel,
                       "seed " + std::to_string(seed) + ", threads " + std::to_string(threads));
    }
  }
}

TEST_P(ExactParallelTest, HardwareConcurrencyDefaultMatchesSerial) {
  const Circuit c = bench::random_circuit(4, 3, 5, 7, "par4");
  const auto serial = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 1));
  const auto automatic = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 0));
  ASSERT_EQ(serial.status, Status::Optimal);
  expect_identical(serial, automatic, "num_threads = 0");
}

TEST_P(ExactParallelTest, OversubscriptionMoreThreadsThanSubsets) {
  // QX4 has exactly 4 connected 4-subsets; ask for 16 threads.
  const auto subsets = arch::connected_subsets(arch::ibm_qx4(), 4);
  ASSERT_EQ(subsets.size(), 4u);
  const Circuit c = bench::random_circuit(4, 2, 6, 11, "over");
  const auto serial = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 1));
  const auto oversubscribed = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 16));
  ASSERT_EQ(serial.status, Status::Optimal);
  expect_identical(serial, oversubscribed, "16 threads, 4 subsets");
}

TEST_P(ExactParallelTest, ZeroCostSolutionShortCircuitsLaterSubsets) {
  // A single CNOT always embeds on the first connected 2-subset with cost 0
  // (the initial mapping is free), so of QX4's six 2-subsets only the first
  // may be solved — later subsets can at best tie and lose the index
  // tie-break.
  Circuit c(2, "zero");
  c.cnot(0, 1);
  ASSERT_EQ(arch::connected_subsets(arch::ibm_qx4(), 2).size(), 6u);
  for (const int threads : {1, 2, 8}) {
    const auto res = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), threads));
    ASSERT_EQ(res.status, Status::Optimal) << threads;
    EXPECT_EQ(res.cost_f, 0) << threads;
    EXPECT_EQ(res.instances_solved, 1) << threads;
    EXPECT_TRUE(res.verified) << res.verify_message;
  }
}

TEST_P(ExactParallelTest, NegativeThreadCountIsRejected) {
  Circuit c(2, "bad");
  c.cnot(0, 1);
  auto opt = subset_options(GetParam(), -1);
  EXPECT_THROW((void)map_exact(c, arch::ibm_qx4(), opt), std::invalid_argument);
}

TEST_P(ExactParallelTest, ParallelismAppliesOnlyWithMultipleInstances) {
  // Full-architecture mode has a single instance; any thread count must
  // behave exactly like the serial full solve.
  const Circuit c = bench::random_circuit(4, 2, 4, 3, "full");
  auto serial_opt = subset_options(GetParam(), 1);
  serial_opt.use_subsets = false;
  auto parallel_opt = subset_options(GetParam(), 8);
  parallel_opt.use_subsets = false;
  const auto serial = map_exact(c, arch::ibm_qx4(), serial_opt);
  const auto parallel = map_exact(c, arch::ibm_qx4(), parallel_opt);
  ASSERT_EQ(serial.status, Status::Optimal);
  EXPECT_EQ(serial.instances_solved, 1);
  expect_identical(serial, parallel, "single-instance mode");
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ExactParallelTest,
                         ::testing::Values(EngineKind::Cdcl, EngineKind::Z3));

// --- Shared-bound correctness at the engine level --------------------------
//
// The shards feed each other Eq. (5) upper bounds via
// ReasoningEngine::set_upper_bound; these tests pin down the contract the
// mapper relies on: a bound at or above the optimum never changes the
// reported optimum, and a bound below it comes back as (bounded) Unsat.

namespace bound {

/// Builds "pay 3 for a, 5 for b, at least one of a/b" — optimum 3 (a alone).
struct SmallObjective {
  reason::CdclEngine engine;
  int a;
  int b;
  SmallObjective() {
    a = engine.new_bool();
    b = engine.new_bool();
    engine.add_clause({a + 1, b + 1});
    engine.add_cost(a, 3);
    engine.add_cost(b, 5);
  }
};

}  // namespace bound

TEST(SharedBoundContract, BoundAboveOptimumKeepsOptimum) {
  bound::SmallObjective p;
  p.engine.set_upper_bound(7);
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

TEST(SharedBoundContract, BoundEqualToOptimumKeepsOptimum) {
  // The mapper publishes bounds inclusively: a tying instance must still
  // find its model so the deterministic index tie-break sees it.
  bound::SmallObjective p;
  p.engine.set_upper_bound(3);
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

TEST(SharedBoundContract, BoundBelowOptimumTerminatesAsBoundedUnsat) {
  bound::SmallObjective p;
  p.engine.set_upper_bound(2);
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Unsat);
}

TEST(SharedBoundContract, BinarySearchModeHonoursTheBound) {
  bound::SmallObjective p;
  p.engine.set_mode(reason::OptimizationMode::BinarySearch);
  p.engine.set_upper_bound(3);
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

TEST(SharedBoundContract, NegativeBoundIsRejected) {
  bound::SmallObjective p;
  EXPECT_THROW(p.engine.set_upper_bound(-1), std::invalid_argument);
}

// --- Cooperative mid-solve tightening at the engine level -------------------
//
// set_bound_source installs a live view of the shared bound; the engine must
// poll it at least once per minimize() (loop-start checkpoint), count polls
// and tightenings in stats(), and report outcomes exactly as if the
// tightest polled value had been passed to set_upper_bound up front.

TEST(CooperativeTightening, SourceAboveOptimumKeepsOptimum) {
  bound::SmallObjective p;
  p.engine.set_bound_source([] { return 7LL; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
  EXPECT_GE(p.engine.stats().bound_polls, 1);
  EXPECT_GE(p.engine.stats().bound_tightenings, 1);  // 7 < "no bound known"
}

TEST(CooperativeTightening, SourceEqualToOptimumKeepsOptimum) {
  // Published bounds are inclusive: a tying instance must still report its
  // model so the deterministic index tie-break sees it.
  bound::SmallObjective p;
  p.engine.set_bound_source([] { return 3LL; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

TEST(CooperativeTightening, SourceBelowOptimumTerminatesAsBoundedUnsat) {
  bound::SmallObjective p;
  p.engine.set_bound_source([] { return 2LL; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Unsat);
  EXPECT_GE(p.engine.stats().bound_tightenings, 1);
}

TEST(CooperativeTightening, NoBoundSentinelIsNeutral) {
  bound::SmallObjective p;
  p.engine.set_bound_source([] { return reason::ReasoningEngine::kNoBound; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
  EXPECT_GE(p.engine.stats().bound_polls, 1);
  EXPECT_EQ(p.engine.stats().bound_tightenings, 0);
}

TEST(CooperativeTightening, MonotoneSourceSimulatingSiblingProgress) {
  // The source value drops as the engine works — exactly what a sibling
  // shard descending on its own instance produces. The engine must converge
  // on bounded-Unsat once the source falls below its optimum, whatever the
  // interleaving: outcomes depend only on the tightest value polled.
  bound::SmallObjective p;
  long long calls = 0;
  p.engine.set_bound_source([&calls] {
    ++calls;
    return calls == 1 ? 7LL : 2LL;  // first poll loose, then below optimum 3
  });
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Unsat);
  EXPECT_GE(p.engine.stats().bound_tightenings, 2);  // kNoBound -> 7 -> 2
}

TEST(CooperativeTightening, BinarySearchModePollsBetweenProbes) {
  bound::SmallObjective p;
  p.engine.set_mode(reason::OptimizationMode::BinarySearch);
  p.engine.set_bound_source([] { return 2LL; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Unsat);
  EXPECT_GE(p.engine.stats().bound_polls, 1);
}

TEST(CooperativeTightening, BinarySearchModeSourceAboveOptimum) {
  bound::SmallObjective p;
  p.engine.set_mode(reason::OptimizationMode::BinarySearch);
  p.engine.set_bound_source([] { return 3LL; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

// --- Incremental binary search: probe statistics and deadline contract -------

TEST(BinarySearchProbeContract, ProbeConflictsLandInEngineStats) {
  // Regression: probes used to run on a throwaway solver whose statistics
  // were dropped, so stats() reported zero search work for runs that were
  // all probes. The unit-cost triple forces the probe at bound 0 into a
  // conflict on the shared solver, which must be visible afterwards.
  reason::CdclEngine engine;
  engine.set_optimization_mode(reason::OptimizationMode::BinarySearch);
  const int a = engine.new_bool();
  const int b = engine.new_bool();
  const int c = engine.new_bool();
  engine.add_clause({a + 1, b + 1, c + 1});
  engine.add_cost(a, 1);
  engine.add_cost(b, 1);
  engine.add_cost(c, 1);
  const auto out = engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 1);
  EXPECT_GE(engine.solver_stats().conflicts, 1u);
  EXPECT_GT(engine.stats().avg_lbd, 0.0);
}

TEST(BinarySearchProbeContract, DeadlineWithModelAboveExternalBoundIsUnknown) {
  // Regression (observed-vs-enforced contract): on deadline expiry the
  // binary search used to report Feasible(hi) even when hi exceeded the
  // tightest external bound it had polled. With a zero budget the first
  // solve still succeeds — it is propagation-only, and the deadline is
  // honoured at conflict boundaries — landing the cost-5 model; the
  // loop-start poll then observes the sibling bound 4, and the expired
  // deadline must yield Unknown, never Feasible(5).
  bound::SmallObjective p;
  p.engine.set_optimization_mode(reason::OptimizationMode::BinarySearch);
  p.engine.set_bound_source([] { return 4LL; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(0));
  EXPECT_EQ(out.status, Status::Unknown);
}

TEST(BinarySearchProbeContract, DeadlineWithModelWithinExternalBoundIsFeasible) {
  // Companion: the same expiry under a loose sibling bound keeps the model.
  bound::SmallObjective p;
  p.engine.set_optimization_mode(reason::OptimizationMode::BinarySearch);
  p.engine.set_bound_source([] { return 7LL; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(0));
  EXPECT_EQ(out.status, Status::Feasible);
  EXPECT_EQ(out.cost, 5);
}

TEST(BinarySearchProbeContract, DescendingZeroBudgetConvergesByPropagationAlone) {
  // Contrast case for the descending loop: its solves here never meet a
  // conflict, so a zero budget is never consulted and the polled bound
  // still drives the descent to a proven optimum.
  bound::SmallObjective p;
  p.engine.set_bound_source([] { return 4LL; });
  const auto out = p.engine.minimize(std::chrono::milliseconds(0));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

// --- Prefix snapshot / rollback on the engine --------------------------------

TEST(PrefixReuse, ResetRestoresTheMarkedFormula) {
  reason::CdclEngine engine;
  const int a = engine.new_bool();
  engine.add_clause({a + 1});
  ASSERT_TRUE(engine.mark_prefix());
  // Suffix 1 contradicts the prefix; the engine is now proven unsat.
  engine.add_clause({-(a + 1)});
  EXPECT_EQ(engine.minimize(std::chrono::milliseconds(5000)).status, Status::Unsat);
  // Roll back and build a different suffix on the same prefix: suffix
  // variables re-issue from the prefix boundary and the solve recovers.
  ASSERT_TRUE(engine.reset_to_prefix());
  const int b = engine.new_bool();
  EXPECT_EQ(b, 1);
  engine.add_clause({b + 1});
  engine.add_cost(b, 2);
  const auto out = engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 2);
}

TEST(PrefixReuse, ResetWithoutMarkIsRefused) {
  reason::CdclEngine engine;
  EXPECT_FALSE(engine.reset_to_prefix());
}

// --- Optimization-mode equivalence on Table-1 instances ----------------------

TEST(OptimizationModeEquivalence, ModesAndThreadsAgreeOnTable1SmallRows) {
  // Sec. 3.3 offers both strategies; they must agree on status and minimal
  // cost for every thread count, and within a mode the full result must stay
  // bit-identical across thread counts (the incremental binary path shares
  // engines across a shard's instances, which must not perturb determinism).
  for (const char* name : {"ex-1_166", "ham3_102"}) {
    const Circuit c = bench::table1_benchmark(name).build();
    MappingResult reference;
    bool have_reference = false;
    for (const auto mode :
         {reason::OptimizationMode::DescendingLinear, reason::OptimizationMode::BinarySearch}) {
      const char* mode_name =
          mode == reason::OptimizationMode::BinarySearch ? "binary" : "descending";
      auto serial_opt = subset_options(EngineKind::Cdcl, 1);
      serial_opt.optimization = mode;
      const auto serial = map_exact(c, arch::ibm_qx4(), serial_opt);
      ASSERT_EQ(serial.status, Status::Optimal) << name << ", " << mode_name;
      if (!have_reference) {
        reference = serial;
        have_reference = true;
      } else {
        EXPECT_EQ(serial.status, reference.status) << name;
        EXPECT_EQ(serial.cost_f, reference.cost_f) << name << ": modes disagree on the optimum";
      }
      for (const int threads : {2, 8}) {
        auto opt = serial_opt;
        opt.num_threads = threads;
        const auto parallel = map_exact(c, arch::ibm_qx4(), opt);
        expect_identical(serial, parallel, std::string(name) + ", " + mode_name + ", threads " +
                                               std::to_string(threads));
      }
    }
  }
}

// --- Mid-solve tightening and the work-stealing order in the mapper ---------

namespace steal {

/// 6 physical qubits: a 2-qubit tail hanging off a 4-cycle (all couplings
/// bidirected). The five sparse connected 4-subsets (3 edges each) need
/// SWAPs for the cycle workload below and solve slowly; the 4-cycle subset
/// {2,3,4,5} hosts it at cost 0 and solves fast. Under the hardest-first
/// steal order the sparse subsets are popped first, so the cycle subset's
/// cost-0 bound lands while they are mid-solve — the in-flight abort this
/// suite pins down.
arch::CouplingMap tail_cycle6() {
  std::vector<std::pair<int, int>> edges;
  const auto bidirected = [&edges](int a, int b) {
    edges.emplace_back(a, b);
    edges.emplace_back(b, a);
  };
  bidirected(0, 1);
  bidirected(1, 2);
  bidirected(2, 3);
  bidirected(3, 4);
  bidirected(4, 5);
  bidirected(5, 2);
  return arch::CouplingMap(6, edges, "tail-cycle6");
}

/// `reps` repetitions of the 4-cycle CNOT pattern (0,1)(1,2)(2,3)(3,0).
Circuit cycle_workload(int reps) {
  Circuit c(4, "cycle-workload");
  for (int r = 0; r < reps; ++r) {
    c.cnot(0, 1);
    c.cnot(1, 2);
    c.cnot(2, 3);
    c.cnot(3, 0);
  }
  return c;
}

}  // namespace steal

TEST(MidSolveTightening, CheapSubsetAbortsInFlightExpensiveShards) {
  const auto cm = steal::tail_cycle6();
  ASSERT_EQ(arch::connected_subsets(cm, 4).size(), 6u);
  const Circuit c = steal::cycle_workload(3);
  ExactOptions opt;
  opt.engine = EngineKind::Cdcl;
  opt.use_subsets = true;
  opt.num_threads = 6;  // every instance gets a worker up front
  opt.work_stealing = exact::Toggle::On;
  opt.cooperative_tightening = exact::Toggle::On;
  opt.budget = std::chrono::milliseconds(120000);
  const auto res = map_exact(c, cm, opt);
  ASSERT_EQ(res.status, Status::Optimal);
  EXPECT_EQ(res.cost_f, 0);
  EXPECT_EQ(res.instances_solved, 6);
  EXPECT_TRUE(res.verified) << res.verify_message;
  // Engines poll the shared bound at least once per solve, so polls are
  // guaranteed; the tightenings prove the cycle subset's cost-0 bound landed
  // *inside* sparse shards that were already solving (the serial schedule
  // only ever hands bounds over at solve start).
  EXPECT_GE(res.bound_polls, 6);
  EXPECT_GE(res.bound_tightenings, 1);
}

TEST(MidSolveTightening, SerialRunNeverTightensMidSolve) {
  // At one thread every bound is published before the next instance starts,
  // so loop-start polls see it but nothing arrives mid-solve; the result
  // must still be bit-identical to the parallel run.
  const auto cm = steal::tail_cycle6();
  const Circuit c = steal::cycle_workload(2);
  ExactOptions opt;
  opt.engine = EngineKind::Cdcl;
  opt.use_subsets = true;
  opt.num_threads = 1;
  opt.cooperative_tightening = exact::Toggle::On;
  opt.budget = std::chrono::milliseconds(120000);
  const auto serial = map_exact(c, cm, opt);
  ASSERT_EQ(serial.status, Status::Optimal);
  EXPECT_EQ(serial.bound_tightenings, 0);
  EXPECT_GE(serial.bound_polls, 6);
  opt.num_threads = 6;
  opt.work_stealing = exact::Toggle::On;
  const auto parallel = map_exact(c, cm, opt);
  expect_identical(serial, parallel, "tail-cycle6, 1 vs 6 threads");
}

TEST(MidSolveTightening, TogglesOffMatchCooperativeResults) {
  // Scheduler features change wall time, never results: every combination
  // of {steal, tighten} x {1, 2, 6 threads} must be bit-identical.
  const auto cm = steal::tail_cycle6();
  const Circuit c = steal::cycle_workload(2);
  ExactOptions base;
  base.engine = EngineKind::Cdcl;
  base.use_subsets = true;
  base.budget = std::chrono::milliseconds(120000);
  base.num_threads = 1;
  base.work_stealing = exact::Toggle::Off;
  base.cooperative_tightening = exact::Toggle::Off;
  const auto reference = map_exact(c, cm, base);
  ASSERT_EQ(reference.status, Status::Optimal);
  EXPECT_EQ(reference.bound_polls, 0);  // no source installed when Off
  for (const auto steal_toggle : {exact::Toggle::Off, exact::Toggle::On}) {
    for (const auto tighten_toggle : {exact::Toggle::Off, exact::Toggle::On}) {
      for (const int threads : {1, 2, 6}) {
        auto opt = base;
        opt.work_stealing = steal_toggle;
        opt.cooperative_tightening = tighten_toggle;
        opt.num_threads = threads;
        const auto res = map_exact(c, cm, opt);
        expect_identical(reference, res,
                         "steal=" + std::to_string(steal_toggle == exact::Toggle::On) +
                             " tighten=" + std::to_string(tighten_toggle == exact::Toggle::On) +
                             " threads=" + std::to_string(threads));
      }
    }
  }
}

// --- Work-stealing determinism sweep over the built-in architectures --------

TEST(WorkStealingSweep, ThreadCountInvarianceOnAllBuiltInArchitectures) {
  // qx2/qx4 exercise dense 5-qubit subset lists; qx5/tokyo exercise wide
  // subset lists (dozens of 3-subsets) where the steal order differs most
  // from index order.
  const std::vector<arch::CouplingMap> archs = {arch::ibm_qx2(), arch::ibm_qx4(), arch::ibm_qx5(),
                                                arch::ibm_tokyo()};
  for (const auto& cm : archs) {
    const Circuit c = bench::random_circuit(3, 2, 5, 17, "sweep-" + cm.name());
    ExactOptions opt;
    opt.engine = EngineKind::Cdcl;
    opt.use_subsets = true;
    opt.work_stealing = exact::Toggle::On;
    opt.cooperative_tightening = exact::Toggle::On;
    opt.budget = std::chrono::milliseconds(120000);
    opt.num_threads = 1;
    const auto serial = map_exact(c, cm, opt);
    ASSERT_EQ(serial.status, Status::Optimal) << cm.name();
    EXPECT_TRUE(serial.verified) << cm.name() << ": " << serial.verify_message;
    for (const int threads : {2, 8}) {
      auto popt = opt;
      popt.num_threads = threads;
      const auto parallel = map_exact(c, cm, popt);
      expect_identical(serial, parallel, cm.name() + ", threads " + std::to_string(threads));
    }
  }
}

// --- Toggle environment fallback --------------------------------------------

TEST(SchedulerToggles, AutoDefersToEnvironment) {
  // Toggle::Auto + QXMAP_EXACT_TIGHTEN=off must behave like Toggle::Off
  // (no bound source installed => zero polls); explicit On overrides the
  // environment. Restores the prior environment on exit.
  const char* prior = std::getenv("QXMAP_EXACT_TIGHTEN");
  const std::string saved = prior ? prior : "";
  setenv("QXMAP_EXACT_TIGHTEN", "off", 1);
  const Circuit c = bench::random_circuit(3, 2, 6, 1, "env");
  ExactOptions opt;
  opt.engine = EngineKind::Cdcl;
  opt.use_subsets = true;
  opt.num_threads = 2;
  opt.budget = std::chrono::milliseconds(60000);
  const auto env_off = map_exact(c, arch::ibm_qx4(), opt);
  EXPECT_EQ(env_off.bound_polls, 0);
  opt.cooperative_tightening = exact::Toggle::On;
  const auto forced_on = map_exact(c, arch::ibm_qx4(), opt);
  EXPECT_GE(forced_on.bound_polls, 1);
  expect_identical(env_off, forced_on, "env off vs forced on");
  if (prior) {
    setenv("QXMAP_EXACT_TIGHTEN", saved.c_str(), 1);
  } else {
    unsetenv("QXMAP_EXACT_TIGHTEN");
  }
}

}  // namespace
}  // namespace qxmap
