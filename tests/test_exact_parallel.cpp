/// Determinism/concurrency harness for the parallel exact mapper: thread-
/// count invariance of the subset shard-and-reduce, the shared-bound early
/// termination, the zero-cost short-circuit, and oversubscription (more
/// threads than subsets).

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "arch/architectures.hpp"
#include "arch/subsets.hpp"
#include "bench_circuits/generators.hpp"
#include "exact/exact_mapper.hpp"
#include "reason/cdcl_engine.hpp"

namespace qxmap {
namespace {

using exact::ExactOptions;
using exact::map_exact;
using exact::MappingResult;
using reason::EngineKind;
using reason::Status;

ExactOptions subset_options(EngineKind kind, int num_threads) {
  ExactOptions opt;
  opt.engine = kind;
  opt.use_subsets = true;
  opt.num_threads = num_threads;
  opt.budget = std::chrono::milliseconds(30000);
  return opt;
}

/// Everything that must be bit-identical across thread counts.
void expect_identical(const MappingResult& a, const MappingResult& b, const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_EQ(a.cost_f, b.cost_f) << what;
  EXPECT_EQ(a.swaps_inserted, b.swaps_inserted) << what;
  EXPECT_EQ(a.cnots_reversed, b.cnots_reversed) << what;
  EXPECT_EQ(a.mapped.counts().single_qubit, b.mapped.counts().single_qubit) << what;
  EXPECT_EQ(a.initial_layout, b.initial_layout) << what;
  EXPECT_EQ(a.final_layout, b.final_layout) << what;
  EXPECT_EQ(a.instances_solved, b.instances_solved) << what;
  EXPECT_EQ(a.mapped, b.mapped) << what;
  EXPECT_EQ(a.routed_skeleton, b.routed_skeleton) << what;
}

class ExactParallelTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ExactParallelTest, ThreadCountInvarianceOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Circuit c = bench::random_circuit(3, 2, 6, seed, "par3");
    const auto serial = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 1));
    ASSERT_EQ(serial.status, Status::Optimal) << "seed " << seed;
    for (const int threads : {2, 8}) {
      const auto parallel = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), threads));
      expect_identical(serial, parallel,
                       "seed " + std::to_string(seed) + ", threads " + std::to_string(threads));
    }
  }
}

TEST_P(ExactParallelTest, HardwareConcurrencyDefaultMatchesSerial) {
  const Circuit c = bench::random_circuit(4, 3, 5, 7, "par4");
  const auto serial = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 1));
  const auto automatic = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 0));
  ASSERT_EQ(serial.status, Status::Optimal);
  expect_identical(serial, automatic, "num_threads = 0");
}

TEST_P(ExactParallelTest, OversubscriptionMoreThreadsThanSubsets) {
  // QX4 has exactly 4 connected 4-subsets; ask for 16 threads.
  const auto subsets = arch::connected_subsets(arch::ibm_qx4(), 4);
  ASSERT_EQ(subsets.size(), 4u);
  const Circuit c = bench::random_circuit(4, 2, 6, 11, "over");
  const auto serial = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 1));
  const auto oversubscribed = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), 16));
  ASSERT_EQ(serial.status, Status::Optimal);
  expect_identical(serial, oversubscribed, "16 threads, 4 subsets");
}

TEST_P(ExactParallelTest, ZeroCostSolutionShortCircuitsLaterSubsets) {
  // A single CNOT always embeds on the first connected 2-subset with cost 0
  // (the initial mapping is free), so of QX4's six 2-subsets only the first
  // may be solved — later subsets can at best tie and lose the index
  // tie-break.
  Circuit c(2, "zero");
  c.cnot(0, 1);
  ASSERT_EQ(arch::connected_subsets(arch::ibm_qx4(), 2).size(), 6u);
  for (const int threads : {1, 2, 8}) {
    const auto res = map_exact(c, arch::ibm_qx4(), subset_options(GetParam(), threads));
    ASSERT_EQ(res.status, Status::Optimal) << threads;
    EXPECT_EQ(res.cost_f, 0) << threads;
    EXPECT_EQ(res.instances_solved, 1) << threads;
    EXPECT_TRUE(res.verified) << res.verify_message;
  }
}

TEST_P(ExactParallelTest, NegativeThreadCountIsRejected) {
  Circuit c(2, "bad");
  c.cnot(0, 1);
  auto opt = subset_options(GetParam(), -1);
  EXPECT_THROW((void)map_exact(c, arch::ibm_qx4(), opt), std::invalid_argument);
}

TEST_P(ExactParallelTest, ParallelismAppliesOnlyWithMultipleInstances) {
  // Full-architecture mode has a single instance; any thread count must
  // behave exactly like the serial full solve.
  const Circuit c = bench::random_circuit(4, 2, 4, 3, "full");
  auto serial_opt = subset_options(GetParam(), 1);
  serial_opt.use_subsets = false;
  auto parallel_opt = subset_options(GetParam(), 8);
  parallel_opt.use_subsets = false;
  const auto serial = map_exact(c, arch::ibm_qx4(), serial_opt);
  const auto parallel = map_exact(c, arch::ibm_qx4(), parallel_opt);
  ASSERT_EQ(serial.status, Status::Optimal);
  EXPECT_EQ(serial.instances_solved, 1);
  expect_identical(serial, parallel, "single-instance mode");
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ExactParallelTest,
                         ::testing::Values(EngineKind::Cdcl, EngineKind::Z3));

// --- Shared-bound correctness at the engine level --------------------------
//
// The shards feed each other Eq. (5) upper bounds via
// ReasoningEngine::set_upper_bound; these tests pin down the contract the
// mapper relies on: a bound at or above the optimum never changes the
// reported optimum, and a bound below it comes back as (bounded) Unsat.

namespace bound {

/// Builds "pay 3 for a, 5 for b, at least one of a/b" — optimum 3 (a alone).
struct SmallObjective {
  reason::CdclEngine engine;
  int a;
  int b;
  SmallObjective() {
    a = engine.new_bool();
    b = engine.new_bool();
    engine.add_clause({a + 1, b + 1});
    engine.add_cost(a, 3);
    engine.add_cost(b, 5);
  }
};

}  // namespace bound

TEST(SharedBoundContract, BoundAboveOptimumKeepsOptimum) {
  bound::SmallObjective p;
  p.engine.set_upper_bound(7);
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

TEST(SharedBoundContract, BoundEqualToOptimumKeepsOptimum) {
  // The mapper publishes bounds inclusively: a tying instance must still
  // find its model so the deterministic index tie-break sees it.
  bound::SmallObjective p;
  p.engine.set_upper_bound(3);
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

TEST(SharedBoundContract, BoundBelowOptimumTerminatesAsBoundedUnsat) {
  bound::SmallObjective p;
  p.engine.set_upper_bound(2);
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Unsat);
}

TEST(SharedBoundContract, BinarySearchModeHonoursTheBound) {
  bound::SmallObjective p;
  p.engine.set_mode(reason::OptimizationMode::BinarySearch);
  p.engine.set_upper_bound(3);
  const auto out = p.engine.minimize(std::chrono::milliseconds(5000));
  EXPECT_EQ(out.status, Status::Optimal);
  EXPECT_EQ(out.cost, 3);
}

TEST(SharedBoundContract, NegativeBoundIsRejected) {
  bound::SmallObjective p;
  EXPECT_THROW(p.engine.set_upper_bound(-1), std::invalid_argument);
}

}  // namespace
}  // namespace qxmap
