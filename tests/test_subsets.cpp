#include "arch/subsets.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"

namespace qxmap {
namespace {

TEST(Subsets, AllSubsetsCounts) {
  EXPECT_EQ(arch::all_subsets(5, 4).size(), 5u);
  EXPECT_EQ(arch::all_subsets(5, 3).size(), 10u);
  EXPECT_EQ(arch::all_subsets(5, 5).size(), 1u);
  EXPECT_EQ(arch::all_subsets(5, 0).size(), 1u);
  EXPECT_THROW(arch::all_subsets(3, 4), std::invalid_argument);
  EXPECT_THROW(arch::all_subsets(3, -1), std::invalid_argument);
}

TEST(Subsets, AllSubsetsLexicographic) {
  const auto subs = arch::all_subsets(4, 2);
  ASSERT_EQ(subs.size(), 6u);
  EXPECT_EQ(subs.front(), (std::vector<int>{0, 1}));
  EXPECT_EQ(subs.back(), (std::vector<int>{2, 3}));
  for (std::size_t i = 1; i < subs.size(); ++i) EXPECT_LT(subs[i - 1], subs[i]);
}

TEST(Subsets, ConnectedSubsetsQx4MatchExample9) {
  // Example 9: of the C(5,4) = 5 subsets, only the 4 containing p3
  // (0-based 2) are connected.
  const auto subs = arch::connected_subsets(arch::ibm_qx4(), 4);
  ASSERT_EQ(subs.size(), 4u);
  for (const auto& s : subs) {
    EXPECT_TRUE(std::find(s.begin(), s.end(), 2) != s.end())
        << "subset missing the cut vertex p3";
  }
}

TEST(Subsets, ConnectedSubsetsSize3OnQx4) {
  const auto subs = arch::connected_subsets(arch::ibm_qx4(), 3);
  // Qubit 2 is adjacent to every other qubit, so the connected triples are
  // exactly the C(4,2) = 6 triples containing it (edges: 01 02 12 23 24 34).
  EXPECT_EQ(subs.size(), 6u);
  for (const auto& s : subs) EXPECT_TRUE(arch::ibm_qx4().subset_connected(s));
}

TEST(Subsets, LineGraphSubsetsAreIntervals) {
  const auto subs = arch::connected_subsets(arch::linear(5), 3);
  // Connected 3-subsets of a path are exactly the 3 contiguous windows.
  ASSERT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(subs[1], (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(subs[2], (std::vector<int>{2, 3, 4}));
}

TEST(Subsets, FullSizeSubsetIsWholeGraph) {
  const auto subs = arch::connected_subsets(arch::ibm_qx4(), 5);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0], (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace qxmap
