#include "arch/distances.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"

namespace qxmap {
namespace {

TEST(Distances, HopsOnQx4) {
  const arch::DistanceMatrix d(arch::ibm_qx4());
  EXPECT_EQ(d.hops(0, 0), 0);
  EXPECT_EQ(d.hops(0, 1), 1);
  EXPECT_EQ(d.hops(0, 2), 1);
  EXPECT_EQ(d.hops(0, 3), 2);
  EXPECT_EQ(d.hops(0, 4), 2);
  EXPECT_EQ(d.hops(1, 4), 2);
  EXPECT_EQ(d.hops(3, 4), 1);
}

TEST(Distances, HopsSymmetric) {
  const auto cm = arch::ibm_qx5();
  const arch::DistanceMatrix d(cm);
  for (int a = 0; a < cm.num_physical(); ++a) {
    for (int b = 0; b < cm.num_physical(); ++b) {
      EXPECT_EQ(d.hops(a, b), d.hops(b, a));
    }
  }
}

TEST(Distances, CnotCostAdjacent) {
  const arch::DistanceMatrix d(arch::ibm_qx4());
  // (1,0) in CM: forward free, reverse costs 4 H.
  EXPECT_EQ(d.cnot_cost(1, 0), 0);
  EXPECT_EQ(d.cnot_cost(0, 1), 4);
}

TEST(Distances, CnotCostDistantPair) {
  const arch::DistanceMatrix d(arch::ibm_qx4());
  // 0 and 3 are two hops apart. CNOT(3 -> 0): one SWAP brings the control
  // next to 0 on the forward edge (2,0) — cost 7. CNOT(0 -> 3): every
  // reachable adjacent placement points the wrong way, so 7 + 4.
  EXPECT_EQ(d.cnot_cost(3, 0), 7);
  EXPECT_EQ(d.cnot_cost(0, 3), 11);
}

TEST(Distances, CnotCostOnBidirectedMapNeverPaysH) {
  const auto cm = arch::ibm_tokyo();
  const arch::DistanceMatrix d(cm);
  for (const auto& [a, b] : cm.undirected_edges()) {
    EXPECT_EQ(d.cnot_cost(a, b), 0);
    EXPECT_EQ(d.cnot_cost(b, a), 0);
  }
}

TEST(Distances, DisconnectedPairsGetSentinel) {
  const arch::CouplingMap split(4, {{0, 1}, {2, 3}});
  const arch::DistanceMatrix d(split);
  EXPECT_GE(d.hops(0, 2), 1000);
  EXPECT_GE(d.cnot_cost(0, 2), 1000);
}

TEST(Distances, Validation) {
  const arch::DistanceMatrix d(arch::ibm_qx4());
  EXPECT_THROW((void)d.hops(-1, 0), std::out_of_range);
  EXPECT_THROW((void)d.cnot_cost(0, 9), std::out_of_range);
  EXPECT_THROW((void)d.cnot_cost(1, 1), std::invalid_argument);
}

TEST(Distances, TriangleInequalityOnHops) {
  const auto cm = arch::ibm_qx5();
  const arch::DistanceMatrix d(cm);
  const int m = cm.num_physical();
  for (int a = 0; a < m; ++a) {
    for (int b = 0; b < m; ++b) {
      for (int c = 0; c < m; ++c) {
        EXPECT_LE(d.hops(a, c), d.hops(a, b) + d.hops(b, c));
      }
    }
  }
}

}  // namespace
}  // namespace qxmap
