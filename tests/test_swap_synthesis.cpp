#include "exact/swap_synthesis.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "sim/unitary.hpp"

namespace qxmap {
namespace {

TEST(SwapSynthesis, DirectedEdgeCosts7Gates) {
  const auto cm = arch::ibm_qx4();
  Circuit c(5);
  exact::append_swap_realisation(c, cm, 1, 0);
  EXPECT_EQ(c.size(), 7u);
  EXPECT_EQ(c.counts().cnot, 3);
  EXPECT_EQ(c.counts().single_qubit, 4);
  EXPECT_TRUE(exact::satisfies_coupling(c, cm));
}

TEST(SwapSynthesis, DirectedEdgeRealisesSwapUnitary) {
  const auto cm = arch::ibm_qx4();
  Circuit realised(5);
  exact::append_swap_realisation(realised, cm, 3, 4);
  Circuit reference(5);
  reference.swap(3, 4);
  EXPECT_TRUE(sim::same_unitary(realised, reference));
}

TEST(SwapSynthesis, OrientationIndependent) {
  const auto cm = arch::ibm_qx4();
  Circuit a(5);
  exact::append_swap_realisation(a, cm, 0, 1);
  Circuit b(5);
  exact::append_swap_realisation(b, cm, 1, 0);
  EXPECT_TRUE(sim::same_unitary(a, b));
}

TEST(SwapSynthesis, BidirectedEdgeCosts3Gates) {
  const auto cm = arch::ibm_tokyo();
  Circuit c(20);
  exact::append_swap_realisation(c, cm, 0, 1);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.counts().cnot, 3);
  EXPECT_TRUE(exact::satisfies_coupling(c, cm));
}

TEST(SwapSynthesis, UncoupledPairRejected) {
  Circuit c(5);
  EXPECT_THROW(exact::append_swap_realisation(c, arch::ibm_qx4(), 0, 3), std::invalid_argument);
}

TEST(SwapSynthesis, CnotForwardIsBare) {
  const auto cm = arch::ibm_qx4();
  Circuit c(5);
  exact::append_cnot_realisation(c, cm, 1, 0);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0), Gate::cnot(1, 0));
}

TEST(SwapSynthesis, CnotReversedCosts4H) {
  const auto cm = arch::ibm_qx4();
  Circuit c(5);
  exact::append_cnot_realisation(c, cm, 0, 1);  // only (1,0) in CM
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.counts().single_qubit, 4);
  EXPECT_TRUE(exact::satisfies_coupling(c, cm));
  // And it still computes CNOT(0 -> 1).
  Circuit reference(5);
  reference.cnot(0, 1);
  EXPECT_TRUE(sim::same_unitary(c, reference));
}

TEST(SwapSynthesis, CnotUncoupledRejected) {
  Circuit c(5);
  EXPECT_THROW(exact::append_cnot_realisation(c, arch::ibm_qx4(), 0, 4), std::invalid_argument);
}

TEST(SwapSynthesis, SwapGateCostPerArchitecture) {
  EXPECT_EQ(exact::swap_gate_cost(arch::ibm_qx4()), 7);
  EXPECT_EQ(exact::swap_gate_cost(arch::ibm_qx5()), 7);
  EXPECT_EQ(exact::swap_gate_cost(arch::ibm_tokyo()), 3);
  EXPECT_EQ(exact::swap_gate_cost(arch::clique(4)), 3);
}

TEST(SwapSynthesis, SatisfiesCouplingDetectsViolations) {
  const auto cm = arch::ibm_qx4();
  Circuit ok(5);
  ok.cnot(1, 0);
  ok.h(2);
  EXPECT_TRUE(exact::satisfies_coupling(ok, cm));

  Circuit wrong_direction(5);
  wrong_direction.cnot(0, 1);
  EXPECT_FALSE(exact::satisfies_coupling(wrong_direction, cm));

  Circuit uncoupled(5);
  uncoupled.cnot(0, 4);
  EXPECT_FALSE(exact::satisfies_coupling(uncoupled, cm));

  Circuit pseudo(5);
  pseudo.swap(0, 1);
  EXPECT_FALSE(exact::satisfies_coupling(pseudo, cm));
}

}  // namespace
}  // namespace qxmap
