#include "common/gf2.hpp"

#include <gtest/gtest.h>

#include "common/permutation.hpp"
#include "common/rng.hpp"

namespace qxmap {
namespace {

TEST(Gf2Matrix, IdentityProperties) {
  const auto id = Gf2Matrix::identity(5);
  EXPECT_EQ(id.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_EQ(id.get(i, j), i == j);
    }
  }
  EXPECT_TRUE(id.invertible());
  EXPECT_EQ(id.rank(), 5u);
  EXPECT_EQ(id.inverse(), id);
}

TEST(Gf2Matrix, SetGetRoundTrip) {
  Gf2Matrix m(70);  // spans multiple 64-bit words per row
  m.set(3, 65, true);
  m.set(69, 0, true);
  EXPECT_TRUE(m.get(3, 65));
  EXPECT_TRUE(m.get(69, 0));
  EXPECT_FALSE(m.get(3, 64));
  m.set(3, 65, false);
  EXPECT_FALSE(m.get(3, 65));
}

TEST(Gf2Matrix, OutOfRangeThrows) {
  Gf2Matrix m(4);
  EXPECT_THROW((void)m.get(4, 0), std::out_of_range);
  EXPECT_THROW(m.set(0, 4, true), std::out_of_range);
  EXPECT_THROW(m.xor_row(4, 0), std::out_of_range);
}

TEST(Gf2Matrix, XorRowIsCnotAction) {
  auto m = Gf2Matrix::identity(3);
  m.xor_row(2, 0);  // CNOT control 0 -> target 2
  EXPECT_TRUE(m.get(2, 0));
  EXPECT_TRUE(m.get(2, 2));
  // Applying twice undoes it.
  m.xor_row(2, 0);
  EXPECT_EQ(m, Gf2Matrix::identity(3));
}

TEST(Gf2Matrix, SwapRows) {
  auto m = Gf2Matrix::identity(3);
  m.swap_rows(0, 2);
  EXPECT_TRUE(m.get(0, 2));
  EXPECT_TRUE(m.get(2, 0));
  EXPECT_TRUE(m.get(1, 1));
  EXPECT_FALSE(m.get(0, 0));
}

TEST(Gf2Matrix, MultiplyIdentityIsNoop) {
  Rng rng(5);
  Gf2Matrix m(6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 6; ++j) {
      m.set(i, j, rng.next_bool(0.5));
    }
  }
  EXPECT_EQ(m.multiply(Gf2Matrix::identity(6)), m);
  EXPECT_EQ(Gf2Matrix::identity(6).multiply(m), m);
}

TEST(Gf2Matrix, FromPermutationMapsUnitVectors) {
  const Permutation pi({2, 0, 1});
  const auto m = Gf2Matrix::from_permutation(pi);
  // Column i must be the unit vector e_{pi(i)}.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(m.get(r, i), static_cast<int>(r) == pi.at(i));
    }
  }
}

TEST(Gf2Matrix, PermutationMatrixComposition) {
  const Permutation a({1, 2, 0});
  const Permutation b({2, 1, 0});
  // Matrix of (a then b) = M_b * M_a.
  const auto lhs = Gf2Matrix::from_permutation(a.then(b));
  const auto rhs = Gf2Matrix::from_permutation(b).multiply(Gf2Matrix::from_permutation(a));
  EXPECT_EQ(lhs, rhs);
}

TEST(Gf2Matrix, SingularMatrixDetected) {
  Gf2Matrix m(3);
  m.set(0, 0, true);
  m.set(1, 0, true);  // duplicate column structure, rank 1
  EXPECT_EQ(m.rank(), 1u);
  EXPECT_FALSE(m.invertible());
  EXPECT_THROW(m.inverse(), std::domain_error);
}

TEST(Gf2Matrix, InverseOfRandomInvertible) {
  Rng rng(99);
  // Random invertible matrix via random row operations on the identity.
  auto m = Gf2Matrix::identity(8);
  for (int step = 0; step < 100; ++step) {
    const auto a = static_cast<std::size_t>(rng.next_below(8));
    const auto b = static_cast<std::size_t>(rng.next_below(8));
    if (a != b) m.xor_row(a, b);
  }
  EXPECT_TRUE(m.invertible());
  EXPECT_EQ(m.multiply(m.inverse()), Gf2Matrix::identity(8));
  EXPECT_EQ(m.inverse().multiply(m), Gf2Matrix::identity(8));
}

TEST(Gf2Matrix, ToStringRendering) {
  auto m = Gf2Matrix::identity(2);
  EXPECT_EQ(m.to_string(), "10\n01\n");
}

}  // namespace
}  // namespace qxmap
