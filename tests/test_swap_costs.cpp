#include "arch/swap_costs.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"

namespace qxmap {
namespace {

/// Applies a swap sequence to the identity and returns the resulting
/// permutation (token from i ends at result(i)).
Permutation apply_sequence(std::size_t m, const std::vector<std::pair<int, int>>& seq) {
  Permutation p(m);
  for (const auto& [a, b] : seq) p = p.with_transposition(a, b);
  return p;
}

TEST(SwapCostTable, IdentityIsFree) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  EXPECT_EQ(table.swaps(Permutation(5)), 0);
  EXPECT_TRUE(table.swap_sequence(Permutation(5)).empty());
}

TEST(SwapCostTable, SingleEdgeTransposition) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  // Swapping an adjacent pair costs exactly one SWAP.
  const Permutation p = Permutation(5).with_transposition(0, 1);
  EXPECT_EQ(table.swaps(p), 1);
  EXPECT_EQ(table.swap_sequence(p).size(), 1u);
}

TEST(SwapCostTable, NonAdjacentTranspositionCostsMore) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  // 0 and 3 are two hops apart: swapping them needs 3 SWAPs.
  const Permutation p = Permutation(5).with_transposition(0, 3);
  EXPECT_EQ(table.swaps(p), 3);
}

TEST(SwapCostTable, EverySequenceRealisesItsPermutation) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  for (const auto& pi : Permutation::all(5)) {
    const auto seq = table.swap_sequence(pi);
    EXPECT_EQ(static_cast<int>(seq.size()), table.swaps(pi));
    EXPECT_EQ(apply_sequence(5, seq), pi);
    // Every swap must lie on a coupling edge.
    for (const auto& [a, b] : seq) EXPECT_TRUE(cm.coupled(a, b));
  }
}

TEST(SwapCostTable, CostsLowerBoundedByCycleBound) {
  // swaps(pi) >= m - #cycles (the unrestricted-transposition bound).
  const arch::SwapCostTable table(arch::ibm_qx4());
  for (const auto& pi : Permutation::all(5)) {
    EXPECT_GE(table.swaps(pi), pi.min_transpositions());
  }
}

TEST(SwapCostTable, CliqueMatchesCycleBoundExactly) {
  const arch::SwapCostTable table(arch::clique(4));
  for (const auto& pi : Permutation::all(4)) {
    EXPECT_EQ(table.swaps(pi), pi.min_transpositions());
  }
}

TEST(SwapCostTable, MaxSwapsOnQx4) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  EXPECT_GE(table.max_swaps(), 4);
  EXPECT_LE(table.max_swaps(), 7);
}

TEST(SwapCostTable, LineGraphWorstCase) {
  // Reversing a 3-element line needs 3 swaps (bubble sort bound).
  const arch::SwapCostTable table(arch::linear(3));
  EXPECT_EQ(table.swaps(Permutation({2, 1, 0})), 3);
}

TEST(SwapCostTable, RejectsOversizedAndDisconnected) {
  EXPECT_THROW(arch::SwapCostTable(arch::linear(9)), std::invalid_argument);
  EXPECT_THROW(arch::SwapCostTable(arch::CouplingMap(4, {{0, 1}, {2, 3}})),
               std::invalid_argument);
}

TEST(SwapCostTable, SizeMismatchThrows) {
  const arch::SwapCostTable table(arch::ibm_qx4());
  EXPECT_THROW((void)table.swaps(Permutation(4)), std::invalid_argument);
}

TEST(GreedySwapSequence, RealisesPermutationOnLargeGraphs) {
  const auto cm = arch::ibm_qx5();
  // A full 16-cycle: worst-ish case for routing.
  std::vector<int> images(16);
  for (int i = 0; i < 16; ++i) images[static_cast<std::size_t>(i)] = (i + 1) % 16;
  const Permutation pi(images);
  const auto seq = arch::greedy_swap_sequence(cm, pi);
  EXPECT_EQ(apply_sequence(16, seq), pi);
  for (const auto& [a, b] : seq) EXPECT_TRUE(cm.coupled(a, b));
}

TEST(GreedySwapSequence, MatchesExactOnSmallGraphs) {
  // Upper bound property: greedy >= exact, and both realise pi.
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  for (const auto& pi : Permutation::all(5)) {
    const auto seq = arch::greedy_swap_sequence(cm, pi);
    EXPECT_EQ(apply_sequence(5, seq), pi);
    EXPECT_GE(static_cast<int>(seq.size()), table.swaps(pi));
  }
}

TEST(GreedySwapSequence, IdentityNeedsNothing) {
  EXPECT_TRUE(arch::greedy_swap_sequence(arch::ibm_tokyo(), Permutation(20)).empty());
}

TEST(GreedySwapSequence, DisconnectedRejected) {
  EXPECT_THROW(arch::greedy_swap_sequence(arch::CouplingMap(4, {{0, 1}, {2, 3}}),
                                          Permutation(4)),
               std::invalid_argument);
}

}  // namespace
}  // namespace qxmap
