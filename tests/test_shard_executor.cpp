/// Contract tests for the process-wide shard executor
/// (exact/shard_executor.hpp): exactly-once execution, priority pop order,
/// per-request concurrency caps, caller participation (deadlock freedom
/// with a zero-worker pool), pool growth to honour explicit caps on small
/// machines, exception containment, request interleaving, and the
/// shutdown-ordering regression — destruction with queued work drains
/// cleanly instead of abandoning tasks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exact/shard_executor.hpp"
#include "obs/metrics.hpp"

namespace qxmap::exact {
namespace {

std::vector<long long> ascending(std::size_t n) {
  std::vector<long long> p(n);
  std::iota(p.begin(), p.end(), 0LL);
  return p;
}

TEST(ShardExecutor, RunsEveryTaskExactlyOnce) {
  ShardExecutor ex(3);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> runs(kTasks);
  auto req = ex.submit([&](std::size_t i) { ++runs[i]; }, ascending(kTasks), 4);
  ex.run_to_completion(req);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  const auto stats = ex.stats();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.tasks_submitted, kTasks);
  EXPECT_EQ(stats.tasks_executed, kTasks);
}

TEST(ShardExecutor, SerialPopOrderFollowsPriorityThenIndex) {
  // Zero workers + cap 1: every task runs on this thread, strictly in queue
  // order, so the pop order is directly observable.
  ShardExecutor ex(0);
  std::vector<std::size_t> order;
  auto req = ex.submit([&](std::size_t i) { order.push_back(i); },
                       {30, 10, 20, 10, 0}, 1);
  ex.run_to_completion(req);
  EXPECT_EQ(order, (std::vector<std::size_t>{4, 1, 3, 2, 0}));
}

TEST(ShardExecutor, CallerOnlyPoolCompletesWithoutWorkers) {
  ShardExecutor ex(0);
  EXPECT_EQ(ex.num_threads(), 0u);
  std::atomic<int> ran{0};
  ex.run_to_completion(ex.submit([&](std::size_t) { ++ran; }, ascending(8), 1));
  EXPECT_EQ(ran.load(), 8);
}

TEST(ShardExecutor, CapBoundsConcurrentTasksOfARequest) {
  ShardExecutor ex(6);
  constexpr std::size_t kCap = 2;
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  auto req = ex.submit(
      [&](std::size_t) {
        const int now = ++running;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        --running;
      },
      ascending(12), kCap);
  ex.run_to_completion(req);
  EXPECT_LE(peak.load(), static_cast<int>(kCap));
  EXPECT_GE(peak.load(), 1);
}

TEST(ShardExecutor, PoolGrowsToHonourExplicitCap) {
  // A barrier that needs kCap tasks *simultaneously* inside the executor:
  // only reachable if the pool really provides cap-way concurrency, even
  // when the base pool (and the machine) is smaller.
  constexpr std::size_t kCap = 6;
  ShardExecutor ex(1);
  std::mutex m;
  std::condition_variable cv;
  std::size_t arrived = 0;
  auto req = ex.submit(
      [&](std::size_t) {
        std::unique_lock<std::mutex> lock(m);
        ++arrived;
        cv.notify_all();
        cv.wait(lock, [&] { return arrived >= kCap; });
      },
      ascending(kCap), kCap);
  ex.run_to_completion(req);
  EXPECT_EQ(arrived, kCap);
  EXPECT_GE(ex.stats().threads_spawned, kCap - 1);
}

TEST(ShardExecutor, FirstExceptionIsRethrownAfterAllTasksRan) {
  ShardExecutor ex(2);
  std::atomic<int> ran{0};
  auto req = ex.submit(
      [&](std::size_t i) {
        ++ran;
        if (i == 0) throw std::runtime_error("boom");
      },
      ascending(10), 2);
  EXPECT_THROW(ex.run_to_completion(req), std::runtime_error);
  // Exception containment: the failing task does not cancel its siblings
  // (map_exact layers its own early-exit flag on top when it wants that).
  EXPECT_EQ(ran.load(), 10);
}

TEST(ShardExecutor, ConcurrentRequestsBothComplete) {
  ShardExecutor ex(2);
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::thread other([&] {
    ShardExecutor& shared = ex;
    shared.run_to_completion(shared.submit([&](std::size_t) { ++b; }, ascending(16), 2));
  });
  ex.run_to_completion(ex.submit([&](std::size_t) { ++a; }, ascending(16), 2));
  other.join();
  EXPECT_EQ(a.load(), 16);
  EXPECT_EQ(b.load(), 16);
  EXPECT_EQ(ex.stats().requests, 2u);
  EXPECT_EQ(ex.stats().tasks_executed, 32u);
}

TEST(ShardExecutor, EmptyBatchIsRejected) {
  ShardExecutor ex(1);
  EXPECT_THROW((void)ex.submit([](std::size_t) {}, {}, 1), std::invalid_argument);
}

// Regression: shutdown ordering. Destroying the executor with queued,
// never-awaited work used to be able to abandon tasks (and, at static
// destruction, let worker threads outlive caches they touch). The contract
// now is drain-then-join: every submitted task runs before the destructor
// returns, with no run_to_completion caller required — even on a pool with
// zero workers, where the destructing thread itself must pick up the queue.
TEST(ShardExecutorShutdown, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::shared_ptr<ShardExecutor::Request> req;
  {
    ShardExecutor ex(2);
    req = ex.submit([&](std::size_t) { ++ran; }, ascending(20), 2);
    // No run_to_completion: destruction must finish the work.
  }
  EXPECT_EQ(ran.load(), 20);
}

TEST(ShardExecutorShutdown, DestructorDrainsOnZeroWorkerPool) {
  std::atomic<int> ran{0};
  {
    ShardExecutor ex(0);
    (void)ex.submit([&](std::size_t) { ++ran; }, ascending(5), 1);
  }
  EXPECT_EQ(ran.load(), 5);
}

TEST(ShardExecutorShutdown, DestructionReleasesConcurrentWaiters) {
  // A waiter inside run_to_completion while the executor is being destroyed
  // must be released with its request fully executed, not deadlocked.
  std::atomic<int> ran{0};
  std::thread waiter;
  {
    ShardExecutor ex(1);
    auto req = ex.submit(
        [&](std::size_t) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          ++ran;
        },
        ascending(8), 1);
    waiter = std::thread([&ex, req] { ex.run_to_completion(req); });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // Destructor runs here, concurrently with the waiter.
  }
  waiter.join();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ShardExecutorShutdown, SubmitAfterShutdownBeganIsRefused) {
  // set_num_threads(0) after a drain leaves a live, reusable executor; the
  // refusal path is only for submissions racing destruction, which we can
  // only exercise indirectly: a fresh executor accepts work again.
  ShardExecutor ex(1);
  ex.set_num_threads(0);
  std::atomic<int> ran{0};
  ex.run_to_completion(ex.submit([&](std::size_t) { ++ran; }, ascending(3), 1));
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(ex.num_threads(), 0u);
}

TEST(ShardExecutorShutdown, ResizeUpAndDownKeepsExecutingCorrectly) {
  ShardExecutor ex(0);
  std::atomic<int> ran{0};
  ex.set_num_threads(3);
  EXPECT_EQ(ex.num_threads(), 3u);
  ex.run_to_completion(ex.submit([&](std::size_t) { ++ran; }, ascending(12), 3));
  ex.set_num_threads(1);
  EXPECT_EQ(ex.num_threads(), 1u);
  ex.run_to_completion(ex.submit([&](std::size_t) { ++ran; }, ascending(12), 2));
  EXPECT_EQ(ran.load(), 24);
}

TEST(ShardExecutor, MetricsReconcileWithStats) {
  // The executor publishes its tallies both through stats() (deprecated,
  // per-executor) and the process-wide obs::MetricsRegistry (aggregated
  // across executors). Deltas over one batch must reconcile.
  auto& reg = obs::MetricsRegistry::instance();
  obs::Counter& m_requests =
      reg.counter("qxmap_executor_requests_total", "Task batches submitted");
  obs::Counter& m_submitted =
      reg.counter("qxmap_executor_tasks_submitted_total", "Shard tasks enqueued");
  obs::Counter& m_executed =
      reg.counter("qxmap_executor_tasks_executed_total", "Shard tasks completed");
  obs::Counter& m_failed =
      reg.counter("qxmap_executor_tasks_failed_total", "Shard tasks that threw");
  obs::Histogram& m_wait =
      reg.histogram("qxmap_executor_queue_wait_us", "Queue wait per task (µs)");
  obs::Histogram& m_run = reg.histogram("qxmap_executor_task_run_us", "Run time per task (µs)");
  obs::Gauge& m_depth = reg.gauge("qxmap_executor_queue_depth", "Queued (not in-flight) tasks");

  const auto requests0 = m_requests.value();
  const auto submitted0 = m_submitted.value();
  const auto executed0 = m_executed.value();
  const auto failed0 = m_failed.value();
  const auto wait0 = m_wait.count();
  const auto run0 = m_run.count();

  constexpr std::size_t kTasks = 40;
  ShardExecutor ex(2);
  const ShardExecutor::Stats before = ex.stats();
  std::atomic<int> ran{0};
  auto req = ex.submit(
      [&](std::size_t i) {
        if (i == 7) throw std::runtime_error("planned failure");
        ++ran;
      },
      ascending(kTasks), 3);
  EXPECT_THROW(ex.run_to_completion(req), std::runtime_error);
  const ShardExecutor::Stats after = ex.stats();

  // Per-executor stats for this batch.
  EXPECT_EQ(after.requests - before.requests, 1u);
  EXPECT_EQ(after.tasks_submitted - before.tasks_submitted, kTasks);
  EXPECT_EQ(after.tasks_executed - before.tasks_executed, kTasks);
  EXPECT_EQ(after.tasks_failed - before.tasks_failed, 1u);
  EXPECT_GE(after.queue_depth_high_water, 1u);
  EXPECT_LE(after.queue_depth_high_water, kTasks);

  // Registry deltas carry the same tallies (>= because other executors may
  // run concurrently in this process; == in this single-threaded test).
  EXPECT_EQ(m_requests.value() - requests0, 1);
  EXPECT_EQ(m_submitted.value() - submitted0, static_cast<long long>(kTasks));
  EXPECT_EQ(m_executed.value() - executed0, static_cast<long long>(kTasks));
  EXPECT_EQ(m_failed.value() - failed0, 1);
  // Every executed task observed one queue-wait and one run-time sample.
  EXPECT_EQ(m_wait.count() - wait0, kTasks);
  EXPECT_EQ(m_run.count() - run0, kTasks);
  // The queue fully drained.
  EXPECT_EQ(m_depth.value(), 0);
}

TEST(ShardExecutorShutdown, ProcessWideInstanceIsUsable) {
  // The singleton map_exact uses: submitting through it and exiting the
  // test binary afterwards is itself the static-destruction regression
  // check (an abandoned thread or destroyed-cache access would crash or
  // trip TSan at exit).
  ShardExecutor& ex = ShardExecutor::instance();
  std::atomic<int> ran{0};
  ex.run_to_completion(ex.submit([&](std::size_t) { ++ran; }, ascending(4), 2));
  EXPECT_EQ(ran.load(), 4);
}

}  // namespace
}  // namespace qxmap::exact
