#include "common/permutation.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qxmap {
namespace {

TEST(Permutation, IdentityConstruction) {
  const Permutation p(4);
  EXPECT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.is_identity());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p(i), i);
}

TEST(Permutation, ExplicitConstructionValidates) {
  EXPECT_NO_THROW(Permutation({2, 0, 1}));
  EXPECT_THROW(Permutation({0, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Permutation({0, 3, 1}), std::invalid_argument);
  EXPECT_THROW(Permutation({0, -1, 1}), std::invalid_argument);
}

TEST(Permutation, CompositionOrder) {
  // a: 0->1->2->0 cycle; b: swap 0 and 1.
  const Permutation a({1, 2, 0});
  const Permutation b({1, 0, 2});
  const Permutation ab = a.then(b);  // apply a first, then b
  EXPECT_EQ(ab(0), 0);  // a: 0->1, b: 1->0
  EXPECT_EQ(ab(1), 2);  // a: 1->2, b: 2->2
  EXPECT_EQ(ab(2), 1);  // a: 2->0, b: 0->1
}

TEST(Permutation, InverseRoundTrip) {
  const Permutation p({3, 1, 4, 0, 2});
  EXPECT_TRUE(p.then(p.inverse()).is_identity());
  EXPECT_TRUE(p.inverse().then(p).is_identity());
}

TEST(Permutation, WithTranspositionActsOnTargets) {
  // Identity, then swap the states at positions 1 and 2.
  const Permutation id(3);
  const Permutation t = id.with_transposition(1, 2);
  EXPECT_EQ(t(0), 0);
  EXPECT_EQ(t(1), 2);
  EXPECT_EQ(t(2), 1);
  // Applying the same transposition twice restores the identity.
  EXPECT_TRUE(t.with_transposition(1, 2).is_identity());
}

TEST(Permutation, WithTranspositionComposesAfter) {
  const Permutation p({1, 2, 0});  // 0->1, 1->2, 2->0
  const Permutation q = p.with_transposition(0, 1);
  // Token from 0 went to 1; swapping positions 0,1 moves it to 0.
  EXPECT_EQ(q(0), 0);
  EXPECT_EQ(q(1), 2);
  EXPECT_EQ(q(2), 1);
}

TEST(Permutation, RankUnrankRoundTrip) {
  for (std::size_t m = 1; m <= 5; ++m) {
    const auto all = Permutation::all(m);
    EXPECT_EQ(all.size(), Permutation::factorial(m));
    std::set<std::uint64_t> ranks;
    for (const auto& p : all) {
      const auto r = p.rank();
      EXPECT_LT(r, Permutation::factorial(m));
      EXPECT_TRUE(ranks.insert(r).second) << "duplicate rank " << r;
      EXPECT_EQ(Permutation::from_rank(m, r), p);
    }
  }
}

TEST(Permutation, AllIsSortedByRank) {
  const auto all = Permutation::all(4);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].rank(), i);
  }
}

TEST(Permutation, FactorialValues) {
  EXPECT_EQ(Permutation::factorial(0), 1u);
  EXPECT_EQ(Permutation::factorial(1), 1u);
  EXPECT_EQ(Permutation::factorial(5), 120u);
  EXPECT_EQ(Permutation::factorial(20), 2432902008176640000ULL);
  EXPECT_THROW((void)Permutation::factorial(21), std::out_of_range);
}

TEST(Permutation, NontrivialCycles) {
  const Permutation p({1, 0, 2, 4, 3});
  const auto cycles = p.nontrivial_cycles();
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_EQ(cycles[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(cycles[1], (std::vector<int>{3, 4}));
}

TEST(Permutation, MinTranspositions) {
  EXPECT_EQ(Permutation(4).min_transpositions(), 0);
  EXPECT_EQ(Permutation({1, 0, 2}).min_transpositions(), 1);
  EXPECT_EQ(Permutation({1, 2, 0}).min_transpositions(), 2);
  EXPECT_EQ(Permutation({1, 0, 3, 2}).min_transpositions(), 2);
}

TEST(Permutation, ToString) {
  EXPECT_EQ(Permutation({2, 0, 1}).to_string(), "[2 0 1]");
}

class PermutationGroupProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PermutationGroupProperty, InverseDistributesOverComposition) {
  const std::size_t m = GetParam();
  const auto all = Permutation::all(m);
  // (a.then(b))^-1 == b^-1.then(a^-1) for a sample of pairs.
  for (std::size_t i = 0; i < all.size(); i += 7) {
    for (std::size_t j = 0; j < all.size(); j += 11) {
      const auto lhs = all[i].then(all[j]).inverse();
      const auto rhs = all[j].inverse().then(all[i].inverse());
      EXPECT_EQ(lhs, rhs);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGroups, PermutationGroupProperty, ::testing::Values(2u, 3u, 4u));

}  // namespace
}  // namespace qxmap
