#include "heuristic/sabre_mapper.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/reference_search.hpp"
#include "exact/swap_synthesis.hpp"
#include "sim/equivalence.hpp"

namespace qxmap {
namespace {

using heuristic::map_sabre;
using heuristic::SabreOptions;

long long certified_minimum(const Circuit& c, const arch::CouplingMap& cm) {
  std::vector<Gate> cnots;
  for (const auto& g : c) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  std::vector<std::size_t> pts;
  for (std::size_t k = 1; k < cnots.size(); ++k) pts.push_back(k);
  exact::CostModel costs;
  costs.swap_cost = exact::swap_gate_cost(cm);
  return exact::minimal_cost_reference(cnots, c.num_qubits(), cm, pts, costs).cost_f;
}

TEST(Sabre, ProducesValidMappingsOnQx4) {
  const auto cm = arch::ibm_qx4();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Circuit c = bench::random_circuit(5, 8, 12, seed, "sabre");
    const auto res = map_sabre(c, cm);
    EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm)) << "seed " << seed;
    EXPECT_TRUE(res.verified) << res.verify_message;
    const auto eq =
        sim::check_mapped_circuit(c, res.mapped, res.initial_layout, res.final_layout);
    EXPECT_TRUE(eq.equivalent) << eq.message;
    EXPECT_GE(res.cost_f, certified_minimum(c, cm));
    EXPECT_EQ(res.engine_name, "sabre");
  }
}

TEST(Sabre, DeterministicPerSeed) {
  const Circuit c = bench::random_circuit(5, 5, 15, 7, "det");
  SabreOptions opt;
  opt.seed = 99;
  const auto a = map_sabre(c, arch::ibm_qx4(), opt);
  const auto b = map_sabre(c, arch::ibm_qx4(), opt);
  EXPECT_EQ(a.mapped, b.mapped);
  EXPECT_EQ(a.initial_layout, b.initial_layout);
}

TEST(Sabre, BidirectionalPassesChooseNonTrivialInitialLayout) {
  // A circuit whose hot pair (3, 4) is far apart under the trivial layout;
  // the warm-up passes should move it together.
  Circuit c(5, "hot-pair");
  for (int i = 0; i < 6; ++i) c.cnot(3, 4);
  const auto res = map_sabre(c, arch::ibm_qx4());
  EXPECT_EQ(res.swaps_inserted, 0);
  EXPECT_TRUE(res.verified) << res.verify_message;
}

TEST(Sabre, SingleQubitGatesFollowTheirLogicalQubit) {
  Circuit c(3, "oneq");
  c.h(0);
  c.cnot(0, 1);
  c.t(1);
  c.cnot(1, 2);
  c.h(2);
  const auto res = map_sabre(c, arch::ibm_qx4());
  const auto eq = sim::check_mapped_circuit(c, res.mapped, res.initial_layout, res.final_layout);
  EXPECT_TRUE(eq.equivalent) << eq.message;
}

TEST(Sabre, MeasureAndBarrierHandled) {
  Circuit c(2, "meas");
  c.h(0);
  c.append(Gate::barrier());
  c.cnot(0, 1);
  c.append(Gate::measure(1));
  const auto res = map_sabre(c, arch::ibm_qx4());
  int measures = 0;
  for (const auto& g : res.mapped) measures += g.kind == OpKind::Measure;
  EXPECT_EQ(measures, 1);
}

TEST(Sabre, WorksOnLargeArchitectures) {
  const auto cm = arch::ibm_tokyo();
  const Circuit c = bench::random_circuit(16, 10, 40, 17, "big");
  const auto res = map_sabre(c, cm);
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm));
  EXPECT_TRUE(res.verified) << res.verify_message;
  EXPECT_EQ(res.cnots_reversed, 0);  // bidirected map
}

TEST(Sabre, LookaheadHelpsOnAverage) {
  // With lookahead disabled the mapper is purely greedy; over a batch of
  // circuits the lookahead version should not be worse in total.
  const auto cm = arch::ibm_qx5();
  long long with = 0;
  long long without = 0;
  for (std::uint64_t seed = 30; seed < 36; ++seed) {
    const Circuit c = bench::random_circuit(12, 0, 30, seed, "look");
    SabreOptions lookahead;
    SabreOptions greedy;
    greedy.extended_set_weight = 0.0;
    with += map_sabre(c, cm, lookahead).cost_f;
    without += map_sabre(c, cm, greedy).cost_f;
  }
  EXPECT_LE(with, without + 14);  // allow one-swap noise in the comparison
}

TEST(Sabre, Validation) {
  Circuit big(6);
  big.cnot(0, 5);
  EXPECT_THROW(map_sabre(big, arch::ibm_qx4(), {}), std::invalid_argument);
  // Raw swap pseudo-gates route directly (self-expanded by the mapper).
  Circuit has_swap(2);
  has_swap.swap(0, 1);
  const auto swap_res = map_sabre(has_swap, arch::ibm_qx4(), {});
  EXPECT_EQ(swap_res.mapped.counts().swap, 0);
  EXPECT_TRUE(exact::satisfies_coupling(swap_res.mapped, arch::ibm_qx4()));
  Circuit fine(2);
  fine.cnot(0, 1);
  EXPECT_THROW(map_sabre(fine, arch::CouplingMap(3, {{0, 1}}), {}), std::invalid_argument);
}

TEST(Sabre, ComparableToOtherHeuristicsOnTable1) {
  const auto cm = arch::ibm_qx4();
  const Circuit c = bench::table1_benchmark("ham3_102").build();
  const auto res = map_sabre(c, cm);
  EXPECT_TRUE(res.verified) << res.verify_message;
  // Sanity envelope: within 10x of the certified optimum's overhead + slack.
  EXPECT_LE(res.cost_f, 10 * certified_minimum(c, cm) + 50);
}

}  // namespace
}  // namespace qxmap
