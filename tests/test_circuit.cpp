#include "ir/circuit.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

Circuit sample() {
  Circuit c(3, "sample");
  c.h(0);
  c.cnot(0, 1);
  c.t(1);
  c.cnot(1, 2);
  c.swap(0, 2);
  return c;
}

TEST(Circuit, ConstructionAndName) {
  const Circuit c(4, "foo");
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.name(), "foo");
  EXPECT_TRUE(c.empty());
  EXPECT_THROW(Circuit(-1), std::invalid_argument);
}

TEST(Circuit, AppendValidatesQubitRange) {
  Circuit c(2);
  EXPECT_NO_THROW(c.cnot(0, 1));
  EXPECT_THROW(c.cnot(0, 2), std::out_of_range);
  EXPECT_THROW(c.h(5), std::out_of_range);
}

TEST(Circuit, Counts) {
  const auto counts = sample().counts();
  EXPECT_EQ(counts.single_qubit, 2);
  EXPECT_EQ(counts.cnot, 2);
  EXPECT_EQ(counts.swap, 1);
  EXPECT_EQ(counts.other, 0);
  EXPECT_EQ(counts.cost(), 2 + 2 + 7);
}

TEST(Circuit, CnotPositions) {
  EXPECT_EQ(sample().cnot_positions(), (std::vector<std::size_t>{1, 3}));
}

TEST(Circuit, CnotSkeletonKeepsOrder) {
  const Circuit skel = sample().cnot_skeleton();
  ASSERT_EQ(skel.size(), 2u);
  EXPECT_EQ(skel.gate(0), Gate::cnot(0, 1));
  EXPECT_EQ(skel.gate(1), Gate::cnot(1, 2));
  EXPECT_EQ(skel.num_qubits(), 3);
}

TEST(Circuit, SwapExpansionShape) {
  Circuit c(2);
  c.swap(0, 1);
  const Circuit expanded = c.with_swaps_expanded();
  // 3 CNOT + 4 H = 7 operations (Fig. 3).
  EXPECT_EQ(expanded.size(), 7u);
  const auto counts = expanded.counts();
  EXPECT_EQ(counts.cnot, 3);
  EXPECT_EQ(counts.single_qubit, 4);
  EXPECT_EQ(counts.swap, 0);
}

TEST(Circuit, SwapExpansionLeavesOtherGatesAlone) {
  const Circuit expanded = sample().with_swaps_expanded();
  EXPECT_EQ(expanded.counts().swap, 0);
  EXPECT_EQ(expanded.size(), sample().size() - 1 + 7);
  EXPECT_EQ(expanded.gate(0), Gate::single(OpKind::H, 0));
}

TEST(Circuit, MaxQubitUsed) {
  EXPECT_EQ(sample().max_qubit_used(), 2);
  EXPECT_EQ(Circuit(5).max_qubit_used(), -1);
}

TEST(Circuit, EqualityAndToString) {
  EXPECT_EQ(sample(), sample());
  Circuit other = sample();
  other.x(0);
  EXPECT_NE(sample(), other);
  EXPECT_NE(sample().to_string().find("cx q0, q1"), std::string::npos);
}

}  // namespace
}  // namespace qxmap
