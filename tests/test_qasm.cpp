#include "qasm/lexer.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace qxmap {
namespace {

TEST(QasmLexer, RejectsGarbage) {
  EXPECT_THROW(qasm::parse("qreg q[2]; @"), qasm::LexError);
  EXPECT_THROW(qasm::parse("qreg q[2]; \"unterminated"), qasm::LexError);
}

TEST(QasmParser, MinimalProgram) {
  const Circuit c = qasm::parse(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[3];
    creg c[3];
    h q[0];
    cx q[0], q[1];
    t q[2];
  )");
  EXPECT_EQ(c.num_qubits(), 3);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate(0), Gate::single(OpKind::H, 0));
  EXPECT_EQ(c.gate(1), Gate::cnot(0, 1));
  EXPECT_EQ(c.gate(2), Gate::single(OpKind::T, 2));
}

TEST(QasmParser, HeaderIsOptional) {
  const Circuit c = qasm::parse("qreg q[1]; x q[0];");
  EXPECT_EQ(c.size(), 1u);
}

TEST(QasmParser, MultipleQregsAreFlattened) {
  const Circuit c = qasm::parse("qreg a[2]; qreg b[2]; cx a[1], b[0];");
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.gate(0), Gate::cnot(1, 2));
}

TEST(QasmParser, ParameterExpressions) {
  const Circuit c = qasm::parse("qreg q[1]; rz(pi/2) q[0]; u3(pi, -pi/4, 2*0.5) q[0];");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.gate(0).params[0], std::numbers::pi / 2);
  EXPECT_DOUBLE_EQ(c.gate(1).params[0], std::numbers::pi);
  EXPECT_DOUBLE_EQ(c.gate(1).params[1], -std::numbers::pi / 4);
  EXPECT_DOUBLE_EQ(c.gate(1).params[2], 1.0);
}

TEST(QasmParser, ExponentOperator) {
  const Circuit c = qasm::parse("qreg q[1]; rz(2^3) q[0];");
  EXPECT_DOUBLE_EQ(c.gate(0).params[0], 8.0);
}

TEST(QasmParser, MeasureAndBarrier) {
  const Circuit c = qasm::parse(R"(
    qreg q[2]; creg c[2];
    barrier q;
    measure q[1] -> c[1];
  )");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).kind, OpKind::Barrier);
  EXPECT_EQ(c.gate(1), Gate::measure(1));
}

TEST(QasmParser, CcxDecomposesToCliffordT) {
  const Circuit c = qasm::parse("qreg q[3]; ccx q[0], q[1], q[2];");
  const auto counts = c.counts();
  EXPECT_EQ(counts.cnot, 6);
  EXPECT_EQ(counts.single_qubit, 9);  // 2 H + 4 T + 3 Tdg
}

TEST(QasmParser, SwapGate) {
  const Circuit c = qasm::parse("qreg q[2]; swap q[0], q[1];");
  EXPECT_EQ(c.gate(0), Gate::swap(0, 1));
}

TEST(QasmParser, Errors) {
  EXPECT_THROW(qasm::parse("qreg q[2]; cx q[0], q[2];"), qasm::ParseError);  // out of range
  EXPECT_THROW(qasm::parse("qreg q[2]; cx q[0];"), qasm::ParseError);        // arity
  EXPECT_THROW(qasm::parse("qreg q[2]; zz q[0];"), qasm::ParseError);        // unknown gate
  EXPECT_THROW(qasm::parse("cx q[0], q[1];"), qasm::ParseError);             // undeclared qreg
  EXPECT_THROW(qasm::parse("qreg q[0];"), qasm::ParseError);                 // empty register
  EXPECT_THROW(qasm::parse("qreg q[2]; qreg q[2];"), qasm::ParseError);      // duplicate
  EXPECT_THROW(qasm::parse("qreg q[1]; gate g a { x a; }"), qasm::ParseError);
  EXPECT_THROW(qasm::parse("qreg q[1]; measure q[0] -> c[0];"), qasm::ParseError);
}

TEST(QasmWriter, RoundTrip) {
  Circuit c(3, "rt");
  c.h(0);
  c.cnot(2, 1);
  c.append(Gate::single(OpKind::Rz, 0, {0.25}));
  c.swap(0, 2);
  const std::string text = qasm::write(c);
  const Circuit back = qasm::parse(text);
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back.gate(i).kind, c.gate(i).kind);
    EXPECT_EQ(back.gate(i).target, c.gate(i).target);
    EXPECT_EQ(back.gate(i).control, c.gate(i).control);
    for (std::size_t p = 0; p < c.gate(i).params.size(); ++p) {
      EXPECT_NEAR(back.gate(i).params[p], c.gate(i).params[p], 1e-9);
    }
  }
}

TEST(QasmWriter, ExpandSwapsOption) {
  Circuit c(2);
  c.swap(0, 1);
  qasm::WriterOptions opt;
  opt.expand_swaps = true;
  const Circuit back = qasm::parse(qasm::write(c, opt));
  EXPECT_EQ(back.counts().swap, 0);
  EXPECT_EQ(back.counts().cnot, 3);
  EXPECT_EQ(back.counts().single_qubit, 4);
}

TEST(QasmWriter, MeasureAllOption) {
  Circuit c(2);
  c.h(0);
  qasm::WriterOptions opt;
  opt.emit_measure_all = true;
  const Circuit back = qasm::parse(qasm::write(c, opt));
  EXPECT_EQ(back.size(), 3u);  // h + 2 measures
}

}  // namespace
}  // namespace qxmap
