#include "qasm/lexer.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <numbers>
#include <string>

namespace qxmap {
namespace {

/// Asserts that parsing `src` raises a ParseError at the given 1-based
/// location whose message contains `substring`. Every rejection path in the
/// parser is pinned down this way (see docs/qasm-support.md).
void expect_parse_error(std::string_view src, int line, int column, std::string_view substring,
                        const qasm::ParseOptions& options = {}) {
  try {
    (void)qasm::parse(src, {}, options);
    FAIL() << "expected ParseError for: " << src;
  } catch (const qasm::ParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_EQ(e.column(), column) << e.what();
    EXPECT_NE(std::string(e.what()).find(substring), std::string::npos)
        << "message missing \"" << substring << "\": " << e.what();
  }
}

TEST(QasmLexer, RejectsGarbage) {
  EXPECT_THROW(qasm::parse("qreg q[2]; @"), qasm::LexError);
  EXPECT_THROW(qasm::parse("qreg q[2]; \"unterminated"), qasm::LexError);
}

TEST(QasmLexer, LexErrorCarriesLocation) {
  try {
    (void)qasm::parse("qreg q[2];\n  @");
    FAIL() << "expected LexError";
  } catch (const qasm::LexError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 3);
  }
}

TEST(QasmParser, MinimalProgram) {
  const Circuit c = qasm::parse(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[3];
    creg c[3];
    h q[0];
    cx q[0], q[1];
    t q[2];
  )");
  EXPECT_EQ(c.num_qubits(), 3);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate(0), Gate::single(OpKind::H, 0));
  EXPECT_EQ(c.gate(1), Gate::cnot(0, 1));
  EXPECT_EQ(c.gate(2), Gate::single(OpKind::T, 2));
}

TEST(QasmParser, HeaderIsOptional) {
  const Circuit c = qasm::parse("qreg q[1]; x q[0];");
  EXPECT_EQ(c.size(), 1u);
}

TEST(QasmParser, MultipleQregsAreFlattened) {
  const Circuit c = qasm::parse("qreg a[2]; qreg b[2]; cx a[1], b[0];");
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.gate(0), Gate::cnot(1, 2));
}

TEST(QasmParser, ParameterExpressions) {
  const Circuit c = qasm::parse("qreg q[1]; rz(pi/2) q[0]; u3(pi, -pi/4, 2*0.5) q[0];");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c.gate(0).params[0], std::numbers::pi / 2);
  EXPECT_DOUBLE_EQ(c.gate(1).params[0], std::numbers::pi);
  EXPECT_DOUBLE_EQ(c.gate(1).params[1], -std::numbers::pi / 4);
  EXPECT_DOUBLE_EQ(c.gate(1).params[2], 1.0);
}

TEST(QasmParser, ExponentOperator) {
  const Circuit c = qasm::parse("qreg q[1]; rz(2^3) q[0];");
  EXPECT_DOUBLE_EQ(c.gate(0).params[0], 8.0);
}

TEST(QasmParser, ExpressionFunctions) {
  const Circuit c = qasm::parse(
      "qreg q[1];"
      "rz(sin(pi/2) + sqrt(4)) q[0];"
      "rx(ln(exp(2))) q[0];"
      "ry(cos(0) - tan(0)) q[0];");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_NEAR(c.gate(0).params[0], 3.0, 1e-12);
  EXPECT_NEAR(c.gate(1).params[0], 2.0, 1e-12);
  EXPECT_NEAR(c.gate(2).params[0], 1.0, 1e-12);
}

TEST(QasmParser, MeasureAndBarrier) {
  const Circuit c = qasm::parse(R"(
    qreg q[2]; creg c[2];
    barrier q;
    measure q[1] -> c[1];
  )");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).kind, OpKind::Barrier);
  EXPECT_EQ(c.gate(1), Gate::measure(1));
}

TEST(QasmParser, MeasureRecordsClassicalDestination) {
  const Circuit c = qasm::parse(R"(
    qreg q[2]; creg m[4];
    measure q[0] -> m[3];
    measure q[1] -> m[0];
  )");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0), Gate::measure(0, "m", 3));
  EXPECT_EQ(c.gate(1), Gate::measure(1, "m", 0));
}

TEST(QasmParser, BroadcastMeasureRecordsPerBitDestinations) {
  const Circuit c = qasm::parse("qreg q[3]; creg out[3]; measure q -> out;");
  ASSERT_EQ(c.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(c.gate(i), Gate::measure(i, "out", i));
}

TEST(QasmParser, GuardedMeasureKeepsConditionAndDestination) {
  const Circuit c = qasm::parse("qreg q[1]; creg c[1]; creg m[2]; if (c == 1) measure q[0] -> m[1];");
  ASSERT_EQ(c.size(), 1u);
  Gate expected = Gate::measure(0, "m", 1);
  expected.condition = Condition{"c", 1, 1};
  EXPECT_EQ(c.gate(0), expected);
}

TEST(QasmParser, ResetIndexedAndBroadcast) {
  const Circuit c = qasm::parse("qreg q[3]; reset q[1]; reset q;");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gate(0), Gate::reset(1));
  EXPECT_EQ(c.gate(1), Gate::reset(0));
  EXPECT_EQ(c.gate(2), Gate::reset(1));
  EXPECT_EQ(c.gate(3), Gate::reset(2));
}

TEST(QasmParser, GuardedReset) {
  const Circuit c = qasm::parse("qreg q[2]; creg c[2]; if (c == 3) reset q[1];");
  ASSERT_EQ(c.size(), 1u);
  Gate expected = Gate::reset(1);
  expected.condition = Condition{"c", 2, 3};
  EXPECT_EQ(c.gate(0), expected);
}

TEST(QasmParser, CcxDecomposesToCliffordT) {
  const Circuit c = qasm::parse("qreg q[3]; ccx q[0], q[1], q[2];");
  const auto counts = c.counts();
  EXPECT_EQ(counts.cnot, 6);
  EXPECT_EQ(counts.single_qubit, 9);  // 2 H + 4 T + 3 Tdg
}

TEST(QasmParser, SpecBuiltinUAndCX) {
  // `U` and `CX` are the two builtins of the OpenQASM 2.0 spec itself.
  const Circuit c = qasm::parse("qreg q[2]; U(pi/2, 0, pi) q[0]; CX q[0], q[1];");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0).kind, OpKind::U3);
  EXPECT_DOUBLE_EQ(c.gate(0).params[0], std::numbers::pi / 2);
  EXPECT_EQ(c.gate(1), Gate::cnot(0, 1));
}

TEST(QasmParser, SwapGate) {
  const Circuit c = qasm::parse("qreg q[2]; swap q[0], q[1];");
  EXPECT_EQ(c.gate(0), Gate::swap(0, 1));
}

// -- user-defined gates -----------------------------------------------------

TEST(QasmParser, CustomGateExpands) {
  const Circuit c = qasm::parse(R"(
qreg q[2];
gate bellpair a,b { h a; cx a,b; }
bellpair q[0], q[1];
bellpair q[1], q[0];
)");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gate(0), Gate::single(OpKind::H, 0));
  EXPECT_EQ(c.gate(1), Gate::cnot(0, 1));
  EXPECT_EQ(c.gate(2), Gate::single(OpKind::H, 1));
  EXPECT_EQ(c.gate(3), Gate::cnot(1, 0));
}

TEST(QasmParser, CustomGatesNest) {
  const Circuit c = qasm::parse(R"(
qreg q[3];
gate bellpair a,b { h a; cx a,b; }
gate ghz a,b,c { bellpair a,b; cx b,c; }
ghz q[0], q[1], q[2];
)");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate(0), Gate::single(OpKind::H, 0));
  EXPECT_EQ(c.gate(1), Gate::cnot(0, 1));
  EXPECT_EQ(c.gate(2), Gate::cnot(1, 2));
}

TEST(QasmParser, CustomGateParametersEvaluatePerCallSite) {
  const Circuit c = qasm::parse(R"(
qreg q[1];
gate twist(t) a { rz(t/2) a; rx(-t) a; }
twist(pi) q[0];
twist(pi/2) q[0];
)");
  ASSERT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.gate(0).params[0], std::numbers::pi / 2);
  EXPECT_DOUBLE_EQ(c.gate(1).params[0], -std::numbers::pi);
  EXPECT_DOUBLE_EQ(c.gate(2).params[0], std::numbers::pi / 4);
  EXPECT_DOUBLE_EQ(c.gate(3).params[0], -std::numbers::pi / 2);
}

TEST(QasmParser, CustomGateBodyBarrierIsEmitted) {
  const Circuit c = qasm::parse("qreg q[2]; gate g a,b { h a; barrier a,b; h b; } g q[0], q[1];");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gate(1).kind, OpKind::Barrier);
}

TEST(QasmParser, BundledQelibGatesExpandToPrimitives) {
  const Circuit cz = qasm::parse("include \"qelib1.inc\"; qreg q[2]; cz q[0], q[1];");
  ASSERT_EQ(cz.size(), 3u);
  EXPECT_EQ(cz.gate(0), Gate::single(OpKind::H, 1));
  EXPECT_EQ(cz.gate(1), Gate::cnot(0, 1));
  EXPECT_EQ(cz.gate(2), Gate::single(OpKind::H, 1));

  const Circuit cu1 = qasm::parse("include \"qelib1.inc\"; qreg q[2]; cu1(pi/2) q[0], q[1];");
  EXPECT_EQ(cu1.counts().cnot, 2);
  EXPECT_EQ(cu1.counts().single_qubit, 3);
  EXPECT_DOUBLE_EQ(cu1.gate(0).params[0], std::numbers::pi / 4);

  // cswap goes through the primitive ccx, which decomposes to Clifford+T.
  const Circuit cswap =
      qasm::parse("include \"qelib1.inc\"; qreg q[3]; cswap q[0], q[1], q[2];");
  EXPECT_EQ(cswap.counts().cnot, 8);
}

TEST(QasmParser, OpaqueDeclarationParsesButApplicationIsRejected) {
  const Circuit c = qasm::parse("opaque magic(a) x,y; qreg q[2]; h q[0];");
  EXPECT_EQ(c.size(), 1u);
  expect_parse_error("opaque magic x,y;\nqreg q[2];\nmagic q[0], q[1];", 3, 1,
                     "opaque gate 'magic' cannot be applied");
}

// -- classical conditionals -------------------------------------------------

TEST(QasmParser, IfConditionIsRecordedOnGates) {
  const Circuit c = qasm::parse(R"(
qreg q[2];
creg flag[2];
if (flag == 3) x q[0];
if (flag == 0) cx q[0], q[1];
)");
  ASSERT_EQ(c.size(), 2u);
  ASSERT_TRUE(c.gate(0).is_conditional());
  EXPECT_EQ(c.gate(0).condition->creg, "flag");
  EXPECT_EQ(c.gate(0).condition->width, 2);
  EXPECT_EQ(c.gate(0).condition->value, 3u);
  ASSERT_TRUE(c.gate(1).is_conditional());
  EXPECT_EQ(c.gate(1).condition->value, 0u);
}

TEST(QasmParser, IfAppliesToEveryGateOfAnExpandedCall) {
  const Circuit c = qasm::parse(R"(
qreg q[2];
creg f[1];
gate duo a,b { h a; cx a,b; }
if (f == 1) duo q[0], q[1];
)");
  ASSERT_EQ(c.size(), 2u);
  for (const auto& g : c) {
    ASSERT_TRUE(g.is_conditional());
    EXPECT_EQ(g.condition->creg, "f");
    EXPECT_EQ(g.condition->value, 1u);
  }
}

TEST(QasmParser, IfMeasure) {
  const Circuit c = qasm::parse("qreg q[1]; creg f[1]; creg o[1]; if (f == 1) measure q[0] -> o[0];");
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0).kind, OpKind::Measure);
  ASSERT_TRUE(c.gate(0).is_conditional());
  EXPECT_EQ(c.gate(0).condition->creg, "f");
}

// -- whole-register broadcast -----------------------------------------------

TEST(QasmParser, BroadcastSingleQubitGate) {
  const Circuit c = qasm::parse("qreg q[3]; h q;");
  ASSERT_EQ(c.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(c.gate(static_cast<std::size_t>(i)).target, i);
}

TEST(QasmParser, BroadcastTwoQubitGate) {
  const Circuit c = qasm::parse("qreg a[2]; qreg b[2]; cx a, b;");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0), Gate::cnot(0, 2));
  EXPECT_EQ(c.gate(1), Gate::cnot(1, 3));
}

TEST(QasmParser, BroadcastMixedFixedAndRegister) {
  const Circuit c = qasm::parse("qreg a[1]; qreg b[2]; cx a[0], b;");
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c.gate(0), Gate::cnot(0, 1));
  EXPECT_EQ(c.gate(1), Gate::cnot(0, 2));
}

TEST(QasmParser, BroadcastMeasure) {
  const Circuit c = qasm::parse("qreg q[3]; creg c[3]; measure q -> c;");
  ASSERT_EQ(c.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(c.gate(static_cast<std::size_t>(i)), Gate::measure(i));
}

// -- includes ---------------------------------------------------------------

TEST(QasmParser, IncludeSearchPathsResolveUserIncludes) {
  const std::string dir = ::testing::TempDir();
  const std::string inc = dir + "/mygates_qxmap_test.inc";
  {
    std::ofstream out(inc);
    out << "gate flip a { x a; }\n";
  }
  qasm::ParseOptions options;
  options.include_paths.push_back(dir);
  const Circuit c =
      qasm::parse("include \"mygates_qxmap_test.inc\"; qreg q[1]; flip q[0];", {}, options);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gate(0), Gate::single(OpKind::X, 0));
  std::remove(inc.c_str());
}

TEST(QasmParser, IncludesResolveRelativeToIncludingFile) {
  const std::string dir = ::testing::TempDir();
  const std::string inc = dir + "/neighbor_qxmap_test.inc";
  const std::string main_file = dir + "/main_qxmap_test.qasm";
  {
    std::ofstream out(inc);
    out << "gate flip a { x a; }\n";
  }
  {
    std::ofstream out(main_file);
    out << "include \"neighbor_qxmap_test.inc\";\nqreg q[1];\nflip q[0];\n";
  }
  const Circuit c = qasm::parse_file(main_file);
  EXPECT_EQ(c.size(), 1u);
  std::remove(inc.c_str());
  std::remove(main_file.c_str());
}

TEST(QasmParser, CircularIncludeIsRejected) {
  const std::string dir = ::testing::TempDir();
  const std::string a = dir + "/cyc_a_qxmap_test.inc";
  const std::string b = dir + "/cyc_b_qxmap_test.inc";
  {
    std::ofstream out(a);
    out << "include \"cyc_b_qxmap_test.inc\";\n";
  }
  {
    std::ofstream out(b);
    out << "include \"cyc_a_qxmap_test.inc\";\n";
  }
  qasm::ParseOptions options;
  options.include_paths.push_back(dir);
  try {
    (void)qasm::parse("include \"cyc_a_qxmap_test.inc\"; qreg q[1];", {}, options);
    FAIL() << "expected ParseError";
  } catch (const qasm::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("circular include"), std::string::npos) << e.what();
  }
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(QasmParser, LegacySkipIncludesOption) {
  qasm::ParseOptions options;
  options.resolve_includes = false;
  const Circuit c = qasm::parse("include \"no_such_file.inc\"; qreg q[1]; x q[0];", {}, options);
  EXPECT_EQ(c.size(), 1u);
}

TEST(QasmParser, ExpansionDepthLimit) {
  qasm::ParseOptions options;
  options.max_expansion_depth = 1;
  expect_parse_error(
      "qreg q[1];\n"
      "gate g1 a { x a; }\n"
      "gate g2 a { g1 a; }\n"
      "gate g3 a { g2 a; }\n"
      "g3 q[0];",
      5, 1, "max_expansion_depth", options);
}

// -- diagnostics: every rejection path asserts line, column and message -----

TEST(QasmParser, DiagnosticsCarryLocationAndExcerpt) {
  // Rejections at known locations; one source construct per case.
  expect_parse_error("qreg q[2]; cx q[0], q[2];", 1, 21, "qubit index out of range");
  expect_parse_error("qreg q[2];\ncx q[0];", 2, 1, "expects 2 qubit(s), got 1");
  expect_parse_error("qreg q[2];\nzz q[0];", 2, 1, "unknown gate 'zz'");
  expect_parse_error("cx q[0], q[1];", 1, 4, "unknown qreg 'q'");
  expect_parse_error("qreg q[0];", 1, 8, "register size must be positive");
  expect_parse_error("qreg q[2];\nqreg q[2];", 2, 6, "duplicate qreg 'q'");
  expect_parse_error("creg c[1];\ncreg c[1];", 2, 6, "duplicate creg 'c'");
  expect_parse_error("qreg q[1];\nmeasure q[0] -> c[0];", 2, 17, "unknown creg 'c'");
  expect_parse_error("qreg q[1]; creg c[1];\nmeasure q[0] -> c[5];", 2, 17,
                     "classical bit index out of range");
  expect_parse_error("qreg q[1];\nrz(pi) q[0], q[0];", 2, 1, "expects 1 qubit(s), got 2");
  expect_parse_error("qreg q[1];\nrz() q[0];", 2, 1, "expects 1 parameter(s), got 0");
  expect_parse_error("qreg q[1];\nrz(*) q[0];", 2, 4, "expected expression");
  expect_parse_error("qreg q[1];\nrz(theta) q[0];", 2, 4, "unknown identifier 'theta'");
  expect_parse_error("qreg q[1];\nh(pi) q[0];", 2, 1, "expects 0 parameter(s), got 1");
  expect_parse_error("qreg q[2];\ncx q[0], q[0];", 2, 1, "duplicate qubit argument");
  expect_parse_error("qreg a[2]; qreg b[3];\ncx a, b;", 2, 7, "broadcast over different-sized");
  expect_parse_error("qreg q[2]; creg c[3];\nmeasure q -> c;", 2, 9, "broadcast measure needs");
  expect_parse_error("qreg q[2]; creg c[2];\nmeasure q -> c[0];", 2, 9,
                     "both indexed or both whole");
  expect_parse_error("qreg q[1]; creg c[1];\nif (f == 1) x q[0];", 2, 5, "unknown creg 'f'");
  expect_parse_error("qreg q[1]; creg c[1];\nif (c == 1.5) x q[0];", 2, 10,
                     "non-negative integer");
  expect_parse_error("qreg q[1]; creg c[1];\nif (c == 1) if (c == 1) x q[0];", 2, 13,
                     "nested 'if'");
  expect_parse_error("qreg q[1]; creg c[1];\nif (c == 1) barrier q;", 2, 13,
                     "must guard a gate application or measure");
  expect_parse_error("gate h a { x a; }", 1, 6, "cannot redefine builtin gate 'h'");
  expect_parse_error("gate g a { x a; }\ngate g a { y a; }", 2, 6, "redefinition of gate 'g'");
  expect_parse_error("gate g a { zz a; }", 1, 12, "unknown gate 'zz' in gate body");
  expect_parse_error("gate g a { x a[0]; }", 1, 15, "symbolic (no indexing)");
  expect_parse_error("gate g a { x b; }", 1, 14, "unknown qubit argument 'b'");
  expect_parse_error("gate g(t,t) a { rz(t) a; }", 1, 10, "duplicate parameter 't'");
  expect_parse_error("gate g a,a { x a; }", 1, 10, "duplicate qubit argument 'a'");
  expect_parse_error("gate g a { x a;", 1, 16, "unterminated gate body");
  expect_parse_error("include \"no_such_file_qxmap.inc\";", 1, 9, "cannot resolve include");
  expect_parse_error("qreg q[1]; 5;", 1, 12, "expected statement");
}

TEST(QasmParser, ErrorWhatShowsSourceLineWithCaret) {
  try {
    (void)qasm::parse("qreg q[2];\ncx q[0], q[2];");
    FAIL() << "expected ParseError";
  } catch (const qasm::ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cx q[0], q[2];"), std::string::npos) << what;
    EXPECT_NE(what.find('^'), std::string::npos) << what;
  }
}

TEST(QasmParser, ParseFileErrorIncludesPath) {
  try {
    (void)qasm::parse_file("/no/such/dir/qxmap_missing.qasm");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/dir/qxmap_missing.qasm"), std::string::npos)
        << e.what();
  }
}

// -- writer -----------------------------------------------------------------

TEST(QasmWriter, RoundTrip) {
  Circuit c(3, "rt");
  c.h(0);
  c.cnot(2, 1);
  c.append(Gate::single(OpKind::Rz, 0, {0.25}));
  c.swap(0, 2);
  const std::string text = qasm::write(c);
  const Circuit back = qasm::parse(text);
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back.gate(i).kind, c.gate(i).kind);
    EXPECT_EQ(back.gate(i).target, c.gate(i).target);
    EXPECT_EQ(back.gate(i).control, c.gate(i).control);
    for (std::size_t p = 0; p < c.gate(i).params.size(); ++p) {
      EXPECT_NEAR(back.gate(i).params[p], c.gate(i).params[p], 1e-9);
    }
  }
}

TEST(QasmWriter, ExpandSwapsOption) {
  Circuit c(2);
  c.swap(0, 1);
  qasm::WriterOptions opt;
  opt.expand_swaps = true;
  const Circuit back = qasm::parse(qasm::write(c, opt));
  EXPECT_EQ(back.counts().swap, 0);
  EXPECT_EQ(back.counts().cnot, 3);
  EXPECT_EQ(back.counts().single_qubit, 4);
}

TEST(QasmWriter, MeasureAllOption) {
  Circuit c(2);
  c.h(0);
  qasm::WriterOptions opt;
  opt.emit_measure_all = true;
  const Circuit back = qasm::parse(qasm::write(c, opt));
  EXPECT_EQ(back.size(), 3u);  // h + 2 measures
}

TEST(QasmWriter, ConditionedGatesEmitIfAndCregDeclaration) {
  Circuit c(2, "cond");
  Gate x = Gate::single(OpKind::X, 0);
  x.condition = Condition{"flag", 2, 3};
  c.append(x);
  const std::string text = qasm::write(c);
  EXPECT_NE(text.find("creg flag[2];"), std::string::npos) << text;
  EXPECT_NE(text.find("if(flag==3) x q[0];"), std::string::npos) << text;
}

TEST(QasmWriter, MeasureWiringRoundTrips) {
  // Indexed, broadcast and guarded measures must survive write → parse with
  // their original classical destinations (docs/qasm-support.md).
  const Circuit c = qasm::parse(R"(
    qreg q[3]; creg g[1]; creg m[3]; creg r[2];
    measure q[2] -> m[0];
    measure q[0] -> r[1];
    if (g == 1) measure q[1] -> m[2];
  )");
  const std::string text = qasm::write(c);
  EXPECT_NE(text.find("measure q[2] -> m[0];"), std::string::npos) << text;
  EXPECT_NE(text.find("measure q[0] -> r[1];"), std::string::npos) << text;
  EXPECT_NE(text.find("if(g==1) measure q[1] -> m[2];"), std::string::npos) << text;
  EXPECT_NE(text.find("creg m[3];"), std::string::npos) << text;
  EXPECT_NE(text.find("creg r[2];"), std::string::npos) << text;
  const Circuit back = qasm::parse(text);
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back.gate(i).cbit, c.gate(i).cbit) << i;
    EXPECT_EQ(back.gate(i).condition, c.gate(i).condition) << i;
  }
}

TEST(QasmWriter, BroadcastMeasureRoundTrips) {
  const Circuit c = qasm::parse("qreg q[2]; creg out[2]; measure q -> out;");
  const Circuit back = qasm::parse(qasm::write(c));
  ASSERT_EQ(back.size(), 2u);
  for (int i = 0; i < 2; ++i) EXPECT_EQ(back.gate(i), Gate::measure(i, "out", i));
}

TEST(QasmWriter, ResetRoundTrips) {
  Circuit c(2, "resets");
  c.append(Gate::reset(1));
  Gate guarded = Gate::reset(0);
  guarded.condition = Condition{"f", 1, 1};
  c.append(guarded);
  const std::string text = qasm::write(c);
  EXPECT_NE(text.find("reset q[1];"), std::string::npos) << text;
  EXPECT_NE(text.find("if(f==1) reset q[0];"), std::string::npos) << text;
  const Circuit back = qasm::parse(text);
  ASSERT_EQ(back.size(), c.size());
  EXPECT_EQ(back.gate(0), c.gate(0));
  EXPECT_EQ(back.gate(1), c.gate(1));
}

TEST(QasmWriter, DefaultMeasureStillTargetsC) {
  // Hand-built measures (no recorded wiring) keep the c[target] convention.
  Circuit c(2);
  c.append(Gate::measure(1));
  const std::string text = qasm::write(c);
  EXPECT_NE(text.find("creg c[2];"), std::string::npos) << text;
  EXPECT_NE(text.find("measure q[1] -> c[1];"), std::string::npos) << text;
}

TEST(QasmWriter, WriteFileErrorIncludesPath) {
  Circuit c(1);
  c.h(0);
  try {
    qasm::write_file(c, "/no/such/dir/qxmap_out.qasm");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/no/such/dir/qxmap_out.qasm"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace qxmap
