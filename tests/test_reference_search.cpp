#include "exact/reference_search.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/table1_suite.hpp"

namespace qxmap {
namespace {

using exact::CostModel;
using exact::minimal_cost_reference;

CostModel qx_costs() {
  CostModel c;
  c.swap_cost = 7;
  c.reverse_cost = 4;
  return c;
}

std::vector<std::size_t> all_points(std::size_t num_gates) {
  std::vector<std::size_t> pts;
  for (std::size_t k = 1; k < num_gates; ++k) pts.push_back(k);
  return pts;
}

TEST(ReferenceSearch, EmptySkeletonIsFree) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  const auto r = minimal_cost_reference({}, 3, cm, table, {}, qx_costs());
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cost_f, 0);
}

TEST(ReferenceSearch, SingleCnotIsFree) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  const auto r = minimal_cost_reference({Gate::cnot(0, 1)}, 2, cm, table, {}, qx_costs());
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cost_f, 0);
}

TEST(ReferenceSearch, OppositeDirectionsCost4) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(1, 0)};
  const auto r = minimal_cost_reference(cnots, 2, cm, table, all_points(2), qx_costs());
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.cost_f, 4);
}

TEST(ReferenceSearch, PaperExampleCosts4) {
  // Fig. 1 -> Fig. 5: the minimal realisation on QX4 costs F = 4.
  const Circuit c = bench::paper_example_circuit();
  std::vector<Gate> cnots;
  for (const auto& g : c) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  const auto r =
      minimal_cost_reference(cnots, 4, cm, table, all_points(cnots.size()), qx_costs());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.cost_f, 4);
}

TEST(ReferenceSearch, InfeasibleWithoutPermutationPoints) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  // K4 interaction pattern cannot sit on QX4 under one placement.
  const std::vector<Gate> cnots{Gate::cnot(0, 1), Gate::cnot(2, 3), Gate::cnot(0, 2),
                                Gate::cnot(1, 3), Gate::cnot(0, 3), Gate::cnot(1, 2)};
  const auto r = minimal_cost_reference(cnots, 4, cm, table, {}, qx_costs());
  EXPECT_FALSE(r.feasible);
  // With permutations it becomes feasible.
  const auto r2 = minimal_cost_reference(cnots, 4, cm, table, all_points(6), qx_costs());
  EXPECT_TRUE(r2.feasible);
  EXPECT_GT(r2.cost_f, 0);
}

TEST(ReferenceSearch, RestrictingPointsNeverHelps) {
  // F(all points) <= F(fewer points) — monotonicity the paper relies on.
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  for (const auto& b : bench::table1_benchmarks()) {
    if (b.cnot > 12) continue;  // keep the sweep quick
    const Circuit c = b.build();
    std::vector<Gate> cnots;
    for (const auto& g : c) {
      if (g.is_cnot()) cnots.push_back(g);
    }
    const auto full = minimal_cost_reference(cnots, b.n, cm, table,
                                             all_points(cnots.size()), qx_costs());
    std::vector<std::size_t> odd;
    for (std::size_t k = 2; k < cnots.size(); k += 2) odd.push_back(k);
    const auto restricted = minimal_cost_reference(cnots, b.n, cm, table, odd, qx_costs());
    ASSERT_TRUE(full.feasible);
    if (restricted.feasible) {
      EXPECT_LE(full.cost_f, restricted.cost_f) << b.name;
    }
  }
}

TEST(ReferenceSearch, CostIsMultipleOfGateCosts) {
  // Every achievable F is a nonneg combination of 7 (SWAP) and 4 (reversal).
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  for (const auto& b : bench::table1_benchmarks()) {
    if (b.n > 4 || b.cnot > 12) continue;
    const Circuit c = b.build();
    std::vector<Gate> cnots;
    for (const auto& g : c) {
      if (g.is_cnot()) cnots.push_back(g);
    }
    const auto r =
        minimal_cost_reference(cnots, b.n, cm, table, all_points(cnots.size()), qx_costs());
    ASSERT_TRUE(r.feasible);
    bool representable = false;
    for (long long swaps = 0; 7 * swaps <= r.cost_f; ++swaps) {
      if ((r.cost_f - 7 * swaps) % 4 == 0) representable = true;
    }
    EXPECT_TRUE(representable) << b.name << " F=" << r.cost_f;
  }
}

TEST(ReferenceSearch, Validation) {
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  EXPECT_THROW((void)minimal_cost_reference({Gate::cnot(0, 1)}, 6, cm, table, {}, qx_costs()),
               std::invalid_argument);
  EXPECT_THROW((void)minimal_cost_reference({Gate::cnot(0, 1)}, 2, cm, table, {}, CostModel{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace qxmap
