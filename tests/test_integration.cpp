/// End-to-end scenarios: the paper's worked example (Figs. 1-5), the full
/// RevLib -> decompose -> map pipeline, and cross-method consistency on
/// Table-1-shaped workloads. These are the tests that tie every subsystem
/// together.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "api/qxmap.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/reference_search.hpp"
#include "exact/swap_synthesis.hpp"
#include "real/real_parser.hpp"
#include "sim/equivalence.hpp"

namespace qxmap {
namespace {

using reason::EngineKind;
using reason::Status;

exact::ExactOptions budget_options(EngineKind kind) {
  exact::ExactOptions opt;
  opt.engine = kind;
  opt.budget = std::chrono::milliseconds(30000);
  return opt;
}

TEST(Integration, PaperWalkthroughFig1ToFig5) {
  // Fig. 1a circuit, mapped to QX4 (Fig. 2's coupling map) with minimal
  // SWAP/H cost; the paper's Fig. 5 result costs F = 4 (four H gates, no
  // SWAPs).
  const Circuit original = bench::paper_example_circuit();
  const auto cm = arch::ibm_qx4();

  for (const auto kind : {EngineKind::Z3, EngineKind::Cdcl}) {
    const auto res = exact::map_exact(original, cm, budget_options(kind));
    ASSERT_EQ(res.status, Status::Optimal);
    EXPECT_EQ(res.cost_f, 4);
    EXPECT_EQ(res.swaps_inserted, 0);
    EXPECT_EQ(res.cnots_reversed, 1);
    // 8 original + 4 H = 12 operations, executable as-is on QX4.
    EXPECT_EQ(res.mapped.size(), 12u);
    EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm));
    // Full quantum-semantics verification.
    const auto eq = sim::check_mapped_circuit(original, res.mapped, res.initial_layout,
                                              res.final_layout);
    EXPECT_TRUE(eq.equivalent) << eq.message;
  }
}

TEST(Integration, RevlibToMappedFlow) {
  // A reversible netlist goes through MCT decomposition and exact mapping.
  const auto file = real::parse(R"(
.version 2.0
.numvars 3
.variables a b c
.begin
t2 a b
t3 a b c
t2 b c
.end
)",
                                "mini-netlist");
  const Circuit& decomposed = file.circuit;
  EXPECT_EQ(decomposed.counts().cnot, 1 + 6 + 1);

  auto opt = budget_options(EngineKind::Z3);
  opt.use_subsets = true;  // 3 logical on 5 physical
  const auto res = exact::map_exact(decomposed, arch::ibm_qx4(), opt);
  ASSERT_EQ(res.status, Status::Optimal);
  EXPECT_TRUE(res.verified) << res.verify_message;
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::ibm_qx4()));
}

TEST(Integration, AllMethodsAgreeOnSemantics) {
  // Exact, stochastic, and A* must all produce equivalent circuits — they
  // only differ in overhead.
  const Circuit c = bench::random_circuit(4, 5, 8, 1234, "tri-method");
  const auto cm = arch::ibm_qx4();

  std::vector<exact::MappingResult> results;
  results.push_back(exact::map_exact(c, cm, budget_options(EngineKind::Z3)));
  results.push_back(heuristic::map_stochastic_swap(c, cm));
  results.push_back(heuristic::map_astar(c, cm));

  for (const auto& res : results) {
    EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm)) << res.engine_name;
    const auto eq =
        sim::check_mapped_circuit(c, res.mapped, res.initial_layout, res.final_layout);
    EXPECT_TRUE(eq.equivalent) << res.engine_name << ": " << eq.message;
  }
  // Exact is the floor.
  EXPECT_LE(results[0].cost_f, results[1].cost_f);
  EXPECT_LE(results[0].cost_f, results[2].cost_f);
}

TEST(Integration, SubsetModeAgreesWithFullModeOnMinimum) {
  for (std::uint64_t seed = 400; seed < 402; ++seed) {
    const Circuit c = bench::random_circuit(4, 2, 6, seed, "subset-vs-full");
    const auto full = exact::map_exact(c, arch::ibm_qx4(), budget_options(EngineKind::Z3));
    auto opt = budget_options(EngineKind::Z3);
    opt.use_subsets = true;
    const auto subset = exact::map_exact(c, arch::ibm_qx4(), opt);
    ASSERT_EQ(full.status, Status::Optimal);
    ASSERT_EQ(subset.status, Status::Optimal);
    // Sec. 4.1 preserved minimality on all Table-1 instances; these tiny
    // cases behave the same.
    EXPECT_EQ(full.cost_f, subset.cost_f) << "seed " << seed;
  }
}

TEST(Integration, EnginesAgreeOnMinimumCost) {
  for (std::uint64_t seed = 500; seed < 503; ++seed) {
    const Circuit c = bench::random_circuit(4, 3, 6, seed, "engine-vs-engine");
    const auto z3 = exact::map_exact(c, arch::ibm_qx4(), budget_options(EngineKind::Z3));
    const auto cdcl = exact::map_exact(c, arch::ibm_qx4(), budget_options(EngineKind::Cdcl));
    ASSERT_EQ(z3.status, Status::Optimal);
    ASSERT_EQ(cdcl.status, Status::Optimal);
    EXPECT_EQ(z3.cost_f, cdcl.cost_f) << "seed " << seed;
  }
}

TEST(Integration, MappedQasmRoundTripStaysExecutable) {
  const Circuit c = bench::random_circuit(4, 4, 6, 777, "roundtrip");
  const auto res = exact::map_exact(c, arch::ibm_qx4(), budget_options(EngineKind::Z3));
  ASSERT_EQ(res.status, Status::Optimal);
  const Circuit reparsed = qasm::parse(qasm::write(res.mapped));
  EXPECT_TRUE(exact::satisfies_coupling(reparsed, arch::ibm_qx4()));
}

TEST(Integration, MeasureWiringSurvivesMappingRoundTrip) {
  // The measure→creg re-targeting fix: mapping moves the *qubit* operand of
  // a measure but must keep the classical destination; the writer re-emits
  // the original wiring and a re-parse recovers it (indexed, broadcast and
  // guarded forms all at once).
  const Circuit c = qasm::parse(R"(
    qreg q[3]; creg c[1]; creg m[3];
    h q[0];
    cx q[0], q[1];
    cx q[1], q[2];
    measure q[2] -> m[0];
    measure q[0] -> m[2];
    if (c == 1) measure q[1] -> m[1];
  )",
                                "measure-wiring");
  const auto res = exact::map_exact(c, arch::ibm_qx4(), budget_options(EngineKind::Cdcl));
  ASSERT_EQ(res.status, Status::Optimal);

  const auto wiring = [](const Circuit& circ) {
    std::multiset<std::pair<std::string, int>> bits;
    for (const auto& g : circ) {
      if (g.kind != OpKind::Measure) continue;
      EXPECT_TRUE(g.cbit.has_value()) << g.to_string();
      if (g.cbit) bits.insert({g.cbit->creg, g.cbit->bit});
    }
    return bits;
  };
  const auto original = wiring(c);
  EXPECT_EQ(wiring(res.mapped), original);

  const Circuit reparsed = qasm::parse(qasm::write(res.mapped));
  EXPECT_EQ(wiring(reparsed), original);
  // The guard rides along too.
  int guarded = 0;
  for (const auto& g : reparsed) {
    if (g.kind == OpKind::Measure && g.is_conditional()) ++guarded;
  }
  EXPECT_EQ(guarded, 1);
}

TEST(Integration, HeadlineClaimShapeHoldsInMiniature) {
  // The paper's headline: the heuristic's added gates exceed the minimal
  // added gates by a large margin on average. Check the direction of that
  // claim (heuristic >= minimum, with strict excess on at least one case)
  // on a small sample so the suite stays fast.
  const auto cm = arch::ibm_qx4();
  long long heuristic_total = 0;
  long long minimal_total = 0;
  for (std::uint64_t seed = 600; seed < 604; ++seed) {
    const Circuit c = bench::random_circuit(5, 6, 10, seed, "headline");
    std::vector<Gate> cnots;
    for (const auto& g : c) {
      if (g.is_cnot()) cnots.push_back(g);
    }
    std::vector<std::size_t> pts;
    for (std::size_t k = 1; k < cnots.size(); ++k) pts.push_back(k);
    exact::CostModel costs;
    costs.swap_cost = 7;
    const auto ref = exact::minimal_cost_reference(cnots, 5, cm, pts, costs);
    ASSERT_TRUE(ref.feasible);
    heuristic::StochasticSwapOptions sopt;
    sopt.seed = seed;
    sopt.runs = 5;
    const auto heur = heuristic::map_stochastic_swap(c, cm, sopt);
    heuristic_total += heur.cost_f;
    minimal_total += ref.cost_f;
  }
  EXPECT_GE(heuristic_total, minimal_total);
  EXPECT_GT(heuristic_total, 0);
}

}  // namespace
}  // namespace qxmap
