#include "ir/gate.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

TEST(Gate, KindClassification) {
  EXPECT_TRUE(is_single_qubit_kind(OpKind::H));
  EXPECT_TRUE(is_single_qubit_kind(OpKind::U3));
  EXPECT_FALSE(is_single_qubit_kind(OpKind::Cnot));
  EXPECT_FALSE(is_single_qubit_kind(OpKind::Barrier));
  EXPECT_TRUE(is_two_qubit_kind(OpKind::Cnot));
  EXPECT_TRUE(is_two_qubit_kind(OpKind::Swap));
  EXPECT_FALSE(is_two_qubit_kind(OpKind::X));
}

TEST(Gate, ParameterCounts) {
  EXPECT_EQ(parameter_count(OpKind::H), 0);
  EXPECT_EQ(parameter_count(OpKind::Rz), 1);
  EXPECT_EQ(parameter_count(OpKind::U2), 2);
  EXPECT_EQ(parameter_count(OpKind::U3), 3);
}

TEST(Gate, SingleFactoryValidates) {
  EXPECT_NO_THROW(Gate::single(OpKind::H, 0));
  EXPECT_NO_THROW(Gate::single(OpKind::Rz, 1, {0.5}));
  EXPECT_THROW(Gate::single(OpKind::Cnot, 0), std::invalid_argument);
  EXPECT_THROW(Gate::single(OpKind::H, -1), std::invalid_argument);
  EXPECT_THROW(Gate::single(OpKind::Rz, 0), std::invalid_argument);       // missing param
  EXPECT_THROW(Gate::single(OpKind::H, 0, {1.0}), std::invalid_argument); // extra param
}

TEST(Gate, CnotFactoryValidates) {
  const Gate g = Gate::cnot(2, 0);
  EXPECT_EQ(g.control, 2);
  EXPECT_EQ(g.target, 0);
  EXPECT_TRUE(g.is_cnot());
  EXPECT_THROW(Gate::cnot(1, 1), std::invalid_argument);
  EXPECT_THROW(Gate::cnot(-1, 0), std::invalid_argument);
}

TEST(Gate, SwapFactoryValidates) {
  const Gate g = Gate::swap(1, 3);
  EXPECT_TRUE(g.is_swap());
  EXPECT_THROW(Gate::swap(2, 2), std::invalid_argument);
}

TEST(Gate, QubitsList) {
  EXPECT_EQ(Gate::single(OpKind::T, 3).qubits(), (std::vector<int>{3}));
  EXPECT_EQ(Gate::cnot(1, 4).qubits(), (std::vector<int>{1, 4}));
  EXPECT_EQ(Gate::barrier().qubits(), (std::vector<int>{}));
  EXPECT_EQ(Gate::measure(2).qubits(), (std::vector<int>{2}));
}

TEST(Gate, ToStringRendering) {
  EXPECT_EQ(Gate::cnot(2, 0).to_string(), "cx q2, q0");
  EXPECT_EQ(Gate::single(OpKind::H, 1).to_string(), "h q1");
  EXPECT_EQ(Gate::barrier().to_string(), "barrier");
  const Gate rz = Gate::single(OpKind::Rz, 0, {0.5});
  EXPECT_EQ(rz.to_string(), "rz(0.500000) q0");
}

TEST(Gate, EqualityIncludesParams) {
  EXPECT_EQ(Gate::single(OpKind::Rz, 0, {0.5}), Gate::single(OpKind::Rz, 0, {0.5}));
  EXPECT_NE(Gate::single(OpKind::Rz, 0, {0.5}), Gate::single(OpKind::Rz, 0, {0.6}));
  EXPECT_NE(Gate::cnot(0, 1), Gate::cnot(1, 0));
}

}  // namespace
}  // namespace qxmap
