#include "sim/equivalence.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

TEST(Equivalence, IdenticalCircuitsTrivially) {
  Circuit c(2);
  c.h(0);
  c.cnot(0, 1);
  const auto r = sim::check_mapped_circuit(c, c, {0, 1}, {0, 1});
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Equivalence, RelabeledQubits) {
  Circuit orig(2);
  orig.h(0);
  orig.cnot(0, 1);
  Circuit mapped(3);
  mapped.h(2);
  mapped.cnot(2, 0);
  const auto r = sim::check_mapped_circuit(orig, mapped, {2, 0}, {2, 0});
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Equivalence, HConjugatedCnotAccepted) {
  Circuit orig(2);
  orig.cnot(0, 1);
  Circuit mapped(2);
  mapped.h(0);
  mapped.h(1);
  mapped.cnot(1, 0);
  mapped.h(0);
  mapped.h(1);
  const auto r = sim::check_mapped_circuit(orig, mapped, {0, 1}, {0, 1});
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Equivalence, SwapChangesFinalLayout) {
  Circuit orig(2);
  orig.cnot(0, 1);
  Circuit mapped(2);
  mapped.cnot(0, 1);
  mapped.swap(0, 1);
  const auto ok = sim::check_mapped_circuit(orig, mapped, {0, 1}, {1, 0});
  EXPECT_TRUE(ok.equivalent) << ok.message;
  const auto bad = sim::check_mapped_circuit(orig, mapped, {0, 1}, {0, 1});
  EXPECT_FALSE(bad.equivalent);
}

TEST(Equivalence, WrongGateDetected) {
  Circuit orig(2);
  orig.cnot(0, 1);
  Circuit mapped(2);
  mapped.cnot(1, 0);
  const auto r = sim::check_mapped_circuit(orig, mapped, {0, 1}, {0, 1});
  EXPECT_FALSE(r.equivalent);
}

TEST(Equivalence, PhaseGateOnRelocatedQubit) {
  Circuit orig(2);
  orig.t(1);
  orig.cnot(0, 1);
  Circuit mapped(2);
  mapped.t(0);       // logical 1 lives at physical 0
  mapped.cnot(1, 0);
  const auto r = sim::check_mapped_circuit(orig, mapped, {1, 0}, {1, 0});
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Equivalence, MeasuresAreStripped) {
  Circuit orig(1);
  orig.h(0);
  orig.append(Gate::measure(0));
  Circuit mapped(1);
  mapped.h(0);
  const auto r = sim::check_mapped_circuit(orig, mapped, {0}, {0});
  EXPECT_TRUE(r.equivalent) << r.message;
}

TEST(Equivalence, AncillaMustStayClean) {
  Circuit orig(1);
  orig.h(0);
  Circuit mapped(2);
  mapped.h(0);
  mapped.x(1);  // dirties the ancilla
  const auto r = sim::check_mapped_circuit(orig, mapped, {0}, {0});
  EXPECT_FALSE(r.equivalent);
}

TEST(Equivalence, BadLayoutsRejected) {
  Circuit orig(2);
  orig.cnot(0, 1);
  EXPECT_FALSE(sim::check_mapped_circuit(orig, orig, {0}, {0, 1}).equivalent);
  EXPECT_FALSE(sim::check_mapped_circuit(orig, orig, {0, 5}, {0, 1}).equivalent);
  EXPECT_FALSE(sim::check_mapped_circuit(orig, Circuit(1), {0, 1}, {0, 1}).equivalent);
}

}  // namespace
}  // namespace qxmap
