#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

TEST(Generators, RandomCircuitCountsAreExact) {
  const Circuit c = bench::random_circuit(5, 19, 17, 1, "counts");
  const auto counts = c.counts();
  EXPECT_EQ(counts.single_qubit, 19);
  EXPECT_EQ(counts.cnot, 17);
  EXPECT_EQ(counts.swap, 0);
  EXPECT_EQ(c.num_qubits(), 5);
  EXPECT_EQ(c.name(), "counts");
}

TEST(Generators, DeterministicPerSeed) {
  EXPECT_EQ(bench::random_circuit(4, 5, 5, 7), bench::random_circuit(4, 5, 5, 7));
  EXPECT_NE(bench::random_circuit(4, 5, 5, 7), bench::random_circuit(4, 5, 5, 8));
}

TEST(Generators, CnotOperandsAreDistinct) {
  const Circuit c = bench::random_cnot_circuit(3, 200, 3);
  for (const auto& g : c) {
    ASSERT_TRUE(g.is_cnot());
    EXPECT_NE(g.control, g.target);
    EXPECT_GE(g.control, 0);
    EXPECT_LT(g.control, 3);
    EXPECT_GE(g.target, 0);
    EXPECT_LT(g.target, 3);
  }
}

TEST(Generators, Validation) {
  EXPECT_THROW(bench::random_circuit(1, 0, 5, 1), std::invalid_argument);
  EXPECT_THROW(bench::random_circuit(3, -1, 5, 1), std::invalid_argument);
  EXPECT_NO_THROW(bench::random_circuit(1, 5, 0, 1));
}

TEST(Generators, LayeredCircuitShape) {
  const Circuit c = bench::layered_cnot_circuit(6, 4, 9);
  EXPECT_EQ(c.counts().cnot, 4 * 3);
  EXPECT_THROW(bench::layered_cnot_circuit(1, 2, 0), std::invalid_argument);
}

TEST(Table1Suite, HasAll25Benchmarks) {
  EXPECT_EQ(bench::table1_benchmarks().size(), 25u);
}

TEST(Table1Suite, ShapesMatchThePaper) {
  for (const auto& b : bench::table1_benchmarks()) {
    const Circuit c = b.build();
    EXPECT_EQ(c.num_qubits(), b.n) << b.name;
    EXPECT_EQ(c.counts().single_qubit, b.single_qubit) << b.name;
    EXPECT_EQ(c.counts().cnot, b.cnot) << b.name;
    EXPECT_EQ(b.original_cost(), b.single_qubit + b.cnot);
    // The paper's own numbers are internally consistent: c_min exceeds the
    // original cost, the heuristic never beats the minimum.
    EXPECT_GE(b.paper_cmin, b.original_cost()) << b.name;
    EXPECT_GE(b.paper_ibm, b.paper_cmin) << b.name;
  }
}

TEST(Table1Suite, SpotCheckKnownRows) {
  const auto& b = bench::table1_benchmark("3_17_13");
  EXPECT_EQ(b.n, 3);
  EXPECT_EQ(b.original_cost(), 36);
  EXPECT_EQ(b.paper_cmin, 59);
  EXPECT_EQ(b.paper_ibm, 80);
  const auto& q5 = bench::table1_benchmark("qe_q_5");
  EXPECT_EQ(q5.original_cost(), 107);
}

TEST(Table1Suite, BuildsAreStableAcrossCalls) {
  const auto& b = bench::table1_benchmark("alu-v0_27");
  EXPECT_EQ(b.build(), b.build());
}

TEST(Table1Suite, UnknownNameThrows) {
  EXPECT_THROW((void)bench::table1_benchmark("not-a-benchmark"), std::invalid_argument);
}

TEST(Table1Suite, PaperExampleShape) {
  const Circuit c = bench::paper_example_circuit();
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.counts().cnot, 5);
  EXPECT_EQ(c.counts().single_qubit, 3);
}

}  // namespace
}  // namespace qxmap
