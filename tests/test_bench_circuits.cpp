#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ir/fingerprint.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"

namespace qxmap {
namespace {

TEST(Generators, RandomCircuitCountsAreExact) {
  const Circuit c = bench::random_circuit(5, 19, 17, 1, "counts");
  const auto counts = c.counts();
  EXPECT_EQ(counts.single_qubit, 19);
  EXPECT_EQ(counts.cnot, 17);
  EXPECT_EQ(counts.swap, 0);
  EXPECT_EQ(c.num_qubits(), 5);
  EXPECT_EQ(c.name(), "counts");
}

TEST(Generators, DeterministicPerSeed) {
  EXPECT_EQ(bench::random_circuit(4, 5, 5, 7), bench::random_circuit(4, 5, 5, 7));
  EXPECT_NE(bench::random_circuit(4, 5, 5, 7), bench::random_circuit(4, 5, 5, 8));
}

TEST(Generators, CnotOperandsAreDistinct) {
  const Circuit c = bench::random_cnot_circuit(3, 200, 3);
  for (const auto& g : c) {
    ASSERT_TRUE(g.is_cnot());
    EXPECT_NE(g.control, g.target);
    EXPECT_GE(g.control, 0);
    EXPECT_LT(g.control, 3);
    EXPECT_GE(g.target, 0);
    EXPECT_LT(g.target, 3);
  }
}

TEST(Generators, Validation) {
  EXPECT_THROW(bench::random_circuit(1, 0, 5, 1), std::invalid_argument);
  EXPECT_THROW(bench::random_circuit(3, -1, 5, 1), std::invalid_argument);
  EXPECT_NO_THROW(bench::random_circuit(1, 5, 0, 1));
}

TEST(Generators, LayeredCircuitShape) {
  const Circuit c = bench::layered_cnot_circuit(6, 4, 9);
  EXPECT_EQ(c.counts().cnot, 4 * 3);
  EXPECT_THROW(bench::layered_cnot_circuit(1, 2, 0), std::invalid_argument);
}

TEST(Su4Generator, StructureCountsAreExact) {
  // Each layer pairs floor(n/2) disjoint qubit pairs, each realised as a
  // 3-CNOT SU(4) block; an odd qubit count leaves one qubit with a lone u3.
  for (const auto& [n, layers] : {std::pair{4, 3}, std::pair{5, 2}, std::pair{27, 4}}) {
    const Circuit c = bench::su4_random_circuit(n, layers, 11, "su4-shape");
    EXPECT_EQ(c.num_qubits(), n);
    EXPECT_EQ(c.counts().cnot, 3 * (n / 2) * layers) << "n=" << n;
    EXPECT_EQ(c.counts().swap, 0);
    EXPECT_EQ(c.name(), "su4-shape");
  }
  EXPECT_EQ(bench::su4_random_circuit(3, 2, 1).size(),
            bench::su4_random_circuit(3, 2, 2).size());  // size is seed-free
}

TEST(Su4Generator, DeterministicPerSeedBitIdentical) {
  // Same seed ⇒ bit-identical gate stream (and hence fingerprint) across
  // two invocations — the property the result cache and the cross-repo
  // reproducibility story both lean on.
  const Circuit a = bench::su4_random_circuit(5, 3, 42, "su4-det");
  const Circuit b = bench::su4_random_circuit(5, 3, 42, "su4-det");
  EXPECT_EQ(a, b);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_NE(fingerprint(a), fingerprint(bench::su4_random_circuit(5, 3, 43, "su4-det")));
}

TEST(Su4Generator, FingerprintSurvivesQasmRoundTrip) {
  // Angles are drawn as raw doubles; the generator must stay within the
  // QASM writer's 12-decimal precision so parse(write(c)) re-reads the
  // exact same parameters the fingerprint hashed.
  for (const std::uint64_t seed : {1u, 7u, 99u}) {
    const Circuit c = bench::su4_random_circuit(4, 2, seed, "su4-rt");
    const Circuit back = qasm::parse(qasm::write(c), c.name());
    EXPECT_EQ(fingerprint(back), fingerprint(c)) << "seed " << seed;
  }
}

TEST(Su4Generator, NoFingerprintCollisionOver64Seeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    seen.insert(fingerprint(bench::su4_random_circuit(5, 2, seed, "su4-sweep")));
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Su4Generator, Validation) {
  EXPECT_THROW(bench::su4_random_circuit(1, 2, 1), std::invalid_argument);
  EXPECT_THROW(bench::su4_random_circuit(4, -1, 1), std::invalid_argument);
  EXPECT_NO_THROW(bench::su4_random_circuit(2, 0, 1));
}

TEST(Table1Suite, HasAll25Benchmarks) {
  EXPECT_EQ(bench::table1_benchmarks().size(), 25u);
}

TEST(Table1Suite, ShapesMatchThePaper) {
  for (const auto& b : bench::table1_benchmarks()) {
    const Circuit c = b.build();
    EXPECT_EQ(c.num_qubits(), b.n) << b.name;
    EXPECT_EQ(c.counts().single_qubit, b.single_qubit) << b.name;
    EXPECT_EQ(c.counts().cnot, b.cnot) << b.name;
    EXPECT_EQ(b.original_cost(), b.single_qubit + b.cnot);
    // The paper's own numbers are internally consistent: c_min exceeds the
    // original cost, the heuristic never beats the minimum.
    EXPECT_GE(b.paper_cmin, b.original_cost()) << b.name;
    EXPECT_GE(b.paper_ibm, b.paper_cmin) << b.name;
  }
}

TEST(Table1Suite, SpotCheckKnownRows) {
  const auto& b = bench::table1_benchmark("3_17_13");
  EXPECT_EQ(b.n, 3);
  EXPECT_EQ(b.original_cost(), 36);
  EXPECT_EQ(b.paper_cmin, 59);
  EXPECT_EQ(b.paper_ibm, 80);
  const auto& q5 = bench::table1_benchmark("qe_q_5");
  EXPECT_EQ(q5.original_cost(), 107);
}

TEST(Table1Suite, BuildsAreStableAcrossCalls) {
  const auto& b = bench::table1_benchmark("alu-v0_27");
  EXPECT_EQ(b.build(), b.build());
}

TEST(Table1Suite, UnknownNameThrows) {
  EXPECT_THROW((void)bench::table1_benchmark("not-a-benchmark"), std::invalid_argument);
}

TEST(Table1Suite, PaperExampleShape) {
  const Circuit c = bench::paper_example_circuit();
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_EQ(c.counts().cnot, 5);
  EXPECT_EQ(c.counts().single_qubit, 3);
}

}  // namespace
}  // namespace qxmap
