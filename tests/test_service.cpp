/// Mapping-service harness (api/service.hpp): cache-hit bit-identity, LRU
/// eviction order, options-digest equivalence classes (performance knobs
/// must share entries; result-affecting options must fork them), in-flight
/// deduplication under concurrency (exactly one solve for N identical
/// requests), failure propagation without cache poisoning, and a mixed
/// multi-architecture hammer meant to run under TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/service.hpp"
#include "arch/architectures.hpp"
#include "obs/trace.hpp"
#include "arch/coupling_json.hpp"
#include "bench_circuits/generators.hpp"

namespace qxmap {
namespace {

using api::MappingService;
using exact::MappingResult;

Circuit small_circuit(const std::string& name, std::uint64_t seed = 7) {
  Circuit c = bench::random_circuit(3, 4, 3, seed);
  c.set_name(name);
  return c;
}

MapOptions exact_options() {
  MapOptions o;
  o.exact.use_subsets = true;
  o.exact.budget = std::chrono::milliseconds(30000);
  return o;
}

/// The cache-hit identity: every result field must equal the populating
/// solve's, except the documented exclusions — `from_cache` itself, the
/// re-measured `seconds`, and nothing else. The engine-stats counters
/// (`bound_polls`, `bound_tightenings`) are stored values, so they are
/// *included*: a hit replays them verbatim.
void expect_hit_identical(const MappingResult& fresh, const MappingResult& hit) {
  EXPECT_TRUE(hit.from_cache);
  EXPECT_FALSE(fresh.from_cache);
  EXPECT_EQ(hit.status, fresh.status);
  EXPECT_EQ(hit.cost_f, fresh.cost_f);
  EXPECT_EQ(hit.swaps_inserted, fresh.swaps_inserted);
  EXPECT_EQ(hit.cnots_reversed, fresh.cnots_reversed);
  EXPECT_EQ(hit.initial_layout, fresh.initial_layout);
  EXPECT_EQ(hit.final_layout, fresh.final_layout);
  EXPECT_EQ(hit.instances_solved, fresh.instances_solved);
  EXPECT_EQ(hit.permutation_points, fresh.permutation_points);
  EXPECT_EQ(hit.bound_polls, fresh.bound_polls);
  EXPECT_EQ(hit.bound_tightenings, fresh.bound_tightenings);
  EXPECT_EQ(hit.engine_name, fresh.engine_name);
  EXPECT_EQ(hit.verified, fresh.verified);
  EXPECT_EQ(hit.verify_message, fresh.verify_message);
  EXPECT_EQ(hit.mapped, fresh.mapped);
  EXPECT_EQ(hit.routed_skeleton, fresh.routed_skeleton);
  EXPECT_EQ(hit.seconds, fresh.seconds);  // stored, not re-measured
}

TEST(MappingServiceCache, HitIsBitIdenticalToThePopulatingSolve) {
  MappingService service(4);
  const Circuit c = small_circuit("svc-identity");
  const auto cm = arch::ibm_qx4();
  const MappingResult fresh = service.map(c, cm, exact_options());
  const MappingResult hit = service.map(c, cm, exact_options());
  expect_hit_identical(fresh, hit);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.solves, 1u);
}

TEST(MappingServiceCache, CachedHitEmitsCacheHitSpanAndNoSolverSpans) {
  // With tracing on, a warm hit must show up as a `service.cache_hit` span
  // and must NOT re-enter any solver layer: zero exact.*, cdcl.*, or
  // executor.* spans may be emitted by the hit.
  MappingService service(4);
  const Circuit c = small_circuit("svc-trace-hit");
  const auto cm = arch::ibm_qx4();
  (void)service.map(c, cm, exact_options());  // populate the cache untraced

  const bool was_enabled = obs::TraceRecorder::enabled();
  obs::TraceRecorder::set_enabled(false);
  obs::TraceRecorder::instance().clear();
  obs::TraceRecorder::set_enabled(true);
  const MappingResult hit = service.map(c, cm, exact_options());
  obs::TraceRecorder::set_enabled(was_enabled);

  EXPECT_TRUE(hit.from_cache);
  const auto events = obs::TraceRecorder::instance().snapshot();
  bool saw_request = false;
  bool saw_cache_hit = false;
  for (const auto& e : events) {
    if (e.name == "service.map") saw_request = true;
    if (e.name == "service.cache_hit") saw_cache_hit = true;
    const bool solver_span = e.name.rfind("exact.", 0) == 0 ||
                             e.name.rfind("cdcl.", 0) == 0 ||
                             e.name.rfind("z3.", 0) == 0 ||
                             e.name.rfind("executor.", 0) == 0;
    EXPECT_FALSE(solver_span) << "warm hit emitted solver span " << e.name;
  }
  EXPECT_TRUE(saw_request);
  EXPECT_TRUE(saw_cache_hit);
  obs::TraceRecorder::instance().clear();
}

TEST(MappingServiceCache, HitRestampsNamesForTheRequestingCircuit) {
  // Two circuits with identical gate streams but different names share a
  // fingerprint; the hit must carry the *requester's* name, as a fresh
  // solve would.
  MappingService service(4);
  const auto cm = arch::ibm_qx4();
  const MappingResult first = service.map(small_circuit("alpha"), cm, exact_options());
  const MappingResult second = service.map(small_circuit("beta"), cm, exact_options());
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(first.mapped.name(), "alpha/mapped");
  EXPECT_EQ(second.mapped.name(), "beta/mapped");
  EXPECT_EQ(second.routed_skeleton.name(), "beta/routed-skeleton");
  EXPECT_EQ(second.mapped.gates(), first.mapped.gates());
}

TEST(MappingServiceCache, LruEvictionDropsLeastRecentlyUsed) {
  MappingService service(2);
  const auto cm = arch::ibm_qx4();
  const Circuit a = small_circuit("lru-a", 11);
  const Circuit b = small_circuit("lru-b", 22);
  const Circuit c = small_circuit("lru-c", 33);
  const MapOptions o = exact_options();

  (void)service.map(a, cm, o);  // cache: [a]
  (void)service.map(b, cm, o);  // cache: [b, a]
  EXPECT_EQ(service.size(), 2u);
  EXPECT_TRUE(service.map(a, cm, o).from_cache);  // a refreshed: [a, b]
  (void)service.map(c, cm, o);                    // evicts b:    [c, a]
  EXPECT_EQ(service.size(), 2u);
  EXPECT_EQ(service.stats().evictions, 1u);
  EXPECT_TRUE(service.map(a, cm, o).from_cache);   // a survived
  EXPECT_TRUE(service.map(c, cm, o).from_cache);   // c cached
  EXPECT_FALSE(service.map(b, cm, o).from_cache);  // b was the eviction victim
}

TEST(MappingServiceCache, ZeroCapacityNeverCaches) {
  MappingService service(0);
  const Circuit c = small_circuit("svc-nocache");
  const auto cm = arch::ibm_qx4();
  EXPECT_FALSE(service.map(c, cm, exact_options()).from_cache);
  EXPECT_FALSE(service.map(c, cm, exact_options()).from_cache);
  EXPECT_EQ(service.size(), 0u);
  EXPECT_EQ(service.stats().solves, 2u);
}

TEST(MappingServiceKey, PerformanceKnobsDoNotForkEntries) {
  const Circuit c = small_circuit("svc-key");
  const auto cm = arch::ibm_qx4();
  MapOptions base = exact_options();
  base.exact.num_threads = 1;

  MapOptions threads8 = base;
  threads8.exact.num_threads = 8;
  EXPECT_EQ(MappingService::cache_key(c, cm, base), MappingService::cache_key(c, cm, threads8));

  MapOptions toggles = base;
  toggles.exact.work_stealing = exact::Toggle::Off;
  toggles.exact.cooperative_tightening = exact::Toggle::Off;
  EXPECT_EQ(MappingService::cache_key(c, cm, base), MappingService::cache_key(c, cm, toggles));

  // End to end: a 1-thread miss then an 8-thread request — the latter must
  // hit the former's entry.
  MappingService service(4);
  EXPECT_FALSE(service.map(c, cm, base).from_cache);
  EXPECT_TRUE(service.map(c, cm, threads8).from_cache);
  EXPECT_EQ(service.stats().solves, 1u);
}

TEST(MappingServiceKey, ResultAffectingOptionsForkEntries) {
  const Circuit c = small_circuit("svc-fork");
  const auto cm = arch::ibm_qx4();
  const MapOptions base = exact_options();
  const std::string base_key = MappingService::cache_key(c, cm, base);

  MapOptions objective = base;
  objective.exact.optimization = reason::OptimizationMode::BinarySearch;
  EXPECT_NE(MappingService::cache_key(c, cm, objective), base_key);

  MapOptions budget = base;
  budget.exact.budget = std::chrono::milliseconds(12345);
  EXPECT_NE(MappingService::cache_key(c, cm, budget), base_key);

  MapOptions strategy = base;
  strategy.exact.strategy = exact::PermutationStrategy::OddGates;
  EXPECT_NE(MappingService::cache_key(c, cm, strategy), base_key);

  MapOptions costs = base;
  costs.exact.costs.reverse_cost = 5;
  EXPECT_NE(MappingService::cache_key(c, cm, costs), base_key);

  MapOptions method = base;
  method.method = Method::Sabre;
  EXPECT_NE(MappingService::cache_key(c, cm, method), base_key);

  MapOptions seed = method;
  seed.sabre.seed = 99;
  EXPECT_NE(MappingService::cache_key(c, cm, seed), MappingService::cache_key(c, cm, method));

  // Architecture forks too, same circuit and options.
  EXPECT_NE(MappingService::cache_key(c, arch::ibm_qx2(), base), base_key);
}

TEST(MappingServiceKey, CircuitNameDoesNotForkEntries) {
  const auto cm = arch::ibm_qx4();
  EXPECT_EQ(MappingService::cache_key(small_circuit("x"), cm, exact_options()),
            MappingService::cache_key(small_circuit("y"), cm, exact_options()));
}

TEST(MappingServiceKey, CostObjectiveForksEntriesForEveryMethod) {
  // Regression: a gate-count result must never be replayed for an
  // error-weighted request (or vice versa) — for ANY mapping method.
  const Circuit c = small_circuit("svc-objective");
  const auto cm = arch::ibm_qx4();
  for (const Method method : {Method::Exact, Method::StochasticSwap, Method::AStar,
                              Method::Sabre, Method::LayerWeight}) {
    MapOptions gate = exact_options();
    gate.method = method;
    MapOptions weighted = gate;
    switch (method) {
      case Method::Exact:
        weighted.exact.costs.objective = exact::CostObjective::ErrorWeighted;
        break;
      case Method::StochasticSwap:
        weighted.stochastic.costs.objective = exact::CostObjective::ErrorWeighted;
        break;
      case Method::AStar:
        weighted.astar.costs.objective = exact::CostObjective::ErrorWeighted;
        break;
      case Method::Sabre:
        weighted.sabre.costs.objective = exact::CostObjective::ErrorWeighted;
        break;
      case Method::LayerWeight:
        weighted.layer_weight.costs.objective = exact::CostObjective::ErrorWeighted;
        break;
    }
    EXPECT_NE(MappingService::cache_key(c, cm, gate),
              MappingService::cache_key(c, cm, weighted))
        << "method " << static_cast<int>(method);
  }
}

TEST(MappingServiceKey, ErrorWeightedKeysSeeTheArchitectureCalibration) {
  // Two JSON maps with identical structure but different calibration share
  // a structural fingerprint — under ErrorWeighted the noise fingerprint
  // must fork the cache key anyway; under GateCount it must NOT (the rates
  // are irrelevant to the solve, so the entries should be shared).
  const auto quiet = arch::CouplingMap::from_json(
      R"({"qubits": 3, "edges": [{"control": 0, "target": 1, "error": 0.01}, [1, 2]]})");
  const auto noisy = arch::CouplingMap::from_json(
      R"({"qubits": 3, "edges": [{"control": 0, "target": 1, "error": 0.08}, [1, 2]]})");
  ASSERT_EQ(quiet.fingerprint(), noisy.fingerprint());
  const Circuit c = small_circuit("svc-calibration");

  MapOptions gate = exact_options();
  EXPECT_EQ(MappingService::cache_key(c, quiet, gate),
            MappingService::cache_key(c, noisy, gate));

  MapOptions weighted = exact_options();
  weighted.exact.costs.objective = exact::CostObjective::ErrorWeighted;
  EXPECT_NE(MappingService::cache_key(c, quiet, weighted),
            MappingService::cache_key(c, noisy, weighted));
}

TEST(MappingServiceKey, CostObjectiveForksBehaviorallyNotJustTextually) {
  // End to end with a counting solver: one request per objective must mean
  // two solves, never a replay.
  std::atomic<int> calls{0};
  MappingService service(4, [&](const Circuit& c, const arch::CouplingMap&, const MapOptions&) {
    ++calls;
    MappingResult r;
    r.mapped = Circuit(5, c.name() + "/mapped");
    r.routed_skeleton = Circuit(5, c.name() + "/routed-skeleton");
    r.status = reason::Status::Optimal;
    return r;
  });
  const Circuit c = small_circuit("svc-objective-e2e");
  const auto cm = arch::ibm_qx4();
  MapOptions gate = exact_options();
  MapOptions weighted = exact_options();
  weighted.exact.costs.objective = exact::CostObjective::ErrorWeighted;
  EXPECT_FALSE(service.map(c, cm, gate).from_cache);
  EXPECT_FALSE(service.map(c, cm, weighted).from_cache);
  EXPECT_EQ(calls.load(), 2);
  // Each objective replays from its own entry afterwards.
  EXPECT_TRUE(service.map(c, cm, gate).from_cache);
  EXPECT_TRUE(service.map(c, cm, weighted).from_cache);
  EXPECT_EQ(calls.load(), 2);
}

// --- In-flight deduplication --------------------------------------------

/// Solver stub with a controllable gate so tests decide exactly when the
/// leader's solve completes (and therefore how many callers coalesce).
struct GatedSolver {
  std::atomic<int> calls{0};
  std::atomic<bool> release{false};

  MappingService::SolveFn fn() {
    return [this](const Circuit& c, const arch::CouplingMap&, const MapOptions&) {
      ++calls;
      while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      MappingResult r;
      r.mapped = Circuit(5, c.name() + "/mapped");
      r.routed_skeleton = Circuit(5, c.name() + "/routed-skeleton");
      r.status = reason::Status::Optimal;
      r.cost_f = 42;
      return r;
    };
  }
};

TEST(MappingServiceDedup, NIdenticalConcurrentRequestsShareOneSolve) {
  constexpr int kCallers = 8;
  GatedSolver solver;
  MappingService service(4, solver.fn());
  const Circuit c = small_circuit("svc-dedup");
  const auto cm = arch::ibm_qx4();

  std::vector<std::thread> callers;
  std::vector<MappingResult> results(kCallers);
  std::atomic<int> done{0};
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = service.map(c, cm, exact_options());
      ++done;
    });
  }
  // Wait until every caller has either joined the in-flight solve or hit
  // the cache, then let the leader finish.
  while (service.stats().requests < kCallers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  solver.release = true;
  for (auto& t : callers) t.join();

  EXPECT_EQ(solver.calls.load(), 1);  // exactly one solve
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kCallers));
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.solves, 1u);
  // Every non-leader either coalesced onto the in-flight solve or (having
  // arrived after completion) hit the cache.
  EXPECT_EQ(stats.coalesced + stats.hits, static_cast<std::uint64_t>(kCallers - 1));
  for (const auto& r : results) {
    EXPECT_EQ(r.cost_f, 42);
    EXPECT_EQ(r.status, reason::Status::Optimal);
  }
}

TEST(MappingServiceDedup, FailingSolveIsRetriedNotCached) {
  std::atomic<int> calls{0};
  MappingService service(4, [&](const Circuit& c, const arch::CouplingMap&, const MapOptions&) {
    if (++calls == 1) throw std::runtime_error("transient solver failure");
    MappingResult r;
    r.mapped = Circuit(5, c.name() + "/mapped");
    r.routed_skeleton = Circuit(5, c.name() + "/routed-skeleton");
    r.status = reason::Status::Optimal;
    return r;
  });
  const Circuit c = small_circuit("svc-retry");
  const auto cm = arch::ibm_qx4();
  EXPECT_THROW((void)service.map(c, cm, exact_options()), std::runtime_error);
  EXPECT_EQ(service.size(), 0u);  // nothing cached
  EXPECT_EQ(service.stats().failures, 1u);
  // The retry leads a fresh solve (no poisoned in-flight entry to join).
  const MappingResult r = service.map(c, cm, exact_options());
  EXPECT_FALSE(r.from_cache);
  EXPECT_EQ(r.status, reason::Status::Optimal);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(service.stats().solves, 1u);
}

TEST(MappingServiceDedup, FailurePropagatesToEveryJoiner) {
  GatedSolver solver;
  std::atomic<int> calls{0};
  MappingService service(4, [&](const Circuit&, const arch::CouplingMap&, const MapOptions&) {
    ++calls;
    while (!solver.release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    throw std::runtime_error("shared failure");
    return MappingResult{};  // unreachable
  });
  const Circuit c = small_circuit("svc-joinfail");
  const auto cm = arch::ibm_qx4();

  constexpr int kCallers = 4;
  std::atomic<int> threw{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&] {
      try {
        (void)service.map(c, cm, exact_options());
      } catch (const std::runtime_error&) {
        ++threw;
      }
    });
  }
  while (service.stats().requests < kCallers) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  solver.release = true;
  for (auto& t : callers) t.join();
  EXPECT_EQ(threw.load(), kCallers);  // leader and every joiner
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(service.size(), 0u);
}

// --- Mixed hammer (race detector workload) ------------------------------

/// Many threads, four architectures, a handful of circuit shapes, repeated
/// keys: every data path of the service (hit, miss, coalesce, evict) under
/// real solver traffic. Assertions are deliberately coarse — the point of
/// this test is being race-free under `-fsanitize=thread` (the CI tsan
/// job), not the exact interleaving counts.
TEST(MappingServiceStress, MixedHammerAcrossArchitecturesIsRaceFree) {
  MappingService service(6);
  const std::vector<arch::CouplingMap> archs = {arch::ibm_qx2(), arch::ibm_qx4(),
                                                arch::ibm_qx5(), arch::ibm_tokyo()};
  MapOptions o = exact_options();
  o.exact.budget = std::chrono::milliseconds(30000);

  constexpr int kThreads = 8;
  constexpr int kIterations = 6;
  std::atomic<int> completed{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int it = 0; it < kIterations; ++it) {
        // Shared seeds across threads force hit/coalesce collisions.
        const auto seed = static_cast<std::uint64_t>(1 + (t + it) % 3);
        const auto& cm = archs[static_cast<std::size_t>((t + it) % archs.size())];
        Circuit c = bench::random_circuit(3, 3, 2, seed);
        c.set_name("hammer-" + std::to_string(seed));
        const MappingResult r = service.map(c, cm, o);
        if (r.status == reason::Status::Optimal || r.status == reason::Status::Feasible) {
          ++completed;
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(completed.load(), kThreads * kIterations);
  const auto stats = service.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kThreads * kIterations));
  EXPECT_EQ(stats.hits + stats.coalesced + stats.misses, stats.requests);
  EXPECT_EQ(stats.solves + stats.failures, stats.misses);
  EXPECT_EQ(stats.failures, 0u);
}

}  // namespace
}  // namespace qxmap
