/// Property-style sweeps over common/permutation and common/gf2: algebraic
/// identities (compose/invert, rank/from_rank round-trips, GF(2) rank
/// invariants) checked over many seeded random instances via common/rng —
/// plus the circuit-fingerprint properties (ir/fingerprint.hpp: QASM
/// round-trip and register-renaming stability, mutation sensitivity,
/// collision-freedom over the corpus) and a seeded random-circuit sweep
/// asserting the parallel exact mapper agrees with its serial run on every
/// built-in architecture.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <functional>
#include <map>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "arch/architectures.hpp"
#include "bench_circuits/generators.hpp"
#include "common/gf2.hpp"
#include "common/permutation.hpp"
#include "common/rng.hpp"
#include "exact/exact_mapper.hpp"
#include "ir/fingerprint.hpp"
#include "qasm/parser.hpp"
#include "qasm/writer.hpp"

namespace qxmap {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

Permutation random_permutation(std::size_t m, Rng& rng) {
  std::vector<int> images(m);
  std::iota(images.begin(), images.end(), 0);
  rng.shuffle(images);
  return Permutation(std::move(images));
}

/// Random invertible GF(2) matrix: start from the identity and apply row
/// operations (each preserves invertibility).
Gf2Matrix random_invertible(std::size_t n, Rng& rng, int ops = 64) {
  Gf2Matrix m = Gf2Matrix::identity(n);
  if (n < 2) return m;  // no distinct row pair to operate on
  for (int k = 0; k < ops; ++k) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    auto b = static_cast<std::size_t>(rng.next_below(n));
    while (b == a) b = static_cast<std::size_t>(rng.next_below(n));
    if (rng.next_bool(0.5)) {
      m.xor_row(a, b);
    } else {
      m.swap_rows(a, b);
    }
  }
  return m;
}

TEST(PermutationProperties, ComposeWithInverseIsIdentity) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    for (std::size_t m = 1; m <= 8; ++m) {
      const Permutation p = random_permutation(m, rng);
      EXPECT_TRUE(p.then(p.inverse()).is_identity()) << p.to_string();
      EXPECT_TRUE(p.inverse().then(p).is_identity()) << p.to_string();
      EXPECT_EQ(p.inverse().inverse(), p);
    }
  }
}

TEST(PermutationProperties, CompositionIsAssociativeAndAntiDistributesOverInverse) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t m = 7;
    const Permutation a = random_permutation(m, rng);
    const Permutation b = random_permutation(m, rng);
    const Permutation c = random_permutation(m, rng);
    EXPECT_EQ(a.then(b).then(c), a.then(b.then(c)));
    // (a.then(b))^-1 = b^-1 . a^-1 in `then` order.
    EXPECT_EQ(a.then(b).inverse(), b.inverse().then(a.inverse()));
  }
}

TEST(PermutationProperties, RankRoundTripsThroughFromRank) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    for (std::size_t m = 1; m <= 8; ++m) {
      const Permutation p = random_permutation(m, rng);
      const std::uint64_t r = p.rank();
      EXPECT_LT(r, Permutation::factorial(m));
      EXPECT_EQ(Permutation::from_rank(m, r), p);
      EXPECT_EQ(Permutation::from_rank(m, r).rank(), r);
    }
  }
}

TEST(PermutationProperties, TranspositionIsAnInvolution) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t m = 6;
    const Permutation p = random_permutation(m, rng);
    const int a = rng.next_int(0, static_cast<int>(m) - 1);
    int b = rng.next_int(0, static_cast<int>(m) - 1);
    if (a == b) b = (b + 1) % static_cast<int>(m);
    const Permutation q = p.with_transposition(a, b);
    EXPECT_NE(q, p);
    EXPECT_EQ(q.with_transposition(a, b), p);
    // One transposition changes the minimal transposition count by exactly 1.
    EXPECT_EQ(std::abs(q.min_transpositions() - p.min_transpositions()), 1);
  }
}

TEST(PermutationProperties, CycleStructureAccountsForEveryElement) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t m = 8;
    const Permutation p = random_permutation(m, rng);
    std::size_t in_cycles = 0;
    int cycle_excess = 0;  // sum over cycles of (len - 1) = min_transpositions
    for (const auto& cycle : p.nontrivial_cycles()) {
      EXPECT_GE(cycle.size(), 2u);
      in_cycles += cycle.size();
      cycle_excess += static_cast<int>(cycle.size()) - 1;
      // Each listed cycle is consistent with the permutation's action.
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        EXPECT_EQ(p.at(static_cast<std::size_t>(cycle[i])), cycle[(i + 1) % cycle.size()]);
      }
    }
    EXPECT_LE(in_cycles, m);
    EXPECT_EQ(cycle_excess, p.min_transpositions());
  }
}

TEST(Gf2Properties, PermutationMatricesRespectComposition) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t m = 6;
    const Permutation a = random_permutation(m, rng);
    const Permutation b = random_permutation(m, rng);
    const Gf2Matrix ma = Gf2Matrix::from_permutation(a);
    const Gf2Matrix mb = Gf2Matrix::from_permutation(b);
    // from_permutation(pi) maps e_i -> e_{pi(i)}, so applying a then b is
    // the product M_b * M_a.
    EXPECT_EQ(mb.multiply(ma), Gf2Matrix::from_permutation(a.then(b)));
    EXPECT_EQ(ma.rank(), m);
    EXPECT_TRUE(ma.invertible());
    EXPECT_EQ(ma.inverse(), Gf2Matrix::from_permutation(a.inverse()));
  }
}

TEST(Gf2Properties, RowOperationsPreserveRank) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    for (const std::size_t n : {3u, 7u, 64u, 65u}) {
      Gf2Matrix m = random_invertible(n, rng);
      EXPECT_EQ(m.rank(), n);
      EXPECT_TRUE(m.invertible());
      // xor_row twice with the same pair restores the matrix.
      const Gf2Matrix before = m;
      m.xor_row(0, n - 1);
      m.xor_row(0, n - 1);
      EXPECT_EQ(m, before);
      m.swap_rows(0, n - 1);
      m.swap_rows(0, n - 1);
      EXPECT_EQ(m, before);
    }
  }
}

TEST(Gf2Properties, InverseIsTwoSided) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t n = 9;
    const Gf2Matrix m = random_invertible(n, rng);
    const Gf2Matrix inv = m.inverse();
    const Gf2Matrix id = Gf2Matrix::identity(n);
    EXPECT_EQ(m.multiply(inv), id);
    EXPECT_EQ(inv.multiply(m), id);
    EXPECT_EQ(inv.inverse(), m);
  }
}

TEST(Gf2Properties, ProductRankIsBoundedAndInvertiblesCompose) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t n = 8;
    const Gf2Matrix a = random_invertible(n, rng);
    Gf2Matrix singular(n);  // zero matrix: rank 0
    EXPECT_EQ(singular.rank(), 0u);
    EXPECT_FALSE(singular.invertible());
    // rank(A * B) <= min(rank A, rank B); invertible * invertible stays full.
    EXPECT_EQ(a.multiply(singular).rank(), 0u);
    const Gf2Matrix b = random_invertible(n, rng);
    EXPECT_EQ(a.multiply(b).rank(), n);
  }
}

TEST(Gf2Properties, RankMatchesNumberOfIndependentRowsByConstruction) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t n = 10;
    // Build a matrix whose first k rows are an invertible k x k block on the
    // leading coordinates and whose remaining rows duplicate earlier rows:
    // its rank is exactly k.
    const auto k = static_cast<std::size_t>(rng.next_int(1, static_cast<int>(n)));
    const Gf2Matrix block = random_invertible(k, rng);
    Gf2Matrix m(n);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) m.set(i, j, block.get(i, j));
    }
    for (std::size_t i = k; i < n; ++i) {
      const auto src = static_cast<std::size_t>(rng.next_below(k));
      for (std::size_t j = 0; j < n; ++j) m.set(i, j, m.get(src, j));
    }
    EXPECT_EQ(m.rank(), k);
    EXPECT_EQ(m.invertible(), k == n);
  }
}

// --- Circuit fingerprint properties (ir/fingerprint.hpp) -----------------

std::string corpus_path(const std::string& file) {
  return std::string(QXMAP_SOURCE_DIR) + "/tests/qasm_corpus/" + file;
}

constexpr const char* kCorpusFiles[] = {
    "teleport.qasm",        "adder_majority.qasm", "qft4.qasm",         "qec_bitflip.qasm",
    "expr_param_gates.qasm", "pairwise_entangle.qasm", "swap_routing.qasm",
};

/// Circuits whose gate streams differ must fingerprint differently; this
/// rebuilds `c` with one surgical edit applied by `edit(gates)`.
Circuit rebuilt(const Circuit& c, int num_qubits,
                const std::function<void(std::vector<Gate>&)>& edit) {
  std::vector<Gate> gates(c.begin(), c.end());
  edit(gates);
  Circuit out(num_qubits, c.name());
  for (auto& g : gates) out.append(std::move(g));
  return out;
}

TEST(FingerprintProperties, StableUnderQasmRoundTrip) {
  // parse → write → parse is the canonical text round-trip: parameters are
  // re-read at the writer's 12-decimal precision, which the fingerprint
  // hashes at, so the hash must survive any number of round trips.
  for (const auto* file : kCorpusFiles) {
    SCOPED_TRACE(file);
    const Circuit c = qasm::parse_file(corpus_path(file));
    const Circuit once = qasm::parse(qasm::write(c), c.name());
    const Circuit twice = qasm::parse(qasm::write(once), c.name());
    EXPECT_EQ(fingerprint(once), fingerprint(c));
    EXPECT_EQ(fingerprint(twice), fingerprint(c));
  }
  for (const auto seed : kSeeds) {
    const Circuit c = bench::random_circuit(4, 6, 5, seed, "fp-rt");
    const Circuit back = qasm::parse(qasm::write(c), c.name());
    EXPECT_EQ(fingerprint(back), fingerprint(c)) << "seed " << seed;
  }
}

TEST(FingerprintProperties, CircuitNameIsNotSignificant) {
  for (const auto seed : kSeeds) {
    Circuit a = bench::random_circuit(4, 4, 4, seed, "one-name");
    Circuit b = a;
    b.set_name("an entirely different name");
    EXPECT_EQ(fingerprint(a), fingerprint(b));
  }
}

TEST(FingerprintProperties, StableUnderClassicalRegisterRenaming) {
  // Same wiring, cregs renamed "c"/"flags" -> "result"/"syndrome": the
  // fingerprint identifies registers by first appearance, not by name.
  const auto build = [](const std::string& r1, const std::string& r2) {
    Circuit c(3, "rename");
    c.h(0);
    c.append(Gate::measure(0, r1, 0));
    Gate guarded = Gate::single(OpKind::X, 1);
    guarded.condition = Condition{r1, 2, 1};
    c.append(guarded);
    c.append(Gate::measure(1, r2, 1));
    Gate guarded2 = Gate::cnot(1, 2);
    guarded2.condition = Condition{r2, 2, 2};
    c.append(guarded2);
    return c;
  };
  EXPECT_EQ(fingerprint(build("c", "flags")), fingerprint(build("result", "syndrome")));
  // But *merging* two registers into one changes the id sequence.
  EXPECT_NE(fingerprint(build("c", "flags")), fingerprint(build("c", "c")));
  // Exchanging the two names wholesale is itself just a renaming (ids are
  // positional), so it must be identified, not distinguished.
  EXPECT_EQ(fingerprint(build("c", "flags")), fingerprint(build("flags", "c")));
}

TEST(FingerprintProperties, EveryGateMutationChangesTheFingerprint) {
  for (const auto seed : kSeeds) {
    const int n = 4;
    const Circuit c = bench::random_circuit(n, 5, 4, seed, "fp-mut");
    const std::uint64_t fp = fingerprint(c);
    SCOPED_TRACE("seed " + std::to_string(seed));

    // Drop a gate.
    EXPECT_NE(fingerprint(rebuilt(c, n, [](auto& g) { g.pop_back(); })), fp);
    // Insert a gate.
    EXPECT_NE(fingerprint(rebuilt(c, n,
                                  [](auto& g) { g.push_back(Gate::single(OpKind::H, 0)); })),
              fp);
    // Retarget the first single-qubit gate.
    EXPECT_NE(fingerprint(rebuilt(c, n,
                                  [n](auto& g) {
                                    for (auto& gate : g) {
                                      if (gate.is_single_qubit()) {
                                        gate.target = (gate.target + 1) % n;
                                        return;
                                      }
                                    }
                                  })),
              fp);
    // Flip a gate kind.
    EXPECT_NE(fingerprint(rebuilt(c, n,
                                  [](auto& g) {
                                    for (auto& gate : g) {
                                      if (gate.is_single_qubit()) {
                                        gate.kind =
                                            gate.kind == OpKind::H ? OpKind::X : OpKind::H;
                                        return;
                                      }
                                    }
                                  })),
              fp);
    // Reverse a CNOT.
    EXPECT_NE(fingerprint(rebuilt(c, n,
                                  [](auto& g) {
                                    for (auto& gate : g) {
                                      if (gate.is_cnot()) {
                                        std::swap(gate.control, gate.target);
                                        return;
                                      }
                                    }
                                  })),
              fp);
    // Reorder two adjacent distinct gates.
    Circuit reordered = rebuilt(c, n, [](auto& g) {
      for (std::size_t i = 0; i + 1 < g.size(); ++i) {
        if (!(g[i] == g[i + 1])) {
          std::swap(g[i], g[i + 1]);
          return;
        }
      }
    });
    EXPECT_NE(fingerprint(reordered), fp);
    // An idle qubit line widens the register and must be significant.
    EXPECT_NE(fingerprint(rebuilt(c, n + 1, [](auto&) {})), fp);
  }
}

TEST(FingerprintProperties, ParameterEditsBeyondWriterPrecisionAreSignificant) {
  Circuit base(1, "fp-param");
  base.append(Gate::single(OpKind::Rz, 0, {0.5}));
  Circuit nudged(1, "fp-param");
  nudged.append(Gate::single(OpKind::Rz, 0, {0.5 + 1e-6}));
  EXPECT_NE(fingerprint(base), fingerprint(nudged));
  // Below the writer's 12-decimal resolution the two circuits serialise to
  // the same QASM text, so they are deliberately identified.
  Circuit sub_ulp(1, "fp-param");
  sub_ulp.append(Gate::single(OpKind::Rz, 0, {0.5 + 1e-14}));
  EXPECT_EQ(fingerprint(base), fingerprint(sub_ulp));
}

TEST(FingerprintProperties, ConditionAndClassicalWiringAreSignificant) {
  Circuit base(2, "fp-cls");
  Gate guarded = Gate::single(OpKind::X, 1);
  guarded.condition = Condition{"c", 2, 1};
  base.append(guarded);
  base.append(Gate::measure(0, "c", 0));
  const std::uint64_t fp = fingerprint(base);

  Circuit value = base;
  EXPECT_NE(fingerprint(rebuilt(value, 2,
                                [](auto& g) { g[0].condition->value = 3; })),
            fp);
  EXPECT_NE(fingerprint(rebuilt(base, 2, [](auto& g) { g[0].condition->width = 3; })), fp);
  EXPECT_NE(fingerprint(rebuilt(base, 2, [](auto& g) { g[0].condition.reset(); })), fp);
  EXPECT_NE(fingerprint(rebuilt(base, 2, [](auto& g) { g[1].cbit->bit = 1; })), fp);
}

TEST(FingerprintProperties, NoCollisionsAcrossCorpusAndRandomSweep) {
  // Distinct gate streams must get distinct fingerprints across the whole
  // qasm corpus, a seeded random sweep, and every prefix of each — a few
  // hundred near-identical circuits, exactly the collision-prone shape a
  // service cache would see.
  std::map<std::uint64_t, std::string> seen;  // fp -> canonical stream
  const auto canonical = [](const Circuit& c) {
    std::string s = std::to_string(c.num_qubits());
    for (const auto& g : c) {
      s += '|';
      s += g.to_string();
    }
    return s;
  };
  const auto check = [&](const Circuit& c) {
    const auto [it, inserted] = seen.emplace(fingerprint(c), canonical(c));
    if (!inserted) {
      EXPECT_EQ(it->second, canonical(c)) << "fingerprint collision";
    }
  };
  for (const auto* file : kCorpusFiles) {
    const Circuit c = qasm::parse_file(corpus_path(file));
    check(c);
    for (std::size_t k = 0; k < c.size(); ++k) {
      Circuit prefix(c.num_qubits(), c.name());
      for (std::size_t i = 0; i < k; ++i) prefix.append(c.gate(i));
      check(prefix);
    }
  }
  for (const auto seed : kSeeds) {
    for (int q = 2; q <= 5; ++q) {
      const Circuit c = bench::random_circuit(q, 4, 4, seed, "fp-sweep");
      check(c);
    }
  }
  EXPECT_GT(seen.size(), 100u);
}

TEST(FingerprintProperties, StringFormIsSelfDescribingAndStable) {
  const Circuit c = bench::random_circuit(5, 3, 3, 17, "fp-str");
  const std::string s = fingerprint_string(c);
  ASSERT_EQ(s.size(), std::string("c5:").size() + 16);
  EXPECT_EQ(s.substr(0, 3), "c5:");
  EXPECT_EQ(s, fingerprint_string(c));  // pure function of content
  for (const char ch : s.substr(3)) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(ch))) << s;
  }
}

TEST(ExactParallelProperties, SerialAndParallelAgreeOnEveryBuiltInArchitecture) {
  // Subset mode needs n < m, and the induced instances stay tabulable
  // (n <= 8) even on the 16/20-qubit machines, so a 3-qubit skeleton
  // exercises every built-in coupling map. The heavy-hex machines have
  // hundreds of connected 3-subsets each — one seed keeps the sweep quick
  // while still covering the subset shard scheduler at that scale.
  for (const auto& name : arch::known_names()) {
    const auto cm = arch::by_name(name);
    const std::vector<std::uint64_t> seeds =
        cm.num_physical() > 20 ? std::vector<std::uint64_t>{1}
                               : std::vector<std::uint64_t>{1, 2, 3};
    for (const std::uint64_t seed : seeds) {
      const Circuit c = bench::random_cnot_circuit(3, 4, seed, "sweep/" + name);
      exact::ExactOptions opt;
      opt.engine = reason::EngineKind::Cdcl;
      opt.use_subsets = true;
      opt.budget = std::chrono::milliseconds(60000);
      opt.num_threads = 1;
      const auto serial = exact::map_exact(c, cm, opt);
      ASSERT_EQ(serial.status, reason::Status::Optimal) << name << " seed " << seed;
      opt.num_threads = 4;
      const auto parallel = exact::map_exact(c, cm, opt);
      EXPECT_EQ(parallel.status, serial.status) << name << " seed " << seed;
      EXPECT_EQ(parallel.cost_f, serial.cost_f) << name << " seed " << seed;
      EXPECT_EQ(parallel.swaps_inserted, serial.swaps_inserted) << name << " seed " << seed;
      EXPECT_EQ(parallel.cnots_reversed, serial.cnots_reversed) << name << " seed " << seed;
      EXPECT_EQ(parallel.instances_solved, serial.instances_solved) << name << " seed " << seed;
      EXPECT_EQ(parallel.initial_layout, serial.initial_layout) << name << " seed " << seed;
      EXPECT_EQ(parallel.mapped, serial.mapped) << name << " seed " << seed;
      EXPECT_TRUE(serial.verified) << serial.verify_message;
    }
  }
}

// --- JSON-loaded architectures in the sweep (arch/coupling_json.hpp) -----

constexpr const char* kStar5Json = R"({
  "name": "star5",
  "qubits": 5,
  "directed": false,
  "edges": [[0, 1], [0, 2], [0, 3], [0, 4]]
})";

TEST(ArchitectureProperties, FingerprintDistinguishesJsonFromBuiltins) {
  // A JSON-loaded 5-qubit star must not alias any built-in (or synthetic)
  // 5-qubit architecture in caches keyed by CouplingMap::fingerprint().
  const auto star = arch::CouplingMap::from_json(kStar5Json);
  ASSERT_EQ(star.num_physical(), 5);
  const arch::CouplingMap rivals[] = {arch::ibm_qx2(), arch::ibm_qx4(),
                                      arch::linear(5), arch::ring(5),
                                      arch::clique(5)};
  for (const auto& rival : rivals) {
    ASSERT_EQ(rival.num_physical(), 5);
    EXPECT_NE(star.fingerprint(), rival.fingerprint()) << rival.name();
  }
  // Same structure loaded twice fingerprints identically — the name and the
  // error rates are deliberately not part of the structural fingerprint.
  auto renamed = arch::CouplingMap::from_json(kStar5Json, "other-name");
  arch::ErrorRates rates;
  rates.cnot[{0, 1}] = 0.05;
  renamed.set_error_rates(rates);
  EXPECT_EQ(star.fingerprint(), renamed.fingerprint());
  EXPECT_NE(star.noise_fingerprint(), renamed.noise_fingerprint());
}

TEST(ExactParallelProperties, SerialAndParallelAgreeOnJsonLoadedArchitecture) {
  const auto cm = arch::CouplingMap::from_json(kStar5Json);
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Circuit c = bench::random_cnot_circuit(3, 4, seed, "sweep/star5");
    exact::ExactOptions opt;
    opt.engine = reason::EngineKind::Cdcl;
    opt.use_subsets = true;
    opt.budget = std::chrono::milliseconds(60000);
    opt.num_threads = 1;
    const auto serial = exact::map_exact(c, cm, opt);
    ASSERT_EQ(serial.status, reason::Status::Optimal) << "seed " << seed;
    opt.num_threads = 4;
    const auto parallel = exact::map_exact(c, cm, opt);
    EXPECT_EQ(parallel.cost_f, serial.cost_f) << "seed " << seed;
    EXPECT_EQ(parallel.mapped, serial.mapped) << "seed " << seed;
    EXPECT_TRUE(serial.verified) << serial.verify_message;
  }
}

}  // namespace
}  // namespace qxmap
