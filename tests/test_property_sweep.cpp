/// Property-style sweeps over common/permutation and common/gf2: algebraic
/// identities (compose/invert, rank/from_rank round-trips, GF(2) rank
/// invariants) checked over many seeded random instances via common/rng —
/// plus a seeded random-circuit sweep asserting the parallel exact mapper
/// agrees with its serial run on every built-in architecture.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "arch/architectures.hpp"
#include "bench_circuits/generators.hpp"
#include "common/gf2.hpp"
#include "common/permutation.hpp"
#include "common/rng.hpp"
#include "exact/exact_mapper.hpp"

namespace qxmap {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

Permutation random_permutation(std::size_t m, Rng& rng) {
  std::vector<int> images(m);
  std::iota(images.begin(), images.end(), 0);
  rng.shuffle(images);
  return Permutation(std::move(images));
}

/// Random invertible GF(2) matrix: start from the identity and apply row
/// operations (each preserves invertibility).
Gf2Matrix random_invertible(std::size_t n, Rng& rng, int ops = 64) {
  Gf2Matrix m = Gf2Matrix::identity(n);
  if (n < 2) return m;  // no distinct row pair to operate on
  for (int k = 0; k < ops; ++k) {
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    auto b = static_cast<std::size_t>(rng.next_below(n));
    while (b == a) b = static_cast<std::size_t>(rng.next_below(n));
    if (rng.next_bool(0.5)) {
      m.xor_row(a, b);
    } else {
      m.swap_rows(a, b);
    }
  }
  return m;
}

TEST(PermutationProperties, ComposeWithInverseIsIdentity) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    for (std::size_t m = 1; m <= 8; ++m) {
      const Permutation p = random_permutation(m, rng);
      EXPECT_TRUE(p.then(p.inverse()).is_identity()) << p.to_string();
      EXPECT_TRUE(p.inverse().then(p).is_identity()) << p.to_string();
      EXPECT_EQ(p.inverse().inverse(), p);
    }
  }
}

TEST(PermutationProperties, CompositionIsAssociativeAndAntiDistributesOverInverse) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t m = 7;
    const Permutation a = random_permutation(m, rng);
    const Permutation b = random_permutation(m, rng);
    const Permutation c = random_permutation(m, rng);
    EXPECT_EQ(a.then(b).then(c), a.then(b.then(c)));
    // (a.then(b))^-1 = b^-1 . a^-1 in `then` order.
    EXPECT_EQ(a.then(b).inverse(), b.inverse().then(a.inverse()));
  }
}

TEST(PermutationProperties, RankRoundTripsThroughFromRank) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    for (std::size_t m = 1; m <= 8; ++m) {
      const Permutation p = random_permutation(m, rng);
      const std::uint64_t r = p.rank();
      EXPECT_LT(r, Permutation::factorial(m));
      EXPECT_EQ(Permutation::from_rank(m, r), p);
      EXPECT_EQ(Permutation::from_rank(m, r).rank(), r);
    }
  }
}

TEST(PermutationProperties, TranspositionIsAnInvolution) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t m = 6;
    const Permutation p = random_permutation(m, rng);
    const int a = rng.next_int(0, static_cast<int>(m) - 1);
    int b = rng.next_int(0, static_cast<int>(m) - 1);
    if (a == b) b = (b + 1) % static_cast<int>(m);
    const Permutation q = p.with_transposition(a, b);
    EXPECT_NE(q, p);
    EXPECT_EQ(q.with_transposition(a, b), p);
    // One transposition changes the minimal transposition count by exactly 1.
    EXPECT_EQ(std::abs(q.min_transpositions() - p.min_transpositions()), 1);
  }
}

TEST(PermutationProperties, CycleStructureAccountsForEveryElement) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t m = 8;
    const Permutation p = random_permutation(m, rng);
    std::size_t in_cycles = 0;
    int cycle_excess = 0;  // sum over cycles of (len - 1) = min_transpositions
    for (const auto& cycle : p.nontrivial_cycles()) {
      EXPECT_GE(cycle.size(), 2u);
      in_cycles += cycle.size();
      cycle_excess += static_cast<int>(cycle.size()) - 1;
      // Each listed cycle is consistent with the permutation's action.
      for (std::size_t i = 0; i < cycle.size(); ++i) {
        EXPECT_EQ(p.at(static_cast<std::size_t>(cycle[i])), cycle[(i + 1) % cycle.size()]);
      }
    }
    EXPECT_LE(in_cycles, m);
    EXPECT_EQ(cycle_excess, p.min_transpositions());
  }
}

TEST(Gf2Properties, PermutationMatricesRespectComposition) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t m = 6;
    const Permutation a = random_permutation(m, rng);
    const Permutation b = random_permutation(m, rng);
    const Gf2Matrix ma = Gf2Matrix::from_permutation(a);
    const Gf2Matrix mb = Gf2Matrix::from_permutation(b);
    // from_permutation(pi) maps e_i -> e_{pi(i)}, so applying a then b is
    // the product M_b * M_a.
    EXPECT_EQ(mb.multiply(ma), Gf2Matrix::from_permutation(a.then(b)));
    EXPECT_EQ(ma.rank(), m);
    EXPECT_TRUE(ma.invertible());
    EXPECT_EQ(ma.inverse(), Gf2Matrix::from_permutation(a.inverse()));
  }
}

TEST(Gf2Properties, RowOperationsPreserveRank) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    for (const std::size_t n : {3u, 7u, 64u, 65u}) {
      Gf2Matrix m = random_invertible(n, rng);
      EXPECT_EQ(m.rank(), n);
      EXPECT_TRUE(m.invertible());
      // xor_row twice with the same pair restores the matrix.
      const Gf2Matrix before = m;
      m.xor_row(0, n - 1);
      m.xor_row(0, n - 1);
      EXPECT_EQ(m, before);
      m.swap_rows(0, n - 1);
      m.swap_rows(0, n - 1);
      EXPECT_EQ(m, before);
    }
  }
}

TEST(Gf2Properties, InverseIsTwoSided) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t n = 9;
    const Gf2Matrix m = random_invertible(n, rng);
    const Gf2Matrix inv = m.inverse();
    const Gf2Matrix id = Gf2Matrix::identity(n);
    EXPECT_EQ(m.multiply(inv), id);
    EXPECT_EQ(inv.multiply(m), id);
    EXPECT_EQ(inv.inverse(), m);
  }
}

TEST(Gf2Properties, ProductRankIsBoundedAndInvertiblesCompose) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t n = 8;
    const Gf2Matrix a = random_invertible(n, rng);
    Gf2Matrix singular(n);  // zero matrix: rank 0
    EXPECT_EQ(singular.rank(), 0u);
    EXPECT_FALSE(singular.invertible());
    // rank(A * B) <= min(rank A, rank B); invertible * invertible stays full.
    EXPECT_EQ(a.multiply(singular).rank(), 0u);
    const Gf2Matrix b = random_invertible(n, rng);
    EXPECT_EQ(a.multiply(b).rank(), n);
  }
}

TEST(Gf2Properties, RankMatchesNumberOfIndependentRowsByConstruction) {
  for (const auto seed : kSeeds) {
    Rng rng(seed);
    const std::size_t n = 10;
    // Build a matrix whose first k rows are an invertible k x k block on the
    // leading coordinates and whose remaining rows duplicate earlier rows:
    // its rank is exactly k.
    const auto k = static_cast<std::size_t>(rng.next_int(1, static_cast<int>(n)));
    const Gf2Matrix block = random_invertible(k, rng);
    Gf2Matrix m(n);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) m.set(i, j, block.get(i, j));
    }
    for (std::size_t i = k; i < n; ++i) {
      const auto src = static_cast<std::size_t>(rng.next_below(k));
      for (std::size_t j = 0; j < n; ++j) m.set(i, j, m.get(src, j));
    }
    EXPECT_EQ(m.rank(), k);
    EXPECT_EQ(m.invertible(), k == n);
  }
}

TEST(ExactParallelProperties, SerialAndParallelAgreeOnEveryBuiltInArchitecture) {
  // Subset mode needs n < m, and the induced instances stay tabulable
  // (n <= 8) even on the 16/20-qubit machines, so a 3-qubit skeleton
  // exercises every built-in coupling map.
  for (const auto& name : arch::known_names()) {
    const auto cm = arch::by_name(name);
    for (const std::uint64_t seed : {1u, 2u, 3u}) {
      const Circuit c = bench::random_cnot_circuit(3, 4, seed, "sweep/" + name);
      exact::ExactOptions opt;
      opt.engine = reason::EngineKind::Cdcl;
      opt.use_subsets = true;
      opt.budget = std::chrono::milliseconds(60000);
      opt.num_threads = 1;
      const auto serial = exact::map_exact(c, cm, opt);
      ASSERT_EQ(serial.status, reason::Status::Optimal) << name << " seed " << seed;
      opt.num_threads = 4;
      const auto parallel = exact::map_exact(c, cm, opt);
      EXPECT_EQ(parallel.status, serial.status) << name << " seed " << seed;
      EXPECT_EQ(parallel.cost_f, serial.cost_f) << name << " seed " << seed;
      EXPECT_EQ(parallel.swaps_inserted, serial.swaps_inserted) << name << " seed " << seed;
      EXPECT_EQ(parallel.cnots_reversed, serial.cnots_reversed) << name << " seed " << seed;
      EXPECT_EQ(parallel.instances_solved, serial.instances_solved) << name << " seed " << seed;
      EXPECT_EQ(parallel.initial_layout, serial.initial_layout) << name << " seed " << seed;
      EXPECT_EQ(parallel.mapped, serial.mapped) << name << " seed " << seed;
      EXPECT_TRUE(serial.verified) << serial.verify_message;
    }
  }
}

}  // namespace
}  // namespace qxmap
