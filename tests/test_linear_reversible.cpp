#include "sim/linear_reversible.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace qxmap {
namespace {

TEST(LinearReversible, EmptyCircuitIsIdentity) {
  EXPECT_EQ(sim::linear_map(Circuit(4)), Gf2Matrix::identity(4));
}

TEST(LinearReversible, SingleCnot) {
  Circuit c(2);
  c.cnot(0, 1);
  const auto m = sim::linear_map(c);
  // |x0 x1> -> |x0, x1^x0>: row 1 = e0 + e1.
  EXPECT_TRUE(m.get(0, 0));
  EXPECT_TRUE(m.get(1, 0));
  EXPECT_TRUE(m.get(1, 1));
  EXPECT_FALSE(m.get(0, 1));
}

TEST(LinearReversible, CnotTwiceCancels) {
  Circuit c(3);
  c.cnot(0, 2);
  c.cnot(0, 2);
  EXPECT_EQ(sim::linear_map(c), Gf2Matrix::identity(3));
}

TEST(LinearReversible, SwapIsRowSwap) {
  Circuit c(3);
  c.swap(0, 2);
  const auto m = sim::linear_map(c);
  EXPECT_TRUE(m.get(0, 2));
  EXPECT_TRUE(m.get(2, 0));
  EXPECT_TRUE(m.get(1, 1));
}

TEST(LinearReversible, SwapEqualsThreeCnots) {
  Circuit a(2);
  a.swap(0, 1);
  Circuit b(2);
  b.cnot(0, 1);
  b.cnot(1, 0);
  b.cnot(0, 1);
  EXPECT_EQ(sim::linear_map(a), sim::linear_map(b));
}

TEST(LinearReversible, MapIsAlwaysInvertible) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    Circuit c(6);
    for (int g = 0; g < 30; ++g) {
      const int a = rng.next_int(0, 5);
      int b = rng.next_int(0, 4);
      if (b >= a) ++b;
      c.cnot(a, b);
    }
    EXPECT_TRUE(sim::linear_map(c).invertible());
  }
}

TEST(LinearReversible, NonLinearGateRejected) {
  Circuit c(1);
  c.h(0);
  EXPECT_THROW(sim::linear_map(c), std::invalid_argument);
}

TEST(LinearReversible, BarrierIgnored) {
  Circuit c(2);
  c.cnot(0, 1);
  c.append(Gate::barrier());
  EXPECT_NO_THROW(sim::linear_map(c));
}

TEST(ImplementsSkeleton, IdentityLayoutExactCopy) {
  Circuit orig(3);
  orig.cnot(0, 1);
  orig.cnot(1, 2);
  const std::vector<int> layout{0, 1, 2};
  EXPECT_TRUE(sim::implements_skeleton(orig, orig, layout, layout));
}

TEST(ImplementsSkeleton, RoutedWithSwapIsAccepted) {
  // Original: CX(0,1), CX(0,2). Routed on a line 0-1-2 where 0 and 2 are not
  // adjacent: CX(0,1); SWAP(1,2)... place logical {0,1,2} at {0,1,2};
  // after CX(p0,p1) swap p1,p2 moves logical 1 to p2, then CX(p0,p1) acts on
  // logical (0, 2).
  Circuit orig(3);
  orig.cnot(0, 1);
  orig.cnot(0, 2);
  Circuit routed(3);
  routed.cnot(0, 1);
  routed.swap(1, 2);
  routed.cnot(0, 1);
  EXPECT_TRUE(sim::implements_skeleton(orig, routed, {0, 1, 2}, {0, 2, 1}));
  // Wrong final layout must fail.
  EXPECT_FALSE(sim::implements_skeleton(orig, routed, {0, 1, 2}, {0, 1, 2}));
}

TEST(ImplementsSkeleton, WiderPhysicalRegister) {
  Circuit orig(2);
  orig.cnot(0, 1);
  Circuit routed(5);
  routed.cnot(3, 1);
  EXPECT_TRUE(sim::implements_skeleton(orig, routed, {3, 1}, {3, 1}));
  EXPECT_FALSE(sim::implements_skeleton(orig, routed, {1, 3}, {1, 3}));
}

TEST(ImplementsSkeleton, LayoutSizeValidated) {
  Circuit orig(2);
  orig.cnot(0, 1);
  EXPECT_THROW((void)sim::implements_skeleton(orig, orig, {0}, {0, 1}), std::invalid_argument);
}

}  // namespace
}  // namespace qxmap
