#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace qxmap {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SeedFromStringIsStable) {
  EXPECT_EQ(Rng::seed_from_string("3_17_13"), Rng::seed_from_string("3_17_13"));
  EXPECT_NE(Rng::seed_from_string("3_17_13"), Rng::seed_from_string("ham3_102"));
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolProbabilityRoughlyRespected) {
  Rng rng(9);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (rng.next_bool(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Rng, NextBoolClampsProbability) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(-1.0));
    EXPECT_TRUE(rng.next_bool(2.0));
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto before = v;
  rng.shuffle(v);
  EXPECT_NE(v, before);  // astronomically unlikely to be identity
}

TEST(Rng, PickReturnsContainedElement) {
  Rng rng(23);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int p = rng.pick(v);
    EXPECT_TRUE(p == 10 || p == 20 || p == 30);
  }
}

}  // namespace
}  // namespace qxmap
