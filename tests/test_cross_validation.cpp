/// Cross-validation sweeps: every component that can certify another one
/// is pitted against it on randomized inputs, plus failure-injection tests
/// proving that the verification layer actually catches broken mappings.

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"
#include "common/rng.hpp"
#include "exact/exact_mapper.hpp"
#include "exact/reference_search.hpp"
#include "exact/strategies.hpp"
#include "exact/swap_synthesis.hpp"
#include "heuristic/astar_mapper.hpp"
#include "heuristic/layer_weight_mapper.hpp"
#include "heuristic/sabre_mapper.hpp"
#include "heuristic/stochastic_swap.hpp"
#include "sim/equivalence.hpp"
#include "sim/linear_reversible.hpp"
#include "sim/statevector.hpp"

namespace qxmap {
namespace {

using reason::EngineKind;
using reason::Status;

// ---------------------------------------------------------------------
// SAT/Z3 mappers vs. the DP certifier, across strategies and engines.
// ---------------------------------------------------------------------

struct SweepCase {
  std::uint64_t seed;
  EngineKind engine;
  exact::PermutationStrategy strategy;
};

class ExactVsReference : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ExactVsReference, EngineNeverBeatsAndAlwaysMatchesReference) {
  const auto& param = GetParam();
  const Circuit c = bench::random_circuit(4, 2, 6, param.seed, "sweep");
  std::vector<Gate> cnots;
  for (const auto& g : c) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  const auto cm = arch::ibm_qx4();
  const auto points = exact::permutation_points(cnots, param.strategy, cm);
  exact::CostModel costs;
  costs.swap_cost = 7;
  const auto ref = exact::minimal_cost_reference(cnots, 4, cm, points, costs);

  exact::ExactOptions opt;
  opt.engine = param.engine;
  opt.strategy = param.strategy;
  opt.budget = std::chrono::milliseconds(30000);
  const auto res = exact::map_exact(c, cm, opt);

  if (!ref.feasible) {
    EXPECT_EQ(res.status, Status::Unsat);
    return;
  }
  ASSERT_EQ(res.status, Status::Optimal);
  // The symbolic method must agree with the independent DP under the SAME
  // permutation-point restriction.
  EXPECT_EQ(res.cost_f, ref.cost_f);
  EXPECT_TRUE(res.verified) << res.verify_message;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    for (const auto engine : {EngineKind::Z3, EngineKind::Cdcl}) {
      for (const auto strategy :
           {exact::PermutationStrategy::All, exact::PermutationStrategy::DisjointQubits,
            exact::PermutationStrategy::OddGates, exact::PermutationStrategy::QubitTriangle}) {
        cases.push_back({seed, engine, strategy});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExactVsReference, ::testing::ValuesIn(sweep_cases()));

// ---------------------------------------------------------------------
// GF(2) semantics vs. full statevector simulation on CNOT circuits.
// ---------------------------------------------------------------------

class LinearVsStatevector : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinearVsStatevector, AgreeOnAllBasisStates) {
  const Circuit c = bench::random_cnot_circuit(5, 25, GetParam(), "gf2-vs-sv");
  const auto m = sim::linear_map(c);
  for (std::uint64_t input = 0; input < 32; ++input) {
    sim::Statevector sv = sim::Statevector::basis(5, input);
    sv.apply_circuit(c);
    // Predicted output: y = M x over GF(2).
    std::uint64_t predicted = 0;
    for (std::size_t row = 0; row < 5; ++row) {
      bool bit = false;
      for (std::size_t col = 0; col < 5; ++col) {
        if (m.get(row, col) && ((input >> col) & 1ULL)) bit = !bit;
      }
      if (bit) predicted |= 1ULL << row;
    }
    EXPECT_NEAR(std::abs(sv.amplitude(predicted)), 1.0, 1e-9)
        << "input " << input << " predicted " << predicted;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearVsStatevector, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------
// Exhaustive swap table vs. greedy token swapping on every architecture
// small enough to tabulate.
// ---------------------------------------------------------------------

class TableVsGreedy : public ::testing::TestWithParam<const char*> {};

TEST_P(TableVsGreedy, GreedyIsValidUpperBound) {
  const auto cm = arch::by_name(GetParam());
  const arch::SwapCostTable table(cm);
  const auto m = static_cast<std::size_t>(cm.num_physical());
  std::size_t checked = 0;
  for (const auto& pi : Permutation::all(m)) {
    const auto seq = arch::greedy_swap_sequence(cm, pi);
    Permutation realised(m);
    for (const auto& [a, b] : seq) realised = realised.with_transposition(a, b);
    EXPECT_EQ(realised, pi);
    EXPECT_GE(static_cast<int>(seq.size()), table.swaps(pi));
    ++checked;
  }
  EXPECT_EQ(checked, Permutation::factorial(m));
}

INSTANTIATE_TEST_SUITE_P(SmallArchs, TableVsGreedy,
                         ::testing::Values("qx2", "qx4", "linear5", "ring5", "clique4"));

// ---------------------------------------------------------------------
// All heuristics vs. the certified floor on one batch.
// ---------------------------------------------------------------------

class HeuristicFloor : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeuristicFloor, NoHeuristicBeatsTheCertifiedMinimum) {
  const Circuit c = bench::structured_circuit(5, 9, 12, GetParam(), "floor");
  const auto cm = arch::ibm_qx4();
  std::vector<Gate> cnots;
  for (const auto& g : c) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  std::vector<std::size_t> pts;
  for (std::size_t k = 1; k < cnots.size(); ++k) pts.push_back(k);
  exact::CostModel costs;
  costs.swap_cost = 7;
  const auto ref = exact::minimal_cost_reference(cnots, 5, cm, pts, costs);
  ASSERT_TRUE(ref.feasible);

  heuristic::StochasticSwapOptions sopt;
  sopt.seed = GetParam();
  EXPECT_GE(heuristic::map_stochastic_swap(c, cm, sopt).cost_f, ref.cost_f);
  EXPECT_GE(heuristic::map_astar(c, cm).cost_f, ref.cost_f);
  EXPECT_GE(heuristic::map_sabre(c, cm).cost_f, ref.cost_f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicFloor, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// ---------------------------------------------------------------------
// SU(4) sweep: every heuristic (including the layer-weight mapper) vs.
// the certified DP floor, under BOTH cost objectives.
// ---------------------------------------------------------------------

struct Su4Case {
  std::uint64_t seed;
  int num_qubits;
  exact::CostObjective objective;
};

class Su4CrossValidation : public ::testing::TestWithParam<Su4Case> {};

TEST_P(Su4CrossValidation, EveryHeuristicIsLegalEquivalentAndAboveTheFloor) {
  const auto& param = GetParam();
  const Circuit c = bench::su4_random_circuit(param.num_qubits, 2, param.seed, "su4-xval");
  const auto cm = arch::ibm_qx4();

  std::vector<Gate> cnots;
  for (const auto& g : c) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  std::vector<std::size_t> pts;
  for (std::size_t k = 1; k < cnots.size(); ++k) pts.push_back(k);
  exact::CostModel costs;
  costs.objective = param.objective;
  const exact::CostModel resolved = costs.resolved(cm);
  const auto ref =
      exact::minimal_cost_reference(cnots, param.num_qubits, cm, pts, resolved);
  ASSERT_TRUE(ref.feasible);

  const auto check = [&](const exact::MappingResult& res, const char* who) {
    SCOPED_TRACE(who);
    EXPECT_EQ(res.status, Status::Feasible);
    EXPECT_TRUE(exact::satisfies_coupling(res.mapped, cm));
    EXPECT_TRUE(res.verified) << res.verify_message;
    EXPECT_EQ(res.objective, exact::to_string(param.objective));
    const auto eq = sim::check_mapped_circuit(c, res.mapped, res.initial_layout,
                                              res.final_layout);
    EXPECT_TRUE(eq.equivalent) << eq.message;
    // No heuristic may beat the certified optimum in its own currency.
    EXPECT_GE(res.objective_cost, ref.cost_f);
  };

  heuristic::StochasticSwapOptions sopt;
  sopt.seed = param.seed;
  sopt.costs = costs;
  check(heuristic::map_stochastic_swap(c, cm, sopt), "stochastic");
  heuristic::AStarOptions aopt;
  aopt.costs = costs;
  check(heuristic::map_astar(c, cm, aopt), "astar");
  heuristic::SabreOptions bopt;
  bopt.costs = costs;
  check(heuristic::map_sabre(c, cm, bopt), "sabre");
  heuristic::LayerWeightOptions lopt;
  lopt.seed = param.seed;
  lopt.costs = costs;
  check(heuristic::map_layer_weight(c, cm, lopt), "layer-weight");
}

std::vector<Su4Case> su4_cases() {
  std::vector<Su4Case> cases;
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    for (const int nq : {4, 5}) {
      for (const auto objective :
           {exact::CostObjective::GateCount, exact::CostObjective::ErrorWeighted}) {
        cases.push_back({seed, nq, objective});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Su4CrossValidation, ::testing::ValuesIn(su4_cases()));

TEST(Su4CrossValidation, ExactErrorWeightedMatchesTheReference) {
  // The symbolic mapper and the DP must also agree when the objective is
  // error-weighted: same restriction (all permutation points), same resolved
  // weights, same optimum.
  const Circuit c = bench::su4_random_circuit(4, 1, 404, "su4-exact-ew");
  const auto cm = arch::ibm_qx4();
  std::vector<Gate> cnots;
  for (const auto& g : c) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  exact::ExactOptions opt;
  opt.engine = EngineKind::Cdcl;
  opt.strategy = exact::PermutationStrategy::All;
  opt.costs.objective = exact::CostObjective::ErrorWeighted;
  opt.budget = std::chrono::milliseconds(60000);
  const auto pts = exact::permutation_points(cnots, opt.strategy, cm);
  const exact::CostModel resolved = opt.costs.resolved(cm);
  const auto ref = exact::minimal_cost_reference(cnots, 4, cm, pts, resolved);
  ASSERT_TRUE(ref.feasible);
  const auto res = exact::map_exact(c, cm, opt);
  ASSERT_EQ(res.status, Status::Optimal);
  // objective_cost is in resolved error-weighted units — the DP's currency.
  // cost_f stays the paper's Eq. (5) gate count (added gates), so it is NOT
  // compared against the error-weighted floor.
  EXPECT_EQ(res.objective_cost, ref.cost_f);
  EXPECT_EQ(res.objective, "error_weighted");
  EXPECT_EQ(res.cost_f,
            static_cast<long long>(res.mapped.size()) - static_cast<long long>(c.size()));
  EXPECT_TRUE(res.verified) << res.verify_message;
}

// ---------------------------------------------------------------------
// Failure injection: tampered results must fail verification.
// ---------------------------------------------------------------------

exact::MappingResult mapped_fixture() {
  const Circuit c = bench::random_circuit(3, 2, 5, 77, "tamper");
  exact::ExactOptions opt;
  opt.budget = std::chrono::milliseconds(30000);
  auto res = exact::map_exact(c, arch::ibm_qx4(), opt);
  EXPECT_EQ(res.status, Status::Optimal);
  return res;
}

TEST(FailureInjection, DroppedGateIsDetected) {
  const Circuit original = bench::random_circuit(3, 2, 5, 77, "tamper");
  auto res = mapped_fixture();
  Circuit tampered(res.mapped.num_qubits());
  for (std::size_t i = 0; i + 1 < res.mapped.size(); ++i) tampered.append(res.mapped.gate(i));
  const auto eq = sim::check_mapped_circuit(original, tampered, res.initial_layout,
                                            res.final_layout);
  EXPECT_FALSE(eq.equivalent);
}

TEST(FailureInjection, ExtraGateIsDetected) {
  const Circuit original = bench::random_circuit(3, 2, 5, 77, "tamper");
  auto res = mapped_fixture();
  Circuit tampered = res.mapped;
  tampered.x(0);
  const auto eq = sim::check_mapped_circuit(original, tampered, res.initial_layout,
                                            res.final_layout);
  EXPECT_FALSE(eq.equivalent);
}

TEST(FailureInjection, WrongLayoutIsDetected) {
  const Circuit original = bench::random_circuit(3, 2, 5, 77, "tamper");
  const auto res = mapped_fixture();
  auto wrong = res.initial_layout;
  std::swap(wrong[0], wrong[1]);
  const auto eq = sim::check_mapped_circuit(original, res.mapped, wrong, res.final_layout);
  EXPECT_FALSE(eq.equivalent);
}

TEST(FailureInjection, FlippedCnotInSkeletonIsDetected) {
  const Circuit original = bench::random_circuit(3, 0, 6, 78, "tamper-skel");
  exact::ExactOptions opt;
  opt.budget = std::chrono::milliseconds(30000);
  const auto res = exact::map_exact(original, arch::ibm_qx4(), opt);
  ASSERT_EQ(res.status, Status::Optimal);
  Circuit tampered(res.routed_skeleton.num_qubits());
  bool flipped = false;
  for (const auto& g : res.routed_skeleton) {
    if (!flipped && g.is_cnot()) {
      tampered.cnot(g.target, g.control);
      flipped = true;
    } else {
      tampered.append(g);
    }
  }
  ASSERT_TRUE(flipped);
  EXPECT_FALSE(sim::implements_skeleton(original.cnot_skeleton(), tampered, res.initial_layout,
                                        res.final_layout));
}

TEST(FailureInjection, VerifierAcceptsTheGenuineResult) {
  const Circuit original = bench::random_circuit(3, 2, 5, 77, "tamper");
  const auto res = mapped_fixture();
  const auto eq = sim::check_mapped_circuit(original, res.mapped, res.initial_layout,
                                            res.final_layout);
  EXPECT_TRUE(eq.equivalent) << eq.message;
}

}  // namespace
}  // namespace qxmap
