#include "exact/exact_mapper.hpp"

#include <gtest/gtest.h>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/reference_search.hpp"
#include "exact/swap_synthesis.hpp"

namespace qxmap {
namespace {

using exact::ExactOptions;
using exact::map_exact;
using exact::MappingResult;
using exact::PermutationStrategy;
using reason::EngineKind;
using reason::Status;

ExactOptions fast_options(EngineKind kind) {
  ExactOptions opt;
  opt.engine = kind;
  opt.budget = std::chrono::milliseconds(30000);
  return opt;
}

/// Independently certified minimum F for a circuit on QX4 (unrestricted).
long long certified_minimum(const Circuit& c) {
  std::vector<Gate> cnots;
  for (const auto& g : c) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  std::vector<std::size_t> pts;
  for (std::size_t k = 1; k < cnots.size(); ++k) pts.push_back(k);
  const auto cm = arch::ibm_qx4();
  exact::CostModel costs;
  costs.swap_cost = 7;
  const auto r = exact::minimal_cost_reference(cnots, c.num_qubits(), cm, pts, costs);
  EXPECT_TRUE(r.feasible);
  return r.cost_f;
}

class ExactMapperTest : public ::testing::TestWithParam<EngineKind> {};

TEST_P(ExactMapperTest, PaperExampleHasMinimalCost4) {
  const Circuit c = bench::paper_example_circuit();
  const auto res = map_exact(c, arch::ibm_qx4(), fast_options(GetParam()));
  EXPECT_EQ(res.status, Status::Optimal);
  EXPECT_EQ(res.cost_f, 4);
  EXPECT_EQ(res.mapped.size(), c.size() + 4);
  EXPECT_EQ(res.swaps_inserted, 0);
  EXPECT_EQ(res.cnots_reversed, 1);
  EXPECT_TRUE(res.verified) << res.verify_message;
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::ibm_qx4()));
}

TEST_P(ExactMapperTest, MatchesReferenceOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Circuit c = bench::random_circuit(4, 3, 6, seed, "rnd");
    const auto res = map_exact(c, arch::ibm_qx4(), fast_options(GetParam()));
    ASSERT_EQ(res.status, Status::Optimal) << "seed " << seed;
    EXPECT_EQ(res.cost_f, certified_minimum(c)) << "seed " << seed;
    EXPECT_TRUE(res.verified) << res.verify_message;
  }
}

TEST_P(ExactMapperTest, SubsetModePreservesMinimalityOnSmallCases) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Circuit c = bench::random_circuit(3, 2, 6, seed, "rnd3");
    auto opt = fast_options(GetParam());
    opt.use_subsets = true;
    const auto res = map_exact(c, arch::ibm_qx4(), opt);
    ASSERT_EQ(res.status, Status::Optimal);
    // Sec. 4.1: still minimal on all evaluated cases.
    EXPECT_EQ(res.cost_f, certified_minimum(c)) << "seed " << seed;
    // A zero-cost subset short-circuits the remaining instances (nothing can
    // beat the objective's lower bound); otherwise every subset is solved.
    EXPECT_GE(res.instances_solved, res.cost_f == 0 ? 1 : 2);
    EXPECT_TRUE(res.verified) << res.verify_message;
  }
}

TEST_P(ExactMapperTest, StrategiesAreNeverBelowTheMinimum) {
  const Circuit c = bench::random_circuit(4, 4, 7, 99, "strat");
  const long long minimum = certified_minimum(c);
  for (const auto strategy :
       {PermutationStrategy::DisjointQubits, PermutationStrategy::OddGates,
        PermutationStrategy::QubitTriangle}) {
    auto opt = fast_options(GetParam());
    opt.strategy = strategy;
    const auto res = map_exact(c, arch::ibm_qx4(), opt);
    if (res.status == Status::Unsat) continue;  // over-restricted is allowed
    ASSERT_EQ(res.status, Status::Optimal) << exact::to_string(strategy);
    EXPECT_GE(res.cost_f, minimum) << exact::to_string(strategy);
    EXPECT_TRUE(res.verified) << res.verify_message;
  }
}

INSTANTIATE_TEST_SUITE_P(BothEngines, ExactMapperTest,
                         ::testing::Values(EngineKind::Z3, EngineKind::Cdcl));

TEST(ExactMapper, SingleQubitGatesAreReattached) {
  Circuit c(2, "oneq");
  c.h(0);
  c.t(1);
  c.cnot(0, 1);
  c.h(1);
  const auto res = map_exact(c, arch::ibm_qx4(), fast_options(EngineKind::Z3));
  ASSERT_EQ(res.status, Status::Optimal);
  EXPECT_EQ(res.mapped.counts().single_qubit,
            c.counts().single_qubit + 4 * res.cnots_reversed);
  EXPECT_TRUE(res.verified) << res.verify_message;
}

TEST(ExactMapper, CircuitWithoutCnots) {
  Circuit c(3, "no-cnot");
  c.h(0);
  c.t(2);
  const auto res = map_exact(c, arch::ibm_qx4(), fast_options(EngineKind::Z3));
  EXPECT_EQ(res.status, Status::Optimal);
  EXPECT_EQ(res.cost_f, 0);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.permutation_points, 1);
}

TEST(ExactMapper, MeasureAndBarrierSurvive) {
  Circuit c(2, "meas");
  c.h(0);
  c.append(Gate::barrier());
  c.cnot(0, 1);
  c.append(Gate::measure(0));
  c.append(Gate::measure(1));
  const auto res = map_exact(c, arch::ibm_qx4(), fast_options(EngineKind::Z3));
  ASSERT_EQ(res.status, Status::Optimal);
  int measures = 0;
  int barriers = 0;
  for (const auto& g : res.mapped) {
    measures += g.kind == OpKind::Measure;
    barriers += g.kind == OpKind::Barrier;
  }
  EXPECT_EQ(measures, 2);
  EXPECT_EQ(barriers, 1);
}

TEST(ExactMapper, SwapsAppearWhenForced) {
  // 3 CNOT pairs that cannot coexist on a line: expect >= 1 SWAP.
  Circuit c(3, "line-conflict");
  c.cnot(0, 1);
  c.cnot(0, 2);
  c.cnot(1, 2);
  const auto res = map_exact(c, arch::linear(3), fast_options(EngineKind::Z3));
  ASSERT_EQ(res.status, Status::Optimal);
  EXPECT_GE(res.swaps_inserted, 1);
  EXPECT_TRUE(res.verified) << res.verify_message;
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::linear(3)));
}

TEST(ExactMapper, ReportsPermutationPointCount) {
  const Circuit c = bench::paper_example_circuit();
  auto opt = fast_options(EngineKind::Z3);
  opt.strategy = PermutationStrategy::QubitTriangle;
  const auto res = map_exact(c, arch::ibm_qx4(), opt);
  // Example 10: G' = {g2}, plus the free initial mapping -> 2.
  EXPECT_EQ(res.permutation_points, 2);
}

TEST(ExactMapper, ValidationErrors) {
  Circuit too_big(6);
  too_big.cnot(0, 5);
  EXPECT_THROW(map_exact(too_big, arch::ibm_qx4(), {}), std::invalid_argument);

  // Raw swap pseudo-gates are no longer rejected: the mapper decomposes
  // them up front and routes the elementary form.
  Circuit with_swap(2);
  with_swap.swap(0, 1);
  const auto swap_res = map_exact(with_swap, arch::ibm_qx4(), {});
  EXPECT_EQ(swap_res.status, reason::Status::Optimal);
  EXPECT_EQ(swap_res.mapped.counts().swap, 0);
  EXPECT_TRUE(exact::satisfies_coupling(swap_res.mapped, arch::ibm_qx4()));

  // Full-architecture mode on a big machine requires subsets.
  Circuit small(2);
  small.cnot(0, 1);
  ExactOptions opt;
  EXPECT_THROW(map_exact(small, arch::ibm_qx5(), opt), std::invalid_argument);
  opt.use_subsets = true;
  opt.budget = std::chrono::milliseconds(60000);
  const auto res = map_exact(small, arch::ibm_qx5(), opt);
  EXPECT_EQ(res.status, Status::Optimal);
  EXPECT_EQ(res.cost_f, 0);
}

TEST(ExactMapper, BidirectedArchitectureUsesCheapSwaps) {
  // On Tokyo (bidirected) a SWAP costs 3 and no reversal is ever needed.
  Circuit c(3, "tokyo");
  c.cnot(0, 1);
  c.cnot(1, 2);
  c.cnot(0, 2);
  ExactOptions opt = fast_options(EngineKind::Z3);
  opt.use_subsets = true;
  const auto res = map_exact(c, arch::ibm_tokyo(), opt);
  ASSERT_EQ(res.status, Status::Optimal);
  EXPECT_EQ(res.cnots_reversed, 0);
  EXPECT_EQ(res.cost_f, 0);  // a triangle exists on Tokyo
  EXPECT_TRUE(exact::satisfies_coupling(res.mapped, arch::ibm_tokyo()));
}

}  // namespace
}  // namespace qxmap
