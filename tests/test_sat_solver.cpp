#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"

namespace qxmap {
namespace {

using sat::Lit;
using sat::neg;
using sat::pos;
using sat::Solver;
using sat::SolveResult;

TEST(SatSolver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
}

TEST(SatSolver, SingleUnit) {
  Solver s;
  const auto v = s.new_var();
  s.add_clause(pos(v));
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
  EXPECT_TRUE(s.model_value(v));
}

TEST(SatSolver, ConflictingUnitsUnsat) {
  Solver s;
  const auto v = s.new_var();
  EXPECT_TRUE(s.add_clause(pos(v)));
  EXPECT_FALSE(s.add_clause(neg(v)));
  EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
  EXPECT_TRUE(s.proven_unsat());
}

TEST(SatSolver, TautologyDropped) {
  Solver s;
  const auto v = s.new_var();
  EXPECT_TRUE(s.add_clause(std::vector<Lit>{pos(v), neg(v)}));
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
}

TEST(SatSolver, DuplicateLiteralsMerged) {
  Solver s;
  const auto v = s.new_var();
  s.add_clause(std::vector<Lit>{pos(v), pos(v), pos(v)});
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
  EXPECT_TRUE(s.model_value(v));
}

TEST(SatSolver, ImplicationChainPropagates) {
  Solver s;
  std::vector<sat::Var> vars;
  for (int i = 0; i < 50; ++i) vars.push_back(s.new_var());
  for (int i = 0; i + 1 < 50; ++i) s.add_clause(neg(vars[static_cast<std::size_t>(i)]), pos(vars[static_cast<std::size_t>(i + 1)]));
  s.add_clause(pos(vars[0]));
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
  for (const auto v : vars) EXPECT_TRUE(s.model_value(v));
}

TEST(SatSolver, XorChainUnsat) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x3 xor x1 = 1 is unsatisfiable (odd cycle).
  Solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  const auto c = s.new_var();
  const auto add_xor_true = [&](sat::Var u, sat::Var v) {
    s.add_clause(pos(u), pos(v));
    s.add_clause(neg(u), neg(v));
  };
  add_xor_true(a, b);
  add_xor_true(b, c);
  add_xor_true(c, a);
  EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
}

/// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes — classic
/// resolution-hard UNSAT family that exercises clause learning.
void build_php(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<sat::Var>> x(static_cast<std::size_t>(pigeons));
  for (auto& row : x) {
    for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(pos(x[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)]));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause(neg(x[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
                     neg(x[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)]));
      }
    }
  }
}

TEST(SatSolver, PigeonholeUnsat) {
  for (int holes = 2; holes <= 6; ++holes) {
    Solver s;
    build_php(s, holes + 1, holes);
    EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable) << "PHP(" << holes + 1 << "," << holes << ")";
  }
}

TEST(SatSolver, PigeonholeExactFitSat) {
  Solver s;
  build_php(s, 5, 5);
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
}

/// Brute-force satisfiability of a clause list over `n` vars.
bool brute_force_sat(int n, const std::vector<std::vector<Lit>>& clauses) {
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool all = true;
    for (const auto& cl : clauses) {
      bool any = false;
      for (const Lit l : cl) {
        const bool val = ((mask >> l.var()) & 1u) != 0;
        if (val != l.negative()) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

class RandomThreeSat : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomThreeSat, AgreesWithBruteForce) {
  Rng rng(GetParam());
  const int n = 12;
  // Near the phase transition (ratio ~4.3) both outcomes occur.
  const int num_clauses = 51;
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k) {
      cl.push_back(Lit(static_cast<sat::Var>(rng.next_below(n)), rng.next_bool(0.5)));
    }
    clauses.push_back(std::move(cl));
  }
  Solver s;
  for (int i = 0; i < n; ++i) s.new_var();
  bool trivially_unsat = false;
  for (const auto& cl : clauses) {
    if (!s.add_clause(cl)) trivially_unsat = true;
  }
  const bool expected = brute_force_sat(n, clauses);
  if (trivially_unsat) {
    EXPECT_FALSE(expected);
    return;
  }
  const SolveResult r = s.solve();
  EXPECT_EQ(r == SolveResult::Satisfiable, expected);
  if (r == SolveResult::Satisfiable) {
    // The model must actually satisfy every clause.
    for (const auto& cl : clauses) {
      bool any = false;
      for (const Lit l : cl) {
        if (s.model_value(l)) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomThreeSat,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 10u, 11u, 12u,
                                           13u, 14u, 15u, 16u, 17u, 18u, 19u, 20u));

TEST(SatSolver, IncrementalStrengthening) {
  // Solve, then add clauses and solve again (the optimiser's usage pattern).
  Solver s;
  std::vector<sat::Var> v;
  for (int i = 0; i < 4; ++i) v.push_back(s.new_var());
  s.add_clause(std::vector<Lit>{pos(v[0]), pos(v[1]), pos(v[2]), pos(v[3])});
  int models = 0;
  while (s.solve() == SolveResult::Satisfiable) {
    ++models;
    ASSERT_LE(models, 20);
    // Block the found model.
    std::vector<Lit> block;
    for (const auto var : v) block.push_back(s.model_value(var) ? neg(var) : pos(var));
    s.add_clause(block);
  }
  EXPECT_EQ(models, 15);  // 2^4 - 1 assignments satisfy the initial clause
}

TEST(SatSolver, InterruptReturnsUnknown) {
  Solver s;
  build_php(s, 11, 10);  // hard enough not to finish instantly
  const auto r = s.solve([] { return true; });
  EXPECT_EQ(r, SolveResult::Unknown);
}

TEST(SatSolver, StatsAccumulate) {
  Solver s;
  build_php(s, 6, 5);
  s.solve();
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().decisions, 0u);
  EXPECT_GT(s.stats().propagations, 0u);
}

TEST(SatSolver, UnknownVariableRejected) {
  Solver s;
  EXPECT_THROW(s.add_clause(pos(3)), std::out_of_range);
}

// -- ReduceDB invariants ------------------------------------------------------

/// Builds a learnt clause of `size` literals over distinct fresh-ish vars.
sat::CRef alloc_learnt(sat::ClauseArena& arena, int size, std::uint32_t lbd, float activity,
                       int first_var) {
  std::vector<Lit> lits;
  for (int i = 0; i < size; ++i) lits.push_back(pos(static_cast<sat::Var>(first_var + i)));
  const sat::CRef cr = arena.alloc(lits, /*learnt=*/true);
  arena.view(cr).set_lbd(lbd);
  arena.view(cr).set_activity(activity);
  return cr;
}

TEST(ReduceDb, PinsGlueBinaryAndLockedClauses) {
  sat::ClauseArena arena;
  std::vector<sat::CRef> learnts;
  const sat::CRef glue = alloc_learnt(arena, 5, sat::ReduceDb::kGlueLbd, 0.0f, 0);
  const sat::CRef binary = alloc_learnt(arena, 2, 9, 0.0f, 10);
  const sat::CRef locked_cr = alloc_learnt(arena, 5, 9, 0.0f, 20);
  // Four candidates with distinct LBDs; the worst half (two highest) go.
  const sat::CRef c3 = alloc_learnt(arena, 5, 3, 0.0f, 30);
  const sat::CRef c4 = alloc_learnt(arena, 5, 4, 0.0f, 40);
  const sat::CRef c8 = alloc_learnt(arena, 5, 8, 0.0f, 50);
  const sat::CRef c9 = alloc_learnt(arena, 5, 9, 0.0f, 60);
  learnts = {glue, binary, locked_cr, c3, c4, c8, c9};

  sat::ReduceDb db;
  const std::size_t deleted =
      db.reduce(arena, learnts, [&](sat::CRef cr) { return cr == locked_cr; });

  EXPECT_EQ(deleted, 2u);
  EXPECT_FALSE(arena.view(glue).deleted());
  EXPECT_FALSE(arena.view(binary).deleted());
  EXPECT_FALSE(arena.view(locked_cr).deleted());
  EXPECT_FALSE(arena.view(c3).deleted());
  EXPECT_FALSE(arena.view(c4).deleted());
  EXPECT_TRUE(arena.view(c8).deleted());
  EXPECT_TRUE(arena.view(c9).deleted());
  // The learnts list was compacted to exactly the survivors.
  EXPECT_EQ(learnts.size(), 5u);
  for (const sat::CRef cr : learnts) EXPECT_FALSE(arena.view(cr).deleted());
}

TEST(ReduceDb, RanksByLbdThenActivityDeterministically) {
  sat::ClauseArena arena;
  // Equal LBD: the lower-activity clause is deleted first.
  const sat::CRef cold = alloc_learnt(arena, 5, 6, 0.1f, 0);
  const sat::CRef hot = alloc_learnt(arena, 5, 6, 5.0f, 10);
  std::vector<sat::CRef> learnts = {cold, hot};
  sat::ReduceDb db;
  EXPECT_EQ(db.reduce(arena, learnts, [](sat::CRef) { return false; }), 1u);
  EXPECT_TRUE(arena.view(cold).deleted());
  EXPECT_FALSE(arena.view(hot).deleted());
}

TEST(ReduceDb, ScheduleGrowsLinearly) {
  sat::ReduceDb db;
  EXPECT_FALSE(db.due(sat::ReduceDb::kFirstReduceConflicts - 1));
  EXPECT_TRUE(db.due(sat::ReduceDb::kFirstReduceConflicts));

  sat::ClauseArena arena;
  std::vector<sat::CRef> learnts;
  (void)db.reduce(arena, learnts, [](sat::CRef) { return false; });
  EXPECT_EQ(db.reductions(), 1u);
  // Next due point: 2*first + 1*increment (linearly growing interval).
  const std::uint64_t next =
      2 * sat::ReduceDb::kFirstReduceConflicts + sat::ReduceDb::kReduceIncrement;
  EXPECT_FALSE(db.due(next - 1));
  EXPECT_TRUE(db.due(next));
}

TEST(SatSolver, ReduceDbFiresOnHardInstanceAndStaysCorrect) {
  // PHP(8,7) needs well over kFirstReduceConflicts conflicts, so ReduceDB
  // runs at least once mid-proof; the answer must still be UNSAT and the
  // kept/deleted accounting must be populated.
  Solver s;
  build_php(s, 8, 7);
  EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
  EXPECT_GT(s.stats().conflicts, sat::ReduceDb::kFirstReduceConflicts);
  EXPECT_GT(s.stats().learnt_deleted, 0u);
  EXPECT_GT(s.stats().learnt_kept, 0u);
}

TEST(SatSolver, LearntsSurviveIncrementalStrengthening) {
  // The optimiser's pattern: solve, add a tightening clause, solve again.
  // Learnt state (and the ReduceDB schedule) persists across calls without
  // corrupting correctness in either direction.
  Solver s;
  build_php(s, 7, 7);  // exact fit: SAT
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
  // Forbid the hole pigeon 0 occupies; still SAT (6 remaining... 7 pigeons,
  // 7 holes minus the blocked assignment only removes one placement).
  for (int h = 0; h < 7; ++h) {
    if (s.model_value(static_cast<sat::Var>(h))) {
      s.add_clause(neg(static_cast<sat::Var>(h)));
      break;
    }
  }
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
  const std::uint64_t conflicts_before = s.stats().conflicts;
  // Now forbid every hole for pigeon 0: UNSAT.
  for (int h = 0; h < 7; ++h) s.add_clause(neg(static_cast<sat::Var>(h)));
  EXPECT_EQ(s.solve(), SolveResult::Unsatisfiable);
  EXPECT_GE(s.stats().conflicts, conflicts_before);
}

// --- Assumptions (incremental probes) ----------------------------------------
//
// solve(interrupt, assumptions) decides the formula under extra unit premises
// without touching the clause database; on Unsatisfiable, failed_assumptions()
// is the subset of premises the refutation actually used (empty exactly when
// the formula is unsatisfiable on its own). The optimiser's binary search
// leans on every property pinned down here.

TEST(SatSolver, AssumptionsSelectTheModelWithoutCommitting) {
  Solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  s.add_clause(pos(a), pos(b));
  EXPECT_EQ(s.solve(nullptr, {neg(a)}), SolveResult::Satisfiable);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  // The opposite probe on the same solver: nothing was committed.
  EXPECT_EQ(s.solve(nullptr, {neg(b)}), SolveResult::Satisfiable);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_FALSE(s.model_value(b));
}

TEST(SatSolver, FailedAssumptionsPinpointTheRefutedSubset) {
  Solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  const auto c = s.new_var();
  s.add_clause(neg(a), neg(b));
  EXPECT_EQ(s.solve(nullptr, {pos(a), pos(b), pos(c)}), SolveResult::Unsatisfiable);
  EXPECT_FALSE(s.proven_unsat());  // unsat only *under* the assumptions
  const auto& failed = s.failed_assumptions();
  const auto holds = [&failed](Lit l) {
    return std::find(failed.begin(), failed.end(), l) != failed.end();
  };
  EXPECT_TRUE(holds(pos(a)));
  EXPECT_TRUE(holds(pos(b)));
  EXPECT_FALSE(holds(pos(c)));  // c played no part in the refutation
  // Without the assumptions the formula is satisfiable again.
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
}

TEST(SatSolver, ContradictoryAssumptionsFailAgainstEachOther) {
  Solver s;
  const auto v = s.new_var();
  EXPECT_EQ(s.solve(nullptr, {pos(v), neg(v)}), SolveResult::Unsatisfiable);
  EXPECT_FALSE(s.proven_unsat());
  EXPECT_EQ(s.failed_assumptions().size(), 2u);
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
}

TEST(SatSolver, GloballyUnsatFormulaYieldsEmptyFailedSet) {
  Solver s;
  const auto v = s.new_var();
  const auto w = s.new_var();
  EXPECT_TRUE(s.add_clause(pos(v)));
  EXPECT_FALSE(s.add_clause(neg(v)));
  EXPECT_EQ(s.solve(nullptr, {pos(w)}), SolveResult::Unsatisfiable);
  EXPECT_TRUE(s.proven_unsat());
  EXPECT_TRUE(s.failed_assumptions().empty());
}

TEST(SatSolver, AssumptionsAlreadyForcedAtLevelZeroStayAligned) {
  // A level-0-true assumption contributes an empty decision level so later
  // assumptions keep their index alignment across backjumps.
  Solver s;
  const auto a = s.new_var();
  const auto b = s.new_var();
  const auto c = s.new_var();
  s.add_clause(pos(a));  // level-0 unit: the first assumption is already true
  EXPECT_EQ(s.solve(nullptr, {pos(a), pos(b), neg(c)}), SolveResult::Satisfiable);
  EXPECT_TRUE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_FALSE(s.model_value(c));
}

TEST(SatSolver, ConflictUnderAssumptionLearnsOnlyPermanentFacts) {
  // F = (u∨v)(u∨w)(¬v∨¬w) entails u. Probing ¬u must fail with ¬u as the
  // sole culprit, and anything learnt along the way must be a consequence of
  // F alone: the opposite probe and the unassumed solve both succeed with u
  // true, without re-deriving the conflict (the learnt fact survived).
  Solver s;
  const auto u = s.new_var();
  const auto v = s.new_var();
  const auto w = s.new_var();
  s.add_clause(pos(u), pos(v));
  s.add_clause(pos(u), pos(w));
  s.add_clause(neg(v), neg(w));
  EXPECT_EQ(s.solve(nullptr, {neg(u)}), SolveResult::Unsatisfiable);
  ASSERT_EQ(s.failed_assumptions().size(), 1u);
  EXPECT_EQ(s.failed_assumptions().front(), neg(u));
  EXPECT_GE(s.stats().conflicts, 1u);
  const auto conflicts_after_probe = s.stats().conflicts;
  EXPECT_EQ(s.solve(nullptr, {pos(u)}), SolveResult::Satisfiable);
  EXPECT_EQ(s.stats().conflicts, conflicts_after_probe);
  EXPECT_EQ(s.solve(), SolveResult::Satisfiable);
  EXPECT_TRUE(s.model_value(u));
}

TEST(SatSolver, InterruptDuringAssumptionProbeReturnsUnknown) {
  // The conflict-boundary interrupt contract holds under assumptions too.
  Solver s;
  const auto u = s.new_var();
  const auto v = s.new_var();
  const auto w = s.new_var();
  s.add_clause(pos(u), pos(v));
  s.add_clause(pos(u), pos(w));
  s.add_clause(neg(v), neg(w));
  EXPECT_EQ(s.solve([] { return true; }, {neg(u)}), SolveResult::Unknown);
}

TEST(SatSolver, UnknownAssumptionVariableIsRejected) {
  Solver s;
  (void)s.new_var();
  EXPECT_THROW((void)s.solve(nullptr, {pos(static_cast<sat::Var>(5))}), std::out_of_range);
}

}  // namespace
}  // namespace qxmap
