/// Shared gate-for-gate comparison for the QASM round-trip suites: exact on
/// kind, operands and classical guard; writer-precision on angle parameters
/// (the writer emits 12 fixed decimals, so pi-derived angles re-parse to
/// within 1e-11, not bit-exactly).

#pragma once

#include <gtest/gtest.h>

#include "ir/circuit.hpp"

namespace qxmap::testutil {

inline void expect_same_gates_within_writer_precision(const Circuit& original,
                                                      const Circuit& reparsed) {
  ASSERT_EQ(reparsed.num_qubits(), original.num_qubits());
  ASSERT_EQ(reparsed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const Gate& a = original.gate(i);
    const Gate& b = reparsed.gate(i);
    EXPECT_EQ(b.kind, a.kind) << "gate " << i << ": " << a.to_string();
    EXPECT_EQ(b.target, a.target) << "gate " << i << ": " << a.to_string();
    EXPECT_EQ(b.control, a.control) << "gate " << i << ": " << a.to_string();
    EXPECT_EQ(b.condition, a.condition) << "gate " << i << ": " << a.to_string();
    ASSERT_EQ(b.params.size(), a.params.size());
    for (std::size_t p = 0; p < a.params.size(); ++p) {
      EXPECT_NEAR(b.params[p], a.params[p], 1e-11) << "gate " << i << ": " << a.to_string();
    }
  }
}

}  // namespace qxmap::testutil
