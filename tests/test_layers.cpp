#include "ir/layers.hpp"

#include <gtest/gtest.h>

namespace qxmap {
namespace {

/// Fig. 1b of the paper: the CNOT skeleton of the running example.
std::vector<Gate> fig1b_gates() {
  return {Gate::cnot(2, 3), Gate::cnot(0, 1), Gate::cnot(1, 2), Gate::cnot(0, 1),
          Gate::cnot(2, 1)};
}

TEST(Layers, AsapBasic) {
  Circuit c(4);
  c.cnot(0, 1);
  c.cnot(2, 3);  // disjoint from the first: same layer
  c.cnot(1, 2);  // depends on both: next layer
  const auto layers = asap_layers(c);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(layers[1], (std::vector<std::size_t>{2}));
}

TEST(Layers, AsapSingleQubitGatesPack) {
  Circuit c(2);
  c.h(0);
  c.h(1);   // same layer
  c.t(0);   // next layer (same qubit as gate 0)
  const auto layers = asap_layers(c);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].size(), 2u);
  EXPECT_EQ(layers[1], (std::vector<std::size_t>{2}));
}

TEST(Layers, AsapBarrierClosesLayers) {
  Circuit c(2);
  c.h(0);
  c.append(Gate::barrier());
  c.h(1);  // would fit layer 0, but the barrier forces layer 1
  const auto layers = asap_layers(c);
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[1], (std::vector<std::size_t>{2}));
}

TEST(Layers, AsapEmptyCircuit) {
  EXPECT_TRUE(asap_layers(Circuit(3)).empty());
}

TEST(Layers, DisjointClustersMatchExample10) {
  // Paper Example 10: G' = {g3, g4, g5} (1-based) = starts {2, 3, 4} (0-based).
  const auto starts = disjoint_cluster_starts(fig1b_gates());
  EXPECT_EQ(starts, (std::vector<std::size_t>{2, 3, 4}));
}

TEST(Layers, DisjointClustersAllDisjoint) {
  const std::vector<Gate> gates{Gate::cnot(0, 1), Gate::cnot(2, 3), Gate::cnot(4, 5)};
  EXPECT_TRUE(disjoint_cluster_starts(gates).empty());
}

TEST(Layers, DisjointClustersAllOverlapping) {
  const std::vector<Gate> gates{Gate::cnot(0, 1), Gate::cnot(1, 2), Gate::cnot(2, 0)};
  EXPECT_EQ(disjoint_cluster_starts(gates), (std::vector<std::size_t>{1, 2}));
}

TEST(Layers, BoundedQubitClustersMatchExample10) {
  // Paper Example 10 (qubit triangle): G' = {g2} (1-based) = starts {1}.
  const auto starts = bounded_qubit_cluster_starts(fig1b_gates(), 3);
  EXPECT_EQ(starts, (std::vector<std::size_t>{1}));
}

TEST(Layers, BoundedQubitClustersSingleClusterWhenSmall) {
  const std::vector<Gate> gates{Gate::cnot(0, 1), Gate::cnot(1, 2), Gate::cnot(0, 2)};
  EXPECT_TRUE(bounded_qubit_cluster_starts(gates, 3).empty());
}

TEST(Layers, BoundedQubitClustersRejectsTinyBound) {
  EXPECT_THROW(bounded_qubit_cluster_starts(fig1b_gates(), 1), std::invalid_argument);
}

TEST(Layers, BoundedVersusDisjointAreDifferentGroupings) {
  const auto gates = fig1b_gates();
  EXPECT_NE(disjoint_cluster_starts(gates), bounded_qubit_cluster_starts(gates, 3));
}

}  // namespace
}  // namespace qxmap
