/// Table 1 reproduction harness.
///
/// Regenerates every column of the paper's Table 1 on the synthetic
/// Table-1 workload suite (same n / #1q / #CNOT per benchmark; see
/// DESIGN.md for the substitution note):
///
///   * original cost                      — #1q + #CNOT before mapping
///   * cmin, t                            — exact method, Sec. 3 (full m = 5)
///   * subsets: c (Δmin), t               — Sec. 4.1
///   * disjoint / odd / triangle columns  — Sec. 4.2 (|G'|, c (Δmin), t)
///   * IBM-style heuristic: c (Δmin)      — Qiskit 0.4 reimplementation,
///                                          best of 5 runs (paper protocol)
///
/// A DP certifier (exact/reference_search) provides the ground-truth
/// minimum independently of the reasoning engines, so Δmin is exact even
/// when a SAT run hits its per-instance budget (such entries are marked
/// with '*'). The paper's own cmin / IBM numbers are printed alongside for
/// shape comparison. Summary lines reproduce the headline claims (average
/// overhead of the heuristic vs. the minimum, in total gates and in added
/// gates).
///
/// Usage: table1 [--budget-ms N] [--engine z3|cdcl] [--max-cnots N]
///               [--benchmark NAME] [--skip-min] [--json PATH]
///
/// `--json PATH` additionally writes the tracked performance baseline
/// (BENCH_table1.json at the repo root): one row per benchmark with the
/// Sec. 4.1 subsets configuration — row schema {circuit, arch, cost,
/// wall_ms, proven}, under top-level {schema, method, engine, budget_ms,
/// meta} (meta: environment header, see bench/bench_meta.hpp).

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "api/qxmap.hpp"
#include "arch/swap_costs.hpp"
#include "bench_meta.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "exact/reference_search.hpp"
#include "exact/strategies.hpp"

namespace {

using namespace qxmap;

struct Config {
  long long budget_ms = 5000;
  // The paper used Z3 (--engine z3); the library's own CDCL backend proved
  // roughly an order of magnitude faster on these instances and is the
  // default for the shipped harness (see EXPERIMENTS.md).
  reason::EngineKind engine = reason::EngineKind::Cdcl;
  int max_cnots = 1000;
  std::optional<std::string> only;
  bool skip_min = false;
  std::optional<std::string> json_path;
};

Config parse_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--budget-ms") {
      cfg.budget_ms = std::stoll(next());
    } else if (arg == "--engine") {
      const std::string v = next();
      cfg.engine = (v == "cdcl") ? reason::EngineKind::Cdcl : reason::EngineKind::Z3;
    } else if (arg == "--max-cnots") {
      cfg.max_cnots = std::stoi(next());
    } else if (arg == "--benchmark") {
      cfg.only = next();
    } else if (arg == "--skip-min") {
      cfg.skip_min = true;
    } else if (arg == "--json") {
      cfg.json_path = next();
    } else {
      std::cerr << "unknown argument: " << arg << '\n';
      std::exit(2);
    }
  }
  return cfg;
}

struct Cell {
  long long c = -1;       // mapped total cost (gate count)
  double seconds = 0.0;
  bool proven = false;    // engine proved optimality under its restriction
  int points = 0;         // |G'| + 1
};

std::string fmt_cell(const Cell& cell, long long certified_cmin) {
  if (cell.c < 0) return "      --      ";
  std::string s = std::to_string(cell.c);
  s += " (+" + std::to_string(cell.c - certified_cmin) + ")";
  if (!cell.proven) s += '*';
  s += " " + format_fixed(cell.seconds, 1) + "s";
  return s;
}

Cell run_exact(const Circuit& circuit, const exact::ExactOptions& opt) {
  Cell cell;
  try {
    const auto res = exact::map_exact(circuit, arch::ibm_qx4(), opt);
    if (res.status == reason::Status::Optimal || res.status == reason::Status::Feasible) {
      cell.c = static_cast<long long>(res.mapped.size());
      cell.proven = res.status == reason::Status::Optimal;
      cell.points = res.permutation_points;
    }
    cell.seconds = res.seconds;
  } catch (const std::exception& e) {
    std::cerr << "  [exact run failed: " << e.what() << "]\n";
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);

  std::cout << "Table 1 — mapping the benchmark suite to IBM QX4 (engine: "
            << reason::to_string(cfg.engine) << ", budget " << cfg.budget_ms
            << " ms per solve; '*' = budget hit, best found shown)\n"
            << "Workloads are synthetic re-generations with the paper's exact gate counts;\n"
            << "'paper' columns quote Wille/Burgholzer/Zulehner DAC'19 for shape comparison.\n\n";

  std::cout << pad_right("benchmark", 13) << pad_left("n", 3) << pad_left("orig", 6)
            << pad_left("cmin(DP)", 10) << pad_left("min(Sec3)", 17)
            << pad_left("subsets(4.1)", 17) << pad_left("disjoint", 20) << pad_left("odd", 20)
            << pad_left("triangle", 20) << pad_left("IBM-style", 12)
            << pad_left("paper cmin", 12) << pad_left("paper IBM", 11) << '\n';

  double sum_heur_total_ratio = 0.0;
  double sum_heur_added_ratio = 0.0;
  int count_added = 0;
  int rows = 0;

  struct JsonRow {
    std::string circuit;
    long long cost = -1;
    double wall_ms = 0.0;
    bool proven = false;
  };
  std::vector<JsonRow> json_rows;

  for (const auto& b : bench::table1_benchmarks()) {
    if (cfg.only && b.name != *cfg.only) continue;
    if (b.cnot > cfg.max_cnots) continue;
    const Circuit circuit = b.build();
    const long long original = b.original_cost();

    // Ground truth minimum via the DP certifier (always fast at m = 5).
    std::vector<Gate> cnots;
    for (const auto& g : circuit) {
      if (g.is_cnot()) cnots.push_back(g);
    }
    std::vector<std::size_t> all_points;
    for (std::size_t k = 1; k < cnots.size(); ++k) all_points.push_back(k);
    exact::CostModel costs;
    costs.swap_cost = 7;
    const auto ref =
        exact::minimal_cost_reference(cnots, b.n, arch::ibm_qx4(), all_points, costs);
    const long long cmin = original + ref.cost_f;

    exact::ExactOptions base;
    base.engine = cfg.engine;
    base.budget = std::chrono::milliseconds(cfg.budget_ms);

    Cell min_cell;
    if (!cfg.skip_min) min_cell = run_exact(circuit, base);

    auto subset_opt = base;
    subset_opt.use_subsets = true;
    const Cell subset_cell = run_exact(circuit, subset_opt);
    json_rows.push_back(
        {b.name, subset_cell.c, subset_cell.seconds * 1000.0, subset_cell.proven});

    const auto strategy_cell = [&](exact::PermutationStrategy s) {
      auto opt = base;
      opt.strategy = s;
      opt.use_subsets = true;  // strategies compose with Sec. 4.1
      return run_exact(circuit, opt);
    };
    const Cell disjoint = strategy_cell(exact::PermutationStrategy::DisjointQubits);
    const Cell odd = strategy_cell(exact::PermutationStrategy::OddGates);
    const Cell triangle = strategy_cell(exact::PermutationStrategy::QubitTriangle);

    heuristic::StochasticSwapOptions sopt;
    sopt.seed = Rng::seed_from_string(b.name);
    sopt.runs = 5;  // the paper's protocol: 5 runs, best kept
    const auto heur = heuristic::map_stochastic_swap(circuit, arch::ibm_qx4(), sopt);
    const long long heur_c = static_cast<long long>(heur.mapped.size());

    const auto fmt_strategy = [&](const Cell& cell) {
      if (cell.c < 0) return pad_left("--", 20);
      return pad_left("|G'|=" + std::to_string(cell.points) + " " + fmt_cell(cell, cmin), 20);
    };

    std::cout << pad_right(b.name, 13) << pad_left(std::to_string(b.n), 3)
              << pad_left(std::to_string(original), 6) << pad_left(std::to_string(cmin), 10)
              << pad_left(fmt_cell(min_cell, cmin), 17)
              << pad_left(fmt_cell(subset_cell, cmin), 17) << fmt_strategy(disjoint)
              << fmt_strategy(odd) << fmt_strategy(triangle)
              << pad_left(std::to_string(heur_c) + " (+" + std::to_string(heur_c - cmin) + ")",
                          12)
              << pad_left(std::to_string(b.paper_cmin), 12)
              << pad_left(std::to_string(b.paper_ibm), 11) << '\n';

    sum_heur_total_ratio += static_cast<double>(heur_c - cmin) / static_cast<double>(cmin);
    if (ref.cost_f > 0) {
      sum_heur_added_ratio +=
          static_cast<double>(heur_c - original - ref.cost_f) / static_cast<double>(ref.cost_f);
      ++count_added;
    }
    ++rows;
  }

  if (cfg.json_path) {
    std::ofstream out(*cfg.json_path);
    if (!out) {
      std::cerr << "cannot open " << *cfg.json_path << " for writing\n";
      return 1;
    }
    out << "{\n"
        << "  \"schema\": \"qxmap-table1-baseline-v1\",\n"
        << "  \"method\": \"exact + subsets (Sec. 4.1)\",\n"
        << "  \"engine\": \"" << reason::to_string(cfg.engine) << "\",\n"
        << "  \"budget_ms\": " << cfg.budget_ms << ",\n";
    // Informational environment header; top-level fields above stay first
    // so bench_sat_smoke's first-occurrence scanner keeps finding them.
    bench::write_meta_json(out, cfg.budget_ms);
    out << ",\n"
        << "  \"rows\": [\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const auto& r = json_rows[i];
      out << "    {\"circuit\": \"" << r.circuit << "\", \"arch\": \"ibm_qx4\", \"cost\": "
          << r.cost << ", \"wall_ms\": " << format_fixed(r.wall_ms, 1)
          << ", \"proven\": " << (r.proven ? "true" : "false") << '}'
          << (i + 1 < json_rows.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
    std::cout << "\nwrote baseline: " << *cfg.json_path << " (" << json_rows.size()
              << " rows)\n";
  }

  if (rows > 0) {
    std::cout << "\nSummary over " << rows << " benchmarks:\n";
    std::cout << "  IBM-style heuristic vs. minimum, total gate count: +"
              << format_fixed(100.0 * sum_heur_total_ratio / rows, 1) << "% on average (paper: +45%)\n";
    if (count_added > 0) {
      std::cout << "  IBM-style heuristic vs. minimum, added gates only: +"
                << format_fixed(100.0 * sum_heur_added_ratio / count_added, 1)
                << "% on average (paper: +104%)\n";
    }
  }
  return 0;
}
