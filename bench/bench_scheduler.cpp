/// Scheduler ablation for the parallel exact mapper (docs/concurrency.md):
/// static-partition-era baseline (index-order queue, solve-start bounds
/// only — the PR 2 scheduler) vs the work-stealing pop order vs work
/// stealing + engine-cooperative mid-solve tightening, on the multi-subset
/// Table 1 circuits (Sec. 4.1 instances on IBM QX4). Wall time is the
/// metric; results are bit-identical across all three by construction.
///
/// The steal order is a pool-saturation lever: it needs real hardware
/// parallelism to show up, so expect parity on a single-core box.
/// Cooperative tightening cuts total *work* (hopeless branches abort
/// mid-solve), so it wins even when workers time-share one core; see
/// docs/benchmarks.md for tracked numbers.

#include <benchmark/benchmark.h>

#include <chrono>
#include <stdexcept>
#include <string>

#include "arch/architectures.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "exact/exact_mapper.hpp"

namespace {

using namespace qxmap;

Circuit table1_circuit(const std::string& name) {
  for (const auto& b : bench::table1_benchmarks()) {
    if (b.name == name) return b.build();
  }
  throw std::invalid_argument("bench_scheduler: unknown Table 1 benchmark " + name);
}

void run_scheduler(benchmark::State& state, const std::string& name, exact::Toggle steal,
                   exact::Toggle tighten) {
  const Circuit circuit = table1_circuit(name);
  exact::ExactOptions opt;
  opt.engine = reason::EngineKind::Cdcl;
  opt.use_subsets = true;
  opt.num_threads = 4;  // QX4 has 4 connected 4-subsets; n=3 lists are larger
  opt.work_stealing = steal;
  opt.cooperative_tightening = tighten;
  opt.budget = std::chrono::milliseconds(120000);
  opt.verify = false;
  long long tightenings = 0;
  for (auto _ : state) {
    const auto res = exact::map_exact(circuit, arch::ibm_qx4(), opt);
    tightenings += res.bound_tightenings;
    benchmark::DoNotOptimize(res);
  }
  state.counters["mid_solve_tightenings"] =
      benchmark::Counter(static_cast<double>(tightenings), benchmark::Counter::kAvgIterations);
}

#define QXMAP_SCHEDULER_BENCH(circuit_name)                                            \
  void BM_Static_##circuit_name(benchmark::State& state) {                             \
    run_scheduler(state, #circuit_name, exact::Toggle::Off, exact::Toggle::Off);       \
  }                                                                                    \
  BENCHMARK(BM_Static_##circuit_name)->Unit(benchmark::kMillisecond)->Iterations(3);   \
  void BM_Steal_##circuit_name(benchmark::State& state) {                              \
    run_scheduler(state, #circuit_name, exact::Toggle::On, exact::Toggle::Off);        \
  }                                                                                    \
  BENCHMARK(BM_Steal_##circuit_name)->Unit(benchmark::kMillisecond)->Iterations(3);    \
  void BM_StealCoop_##circuit_name(benchmark::State& state) {                          \
    run_scheduler(state, #circuit_name, exact::Toggle::On, exact::Toggle::On);         \
  }                                                                                    \
  BENCHMARK(BM_StealCoop_##circuit_name)->Unit(benchmark::kMillisecond)->Iterations(3)

// The n=4 rows (4 subset instances each) plus the hardest n=3 row. Names
// with characters illegal in identifiers are aliased through the literal.
QXMAP_SCHEDULER_BENCH(4gt11_84);
QXMAP_SCHEDULER_BENCH(miller_11);

void BM_Static_rd32_v0_66(benchmark::State& state) {
  run_scheduler(state, "rd32-v0_66", exact::Toggle::Off, exact::Toggle::Off);
}
BENCHMARK(BM_Static_rd32_v0_66)->Unit(benchmark::kMillisecond)->Iterations(3);
void BM_Steal_rd32_v0_66(benchmark::State& state) {
  run_scheduler(state, "rd32-v0_66", exact::Toggle::On, exact::Toggle::Off);
}
BENCHMARK(BM_Steal_rd32_v0_66)->Unit(benchmark::kMillisecond)->Iterations(3);
void BM_StealCoop_rd32_v0_66(benchmark::State& state) {
  run_scheduler(state, "rd32-v0_66", exact::Toggle::On, exact::Toggle::On);
}
BENCHMARK(BM_StealCoop_rd32_v0_66)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
