/// Size of the symbolic formulation (variables/clauses emitted into the
/// reasoning engine) as a function of circuit length and strategy — the
/// quantity the Sec. 4 search-space arithmetic (2^(n·m·|G|) vs.
/// 2^(n²·|G|) vs. 2^(n·m·(|G'|+1))) is really about.

#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "arch/subsets.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"
#include "exact/encoder.hpp"
#include "exact/strategies.hpp"
#include "reason/cdcl_engine.hpp"

namespace {

using namespace qxmap;

void BM_EncodingSize(benchmark::State& state) {
  const int num_cnots = static_cast<int>(state.range(0));
  const auto strategy = static_cast<exact::PermutationStrategy>(state.range(1));
  const Circuit circuit = bench::random_circuit(4, 0, num_cnots, 11, "enc");
  std::vector<Gate> cnots;
  for (const auto& g : circuit) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  const auto points = exact::permutation_points(cnots, strategy, cm);
  exact::CostModel costs;
  costs.swap_cost = 7;

  std::size_t vars = 0;
  std::size_t clauses = 0;
  for (auto _ : state) {
    reason::CdclEngine engine;
    const exact::Encoding enc(engine, cnots, 4, cm, table, points, costs);
    vars = enc.num_variables();
    clauses = enc.num_clauses();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["vars"] = static_cast<double>(vars);
  state.counters["clauses"] = static_cast<double>(clauses);
  state.SetLabel(exact::to_string(strategy));
}
BENCHMARK(BM_EncodingSize)
    ->ArgsProduct({{5, 10, 20, 40}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

/// Encode-time share of one shard's Sec. 4.1 instance family, the quantity
/// the prefix split exists for: the four connected 4-subsets of QX4 share
/// the Eq. (1)/(3) skeleton, so the shared-prefix path pays it once (one
/// replay + one snapshot copy + cheap per-instance suffixes) where the
/// fresh path re-emits it per instance. Compare BM_SubsetFamilyEncodeFresh
/// with BM_SubsetFamilyEncodeSharedPrefix at equal args.
struct SubsetFamily {
  std::vector<Gate> cnots;
  std::vector<std::size_t> points;
  std::vector<arch::CouplingMap> induced;
  exact::CostModel costs;
};

SubsetFamily subset_family(int num_cnots) {
  SubsetFamily f;
  const Circuit circuit = bench::random_circuit(4, 0, num_cnots, 11, "enc");
  for (const auto& g : circuit) {
    if (g.is_cnot()) f.cnots.push_back(g);
  }
  const auto cm = arch::ibm_qx4();
  f.points = exact::permutation_points(f.cnots, exact::PermutationStrategy::All, cm);
  for (const auto& subset : arch::connected_subsets(cm, 4)) {
    f.induced.push_back(cm.induced(subset));
  }
  f.costs.swap_cost = 7;
  return f;
}

void BM_SubsetFamilyEncodeFresh(benchmark::State& state) {
  const SubsetFamily f = subset_family(static_cast<int>(state.range(0)));
  std::size_t vars = 0;
  for (auto _ : state) {
    for (const auto& cm : f.induced) {
      const arch::SwapCostTable table(cm);
      reason::CdclEngine engine;
      const exact::Encoding enc(engine, f.cnots, 4, cm, table, f.points, f.costs);
      vars += enc.num_variables();
      benchmark::DoNotOptimize(enc);
    }
  }
  state.counters["instances"] = static_cast<double>(f.induced.size());
  benchmark::DoNotOptimize(vars);
}
BENCHMARK(BM_SubsetFamilyEncodeFresh)->Arg(5)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_SubsetFamilyEncodeSharedPrefix(benchmark::State& state) {
  const SubsetFamily f = subset_family(static_cast<int>(state.range(0)));
  std::size_t vars = 0;
  for (auto _ : state) {
    const auto prefix = exact::Encoding::build_prefix(f.cnots, 4, 4, f.points);
    reason::CdclEngine engine;
    bool first = true;
    for (const auto& cm : f.induced) {
      const arch::SwapCostTable table(cm);
      const bool holds = !first && engine.reset_to_prefix();
      const exact::Encoding enc(engine, prefix, cm, table, f.costs, holds);
      vars += enc.num_variables();
      benchmark::DoNotOptimize(enc);
      first = false;
    }
  }
  state.counters["instances"] = static_cast<double>(f.induced.size());
  benchmark::DoNotOptimize(vars);
}
BENCHMARK(BM_SubsetFamilyEncodeSharedPrefix)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace
