/// Size of the symbolic formulation (variables/clauses emitted into the
/// reasoning engine) as a function of circuit length and strategy — the
/// quantity the Sec. 4 search-space arithmetic (2^(n·m·|G|) vs.
/// 2^(n²·|G|) vs. 2^(n·m·(|G'|+1))) is really about.

#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "arch/swap_costs.hpp"
#include "bench_circuits/generators.hpp"
#include "exact/encoder.hpp"
#include "exact/strategies.hpp"
#include "reason/cdcl_engine.hpp"

namespace {

using namespace qxmap;

void BM_EncodingSize(benchmark::State& state) {
  const int num_cnots = static_cast<int>(state.range(0));
  const auto strategy = static_cast<exact::PermutationStrategy>(state.range(1));
  const Circuit circuit = bench::random_circuit(4, 0, num_cnots, 11, "enc");
  std::vector<Gate> cnots;
  for (const auto& g : circuit) {
    if (g.is_cnot()) cnots.push_back(g);
  }
  const auto cm = arch::ibm_qx4();
  const arch::SwapCostTable table(cm);
  const auto points = exact::permutation_points(cnots, strategy, cm);
  exact::CostModel costs;
  costs.swap_cost = 7;

  std::size_t vars = 0;
  std::size_t clauses = 0;
  for (auto _ : state) {
    reason::CdclEngine engine;
    const exact::Encoding enc(engine, cnots, 4, cm, table, points, costs);
    vars = enc.num_variables();
    clauses = enc.num_clauses();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["vars"] = static_cast<double>(vars);
  state.counters["clauses"] = static_cast<double>(clauses);
  state.SetLabel(exact::to_string(strategy));
}
BENCHMARK(BM_EncodingSize)
    ->ArgsProduct({{5, 10, 20, 40}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
