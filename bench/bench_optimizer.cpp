/// Post-mapping peephole optimizer: throughput and achieved gate/fidelity
/// reduction on mapped Table-1 workloads (the extension the paper scopes
/// out in footnote 2).

#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "heuristic/stochastic_swap.hpp"
#include "opt/peephole.hpp"
#include "sim/fidelity.hpp"

namespace {

using namespace qxmap;

void BM_PeepholeOnMappedCircuit(benchmark::State& state) {
  const auto& b = bench::table1_benchmarks()[static_cast<std::size_t>(state.range(0))];
  const auto cm = arch::ibm_qx4();
  heuristic::StochasticSwapOptions sopt;
  sopt.verify = false;
  const auto mapped = heuristic::map_stochastic_swap(b.build(), cm, sopt).mapped;

  std::size_t before = mapped.size();
  std::size_t after = before;
  double fidelity_gain = 1.0;
  for (auto _ : state) {
    const Circuit optimized = opt::optimize(mapped, cm);
    after = optimized.size();
    fidelity_gain = sim::fidelity_ratio(optimized, mapped);
    benchmark::DoNotOptimize(optimized);
  }
  state.counters["gates_before"] = static_cast<double>(before);
  state.counters["gates_after"] = static_cast<double>(after);
  state.counters["fidelity_x"] = fidelity_gain;
  state.SetLabel(b.name);
}
BENCHMARK(BM_PeepholeOnMappedCircuit)->Arg(0)->Arg(5)->Arg(9)->Arg(18)->Arg(24)
    ->Unit(benchmark::kMicrosecond);

void BM_PeepholeFixpointIterations(benchmark::State& state) {
  // Worst-ish case: long alternating self-inverse chains.
  Circuit c(4, "chain");
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    c.h(i % 4);
    c.h(i % 4);
    c.cnot(i % 4, (i + 1) % 4);
    c.cnot(i % 4, (i + 1) % 4);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::optimize(c));
  }
}
BENCHMARK(BM_PeepholeFixpointIterations)->Arg(50)->Arg(200)->Unit(benchmark::kMicrosecond);

}  // namespace
