/// \file su4_main.cpp
/// SU(4) stress gate for the large-architecture path: generator → heavy-hex
/// coupling map → layer-weight heuristic, end to end.
///
/// Usage: bench_su4 [--smoke] [--sweep] [--arch NAME] [--layers N]
///                  [--seed N] [--budget-ms N] [--json PATH]
///   --smoke       CI mode: a seeded SU(4) instance over the full
///                 architecture (default hex27, 27 qubits) must map via the
///                 layer-weight heuristic within --budget-ms, with a
///                 coupling-legal mapped circuit and a GF(2)-verified
///                 routing skeleton — under BOTH cost objectives
///                 (gate_count and error_weighted); exit 1 otherwise
///   --sweep       print a layer-weight vs sabre comparison table over the
///                 heavy-hex built-ins (hex27/65/127), asserting legality
///                 and verification on every row
///   --arch NAME   architecture for --smoke (default hex27)
///   --layers N    SU(4) layers (default 3)
///   --seed N      generator seed (default 7)
///   --budget-ms N smoke wall-clock budget (default 60000 — generous so the
///                 TSan matrix entry passes; the real run is milliseconds)
///   --json PATH   write the smoke rows as JSON with the shared environment
///                 meta header (bench/bench_meta.hpp: threads, Z3 on/off,
///                 build type, budget)
///
/// Like bench_sat_smoke this is a plain CLI — no Google Benchmark
/// dependency — so the test build can register it in the quick gate.

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "arch/architectures.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_meta.hpp"
#include "common/strings.hpp"
#include "exact/swap_synthesis.hpp"
#include "heuristic/layer_weight_mapper.hpp"
#include "heuristic/sabre_mapper.hpp"

namespace {

using namespace qxmap;
using Clock = std::chrono::steady_clock;

struct Args {
  bool smoke = false;
  bool sweep = false;
  std::string arch = "hex27";
  int layers = 3;
  std::uint64_t seed = 7;
  long long budget_ms = 60000;
  std::string json_path;
};

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw std::runtime_error("bench_su4: missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--smoke") {
      a.smoke = true;
    } else if (arg == "--sweep") {
      a.sweep = true;
    } else if (arg == "--arch") {
      a.arch = next();
    } else if (arg == "--layers") {
      a.layers = std::stoi(next());
    } else if (arg == "--seed") {
      a.seed = static_cast<std::uint64_t>(std::stoull(next()));
    } else if (arg == "--budget-ms") {
      a.budget_ms = std::stoll(next());
    } else if (arg == "--json") {
      a.json_path = next();
    } else {
      throw std::runtime_error("bench_su4: unknown argument " + arg);
    }
  }
  return a;
}

/// Maps one SU(4) instance with the layer-weight heuristic and validates the
/// result; returns false (after printing why) on any violation.
bool check_instance(const Circuit& circuit, const arch::CouplingMap& cm,
                    exact::CostObjective objective, double* out_ms,
                    exact::MappingResult* out = nullptr) {
  heuristic::LayerWeightOptions options;
  options.costs.objective = objective;
  const auto t0 = Clock::now();
  const exact::MappingResult res = heuristic::map_layer_weight(circuit, cm, options);
  const double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (out_ms != nullptr) *out_ms = ms;
  bool ok = true;
  if (res.status != reason::Status::Feasible) {
    std::cout << "FAIL: status not Feasible on " << cm.name() << "\n";
    ok = false;
  }
  if (!res.verified) {
    std::cout << "FAIL: GF(2) skeleton verification failed on " << cm.name() << " ("
              << res.verify_message << ")\n";
    ok = false;
  }
  if (!exact::satisfies_coupling(res.mapped, cm)) {
    std::cout << "FAIL: mapped circuit violates the coupling map of " << cm.name() << "\n";
    ok = false;
  }
  if (res.objective != exact::to_string(objective)) {
    std::cout << "FAIL: result reports objective '" << res.objective << "', requested '"
              << exact::to_string(objective) << "'\n";
    ok = false;
  }
  if (out != nullptr) *out = res;
  return ok;
}

int run_smoke(const Args& args) {
  const arch::CouplingMap cm = arch::by_name(args.arch);
  const Circuit circuit =
      bench::su4_random_circuit(cm.num_physical(), args.layers, args.seed,
                                "su4_" + cm.name());
  std::cout << "bench_su4 --smoke: " << circuit.size() << " gates ("
            << circuit.counts().cnot << " CNOTs), architecture " << cm.name() << " ("
            << cm.num_physical() << " qubits)\n";
  bool ok = true;
  double total_ms = 0.0;
  struct JsonRow {
    std::string objective;
    int swaps = 0;
    int reversed = 0;
    long long objective_cost = 0;
    double wall_ms = 0.0;
  };
  std::vector<JsonRow> json_rows;
  for (const auto objective :
       {exact::CostObjective::GateCount, exact::CostObjective::ErrorWeighted}) {
    double ms = 0.0;
    exact::MappingResult res;
    ok = check_instance(circuit, cm, objective, &ms, &res) && ok;
    total_ms += ms;
    std::cout << "  " << pad_right(exact::to_string(objective), 15) << " swaps "
              << pad_left(std::to_string(res.swaps_inserted), 4) << ", reversed "
              << pad_left(std::to_string(res.cnots_reversed), 4) << ", objective_cost "
              << pad_left(std::to_string(res.objective_cost), 7) << ", "
              << format_fixed(ms, 1) << " ms\n";
    json_rows.push_back({exact::to_string(objective), res.swaps_inserted, res.cnots_reversed,
                         res.objective_cost, ms});
  }
  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      std::cout << "FAIL: cannot open " << args.json_path << " for writing\n";
      ok = false;
    } else {
      out << "{\n"
          << "  \"schema\": \"qxmap-su4-smoke-v1\",\n"
          << "  \"arch\": \"" << cm.name() << "\",\n"
          << "  \"layers\": " << args.layers << ",\n"
          << "  \"seed\": " << args.seed << ",\n";
      bench::write_meta_json(out, args.budget_ms);
      out << ",\n  \"rows\": [\n";
      for (std::size_t i = 0; i < json_rows.size(); ++i) {
        const auto& r = json_rows[i];
        out << "    {\"objective\": \"" << r.objective << "\", \"swaps\": " << r.swaps
            << ", \"reversed\": " << r.reversed << ", \"objective_cost\": " << r.objective_cost
            << ", \"wall_ms\": " << format_fixed(r.wall_ms, 1) << '}'
            << (i + 1 < json_rows.size() ? "," : "") << '\n';
      }
      out << "  ]\n}\n";
      std::cout << "wrote " << args.json_path << " (" << json_rows.size() << " rows)\n";
    }
  }
  if (total_ms > static_cast<double>(args.budget_ms)) {
    std::cout << "FAIL: " << format_fixed(total_ms, 1) << " ms exceeds the --budget-ms "
              << args.budget_ms << "\n";
    ok = false;
  }
  std::cout << (ok ? "OK" : "FAILED") << ": generator + layer-weight on " << cm.name()
            << " in " << format_fixed(total_ms, 1) << " ms (budget " << args.budget_ms
            << " ms)\n";
  return ok ? 0 : 1;
}

int run_sweep(const Args& args) {
  bool ok = true;
  std::cout << pad_right("arch", 10) << pad_left("layers", 7) << pad_left("cnots", 7)
            << pad_left("lw swaps", 9) << pad_left("lw ms", 8) << pad_left("sabre swaps", 12)
            << pad_left("sabre ms", 9) << '\n';
  for (const std::string& name : {std::string("hex27"), std::string("hex65"),
                                  std::string("hex127")}) {
    const arch::CouplingMap cm = arch::by_name(name);
    for (const int layers : {2, 4}) {
      const Circuit circuit = bench::su4_random_circuit(cm.num_physical(), layers, args.seed,
                                                        "su4_" + cm.name());
      double lw_ms = 0.0;
      exact::MappingResult lw;
      ok = check_instance(circuit, cm, exact::CostObjective::GateCount, &lw_ms, &lw) && ok;

      const auto t0 = Clock::now();
      const exact::MappingResult sb = heuristic::map_sabre(circuit, cm);
      const double sb_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      if (!sb.verified || !exact::satisfies_coupling(sb.mapped, cm)) {
        std::cout << "FAIL: sabre result invalid on " << cm.name() << "\n";
        ok = false;
      }
      std::cout << pad_right(name, 10) << pad_left(std::to_string(layers), 7)
                << pad_left(std::to_string(circuit.counts().cnot), 7)
                << pad_left(std::to_string(lw.swaps_inserted), 9)
                << pad_left(format_fixed(lw_ms, 1), 8)
                << pad_left(std::to_string(sb.swaps_inserted), 12)
                << pad_left(format_fixed(sb_ms, 1), 9) << '\n';
    }
  }
  std::cout << (ok ? "OK" : "FAILED") << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    if (args.sweep) return run_sweep(args);
    if (args.smoke) return run_smoke(args);
    // Default: one verbose smoke run.
    return run_smoke(args);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
}
