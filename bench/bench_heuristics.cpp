/// Throughput of the heuristic baselines on Table-1-shaped workloads and
/// on the larger architectures where the exact method is out of reach.

#include <benchmark/benchmark.h>

#include "arch/architectures.hpp"
#include "bench_circuits/generators.hpp"
#include "bench_circuits/table1_suite.hpp"
#include "heuristic/astar_mapper.hpp"
#include "heuristic/stochastic_swap.hpp"

namespace {

using namespace qxmap;

void BM_StochasticSwapTable1(benchmark::State& state) {
  const auto& b = bench::table1_benchmarks()[static_cast<std::size_t>(state.range(0))];
  const Circuit circuit = b.build();
  heuristic::StochasticSwapOptions opt;
  opt.runs = 5;
  opt.verify = false;
  long long cost = 0;
  for (auto _ : state) {
    const auto res = heuristic::map_stochastic_swap(circuit, arch::ibm_qx4(), opt);
    cost = res.cost_f;
    benchmark::DoNotOptimize(res);
  }
  state.counters["F"] = static_cast<double>(cost);
  state.SetLabel(b.name);
}
BENCHMARK(BM_StochasticSwapTable1)->Arg(0)->Arg(9)->Arg(18)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_AStarTable1(benchmark::State& state) {
  const auto& b = bench::table1_benchmarks()[static_cast<std::size_t>(state.range(0))];
  const Circuit circuit = b.build();
  heuristic::AStarOptions opt;
  opt.verify = false;
  long long cost = 0;
  for (auto _ : state) {
    const auto res = heuristic::map_astar(circuit, arch::ibm_qx4(), opt);
    cost = res.cost_f;
    benchmark::DoNotOptimize(res);
  }
  state.counters["F"] = static_cast<double>(cost);
  state.SetLabel(b.name);
}
BENCHMARK(BM_AStarTable1)->Arg(0)->Arg(9)->Arg(18)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_StochasticSwapQx5(benchmark::State& state) {
  const int cnots = static_cast<int>(state.range(0));
  const Circuit circuit = bench::random_circuit(16, cnots / 2, cnots, 5, "qx5");
  heuristic::StochasticSwapOptions opt;
  opt.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic::map_stochastic_swap(circuit, arch::ibm_qx5(), opt));
  }
}
BENCHMARK(BM_StochasticSwapQx5)->Arg(25)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

void BM_AStarTokyo(benchmark::State& state) {
  const int cnots = static_cast<int>(state.range(0));
  const Circuit circuit = bench::random_circuit(20, cnots / 2, cnots, 5, "tokyo");
  heuristic::AStarOptions opt;
  opt.verify = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic::map_astar(circuit, arch::ibm_tokyo(), opt));
  }
}
BENCHMARK(BM_AStarTokyo)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace
